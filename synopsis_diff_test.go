package nodb

// Differential tests for the scan synopsis: portion pruning must be
// invisible in results. Every query in the matrix runs on a synopsis
// engine and a synopsis-disabled twin; answers must be byte-identical,
// including after the raw file is edited (stale synopses self-invalidate
// through the catalog's signature check).

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeClusteredTable writes rows with a sorted int column (a1, the
// pruning target), a shuffled int column (a2), a float column (a3) and a
// clustered string column (a4) — the shapes zone maps care about.
func writeClusteredTable(t *testing.T, path string, rows int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		sb.Reset()
		shuffled := (i*7919 + 13) % rows
		fmt.Fprintf(&sb, "%d,%d,%d.%02d,w%06d\n", i, shuffled, i%500, i%97, i/10)
		if _, err := f.WriteString(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// resultKey renders a result order-insensitively (parallel scans emit in
// portion order; SQL without ORDER BY promises no order).
func resultKey(t *testing.T, r *Result) string {
	t.Helper()
	lines := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		var sb strings.Builder
		for i, v := range row {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.String())
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(r.Columns, ",") + "\n" + strings.Join(lines, "\n")
}

var synopsisDiffQueries = []string{
	// Selective ranges on the clustered column: the pruning sweet spot.
	"select a1, a2 from t where a1 >= 100 and a1 < 160",
	"select sum(a2) from t where a1 between 5000 and 5100",
	"select count(*) from t where a1 = 4242",
	"select count(*) from t where a1 = -5",
	"select max(a1) from t where a1 < 50",
	// Predicates on the shuffled column: bounds exist but rarely prune.
	"select count(*) from t where a2 < 10",
	// Floats and strings.
	"select count(*) from t where a3 >= 499.0",
	"select a1 from t where a4 = 'w000123'",
	"select count(*) from t where a4 > 'w999999'",
	// Multi-predicate conjunctions, <> residuals, wide scans.
	"select sum(a1) from t where a1 >= 1000 and a1 < 1200 and a2 <> 3",
	"select avg(a2) from t where a1 >= 0",
	"select a2 from t where a1 = 777 limit 1",
}

func synopsisDiffPolicies() []Options {
	return []Options{
		{Policy: PartialLoadsV1},
		{Policy: PartialLoadsV2},
		{Policy: Auto},
		{Policy: ColumnLoads},
	}
}

// TestSynopsisPrunedMatchesUnpruned is the PR's correctness invariant:
// identical answers with and without pruning, across policies, with a
// chunk size small enough that the table splits into many portions.
func TestSynopsisPrunedMatchesUnpruned(t *testing.T) {
	const rows = 12000
	path := filepath.Join(t.TempDir(), "t.csv")
	writeClusteredTable(t, path, rows)

	for _, base := range synopsisDiffPolicies() {
		base := base
		t.Run(base.Policy.String(), func(t *testing.T) {
			withSyn := base
			withSyn.ChunkSize = 4 << 10
			noSyn := withSyn
			noSyn.DisableSynopsis = true

			a := Open(withSyn)
			defer a.Close()
			b := Open(noSyn)
			defer b.Close()
			if err := a.Link("t", path); err != nil {
				t.Fatal(err)
			}
			if err := b.Link("t", path); err != nil {
				t.Fatal(err)
			}

			// Two passes over the matrix: the first learns (and already
			// prunes what the previous queries taught), the second prunes
			// aggressively from a warm synopsis.
			for pass := 0; pass < 2; pass++ {
				for _, q := range synopsisDiffQueries {
					ra, err := a.Query(q)
					if err != nil {
						t.Fatalf("pass %d %q (synopsis): %v", pass, q, err)
					}
					rb, err := b.Query(q)
					if err != nil {
						t.Fatalf("pass %d %q (no synopsis): %v", pass, q, err)
					}
					if ka, kb := resultKey(t, ra), resultKey(t, rb); ka != kb {
						t.Fatalf("pass %d %q: pruned result differs\npruned:\n%s\nunpruned:\n%s", pass, q, ka, kb)
					}
				}
			}
			if base.Policy == PartialLoadsV1 {
				// The scanning policy must actually have pruned something,
				// or this test proves nothing.
				if skipped := a.Work().PortionsSkipped; skipped == 0 {
					t.Fatal("synopsis engine never skipped a portion; pruning is not engaging")
				}
				ts, err := a.TableStats("t")
				if err != nil {
					t.Fatal(err)
				}
				if ts.SynopsisPortions < 2 {
					t.Fatalf("SynopsisPortions = %d; want a multi-portion layout", ts.SynopsisPortions)
				}
			}
		})
	}
}

// TestSynopsisStaleInvalidation edits the raw file after the synopsis has
// learned bounds; the signature check must drop the stale synopsis and
// answers must reflect the new file — identically with and without
// pruning.
func TestSynopsisStaleInvalidation(t *testing.T) {
	const rows = 8000
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeClusteredTable(t, path, rows)

	a := Open(Options{Policy: PartialLoadsV1, ChunkSize: 4 << 10})
	defer a.Close()
	b := Open(Options{Policy: PartialLoadsV1, ChunkSize: 4 << 10, DisableSynopsis: true})
	defer b.Close()
	for _, db := range []*DB{a, b} {
		if err := db.Link("t", path); err != nil {
			t.Fatal(err)
		}
	}

	warm := "select count(*) from t where a1 >= 0"
	sel := "select sum(a2) from t where a1 >= 7000 and a1 < 7100"
	for _, db := range []*DB{a, b} {
		for _, q := range []string{warm, sel} {
			if _, err := db.Query(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	if a.Work().PortionsSkipped == 0 {
		t.Fatal("no pruning before the edit; the invalidation test would be vacuous")
	}

	// Rewrite the file: the old a1 range [7000,7100) moves bytes and
	// values (every a1 shifts by +100000), so stale bounds would skip
	// portions that now qualify.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(f, "%d,%d,%d.%02d,x%06d\n", i+100000, i, i%500, i%97, i/10)
	}
	f.Close()

	q2 := "select count(*) from t where a1 >= 107000 and a1 < 107100"
	ra, err := a.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	if ka, kb := resultKey(t, ra), resultKey(t, rb); ka != kb {
		t.Fatalf("post-edit results differ:\npruned:\n%s\nunpruned:\n%s", ka, kb)
	}
	if got := ra.Rows[0][0].I; got != 100 {
		t.Fatalf("post-edit count = %d, want 100 (stale synopsis served old bounds?)", got)
	}
	// The old range must now be empty under both engines.
	rOld, err := a.Query("select count(*) from t where a1 >= 0 and a1 < 100")
	if err != nil {
		t.Fatal(err)
	}
	if got := rOld.Rows[0][0].I; got != 0 {
		t.Fatalf("old-range count after edit = %d, want 0", got)
	}
}

// TestSynopsisSurvivesRestart: with a cache dir, the learned synopsis is
// snapshotted on Close and restored on the first query after reopen — the
// very first selective query of the new process prunes portions without
// any prior pass.
func TestSynopsisSurvivesRestart(t *testing.T) {
	const rows = 12000
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	cache := filepath.Join(dir, "cache")
	writeClusteredTable(t, path, rows)

	opts := Options{Policy: PartialLoadsV1, ChunkSize: 4 << 10, CacheDir: cache}
	db := Open(opts)
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("select sum(a2) from t where a1 >= 6000 and a1 < 6100")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := db.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if ts.SynopsisPortions < 2 {
		t.Fatalf("pre-restart SynopsisPortions = %d; want a multi-portion layout", ts.SynopsisPortions)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := Open(opts)
	defer db2.Close()
	if err := db2.Link("t", path); err != nil {
		t.Fatal(err)
	}
	got, err := db2.Query("select sum(a2) from t where a1 >= 6000 and a1 < 6100")
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(t, got) != resultKey(t, want) {
		t.Fatalf("post-restart result differs:\n%s\nvs\n%s", resultKey(t, got), resultKey(t, want))
	}
	w := db2.Work()
	if w.SynopsisHits == 0 || w.PortionsSkipped == 0 {
		t.Fatalf("first query after restart pruned nothing (hits=%d skipped=%d); synopsis did not survive", w.SynopsisHits, w.PortionsSkipped)
	}
	ts2, err := db2.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if ts2.SynopsisPortions != ts.SynopsisPortions || ts2.SynopsisBounds == 0 {
		t.Fatalf("restored synopsis shape %d/%d, want %d portions with bounds", ts2.SynopsisPortions, ts2.SynopsisBounds, ts.SynopsisPortions)
	}
}
