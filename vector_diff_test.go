package nodb

// Differential tests for the vectorized execution pipeline: every query
// must produce byte-identical results with DisableVectorExec on and off,
// across loading policies, batch sizes, LIMIT shapes and cancellation.
// The row-at-a-time paths are the oracle; the batch pipeline is pure
// mechanism.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resultTable renders a full result table (all rows, all columns) for
// byte-level comparison.
func resultTable(res *Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		for ci, v := range row {
			if ci > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// vectorDiffQueries covers every pipeline shape: plain projections,
// LIMIT with and without ORDER BY, aggregates, GROUP BY, joins.
func vectorDiffQueries() []string {
	return []string{
		"select a1, a2 from t",
		"select * from t where a2 > 300",
		"select a1 from t where a1 > 100 and a1 < 900 limit 7",
		"select a1, a3 from t where a3 < 250 order by a1 limit 10",
		"select a2, a1 from t order by a2 desc, a1 limit 25",
		"select count(*) from t",
		"select sum(a1), min(a2), max(a3), avg(a1), count(a2) from t where a2 < 700",
		"select sum(a1) from t where a1 = 123456", // empty input: sum = 0, avg NaN semantics
		"select avg(a3), count(*) from t where a3 between 100 and 400",
		"select a1, count(*), sum(a2) from t where a2 < 800 group by a1 order by a1 limit 20",
		"select count(*), a1 from t group by a1 order by a1 desc limit 5",
		"select a1 from t limit 0",
		"select a1 from t limit 100000",
	}
}

func vectorDiffJoinQueries() []string {
	return []string{
		"select count(*) from l join r on l.a1 = r.a1",
		"select sum(l.a2), max(r.a2) from l join r on l.a1 = r.a1 where l.a3 < 150",
		"select l.a1, r.a2 from l join r on l.a1 = r.a1 where r.a2 < 100 order by l.a1, r.a2 limit 15",
		"select l.a1, count(*) from l join r on l.a1 = r.a1 group by l.a1 order by l.a1 limit 10",
	}
}

// TestVectorVsLegacyPolicies demands byte-identical result tables between
// the batch pipeline and the row-at-a-time paths, for every loading
// policy and several batch sizes. Workers is pinned to 1 so streaming
// scans deliver rows in file order in both modes.
func TestVectorVsLegacyPolicies(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 1500, 3, 1000, 42)

	queries := vectorDiffQueries()
	for _, cfg := range diffConfigs(dir) {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			legacyOpts := cfg.opts
			legacyOpts.Workers = 1
			legacyOpts.DisableVectorExec = true
			legacy := Open(legacyOpts)
			defer legacy.Close()
			if err := legacy.Link("t", path); err != nil {
				t.Fatal(err)
			}

			for _, batch := range []int{0, 1, 7, 64} {
				vecOpts := cfg.opts
				vecOpts.Workers = 1
				vecOpts.BatchSize = batch
				// Split dirs are per-engine state; give each vector engine
				// its own so the two runs cannot share split files.
				if vecOpts.SplitDir != "" {
					vecOpts.SplitDir = filepath.Join(dir, fmt.Sprintf("sf-vec-%d", batch))
				}
				vec := Open(vecOpts)
				if err := vec.Link("t", path); err != nil {
					t.Fatal(err)
				}
				for qi, q := range queries {
					want, err := legacy.Query(q)
					if err != nil {
						t.Fatalf("legacy query %d (%s): %v", qi, q, err)
					}
					got, err := vec.Query(q)
					if err != nil {
						t.Fatalf("vector(batch=%d) query %d (%s): %v", batch, qi, q, err)
					}
					if g, w := resultTable(got), resultTable(want); g != w {
						t.Errorf("batch=%d query %d (%s):\nvector:\n%slegacy:\n%s", batch, qi, q, g, w)
					}
				}
				vec.Close()
			}
		})
	}
}

// TestVectorVsLegacyJoins covers multi-table pipelines (HashJoinOp builds
// on the smaller side exactly like the legacy join).
func TestVectorVsLegacyJoins(t *testing.T) {
	dir := t.TempDir()
	lp := filepath.Join(dir, "l.csv")
	rp := filepath.Join(dir, "r.csv")
	writeRandomTable(t, lp, 900, 3, 300, 21)
	writeRandomTable(t, rp, 400, 2, 300, 22)

	for _, cfg := range []diffConfig{
		{"columns", Options{Policy: ColumnLoads}},
		{"partial-v1", Options{Policy: PartialLoadsV1}},
		{"partial-v2", Options{Policy: PartialLoadsV2}},
		{"external", Options{Policy: External}},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			legacyOpts := cfg.opts
			legacyOpts.Workers = 1
			legacyOpts.DisableVectorExec = true
			vecOpts := cfg.opts
			vecOpts.Workers = 1
			legacy, vec := Open(legacyOpts), Open(vecOpts)
			defer legacy.Close()
			defer vec.Close()
			for _, db := range []*DB{legacy, vec} {
				if err := db.Link("l", lp); err != nil {
					t.Fatal(err)
				}
				if err := db.Link("r", rp); err != nil {
					t.Fatal(err)
				}
			}
			for qi, q := range vectorDiffJoinQueries() {
				want, err := legacy.Query(q)
				if err != nil {
					t.Fatalf("legacy query %d (%s): %v", qi, q, err)
				}
				got, err := vec.Query(q)
				if err != nil {
					t.Fatalf("vector query %d (%s): %v", qi, q, err)
				}
				if g, w := resultTable(got), resultTable(want); g != w {
					t.Errorf("query %d (%s):\nvector:\n%slegacy:\n%s", qi, q, g, w)
				}
			}
		})
	}
}

// TestVectorVsLegacyRandom cross-checks the two modes on a randomized
// aggregate workload (the same generator the policy differential uses).
func TestVectorVsLegacyRandom(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	const rows, cols = 1200, 4
	const maxVal = 600
	writeRandomTable(t, path, rows, cols, maxVal, 314)

	legacy := Open(Options{Policy: PartialLoadsV2, Workers: 1, DisableVectorExec: true})
	vec := Open(Options{Policy: PartialLoadsV2, Workers: 1})
	defer legacy.Close()
	defer vec.Close()
	for _, db := range []*DB{legacy, vec} {
		if err := db.Link("t", path); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2718))
	for qi := 0; qi < 40; qi++ {
		q := randomQuery(rng, cols, maxVal)
		want, err := legacy.Query(q)
		if err != nil {
			t.Fatalf("legacy query %d (%s): %v", qi, q, err)
		}
		got, err := vec.Query(q)
		if err != nil {
			t.Fatalf("vector query %d (%s): %v", qi, q, err)
		}
		if g, w := resultTable(got), resultTable(want); g != w {
			t.Errorf("query %d (%s):\nvector:\n%slegacy:\n%s", qi, q, g, w)
		}
	}
}

// TestVectorCancellation pins cancellation behavior parity: a cancelled
// context aborts the query in both modes, and an early cursor Close stops
// a streaming scan cleanly (no error) in both modes.
func TestVectorCancellation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 5000, 3, 5000, 77)

	for _, disable := range []bool{false, true} {
		name := "vector"
		if disable {
			name = "legacy"
		}
		t.Run(name, func(t *testing.T) {
			db := Open(Options{Policy: PartialLoadsV1, Workers: 1, DisableVectorExec: disable, BatchSize: 16})
			defer db.Close()
			if err := db.Link("t", path); err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := db.QueryContext(ctx, "select sum(a1) from t"); err == nil {
				t.Fatal("cancelled context should abort the query")
			}

			rows, err := db.QueryRows(context.Background(), "select a1 from t where a1 >= 0")
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for rows.Next() {
				if got++; got == 3 {
					break
				}
			}
			if got != 3 {
				t.Fatalf("read %d rows before close, want 3", got)
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("early close: %v", err)
			}
		})
	}
}

// TestVectorLimitStopsScan checks that a LIMIT through the batch pipeline
// terminates a streaming raw-file scan early: with a small batch size the
// scan must read far fewer raw bytes than the full file.
func TestVectorLimitStopsScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 200_000, 3, 1000, 123)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	db := Open(Options{Policy: External, Workers: 1, ChunkSize: 64 << 10, BatchSize: 64})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("select a1 from t limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if read := res.Stats.Work.RawBytesRead; read >= st.Size()/2 {
		t.Errorf("LIMIT 5 read %d of %d raw bytes; the pipeline should stop the scan early", read, st.Size())
	}
}

// TestVectorExplainTree checks both Explain surfaces: the static pipeline
// rendering before execution and the per-operator counters after.
func TestVectorExplainTree(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 500, 3, 100, 9)

	db := Open(Options{Policy: ColumnLoads, Workers: 1})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}

	plan, err := db.Explain("select a1 from t where a2 < 50 order by a1 limit 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipeline (batch=1024):", "Limit(3)", "Sort(", "Project(", "Filter(t0 1 preds)", "DenseScan(t0"} {
		if !strings.Contains(plan, want) {
			t.Errorf("Explain output missing %q:\n%s", want, plan)
		}
	}

	res, err := db.Query("select a1 from t where a2 < 50")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vectorized pipeline:", "Limit(none)", "batches=", "rows="} {
		if !strings.Contains(res.Stats.Plan, want) {
			t.Errorf("executed plan missing %q:\n%s", want, res.Stats.Plan)
		}
	}
}
