package nodb

// End-to-end integration scenarios over the public API: multi-table join
// chains, ORDER BY/LIMIT on projections, table stats, and a long
// exploration trace mimicking the paper's motivating workload.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestThreeWayJoin(t *testing.T) {
	dir := t.TempDir()
	// orders(order_id, cust_id, item_id), customers(id, region),
	// items(id, price).
	var orders, custs, items strings.Builder
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&orders, "%d,%d,%d\n", i, rng.Intn(50), rng.Intn(100))
	}
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&custs, "%d,%d\n", i, i%5)
	}
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&items, "%d,%d\n", i, 10+i)
	}
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	db := Open(Options{})
	defer db.Close()
	db.Link("orders", write("o.csv", orders.String()))
	db.Link("customers", write("c.csv", custs.String()))
	db.Link("items", write("i.csv", items.String()))

	res, err := db.Query(`
		select count(*), sum(i.a2)
		from orders o
		join customers c on o.a2 = c.a1
		join items i on o.a3 = i.a1
		where c.a2 = 3`)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against a manual computation.
	var wantCount, wantSum int64
	ordersLines := strings.Split(strings.TrimSpace(orders.String()), "\n")
	for _, l := range ordersLines {
		var oid, cid, iid int64
		fmt.Sscanf(l, "%d,%d,%d", &oid, &cid, &iid)
		if cid%5 == 3 {
			wantCount++
			wantSum += 10 + iid
		}
	}
	if res.Rows[0][0].I != wantCount || res.Rows[0][1].I != wantSum {
		t.Errorf("3-way join = %v, want count=%d sum=%d", res.Rows[0], wantCount, wantSum)
	}
}

func TestOrderByLimitProjection(t *testing.T) {
	db := Open(Options{})
	defer db.Close()
	linkFile(t, db, "t", "3,c\n1,a\n2,b\n5,e\n4,d\n")
	res, err := db.Query("select a1, a2 from t where a1 > 1 order by a1 desc limit 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 5 || res.Rows[1][0].I != 4 {
		t.Errorf("order/limit = %v", res.Rows)
	}
	if res.Rows[0][1].S != "e" {
		t.Errorf("projection alignment: %v", res.Rows[0])
	}
}

func TestTableStatsLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d\n", i, i*2, i*3)
	}
	os.WriteFile(path, []byte(sb.String()), 0o644)

	db := Open(Options{Policy: PartialLoadsV2})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}

	st, err := db.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != -1 || len(st.DenseCols) != 0 || st.Regions != 0 {
		t.Errorf("fresh stats = %+v", st)
	}

	if _, err := db.Query("select sum(a1) from t where a1 < 100"); err != nil {
		t.Fatal(err)
	}
	st, _ = db.TableStats("t")
	if st.Rows != 1000 {
		t.Errorf("rows = %d", st.Rows)
	}
	if st.SparseCols[0] != 100 {
		t.Errorf("sparse col 0 = %d entries, want 100", st.SparseCols[0])
	}
	if st.Regions != 1 {
		t.Errorf("regions = %d", st.Regions)
	}
	if st.MemBytes == 0 || st.PosMapEntries == 0 {
		t.Errorf("mem/posmap empty: %+v", st)
	}

	// Column loads produce dense state.
	db.SetPolicy(ColumnLoads)
	if _, err := db.Query("select sum(a2) from t"); err != nil {
		t.Fatal(err)
	}
	st, _ = db.TableStats("t")
	if len(st.DenseCols) != 1 || st.DenseCols[0] != 1 {
		t.Errorf("dense cols = %v", st.DenseCols)
	}
}

// TestExplorationTrace replays a long zoom-in/zoom-out session and checks
// the adaptive store amortizes work: total raw bytes read must stay well
// below re-reading the file per query.
func TestExplorationTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	const rows = 5000
	var sb strings.Builder
	rng := rand.New(rand.NewSource(77))
	perm := rng.Perm(rows)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d,%d\n", perm[i], (perm[i]*7)%rows, (perm[i]*13)%rows, (perm[i]*29)%rows)
	}
	os.WriteFile(path, []byte(sb.String()), 0o644)
	fileSize := int64(len(sb.String()))

	db := Open(Options{Policy: PartialLoadsV2})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}

	// 30 queries: one broad cut, then narrowing zooms inside it.
	lo, hi := 0, rows
	queries := 0
	for round := 0; round < 6; round++ {
		width := (hi - lo) / 2
		lo = lo + (hi-lo)/4
		hi = lo + width
		if width < 10 {
			break
		}
		for rep := 0; rep < 5; rep++ {
			q := fmt.Sprintf("select count(*), sum(a2) from t where a1 >= %d and a1 < %d", lo, hi)
			res, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows[0][0].I != int64(width) {
				t.Fatalf("round %d: count = %v, want %d", round, res.Rows[0][0], width)
			}
			queries++
		}
	}
	total := db.Work().RawBytesRead
	// Only the first (broadest) query should hit the file; everything
	// narrower is covered. Allow 2 file reads of slack.
	if total > 2*fileSize {
		t.Errorf("trace read %d raw bytes over %d queries (file is %d) — adaptive store not amortizing",
			total, queries, fileSize)
	}
}

func TestRelinkDifferentFile(t *testing.T) {
	db := Open(Options{})
	defer db.Close()
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.csv")
	p2 := filepath.Join(dir, "b.csv")
	os.WriteFile(p1, []byte("1\n2\n"), 0o644)
	os.WriteFile(p2, []byte("10\n20\n30\n"), 0o644)

	db.Link("t", p1)
	r1, _ := db.Query("select count(*) from t")
	if r1.Rows[0][0].I != 2 {
		t.Fatal("first file")
	}
	db.Link("t", p2) // relink same name
	r2, err := db.Query("select count(*) from t")
	if err != nil || r2.Rows[0][0].I != 3 {
		t.Errorf("relink: %v, %v", r2, err)
	}
}

func TestAppendOnlyFileGrowth(t *testing.T) {
	// A growing log file: appends change the signature, so derived state
	// is dropped and counts stay correct.
	dir := t.TempDir()
	path := filepath.Join(dir, "log.csv")
	os.WriteFile(path, []byte("1\n2\n3\n"), 0o644)
	db := Open(Options{Policy: ColumnLoads})
	defer db.Close()
	db.Link("log", path)
	r, _ := db.Query("select count(*) from log")
	if r.Rows[0][0].I != 3 {
		t.Fatal("initial count")
	}
	time.Sleep(10 * time.Millisecond)
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("4\n5\n")
	f.Close()
	r2, err := db.Query("select count(*) from log")
	if err != nil || r2.Rows[0][0].I != 5 {
		t.Errorf("after append: %v, %v", r2, err)
	}
}

func TestManyColumnsWideTable(t *testing.T) {
	// 64-attribute rows (the paper's "hundreds or even thousands of
	// columns" scenario, scaled): touch only two late columns.
	dir := t.TempDir()
	path := filepath.Join(dir, "wide.csv")
	var sb strings.Builder
	const rows, cols = 500, 64
	for i := 0; i < rows; i++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", i+c)
		}
		sb.WriteByte('\n')
	}
	os.WriteFile(path, []byte(sb.String()), 0o644)

	db := Open(Options{Policy: ColumnLoads})
	defer db.Close()
	db.Link("w", path)
	res, err := db.Query("select sum(a60), max(a64) from w where a60 < 300")
	if err != nil {
		t.Fatal(err)
	}
	// a60 of row i = i+59; a60 < 300 → i < 241 → sum_{i=0..240}(i+59).
	var want int64
	for i := 0; i < 241; i++ {
		want += int64(i + 59)
	}
	if res.Rows[0][0].I != want {
		t.Errorf("sum(a60) = %v, want %d", res.Rows[0][0], want)
	}
	st, _ := db.TableStats("w")
	if len(st.DenseCols) != 2 {
		t.Errorf("only touched columns should be loaded: %v", st.DenseCols)
	}
}
