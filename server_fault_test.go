package nodb_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"nodb"
	"nodb/internal/server"
	"nodb/internal/vfs"
)

// TestServerHealthzDegraded runs the whole degraded-mode story through
// the HTTP layer: a disk-full snapshot tier flips /healthz to
// "degraded" and sets snapshot.degraded in /v1/stats, queries keep
// answering, and a later successful save heals both.
func TestServerHealthzDegraded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	var sb strings.Builder
	sb.WriteString("a1,a2\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i*2)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	ffs := vfs.NewFaultFS(nil)
	db := nodb.OpenFSForTest(nodb.Options{Policy: nodb.ColumnLoads, CacheDir: filepath.Join(dir, "cache")}, ffs)
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}

	s := server.New(server.Config{DB: db})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	healthz := func() map[string]string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d; liveness must stay 200 even degraded", resp.StatusCode)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	if got := healthz(); got["status"] != "ok" {
		t.Fatalf("healthy healthz = %v, want status ok", got)
	}

	// Learn something so a snapshot has state to persist.
	if _, err := db.Query("select sum(a1) from t"); err != nil {
		t.Fatal(err)
	}

	// The disk fills up under the cache dir; the next snapshot save fails
	// and the store degrades to memory-only.
	ffs.AddRule(vfs.Rule{Op: vfs.OpWrite, Err: syscall.ENOSPC, PathContains: "cache", Times: -1})
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Err: syscall.ENOSPC, PathContains: "cache", Times: -1})
	if err := db.Snapshot(); err == nil {
		t.Fatal("snapshot on a full disk must fail")
	}

	if got := healthz(); got["status"] != "degraded" || got["reason"] == "" {
		t.Fatalf("degraded healthz = %v, want status degraded with a reason", got)
	}

	// Queries still answer through the HTTP path while degraded.
	body := strings.NewReader(`{"query": "select count(*) from t"}`)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query while degraded = %d, want 200", resp.StatusCode)
	}

	// The flag is also visible in /v1/stats for scrapers.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Snapshot nodb.SnapStats `json:"snapshot"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Snapshot.Degraded {
		t.Fatal("/v1/stats must report snapshot.degraded while memory-only")
	}

	// Space returns: the next save succeeds and liveness self-heals.
	ffs.Clear()
	if err := db.Snapshot(); err != nil {
		t.Fatalf("snapshot after recovery failed: %v", err)
	}
	if got := healthz(); got["status"] != "ok" {
		t.Fatalf("healed healthz = %v, want status ok", got)
	}
}
