package nodb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func linkFile(t *testing.T, db *DB, name, content string) {
	t.Helper()
	p := filepath.Join(t.TempDir(), name+".csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.Link(name, p); err != nil {
		t.Fatal(err)
	}
}

func TestOpenLinkQuery(t *testing.T) {
	db := Open(Options{})
	defer db.Close()
	linkFile(t, db, "r", "1,10\n2,20\n3,30\n")
	res, err := db.Query("select sum(a1), sum(a2) from r where a1 >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 5 || res.Rows[0][1].I != 50 {
		t.Errorf("result = %v", res.Rows[0])
	}
}

func TestAllPublicPolicies(t *testing.T) {
	for _, pol := range []Policy{ColumnLoads, FullLoad, PartialLoadsV1, PartialLoadsV2, SplitFiles, External, Auto} {
		t.Run(pol.String(), func(t *testing.T) {
			db := Open(Options{Policy: pol, SplitDir: filepath.Join(t.TempDir(), "s")})
			defer db.Close()
			linkFile(t, db, "t", "5\n6\n7\n")
			res, err := db.Query("select sum(a1) from t")
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows[0][0].I != 18 {
				t.Errorf("sum = %v", res.Rows[0][0])
			}
		})
	}
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, pol := range []Policy{ColumnLoads, FullLoad, PartialLoadsV1, PartialLoadsV2, SplitFiles, External, Auto} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("round trip %v: got %v, %v", pol, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("bad name should fail")
	}
}

func TestSchemaAndTables(t *testing.T) {
	db := Open(Options{})
	defer db.Close()
	linkFile(t, db, "t", "id,price\n1,2.5\n")
	sch, err := db.Schema("t")
	if err != nil {
		t.Fatal(err)
	}
	if sch.Columns[0].Name != "id" || sch.Columns[1].Type != Float64 {
		t.Errorf("schema = %v", sch)
	}
	if tabs := db.Tables(); len(tabs) != 1 || tabs[0] != "t" {
		t.Errorf("tables = %v", tabs)
	}
	if err := db.Unlink("t"); err != nil {
		t.Fatal(err)
	}
	if len(db.Tables()) != 0 {
		t.Error("unlink failed")
	}
}

func TestWorkAndMemSize(t *testing.T) {
	db := Open(Options{})
	defer db.Close()
	linkFile(t, db, "t", "1\n2\n")
	if _, err := db.Query("select sum(a1) from t"); err != nil {
		t.Fatal(err)
	}
	if db.Work().RawBytesRead == 0 {
		t.Error("work counters should accumulate")
	}
	if db.MemSize() == 0 {
		t.Error("loaded state should have a size")
	}
}

func TestExplainAndSetPolicy(t *testing.T) {
	db := Open(Options{Policy: PartialLoadsV2})
	defer db.Close()
	linkFile(t, db, "t", "1\n")
	s, err := db.Explain("select sum(a1) from t where a1 > 0")
	if err != nil || !strings.Contains(s, "partial-load-v2") {
		t.Errorf("explain = %q, %v", s, err)
	}
	db.SetPolicy(ColumnLoads)
	if db.Policy() != ColumnLoads {
		t.Error("SetPolicy")
	}
}

func TestJoinViaPublicAPI(t *testing.T) {
	db := Open(Options{})
	defer db.Close()
	var a, b strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&a, "%d,%d\n", i, i)
		fmt.Fprintf(&b, "%d,%d\n", i, i*i)
	}
	linkFile(t, db, "l", a.String())
	linkFile(t, db, "r", b.String())
	res, err := db.Query("select count(*) from l join r on l.a1 = r.a1 where l.a2 < 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 10 {
		t.Errorf("join count = %v", res.Rows[0][0])
	}
}
