package driver

import (
	"database/sql"
	"fmt"
	"net/url"
	"path/filepath"
	"sync"
	"testing"

	"nodb"
	"nodb/internal/csvgen"
)

// testDSN writes a synthetic CSV and returns a DSN linking it as table T.
func testDSN(t *testing.T, rows int, extra string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: rows, Cols: 4, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	dsn := "link=" + url.QueryEscape("T="+path)
	if extra != "" {
		dsn += "&" + extra
	}
	return dsn
}

// TestRoundTrip is the end-to-end acceptance path: sql.Open with a DSN,
// Prepare with ? placeholders, iterate *sql.Rows over a linked CSV.
func TestRoundTrip(t *testing.T) {
	db, err := sql.Open("nodb", testDSN(t, 1000, "policy=partial-v2"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}

	stmt, err := db.Prepare("select a1, a2 from T where a1 >= ? and a1 < ? order by a1")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	rows, err := stmt.Query(10, 15)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "a1" || cols[1] != "a2" {
		t.Fatalf("columns = %v, want [a1 a2]", cols)
	}

	var got []int64
	for rows.Next() {
		var a1, a2 int64
		if err := rows.Scan(&a1, &a2); err != nil {
			t.Fatal(err)
		}
		got = append(got, a1)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 11, 12, 13, 14}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}

	// Aggregates through QueryerContext (no explicit Prepare).
	var sum, count int64
	err = db.QueryRow("select sum(a1), count(*) from T where a1 < ?", 100).Scan(&sum, &count)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 99*100/2 || count != 100 {
		t.Fatalf("sum=%d count=%d, want %d/%d", sum, count, 99*100/2, 100)
	}
}

// TestQueryRowTypes covers float and string round-trips plus bool/[]byte
// argument binding.
func TestQueryRowTypes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mix.csv")
	spec := csvgen.Spec{
		Rows: 100, Cols: 3, Seed: 7,
		ColSpecs: []csvgen.ColSpec{
			{Kind: csvgen.SequentialInts},
			{Kind: csvgen.Floats, Max: 10},
			{Kind: csvgen.Strings},
		},
	}
	if err := csvgen.WriteFile(path, spec); err != nil {
		t.Fatal(err)
	}
	db, err := sql.Open("nodb", "link="+url.QueryEscape("M="+path))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var a1 int64
	var a2 float64
	var a3 string
	if err := db.QueryRow("select a1, a2, a3 from M where a1 = ?", 5).Scan(&a1, &a2, &a3); err != nil {
		t.Fatal(err)
	}
	if a1 != 5 || a2 < 0 || a2 >= 10 || a3 == "" {
		t.Fatalf("row = %d %v %q", a1, a2, a3)
	}
}

// TestConcurrentPreparedQueries exercises one prepared statement from many
// goroutines over pooled connections (run with -race in CI).
func TestConcurrentPreparedQueries(t *testing.T) {
	db, err := sql.Open("nodb", testDSN(t, 2000, "policy=partial-v2"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	stmt, err := db.Prepare("select sum(a1), count(*) from T where a1 >= ? and a1 < ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				lo := int64((w*5 + i) * 7 % 1000)
				hi := lo + 50
				var sum, count int64
				if err := stmt.QueryRow(lo, hi).Scan(&sum, &count); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				wantSum := (hi - 1 + lo) * 50 / 2
				if count != 50 || sum != wantSum {
					errs <- fmt.Errorf("worker %d: sum=%d count=%d, want %d/50", w, sum, count, wantSum)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLimitReadsFewerRawBytes asserts the cursor's early termination
// end-to-end through database/sql: a LIMIT-bounded query reads fewer raw
// bytes than the unbounded equivalent of the same pass.
func TestLimitReadsFewerRawBytes(t *testing.T) {
	dsn := testDSN(t, 30000, "policy=partial-v1&chunk=4096")
	drv := &Driver{}
	connector, err := drv.OpenConnector(dsn)
	if err != nil {
		t.Fatal(err)
	}
	db := sql.OpenDB(connector.(*Connector))
	defer db.Close()
	engine := connector.(*Connector).DB()

	readRows := func(query string) int64 {
		t.Helper()
		before := engine.Work().RawBytesRead
		rows, err := db.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
			var a1, a2 int64
			if err := rows.Scan(&a1, &a2); err != nil {
				t.Fatal(err)
			}
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		return engine.Work().RawBytesRead - before
	}

	full := readRows("select a1, a2 from T where a1 >= 0")
	limited := readRows("select a1, a2 from T where a1 >= 0 limit 5")
	if limited == 0 {
		t.Fatal("limited query read no raw bytes")
	}
	if limited*2 >= full {
		t.Fatalf("LIMIT 5 read %d of %d raw bytes; want an early stop", limited, full)
	}
}

// TestReadOnlyAndTx: Exec and transactions are rejected.
func TestReadOnlyAndTx(t *testing.T) {
	db, err := sql.Open("nodb", testDSN(t, 10, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("select a1 from T"); err == nil {
		t.Fatal("Exec succeeded; want read-only error")
	}
	if _, err := db.Begin(); err == nil {
		t.Fatal("Begin succeeded; want unsupported error")
	}
}

// TestDSNErrors: malformed DSNs fail at sql.Open/Ping time.
func TestDSNErrors(t *testing.T) {
	for _, dsn := range []string{
		"link=bad",              // not NAME=PATH
		"policy=warp",           // unknown policy
		"mem=-1",                // negative budget
		"evict=random",          // unknown eviction policy
		"nope=1",                // unknown key
		"link=T%3D/no/such.csv", // missing file
	} {
		db, err := sql.Open("nodb", dsn)
		if err == nil {
			err = db.Ping()
			db.Close()
		}
		if err == nil {
			t.Errorf("DSN %q: want error", dsn)
		}
	}
}

// TestCloseReleasesEngine: sql.DB.Close closes the shared engine, after
// which the native handle reports ErrClosed.
func TestCloseReleasesEngine(t *testing.T) {
	drv := &Driver{}
	connector, err := drv.OpenConnector(testDSN(t, 10, ""))
	if err != nil {
		t.Fatal(err)
	}
	db := sql.OpenDB(connector.(*Connector))
	var n int64
	if err := db.QueryRow("select count(*) from T").Scan(&n); err != nil || n != 10 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := connector.(*Connector).DB().Ping(); err != nodb.ErrClosed {
		t.Fatalf("Ping after Close = %v, want ErrClosed", err)
	}
}

// TestDSNMemoryBudget drives an over-budget workload through database/sql:
// queries stay correct while the governor keeps adaptive state bounded.
func TestDSNMemoryBudget(t *testing.T) {
	db, err := sql.Open("nodb", testDSN(t, 5000, "mem=100000&evict=lru"))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for pass := 0; pass < 2; pass++ {
		for c := 1; c <= 4; c++ {
			var n int64
			q := fmt.Sprintf("select count(*) from T where a%d >= 0", c)
			if err := db.QueryRow(q).Scan(&n); err != nil {
				t.Fatalf("pass %d a%d: %v", pass, c, err)
			}
			if n != 5000 {
				t.Fatalf("pass %d a%d: count = %d, want 5000", pass, c, n)
			}
		}
	}
}

// TestDSNCacheDir drives a warm restart through database/sql: the first
// sql.DB learns and snapshots on Close, the second answers the same query
// without touching the raw file.
func TestDSNCacheDir(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := filepath.Join(dir, "t.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 2000, Cols: 4, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	dsn := "link=" + url.QueryEscape("T="+path) + "&cachedir=" + url.QueryEscape(cache)

	open := func() (*sql.DB, *nodb.DB) {
		t.Helper()
		connector, err := (&Driver{}).OpenConnector(dsn)
		if err != nil {
			t.Fatal(err)
		}
		return sql.OpenDB(connector.(*Connector)), connector.(*Connector).DB()
	}

	db1, _ := open()
	var want int64
	if err := db1.QueryRow("select sum(a2) from T").Scan(&want); err != nil {
		t.Fatal(err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	db2, engine := open()
	defer db2.Close()
	var got int64
	if err := db2.QueryRow("select sum(a2) from T").Scan(&got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("warm result %d, want %d", got, want)
	}
	w := engine.Work()
	if w.RawBytesRead != 0 {
		t.Errorf("warm query read %d raw bytes, want 0", w.RawBytesRead)
	}
	if st := engine.SnapStats(); !st.Enabled || st.Hits == 0 {
		t.Errorf("snapshot stats = %+v, want enabled with a hit", st)
	}
}
