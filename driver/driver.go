// Package driver registers nodb as a database/sql driver named "nodb",
// opening the whole database/sql ecosystem to the adaptive engine:
//
//	import _ "nodb/driver"
//
//	db, err := sql.Open("nodb", "link=events=./events.csv&policy=partial-v2")
//	stmt, err := db.Prepare("select a1, a2 from events where a1 between ? and ?")
//	rows, err := stmt.Query(10, 1000)
//
// The DSN is a URL query string. Keys:
//
//	link=NAME=PATH        link a raw file as table NAME (repeatable)
//	policy=NAME           loading policy (columns, full, partial-v1,
//	                      partial-v2, splitfiles, external, auto)
//	cracking=BOOL         enable adaptive indexing
//	splitdir=DIR          split-file directory (required for splitfiles)
//	mem=BYTES             memory budget for adaptive state (0 = unlimited)
//	evict=NAME            eviction policy under mem: cost (default) or lru
//	cachedir=DIR          persistent auxiliary-structure cache: snapshots
//	                      written on close, restored lazily after reopen,
//	                      eviction spills instead of discarding
//	workers=N             tokenization parallelism
//	chunk=BYTES           raw-file read chunk size
//	batchsize=N           rows per batch of the vectorized execution
//	                      pipeline (0 = default, 1024)
//	resultcache=BYTES     result cache budget: identical queries against
//	                      unchanged files answer from memory (0 = disabled)
//	tenant=NAME:KEY[:W]   declare a tenant with API key KEY and weight W
//	                      (repeatable); the engine's memory budget is
//	                      partitioned by weight
//	apikey=KEY            run this connection's queries as the tenant
//	                      owning KEY; with tenants declared, an unknown
//	                      key fails at sql.Open time
//
// Values follow URL escaping rules; paths containing '&' or '%' must be
// percent-encoded.
//
// One sql.DB shares one engine: every connection database/sql hands out is
// a lightweight handle onto the same adaptive store, so what one query
// loads, the next one reuses — exactly like the embedded API. Query
// results stream through the engine's cursor, so iterating a *sql.Rows
// pulls rows incrementally and closing it early stops the raw-file scan
// mid-pass. The engine is read-only from SQL: Exec and transactions return
// errors.
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"

	"nodb"
	"nodb/internal/govern"
	"nodb/internal/qos"
)

func init() {
	sql.Register("nodb", &Driver{})
}

// Driver is the database/sql driver for nodb.
type Driver struct{}

// Open opens a one-off connection that owns its engine (legacy path; the
// pooling path is OpenConnector, which database/sql prefers).
func (d *Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	conn, err := c.Connect(context.Background())
	if err != nil {
		return nil, err
	}
	conn.(*nodbConn).ownsDB = true
	return conn, nil
}

// OpenConnector parses the DSN, opens the shared engine and links the
// tables. DSN errors — including an apikey that matches no declared
// tenant — surface here, at sql.Open time.
func (d *Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	cfg, err := ParseDSNConfig(dsn)
	if err != nil {
		return nil, err
	}
	tenant := qos.DefaultTenant
	if cfg.APIKey != "" && len(cfg.Options.Tenants) > 0 {
		reg, err := qos.NewRegistry(cfg.Options.Tenants, true)
		if err != nil {
			return nil, fmt.Errorf("nodb driver: %w", err)
		}
		t, err := reg.Resolve(cfg.APIKey)
		if err != nil {
			return nil, fmt.Errorf("nodb driver: apikey matches no declared tenant")
		}
		tenant = t.Name
	}
	db, err := nodb.OpenErr(cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("nodb driver: %w", err)
	}
	for _, l := range cfg.Links {
		if err := db.Link(l.Name, l.Path); err != nil {
			_ = db.Close()
			return nil, err
		}
	}
	return &Connector{drv: d, dsn: dsn, db: db, tenant: tenant, apikey: cfg.APIKey}, nil
}

// Link is one table registration from a DSN.
type Link struct {
	Name, Path string
}

// Config is everything a DSN encodes: engine options, table links, and
// the connection's tenant identity.
type Config struct {
	Options nodb.Options
	Links   []Link
	// APIKey is the connection's tenant credential; queries run as the
	// tenant owning it.
	APIKey string
}

// ParseDSN decodes a DSN into engine options and table links. It is
// ParseDSNConfig without the connection identity, kept for callers that
// only build engines.
func ParseDSN(dsn string) (nodb.Options, []Link, error) {
	cfg, err := ParseDSNConfig(dsn)
	return cfg.Options, cfg.Links, err
}

// ParseDSNConfig decodes a DSN.
func ParseDSNConfig(dsn string) (Config, error) {
	var cfg Config
	opts := &cfg.Options
	vals, err := url.ParseQuery(dsn)
	if err != nil {
		return cfg, fmt.Errorf("nodb driver: invalid DSN: %w", err)
	}
	for key, vv := range vals {
		for _, v := range vv {
			switch key {
			case "link":
				name, path, ok := strings.Cut(v, "=")
				if !ok || name == "" || path == "" {
					return cfg, fmt.Errorf("nodb driver: link %q is not NAME=PATH", v)
				}
				cfg.Links = append(cfg.Links, Link{Name: name, Path: path})
			case "policy":
				p, err := nodb.ParsePolicy(v)
				if err != nil {
					return cfg, fmt.Errorf("nodb driver: %w", err)
				}
				opts.Policy = p
			case "cracking":
				b, err := strconv.ParseBool(v)
				if err != nil {
					return cfg, fmt.Errorf("nodb driver: invalid cracking %q", v)
				}
				opts.Cracking = b
			case "splitdir":
				opts.SplitDir = v
			case "cachedir":
				opts.CacheDir = v
			case "mem":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return cfg, fmt.Errorf("nodb driver: invalid mem %q", v)
				}
				opts.MemoryBudget = n
			case "evict":
				if _, err := govern.PolicyByName(v); err != nil {
					return cfg, fmt.Errorf("nodb driver: %w", err)
				}
				opts.EvictionPolicy = v
			case "workers":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return cfg, fmt.Errorf("nodb driver: invalid workers %q", v)
				}
				opts.Workers = n
			case "chunk":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return cfg, fmt.Errorf("nodb driver: invalid chunk %q", v)
				}
				opts.ChunkSize = n
			case "batchsize":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return cfg, fmt.Errorf("nodb driver: invalid batchsize %q", v)
				}
				opts.BatchSize = n
			case "resultcache":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return cfg, fmt.Errorf("nodb driver: invalid resultcache %q", v)
				}
				opts.ResultCacheBytes = n
			case "tenant":
				ts, err := qos.ParseTenantSpec(v)
				if err != nil {
					return cfg, fmt.Errorf("nodb driver: invalid tenant %q: %w", v, err)
				}
				opts.Tenants = append(opts.Tenants, ts...)
			case "apikey":
				cfg.APIKey = v
			default:
				return cfg, fmt.Errorf("nodb driver: unknown DSN key %q", key)
			}
		}
	}
	return cfg, nil
}

// Connector owns the shared engine for one sql.DB. database/sql calls
// Connect for every pooled connection; each gets a handle onto the same
// engine so adaptive state is shared across the pool. sql.DB.Close closes
// the connector, which closes the engine.
type Connector struct {
	drv    *Driver
	dsn    string
	db     *nodb.DB
	tenant string
	apikey string
}

// Connect hands out a connection sharing the engine.
func (c *Connector) Connect(context.Context) (sqldriver.Conn, error) {
	return &nodbConn{db: c.db, tenant: c.tenant, apikey: c.apikey}, nil
}

// Driver returns the parent driver.
func (c *Connector) Driver() sqldriver.Driver { return c.drv }

// Close shuts the shared engine down (called by sql.DB.Close).
func (c *Connector) Close() error { return c.db.Close() }

// DB exposes the underlying engine, for hybrid applications that want the
// native API (streaming cursor, work counters, policy switches) alongside
// database/sql.
func (c *Connector) DB() *nodb.DB { return c.db }

// errReadOnly rejects DML/DDL: the engine queries raw files in place.
var errReadOnly = errors.New("nodb: the engine is read-only; only SELECT is supported")

type nodbConn struct {
	db     *nodb.DB
	tenant string
	apikey string
	ownsDB bool // legacy Driver.Open path: the conn owns the engine
	closed bool
}

// tenantContext tags the execution context with the connection's tenant
// identity so the engine's governor attributes adaptive state to it.
func tenantContext(ctx context.Context, tenant, apikey string) context.Context {
	if tenant != "" {
		ctx = qos.WithTenant(ctx, tenant)
	}
	if apikey != "" {
		ctx = qos.WithAPIKey(ctx, apikey)
	}
	return ctx
}

// Prepare implements driver.Conn.
func (c *nodbConn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext.
func (c *nodbConn) PrepareContext(ctx context.Context, query string) (sqldriver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := c.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &nodbStmt{s: s, tenant: c.tenant, apikey: c.apikey}, nil
}

// Close implements driver.Conn. Connections are handles; only the legacy
// one-off path owns (and closes) the engine.
func (c *nodbConn) Close() error {
	c.closed = true
	if c.ownsDB {
		return c.db.Close()
	}
	return nil
}

// Begin implements driver.Conn; nodb has no transactions.
func (c *nodbConn) Begin() (sqldriver.Tx, error) {
	return nil, errors.New("nodb: transactions are not supported")
}

// Ping implements driver.Pinger.
func (c *nodbConn) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.closed {
		return sqldriver.ErrBadConn
	}
	return c.db.Ping()
}

// IsValid implements driver.Validator.
func (c *nodbConn) IsValid() bool { return !c.closed && c.db.Ping() == nil }

// QueryContext implements driver.QueryerContext: ad-hoc queries skip the
// Prepare round-trip and go straight to the engine's cursor (still through
// its plan cache).
func (c *nodbConn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	r, err := c.db.QueryRows(tenantContext(ctx, c.tenant, c.apikey), query, vals...)
	if err != nil {
		return nil, err
	}
	return &nodbRows{r: r}, nil
}

// ExecContext implements driver.ExecerContext; it always fails (read-only).
func (c *nodbConn) ExecContext(context.Context, string, []sqldriver.NamedValue) (sqldriver.Result, error) {
	return nil, errReadOnly
}

// namedValues converts driver arguments, rejecting named parameters (the
// SQL dialect has only ordinal `?` placeholders).
func namedValues(args []sqldriver.NamedValue) ([]any, error) {
	vals := make([]any, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("nodb: named parameter %q is not supported; use ordinal ?", a.Name)
		}
		vals[i] = a.Value
	}
	return vals, nil
}

type nodbStmt struct {
	s      *nodb.Stmt
	tenant string
	apikey string
}

// Close implements driver.Stmt.
func (s *nodbStmt) Close() error { return s.s.Close() }

// NumInput implements driver.Stmt; database/sql enforces the arity.
func (s *nodbStmt) NumInput() int { return s.s.NumParams() }

// Exec implements driver.Stmt; it always fails (read-only).
func (s *nodbStmt) Exec([]sqldriver.Value) (sqldriver.Result, error) {
	return nil, errReadOnly
}

// Query implements driver.Stmt.
func (s *nodbStmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	named := make([]sqldriver.NamedValue, len(args))
	for i, a := range args {
		named[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return s.QueryContext(context.Background(), named)
}

// QueryContext implements driver.StmtQueryContext.
func (s *nodbStmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	r, err := s.s.QueryRows(tenantContext(ctx, s.tenant, s.apikey), vals...)
	if err != nil {
		return nil, err
	}
	return &nodbRows{r: r}, nil
}

// nodbRows adapts the engine's streaming cursor to driver.Rows. Rows flow
// through one at a time; closing early propagates to the cursor, which
// stops the raw-file scan mid-pass.
type nodbRows struct {
	r *nodb.Rows
}

// Columns implements driver.Rows.
func (r *nodbRows) Columns() []string { return r.r.Columns() }

// Close implements driver.Rows.
func (r *nodbRows) Close() error { return r.r.Close() }

// Next implements driver.Rows.
func (r *nodbRows) Next(dest []sqldriver.Value) error {
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	row := r.r.Row()
	for i, v := range row {
		switch v.Typ {
		case nodb.Int64:
			dest[i] = v.I
		case nodb.Float64:
			dest[i] = v.F
		default:
			dest[i] = v.S
		}
	}
	return nil
}
