// Package driver registers nodb as a database/sql driver named "nodb",
// opening the whole database/sql ecosystem to the adaptive engine:
//
//	import _ "nodb/driver"
//
//	db, err := sql.Open("nodb", "link=events=./events.csv&policy=partial-v2")
//	stmt, err := db.Prepare("select a1, a2 from events where a1 between ? and ?")
//	rows, err := stmt.Query(10, 1000)
//
// The DSN is a URL query string. Keys:
//
//	link=NAME=PATH        link a raw file as table NAME (repeatable)
//	policy=NAME           loading policy (columns, full, partial-v1,
//	                      partial-v2, splitfiles, external, auto)
//	cracking=BOOL         enable adaptive indexing
//	splitdir=DIR          split-file directory (required for splitfiles)
//	mem=BYTES             memory budget for adaptive state (0 = unlimited)
//	evict=NAME            eviction policy under mem: cost (default) or lru
//	cachedir=DIR          persistent auxiliary-structure cache: snapshots
//	                      written on close, restored lazily after reopen,
//	                      eviction spills instead of discarding
//	workers=N             tokenization parallelism
//	chunk=BYTES           raw-file read chunk size
//	batchsize=N           rows per batch of the vectorized execution
//	                      pipeline (0 = default, 1024)
//
// Values follow URL escaping rules; paths containing '&' or '%' must be
// percent-encoded.
//
// One sql.DB shares one engine: every connection database/sql hands out is
// a lightweight handle onto the same adaptive store, so what one query
// loads, the next one reuses — exactly like the embedded API. Query
// results stream through the engine's cursor, so iterating a *sql.Rows
// pulls rows incrementally and closing it early stops the raw-file scan
// mid-pass. The engine is read-only from SQL: Exec and transactions return
// errors.
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"

	"nodb"
	"nodb/internal/govern"
)

func init() {
	sql.Register("nodb", &Driver{})
}

// Driver is the database/sql driver for nodb.
type Driver struct{}

// Open opens a one-off connection that owns its engine (legacy path; the
// pooling path is OpenConnector, which database/sql prefers).
func (d *Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	conn, err := c.Connect(context.Background())
	if err != nil {
		return nil, err
	}
	conn.(*nodbConn).ownsDB = true
	return conn, nil
}

// OpenConnector parses the DSN, opens the shared engine and links the
// tables. DSN errors surface here — at sql.Open time.
func (d *Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	opts, links, err := ParseDSN(dsn)
	if err != nil {
		return nil, err
	}
	db := nodb.Open(opts)
	for _, l := range links {
		if err := db.Link(l.Name, l.Path); err != nil {
			_ = db.Close()
			return nil, err
		}
	}
	return &Connector{drv: d, dsn: dsn, db: db}, nil
}

// Link is one table registration from a DSN.
type Link struct {
	Name, Path string
}

// ParseDSN decodes a DSN into engine options and table links.
func ParseDSN(dsn string) (nodb.Options, []Link, error) {
	var opts nodb.Options
	var links []Link
	vals, err := url.ParseQuery(dsn)
	if err != nil {
		return opts, nil, fmt.Errorf("nodb driver: invalid DSN: %w", err)
	}
	for key, vv := range vals {
		for _, v := range vv {
			switch key {
			case "link":
				name, path, ok := strings.Cut(v, "=")
				if !ok || name == "" || path == "" {
					return opts, nil, fmt.Errorf("nodb driver: link %q is not NAME=PATH", v)
				}
				links = append(links, Link{Name: name, Path: path})
			case "policy":
				p, err := nodb.ParsePolicy(v)
				if err != nil {
					return opts, nil, fmt.Errorf("nodb driver: %w", err)
				}
				opts.Policy = p
			case "cracking":
				b, err := strconv.ParseBool(v)
				if err != nil {
					return opts, nil, fmt.Errorf("nodb driver: invalid cracking %q", v)
				}
				opts.Cracking = b
			case "splitdir":
				opts.SplitDir = v
			case "cachedir":
				opts.CacheDir = v
			case "mem":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return opts, nil, fmt.Errorf("nodb driver: invalid mem %q", v)
				}
				opts.MemoryBudget = n
			case "evict":
				if _, err := govern.PolicyByName(v); err != nil {
					return opts, nil, fmt.Errorf("nodb driver: %w", err)
				}
				opts.EvictionPolicy = v
			case "workers":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return opts, nil, fmt.Errorf("nodb driver: invalid workers %q", v)
				}
				opts.Workers = n
			case "chunk":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return opts, nil, fmt.Errorf("nodb driver: invalid chunk %q", v)
				}
				opts.ChunkSize = n
			case "batchsize":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return opts, nil, fmt.Errorf("nodb driver: invalid batchsize %q", v)
				}
				opts.BatchSize = n
			default:
				return opts, nil, fmt.Errorf("nodb driver: unknown DSN key %q", key)
			}
		}
	}
	return opts, links, nil
}

// Connector owns the shared engine for one sql.DB. database/sql calls
// Connect for every pooled connection; each gets a handle onto the same
// engine so adaptive state is shared across the pool. sql.DB.Close closes
// the connector, which closes the engine.
type Connector struct {
	drv *Driver
	dsn string
	db  *nodb.DB
}

// Connect hands out a connection sharing the engine.
func (c *Connector) Connect(context.Context) (sqldriver.Conn, error) {
	return &nodbConn{db: c.db}, nil
}

// Driver returns the parent driver.
func (c *Connector) Driver() sqldriver.Driver { return c.drv }

// Close shuts the shared engine down (called by sql.DB.Close).
func (c *Connector) Close() error { return c.db.Close() }

// DB exposes the underlying engine, for hybrid applications that want the
// native API (streaming cursor, work counters, policy switches) alongside
// database/sql.
func (c *Connector) DB() *nodb.DB { return c.db }

// errReadOnly rejects DML/DDL: the engine queries raw files in place.
var errReadOnly = errors.New("nodb: the engine is read-only; only SELECT is supported")

type nodbConn struct {
	db     *nodb.DB
	ownsDB bool // legacy Driver.Open path: the conn owns the engine
	closed bool
}

// Prepare implements driver.Conn.
func (c *nodbConn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext.
func (c *nodbConn) PrepareContext(ctx context.Context, query string) (sqldriver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := c.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &nodbStmt{s: s}, nil
}

// Close implements driver.Conn. Connections are handles; only the legacy
// one-off path owns (and closes) the engine.
func (c *nodbConn) Close() error {
	c.closed = true
	if c.ownsDB {
		return c.db.Close()
	}
	return nil
}

// Begin implements driver.Conn; nodb has no transactions.
func (c *nodbConn) Begin() (sqldriver.Tx, error) {
	return nil, errors.New("nodb: transactions are not supported")
}

// Ping implements driver.Pinger.
func (c *nodbConn) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if c.closed {
		return sqldriver.ErrBadConn
	}
	return c.db.Ping()
}

// IsValid implements driver.Validator.
func (c *nodbConn) IsValid() bool { return !c.closed && c.db.Ping() == nil }

// QueryContext implements driver.QueryerContext: ad-hoc queries skip the
// Prepare round-trip and go straight to the engine's cursor (still through
// its plan cache).
func (c *nodbConn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	r, err := c.db.QueryRows(ctx, query, vals...)
	if err != nil {
		return nil, err
	}
	return &nodbRows{r: r}, nil
}

// ExecContext implements driver.ExecerContext; it always fails (read-only).
func (c *nodbConn) ExecContext(context.Context, string, []sqldriver.NamedValue) (sqldriver.Result, error) {
	return nil, errReadOnly
}

// namedValues converts driver arguments, rejecting named parameters (the
// SQL dialect has only ordinal `?` placeholders).
func namedValues(args []sqldriver.NamedValue) ([]any, error) {
	vals := make([]any, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("nodb: named parameter %q is not supported; use ordinal ?", a.Name)
		}
		vals[i] = a.Value
	}
	return vals, nil
}

type nodbStmt struct {
	s *nodb.Stmt
}

// Close implements driver.Stmt.
func (s *nodbStmt) Close() error { return s.s.Close() }

// NumInput implements driver.Stmt; database/sql enforces the arity.
func (s *nodbStmt) NumInput() int { return s.s.NumParams() }

// Exec implements driver.Stmt; it always fails (read-only).
func (s *nodbStmt) Exec([]sqldriver.Value) (sqldriver.Result, error) {
	return nil, errReadOnly
}

// Query implements driver.Stmt.
func (s *nodbStmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	named := make([]sqldriver.NamedValue, len(args))
	for i, a := range args {
		named[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return s.QueryContext(context.Background(), named)
}

// QueryContext implements driver.StmtQueryContext.
func (s *nodbStmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	r, err := s.s.QueryRows(ctx, vals...)
	if err != nil {
		return nil, err
	}
	return &nodbRows{r: r}, nil
}

// nodbRows adapts the engine's streaming cursor to driver.Rows. Rows flow
// through one at a time; closing early propagates to the cursor, which
// stops the raw-file scan mid-pass.
type nodbRows struct {
	r *nodb.Rows
}

// Columns implements driver.Rows.
func (r *nodbRows) Columns() []string { return r.r.Columns() }

// Close implements driver.Rows.
func (r *nodbRows) Close() error { return r.r.Close() }

// Next implements driver.Rows.
func (r *nodbRows) Next(dest []sqldriver.Value) error {
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	row := r.r.Row()
	for i, v := range row {
		switch v.Typ {
		case nodb.Int64:
			dest[i] = v.I
		case nodb.Float64:
			dest[i] = v.F
		default:
			dest[i] = v.S
		}
	}
	return nil
}
