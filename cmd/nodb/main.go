// Command nodb is the interactive shell: link raw CSV files and fire SQL
// at them with zero loading steps — the paper's "here are my data files,
// here are my queries" experience.
//
// Usage:
//
//	nodb [-policy columns|full|partial-v1|partial-v2|splitfiles|external]
//	     [-cracking] [-mem bytes] [-evict cost|lru] [-splitdir dir]
//	     [-cachedir dir] [-workers n] [-chunksize bytes] [-batchsize rows]
//	     [name=path.csv ...]
//
// With -cachedir, everything the session teaches the engine (positional
// maps, cached columns, coverage, split manifests) is snapshotted there on
// exit and restored lazily when a later session points at the same files —
// the shell starts warm instead of re-learning.
//
// Files given as name=path arguments are linked at startup. Commands:
//
//	\link <name> <path>   link a raw file as a table
//	\unlink <name>        forget a table
//	\tables               list linked tables
//	\schema <name>        show a table's detected schema
//	\policy [name]        show or switch the loading policy
//	\explain <sql>        show the physical plan with its load operators
//	\stats                cumulative work counters and store size
//	\quit                 exit
//
// Anything else is executed as SQL.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"nodb"
	"nodb/internal/cliutil"
)

func main() {
	var (
		policyName = flag.String("policy", "columns", "loading policy")
		cracking   = flag.Bool("cracking", false, "enable adaptive indexing (database cracking)")
		mem        = flag.Int64("mem", 0, "memory budget in bytes (0 = unlimited)")
		evict      = flag.String("evict", "cost", "eviction policy under -mem: cost or lru")
		splitDir   = flag.String("splitdir", "", "directory for split files (default: $TMPDIR/nodb-splits)")
		cacheDir   = flag.String("cachedir", "", "persistent auxiliary-structure cache directory (empty = no disk tier)")
		workers    = flag.Int("workers", 0, "tokenizer workers (0 = one per CPU; 1 = sequential)")
		chunkSize  = flag.Int("chunksize", 0, "raw-file read chunk size in bytes (0 = default)")
		batchSize  = flag.Int("batchsize", 0, "rows per vectorized execution batch (0 = default, 1024)")
	)
	flag.Parse()
	cliutil.Exit(cliutil.CheckFlags(
		cliutil.NonNegativeInt("nodb", "workers", *workers),
		cliutil.NonNegativeInt("nodb", "chunksize", *chunkSize),
		cliutil.NonNegativeInt64("nodb", "mem", *mem),
		cliutil.NonNegativeInt("nodb", "batchsize", *batchSize),
	))

	pol, err := nodb.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodb: %v\n", err)
		os.Exit(2)
	}
	sd := *splitDir
	if sd == "" {
		sd = os.TempDir() + "/nodb-splits"
	}
	db, err := nodb.OpenErr(nodb.Options{
		Policy:         pol,
		Cracking:       *cracking,
		MemoryBudget:   *mem,
		EvictionPolicy: *evict,
		SplitDir:       sd,
		CacheDir:       *cacheDir,
		Workers:        *workers,
		ChunkSize:      *chunkSize,
		BatchSize:      *batchSize,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodb: %v\n", err)
		os.Exit(2)
	}
	defer db.Close()

	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "nodb: argument %q is not name=path\n", arg)
			os.Exit(2)
		}
		if err := db.Link(name, path); err != nil {
			fmt.Fprintf(os.Stderr, "nodb: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("linked %s -> %s\n", name, path)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("nodb shell — \\link a CSV and start querying (\\quit to exit)")
	for {
		fmt.Print("nodb> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if quit := command(db, line); quit {
				return
			}
			continue
		}
		res, err := db.Query(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Print(res.String())
		w := res.Stats.Work
		fmt.Printf("(%d rows; %v; raw %s read, %d values parsed, %d cache hits)\n",
			len(res.Rows), res.Stats.Wall.Round(10_000), fmtBytes(w.RawBytesRead), w.ValuesParsed, w.CacheHits)
	}
}

// command handles a backslash command; reports whether to quit.
func command(db *nodb.DB, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\link":
		if len(fields) != 3 {
			fmt.Println("usage: \\link <name> <path>")
			return false
		}
		if err := db.Link(fields[1], fields[2]); err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		sch, _ := db.Schema(fields[1])
		fmt.Printf("linked %s %s\n", fields[1], sch)
	case "\\unlink":
		if len(fields) != 2 {
			fmt.Println("usage: \\unlink <name>")
			return false
		}
		if err := db.Unlink(fields[1]); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	case "\\tables":
		for _, t := range db.Tables() {
			fmt.Println(t)
		}
	case "\\schema":
		if len(fields) != 2 {
			fmt.Println("usage: \\schema <name>")
			return false
		}
		sch, err := db.Schema(fields[1])
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		fmt.Println(sch)
	case "\\policy":
		if len(fields) == 1 {
			fmt.Println(db.Policy())
			return false
		}
		p, err := nodb.ParsePolicy(fields[1])
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		db.SetPolicy(p)
		fmt.Printf("policy is now %s\n", p)
	case "\\explain":
		q := strings.TrimSpace(strings.TrimPrefix(line, "\\explain"))
		s, err := db.Explain(q)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return false
		}
		fmt.Print(s)
	case "\\stats":
		w := db.Work()
		fmt.Printf("raw read:        %s\n", fmtBytes(w.RawBytesRead))
		fmt.Printf("split read:      %s\n", fmtBytes(w.SplitBytesRead))
		fmt.Printf("split written:   %s\n", fmtBytes(w.SplitBytesWritten))
		fmt.Printf("rows tokenized:  %d\n", w.RowsTokenized)
		fmt.Printf("values parsed:   %d\n", w.ValuesParsed)
		fmt.Printf("rows abandoned:  %d\n", w.RowsAbandoned)
		fmt.Printf("cache hit/miss:  %d/%d\n", w.CacheHits, w.CacheMisses)
		fmt.Printf("posmap hit/miss: %d/%d\n", w.PosMapHits, w.PosMapMisses)
		fmt.Printf("synopsis:        %d scans pruned, %d portions skipped\n", w.SynopsisHits, w.PortionsSkipped)
		fmt.Printf("store size:      %s\n", fmtBytes(db.MemSize()))
		if ss := db.SnapStats(); ss.Enabled {
			fmt.Printf("snapshot cache:  %s (hit %d, miss %d, save %d, spill %d, invalid %d)\n",
				ss.Dir, ss.Hits, ss.Misses, ss.Saves, ss.Spills, ss.Invalidations)
		}
	default:
		fmt.Printf("unknown command %s\n", fields[0])
	}
	return false
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
