// Command nodbd is the NoDB query server: it links raw CSV files into one
// shared engine and serves SQL over HTTP/JSON to many concurrent clients.
//
// Usage:
//
//	nodbd [-addr :8080] [-policy columns|full|partial-v1|partial-v2|splitfiles|external|auto]
//	      [-cracking] [-mem bytes] [-result-cache bytes] [-splitdir dir]
//	      [-workers n] [-chunksize bytes] [-cachedir dir] [-snapshot-interval d]
//	      [-follow d] [-tenants spec] [-tenant-unknown reject|default] [-pprof addr]
//	      [-max-inflight n] [-timeout d] [-max-timeout d] [-grace d]
//	      name=path.csv [name=path.csv ...]
//
//	nodbd -coordinator -shards host1:8080,host2:8080,host3:8080
//	      [-shard-timeout d] [-shard-retries n] [-retry-backoff d]
//	      [-synopsis-ttl d] [-health-interval d] [-partial-results]
//
// In coordinator mode nodbd holds no data: it fans each query out to the
// shard nodbd instances, pushes filters and partial aggregates down so
// only reduced rows cross the network, consults cached shard synopses to
// skip shards whose zone maps prove zero qualifying rows, and merges the
// NDJSON partial streams into one result with the same HTTP surface as a
// single node. With -partial-results a dead shard degrades the answer
// (reported in the stats trailer) instead of failing the query.
//
// Multi-tenant serving: -tenants takes "name:key[:weight],..." (or
// "@file" with one entry per line) and partitions both the -mem budget
// and the -max-inflight admission slots by weight. Clients select their
// tenant with the X-API-Key header; -tenant-unknown decides whether a
// request with no (or an unrecognized) key is rejected with 401 or served
// as the built-in default tenant. -result-cache bounds a result cache
// keyed on normalized SQL plus raw-file signatures, so identical queries
// against unchanged files answer without touching the engine, and
// identical in-flight queries collapse into one execution.
//
// With -follow, nodbd polls every followed table's raw file at the given
// interval (plain stat calls — no notification dependency) and folds
// appended rows into the learned structures incrementally: the positional
// map, cached columns, coverage regions, scan synopsis and split files
// all extend over just the new tail, so a growing log keeps its warmed-up
// query latency. Tables named on the command line are followed when
// -follow is set; tables attached later via PUT /v1/tables/{name} choose
// per table with "follow": true. Edits that are not pure appends are
// detected by checksums and invalidate the derived state, exactly as a
// query would.
//
// With -cachedir, the auxiliary structures the workload teaches the engine
// are snapshotted there periodically (-snapshot-interval) and on shutdown,
// and restored lazily after a restart — the server comes back warm instead
// of re-paying the adaptive learning curve under live traffic. Mount the
// cache dir on a volume that survives the process for that to matter.
//
// Example:
//
//	nodbd -addr :8080 -policy partial-v2 events=events.csv
//	curl -s localhost:8080/query -d '{"query": "select count(*) from events"}'
//
//	# Stream a large result as NDJSON: rows arrive while the scan runs,
//	# and hanging up stops the scan mid-file.
//	curl -sN localhost:8080/query/stream -d '{"query": "select a1, a2 from events where a1 > 10"}'
//
// The server enforces admission control (-max-inflight; excess requests
// get 429), applies a per-query timeout (-timeout, overridable per request
// up to -max-timeout), and shuts down gracefully on SIGINT/SIGTERM:
// in-flight queries get a grace period, new ones are refused, and
// cancellation propagates into running scans.
//
// With -pprof, net/http/pprof is served on a *separate* listener (off by
// default) so profiling stays off the query port and can be bound to
// localhost while the query API faces the network:
//
//	nodbd -addr :8080 -pprof localhost:6060 events=events.csv
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nodb"
	"nodb/internal/cliutil"
	"nodb/internal/cluster"
	"nodb/internal/qos"
	"nodb/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		policyName   = flag.String("policy", "columns", "loading policy")
		cracking     = flag.Bool("cracking", false, "enable adaptive indexing (database cracking)")
		mem          = flag.Int64("mem", 0, "memory budget in bytes (0 = unlimited)")
		evict        = flag.String("evict", "cost", "eviction policy under -mem: cost or lru")
		resultCache  = flag.Int64("result-cache", 0, "result cache budget in bytes (0 = disabled)")
		tenantSpec   = flag.String("tenants", "", `tenant spec "name:key[:weight],..." or "@file"; empty = single-tenant`)
		tenantPolicy = flag.String("tenant-unknown", "default", "unknown API keys: reject (401) or default (serve as default tenant)")
		splitDir     = flag.String("splitdir", "", "directory for split files (default: $TMPDIR/nodb-splits)")
		cacheDir     = flag.String("cachedir", "", "persistent auxiliary-structure cache directory (empty = no disk tier)")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "how often to flush snapshots to -cachedir (0 = only on shutdown)")
		follow       = flag.Duration("follow", 0, "tail-follow poll interval: re-stat followed tables this often and ingest appended rows incrementally (0 = disabled)")
		workers      = flag.Int("workers", 0, "tokenizer workers (0 = one per CPU; 1 = sequential)")
		chunkSize    = flag.Int("chunksize", 0, "raw-file read chunk size in bytes (0 = default)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate listen address (e.g. localhost:6060); empty = disabled")
		maxInFlight  = flag.Int("max-inflight", 64, "max concurrently executing queries; excess requests get 429")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-query timeout (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 5*time.Minute, "cap on per-request timeout_ms (0 = no cap)")
		grace        = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight queries")

		coordinator    = flag.Bool("coordinator", false, "run as a scatter-gather coordinator over -shards instead of serving local data")
		shards         = flag.String("shards", "", "comma-separated shard addresses (coordinator mode)")
		shardTimeout   = flag.Duration("shard-timeout", 30*time.Second, "per-attempt timeout against each shard (0 = none)")
		shardRetries   = flag.Int("shard-retries", 2, "retries per failed shard interaction (total attempts = retries+1)")
		retryBackoff   = flag.Duration("retry-backoff", 100*time.Millisecond, "first retry backoff, doubling per retry")
		synopsisTTL    = flag.Duration("synopsis-ttl", 5*time.Second, "how long cached shard synopses are trusted for pruning")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "shard /readyz polling period (0 = no background poller)")
		partialResults = flag.Bool("partial-results", false, "complete queries with partial results when a shard stays dead (reported in the stats trailer)")
	)
	flag.Parse()

	var rejectUnknown bool
	switch *tenantPolicy {
	case "reject":
		rejectUnknown = true
	case "default":
	default:
		fmt.Fprintf(os.Stderr, "nodbd: -tenant-unknown must be reject or default, got %q\n", *tenantPolicy)
		os.Exit(2)
	}
	var tenants []nodb.TenantConfig
	var registry *qos.Registry
	if *tenantSpec != "" {
		var err error
		tenants, err = qos.ParseTenantSpec(*tenantSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nodbd: -tenants: %v\n", err)
			os.Exit(2)
		}
		registry, err = qos.NewRegistry(tenants, rejectUnknown)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nodbd: -tenants: %v\n", err)
			os.Exit(2)
		}
	}

	if *coordinator {
		runCoordinator(coordinatorOpts{
			addr:           *addr,
			shards:         *shards,
			shardTimeout:   *shardTimeout,
			shardRetries:   *shardRetries,
			retryBackoff:   *retryBackoff,
			synopsisTTL:    *synopsisTTL,
			healthInterval: *healthInterval,
			partialResults: *partialResults,
			maxInFlight:    *maxInFlight,
			timeout:        *timeout,
			maxTimeout:     *maxTimeout,
			grace:          *grace,
			tenants:        registry,
		})
		return
	}
	cliutil.Exit(cliutil.CheckFlags(
		cliutil.NonNegativeInt("nodbd", "workers", *workers),
		cliutil.NonNegativeInt("nodbd", "chunksize", *chunkSize),
		cliutil.NonNegativeInt64("nodbd", "mem", *mem),
		cliutil.OptionalListenAddr("nodbd", "pprof", *pprofAddr),
	))

	pol, err := nodb.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodbd: %v\n", err)
		os.Exit(2)
	}
	sd := *splitDir
	if sd == "" {
		sd = os.TempDir() + "/nodb-splits"
	}
	db, err := nodb.OpenErr(nodb.Options{
		Policy:           pol,
		Cracking:         *cracking,
		MemoryBudget:     *mem,
		EvictionPolicy:   *evict,
		ResultCacheBytes: *resultCache,
		Tenants:          tenants,
		SplitDir:         sd,
		CacheDir:         *cacheDir,
		Workers:          *workers,
		ChunkSize:        *chunkSize,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodbd: %v\n", err)
		os.Exit(2)
	}
	defer db.Close()

	for _, arg := range flag.Args() {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "nodbd: argument %q is not name=path\n", arg)
			os.Exit(2)
		}
		if err := db.Attach(name, nodb.TableSpec{Path: path, Follow: *follow > 0}); err != nil {
			fmt.Fprintf(os.Stderr, "nodbd: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("attached %s -> %s\n", name, path)
	}

	snapEvery := *snapInterval
	if *cacheDir == "" {
		snapEvery = 0 // no disk tier: nothing to flush
	}
	srv := server.New(server.Config{
		DB:               db,
		MaxInFlight:      *maxInFlight,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		SnapshotInterval: snapEvery,
		FollowInterval:   *follow,
		Tenants:          registry,
	})
	defer srv.Close()
	// Every table is linked: flip the readiness probe so coordinators
	// start routing queries here.
	srv.MarkReady()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *pprofAddr != "" {
		// pprof gets its own mux and listener: nothing from the profiling
		// surface leaks onto the query port, and the address can stay
		// loopback-only. Best-effort — a failed pprof listener is reported
		// but does not take the query server down.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "nodbd: pprof listener: %v\n", err)
			}
		}()
		defer psrv.Close()
		fmt.Printf("pprof listening on %s\n", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("nodbd listening on %s (policy=%s, max-inflight=%d)\n", *addr, pol, *maxInFlight)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let in-flight queries drain
		// within the grace period, then cancel whatever is left — the
		// context plumbing stops their scans between chunks.
		fmt.Fprintln(os.Stderr, "nodbd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			httpSrv.Close()
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "nodbd: %v\n", err)
			os.Exit(1)
		}
	}
}

type coordinatorOpts struct {
	addr           string
	shards         string
	shardTimeout   time.Duration
	shardRetries   int
	retryBackoff   time.Duration
	synopsisTTL    time.Duration
	healthInterval time.Duration
	partialResults bool
	maxInFlight    int
	timeout        time.Duration
	maxTimeout     time.Duration
	grace          time.Duration
	tenants        *qos.Registry
}

// runCoordinator serves the scatter-gather coordinator: no local data,
// just fan-out, merge, and the same HTTP surface as a single node.
func runCoordinator(opts coordinatorOpts) {
	var addrs []string
	for _, a := range strings.Split(opts.shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "nodbd: -coordinator requires -shards host1,host2,...")
		os.Exit(2)
	}
	if len(flag.Args()) > 0 {
		fmt.Fprintln(os.Stderr, "nodbd: coordinator mode takes no name=path arguments; link files on the shards")
		os.Exit(2)
	}

	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Shards:         addrs,
		ShardTimeout:   opts.shardTimeout,
		Retries:        opts.shardRetries,
		RetryBackoff:   opts.retryBackoff,
		SynopsisTTL:    opts.synopsisTTL,
		HealthInterval: opts.healthInterval,
		AllowPartial:   opts.partialResults,
		MaxInFlight:    opts.maxInFlight,
		DefaultTimeout: opts.timeout,
		MaxTimeout:     opts.maxTimeout,
		Tenants:        opts.tenants,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodbd: %v\n", err)
		os.Exit(2)
	}
	defer coord.Close()

	httpSrv := &http.Server{
		Addr:              opts.addr,
		Handler:           coord,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("nodbd coordinator listening on %s (shards=%d, partial-results=%v)\n",
		opts.addr, len(addrs), opts.partialResults)

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nodbd: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), opts.grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			httpSrv.Close()
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "nodbd: %v\n", err)
			os.Exit(1)
		}
	}
}
