// Command nodbgen generates synthetic flat data files: the workloads of
// the paper's experiments (tables of unique random integers) plus skewed,
// float, string and mixed-schema variants for the examples, as CSV or
// newline-delimited JSON.
//
// Usage:
//
//	nodbgen -rows 1000000 -cols 4 -o table.csv
//	nodbgen -rows 100000 -cols 3 -kinds seq,float,string -header -o mixed.csv
//	nodbgen -rows 100000 -cols 3 -format ndjson -o events.ndjson
//
// For cluster mode, -shard i/n emits only the i-th of n disjoint
// contiguous row ranges of the same deterministic table — run it once per
// shard with the same -rows/-seed and concatenating the outputs (headers
// stripped) reproduces the unsharded file byte for byte:
//
//	nodbgen -rows 1000000 -cols 4 -shard 1/3 -o shard1/table.csv
//	nodbgen -rows 1000000 -cols 4 -shard 2/3 -o shard2/table.csv
//	nodbgen -rows 1000000 -cols 4 -shard 3/3 -o shard3/table.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nodb/internal/csvgen"
)

func main() {
	var (
		rows   = flag.Int("rows", 1_000_000, "number of tuples")
		cols   = flag.Int("cols", 4, "number of attributes")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output path (required)")
		header = flag.Bool("header", false, "emit a header line a1,a2,...")
		delim  = flag.String("delim", ",", "field delimiter (one character)")
		kinds  = flag.String("kinds", "", "comma-separated per-column kinds: unique,uniform,zipf,float,string,seq")
		format = flag.String("format", "csv", "output format: csv or ndjson")
		shard  = flag.String("shard", "", "emit only shard i of n disjoint row ranges, as i/n (e.g. 2/3)")
	)
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "nodbgen: -o is required")
		os.Exit(2)
	}
	shardIndex, shardCount, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodbgen: %v\n", err)
		os.Exit(2)
	}
	if len(*delim) != 1 {
		fmt.Fprintln(os.Stderr, "nodbgen: -delim must be a single character")
		os.Exit(2)
	}
	var ofmt csvgen.Format
	switch *format {
	case "csv":
		ofmt = csvgen.FormatCSV
	case "ndjson":
		ofmt = csvgen.FormatNDJSON
	default:
		fmt.Fprintf(os.Stderr, "nodbgen: -format must be csv or ndjson (got %q)\n", *format)
		os.Exit(2)
	}

	spec := csvgen.Spec{
		Rows:       *rows,
		Cols:       *cols,
		Seed:       *seed,
		Header:     *header,
		Delimiter:  (*delim)[0],
		Format:     ofmt,
		ShardIndex: shardIndex,
		ShardCount: shardCount,
	}
	if *kinds != "" {
		for _, k := range strings.Split(*kinds, ",") {
			cs, err := parseKind(strings.TrimSpace(k))
			if err != nil {
				fmt.Fprintf(os.Stderr, "nodbgen: %v\n", err)
				os.Exit(2)
			}
			spec.ColSpecs = append(spec.ColSpecs, cs)
		}
	}

	if err := csvgen.WriteFile(*out, spec); err != nil {
		fmt.Fprintf(os.Stderr, "nodbgen: %v\n", err)
		os.Exit(1)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodbgen: %v\n", err)
		os.Exit(1)
	}
	if shardCount > 1 {
		fmt.Printf("wrote %s: shard %d/%d of %d rows x %d cols, %d bytes\n",
			*out, shardIndex, shardCount, *rows, *cols, st.Size())
		return
	}
	fmt.Printf("wrote %s: %d rows x %d cols, %d bytes\n", *out, *rows, *cols, st.Size())
}

// parseShard parses "i/n"; empty means unsharded.
func parseShard(s string) (index, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard must be i/n (got %q)", s)
	}
	index, err = strconv.Atoi(is)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard index %q is not a number", is)
	}
	count, err = strconv.Atoi(ns)
	if err != nil {
		return 0, 0, fmt.Errorf("-shard count %q is not a number", ns)
	}
	if count < 1 || index < 1 || index > count {
		return 0, 0, fmt.Errorf("-shard %d/%d out of range", index, count)
	}
	return index, count, nil
}

func parseKind(k string) (csvgen.ColSpec, error) {
	switch k {
	case "unique":
		return csvgen.ColSpec{Kind: csvgen.UniqueInts}, nil
	case "uniform":
		return csvgen.ColSpec{Kind: csvgen.UniformInts}, nil
	case "zipf":
		return csvgen.ColSpec{Kind: csvgen.ZipfInts}, nil
	case "float":
		return csvgen.ColSpec{Kind: csvgen.Floats}, nil
	case "string":
		return csvgen.ColSpec{Kind: csvgen.Strings}, nil
	case "seq":
		return csvgen.ColSpec{Kind: csvgen.SequentialInts}, nil
	default:
		return csvgen.ColSpec{}, fmt.Errorf("unknown column kind %q", k)
	}
}
