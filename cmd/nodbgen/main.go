// Command nodbgen generates synthetic flat data files: the workloads of
// the paper's experiments (tables of unique random integers) plus skewed,
// float, string and mixed-schema variants for the examples, as CSV or
// newline-delimited JSON.
//
// Usage:
//
//	nodbgen -rows 1000000 -cols 4 -o table.csv
//	nodbgen -rows 100000 -cols 3 -kinds seq,float,string -header -o mixed.csv
//	nodbgen -rows 100000 -cols 3 -format ndjson -o events.ndjson
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nodb/internal/csvgen"
)

func main() {
	var (
		rows   = flag.Int("rows", 1_000_000, "number of tuples")
		cols   = flag.Int("cols", 4, "number of attributes")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output path (required)")
		header = flag.Bool("header", false, "emit a header line a1,a2,...")
		delim  = flag.String("delim", ",", "field delimiter (one character)")
		kinds  = flag.String("kinds", "", "comma-separated per-column kinds: unique,uniform,zipf,float,string,seq")
		format = flag.String("format", "csv", "output format: csv or ndjson")
	)
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "nodbgen: -o is required")
		os.Exit(2)
	}
	if len(*delim) != 1 {
		fmt.Fprintln(os.Stderr, "nodbgen: -delim must be a single character")
		os.Exit(2)
	}
	var ofmt csvgen.Format
	switch *format {
	case "csv":
		ofmt = csvgen.FormatCSV
	case "ndjson":
		ofmt = csvgen.FormatNDJSON
	default:
		fmt.Fprintf(os.Stderr, "nodbgen: -format must be csv or ndjson (got %q)\n", *format)
		os.Exit(2)
	}

	spec := csvgen.Spec{
		Rows:      *rows,
		Cols:      *cols,
		Seed:      *seed,
		Header:    *header,
		Delimiter: (*delim)[0],
		Format:    ofmt,
	}
	if *kinds != "" {
		for _, k := range strings.Split(*kinds, ",") {
			cs, err := parseKind(strings.TrimSpace(k))
			if err != nil {
				fmt.Fprintf(os.Stderr, "nodbgen: %v\n", err)
				os.Exit(2)
			}
			spec.ColSpecs = append(spec.ColSpecs, cs)
		}
	}

	if err := csvgen.WriteFile(*out, spec); err != nil {
		fmt.Fprintf(os.Stderr, "nodbgen: %v\n", err)
		os.Exit(1)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nodbgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d rows x %d cols, %d bytes\n", *out, *rows, *cols, st.Size())
}

func parseKind(k string) (csvgen.ColSpec, error) {
	switch k {
	case "unique":
		return csvgen.ColSpec{Kind: csvgen.UniqueInts}, nil
	case "uniform":
		return csvgen.ColSpec{Kind: csvgen.UniformInts}, nil
	case "zipf":
		return csvgen.ColSpec{Kind: csvgen.ZipfInts}, nil
	case "float":
		return csvgen.ColSpec{Kind: csvgen.Floats}, nil
	case "string":
		return csvgen.ColSpec{Kind: csvgen.Strings}, nil
	case "seq":
		return csvgen.ColSpec{Kind: csvgen.SequentialInts}, nil
	default:
		return csvgen.ColSpec{}, fmt.Errorf("unknown column kind %q", k)
	}
}
