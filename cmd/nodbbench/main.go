// Command nodbbench regenerates the paper's figures and tables.
//
// Usage:
//
//	nodbbench [-exp id[,id...]] [-scale f] [-data dir] [-wall] [-list]
//
// With no -exp it runs every experiment. Each experiment prints a table
// with one row per x value (input size or query position) and one column
// per system curve, in modeled seconds under the calibrated cost model
// (add -wall for measured wall-clock tables too). See EXPERIMENTS.md for
// the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nodb/internal/cliutil"
	"nodb/internal/experiments"
)

func main() {
	var (
		expIDs    = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		scale     = flag.Float64("scale", 1.0, "row-count scale factor")
		data      = flag.String("data", "", "directory for generated data files (default: $TMPDIR/nodb-experiments)")
		wall      = flag.Bool("wall", false, "also print wall-clock tables")
		list      = flag.Bool("list", false, "list experiments and exit")
		seed      = flag.Int64("seed", 0, "workload seed (0 = fixed default)")
		workers   = flag.Int("workers", 0, "tokenizer workers in experiment engines (0 = experiment default)")
		chunkSize = flag.Int("chunksize", 0, "raw-file read chunk size in experiment engines (0 = default)")
	)
	flag.Parse()
	cliutil.Exit(cliutil.CheckFlags(
		cliutil.NonNegativeInt("nodbbench", "workers", *workers),
		cliutil.NonNegativeInt("nodbbench", "chunksize", *chunkSize),
		cliutil.NonNegativeFloat("nodbbench", "scale", *scale),
	))

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Description)
		}
		return
	}

	cfg := experiments.Config{
		DataDir: *data, Scale: *scale, Seed: *seed,
		Workers: *workers, ChunkSize: *chunkSize,
	}

	var runners []experiments.Runner
	if *expIDs == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*expIDs, ",") {
			r, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "nodbbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nodbbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		if *wall {
			fmt.Print(rep.FormatWall())
		}
		fmt.Printf("(%s ran in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
