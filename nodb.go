// Package nodb is a query engine over raw flat files with zero
// initialization cost — a from-scratch Go reproduction of the system
// envisioned in "Here are my Data Files. Here are my Queries. Where are my
// Results?" (Idreos, Alagiannis, Johnson, Ailamaki — CIDR 2011).
//
// Point it at CSV files and fire SQL immediately:
//
//	db := nodb.Open(nodb.Options{})
//	defer db.Close()
//	if err := db.Link("events", "events.csv"); err != nil { ... }
//	res, err := db.Query("select sum(a1), avg(a2) from events where a1 > 10 and a1 < 1000")
//
// There is no load step. The engine brings data in adaptively, driven by
// the queries: depending on the configured policy it loads whole columns
// on demand (ColumnLoads), only the qualifying values (PartialLoads), or
// cracks the raw file into per-column split files as a side effect of
// scanning (SplitFiles). Everything it learns — parsed columns, covered
// value regions, attribute byte positions, split files — makes the next
// query cheaper, and all of it is disposable: edit the CSV with a text
// editor and the engine notices and starts over.
package nodb

import (
	"context"
	"fmt"

	"nodb/internal/catalog"
	"nodb/internal/core"
	"nodb/internal/errs"
	"nodb/internal/govern"
	"nodb/internal/metrics"
	"nodb/internal/plan"
	"nodb/internal/qos"
	"nodb/internal/schema"
	"nodb/internal/snapshot"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
	"nodb/internal/vfs"
)

// Policy selects the adaptive loading strategy.
type Policy int

// Loading policies. See DESIGN.md for the mapping to the paper's curves.
const (
	// ColumnLoads (the default) loads whole missing columns on demand.
	ColumnLoads Policy = iota
	// FullLoad loads the complete table on first touch — classic DBMS
	// behavior, kept as a comparator.
	FullLoad
	// PartialLoadsV1 pushes WHERE clauses into loading and retains
	// nothing between queries.
	PartialLoadsV1
	// PartialLoadsV2 retains qualifying values; repeated or narrower
	// queries are answered without touching the file.
	PartialLoadsV2
	// SplitFiles loads columns through per-column split files created as
	// a side effect of earlier scans ("file cracking").
	SplitFiles
	// External re-reads and re-parses the file for every query, caching
	// nothing (MySQL-CSV-engine-style external tables).
	External
	// Auto self-tunes per column: cold columns are partially loaded with
	// retention, and columns the workload keeps touching are promoted to
	// full column loads (the paper's §5.5 robustness direction).
	Auto
)

func (p Policy) internal() plan.Policy {
	switch p {
	case FullLoad:
		return plan.PolicyFullLoad
	case PartialLoadsV1:
		return plan.PolicyPartialV1
	case PartialLoadsV2:
		return plan.PolicyPartialV2
	case SplitFiles:
		return plan.PolicySplitFiles
	case External:
		return plan.PolicyExternal
	case Auto:
		return plan.PolicyAuto
	default:
		return plan.PolicyColumnLoads
	}
}

func fromInternal(p plan.Policy) Policy {
	switch p {
	case plan.PolicyFullLoad:
		return FullLoad
	case plan.PolicyPartialV1:
		return PartialLoadsV1
	case plan.PolicyPartialV2:
		return PartialLoadsV2
	case plan.PolicySplitFiles:
		return SplitFiles
	case plan.PolicyExternal:
		return External
	case plan.PolicyAuto:
		return Auto
	default:
		return ColumnLoads
	}
}

func (p Policy) String() string { return p.internal().String() }

// ParsePolicy converts a policy name ("columns", "full", "partial-v1",
// "partial-v2", "splitfiles", "external", "auto") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	ip, err := plan.ParsePolicy(s)
	if err != nil {
		return 0, err
	}
	return fromInternal(ip), nil
}

// ParseEvictionPolicy validates an eviction policy name ("cost", "lru";
// "" selects the default) and returns its canonical form for
// Options.EvictionPolicy. Open does not validate the field itself —
// unknown names silently fall back to the default — so call this first
// when the name comes from user input.
func ParseEvictionPolicy(s string) (string, error) {
	p, err := govern.PolicyByName(s)
	if err != nil {
		return "", err
	}
	return p.Name(), nil
}

// Options configures a DB.
type Options struct {
	// Policy is the adaptive loading strategy (default ColumnLoads).
	Policy Policy
	// Cracking enables adaptive indexing (database cracking) on loaded
	// integer predicate columns.
	Cracking bool
	// SplitDir is the directory for split files; required for the
	// SplitFiles policy. Files there are derived state and safe to
	// delete.
	SplitDir string
	// MemoryBudget caps the bytes of adaptive state the engine may hold
	// (0 = unlimited, the default). Cached columns, retained partial
	// loads, positional maps and split files all register with a global
	// memory governor; when their total exceeds the budget, the governor
	// evicts individual structures — chosen by EvictionPolicy, never while
	// a running query has them pinned — until the total fits again.
	// Evicted state is rebuilt transparently by the next query that needs
	// it.
	MemoryBudget int64
	// EvictionPolicy selects the governor's victim order: "cost" (the
	// default) evicts the structure holding the most bytes per second of
	// estimated rebuild work, so a cheap-to-reload cached column goes
	// before a positional map that took many passes to learn; "lru"
	// evicts the least recently used regardless of rebuild cost. Open
	// cannot return an error, so an unrecognized name silently falls back
	// to "cost"; OpenErr rejects it instead. Use OpenErr (or validate
	// with ParseEvictionPolicy) when the name comes from user input — the
	// CLI flags and driver DSN already do.
	EvictionPolicy string
	// CacheDir enables the persistent auxiliary-structure cache (the
	// disk tier of the adaptive store). When set, everything the engine
	// learns — positional maps, cached columns, retained partial loads
	// with their coverage regions, split-file manifests — is snapshotted
	// there on Close (and by Snapshot / the server's periodic flusher)
	// and restored lazily by the first query that wants it after a
	// restart, so a reopened DB starts warm instead of re-paying the
	// adaptive learning curve. Under a MemoryBudget, eviction *spills*
	// expensive structures there instead of discarding them, and
	// re-admits them on demand. Snapshot files are versioned,
	// checksummed, and keyed by each raw file's path, size and mtime:
	// editing a file invalidates its snapshots, and a torn or corrupted
	// file degrades to a cold start — never a wrong answer. Empty
	// disables the disk tier.
	CacheDir string
	// Workers is tokenization parallelism; 0 (the default) uses one worker
	// per CPU — raw-file scans are parallel by default. Set 1 (or any
	// negative value) for a sequential scan.
	Workers int
	// ChunkSize overrides the raw-file streaming read size (default 1 MiB).
	// Smaller chunks tighten the granularity of cancellation and of cursor
	// early termination at the cost of more read calls.
	ChunkSize int
	// DisablePositionalMap turns the positional map off.
	DisablePositionalMap bool
	// DisableSynopsis turns off the per-portion scan synopsis: zone maps
	// (per-portion min/max bounds) collected free during any tokenizing
	// pass, which let later selective queries skip whole file portions
	// without reading them. On by default; disable only for ablations.
	DisableSynopsis bool
	// DisableRevalidation skips per-query file-change detection.
	DisableRevalidation bool
	// BatchSize is the rows-per-batch of the vectorized execution
	// pipeline (0 = the default, 1024). Smaller batches tighten LIMIT and
	// cancellation granularity at the cost of per-batch overhead.
	BatchSize int
	// DisableVectorExec routes queries through the row-at-a-time
	// execution paths instead of the vectorized operator pipeline. The
	// two produce identical results; the row paths are kept as the
	// differential-testing oracle and for ablations.
	DisableVectorExec bool
	// ResultCacheBytes bounds the query result cache (0, the default,
	// disables it). Results are keyed by the normalized bound SQL plus the
	// signature (size, mtime, prefix CRC) of every raw file the statement
	// touches, so editing a file implicitly invalidates its cached
	// results. Cached bytes register with the memory governor under their
	// own kind and are the first to go under budget pressure. Identical
	// in-flight queries additionally collapse singleflight-style: N
	// concurrent duplicates cost one execution.
	ResultCacheBytes int64
	// Tenants partitions the memory governor's budget per tenant: each
	// tenant's slice is MemoryBudget × weight ÷ Σweights, and a tenant
	// exceeding its slice loses its own structures first — one heavy
	// tenant cannot evict another's positional maps. Queries attribute
	// the structures they touch to the tenant carried in their context
	// (the server sets it from X-API-Key; the driver from apikey= in the
	// DSN). Empty disables tenancy.
	Tenants []TenantConfig
}

// TenantConfig declares one tenant: name, API key, and share weight.
type TenantConfig = qos.Tenant

// Value is one typed scalar in a result row.
type Value = storage.Value

// Result is a query result: column names, rows, and per-query work stats.
type Result = core.Result

// Rows is a streaming query cursor with database/sql-style iteration:
// Next, Scan, Columns, Stats, Err, Close. A LIMIT — or closing the cursor
// mid-iteration — stops the underlying raw-file scan between chunks
// instead of finishing the pass. Every Rows must be closed.
type Rows = core.Rows

// Stmt is a prepared statement: parsed and validated once, executed many
// times with `?` placeholder arguments. Safe for concurrent use.
type Stmt = core.Stmt

// ErrClosed is returned by queries, preparations and links after Close.
var ErrClosed = core.ErrClosed

// Typed failure categories, re-exported from the engine's error
// taxonomy. Any error a query or refresh returns can be classified with
// errors.Is against these; see internal/errs for the full semantics.
var (
	// ErrRawIO marks a failed read of a raw data file.
	ErrRawIO = errs.ErrRawIO
	// ErrSnapshotCorrupt marks a snapshot/spill file that failed
	// validation. It never surfaces from queries (corrupt snapshots
	// degrade to cold starts); it may surface from explicit Snapshot
	// round-trips in tests and tools.
	ErrSnapshotCorrupt = errs.ErrSnapshotCorrupt
	// ErrDiskFull marks an out-of-space write; the snapshot tier
	// degrades to memory-only operation instead of failing queries.
	ErrDiskFull = errs.ErrDiskFull
	// ErrFileShrunk marks a raw file that got shorter mid-scan.
	ErrFileShrunk = errs.ErrFileShrunk
	// ErrShardUnavailable marks a cluster shard that exhausted its
	// retry budget; with AllowPartial the coordinator reports it in
	// the trailer instead of failing the query.
	ErrShardUnavailable = errs.ErrShardUnavailable
	// ErrCircuitOpen marks a shard request refused locally because
	// that shard's circuit breaker is open.
	ErrCircuitOpen = errs.ErrCircuitOpen
)

// QueryStats is the per-query work accounting attached to results.
type QueryStats = core.QueryStats

// WorkSnapshot is a point-in-time copy of the engine's work counters.
type WorkSnapshot = metrics.Snapshot

// Type is a column's data type.
type Type = schema.Type

// Column data types.
const (
	Int64   = schema.Int64
	Float64 = schema.Float64
	String  = schema.String
)

// DB is a NoDB instance: a set of linked raw files plus whatever the
// engine has adaptively loaded from them so far.
type DB struct {
	e *core.Engine
}

// Open creates a DB. It never touches the filesystem until a file is
// linked — there is nothing to initialize.
//
// Open cannot fail, so it applies lenient defaults to invalid fields: an
// unrecognized EvictionPolicy silently falls back to "cost", and invalid
// Tenants entries partition as best they can. Use OpenErr when options
// come from user input (flags, a DSN, a config file) and misconfiguration
// should be an error instead.
func Open(opts Options) *DB {
	return &DB{e: core.NewEngine(coreOptions(opts))}
}

// openFS is the test seam for fault injection: Open with every disk
// access routed through fsys (see internal/vfs). Chaos tests inject a
// vfs.FaultFS here; production code always opens against the real disk.
func openFS(opts Options, fsys vfs.FS) *DB {
	co := coreOptions(opts)
	co.FS = fsys
	return &DB{e: core.NewEngine(co)}
}

// OpenErr is Open with validation: it rejects an unrecognized
// EvictionPolicy (the field Open silently defaults), negative byte
// budgets, and malformed Tenants (duplicate names or keys, missing
// fields, non-positive weights). The CLI flags and the driver DSN open
// through it, so a typo'd "-evict lru " or tenant table fails loudly at
// startup instead of degrading silently.
func OpenErr(opts Options) (*DB, error) {
	if _, err := govern.PolicyByName(opts.EvictionPolicy); err != nil {
		return nil, err
	}
	if opts.MemoryBudget < 0 {
		return nil, fmt.Errorf("nodb: negative MemoryBudget %d", opts.MemoryBudget)
	}
	if opts.ResultCacheBytes < 0 {
		return nil, fmt.Errorf("nodb: negative ResultCacheBytes %d", opts.ResultCacheBytes)
	}
	if len(opts.Tenants) > 0 {
		names := map[string]bool{}
		keys := map[string]bool{}
		for _, t := range opts.Tenants {
			if t.Name == "" {
				return nil, fmt.Errorf("nodb: tenant with key %q has no name", t.Key)
			}
			if names[t.Name] {
				return nil, fmt.Errorf("nodb: duplicate tenant name %q", t.Name)
			}
			if t.Key != "" && keys[t.Key] {
				return nil, fmt.Errorf("nodb: duplicate tenant API key (tenant %q)", t.Name)
			}
			if t.Weight < 0 {
				return nil, fmt.Errorf("nodb: tenant %q has negative weight %g", t.Name, t.Weight)
			}
			names[t.Name] = true
			if t.Key != "" {
				keys[t.Key] = true
			}
		}
	}
	return Open(opts), nil
}

func coreOptions(opts Options) core.Options {
	return core.Options{
		Policy:               opts.Policy.internal(),
		Cracking:             opts.Cracking,
		SplitDir:             opts.SplitDir,
		MemoryBudget:         opts.MemoryBudget,
		EvictionPolicy:       opts.EvictionPolicy,
		CacheDir:             opts.CacheDir,
		Workers:              opts.Workers,
		ChunkSize:            opts.ChunkSize,
		DisablePositionalMap: opts.DisablePositionalMap,
		DisableSynopsis:      opts.DisableSynopsis,
		DisableRevalidation:  opts.DisableRevalidation,
		BatchSize:            opts.BatchSize,
		DisableVectorExec:    opts.DisableVectorExec,
		ResultCacheBytes:     opts.ResultCacheBytes,
		Tenants:              opts.Tenants,
	}
}

// Close releases the DB: subsequent queries, preparations and links
// return ErrClosed, in-flight cursors are cancelled (their raw-file scans
// stop between chunks), and all adaptively loaded state is dropped. With
// a CacheDir configured, every table's auxiliary structures are
// snapshotted to disk first, so reopening with the same CacheDir starts
// warm; the returned error reports a failed snapshot write (the close
// itself always completes). Close is idempotent.
func (db *DB) Close() error { return db.e.Close() }

// Snapshot serializes every table's auxiliary structures to the CacheDir
// now, without closing the DB. No-op (nil) when no CacheDir is
// configured. The server's periodic flusher calls this so a crash loses
// at most one flush interval of learning.
func (db *DB) Snapshot() error { return db.e.SaveSnapshots() }

// SnapStats describes the snapshot cache's activity: restores served
// (hits), probes that found nothing (misses), snapshots written (saves),
// structures spilled by eviction instead of discarded (spills), and
// stale or corrupt files discarded (invalidations).
type SnapStats = snapshot.Stats

// SnapStats reports the snapshot cache's activity; Enabled is false (and
// everything zero) when no CacheDir is configured.
func (db *DB) SnapStats() SnapStats { return db.e.SnapStats() }

// Ping reports whether the DB is usable; it returns ErrClosed after Close.
func (db *DB) Ping() error { return db.e.Ping() }

// TableSpec describes a raw file to attach as a table: where it lives and
// how to read it. The zero value plus a Path is the common case — format,
// delimiter, header and column types are detected automatically.
type TableSpec struct {
	// Path is the raw flat file to serve queries from.
	Path string
	// Format forces the file format, "csv" or "ndjson", instead of
	// sniffing the prefix. Forcing matters for files whose first rows are
	// unrepresentative (e.g. an empty NDJSON log that will grow later).
	Format string
	// Delimiter forces the CSV delimiter instead of sniffing.
	Delimiter byte
	// Follow marks the table for tail-follow polling: nodbd's -follow
	// mode periodically calls Refresh on every followed table, folding in
	// appended rows. The library itself never polls — embedders run their
	// own loop over Followed/Refresh.
	Follow bool
}

// Attach registers the raw file described by spec as a queryable table,
// replacing any previous table of that name (and dropping its derived
// state). This is the only setup step NoDB requires.
func (db *DB) Attach(name string, spec TableSpec) error {
	return db.e.Attach(name, core.TableSpec{
		Path:      spec.Path,
		Format:    spec.Format,
		Delimiter: spec.Delimiter,
		Follow:    spec.Follow,
	})
}

// Detach removes a table and drops everything derived from its file.
func (db *DB) Detach(name string) error { return db.e.Detach(name) }

// RefreshResult describes what a Refresh found: whether the file changed,
// whether the change was append-only growth that was folded in
// incrementally (Grown — learned structures kept), and how many rows and
// bytes arrived.
type RefreshResult = core.RefreshResult

// Refresh re-stats a table's raw file now. Rows appended since the last
// look (the file grew and its previous contents are intact) extend the
// positional map, cached columns, coverage regions, scan synopsis and
// split files in one pass over just the new tail; any other edit
// invalidates the derived state, exactly as a query would. Queries detect
// both cases automatically unless DisableRevalidation is set; Refresh is
// for follow loops and for engines that disabled revalidation.
func (db *DB) Refresh(name string) (RefreshResult, error) { return db.e.Refresh(name) }

// Followed returns the names of attached tables whose TableSpec set
// Follow, sorted.
func (db *DB) Followed() []string { return db.e.Followed() }

// Link registers the flat file at path as a queryable table. The schema
// (delimiter, header, column names and types) is detected automatically.
//
// Deprecated: Link is Attach(name, TableSpec{Path: path}); new code should
// use Attach, which can also force the format and request tail-following.
func (db *DB) Link(name, path string) error { return db.e.Link(name, path) }

// Unlink removes a table and drops everything derived from its file.
//
// Deprecated: Unlink is the old name of Detach.
func (db *DB) Unlink(name string) error { return db.e.Unlink(name) }

// Tables returns the linked table names.
func (db *DB) Tables() []string { return db.e.Tables() }

// Schema returns the detected schema of a linked table.
func (db *DB) Schema(name string) (*schema.Schema, error) { return db.e.TableSchema(name) }

// Query executes one SELECT statement, fully buffered. Supported SQL:
// aggregates (sum/min/max/avg/count), inner equi-joins, conjunctive WHERE
// clauses (comparisons and BETWEEN, with optional `?` placeholders),
// GROUP BY, ORDER BY, LIMIT.
func (db *DB) Query(query string) (*Result, error) { return db.e.Query(query) }

// QueryContext is Query under a context: cancellation or timeout aborts
// the query cooperatively, stopping a raw-file scan between chunks instead
// of letting it finish the pass. The context's error is returned. Optional
// args bind `?` placeholders in the statement.
func (db *DB) QueryContext(ctx context.Context, query string, args ...any) (*Result, error) {
	return db.e.QueryContext(ctx, query, args...)
}

// QueryRows executes one SELECT statement and returns a streaming cursor.
// Optional args bind `?` placeholders. The cursor must be closed; iterate
// with Next/Scan and check Err afterwards.
//
// Plain single-table selections stream incrementally, and under the
// scanning policies (PartialLoadsV1, External — or any policy once the
// needed columns are loaded) a LIMIT or an early Close stops the raw-file
// scan mid-pass. Plans that need their whole input first (aggregates,
// GROUP BY, ORDER BY, joins) and the retaining loaders (PartialLoadsV2,
// Auto, cracking), which merge their scan into the adaptive store,
// materialize before the first row is delivered; closing such a cursor
// mid-load still cancels the scan between chunks.
func (db *DB) QueryRows(ctx context.Context, query string, args ...any) (*Rows, error) {
	return db.e.QueryRows(ctx, query, args...)
}

// Prepare parses and validates one SELECT statement with optional `?`
// placeholders for repeated execution. Parsing goes through the engine's
// bounded plan cache keyed by normalized SQL, so preparing (or ad-hoc
// querying) the same statement twice parses once; arguments are bound as
// typed values, never spliced into SQL text.
func (db *DB) Prepare(query string) (*Stmt, error) { return db.e.Prepare(query) }

// Explain returns the physical plan — including the adaptive load
// operators chosen for the current store state — without executing.
func (db *DB) Explain(query string) (string, error) { return db.e.Explain(query) }

// ExplainContext is Explain under a context.
func (db *DB) ExplainContext(ctx context.Context, query string) (string, error) {
	return db.e.ExplainContext(ctx, query)
}

// Policy returns the current loading policy.
func (db *DB) Policy() Policy { return fromInternal(db.e.Policy()) }

// SetPolicy switches the loading policy for subsequent queries; loaded
// state remains usable.
func (db *DB) SetPolicy(p Policy) { db.e.SetPolicy(p.internal()) }

// Work returns the cumulative work counters (raw bytes read, values
// parsed, cache hits, ...) since Open.
func (db *DB) Work() WorkSnapshot { return db.e.Counters().Snapshot() }

// MemSize returns the bytes of adaptively loaded state currently held.
func (db *DB) MemSize() int64 { return db.e.Catalog().MemSize() }

// MemStats is the memory governor's accounting snapshot: the configured
// budget, bytes held and pinned, the number of registered adaptive
// structures, cumulative evictions, and the active eviction policy.
type MemStats = govern.Stats

// MemStats reports the memory governor's accounting. Used is the total
// bytes of governed adaptive state (columns, partial loads, positional
// maps, split files); with a MemoryBudget set, Used returns under the
// budget after each query completes (pinned in-flight state may exceed it
// transiently).
func (db *DB) MemStats() MemStats { return db.e.MemStats() }

// ResultCacheStats is the result cache's accounting snapshot: the
// configured byte bound, current footprint, entry count, and cumulative
// hit/miss/insert/eviction counters. Enabled is false (and everything
// else zero) when Options.ResultCacheBytes was 0.
type ResultCacheStats = qos.CacheStats

// ResultCacheStats reports the result cache's accounting.
func (db *DB) ResultCacheStats() ResultCacheStats { return db.e.ResultCacheStats() }

// TableStats describes the adaptive-store state of one linked table:
// which columns are fully or partially loaded, covered regions, positional
// map entries, and split-file footprint.
type TableStats = core.TableStats

// TableStats reports what the engine has adaptively built for a table.
func (db *DB) TableStats(name string) (TableStats, error) { return db.e.TableStats(name) }

// IngestStats is a table's append-ingestion accounting: rows and bytes
// folded in by incremental tail extensions, and when the last one ran.
type IngestStats = catalog.IngestStats

// Signature identifies one version of a raw file: size, mtime, and the
// prefix/tail checksums that certify prefix-stable growth.
type Signature = catalog.Signature

// SynopsisExport is one table's exported scan synopsis: the learned
// portion layout with per-portion zone maps, plus the raw file's signature
// so consumers can detect staleness.
type SynopsisExport struct {
	// Portions is the per-portion state; nil until a complete layout has
	// been learned (no scan finished yet, or the synopsis was dropped).
	Portions []synopsis.PortionState
	// Signature identifies the raw file version the synopsis describes.
	Signature catalog.Signature
}

// TableSynopsis exports a table's scan synopsis. Cluster coordinators use
// it (via nodbd's /cluster/synopsis) to skip whole shards whose value
// ranges provably cannot satisfy a query's predicates.
func (db *DB) TableSynopsis(name string) (SynopsisExport, error) {
	ps, sig, err := db.e.TableSynopsis(name)
	if err != nil {
		return SynopsisExport{}, err
	}
	return SynopsisExport{Portions: ps, Signature: sig}, nil
}
