// Quickstart: the paper's pitch in 40 lines — here is a data file, here
// are queries, where are the results? No schema declaration, no load step.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"nodb"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Your data file: plain CSV, written by whatever produced it.
	path := filepath.Join(dir, "measurements.csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100_000; i++ {
		fmt.Fprintf(f, "%d,%d,%d,%d\n", i, rng.Intn(1000), rng.Intn(1000), rng.Intn(1000))
	}
	f.Close()

	// Point the engine at it and query. That's the whole setup.
	db := nodb.Open(nodb.Options{})
	defer db.Close()
	if err := db.Link("m", path); err != nil {
		log.Fatal(err)
	}

	res, err := db.Query("select count(*), sum(a2), avg(a3), max(a4) from m where a1 between 1000 and 2000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("first query read %d raw bytes (loading happened as a side effect)\n",
		res.Stats.Work.RawBytesRead)

	// The second query over the same columns never touches the file.
	res2, err := db.Query("select avg(a2) from m where a1 < 500")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res2)
	fmt.Printf("second query read %d raw bytes (served by the adaptive store)\n",
		res2.Stats.Work.RawBytesRead)
}
