// Policies: run the same shifting workload under every loading policy and
// watch where the bytes go — a miniature of the paper's Figures 3 and 4.
// Full loading pays everything up front; column loads pay per touched
// column; partial loads pay per qualifying value; split files stop
// re-reading the raw file; external tables never stop.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"nodb"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-policies-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	path := filepath.Join(dir, "wide.csv")
	writeTable(path, 100_000, 8)

	queries := []string{
		"select sum(a1), avg(a2) from t where a1 > 10000 and a1 < 20000",
		"select sum(a1), avg(a2) from t where a1 > 12000 and a1 < 18000", // narrower
		"select sum(a7), avg(a8) from t where a7 > 30000 and a7 < 40000", // column shift
		"select sum(a7), avg(a8) from t where a7 > 30000 and a7 < 40000", // repeat
	}

	policies := []nodb.Policy{
		nodb.FullLoad, nodb.ColumnLoads, nodb.PartialLoadsV1,
		nodb.PartialLoadsV2, nodb.SplitFiles, nodb.External,
	}

	fmt.Printf("%-12s", "policy")
	for i := range queries {
		fmt.Printf("  %12s", fmt.Sprintf("Q%d raw KiB", i+1))
	}
	fmt.Printf("  %12s\n", "store KiB")

	for _, pol := range policies {
		db := nodb.Open(nodb.Options{Policy: pol, SplitDir: filepath.Join(dir, "splits-"+pol.String())})
		if err := db.Link("t", path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", pol)
		var last *nodb.Result
		for _, q := range queries {
			res, err := db.Query(q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %12.0f", float64(res.Stats.Work.RawBytesRead+res.Stats.Work.SplitBytesRead)/1024)
			last = res
		}
		fmt.Printf("  %12.0f\n", float64(db.MemSize())/1024)
		_ = last
		db.Close()
	}
	fmt.Println("\nevery policy returns identical answers; they differ only in when the work happens.")
}

func writeTable(path string, rows, cols int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(rows)
	for i := 0; i < rows; i++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				fmt.Fprint(f, ",")
			}
			// Column 0 and the rest are permutations so range selectivity
			// is predictable.
			if c == 0 {
				fmt.Fprint(f, perm[i])
			} else {
				fmt.Fprint(f, (perm[i]*(c+13))%rows)
			}
		}
		fmt.Fprintln(f)
	}
}
