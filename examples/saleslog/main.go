// Saleslog: a personal-data scenario from the paper's conclusion — the
// kind of file people keep in a spreadsheet export and never load into a
// database. A headered CSV of sales with mixed types gets joined against a
// product file, grouped, ordered and limited, with zero setup.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"nodb"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-saleslog-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	salesPath := filepath.Join(dir, "sales.csv")
	productsPath := filepath.Join(dir, "products.csv")
	writeSales(salesPath, 50_000)
	writeProducts(productsPath, 200)

	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads})
	defer db.Close()
	if err := db.Link("sales", salesPath); err != nil {
		log.Fatal(err)
	}
	if err := db.Link("products", productsPath); err != nil {
		log.Fatal(err)
	}

	sch, _ := db.Schema("sales")
	fmt.Printf("detected schema of sales.csv: %s\n\n", sch)

	// Revenue by product category for big-ticket sales, top 5.
	res, err := db.Query(`
		select count(*), category, sum(amount)
		from sales s join products p on s.product_id = p.id
		where amount > 400
		group by category
		order by category
		limit 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revenue by category (amount > 400):")
	fmt.Println(res)

	// A quick follow-up touching only sales — no join, different columns.
	res2, err := db.Query("select min(amount), max(amount), avg(amount) from sales where qty >= 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("amount distribution for qty >= 3:")
	fmt.Println(res2)
}

func writeSales(path string, rows int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "product_id,qty,amount")
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < rows; i++ {
		fmt.Fprintf(f, "%d,%d,%.2f\n", rng.Intn(200), 1+rng.Intn(5), 5+rng.Float64()*495)
	}
}

func writeProducts(path string, n int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "id,category")
	cats := []string{"books", "music", "games", "tools", "garden"}
	for i := 0; i < n; i++ {
		fmt.Fprintf(f, "%d,%s\n", i, cats[i%len(cats)])
	}
}
