// Accesslog: querying newline-delimited JSON in situ. Structured logs are
// the NDJSON files everyone has lying around — one JSON object per line,
// straight from a web server or a log shipper — and loading them into a
// database is exactly the setup step NoDB removes. Link the file, query
// it; the engine tokenizes only the queried fields' byte ranges and delays
// JSON value parsing to the fields a query actually touches.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"nodb"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-accesslog-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	logPath := filepath.Join(dir, "access.ndjson")
	writeAccessLog(logPath, 100_000)

	// Partial loads push the WHERE clause into tokenization: rows failing
	// the status predicate are abandoned before their other fields are
	// even delimited, let alone parsed.
	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV2})
	defer db.Close()
	if err := db.Link("access", logPath); err != nil {
		log.Fatal(err)
	}

	sch, _ := db.Schema("access")
	fmt.Printf("detected schema of access.ndjson: %s\n\n", sch)

	res, err := db.Query("select count(*), sum(bytes) from access where status >= 500")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server errors and bytes served on them:")
	fmt.Println(res)
	w1 := res.Stats.Work
	fmt.Printf("(raw bytes read: %d, values parsed: %d)\n\n", w1.RawBytesRead, w1.ValuesParsed)

	// The follow-up touches the same rows: the adaptive store answers
	// from retained values instead of re-reading the file.
	res2, err := db.Query("select avg(ms) from access where status >= 500")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("latency of those errors:")
	fmt.Println(res2)
	w2 := res2.Stats.Work
	fmt.Printf("(raw bytes read: %d, values parsed: %d)\n\n", w2.RawBytesRead, w2.ValuesParsed)

	// Grouping over a string field — paths stay raw bytes in the file
	// until a query projects them.
	res3, err := db.Query(`
		select path, count(*)
		from access
		where status = 404
		group by path
		order by path
		limit 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top missing paths:")
	fmt.Println(res3)
}

func writeAccessLog(path string, rows int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(7))
	paths := []string{"/", "/index.html", "/api/items", "/api/login", "/favicon.ico", "/robots.txt", "/old-page"}
	statuses := []int{200, 200, 200, 200, 301, 404, 500, 503}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(f, `{"ts":%d,"path":"%s","status":%d,"bytes":%d,"ms":%.1f}`+"\n",
			1700000000+int64(i), paths[rng.Intn(len(paths))],
			statuses[rng.Intn(len(statuses))], rng.Intn(50_000), rng.Float64()*250)
	}
}
