// Exploration: the paper's motivating scientist (§1.2). A new instrument
// dump lands every day — hundreds of columns, and nobody knows yet which
// ones matter. The scientist zooms into a region, refines, jumps to other
// attributes, and edits the file by hand; the engine keeps up with zero
// administration, loading only what each query touches (Partial Loads V2).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"
)

import "nodb"

func main() {
	dir, err := os.MkdirTemp("", "nodb-exploration-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Today's instrument dump: 200k events x 16 attributes. The scientist
	// will look at 3 of them.
	path := filepath.Join(dir, "run-2026-06-12.csv")
	writeDump(path, 200_000, 16)

	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV2})
	defer db.Close()
	if err := db.Link("events", path); err != nil {
		log.Fatal(err)
	}

	session := []struct {
		intent string
		query  string
	}{
		{"is there anything interesting in the a3 band 50k-80k?",
			"select count(*), avg(a7) from events where a3 > 50000 and a3 < 80000"},
		{"zoom into the top of that band",
			"select count(*), avg(a7), max(a7) from events where a3 > 70000 and a3 < 80000"},
		{"zoom further",
			"select count(*), min(a7), max(a7) from events where a3 > 74000 and a3 < 76000"},
		{"re-check the first cut (already cached)",
			"select count(*), avg(a7) from events where a3 > 50000 and a3 < 80000"},
		{"pan to a different attribute entirely",
			"select count(*), avg(a12) from events where a3 > 50000 and a3 < 80000"},
	}
	for i, step := range session {
		res, err := db.Query(step.query)
		if err != nil {
			log.Fatal(err)
		}
		w := res.Stats.Work
		fromFile := "went back to the file"
		if w.RawBytesRead == 0 {
			fromFile = "answered from the adaptive store"
		}
		fmt.Printf("step %d (%s):\n%s  -> %s (%d raw bytes, %d rows abandoned early)\n\n",
			i+1, step.intent, res, fromFile, w.RawBytesRead, w.RowsAbandoned)
	}

	// The scientist edits the file with a text editor (paper §2.1) —
	// derived state is dropped and the next query sees the new data.
	fmt.Println("editing the raw file in place...")
	time.Sleep(10 * time.Millisecond)
	writeDump(path, 50_000, 16)
	res, err := db.Query("select count(*) from events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the edit: %s", res)
}

func writeDump(path string, rows, cols int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprint(f, rng.Intn(100_000))
		}
		fmt.Fprintln(f)
	}
}
