package nodb

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"nodb/internal/csvgen"
)

// TestPublicCursorLimitAndClose drives the streaming API end to end at
// the public surface: LIMIT and an early Close both stop the raw-file
// scan short of a full pass (asserted via the work counters).
func TestPublicCursorLimitAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.csv")
	const rows = 40000
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: rows, Cols: 4, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	db := Open(Options{Policy: PartialLoadsV1, ChunkSize: 4096})
	defer db.Close()
	if err := db.Link("big", path); err != nil {
		t.Fatal(err)
	}

	// Full pass baseline.
	before := db.Work().RawBytesRead
	res, err := db.Query("select a1 from big where a1 >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != rows {
		t.Fatalf("full query yielded %d rows, want %d", len(res.Rows), rows)
	}
	full := db.Work().RawBytesRead - before

	// LIMIT stops the scan after the first chunks.
	before = db.Work().RawBytesRead
	res, err = db.Query("select a1 from big where a1 >= 0 limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("LIMIT 5 yielded %d rows", len(res.Rows))
	}
	limited := db.Work().RawBytesRead - before
	if limited == 0 || limited*4 >= full {
		t.Fatalf("LIMIT 5 read %d raw bytes vs %d full; want early termination", limited, full)
	}

	// Closing a cursor mid-iteration stops the scan too.
	before = db.Work().RawBytesRead
	cur, err := db.QueryRows(context.Background(), "select a1 from big where a1 >= 0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && cur.Next(); i++ {
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	closed := db.Work().RawBytesRead - before
	if closed == 0 || closed >= st.Size() {
		t.Fatalf("closed cursor read %d of %d raw bytes; want a mid-pass stop", closed, st.Size())
	}
}

// TestPublicCloseSemantics: Close is real now — idempotent, typed error,
// state released.
func TestPublicCloseSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 100, Cols: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	db := Open(Options{})
	if err := db.Link("T", path); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("select sum(a1) from T"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
	if _, err := db.Query("select sum(a1) from T"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := db.Prepare("select a1 from T"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Prepare after Close = %v, want ErrClosed", err)
	}
	if db.MemSize() != 0 {
		t.Fatalf("MemSize after Close = %d, want 0", db.MemSize())
	}
}
