package nodb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestQueryContextAPI exercises the public context-aware entry points: a
// live context behaves like Query, a cancelled one returns the context
// error without disturbing the shared store.
func TestQueryContextAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.csv")
	if err := os.WriteFile(path, []byte("1,10\n2,20\n3,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open(Options{})
	defer db.Close()
	if err := db.Link("r", path); err != nil {
		t.Fatal(err)
	}

	res, err := db.QueryContext(context.Background(), "select sum(a1), sum(a2) from r")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 6 || res.Rows[0][1].I != 60 {
		t.Fatalf("got %v", res.Rows[0])
	}

	if _, err := db.ExplainContext(context.Background(), "select sum(a1) from r"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "select sum(a1) from r"); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext error = %v, want context.Canceled", err)
	}
	if _, err := db.ExplainContext(ctx, "select sum(a1) from r"); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExplainContext error = %v, want context.Canceled", err)
	}

	// The cancelled calls must not have broken the store.
	if _, err := db.QueryContext(context.Background(), "select count(*) from r"); err != nil {
		t.Fatal(err)
	}
}

// TestQueryContextParallelAPI drives the public API from parallel
// goroutines the way internal/server does.
func TestQueryContextParallelAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.csv")
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i*3)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open(Options{Policy: PartialLoadsV2})
	defer db.Close()
	if err := db.Link("p", path); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := db.QueryContext(context.Background(), "select count(*) from p where a1 >= 0")
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].I != 2000 {
					errs <- errors.New("wrong count under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
