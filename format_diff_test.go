package nodb

// Format differential tests: the same logical table serialized as CSV and
// as NDJSON must answer every query identically under every loading
// policy — including with synopsis pruning active, under memory-budget
// eviction, and across a cache-backed engine restart. The tokenizer is
// the only layer that differs between formats; everything above it is
// shared mechanism.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeDualFormatTable writes the same rows to a CSV file and an NDJSON
// file: cols-1 integer columns in [0, maxVal) plus one float column with
// fixed %.4f formatting so the value text is byte-identical in both
// files.
func writeDualFormatTable(t *testing.T, csvPath, jsonPath string, rows, cols int, maxVal int64, seed int64) {
	t.Helper()
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()

	rng := rand.New(rand.NewSource(seed))
	var csvb, jsonb strings.Builder
	for i := 0; i < rows; i++ {
		csvb.Reset()
		jsonb.Reset()
		jsonb.WriteByte('{')
		for c := 0; c < cols; c++ {
			var text string
			if c == cols-1 {
				text = fmt.Sprintf("%.4f", rng.Float64()*float64(maxVal))
			} else {
				text = fmt.Sprintf("%d", rng.Int63n(maxVal))
			}
			if c > 0 {
				csvb.WriteByte(',')
				jsonb.WriteByte(',')
			}
			csvb.WriteString(text)
			fmt.Fprintf(&jsonb, `"a%d":%s`, c+1, text)
		}
		csvb.WriteByte('\n')
		jsonb.WriteString("}\n")
		if _, err := cf.WriteString(csvb.String()); err != nil {
			t.Fatal(err)
		}
		if _, err := jf.WriteString(jsonb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

func formatDiffQueries(rng *rand.Rand, cols int, maxVal int64) []string {
	queries := []string{
		"select count(*) from t",
		"select * from t where a1 < 10 order by a1, a2 limit 20",
		fmt.Sprintf("select sum(a%d), avg(a%d) from t where a1 between %d and %d",
			cols, cols, maxVal/4, maxVal/2),
		"select a1, count(*) from t where a2 > 100 group by a1 order by a1 limit 10",
		// Out-of-range predicate: with synopses on, zone maps should prune
		// the whole file — both formats must still agree on the answer.
		fmt.Sprintf("select count(*), sum(a2) from t where a1 > %d", maxVal*10),
	}
	for i := 0; i < 20; i++ {
		queries = append(queries, randomQuery(rng, cols, maxVal))
	}
	return queries
}

// runFormatDiff links the CSV file as "t" in one engine and the NDJSON
// file as "t" in another, runs the workload through both, and compares
// full result tables byte for byte.
func runFormatDiff(t *testing.T, csvOpts, jsonOpts Options, csvPath, jsonPath string, queries []string) {
	t.Helper()
	csvDB, jsonDB := Open(csvOpts), Open(jsonOpts)
	defer csvDB.Close()
	defer jsonDB.Close()
	if err := csvDB.Link("t", csvPath); err != nil {
		t.Fatal(err)
	}
	if err := jsonDB.Link("t", jsonPath); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		want, err := csvDB.Query(q)
		if err != nil {
			t.Fatalf("csv query %d (%s): %v", qi, q, err)
		}
		got, err := jsonDB.Query(q)
		if err != nil {
			t.Fatalf("ndjson query %d (%s): %v", qi, q, err)
		}
		if g, w := resultTable(got), resultTable(want); g != w {
			t.Errorf("query %d (%s):\nndjson:\n%scsv:\n%s", qi, q, g, w)
		}
	}
}

// TestFormatDifferentialPolicies runs the CSV-vs-NDJSON comparison under
// every loading policy (synopses are on by default, so zone-map pruning
// is exercised throughout).
func TestFormatDifferentialPolicies(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	jsonPath := filepath.Join(dir, "t.ndjson")
	const rows, cols = 1500, 4
	const maxVal = 800
	writeDualFormatTable(t, csvPath, jsonPath, rows, cols, maxVal, 61)

	rng := rand.New(rand.NewSource(17))
	queries := formatDiffQueries(rng, cols, maxVal)

	for _, cfg := range diffConfigs(dir) {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			csvOpts, jsonOpts := cfg.opts, cfg.opts
			csvOpts.Workers = 1
			jsonOpts.Workers = 1
			if jsonOpts.SplitDir != "" {
				// Split registries are per-engine; NDJSON degrades the
				// policy to column loads but still must answer identically.
				jsonOpts.SplitDir = filepath.Join(dir, "sf-json")
			}
			runFormatDiff(t, csvOpts, jsonOpts, csvPath, jsonPath, queries)
		})
	}
}

// TestFormatDifferentialEviction repeats the comparison with a memory
// budget small enough to force evictions mid-workload, so some queries
// reload from raw bytes after auxiliary structures were dropped.
func TestFormatDifferentialEviction(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	jsonPath := filepath.Join(dir, "t.ndjson")
	const rows, cols = 2000, 4
	const maxVal = 1000
	writeDualFormatTable(t, csvPath, jsonPath, rows, cols, maxVal, 62)

	rng := rand.New(rand.NewSource(29))
	queries := formatDiffQueries(rng, cols, maxVal)

	for _, policy := range []Policy{ColumnLoads, PartialLoadsV2} {
		policy := policy
		t.Run(fmt.Sprint(policy), func(t *testing.T) {
			opts := Options{Policy: policy, Workers: 1, MemoryBudget: 48 << 10}
			runFormatDiff(t, opts, opts, csvPath, jsonPath, queries)
		})
	}
}

// TestFormatDifferentialWarmRestart closes and reopens cache-backed
// engines between two workload halves: the NDJSON engine must restore
// its positional maps and synopses from the cache directory and keep
// agreeing with the CSV engine.
func TestFormatDifferentialWarmRestart(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	jsonPath := filepath.Join(dir, "t.ndjson")
	const rows, cols = 1200, 4
	const maxVal = 600
	writeDualFormatTable(t, csvPath, jsonPath, rows, cols, maxVal, 63)

	csvCache := filepath.Join(dir, "cache-csv")
	jsonCache := filepath.Join(dir, "cache-json")
	rng := rand.New(rand.NewSource(31))
	queries := formatDiffQueries(rng, cols, maxVal)
	half := len(queries) / 2

	csvOpts := Options{Policy: PartialLoadsV2, Workers: 1, CacheDir: csvCache}
	jsonOpts := Options{Policy: PartialLoadsV2, Workers: 1, CacheDir: jsonCache}

	runFormatDiff(t, csvOpts, jsonOpts, csvPath, jsonPath, queries[:half])
	// Cold restart: fresh engines warm up from their cache directories.
	runFormatDiff(t, csvOpts, jsonOpts, csvPath, jsonPath, queries[half:])
}

// TestFormatDifferentialVectorModes crosses the format axis with the
// execution-mode axis: NDJSON through the batch pipeline vs CSV through
// the legacy row-at-a-time path (and vice versa) must still agree.
func TestFormatDifferentialVectorModes(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "t.csv")
	jsonPath := filepath.Join(dir, "t.ndjson")
	const rows, cols = 1000, 3
	const maxVal = 500
	writeDualFormatTable(t, csvPath, jsonPath, rows, cols, maxVal, 64)

	rng := rand.New(rand.NewSource(37))
	queries := formatDiffQueries(rng, cols, maxVal)

	t.Run("ndjson-vector-vs-csv-legacy", func(t *testing.T) {
		csvOpts := Options{Policy: PartialLoadsV2, Workers: 1, DisableVectorExec: true}
		jsonOpts := Options{Policy: PartialLoadsV2, Workers: 1, BatchSize: 32}
		runFormatDiff(t, csvOpts, jsonOpts, csvPath, jsonPath, queries)
	})
	t.Run("ndjson-legacy-vs-csv-vector", func(t *testing.T) {
		csvOpts := Options{Policy: PartialLoadsV2, Workers: 1, BatchSize: 32}
		jsonOpts := Options{Policy: PartialLoadsV2, Workers: 1, DisableVectorExec: true}
		runFormatDiff(t, csvOpts, jsonOpts, csvPath, jsonPath, queries)
	})
}
