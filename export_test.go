package nodb

// OpenFSForTest exposes the fault-injection open seam to external test
// packages. The server-over-faulty-disk integration tests live in
// package nodb_test because internal/server imports this package.
var OpenFSForTest = openFS
