package nodb

// Result-cache correctness tests: a cached answer must be byte-identical
// to the uncached one under every policy, an edited raw file must never
// be answered from stale cache, and singleflight followers must unwind
// cleanly when their context is canceled mid-collapse.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDifferentialResultCache repeats a randomized workload (with
// repetition, so the cache actually serves hits) against cached and
// uncached engines across the policy matrix and demands identical rows.
func TestDifferentialResultCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	const rows, cols = 2000, 5
	const maxVal = 1000
	writeRandomTable(t, path, rows, cols, maxVal, 131)

	rng := rand.New(rand.NewSource(17))
	base := make([]string, 12)
	for i := range base {
		base[i] = randomQuery(rng, cols, maxVal)
	}
	// Repeat every query three times so the second and third executions
	// are cache hits in the cached engines.
	var queries []string
	for r := 0; r < 3; r++ {
		queries = append(queries, base...)
	}

	configs := []diffConfig{
		{"uncached", Options{Policy: PartialLoadsV2}},
		{"cached", Options{Policy: PartialLoadsV2, ResultCacheBytes: 32 << 20}},
		{"cached+budget", Options{Policy: ColumnLoads, ResultCacheBytes: 32 << 20, MemoryBudget: 1 << 20}},
		{"cached+lru", Options{Policy: PartialLoadsV1, ResultCacheBytes: 32 << 20, MemoryBudget: 1 << 20, EvictionPolicy: "lru"}},
		{"cached+tiny", Options{Policy: PartialLoadsV2, ResultCacheBytes: 4 << 10}},
	}
	results := make([][]string, len(configs))
	for ci, cfg := range configs {
		db := Open(cfg.opts)
		if err := db.Link("t", path); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s: query %d (%s): %v", cfg.name, qi, q, err)
			}
			var row []string
			for _, v := range res.Rows[0] {
				row = append(row, v.String())
			}
			results[ci] = append(results[ci], strings.Join(row, "|"))
		}
		if ci == 1 {
			if st := db.ResultCacheStats(); st.Hits == 0 {
				t.Errorf("%s: repeated workload produced no cache hits: %+v", cfg.name, st)
			}
		}
		db.Close()
	}
	for ci := 1; ci < len(configs); ci++ {
		for qi := range queries {
			if results[ci][qi] != results[0][qi] {
				t.Errorf("%s disagrees with uncached on query %d (%s):\n  %s\n  %s",
					configs[ci].name, qi, queries[qi], results[ci][qi], results[0][qi])
			}
		}
	}
}

// TestResultCacheInvalidationOnEdit pins the implicit-invalidation
// contract: editing the raw file changes its signature, so the next
// query recomputes instead of replaying the stale cached answer.
func TestResultCacheInvalidationOnEdit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(path, []byte("1,10\n2,20\n3,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open(Options{ResultCacheBytes: 1 << 20})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}

	const q = "select sum(a2), count(*) from t"
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 60 {
		t.Fatalf("initial sum = %v, want 60", res.Rows[0][0])
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 60 {
		t.Fatalf("repeat sum = %v, want 60", res.Rows[0][0])
	}
	if st := db.ResultCacheStats(); st.Hits != 1 {
		t.Fatalf("repeat query missed the cache: %+v", st)
	}

	// Grow the file (size change guarantees a new signature even within
	// mtime granularity).
	if err := os.WriteFile(path, []byte("1,10\n2,20\n3,30\n4,40\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 100 || res.Rows[0][1].I != 4 {
		t.Fatalf("post-edit result = %v, want sum 100 count 4 (stale cache?)", res.Rows[0])
	}
}

// TestResultCacheBoundArgsAndOversized checks two key-correctness
// properties: a parameterized statement is cached under its *bound*
// constants (different arguments never share an entry), and a result
// beyond the per-entry bound is refused.
func TestResultCacheBoundArgsAndOversized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i*2)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open(Options{ResultCacheBytes: 8 << 10})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}

	const pq = "select sum(a1) from t where a1 < ?"
	for i, want := range map[int64]int64{100: 4950, 50: 1225} {
		res, err := db.QueryContext(context.Background(), pq, i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != want {
			t.Fatalf("sum(a1) where a1 < %d = %v, want %d (cross-arg cache hit?)", i, res.Rows[0][0], want)
		}
		// Same query, same arg: must hit and still answer for *these* args.
		res, err = db.QueryContext(context.Background(), pq, i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != want {
			t.Fatalf("cached sum(a1) where a1 < %d = %v, want %d", i, res.Rows[0][0], want)
		}
	}
	if st := db.ResultCacheStats(); st.Hits != 2 || st.Inserts != 2 {
		t.Fatalf("bound-arg caching stats: %+v, want 2 hits over 2 distinct entries", st)
	}
	preOversized := db.ResultCacheStats()

	// A full-row projection of all 200 rows exceeds maxEntry (8KiB/4 = 2KiB).
	for i := 0; i < 2; i++ {
		if _, err := db.Query("select a1, a2 from t where a1 >= 0"); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.ResultCacheStats(); st.Inserts != preOversized.Inserts {
		t.Fatalf("oversized result admitted: %+v", st)
	}
}

// TestSingleflightFollowerCancellation races identical concurrent
// queries — some of whose contexts are canceled mid-flight — and checks
// canceled followers unwind with ctx.Err while survivors get correct
// answers. Run with -race this doubles as the collapse-path race test.
func TestSingleflightFollowerCancellation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 20000, 3, 1000, 7)

	db := Open(Options{Policy: PartialLoadsV1, ResultCacheBytes: 16 << 20, Workers: 1})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}

	const q = "select sum(a1), sum(a2), count(*) from t where a3 >= 0"
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 4; round++ {
		// A fresh predicate constant each round defeats the result cache,
		// forcing the burst through the singleflight path.
		rq := fmt.Sprintf("select sum(a1), sum(a2), count(*) from t where a3 >= 0 and a1 >= -%d", round+1)
		const n = 8
		var wg sync.WaitGroup
		errs := make([]error, n)
		sums := make([]int64, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Background()
				if i%2 == 1 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					// Cancel at staggered points: immediately, or a moment in.
					if i%4 == 1 {
						cancel()
					} else {
						time.AfterFunc(time.Duration(i)*100*time.Microsecond, cancel)
					}
					defer cancel()
				}
				res, err := db.QueryContext(ctx, rq)
				errs[i] = err
				if err == nil {
					sums[i] = res.Rows[0][0].I
				}
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			switch {
			case errs[i] == nil:
				if sums[i] != want.Rows[0][0].I {
					t.Fatalf("round %d goroutine %d: sum = %d, want %d", round, i, sums[i], want.Rows[0][0].I)
				}
			case errors.Is(errs[i], context.Canceled):
				if i%2 == 0 {
					t.Fatalf("round %d goroutine %d: canceled without a canceled context", round, i)
				}
			default:
				t.Fatalf("round %d goroutine %d: %v", round, i, errs[i])
			}
		}
		// Uncanceled goroutines must always succeed.
		for i := 0; i < n; i += 2 {
			if errs[i] != nil {
				t.Fatalf("round %d goroutine %d (no cancel): %v", round, i, errs[i])
			}
		}
	}
}

func TestOpenErrValidation(t *testing.T) {
	bad := []Options{
		{EvictionPolicy: "mystery"},
		{MemoryBudget: -1},
		{ResultCacheBytes: -1},
		{Tenants: []TenantConfig{{Name: "", Key: "k"}}},
		{Tenants: []TenantConfig{{Name: "a", Key: "k"}, {Name: "a", Key: "k2"}}},
		{Tenants: []TenantConfig{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}},
		{Tenants: []TenantConfig{{Name: "a", Key: "k", Weight: -2}}},
	}
	for i, opts := range bad {
		if db, err := OpenErr(opts); err == nil {
			db.Close()
			t.Errorf("case %d: OpenErr accepted %+v", i, opts)
		}
	}
	db, err := OpenErr(Options{
		EvictionPolicy:   "lru",
		ResultCacheBytes: 1 << 20,
		Tenants:          []TenantConfig{{Name: "a", Key: "ka", Weight: 2}, {Name: "b", Key: "kb"}},
	})
	if err != nil {
		t.Fatalf("OpenErr rejected valid options: %v", err)
	}
	db.Close()
}
