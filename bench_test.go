package nodb_test

// Benchmarks regenerating the paper's experiments, one per figure/table.
// Each bench runs the corresponding experiment from internal/experiments at
// a reduced scale and reports the key modeled response times (the paper's
// y-axis) as custom metrics alongside Go's wall-clock numbers. Run the
// full-scale, formatted versions with `go run ./cmd/nodbbench`.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nodb"
	"nodb/internal/experiments"
)

// benchCfg shares generated data files across benchmark iterations.
func benchCfg() experiments.Config {
	return experiments.Config{
		DataDir: filepath.Join(os.TempDir(), "nodb-bench-data"),
		Scale:   0.05,
	}
}

// reportSeries publishes each series' total modeled seconds.
func reportSeries(b *testing.B, rep *experiments.Report) {
	b.Helper()
	for _, s := range rep.Series {
		b.ReportMetric(s.Total(), "model-s/"+sanitizeMetric(s.Name))
	}
}

func sanitizeMetric(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r == ' ':
			out = append(out, '_')
		case r == '/':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rep *experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = r.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, rep)
}

// BenchmarkFig1aLoading regenerates Figure 1a (loading cost vs size).
func BenchmarkFig1aLoading(b *testing.B) { runExperiment(b, "fig1a") }

// BenchmarkFig1bQueryCosts regenerates Figure 1b (Awk vs cold/hot/index DB).
func BenchmarkFig1bQueryCosts(b *testing.B) { runExperiment(b, "fig1b") }

// BenchmarkJoinExperiment regenerates the §2.2 in-text join comparison.
func BenchmarkJoinExperiment(b *testing.B) { runExperiment(b, "joins") }

// BenchmarkPerlVsAwk regenerates the §2.2 in-text Perl-vs-Awk comparison.
func BenchmarkPerlVsAwk(b *testing.B) { runExperiment(b, "perl") }

// BenchmarkFig3Sequence regenerates Figure 3 (20-query loading-operator
// sequence).
func BenchmarkFig3Sequence(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4Sequence regenerates Figure 4 (12-query file-reorganization
// sequence).
func BenchmarkFig4Sequence(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkAblationPositionalMap measures the positional map's effect on a
// late-attribute load.
func BenchmarkAblationPositionalMap(b *testing.B) { runExperiment(b, "abl-pm") }

// BenchmarkAblationSplitFiles measures split files vs raw re-reads.
func BenchmarkAblationSplitFiles(b *testing.B) { runExperiment(b, "abl-split") }

// BenchmarkAblationTokenizerWorkers measures tokenizer parallelism.
func BenchmarkAblationTokenizerWorkers(b *testing.B) { runExperiment(b, "abl-par") }

// BenchmarkAblationEarlyAbandon measures early row abandonment.
func BenchmarkAblationEarlyAbandon(b *testing.B) { runExperiment(b, "abl-early") }

// BenchmarkAblationBudget measures the budget-vs-latency tradeoff under
// cost-aware and LRU eviction.
func BenchmarkAblationBudget(b *testing.B) { runExperiment(b, "abl-budget") }

// --- End-to-end engine micro-benchmarks over the public API ---

func benchTable(b *testing.B, rows, cols int) string {
	b.Helper()
	dir := filepath.Join(os.TempDir(), "nodb-bench-data")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("api_%dx%d.csv", rows, cols))
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return path
	}
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < rows; i++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprint(f, (i*(c*7+1)+c)%rows)
		}
		fmt.Fprintln(f)
	}
	return path
}

// BenchmarkFirstQueryColumnLoads measures the cold-start first query (link
// + adaptive load + aggregate) — the paper's headline metric.
func BenchmarkFirstQueryColumnLoads(b *testing.B) {
	path := benchTable(b, 200_000, 4)
	st, _ := os.Stat(path)
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, DisableRevalidation: true})
		if err := db.Link("t", path); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Query("select sum(a1), avg(a2) from t where a1 > 10000 and a1 < 30000"); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkHotQuery measures steady-state queries once data is loaded.
func BenchmarkHotQuery(b *testing.B) {
	path := benchTable(b, 200_000, 4)
	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Query("select sum(a1), avg(a2) from t where a1 > 0"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("select sum(a1), avg(a2) from t where a1 > 10000 and a1 < 30000"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotQueryUnderBudget measures the steady-state scan hot path
// with the memory governor active but never evicting: the pin/account/
// enforce bookkeeping must stay off the per-row path.
func BenchmarkHotQueryUnderBudget(b *testing.B) {
	path := benchTable(b, 200_000, 4)
	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, MemoryBudget: 1 << 30, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Query("select sum(a1), avg(a2) from t where a1 > 0"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("select sum(a1), avg(a2) from t where a1 > 10000 and a1 < 30000"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvictReloadCycle measures the eviction hot path: a budget that
// holds one column while the workload alternates between two, so every
// query evicts one column and rebuilds the other from the raw file.
func BenchmarkEvictReloadCycle(b *testing.B) {
	path := benchTable(b, 50_000, 4)
	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, MemoryBudget: 600_000, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := "select sum(a1) from t"
		if i%2 == 1 {
			q = "select sum(a3) from t"
		}
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if db.MemStats().Evictions == 0 && b.N > 1 {
		b.Fatal("budget cycle should evict")
	}
}

// BenchmarkHotQueryCracking measures steady-state queries with adaptive
// indexing enabled.
func BenchmarkHotQueryCracking(b *testing.B) {
	path := benchTable(b, 200_000, 4)
	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, Cracking: true, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Query("select sum(a1), avg(a2) from t where a1 > 0"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * 997) % 150_000
		q := fmt.Sprintf("select sum(a1), avg(a2) from t where a1 > %d and a1 < %d", lo, lo+20_000)
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartialV2CacheHit measures a covered query served entirely from
// the adaptive store.
func BenchmarkPartialV2CacheHit(b *testing.B) {
	path := benchTable(b, 200_000, 4)
	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV2, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	q := "select sum(a1), avg(a2) from t where a1 > 10000 and a1 < 30000"
	if _, err := db.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse measures the SQL front end alone.
func BenchmarkSQLParse(b *testing.B) {
	db := nodb.Open(nodb.Options{})
	defer db.Close()
	path := benchTable(b, 100, 4)
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain("select sum(a1),min(a4),max(a3),avg(a2) from t where a1>10 and a1<20 and a2>30 and a2<40"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentClients measures the server scenario: one shared DB,
// GOMAXPROCS parallel clients firing QueryContext at a warmed adaptive
// store. This is the hot path nodbd serves once the workload's columns
// are loaded.
func BenchmarkConcurrentClients(b *testing.B) {
	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV2})
	defer db.Close()
	path := benchTable(b, 50000, 4)
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	q := "select sum(a1), count(*) from t where a1 > 10000 and a1 < 30000"
	if _, err := db.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := db.QueryContext(ctx, q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkConcurrentClientsColdLoads is the same fan-out but against
// tables whose columns race to load: each iteration cycles predicates so
// partial-load coverage keeps missing and the raw file stays in play.
func BenchmarkConcurrentClientsColdLoads(b *testing.B) {
	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV1})
	defer db.Close()
	path := benchTable(b, 50000, 4)
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		i := 0
		for pb.Next() {
			lo := (i * 997) % 40000
			q := fmt.Sprintf("select sum(a1) from t where a1 > %d and a1 < %d", lo, lo+5000)
			if _, err := db.QueryContext(ctx, q); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// --- Restart benchmarks: the snapshot cache's reason to exist ---

// restartBench measures the first query of a freshly opened DB over an
// already-learned table: warm (CacheDir populated by a previous DB's
// Close) versus cold (no cache; the adaptive learning starts over).
func restartBench(b *testing.B, warm bool) {
	b.Helper()
	path := benchTable(b, 50000, 4)
	cache := filepath.Join(b.TempDir(), "cache")
	q := "select sum(a1), avg(a2) from t where a1 > 10000 and a1 < 30000"

	// Teach one DB and snapshot its state.
	seed := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, CacheDir: cache})
	if err := seed.Link("t", path); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Query(q); err != nil {
		b.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := nodb.Options{Policy: nodb.ColumnLoads}
		if warm {
			opts.CacheDir = cache
		}
		db := nodb.Open(opts)
		if err := db.Link("t", path); err != nil {
			b.Fatal(err)
		}
		res, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if warm && res.Stats.Work.RawBytesRead != 0 {
			b.Fatalf("warm first query read %d raw bytes", res.Stats.Work.RawBytesRead)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
}

// BenchmarkWarmRestartFirstQuery: first query after reopening with a
// populated CacheDir (columns deserialize from the snapshot).
func BenchmarkWarmRestartFirstQuery(b *testing.B) { restartBench(b, true) }

// BenchmarkColdRestartFirstQuery: the same first query with no cache —
// the full adaptive load, for comparison against the warm number.
func BenchmarkColdRestartFirstQuery(b *testing.B) { restartBench(b, false) }

// --- Scan-synopsis benchmarks: portion skipping on the raw-scan path ---

// clusteredBenchTable writes rows whose first attribute is monotone (the
// log-file shape zone maps thrive on); the rest are shuffled.
func clusteredBenchTable(b *testing.B, rows, cols int) string {
	b.Helper()
	dir := filepath.Join(os.TempDir(), "nodb-bench-data")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("clustered_%dx%d.csv", rows, cols))
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return path
	}
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < rows; i++ {
		fmt.Fprint(f, i)
		for c := 1; c < cols; c++ {
			fmt.Fprintf(f, ",%d", (i*(c*7+1)+c)%rows)
		}
		fmt.Fprintln(f)
	}
	return path
}

// selectiveColdScan measures a 1%-selectivity predicate query on a cold
// (uncached) column after exactly one prior tokenizing pass, under
// PartialLoadsV1 — every query re-scans the raw file, so the measured
// cost is the scan itself. With the synopsis the prior pass leaves
// per-portion zone maps behind and the measured query skips ~99% of the
// portions; without it the query re-tokenizes the whole file.
func selectiveColdScan(b *testing.B, disableSynopsis bool) {
	const rows = 400_000
	path := clusteredBenchTable(b, rows, 4)
	st, _ := os.Stat(path)
	// The comparator models the pre-PR path faithfully: sequential,
	// single-portion, one file read per query — no layout pre-pass.
	workers := 0
	if disableSynopsis {
		workers = 1
	}
	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV1, DisableSynopsis: disableSynopsis, Workers: workers, ChunkSize: 256 << 10, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	// The one prior pass: a wide query over the same columns.
	if _, err := db.Query("select sum(a2) from t where a1 >= 0"); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rows/2 + (i%7)*100
		q := fmt.Sprintf("select sum(a2) from t where a1 >= %d and a1 < %d", lo, lo+rows/100)
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !disableSynopsis && db.Work().PortionsSkipped == 0 {
		b.Fatal("synopsis bench skipped no portions")
	}
}

// BenchmarkSelectiveColdScan: the PR's headline path — 1%-selectivity
// query after one learning pass, portions pruned by the synopsis.
func BenchmarkSelectiveColdScan(b *testing.B) { selectiveColdScan(b, false) }

// BenchmarkSelectiveColdScanNoSynopsis: the identical query with the
// synopsis disabled — the pre-PR full re-scan, kept as the comparator.
func BenchmarkSelectiveColdScanNoSynopsis(b *testing.B) { selectiveColdScan(b, true) }

// --- Vectorized-execution benchmarks: the batch pipeline vs the
// row-at-a-time path it replaced ---

// batchPipelineBench measures a hot full-scan aggregate — the table fully
// loaded, every row consumed — with the execution mode toggled. The
// difference is pure execution machinery.
func batchPipelineBench(b *testing.B, disableVector bool) {
	const rows = 400_000
	path := benchTable(b, rows, 4)
	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, Workers: 1, DisableVectorExec: disableVector, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	q := fmt.Sprintf("select sum(a1), min(a2), count(*) from t where a2 < %d", rows)
	if _, err := db.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchPipeline: the vectorized operator pipeline (the default
// execution path).
func BenchmarkBatchPipeline(b *testing.B) { batchPipelineBench(b, false) }

// BenchmarkBatchPipelineRowAtATime: the same query through the legacy
// row-at-a-time path, kept as the comparator.
func BenchmarkBatchPipelineRowAtATime(b *testing.B) { batchPipelineBench(b, true) }

// --- NDJSON benchmarks: in-situ scans over newline-delimited JSON ---

// ndjsonBenchTable writes rows of {"a1":...,...} with aCols integer
// fields, reusing the file across runs.
func ndjsonBenchTable(b *testing.B, rows, cols int) string {
	b.Helper()
	dir := filepath.Join(os.TempDir(), "nodb-bench-data")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("api_%dx%d.ndjson", rows, cols))
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return path
	}
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < rows; i++ {
		fmt.Fprint(f, "{")
		for c := 0; c < cols; c++ {
			if c > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, `"a%d":%d`, c+1, (i*(c*7+1)+c)%rows)
		}
		fmt.Fprintln(f, "}")
	}
	return path
}

// BenchmarkNDJSONColdScan measures the cold first query over an NDJSON
// table: schema detection, line tokenization, delayed parsing of the two
// queried fields, aggregate — the in-situ NDJSON headline path.
func BenchmarkNDJSONColdScan(b *testing.B) {
	path := ndjsonBenchTable(b, 200_000, 6)
	st, _ := os.Stat(path)
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, DisableRevalidation: true})
		if err := db.Link("t", path); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Query("select sum(a1), count(*) from t where a3 > 1000"); err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}

// BenchmarkNDJSONLazyVsEager pins delayed parsing: a narrow query over a
// wide NDJSON table parses only the queried field's byte ranges (lazy),
// against a query that touches every field (eager). The timed loop runs
// the lazy scan; the eager scan is measured alongside and reported as the
// eager-ns and speedup metrics. The parsing-work reduction is asserted
// deterministically from the ValuesParsed counters: lazy must parse less
// than half of what eager parses.
func BenchmarkNDJSONLazyVsEager(b *testing.B) {
	const rows, cols = 200_000, 6
	path := ndjsonBenchTable(b, rows, cols)
	st, _ := os.Stat(path)

	scanOnce := func(query string) (time.Duration, int64) {
		db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV1, Workers: 1, DisableRevalidation: true})
		defer db.Close()
		if err := db.Link("t", path); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := db.Query(query)
		if err != nil {
			b.Fatal(err)
		}
		return time.Since(start), res.Stats.Work.ValuesParsed
	}

	lazyQ := "select sum(a1) from t"
	eagerQ := "select sum(a1), sum(a2), sum(a3), sum(a4), sum(a5), sum(a6) from t"
	var lazyNs, eagerNs, lazyParsed, eagerParsed int64
	b.SetBytes(st.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt, lp := scanOnce(lazyQ)
		b.StopTimer()
		et, ep := scanOnce(eagerQ)
		b.StartTimer()
		lazyNs += lt.Nanoseconds()
		eagerNs += et.Nanoseconds()
		lazyParsed, eagerParsed = lp, ep
	}
	b.StopTimer()
	if lazyParsed*2 > eagerParsed {
		b.Fatalf("lazy scan parsed %d values vs eager %d; delayed parsing should cut parsing by >= 2x", lazyParsed, eagerParsed)
	}
	b.ReportMetric(float64(eagerNs)/float64(b.N), "eager-ns/op")
	if lazyNs > 0 {
		b.ReportMetric(float64(eagerNs)/float64(lazyNs), "speedup")
	}
}

// BenchmarkResultCacheHit measures the replay path: a repeated identical
// query answered from the result cache instead of the adaptive store.
// Compare against BenchmarkHotQuery (same query, no cache) for the
// end-to-end win on redundant traffic.
func BenchmarkResultCacheHit(b *testing.B) {
	path := benchTable(b, 200_000, 4)
	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, ResultCacheBytes: 32 << 20, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Query("select sum(a1), avg(a2) from t where a1 > 10000 and a1 < 30000"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("select sum(a1), avg(a2) from t where a1 > 10000 and a1 < 30000"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := db.ResultCacheStats(); st.Hits == 0 {
		b.Fatal("benchmark never hit the cache")
	}
}

// BenchmarkConcurrentDuplicateQueries measures the cache+singleflight
// serving path under parallel clients all issuing the same query — the
// redundant-traffic shape the QoS layer is built for.
func BenchmarkConcurrentDuplicateQueries(b *testing.B) {
	path := benchTable(b, 200_000, 4)
	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, ResultCacheBytes: 32 << 20, DisableRevalidation: true})
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := db.QueryContext(ctx, "select sum(a3), count(*) from t where a2 >= 100"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	work := db.Work()
	b.ReportMetric(float64(db.ResultCacheStats().Hits), "cache-hits")
	b.ReportMetric(float64(work.QueriesCollapsed), "collapsed")
}
