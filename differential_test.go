package nodb

// Differential property tests: randomized query workloads must produce
// identical answers under every loading policy and under adaptive
// indexing. The adaptive machinery (partial loading, region reuse, split
// files, cracking, auto promotion) is pure mechanism — any observable
// difference is a bug.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// diffPolicies are every strategy under test, plus cracking variants.
type diffConfig struct {
	name string
	opts Options
}

func diffConfigs(splitRoot string) []diffConfig {
	return []diffConfig{
		{"full", Options{Policy: FullLoad}},
		{"columns", Options{Policy: ColumnLoads}},
		{"columns+cracking", Options{Policy: ColumnLoads, Cracking: true}},
		{"partial-v1", Options{Policy: PartialLoadsV1}},
		{"partial-v2", Options{Policy: PartialLoadsV2}},
		{"splitfiles", Options{Policy: SplitFiles, SplitDir: filepath.Join(splitRoot, "sf")}},
		{"external", Options{Policy: External}},
		{"auto", Options{Policy: Auto}},
		{"budget-64k", Options{Policy: ColumnLoads, MemoryBudget: 64 << 10}},
	}
}

// writeRandomTable writes rows x cols integers in [0, maxVal).
func writeRandomTable(t *testing.T, path string, rows, cols int, maxVal int64, seed int64) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		sb.Reset()
		for c := 0; c < cols; c++ {
			if c > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", rng.Int63n(maxVal))
		}
		sb.WriteByte('\n')
		if _, err := f.WriteString(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// randomQuery generates a random aggregate query over a cols-wide table
// named "t" with values in [0, maxVal).
func randomQuery(rng *rand.Rand, cols int, maxVal int64) string {
	aggFns := []string{"sum", "min", "max", "avg", "count"}
	nAggs := 1 + rng.Intn(3)
	var items []string
	for i := 0; i < nAggs; i++ {
		fn := aggFns[rng.Intn(len(aggFns))]
		col := rng.Intn(cols) + 1
		items = append(items, fmt.Sprintf("%s(a%d)", fn, col))
	}
	if rng.Intn(3) == 0 {
		items = append(items, "count(*)")
	}
	q := "select " + strings.Join(items, ", ") + " from t"

	nPreds := rng.Intn(4)
	var preds []string
	for i := 0; i < nPreds; i++ {
		col := rng.Intn(cols) + 1
		switch rng.Intn(4) {
		case 0:
			lo := rng.Int63n(maxVal)
			preds = append(preds, fmt.Sprintf("a%d > %d", col, lo))
		case 1:
			hi := rng.Int63n(maxVal)
			preds = append(preds, fmt.Sprintf("a%d < %d", col, hi))
		case 2:
			lo := rng.Int63n(maxVal)
			preds = append(preds, fmt.Sprintf("a%d between %d and %d", col, lo, lo+rng.Int63n(maxVal/2)))
		default:
			preds = append(preds, fmt.Sprintf("a%d = %d", col, rng.Int63n(maxVal)))
		}
	}
	if len(preds) > 0 {
		q += " where " + strings.Join(preds, " and ")
	}
	return q
}

// TestDifferentialPolicies runs random workloads through every
// configuration and demands byte-identical results.
func TestDifferentialPolicies(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	const rows, cols = 2000, 5
	const maxVal = 1000
	writeRandomTable(t, path, rows, cols, maxVal, 99)

	rng := rand.New(rand.NewSource(7))
	queries := make([]string, 25)
	for i := range queries {
		queries[i] = randomQuery(rng, cols, maxVal)
	}

	configs := diffConfigs(dir)
	results := make([][]string, len(configs))
	for ci, cfg := range configs {
		db := Open(cfg.opts)
		if err := db.Link("t", path); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s: query %d (%s): %v", cfg.name, qi, q, err)
			}
			var row []string
			for _, v := range res.Rows[0] {
				row = append(row, v.String())
			}
			results[ci] = append(results[ci], strings.Join(row, "|"))
		}
		db.Close()
	}
	for ci := 1; ci < len(configs); ci++ {
		for qi := range queries {
			if results[ci][qi] != results[0][qi] {
				t.Errorf("%s disagrees with %s on query %d (%s):\n  %s\n  %s",
					configs[ci].name, configs[0].name, qi, queries[qi],
					results[ci][qi], results[0][qi])
			}
		}
	}
}

// TestDifferentialSeeds repeats the differential run over several data
// seeds with a narrower policy set to stay fast.
func TestDifferentialSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential run")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "t.csv")
			writeRandomTable(t, path, 1000, 4, 500, seed)
			rng := rand.New(rand.NewSource(seed * 13))

			ref := Open(Options{Policy: FullLoad})
			v2 := Open(Options{Policy: PartialLoadsV2})
			auto := Open(Options{Policy: Auto})
			for _, db := range []*DB{ref, v2, auto} {
				if err := db.Link("t", path); err != nil {
					t.Fatal(err)
				}
			}
			for qi := 0; qi < 30; qi++ {
				q := randomQuery(rng, 4, 500)
				a, err := ref.Query(q)
				if err != nil {
					t.Fatalf("ref query %d: %v", qi, err)
				}
				for _, db := range []*DB{v2, auto} {
					b, err := db.Query(q)
					if err != nil {
						t.Fatalf("query %d: %v", qi, err)
					}
					for ci := range a.Rows[0] {
						if a.Rows[0][ci].String() != b.Rows[0][ci].String() {
							t.Fatalf("query %d (%s) col %d: %v vs %v",
								qi, q, ci, a.Rows[0][ci], b.Rows[0][ci])
						}
					}
				}
			}
		})
	}
}

// TestDifferentialJoins checks join queries across policies.
func TestDifferentialJoins(t *testing.T) {
	dir := t.TempDir()
	lp := filepath.Join(dir, "l.csv")
	rp := filepath.Join(dir, "r.csv")
	writeRandomTable(t, lp, 800, 3, 200, 5)
	writeRandomTable(t, rp, 600, 2, 200, 6)

	queries := []string{
		"select count(*) from l join r on l.a1 = r.a1",
		"select sum(l.a2), sum(r.a2) from l join r on l.a1 = r.a1 where l.a3 < 100",
		"select count(*), max(l.a3) from l join r on l.a2 = r.a2 where r.a1 > 50",
	}
	var want []string
	for ci, cfg := range diffConfigs(dir) {
		db := Open(cfg.opts)
		db.Link("l", lp)
		db.Link("r", rp)
		for qi, q := range queries {
			res, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", cfg.name, err)
			}
			var row []string
			for _, v := range res.Rows[0] {
				row = append(row, v.String())
			}
			got := strings.Join(row, "|")
			if ci == 0 {
				want = append(want, got)
			} else if got != want[qi] {
				t.Errorf("%s join query %d: %s != %s", cfg.name, qi, got, want[qi])
			}
		}
		db.Close()
	}
}
