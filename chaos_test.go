package nodb

// Chaos differential suite: seeded fault schedules injected under every
// disk-touching component via the vfs seam, with one invariant — a query
// under I/O faults either returns the byte-identical answer a clean run
// produces, or fails with a typed error from the taxonomy. Never a wrong
// answer, never a panic, never a governor leak. After the faults clear,
// the engine recovers to clean answers without a restart.

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"nodb/internal/vfs"
)

// chaosTyped reports whether err is an acceptable failure under fault
// injection: a classified category from the taxonomy. Anything else — an
// unwrapped os.PathError, a parse error, a nil-pointer panic converted
// to an error — is a hardening gap and fails the suite.
func chaosTyped(err error) bool {
	return errors.Is(err, ErrRawIO) ||
		errors.Is(err, ErrFileShrunk) ||
		errors.Is(err, ErrDiskFull) ||
		errors.Is(err, ErrSnapshotCorrupt)
}

// chaosRow flattens the single aggregate result row for comparison.
func chaosRow(res *Result) string {
	var row []string
	for _, v := range res.Rows[0] {
		row = append(row, v.String())
	}
	return strings.Join(row, "|")
}

// chaosRule draws one random fault rule. Read-side faults (open, stat,
// read) apply everywhere; write-side faults are drawn only for
// configurations that write derived files (split files, snapshots), and
// inject ENOSPC — the write failure the engine promises to absorb.
func chaosRule(rng *rand.Rand, writes bool, fileSize int64) vfs.Rule {
	readErrs := []error{syscall.EIO, io.ErrUnexpectedEOF, fs.ErrPermission}
	r := vfs.Rule{Times: rng.Intn(4)}
	if rng.Intn(8) == 0 {
		r.Times = -1 // a persistent fault: every matching call fails
	}
	ops := []vfs.Op{vfs.OpOpen, vfs.OpStat, vfs.OpRead, vfs.OpRead}
	if writes {
		ops = append(ops, vfs.OpCreate, vfs.OpWrite, vfs.OpRename, vfs.OpMkdir)
	}
	r.Op = ops[rng.Intn(len(ops))]
	switch r.Op {
	case vfs.OpRead:
		r.Err = readErrs[rng.Intn(len(readErrs))]
		if rng.Intn(2) == 0 {
			r.AfterBytes = rng.Int63n(2 * fileSize) // byte-exact mid-scan fault
		}
	case vfs.OpOpen, vfs.OpStat:
		r.Err = readErrs[rng.Intn(len(readErrs))]
		r.AfterCalls = rng.Intn(4)
	default: // write-side
		r.Err = syscall.ENOSPC
		if r.Op == vfs.OpWrite && rng.Intn(2) == 0 {
			r.AfterBytes = rng.Int63n(4096) // torn write at a random offset
		}
	}
	return r
}

// TestChaosDifferential is the acceptance suite: >= 1000 fault-scheduled
// query executions across policies, each checked against a clean oracle.
func TestChaosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos run")
	}
	const rows, cols = 1500, 4
	const maxVal = 600
	const itersPerSeed = 55
	seeds := []int64{11, 23, 37, 53}

	type chaosConfig struct {
		name   string
		opts   func(dir string) Options
		writes bool // derived-file writes happen on the query path
		snap   bool // exercise explicit snapshot saves mid-storm
	}
	configs := []chaosConfig{
		{"columns", func(string) Options { return Options{Policy: ColumnLoads} }, false, false},
		{"partial-v2", func(string) Options { return Options{Policy: PartialLoadsV2} }, false, false},
		{"auto+cracking", func(string) Options { return Options{Policy: Auto, Cracking: true} }, false, false},
		{"splitfiles", func(dir string) Options {
			return Options{Policy: SplitFiles, SplitDir: filepath.Join(dir, "sf")}
		}, true, false},
		{"columns+cache", func(dir string) Options {
			return Options{Policy: ColumnLoads, CacheDir: filepath.Join(dir, "cache"), MemoryBudget: 256 << 10}
		}, true, true},
	}

	executions, injected, failures := 0, int64(0), 0
	for _, seed := range seeds {
		dir := t.TempDir()
		path := filepath.Join(dir, "t.csv")
		writeRandomTable(t, path, rows, cols, maxVal, seed)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		fileSize := fi.Size()

		// Oracle: a clean full-load engine answers every query first.
		qrng := rand.New(rand.NewSource(seed * 101))
		queries := make([]string, 25)
		oracle := make(map[string]string, len(queries))
		ref := Open(Options{Policy: FullLoad})
		if err := ref.Link("t", path); err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			queries[i] = randomQuery(qrng, cols, maxVal)
			res, err := ref.Query(queries[i])
			if err != nil {
				t.Fatalf("oracle query %q: %v", queries[i], err)
			}
			oracle[queries[i]] = chaosRow(res)
		}
		ref.Close()

		for _, cfg := range configs {
			rng := rand.New(rand.NewSource(seed*1000 + int64(len(cfg.name))))
			ffs := vfs.NewFaultFS(nil)
			db := openFS(cfg.opts(dir), ffs)
			if err := db.Link("t", path); err != nil {
				t.Fatalf("%s/seed %d: link: %v", cfg.name, seed, err)
			}

			for i := 0; i < itersPerSeed; i++ {
				ffs.Clear()
				ffs.AddRule(chaosRule(rng, cfg.writes, fileSize))
				if rng.Intn(3) == 0 {
					ffs.AddRule(chaosRule(rng, cfg.writes, fileSize))
				}
				q := queries[rng.Intn(len(queries))]
				res, err := db.Query(q)
				executions++
				if err != nil {
					failures++
					if !chaosTyped(err) {
						t.Errorf("%s/seed %d: query %q failed untyped: %v", cfg.name, seed, q, err)
					}
				} else if got := chaosRow(res); got != oracle[q] {
					t.Errorf("%s/seed %d: WRONG ANSWER under fault for %q:\n  got  %s\n  want %s",
						cfg.name, seed, q, got, oracle[q])
				}
				if p := db.MemStats().Pinned; p != 0 {
					t.Errorf("%s/seed %d: governor leak after query %q: pinned=%d", cfg.name, seed, q, p)
				}
				if cfg.snap && i%10 == 9 {
					if err := db.Snapshot(); err != nil && !chaosTyped(err) {
						t.Errorf("%s/seed %d: snapshot failed untyped: %v", cfg.name, seed, err)
					}
				}
			}
			injected += ffs.Injected.Load()

			// Recovery: faults gone, the engine must answer cleanly again
			// — whatever half-built state the storm left must have been
			// poisoned, not reused.
			ffs.Clear()
			for _, q := range queries[:10] {
				res, err := db.Query(q)
				if err != nil {
					t.Errorf("%s/seed %d: recovery query %q failed: %v", cfg.name, seed, q, err)
					continue
				}
				if got := chaosRow(res); got != oracle[q] {
					t.Errorf("%s/seed %d: recovery WRONG ANSWER for %q:\n  got  %s\n  want %s",
						cfg.name, seed, q, got, oracle[q])
				}
			}
			db.Close()
		}
	}
	if executions < 1000 {
		t.Errorf("suite ran %d fault-scheduled executions, acceptance floor is 1000", executions)
	}
	t.Logf("chaos: %d fault-scheduled executions, %d faults injected, %d typed failures", executions, injected, failures)
}

// TestChaosFileShrunkMidScan pins the shrink detector: a read that hits
// EOF before the size captured at open must fail ErrFileShrunk — the
// prefix-only aggregate it would otherwise return is a wrong answer.
func TestChaosFileShrunkMidScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 500, 3, 100, 9)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	ffs := vfs.NewFaultFS(nil)
	// Revalidation off so the injected EOF lands in the scan itself, not
	// in the per-query signature probe (which would re-detect instead).
	db := openFS(Options{Policy: FullLoad, Workers: 1, DisableRevalidation: true}, ffs)
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}
	// Every read past the midpoint reports EOF: the file "shrank" after
	// the scanner captured its size.
	ffs.AddRule(vfs.Rule{Op: vfs.OpRead, Err: io.EOF, AfterBytes: fi.Size() / 2, Times: -1})
	_, err = db.Query("select count(*), sum(a1) from t")
	if err == nil {
		t.Fatal("query over a shrunk file returned a result; a prefix-only answer is silent corruption")
	}
	if !errors.Is(err, ErrFileShrunk) {
		t.Fatalf("err = %v, want ErrFileShrunk", err)
	}
	ffs.Clear()
	if _, err := db.Query("select count(*) from t"); err != nil {
		t.Fatalf("recovery query failed: %v", err)
	}
}

// TestChaosSnapshotDegradedMode pins the disk-full contract: snapshot
// saves hitting ENOSPC flip the store to degraded memory-only operation,
// queries keep working, and a later successful save self-heals the flag.
func TestChaosSnapshotDegradedMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 300, 3, 100, 4)
	cache := filepath.Join(dir, "cache")

	ffs := vfs.NewFaultFS(nil)
	db := openFS(Options{Policy: ColumnLoads, CacheDir: cache}, ffs)
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("select sum(a1) from t"); err != nil {
		t.Fatal(err)
	}

	ffs.AddRule(vfs.Rule{Op: vfs.OpWrite, Err: syscall.ENOSPC, PathContains: "cache", Times: -1})
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Err: syscall.ENOSPC, PathContains: "cache", Times: -1})
	if err := db.Snapshot(); err == nil {
		t.Fatal("snapshot with a full disk must report failure")
	} else if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("snapshot err = %v, want ErrDiskFull", err)
	}
	if !db.SnapStats().Degraded {
		t.Fatal("store must report degraded after a disk-full save")
	}
	// Queries are unaffected by the dead disk tier.
	if _, err := db.Query("select count(*) from t"); err != nil {
		t.Fatalf("query during degraded mode failed: %v", err)
	}
	// Space comes back: the next save succeeds and clears the flag.
	ffs.Clear()
	if err := db.Snapshot(); err != nil {
		t.Fatalf("snapshot after recovery failed: %v", err)
	}
	if db.SnapStats().Degraded {
		t.Fatal("degraded flag must self-heal after a successful save")
	}
}

// TestChaosCrashRestartTorture kills snapshot persistence mid-write and
// corrupts what did land, then restarts on a clean filesystem: the new
// process must fall back to a cold start and answer correctly — leftover
// temp files, torn frames and bit flips never surface to queries.
func TestChaosCrashRestartTorture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 800, 4, 300, 17)
	cache := filepath.Join(dir, "cache")

	queries := []string{
		"select count(*), sum(a1), min(a2), max(a3) from t",
		"select sum(a2), avg(a4) from t where a1 > 100",
		"select count(*) from t where a2 between 50 and 200",
	}
	oracle := map[string]string{}
	{
		ref := Open(Options{Policy: FullLoad})
		if err := ref.Link("t", path); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			res, err := ref.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			oracle[q] = chaosRow(res)
		}
		ref.Close()
	}

	// Session 1: learn, then die mid-snapshot-write (torn at byte 64 of
	// every snapshot file, forever).
	ffs := vfs.NewFaultFS(nil)
	db := openFS(Options{Policy: ColumnLoads, CacheDir: cache}, ffs)
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	ffs.AddRule(vfs.Rule{Op: vfs.OpWrite, Err: syscall.EIO, AfterBytes: 64, Times: -1, PathContains: "cache"})
	_ = db.Snapshot() // the "crash": every save tears at byte 64
	_ = db.Close()

	// Session 2: restart on a clean filesystem. Whatever the torn saves
	// left behind must be rejected, not trusted.
	db2 := Open(Options{Policy: ColumnLoads, CacheDir: cache})
	if err := db2.Link("t", path); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := db2.Query(q)
		if err != nil {
			t.Fatalf("cold-start query %q after torn snapshot: %v", q, err)
		}
		if got := chaosRow(res); got != oracle[q] {
			t.Fatalf("cold-start WRONG ANSWER after torn snapshot for %q:\n  got  %s\n  want %s", q, got, oracle[q])
		}
	}
	// Save clean snapshots this time, then corrupt them on disk.
	if err := db2.Snapshot(); err != nil {
		t.Fatalf("clean snapshot save: %v", err)
	}
	db2.Close()

	snaps, err := filepath.Glob(filepath.Join(cache, "*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("expected snapshot files in %s (err %v)", cache, err)
	}
	for _, sp := range snaps {
		b, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		for i := len(b) / 3; i < len(b) && i < len(b)/3+16; i++ {
			b[i] ^= 0xff // bit-flip a 16-byte run in the middle
		}
		if err := os.WriteFile(sp, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Session 3: restart over the corrupted snapshots.
	db3 := Open(Options{Policy: ColumnLoads, CacheDir: cache})
	defer db3.Close()
	if err := db3.Link("t", path); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := db3.Query(q)
		if err != nil {
			t.Fatalf("cold-start query %q after snapshot corruption: %v", q, err)
		}
		if got := chaosRow(res); got != oracle[q] {
			t.Fatalf("cold-start WRONG ANSWER after snapshot corruption for %q:\n  got  %s\n  want %s", q, got, oracle[q])
		}
	}
}

// TestChaosGovernorBaselineAfterFailedQueries hammers one engine with
// persistent read faults and checks the governor never accretes pinned
// bytes from the failed queries' half-built structures.
func TestChaosGovernorBaselineAfterFailedQueries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	writeRandomTable(t, path, 400, 3, 100, 2)

	ffs := vfs.NewFaultFS(nil)
	db := openFS(Options{Policy: PartialLoadsV2, MemoryBudget: 128 << 10}, ffs)
	defer db.Close()
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}
	ffs.AddRule(vfs.Rule{Op: vfs.OpRead, Err: syscall.EIO, AfterBytes: 1024, Times: -1})
	for i := 0; i < 20; i++ {
		q := fmt.Sprintf("select sum(a%d) from t where a%d > %d", i%3+1, (i+1)%3+1, i)
		if _, err := db.Query(q); err != nil && !chaosTyped(err) {
			t.Fatalf("query %d failed untyped: %v", i, err)
		}
		if p := db.MemStats().Pinned; p != 0 {
			t.Fatalf("governor leak after failed query %d: pinned=%d", i, p)
		}
	}
	ffs.Clear()
	res, err := db.Query("select count(*) from t")
	if err != nil {
		t.Fatalf("recovery query: %v", err)
	}
	if got := chaosRow(res); got != "400" {
		t.Fatalf("recovery count = %s, want 400", got)
	}
}
