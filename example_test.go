package nodb

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
)

// writeExampleCSV writes a small deterministic sales table.
func writeExampleCSV() (string, error) {
	dir, err := os.MkdirTemp("", "nodb-example")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "sales.csv")
	data := "region,amount,year\n" +
		"north,100,2023\n" +
		"south,250,2023\n" +
		"north,75,2024\n" +
		"east,300,2024\n" +
		"south,50,2024\n"
	return path, os.WriteFile(path, []byte(data), 0o644)
}

// ExampleDB_QueryRows iterates a streaming cursor: rows arrive while the
// raw file is being scanned, and closing early (or a LIMIT) stops the
// scan mid-pass.
func ExampleDB_QueryRows() {
	path, err := writeExampleCSV()
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(filepath.Dir(path))

	db := Open(Options{})
	defer db.Close()
	if err := db.Link("sales", path); err != nil {
		fmt.Println(err)
		return
	}

	rows, err := db.QueryRows(context.Background(), "select region, amount from sales where amount > ?", 80)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer rows.Close()

	for rows.Next() {
		var region string
		var amount int64
		if err := rows.Scan(&region, &amount); err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s %d\n", region, amount)
	}
	if err := rows.Err(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// north 100
	// south 250
	// east 300
}

// ExampleStmt prepares a statement once and executes it repeatedly with
// different `?` arguments; arguments bind as typed values, never as SQL
// text.
func ExampleStmt() {
	path, err := writeExampleCSV()
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(filepath.Dir(path))

	db := Open(Options{})
	defer db.Close()
	if err := db.Link("sales", path); err != nil {
		fmt.Println(err)
		return
	}

	stmt, err := db.Prepare("select sum(amount), count(*) from sales where year = ?")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer stmt.Close()

	for _, year := range []int{2023, 2024} {
		res, err := stmt.Query(year)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%d: sum=%s count=%s\n", year, res.Rows[0][0], res.Rows[0][1])
	}
	// Output:
	// 2023: sum=350 count=2
	// 2024: sum=425 count=3
}
