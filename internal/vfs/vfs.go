// Package vfs is the engine's filesystem seam. Every component that
// touches disk — scanner, loader, catalog, snapshot store, split files,
// follow-mode refresh — goes through an FS instead of calling the os
// package directly, so tests can substitute a FaultFS that injects
// scheduled failures (EIO at byte N, ENOSPC, torn writes, shrinking
// files) and prove the engine's failure semantics.
//
// The default implementation, OS, is a zero-cost passthrough to the os
// package. A nil FS anywhere in the engine means OS.
package vfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the engine uses.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Seeker
	io.Closer
	Stat() (os.FileInfo, error)
	Name() string
	Sync() error
}

// FS abstracts the filesystem operations the engine performs.
type FS interface {
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Create(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Stat(name string) (os.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	Glob(pattern string) ([]string, error)
}

// OS is the passthrough FS backed by the real filesystem.
type OS struct{}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) Create(name string) (File, error) { return os.Create(name) }

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// Default returns fsys, or the passthrough OS when fsys is nil. Call
// sites thread FS values lazily; nil always means "the real disk".
func Default(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}
