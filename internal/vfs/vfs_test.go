package vfs_test

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"nodb/internal/vfs"
)

var errInjected = errors.New("injected fault")

func writeFile(t *testing.T, dir, name string, n int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFaultOpenFiresOnce(t *testing.T) {
	path := writeFile(t, t.TempDir(), "f", 10)
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpOpen, Err: errInjected})

	if _, err := ffs.Open(path); !errors.Is(err, errInjected) {
		t.Fatalf("first open err = %v, want injected", err)
	}
	f, err := ffs.Open(path)
	if err != nil {
		t.Fatalf("second open should pass through (Times=0 fires once): %v", err)
	}
	f.Close()
	if got := ffs.Injected.Load(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
}

func TestFaultTimesUnlimited(t *testing.T) {
	path := writeFile(t, t.TempDir(), "f", 10)
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpOpen, Err: errInjected, Times: -1})
	for i := 0; i < 5; i++ {
		if _, err := ffs.Open(path); !errors.Is(err, errInjected) {
			t.Fatalf("open %d err = %v, want injected", i, err)
		}
	}
}

func TestFaultAfterBytesShortReadThenError(t *testing.T) {
	path := writeFile(t, t.TempDir(), "f", 100)
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpRead, Err: errInjected, AfterBytes: 64})

	f, err := ffs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// The read crossing byte 64 is truncated to the boundary.
	buf := make([]byte, 80)
	n, err := f.Read(buf)
	if err != nil || n != 64 {
		t.Fatalf("boundary read = (%d, %v), want (64, nil)", n, err)
	}
	// The next read, starting exactly at the boundary, gets the fault.
	if n, err = f.Read(buf); !errors.Is(err, errInjected) {
		t.Fatalf("post-boundary read = (%d, %v), want injected error", n, err)
	}
	// The rule is exhausted; reads pass through again.
	if n, err = f.Read(buf); err != nil || n != 36 {
		t.Fatalf("post-fault read = (%d, %v), want (36, nil)", n, err)
	}
}

func TestFaultAfterBytesReadAt(t *testing.T) {
	path := writeFile(t, t.TempDir(), "f", 100)
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpRead, Err: errInjected, AfterBytes: 32})

	f, err := ffs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	buf := make([]byte, 50)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 32 {
		t.Fatalf("boundary ReadAt = (%d, %v), want (32, nil)", n, err)
	}
	if _, err = f.ReadAt(buf, 32); !errors.Is(err, errInjected) {
		t.Fatalf("post-boundary ReadAt err = %v, want injected", err)
	}
}

func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpWrite, Err: syscall.ENOSPC, AfterBytes: 10})

	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write(make([]byte, 25))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn write err = %v, want ENOSPC", err)
	}
	if n != 10 {
		t.Fatalf("torn write persisted %d bytes, want 10", n)
	}
	f.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 10 {
		t.Fatalf("file holds %d bytes after torn write, want exactly the 10-byte prefix", len(b))
	}
}

func TestFaultStatShrink(t *testing.T) {
	path := writeFile(t, t.TempDir(), "f", 50)
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpStat, ShrinkBy: 20})

	fi, err := ffs.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 30 {
		t.Fatalf("shrunk Size = %d, want 30", fi.Size())
	}
	fi, err = ffs.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 50 {
		t.Fatalf("second stat Size = %d, want the true 50 (rule exhausted)", fi.Size())
	}
}

func TestFaultAfterCalls(t *testing.T) {
	path := writeFile(t, t.TempDir(), "f", 10)
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpOpen, Err: errInjected, AfterCalls: 2})

	for i := 0; i < 2; i++ {
		f, err := ffs.Open(path)
		if err != nil {
			t.Fatalf("open %d should succeed before AfterCalls: %v", i, err)
		}
		f.Close()
	}
	if _, err := ffs.Open(path); !errors.Is(err, errInjected) {
		t.Fatalf("third open err = %v, want injected", err)
	}
}

func TestFaultPathFilterAndClear(t *testing.T) {
	dir := t.TempDir()
	target := writeFile(t, dir, "target.csv", 10)
	other := writeFile(t, dir, "other.csv", 10)
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpOpen, Err: errInjected, PathContains: "target", Times: -1})

	if f, err := ffs.Open(other); err != nil {
		t.Fatalf("non-matching path must pass through: %v", err)
	} else {
		f.Close()
	}
	if _, err := ffs.Open(target); !errors.Is(err, errInjected) {
		t.Fatalf("matching path err = %v, want injected", err)
	}
	ffs.Clear()
	f, err := ffs.Open(target)
	if err != nil {
		t.Fatalf("open after Clear must pass through: %v", err)
	}
	f.Close()
}

func TestFaultCreateAndRename(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Err: syscall.ENOSPC, Times: -1})
	ffs.AddRule(vfs.Rule{Op: vfs.OpRename, Err: errInjected, Times: -1})

	if _, err := ffs.Create(filepath.Join(dir, "x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("create err = %v, want ENOSPC", err)
	}
	src := writeFile(t, dir, "src", 5)
	if err := ffs.Rename(src, filepath.Join(dir, "dst")); !errors.Is(err, errInjected) {
		t.Fatalf("rename err = %v, want injected", err)
	}
}

// TestOSPassthrough sanity-checks the passthrough FS against real files.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.Default(nil)
	f, err := fsys.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := fsys.Open(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(g)
	g.Close()
	if err != nil || string(b) != "hello" {
		t.Fatalf("read back = (%q, %v)", b, err)
	}
	fi, err := fsys.Stat(filepath.Join(dir, "f"))
	if err != nil || fi.Size() != 5 {
		t.Fatalf("stat = (%v, %v)", fi, err)
	}
	matches, err := fsys.Glob(filepath.Join(dir, "*"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob = (%v, %v)", matches, err)
	}
}
