package vfs

import (
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies the filesystem operation a fault Rule targets.
type Op int

const (
	OpOpen Op = iota
	OpStat
	OpRead
	OpWrite
	OpCreate
	OpRename
	OpRemove
	OpMkdir
	OpSync
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpStat:
		return "stat"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpMkdir:
		return "mkdir"
	case OpSync:
		return "sync"
	}
	return "?"
}

// Rule schedules one fault. A rule fires when its Op matches, the path
// contains PathContains (empty matches everything), its AfterCalls /
// AfterBytes thresholds have been crossed, and it has fires left.
type Rule struct {
	// Op is the operation class the rule applies to.
	Op Op
	// PathContains filters by substring of the file path; "" matches all.
	PathContains string
	// Err is the error injected. Required unless the rule only delays
	// or shrinks.
	Err error
	// AfterBytes delays the fault until N bytes have passed through
	// matching files for this Op (reads for OpRead, writes for
	// OpWrite). A read or write that would cross the boundary is
	// truncated to it (a short, successful I/O); the next call fails.
	// This gives byte-exact "EIO at offset N" and torn-write-at-N.
	AfterBytes int64
	// AfterCalls delays the fault until N matching calls succeeded.
	AfterCalls int
	// Times is extra fires beyond the first: the rule fires Times+1
	// times total. 0 fires once; -1 fires without limit.
	Times int
	// Delay pauses matching calls before they proceed (slow I/O). A
	// rule with Delay and no Err only slows, never fails.
	Delay time.Duration
	// ShrinkBy makes OpStat report a size smaller by this many bytes
	// (floor 0) instead of failing. Only meaningful with Op == OpStat
	// and Err == nil.
	ShrinkBy int64

	bytes int64 // bytes already passed through
	calls int   // successful calls already seen
	fired int
}

// FaultFS wraps an inner FS and injects faults per a mutable schedule.
// Safe for concurrent use. The zero value is not usable; call NewFaultFS.
type FaultFS struct {
	inner FS

	mu    sync.Mutex
	rules []*Rule

	// Injected counts faults actually delivered.
	Injected atomic.Int64
}

// NewFaultFS wraps inner (nil means the real filesystem).
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: Default(inner)}
}

// AddRule appends r to the schedule and returns it (for inspection).
func (f *FaultFS) AddRule(r Rule) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	rc := r
	f.rules = append(f.rules, &rc)
	return &rc
}

// Clear drops every rule; subsequent calls pass through untouched.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// check consults the schedule for a call of kind op on path. It returns
// the injected error, or nil to let the call proceed. For byte-metered
// ops, n is the size of the impending I/O; the returned allow value is
// how many bytes may proceed (n when unmetered).
func (f *FaultFS) check(op Op, path string, n int) (allow int, err error) {
	f.mu.Lock()
	var delay time.Duration
	allow = n
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if r.Times >= 0 && r.fired > r.Times {
			continue
		}
		if r.Delay > 0 && r.Err == nil && r.ShrinkBy == 0 {
			delay = r.Delay
			continue
		}
		if r.AfterBytes > 0 {
			remain := r.AfterBytes - r.bytes
			if remain > 0 && int64(n) <= remain {
				r.bytes += int64(n)
				continue // not at the boundary yet
			}
			if remain > 0 {
				// Truncate this I/O to the boundary; fault next call.
				r.bytes = r.AfterBytes
				if int64(allow) > remain {
					allow = int(remain)
				}
				continue
			}
		}
		if r.AfterCalls > 0 && r.calls < r.AfterCalls {
			r.calls++
			continue
		}
		if err == nil && r.Err != nil {
			r.fired++
			err = r.Err
		}
	}
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		f.Injected.Add(1)
		return 0, err
	}
	return allow, nil
}

// shrinkFor returns how many bytes OpStat should subtract for path.
func (f *FaultFS) shrinkFor(path string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != OpStat || r.ShrinkBy == 0 || r.Err != nil {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if r.Times >= 0 && r.fired > r.Times {
			continue
		}
		r.fired++
		return r.ShrinkBy
	}
	return 0
}

func (f *FaultFS) Open(name string) (File, error) {
	if _, err := f.check(OpOpen, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	op := OpOpen
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE) != 0 {
		op = OpCreate
	}
	if _, err := f.check(op, name, 0); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if _, err := f.check(OpCreate, name, 0); err != nil {
		return nil, &os.PathError{Op: "create", Path: name, Err: err}
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if _, err := f.check(OpCreate, dir+"/"+pattern, 0); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: file.Name()}, nil
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if _, err := f.check(OpStat, name, 0); err != nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: err}
	}
	fi, err := f.inner.Stat(name)
	if err != nil {
		return nil, err
	}
	if by := f.shrinkFor(name); by > 0 {
		return shrunkInfo{FileInfo: fi, by: by}, nil
	}
	return fi, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.check(OpRename, newpath, 0); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.check(OpRemove, name, 0); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.check(OpMkdir, path, 0); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Glob(pattern string) ([]string, error) { return f.inner.Glob(pattern) }

// shrunkInfo lies about a file's size, simulating a file truncated
// between stat and read.
type shrunkInfo struct {
	os.FileInfo
	by int64
}

func (s shrunkInfo) Size() int64 {
	sz := s.FileInfo.Size() - s.by
	if sz < 0 {
		return 0
	}
	return sz
}

// faultFile threads per-call fault checks through reads and writes.
type faultFile struct {
	File
	fs   *FaultFS
	path string
}

func (ff *faultFile) Read(p []byte) (int, error) {
	allow, err := ff.fs.check(OpRead, ff.path, len(p))
	if err != nil {
		return 0, err
	}
	if allow < len(p) && allow >= 0 {
		p = p[:allow]
	}
	return ff.File.Read(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	allow, err := ff.fs.check(OpRead, ff.path, len(p))
	if err != nil {
		return 0, err
	}
	if allow < len(p) {
		// Short read up to the fault boundary; the next call, starting
		// exactly at the boundary, gets the injected error. Engine
		// read loops advance by the returned count, so a short count
		// with nil error re-issues at the boundary.
		p = p[:allow]
	}
	return ff.File.ReadAt(p, off)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	allow, err := ff.fs.check(OpWrite, ff.path, len(p))
	if err != nil {
		return 0, err
	}
	if allow < len(p) && allow >= 0 {
		// Torn write: persist the prefix, then report failure for the
		// remainder on the next write (or now if nothing is allowed).
		n, werr := ff.File.Write(p[:allow])
		if werr != nil {
			return n, werr
		}
		if _, err2 := ff.fs.check(OpWrite, ff.path, 0); err2 != nil {
			return n, err2
		}
		return n, nil
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if _, err := ff.fs.check(OpSync, ff.path, 0); err != nil {
		return err
	}
	return ff.File.Sync()
}
