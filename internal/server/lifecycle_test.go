package server

// Table-lifecycle endpoint tests: PUT/DELETE /v1/tables/{name},
// POST /v1/tables/{name}/refresh, the enriched /v1/tables listing, and
// the -follow poll loop.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func doJSON(t *testing.T, method, url, body string, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, b, err)
		}
	}
	return resp
}

func TestTableLifecycleEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	dir := t.TempDir()
	logPath := filepath.Join(dir, "app.csv")
	if err := os.WriteFile(logPath, []byte("1,10\n2,20\n3,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Attach with follow. The response is the enriched table entry.
	spec, _ := json.Marshal(map[string]any{"path": logPath, "format": "csv", "follow": true})
	var info tableInfoJSON
	resp := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/logs", string(spec), &info)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attach status = %d", resp.StatusCode)
	}
	if info.Name != "logs" || !info.Follow || info.Path != logPath {
		t.Fatalf("attach info = %+v", info)
	}
	if info.Signature.Size != 15 || info.Signature.PrefixCRC == 0 || info.Signature.TailCRC == 0 {
		t.Errorf("attach signature = %+v, want the raw file's fingerprint", info.Signature)
	}

	// The listing carries both tables with signature + adaptation state.
	var tables map[string][]tableInfoJSON
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/tables", "", &tables); resp.StatusCode != http.StatusOK {
		t.Fatalf("tables status = %d", resp.StatusCode)
	}
	byName := map[string]tableInfoJSON{}
	for _, ti := range tables["tables"] {
		byName[ti.Name] = ti
	}
	if len(byName) != 2 {
		t.Fatalf("tables = %v, want events + logs", tables)
	}
	if !byName["logs"].Follow || byName["events"].Follow {
		t.Errorf("follow marks: logs=%v events=%v", byName["logs"].Follow, byName["events"].Follow)
	}

	// Warm up so the engine has learned state (and a row count) to
	// extend when the file grows.
	if resp, out := postQuery(t, ts.URL, "select count(*) from logs"); resp.StatusCode != http.StatusOK || out.Rows[0][0].(float64) != 3 {
		t.Fatalf("warm-up query: %d %v", resp.StatusCode, out.Rows)
	}

	// Refresh of an unchanged file is a no-op.
	var ref struct {
		Changed   bool  `json:"changed"`
		Grown     bool  `json:"grown"`
		RowsAdded int64 `json:"rows_added"`
		Rows      int64 `json:"rows"`
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/tables/logs/refresh", "", &ref); resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status = %d", resp.StatusCode)
	}
	if ref.Changed || ref.Grown {
		t.Errorf("no-op refresh = %+v", ref)
	}

	// Append rows; refresh reports the incremental growth.
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("4,40\n5,50\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	doJSON(t, http.MethodPost, ts.URL+"/v1/tables/logs/refresh", "", &ref)
	if !ref.Changed || !ref.Grown || ref.RowsAdded != 2 || ref.Rows != 5 {
		t.Errorf("growth refresh = %+v, want 2 rows folded in of 5", ref)
	}

	// The growth shows up in /v1/stats: per-table ingest counters, the
	// followed list, and the server's refresh accounting.
	var stats struct {
		Followed []string `json:"followed"`
		Ingest   map[string]struct {
			AppendedRows int64 `json:"appended_rows"`
			Refreshes    int64 `json:"refreshes"`
		} `json:"ingest"`
		Server struct {
			Refreshes int64 `json:"refreshes"`
			Grown     int64 `json:"grown"`
		} `json:"server"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "", &stats)
	if len(stats.Followed) != 1 || stats.Followed[0] != "logs" {
		t.Errorf("followed = %v, want [logs]", stats.Followed)
	}
	if in := stats.Ingest["logs"]; in.AppendedRows != 2 || in.Refreshes != 1 {
		t.Errorf("ingest[logs] = %+v, want 2 appended rows in 1 refresh", in)
	}
	if stats.Server.Refreshes < 2 || stats.Server.Grown != 1 {
		t.Errorf("server refresh accounting = %+v", stats.Server)
	}

	// The grown table answers queries over all five rows.
	resp2, out := postQuery(t, ts.URL, "select count(*), sum(a2) from logs")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp2.StatusCode)
	}
	if out.Rows[0][0].(float64) != 5 || out.Rows[0][1].(float64) != 150 {
		t.Errorf("query over grown table = %v, want [5 150]", out.Rows[0])
	}

	// Error paths: bad body, missing path, unknown table.
	if resp := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/x", "{", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status = %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/x", "{}", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing path status = %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/x", `{"path":"`+logPath+`","delimiter":"ab"}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad delimiter status = %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/tables/nope/refresh", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("refresh unknown status = %d, want 404", resp.StatusCode)
	}

	// Detach removes the table and its follow mark.
	var det map[string]string
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/logs", "", &det); resp.StatusCode != http.StatusOK || det["detached"] != "logs" {
		t.Fatalf("detach = %d %v", resp.StatusCode, det)
	}
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/tables/logs", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double detach status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts.URL, "select count(*) from logs"); resp.StatusCode == http.StatusOK {
		t.Error("detached table still served queries")
	}
}

// TestFollowLoop pins nodbd's -follow mode end to end: a followed table's
// file grows on disk and the server's poll loop folds the tail in without
// any client asking.
func TestFollowLoop(t *testing.T) {
	_, ts := newTestServer(t, Config{FollowInterval: 5 * time.Millisecond})

	dir := t.TempDir()
	logPath := filepath.Join(dir, "app.csv")
	if err := os.WriteFile(logPath, []byte("1,10\n2,20\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(map[string]any{"path": logPath, "follow": true})
	if resp := doJSON(t, http.MethodPut, ts.URL+"/v1/tables/logs", string(spec), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("attach status = %d", resp.StatusCode)
	}

	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("3,30\n4,40\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Wait for the poll loop itself to fold the growth in (no query in
	// between — a query would revalidate on its own and steal the work).
	var stats struct {
		Server struct {
			Refreshes int64 `json:"refreshes"`
			Grown     int64 `json:"grown"`
		} `json:"server"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "", &stats)
		if stats.Server.Grown >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follow loop never ingested the appended rows: %+v", stats.Server)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats.Server.Refreshes == 0 {
		t.Errorf("follow loop accounting = %+v, want refreshes > 0", stats.Server)
	}

	resp, out := postQuery(t, ts.URL, "select count(*) from logs")
	if resp.StatusCode != http.StatusOK || out.Rows[0][0].(float64) != 4 {
		t.Errorf("query after follow ingest: %d %v, want 4 rows", resp.StatusCode, out.Rows)
	}
}
