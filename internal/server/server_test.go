package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nodb"
	"nodb/internal/csvgen"
)

const testRows = 4000

// newTestServer stands up a DB over one generated table ("events",
// columns a1..a4 holding permutations of 0..rows-1) and a Server on it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "events.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: testRows, Cols: 4, Seed: 19}); err != nil {
		t.Fatal(err)
	}
	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV2, SplitDir: filepath.Join(dir, "splits")})
	t.Cleanup(func() { db.Close() })
	if err := db.Link("events", path); err != nil {
		t.Fatal(err)
	}
	cfg.DB = db
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t *testing.T, url, query string) (*http.Response, queryResponse) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{Query: query})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

func TestServerQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	wantSum := float64(testRows) * float64(testRows-1) / 2
	resp, out := postQuery(t, ts.URL, "select sum(a1), count(*) from events where a1 >= 0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if len(out.Columns) != 2 || len(out.Rows) != 1 {
		t.Fatalf("got %d columns, %d rows", len(out.Columns), len(out.Rows))
	}
	if got := out.Rows[0][0].(float64); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	if got := out.Rows[0][1].(float64); got != testRows {
		t.Fatalf("count = %v, want %d", got, testRows)
	}
	if out.Stats.Plan == "" {
		t.Error("response missing plan")
	}

	// GET form.
	resp2, err := http.Get(ts.URL + "/query?q=" + "select+count(*)+from+events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /query status = %d, want 200", resp2.StatusCode)
	}
}

func TestServerMetadataEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var tables map[string][]tableInfoJSON
	getJSON(t, ts.URL+"/tables", &tables)
	if len(tables["tables"]) != 1 || tables["tables"][0].Name != "events" {
		t.Fatalf("tables = %v", tables)
	}
	if tables["tables"][0].Signature.Size <= 0 {
		t.Fatalf("tables entry missing signature: %+v", tables["tables"][0])
	}

	var sch schemaJSON
	getJSON(t, ts.URL+"/schema?table=events", &sch)
	if len(sch.Columns) != 4 {
		t.Fatalf("schema columns = %v", sch.Columns)
	}
	if sch.Columns[0].Name != "a1" || sch.Columns[0].Type != "int64" {
		t.Fatalf("first column = %+v", sch.Columns[0])
	}

	var expl map[string]string
	getJSON(t, ts.URL+"/explain?q=select+sum(a1)+from+events", &expl)
	if expl["plan"] == "" {
		t.Fatal("empty plan")
	}

	var stats statsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Server.MaxInFlight != 64 {
		t.Fatalf("max_in_flight = %d, want default 64", stats.Server.MaxInFlight)
	}
	if stats.Policy != "partial-v2" {
		t.Fatalf("policy = %q", stats.Policy)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s status = %d: %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"missing query", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(`{}`)))
		}, http.StatusBadRequest},
		{"bad json", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(`{`)))
		}, http.StatusBadRequest},
		{"bad sql", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte(`{"query":"select from nothing"}`)))
		}, http.StatusBadRequest},
		{"unknown table schema", func() (*http.Response, error) {
			return http.Get(ts.URL + "/schema?table=nope")
		}, http.StatusNotFound},
		{"bad method", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := tc.do()
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestServerBodyTooLarge: a POST body over the configured cap gets 413,
// not a generic 400.
func TestServerBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	body, _ := json.Marshal(queryRequest{Query: "select count(*) from events where a1 > 0 and a1 < 99999999"})
	if len(body) <= 64 {
		t.Fatalf("test body only %d bytes", len(body))
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestServerAdmissionControl holds the only execution slot and verifies
// the next query is turned away with 429, then succeeds once released.
func TestServerAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})

	s.sem <- struct{}{} // occupy the single slot
	resp, _ := postQuery(t, ts.URL, "select count(*) from events")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	<-s.sem // release

	resp2, _ := postQuery(t, ts.URL, "select count(*) from events")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", resp2.StatusCode)
	}
	if got := s.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

// TestServerTimeout: an already-expired server-side timeout surfaces as
// 504 and counts as a cancelled query.
func TestServerTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{DefaultTimeout: time.Nanosecond})
	resp, _ := postQuery(t, ts.URL, "select count(*) from events")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if got := s.cancelled.Load(); got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}
}

// TestServerConcurrentClients hammers one shared engine from many client
// goroutines mixing queries and metadata requests; run under -race this is
// the headline "concurrent query server with no data races" check.
func TestServerConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 32})

	wantSum := float64(testRows) * float64(testRows-1) / 2
	queries := []string{
		"select sum(a1), count(*) from events where a1 >= 0",
		"select sum(a2) from events where a2 >= 0",
		"select min(a3), max(a3) from events",
		"select count(*) from events where a1 < 100",
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch i % 4 {
				case 0:
					resp, out := postQueryE(ts.URL, queries[0])
					if resp == nil || resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: query failed: %v", cl, resp)
						return
					}
					if got := out.Rows[0][0].(float64); got != wantSum {
						errs <- fmt.Errorf("client %d: sum = %v, want %v", cl, got, wantSum)
						return
					}
				case 1:
					resp, _ := postQueryE(ts.URL, queries[(cl+i)%len(queries)])
					if resp == nil || resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: query failed: %v", cl, resp)
						return
					}
				case 2:
					resp, err := http.Get(ts.URL + "/stats")
					if err != nil || resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: stats failed: %v", cl, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case 3:
					resp, err := http.Get(ts.URL + "/tables")
					if err != nil || resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("client %d: tables failed: %v", cl, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.inFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge = %d after drain, want 0", got)
	}
	if s.served.Load() == 0 {
		t.Fatal("served counter never advanced")
	}
}

// postQueryE is postQuery without the testing.T, for use inside client
// goroutines (t.Fatal must not be called off the test goroutine).
func postQueryE(url, query string) (*http.Response, queryResponse) {
	body, _ := json.Marshal(queryRequest{Query: query})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, queryResponse{}
	}
	defer resp.Body.Close()
	var out queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, queryResponse{}
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

// TestServerQueryStream: the NDJSON endpoint emits a columns header, one
// JSON array per row, and a stats trailer.
func TestServerQueryStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body, _ := json.Marshal(queryRequest{Query: "select a1 from events where a1 < 10 order by a1"})
	resp, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("missing header line")
	}
	var header struct {
		Columns []string `json:"columns"`
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		t.Fatal(err)
	}
	if len(header.Columns) != 1 || header.Columns[0] != "a1" {
		t.Fatalf("columns = %v", header.Columns)
	}

	var got []float64
	var sawStats bool
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("[")) {
			var row []float64
			if err := json.Unmarshal(line, &row); err != nil {
				t.Fatal(err)
			}
			got = append(got, row[0])
			continue
		}
		var trailer struct {
			Stats *queryStatsJSON `json:"stats"`
			Error string          `json:"error"`
		}
		if err := json.Unmarshal(line, &trailer); err != nil {
			t.Fatal(err)
		}
		if trailer.Error != "" {
			t.Fatalf("stream error: %s", trailer.Error)
		}
		if trailer.Stats == nil || trailer.Stats.Plan == "" {
			t.Fatalf("trailer missing stats: %s", line)
		}
		sawStats = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawStats {
		t.Fatal("stream ended without a stats trailer")
	}
	if len(got) != 10 {
		t.Fatalf("got %d rows, want 10", len(got))
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("row %d = %v", i, v)
		}
	}
}

// TestServerQueryStreamErrors: parse errors arrive as a plain error
// response before anything streams.
func TestServerQueryStreamErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(queryRequest{Query: "select bogus from nowhere"})
	resp, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestServerQueryStreamDisconnect: a client that walks away mid-stream
// stops the scan — the engine reads fewer raw bytes than the file holds.
func TestServerQueryStreamDisconnect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.csv")
	// Big enough that the scan outlives disconnect propagation by a wide
	// margin; the assertion is only that the pass did not run to the end.
	const rows = 400000
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: rows, Cols: 4, Seed: 23}); err != nil {
		t.Fatal(err)
	}
	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV1, ChunkSize: 4096})
	t.Cleanup(func() { db.Close() })
	if err := db.Link("big", path); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{DB: db})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the portion layout (one full pass) so the streamed scan below
	// is a steady-state pass with no one-time row-count pre-pass, then
	// measure from here.
	if _, err := db.Query("select count(*) from big"); err != nil {
		t.Fatal(err)
	}
	base := db.Work().RawBytesRead

	body, _ := json.Marshal(queryRequest{Query: "select a1 from big where a1 >= 0"})
	resp, err := http.Post(ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	// Read the header line only, then hang up.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The scan must stop well short of a full pass once the disconnect
	// propagates; poll briefly to let cancellation land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		read := db.Work().RawBytesRead - base
		if srv.inFlight.Load() == 0 {
			if read >= st.Size() {
				t.Fatalf("disconnected stream read %d raw bytes of a %d byte file; want an early stop", read, st.Size())
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("query still in flight after disconnect (read %d bytes)", read)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsMemoryFields verifies /stats surfaces the memory governor's
// accounting: after a query loads adaptive state, used bytes are visible;
// the policy name and (unlimited) budget are reported.
func TestStatsMemoryFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, _ := postQuery(t, ts.URL, "select sum(a1) from events where a1 >= 0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var stats statsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Memory.Used <= 0 {
		t.Errorf("memory.used = %d, want > 0 after a retained load", stats.Memory.Used)
	}
	if stats.Memory.Budget != 0 {
		t.Errorf("memory.budget = %d, want 0 (unlimited)", stats.Memory.Budget)
	}
	if stats.Memory.Policy != "cost" {
		t.Errorf("memory.policy = %q, want cost", stats.Memory.Policy)
	}
	if stats.Memory.Entries <= 0 {
		t.Errorf("memory.entries = %d, want > 0", stats.Memory.Entries)
	}
}
