package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPanicRecovery drives a panicking handler through the wrap
// middleware: the client must get a clean 500 envelope carrying the
// request id, the panics counter must tick, and the process must keep
// serving (the next real query works).
func TestPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	h := s.wrap(func(w http.ResponseWriter, r *http.Request) {
		panic("boom: handler bug")
	}, "")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/panic", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	id := rec.Header().Get("X-Request-Id")
	if id == "" {
		t.Fatal("panicking request must still carry an X-Request-Id")
	}
	if body := rec.Body.String(); !strings.Contains(body, id) {
		t.Fatalf("500 body %q must reference request id %s so logs correlate", body, id)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The server is still alive and the counter is visible to operators.
	resp, _ := postQuery(t, ts.URL, "select count(*) from events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after panic = %d, want 200", resp.StatusCode)
	}
	if st := getStats(t, ts.URL); st.Server.Panics != 1 {
		t.Fatalf("stats panics = %d, want 1", st.Server.Panics)
	}
}

// TestPanicMidResponse covers the half-written case: once a handler has
// started the response, recovery must not stack a second status/body on
// top of the partial one.
func TestPanicMidResponse(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	h := s.wrap(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("boom after headers")
	}, "")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/panic", nil))

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d; recovery must not overwrite an already-written response", rec.Code)
	}
	if body := rec.Body.String(); strings.Contains(body, "internal error") {
		t.Fatalf("recovery appended an error envelope to a started response: %q", body)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
}

// TestFollowBackoffSurfacedInStats exercises the per-table refresh
// backoff bookkeeping and its /v1/stats surfacing: failures double the
// retry delay and show up as refresh_backoff, success clears both.
func TestFollowBackoffSurfacedInStats(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	now := time.Now()
	interval := time.Second
	if !s.followDue("events", now) {
		t.Fatal("a table with no failure history is always due")
	}
	s.followFailed("events", interval, now)
	s.followFailed("events", interval, now)
	s.followFailed("events", interval, now)

	// Three failures → delay 4*interval; due again only after it passes.
	if s.followDue("events", now.Add(3*time.Second)) {
		t.Fatal("table must still be backing off before 4*interval")
	}
	if !s.followDue("events", now.Add(5*time.Second)) {
		t.Fatal("table must be due again once the backoff window passes")
	}

	st := getStats(t, ts.URL)
	if got := st.Server.RefreshBackoff["events"]; got != 3 {
		t.Fatalf("refresh_backoff[events] = %d, want 3", got)
	}

	s.followOK("events")
	if !s.followDue("events", now) {
		t.Fatal("a successful refresh must clear the backoff")
	}
	if st := getStats(t, ts.URL); len(st.Server.RefreshBackoff) != 0 {
		t.Fatalf("refresh_backoff = %v, want empty after recovery", st.Server.RefreshBackoff)
	}
}

// TestFollowBackoffCap pins the cap: a table that has failed for ages
// retries once per followBackoffCap window, never slower, and the shift
// arithmetic must not overflow into a negative (always-due) delay.
func TestFollowBackoffCap(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	now := time.Now()
	for i := 0; i < 40; i++ { // enough failures to overflow a naive shift
		s.followFailed("events", time.Second, now)
	}
	if s.followDue("events", now.Add(followBackoffCap-time.Second)) {
		t.Fatal("capped table must not be due just before the cap window")
	}
	if !s.followDue("events", now.Add(followBackoffCap+time.Second)) {
		t.Fatal("capped table must be due after one cap window")
	}
}

// TestHealthzOKWhenNotDegraded pins the healthy liveness body; the
// degraded flip is covered end-to-end by TestServerHealthzDegraded in
// the root package, which needs the fault-injecting FS seam.
func TestHealthzOKWhenNotDegraded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = (%d, %v), want (200, status ok)", resp.StatusCode, body)
	}
}
