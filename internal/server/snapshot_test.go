package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nodb"
	"nodb/internal/csvgen"
)

// TestSnapshotFlusherAndStats: with a cache dir and a short flush
// interval, the server periodically persists the DB's auxiliary
// structures and /stats surfaces the snapshot cache's activity.
func TestSnapshotFlusherAndStats(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := filepath.Join(dir, "events.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 500, Cols: 4, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	db := nodb.Open(nodb.Options{Policy: nodb.ColumnLoads, CacheDir: cache})
	t.Cleanup(func() { db.Close() })
	if err := db.Link("events", path); err != nil {
		t.Fatal(err)
	}
	s := New(Config{DB: db, SnapshotInterval: 20 * time.Millisecond})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	if resp, _ := postQuery(t, ts.URL, "select sum(a1) from events"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}

	// The flusher must write snapshot files without any shutdown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if entries, err := os.ReadDir(cache); err == nil && len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic flusher never wrote a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var stats statsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if !stats.Snapshot.Enabled {
		t.Fatalf("stats.snapshot.enabled = false: %+v", stats.Snapshot)
	}
	if stats.Snapshot.Saves == 0 {
		t.Errorf("stats.snapshot.saves = 0 after flush: %+v", stats.Snapshot)
	}
	if stats.Snapshot.Dir != cache {
		t.Errorf("stats.snapshot.dir = %q, want %q", stats.Snapshot.Dir, cache)
	}

	// Close stops the flusher (idempotent) and performs a final flush.
	if err := s.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	var after statsResponse
	getJSON(t, ts.URL+"/stats", &after)
	if after.Server.SnapshotSaves == 0 && stats.Server.SnapshotSaves == 0 {
		t.Errorf("server flush counter never moved: %+v", after.Server)
	}
}

// TestStatsSnapshotDisabled: without a cache dir the snapshot object
// reports disabled and the flusher never starts.
func TestStatsSnapshotDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{SnapshotInterval: 10 * time.Millisecond})
	var stats statsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Snapshot.Enabled {
		t.Errorf("snapshot reported enabled without a cache dir: %+v", stats.Snapshot)
	}
}
