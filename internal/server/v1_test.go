package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"nodb/internal/qos"
)

// TestV1LegacyDifferential pins the satellite contract: every /v1 route
// serves a byte-identical body to its legacy alias; the alias differs
// only in its Deprecation headers.
func TestV1LegacyDifferential(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	fetch := func(method, path, body string) (*http.Response, []byte) {
		t.Helper()
		var req *http.Request
		var err error
		if method == http.MethodPost {
			req, err = http.NewRequest(method, ts.URL+path, strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
		} else {
			req, err = http.NewRequest(method, ts.URL+path, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	cases := []struct {
		method, path, body string
	}{
		{http.MethodPost, "/query", `{"query":"select sum(a1), count(*) from events where a1 >= 0"}`},
		{http.MethodPost, "/query/stream", `{"query":"select a1 from events where a1 < 5"}`},
		{http.MethodPost, "/explain", `{"query":"select count(*) from events"}`},
		{http.MethodGet, "/tables", ""},
		{http.MethodGet, "/schema?table=events", ""},
		{http.MethodPost, "/query", `{"query":"select broken from"}`}, // error envelope too
	}
	for _, tc := range cases {
		legacyResp, legacy := fetch(tc.method, tc.path, tc.body)
		v1Resp, v1 := fetch(tc.method, "/v1"+tc.path, tc.body)
		if legacyResp.StatusCode != v1Resp.StatusCode {
			t.Errorf("%s %s: status legacy=%d v1=%d", tc.method, tc.path, legacyResp.StatusCode, v1Resp.StatusCode)
		}
		// /query responses embed wall-clock stats that differ run to run;
		// strip the volatile stats object before comparing bytes.
		lb, vb := stripVolatile(t, legacy), stripVolatile(t, v1)
		if !bytes.Equal(lb, vb) {
			t.Errorf("%s %s: body mismatch\nlegacy: %s\nv1:     %s", tc.method, tc.path, lb, vb)
		}
		if legacyResp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s %s: legacy alias missing Deprecation header", tc.method, tc.path)
		}
		wantLink := fmt.Sprintf("</v1%s>; rel=\"successor-version\"", strings.SplitN(tc.path, "?", 2)[0])
		if got := legacyResp.Header.Get("Link"); got != wantLink {
			t.Errorf("%s %s: Link = %q, want %q", tc.method, tc.path, got, wantLink)
		}
		if v1Resp.Header.Get("Deprecation") != "" {
			t.Errorf("%s %s: /v1 route must not be deprecated", tc.method, tc.path)
		}
	}
}

// stripVolatile zeroes per-request timing and live-memory fields inside
// JSON or NDJSON bodies so byte comparison pins everything else.
// mem_bytes in /tables entries is live accounting that background cursor
// teardown can shift between two otherwise-identical requests.
func stripVolatile(t *testing.T, body []byte) []byte {
	t.Helper()
	var out [][]byte
	for _, line := range bytes.Split(bytes.TrimRight(body, "\n"), []byte("\n")) {
		var m map[string]json.RawMessage
		if json.Unmarshal(line, &m) != nil {
			out = append(out, line)
			continue
		}
		if _, ok := m["stats"]; ok {
			delete(m, "stats")
		}
		if raw, ok := m["tables"]; ok {
			var infos []map[string]json.RawMessage
			if json.Unmarshal(raw, &infos) == nil {
				for _, info := range infos {
					delete(info, "mem_bytes")
				}
				if norm, err := json.Marshal(infos); err == nil {
					m["tables"] = norm
				}
			}
		}
		norm, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, norm)
	}
	return bytes.Join(out, []byte("\n"))
}

func TestRequestIDEchoAndGenerate(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/tables", nil)
	req.Header.Set("X-Request-Id", "my-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "my-trace-42" {
		t.Fatalf("echoed request id = %q, want my-trace-42", got)
	}

	for _, path := range []string{"/v1/stats", "/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-Request-Id") == "" {
			t.Errorf("%s: no generated X-Request-Id", path)
		}
	}
}

func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "invalid_request" || env.Error.Message == "" {
		t.Fatalf("envelope = %+v, want code invalid_request with a message", env.Error)
	}
}

func testRegistry(t *testing.T, reject bool) *qos.Registry {
	t.Helper()
	reg, err := qos.NewRegistry([]qos.Tenant{
		{Name: "alpha", Key: "alpha-key", Weight: 3},
		{Name: "beta", Key: "beta-key", Weight: 1},
	}, reject)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestUnknownAPIKeyPolicy(t *testing.T) {
	query := `{"query":"select count(*) from events"}`

	do := func(ts string, key string) (*http.Response, errorEnvelope) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts+"/v1/query", strings.NewReader(query))
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env errorEnvelope
		b, _ := io.ReadAll(resp.Body)
		_ = json.Unmarshal(b, &env)
		return resp, env
	}

	t.Run("reject", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Tenants: testRegistry(t, true)})
		resp, env := do(ts.URL, "nope")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("unknown key status = %d, want 401", resp.StatusCode)
		}
		if env.Error.Code != "unknown_api_key" {
			t.Fatalf("error code = %q, want unknown_api_key", env.Error.Code)
		}
		if resp, _ := do(ts.URL, "alpha-key"); resp.StatusCode != http.StatusOK {
			t.Fatalf("known key status = %d, want 200", resp.StatusCode)
		}
	})

	t.Run("default", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Tenants: testRegistry(t, false)})
		if resp, _ := do(ts.URL, "nope"); resp.StatusCode != http.StatusOK {
			t.Fatalf("unknown key under default policy = %d, want 200", resp.StatusCode)
		}
		if resp, _ := do(ts.URL, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("missing key under default policy = %d, want 200", resp.StatusCode)
		}
	})
}

// TestTenantAdmissionPartitioned verifies one tenant exhausting its slots
// draws tenant-scoped 429s while another tenant still admits.
func TestTenantAdmissionPartitioned(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 4, Tenants: testRegistry(t, false)})

	// Under the allow policy the registry adds an implicit default tenant
	// (weight 1), so weights are alpha:3 beta:1 default:1 over 4 global
	// slots → alpha 2, beta 1, default 1. Fill beta's single slot by hand.
	beta := s.tenants["beta"]
	if beta == nil || cap(beta.sem) != 1 {
		t.Fatalf("beta slots = %v, want 1", beta)
	}
	alpha := s.tenants["alpha"]
	if alpha == nil || cap(alpha.sem) != 2 {
		t.Fatalf("alpha slots = %v, want 2", alpha)
	}
	beta.sem <- struct{}{}
	defer func() { <-beta.sem }()

	do := func(key string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query",
			strings.NewReader(`{"query":"select count(*) from events"}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := do("beta-key"); code != http.StatusTooManyRequests {
		t.Fatalf("beta at capacity = %d, want 429", code)
	}
	if code := do("alpha-key"); code != http.StatusOK {
		t.Fatalf("alpha while beta saturated = %d, want 200", code)
	}
	if beta.rejected.Load() != 1 {
		t.Fatalf("beta rejected = %d, want 1", beta.rejected.Load())
	}
	if alpha.rejected.Load() != 0 {
		t.Fatalf("alpha rejected = %d, want 0", alpha.rejected.Load())
	}
}

// TestStatsTenantsAndResultCache checks the /v1/stats sections the QoS
// layer adds.
func TestStatsTenantsAndResultCache(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 4, Tenants: testRegistry(t, false)})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query",
				strings.NewReader(`{"query":"select count(*) from events"}`))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-API-Key", "alpha-key")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ResultCache struct {
			Enabled bool `json:"enabled"`
		} `json:"result_cache"`
		Tenants map[string]struct {
			Weight float64 `json:"weight"`
			Slots  int     `json:"slots"`
			Served int64   `json:"served"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ResultCache.Enabled {
		t.Fatal("result cache reported enabled on a server whose DB has none")
	}
	a, ok := out.Tenants["alpha"]
	if !ok {
		t.Fatalf("stats missing tenant alpha: %+v", out.Tenants)
	}
	if a.Weight != 3 || a.Slots != 2 {
		t.Fatalf("alpha = %+v, want weight 3, slots 2", a)
	}
	if a.Served == 0 {
		t.Fatal("alpha served 0 queries after serving 3")
	}
}
