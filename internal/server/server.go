// Package server exposes a nodb.DB over HTTP/JSON: many concurrent
// clients, one shared engine. It is the network layer of the NoDB
// reproduction — "here are my data files, here are my queries" as a
// service instead of a library call.
//
// The server adds the production concerns the engine itself stays out of:
// admission control (a fixed number of in-flight queries; excess requests
// get 429 instead of piling onto the engine), per-request timeouts layered
// on the client's own context, and work/health introspection endpoints.
// Cancellation is end-to-end: a client that disconnects or times out has
// its context cancelled, which stops the engine's raw-file scan between
// chunks via the QueryContext path.
//
// Endpoints (v1; the same paths without the /v1 prefix still work as
// deprecated aliases and answer with a Deprecation header):
//
//	POST /v1/query         {"query": "...", "timeout_ms": 0}  -> columns, rows, stats
//	GET  /v1/query?q=...                                      -> same
//	POST /v1/query/stream  (same request shape)               -> NDJSON row stream
//	POST /v1/explain       {"query": "..."} (or GET ?q=...)   -> physical plan text
//	GET  /v1/tables                                           -> per-table state (signature, rows, adaptation)
//	PUT  /v1/tables/{name} {"path": "...", "format": "",      -> attach (or replace) a table
//	                        "delimiter": "", "follow": false}
//	DELETE /v1/tables/{name}                                  -> detach a table
//	POST /v1/tables/{name}/refresh                            -> re-stat the raw file now; appended
//	                                                             rows are folded in incrementally
//	GET  /v1/schema?table=name                                -> detected schema
//	GET  /v1/stats                                            -> engine + server counters
//	GET  /healthz, /readyz                                    -> probes (unversioned)
//
// Every response echoes the request's X-Request-Id header (generating one
// when absent), and every non-200 body is the envelope
// {"error":{"code":"...","message":"..."}}. Tenancy: requests carry an
// X-API-Key header; with a tenant registry configured the key selects the
// tenant whose admission slots and memory share the query runs under
// (unknown keys are rejected with 401 or mapped to the default tenant,
// per the registry's policy).
//
// /query buffers the whole result; /query/stream writes one NDJSON line
// per row through the engine's streaming cursor, flushing incrementally —
// the first rows arrive while the raw-file scan is still running, and a
// client that disconnects mid-stream stops the scan between chunks.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nodb"
	"nodb/internal/cluster"
	"nodb/internal/errs"
	"nodb/internal/metrics"
	"nodb/internal/qos"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// Config configures a Server.
type Config struct {
	// DB is the shared engine. Required.
	DB *nodb.DB
	// MaxInFlight caps concurrently executing queries; further requests
	// are rejected with 429 until a slot frees (default 64).
	MaxInFlight int
	// DefaultTimeout bounds each query when the request does not set its
	// own (0 = no server-side timeout; the client context still applies).
	DefaultTimeout time.Duration
	// MaxTimeout caps the timeout a request may ask for (default: no cap).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request body size (default 1 MiB).
	MaxBodyBytes int64
	// SnapshotInterval is how often the server flushes the DB's
	// auxiliary-structure snapshots to its cache dir, so a crash loses at
	// most one interval of adaptive learning. 0 disables the flusher;
	// the flush is a no-op when the DB has no CacheDir configured.
	SnapshotInterval time.Duration
	// Tenants maps API keys to tenants and splits MaxInFlight into
	// per-tenant admission slots by weight, so one tenant's burst cannot
	// consume another's capacity. nil serves everyone as one anonymous
	// tenant with the shared slot pool.
	Tenants *qos.Registry
	// FollowInterval is how often the server re-stats the raw files of
	// tables attached with follow=true, folding appended rows into the
	// learned structures incrementally (nodbd's -follow flag). 0 disables
	// the poll loop; explicit POST /v1/tables/{name}/refresh always works.
	FollowInterval time.Duration
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 64
	}
	return c.MaxInFlight
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return c.MaxBodyBytes
}

// tenantState is one tenant's slice of the admission controller: a slot
// pool sized by the tenant's weight, plus request accounting.
type tenantState struct {
	weight float64
	sem    chan struct{}

	inFlight atomic.Int64
	served   atomic.Int64
	rejected atomic.Int64
}

// Server serves queries against one shared DB.
type Server struct {
	cfg     Config
	db      *nodb.DB
	sem     chan struct{}
	mux     *http.ServeMux
	tenants map[string]*tenantState // by tenant name; nil without a registry

	started time.Time

	// Periodic snapshot flusher lifecycle (nil channels when disabled).
	flushStop chan struct{}
	flushDone chan struct{}
	// Tail-follow poll loop lifecycle (nil channels when disabled).
	followStop chan struct{}
	followDone chan struct{}
	closeOnce  sync.Once

	// ready flips once the operator has linked all tables; /readyz serves
	// 503 until then so a coordinator doesn't route queries at a node
	// still attaching files.
	ready atomic.Bool

	// Request accounting, all monotonic except inFlight.
	inFlight   atomic.Int64
	served     atomic.Int64 // queries executed to completion (ok or error)
	rejected   atomic.Int64 // 429s from admission control
	cancelled  atomic.Int64 // queries that died to context cancel/timeout
	failed     atomic.Int64 // queries that returned any other error
	snapSaves  atomic.Int64 // periodic snapshot flushes that succeeded
	snapErrors atomic.Int64 // periodic snapshot flushes that failed

	refreshes     atomic.Int64 // explicit + follow-loop refreshes that completed
	refreshErrors atomic.Int64 // refreshes that failed (I/O errors re-statting)
	grown         atomic.Int64 // refreshes that folded in appended rows incrementally
	panics        atomic.Int64 // handler panics converted to 500s

	// followMu guards follow, the per-table backoff state of the follow
	// loop: a table whose refresh keeps failing is retried with
	// exponentially growing intervals instead of every poll tick.
	followMu sync.Mutex
	follow   map[string]*followState
}

// followState is one followed table's refresh-failure backoff.
type followState struct {
	failures int       // consecutive refresh failures
	nextTry  time.Time // do not re-poll before this
}

// followBackoffCap bounds the follow loop's per-table retry interval.
const followBackoffCap = 5 * time.Minute

// New creates a Server around cfg.DB.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		db:      cfg.DB,
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	globalSlots := cfg.maxInFlight()
	if cfg.Tenants != nil {
		// Split the slot pool by weight. Every tenant gets at least one
		// slot, so rounding can push the per-tenant sum past MaxInFlight;
		// the global pool grows to match so a free tenant slot is never
		// blocked by a rounding artifact.
		weights := cfg.Tenants.Weights()
		var sum float64
		for _, w := range weights {
			sum += w
		}
		s.tenants = make(map[string]*tenantState, len(weights))
		total := 0
		for name, w := range weights {
			slots := int(float64(cfg.maxInFlight())*w/sum + 0.5)
			if slots < 1 {
				slots = 1
			}
			total += slots
			s.tenants[name] = &tenantState{weight: w, sem: make(chan struct{}, slots)}
		}
		if total > globalSlots {
			globalSlots = total
		}
	}
	s.sem = make(chan struct{}, globalSlots)
	s.route("/query", s.handleQuery)
	s.route("/query/stream", s.handleQueryStream)
	s.route("/explain", s.handleExplain)
	s.route("/tables", s.handleTables)
	// Lifecycle endpoints are v1-only (introduced with the versioned API;
	// there is no legacy path to alias).
	s.mux.Handle("PUT /v1/tables/{name}", s.wrap(s.handleTableAttach, ""))
	s.mux.Handle("DELETE /v1/tables/{name}", s.wrap(s.handleTableDetach, ""))
	s.mux.Handle("POST /v1/tables/{name}/refresh", s.wrap(s.handleTableRefresh, ""))
	s.route("/schema", s.handleSchema)
	s.route("/stats", s.handleStats)
	s.route("/cluster/synopsis", s.handleClusterSynopsis)
	s.mux.Handle("/healthz", s.wrap(s.handleHealthz, ""))
	s.mux.Handle("/readyz", s.wrap(s.handleReadyz, ""))
	if cfg.SnapshotInterval > 0 {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop(cfg.SnapshotInterval)
	}
	if cfg.FollowInterval > 0 {
		s.followStop = make(chan struct{})
		s.followDone = make(chan struct{})
		go s.followLoop(cfg.FollowInterval)
	}
	return s
}

// route mounts a handler at its canonical /v1 path and at the legacy
// unprefixed path. Both serve byte-identical bodies; the legacy alias
// additionally answers with a Deprecation header and a Link to its
// successor so clients can migrate mechanically.
func (s *Server) route(path string, h http.HandlerFunc) {
	s.mux.Handle("/v1"+path, s.wrap(h, ""))
	s.mux.Handle(path, s.wrap(h, "/v1"+path))
}

// wrap applies the cross-cutting response contract: every response
// carries an X-Request-Id (echoed from the request, or generated),
// deprecated aliases advertise their successor, and a panicking handler
// is converted into a 500 with the v1 error envelope instead of killing
// the connection (and, without http.Server's recovery, the daemon).
func (s *Server) wrap(h http.HandlerFunc, successor string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		if successor != "" {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		}
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				log.Printf("nodb/server: panic serving %s %s (request %s): %v\n%s",
					r.Method, r.URL.Path, id, rec, debug.Stack())
				if !sw.wrote {
					writeError(w, http.StatusInternalServerError, "internal error (request %s)", id)
				}
			}
		}()
		h(sw, r)
	})
}

// statusWriter tracks whether a handler wrote anything, so the panic
// recovery knows if a clean error envelope can still be sent.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards streaming flushes (the NDJSON endpoints rely on it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newRequestID generates a fresh 16-hex-digit request id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// flushLoop periodically persists the DB's auxiliary structures so the
// adaptive learning accumulated under live traffic survives a crash, not
// just a graceful shutdown.
func (s *Server) flushLoop(interval time.Duration) {
	defer close(s.flushDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if err := s.db.Snapshot(); err != nil {
				s.snapErrors.Add(1)
			} else {
				s.snapSaves.Add(1)
			}
		case <-s.flushStop:
			return
		}
	}
}

// followLoop periodically refreshes every followed table, folding
// appended rows into the learned structures incrementally. Polling (not
// file notification) keeps the daemon dependency-free; the interval
// bounds staleness, and a poll that finds nothing new is one stat call
// per followed table.
func (s *Server) followLoop(interval time.Duration) {
	defer close(s.followDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			now := time.Now()
			for _, name := range s.db.Followed() {
				if !s.followDue(name, now) {
					continue
				}
				res, err := s.db.Refresh(name)
				if err != nil {
					s.refreshErrors.Add(1)
					s.followFailed(name, interval, now)
					continue
				}
				s.followOK(name)
				s.refreshes.Add(1)
				if res.Grown {
					s.grown.Add(1)
				}
			}
		case <-s.followStop:
			return
		}
	}
}

// followDue reports whether a followed table should be polled this tick,
// honoring its failure backoff.
func (s *Server) followDue(name string, now time.Time) bool {
	s.followMu.Lock()
	defer s.followMu.Unlock()
	st, ok := s.follow[name]
	if !ok {
		return true
	}
	return !now.Before(st.nextTry)
}

// followFailed records a refresh failure and doubles the table's retry
// delay: interval, 2*interval, 4*interval, ... capped at
// followBackoffCap. A permanently broken file then costs one refresh
// attempt per cap window instead of one per tick.
func (s *Server) followFailed(name string, interval time.Duration, now time.Time) {
	s.followMu.Lock()
	defer s.followMu.Unlock()
	if s.follow == nil {
		s.follow = make(map[string]*followState)
	}
	st := s.follow[name]
	if st == nil {
		st = &followState{}
		s.follow[name] = st
	}
	st.failures++
	delay := interval << (st.failures - 1)
	if st.failures > 20 || delay > followBackoffCap || delay <= 0 {
		delay = followBackoffCap
	}
	st.nextTry = now.Add(delay)
}

// followOK clears a table's backoff after a successful refresh.
func (s *Server) followOK(name string) {
	s.followMu.Lock()
	defer s.followMu.Unlock()
	delete(s.follow, name)
}

// followBackoffs snapshots the tables currently backing off: name →
// consecutive failures. Exposed in /v1/stats so an operator can see that
// follow mode is alive but a specific table keeps failing.
func (s *Server) followBackoffs() map[string]int {
	s.followMu.Lock()
	defer s.followMu.Unlock()
	if len(s.follow) == 0 {
		return nil
	}
	out := make(map[string]int, len(s.follow))
	for name, st := range s.follow {
		out[name] = st.failures
	}
	return out
}

// Close stops the periodic snapshot flusher and follow loop (if any) and
// performs a final flush. It does not close the DB — the caller owns
// that. Idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.followStop != nil {
			close(s.followStop)
			<-s.followDone
		}
		if s.flushStop != nil {
			close(s.flushStop)
			<-s.flushDone
		}
		err = s.db.Snapshot()
	})
	return err
}

// Handler returns the HTTP handler; mount it on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler directly so a Server can be passed to
// httptest and http.Server without the extra Handler() hop.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// queryRequest is the /query and /explain request body.
type queryRequest struct {
	Query string `json:"query"`
	// TimeoutMS bounds this query; 0 uses the server default. Capped by
	// Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// errorEnvelope is every non-200 body: a stable machine-readable code
// plus a human-readable message.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// streamError is the NDJSON in-band trailer for a query that dies
// mid-stream. It keeps the flat {"error": "..."} shape (headers are gone
// by then, so this is a line in a row stream, not an HTTP error body) —
// stream consumers, including the cluster coordinator's merge path,
// parse it positionally.
type streamError struct {
	Error string `json:"error"`
}

// errCode maps an HTTP status to the envelope's stable error code.
func errCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_request"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

// queryResponse is the /query response body.
type queryResponse struct {
	Columns []string       `json:"columns"`
	Rows    [][]any        `json:"rows"`
	Stats   queryStatsJSON `json:"stats"`
}

type queryStatsJSON struct {
	WallMicros int64            `json:"wall_us"`
	Work       metrics.Snapshot `json:"work"`
	Plan       string           `json:"plan"`
}

// statsResponse is the /stats response body.
type statsResponse struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Policy        string                     `json:"policy"`
	MemBytes      int64                      `json:"mem_bytes"`
	Memory        nodb.MemStats              `json:"memory"`
	ResultCache   nodb.ResultCacheStats      `json:"result_cache"`
	Snapshot      nodb.SnapStats             `json:"snapshot"`
	Work          metrics.Snapshot           `json:"work"`
	Server        serverStatsJSON            `json:"server"`
	Tenants       map[string]tenantStatsJSON `json:"tenants,omitempty"`
	// Ingest is the per-table append-ingestion accounting (rows/bytes
	// folded in by incremental tail extensions); Followed lists the
	// tables the follow loop polls.
	Ingest   map[string]nodb.IngestStats `json:"ingest,omitempty"`
	Followed []string                    `json:"followed,omitempty"`
}

// tenantStatsJSON is one tenant's admission-control accounting; the
// governor's per-tenant memory accounting lives under memory.tenants.
type tenantStatsJSON struct {
	Weight   float64 `json:"weight"`
	Slots    int     `json:"slots"`
	InFlight int64   `json:"in_flight"`
	Served   int64   `json:"served"`
	Rejected int64   `json:"rejected"`
}

type serverStatsJSON struct {
	InFlight       int64 `json:"in_flight"`
	MaxInFlight    int   `json:"max_in_flight"`
	Served         int64 `json:"served"`
	Rejected       int64 `json:"rejected"`
	Cancelled      int64 `json:"cancelled"`
	Failed         int64 `json:"failed"`
	SnapshotSaves  int64 `json:"snapshot_saves"`
	SnapshotErrors int64 `json:"snapshot_errors"`
	Refreshes      int64 `json:"refreshes"`
	RefreshErrors  int64 `json:"refresh_errors"`
	Grown          int64 `json:"grown"`
	Panics         int64 `json:"panics"`
	// RefreshBackoff lists followed tables whose refreshes keep failing:
	// table → consecutive failures (absent when everything is healthy).
	RefreshBackoff map[string]int `json:"refresh_backoff,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeErrorCode(w, status, errCode(status), format, args...)
}

// writeErrorCode writes the error envelope with an explicit code, for the
// cases where the status's default code is too coarse (e.g. 401
// unknown_api_key vs plain unauthorized).
func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// readQueryRequest accepts POST {"query": ...} or GET ?q=...&timeout_ms=...
func (s *Server) readQueryRequest(w http.ResponseWriter, r *http.Request) (queryRequest, bool) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
		if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
			v, err := strconv.ParseInt(ms, 10, 64)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, "invalid timeout_ms %q", ms)
				return queryRequest{}, false
			}
			req.TimeoutMS = v
		}
	case http.MethodPost:
		body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"request body exceeds %d bytes", tooBig.Limit)
				return queryRequest{}, false
			}
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return queryRequest{}, false
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return queryRequest{}, false
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return queryRequest{}, false
	}
	return req, true
}

// resolveTenant maps the request's X-API-Key to a tenant name. Without a
// registry everyone is the default tenant; with one, unknown keys are
// rejected with 401 or mapped to the default tenant per the registry's
// policy.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	if s.cfg.Tenants == nil {
		return qos.DefaultTenant, true
	}
	t, err := s.cfg.Tenants.Resolve(r.Header.Get("X-API-Key"))
	if err != nil {
		writeErrorCode(w, http.StatusUnauthorized, "unknown_api_key",
			"unknown API key (set X-API-Key to a configured tenant key)")
		return "", false
	}
	return t.Name, true
}

// admit reserves an execution slot, or rejects the request with 429.
// With tenants configured, the slot comes out of the tenant's own pool
// first, so a saturating tenant exhausts only its share and everyone
// else keeps admitting. The release func must be called when the query
// finishes.
func (s *Server) admit(w http.ResponseWriter, tenant string) (release func(), ok bool) {
	ts := s.tenants[tenant]
	if ts != nil {
		select {
		case ts.sem <- struct{}{}:
		default:
			ts.rejected.Add(1)
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				"tenant %q at capacity (%d queries in flight)", tenant, cap(ts.sem))
			return nil, false
		}
	}
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		if ts != nil {
			ts.inFlight.Add(1)
		}
		return func() {
			s.inFlight.Add(-1)
			<-s.sem
			if ts != nil {
				ts.inFlight.Add(-1)
				<-ts.sem
			}
		}, true
	default:
		if ts != nil {
			<-ts.sem
		}
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"server at capacity (%d queries in flight)", cap(s.sem))
		return nil, false
	}
}

// queryContext derives the execution context: the client's own context
// (cancelled on disconnect) plus the request or server default timeout,
// tagged with the tenant so the engine attributes memory to it.
func (s *Server) queryContext(r *http.Request, req queryRequest, tenant string) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout == 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	ctx := qos.WithTenant(r.Context(), tenant)
	if key := r.Header.Get("X-API-Key"); key != "" {
		// Stash the raw key too, so a coordinator forwards the caller's
		// identity to its shards instead of its own.
		ctx = qos.WithAPIKey(ctx, key)
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

// errStatus maps an execution error to an HTTP status.
func errStatus(err error) int {
	var pathErr *fs.PathError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away (or server shutting down) mid-query.
		return http.StatusServiceUnavailable
	case errors.Is(err, errs.ErrRawIO), errors.Is(err, errs.ErrFileShrunk),
		errors.Is(err, errs.ErrDiskFull), errors.Is(err, errs.ErrSnapshotCorrupt):
		// Classified storage failures: server faults, not caller bugs.
		return http.StatusInternalServerError
	case errors.As(err, &pathErr):
		// The raw file vanished or became unreadable mid-query: a server
		// fault, not a caller bug.
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readQueryRequest(w, r)
	if !ok {
		return
	}
	tenant, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	release, ok := s.admit(w, tenant)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := s.queryContext(r, req, tenant)
	defer cancel()

	res, err := s.db.QueryContext(ctx, req.Query)
	s.served.Add(1)
	if ts := s.tenants[tenant]; ts != nil {
		ts.served.Add(1)
	}
	if err != nil {
		code := errStatus(err)
		if code == http.StatusGatewayTimeout || code == http.StatusServiceUnavailable {
			s.cancelled.Add(1)
		} else {
			s.failed.Add(1)
		}
		writeError(w, code, "%v", err)
		return
	}

	writeJSON(w, http.StatusOK, queryResponse{
		Columns: res.Columns,
		Rows:    encodeRows(res.Rows),
		Stats: queryStatsJSON{
			WallMicros: res.Stats.Wall.Microseconds(),
			Work:       res.Stats.Work,
			Plan:       res.Stats.Plan,
		},
	})
}

// streamFlushEvery bounds how many rows accumulate before the NDJSON
// stream is flushed to the client, and streamFlushInterval bounds how long
// written rows may sit in the response buffer when qualifying rows trickle
// out of a selective scan (a background ticker flushes while the handler
// is blocked waiting for the next row). Together they keep a fast scan
// from being syscall-bound while a slow one delivers rows promptly.
const (
	streamFlushEvery    = 64
	streamFlushInterval = 50 * time.Millisecond
)

// handleQueryStream streams a result as NDJSON through the engine's
// cursor: a header line {"columns": [...]}, one JSON array per row, and a
// trailer line — {"stats": {...}} on success, {"error": "..."} if the
// query dies mid-stream. Rows are flushed incrementally, so the client
// sees data while the raw-file scan is still running; a disconnect
// cancels the request context, which stops the scan between chunks.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readQueryRequest(w, r)
	if !ok {
		return
	}
	tenant, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	release, ok := s.admit(w, tenant)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := s.queryContext(r, req, tenant)
	defer cancel()

	rows, err := s.db.QueryRows(ctx, req.Query)
	s.served.Add(1)
	if ts := s.tenants[tenant]; ts != nil {
		ts.served.Add(1)
	}
	if err != nil {
		// Nothing streamed yet: a plain error response is still possible.
		code := errStatus(err)
		if code == http.StatusGatewayTimeout || code == http.StatusServiceUnavailable {
			s.cancelled.Add(1)
		} else {
			s.failed.Add(1)
		}
		writeError(w, code, "%v", err)
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	// The ResponseWriter is not safe for concurrent use; wmu serializes
	// row writes against the background ticker that flushes pending bytes
	// while the handler is blocked in rows.Next.
	var wmu sync.Mutex
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The writer must not be touched after the handler returns, so stop
	// the ticker and wait for it before unwinding.
	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	defer func() { close(stopFlush); <-flushDone }()
	go func() {
		defer close(flushDone)
		tick := time.NewTicker(streamFlushInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				wmu.Lock()
				flush()
				wmu.Unlock()
			case <-stopFlush:
				return
			}
		}
	}()

	wmu.Lock()
	err = enc.Encode(map[string][]string{"columns": rows.Columns()})
	flush()
	wmu.Unlock()
	if err != nil {
		s.cancelled.Add(1)
		return
	}

	n := 0
	for rows.Next() {
		wmu.Lock()
		err := enc.Encode(encodeRow(rows.Row()))
		if err == nil && n%streamFlushEvery == 0 {
			flush()
		}
		wmu.Unlock()
		n++
		if err != nil {
			var uve *json.UnsupportedValueError
			if errors.As(err, &uve) {
				// A value JSON cannot represent (NaN/Inf float). The
				// client is still connected — the failed Encode wrote
				// nothing — so report the failure in-band as the trailer.
				s.failed.Add(1)
				wmu.Lock()
				_ = enc.Encode(streamError{Error: err.Error()})
				flush()
				wmu.Unlock()
				return
			}
			// Client went away; rows.Close (deferred) stops the scan.
			s.cancelled.Add(1)
			return
		}
	}
	wmu.Lock()
	defer wmu.Unlock()
	if err := rows.Err(); err != nil {
		// Headers are gone; report the failure in-band as the trailer.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.cancelled.Add(1)
		} else {
			s.failed.Add(1)
		}
		_ = enc.Encode(streamError{Error: err.Error()})
		flush()
		return
	}
	st := rows.Stats()
	_ = enc.Encode(map[string]queryStatsJSON{"stats": {
		WallMicros: st.Wall.Microseconds(),
		Work:       st.Work,
		Plan:       st.Plan,
	}})
	flush()
}

// encodeRow converts one typed row to JSON-friendly scalars.
func encodeRow(row []storage.Value) []any {
	out := make([]any, len(row))
	for j, v := range row {
		switch v.Typ {
		case schema.Int64:
			out[j] = v.I
		case schema.Float64:
			out[j] = v.F
		default:
			out[j] = v.S
		}
	}
	return out
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, ok := s.readQueryRequest(w, r)
	if !ok {
		return
	}
	tenant, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.queryContext(r, req, tenant)
	defer cancel()
	p, err := s.db.ExplainContext(ctx, req.Query)
	if err != nil {
		writeError(w, errStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": p})
}

// signatureJSON renders a raw file's signature.
type signatureJSON struct {
	Size      int64  `json:"size"`
	ModTime   int64  `json:"mod_time"`
	PrefixCRC uint32 `json:"prefix_crc"`
	TailCRC   uint32 `json:"tail_crc"`
}

// tableInfoJSON is one table's entry in /v1/tables: identity, the raw
// file's signature, and the adaptation state built for it so far.
type tableInfoJSON struct {
	Name             string           `json:"name"`
	Path             string           `json:"path"`
	Follow           bool             `json:"follow"`
	Rows             int64            `json:"rows"`
	Signature        signatureJSON    `json:"signature"`
	DenseCols        int              `json:"dense_cols"`
	SparseCols       int              `json:"sparse_cols"`
	Regions          int              `json:"regions"`
	PosMapEntries    int              `json:"posmap_entries"`
	SynopsisPortions int              `json:"synopsis_portions"`
	SynopsisBounds   int              `json:"synopsis_bounds"`
	SplitBytes       int64            `json:"split_bytes"`
	MemBytes         int64            `json:"mem_bytes"`
	Ingest           nodb.IngestStats `json:"ingest"`
}

// tableInfo assembles one table's /v1/tables entry.
func (s *Server) tableInfo(name string, followed map[string]bool) (tableInfoJSON, error) {
	st, err := s.db.TableStats(name)
	if err != nil {
		return tableInfoJSON{}, err
	}
	return tableInfoJSON{
		Name:   name,
		Path:   st.Path,
		Follow: followed[name],
		Rows:   st.Rows,
		Signature: signatureJSON{
			Size:      st.Signature.Size,
			ModTime:   st.Signature.ModTime,
			PrefixCRC: st.Signature.Prefix,
			TailCRC:   st.Signature.Tail,
		},
		DenseCols:        len(st.DenseCols),
		SparseCols:       len(st.SparseCols),
		Regions:          st.Regions,
		PosMapEntries:    st.PosMapEntries,
		SynopsisPortions: st.SynopsisPortions,
		SynopsisBounds:   st.SynopsisBounds,
		SplitBytes:       st.SplitBytes,
		MemBytes:         st.MemBytes,
		Ingest:           st.Ingest,
	}, nil
}

// followedSet returns the followed table names as a set.
func (s *Server) followedSet() map[string]bool {
	set := map[string]bool{}
	for _, n := range s.db.Followed() {
		set[n] = true
	}
	return set
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	followed := s.followedSet()
	infos := []tableInfoJSON{}
	for _, name := range s.db.Tables() {
		info, err := s.tableInfo(name, followed)
		if err != nil {
			continue // detached concurrently
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, map[string][]tableInfoJSON{"tables": infos})
}

// tableSpecJSON is the PUT /v1/tables/{name} request body.
type tableSpecJSON struct {
	// Path is the raw file to attach. Required.
	Path string `json:"path"`
	// Format forces "csv" or "ndjson"; empty sniffs.
	Format string `json:"format,omitempty"`
	// Delimiter forces the CSV delimiter (one character); empty sniffs.
	Delimiter string `json:"delimiter,omitempty"`
	// Follow marks the table for the daemon's tail-follow poll loop.
	Follow bool `json:"follow,omitempty"`
}

func (s *Server) handleTableAttach(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var spec tableSpecJSON
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if spec.Path == "" {
		writeError(w, http.StatusBadRequest, "missing path")
		return
	}
	var delim byte
	if spec.Delimiter != "" {
		if len(spec.Delimiter) != 1 {
			writeError(w, http.StatusBadRequest, "delimiter must be a single character, got %q", spec.Delimiter)
			return
		}
		delim = spec.Delimiter[0]
	}
	err := s.db.Attach(name, nodb.TableSpec{
		Path:      spec.Path,
		Format:    spec.Format,
		Delimiter: delim,
		Follow:    spec.Follow,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := s.tableInfo(name, s.followedSet())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTableDetach(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.db.Detach(name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"detached": name})
}

func (s *Server) handleTableRefresh(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, err := s.db.Schema(name); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	res, err := s.db.Refresh(name)
	if err != nil {
		s.refreshErrors.Add(1)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.refreshes.Add(1)
	if res.Grown {
		s.grown.Add(1)
	}
	writeJSON(w, http.StatusOK, res)
}

// schemaJSON renders a detected schema.
type schemaJSON struct {
	Delimiter string          `json:"delimiter"`
	HasHeader bool            `json:"has_header"`
	Columns   []schemaColJSON `json:"columns"`
}

type schemaColJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing table parameter")
		return
	}
	sch, err := s.db.Schema(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	out := schemaJSON{
		Delimiter: string(sch.Delimiter),
		HasHeader: sch.HasHeader,
		Columns:   make([]schemaColJSON, 0, len(sch.Columns)),
	}
	for _, c := range sch.Columns {
		out.Columns = append(out.Columns, schemaColJSON{Name: c.Name, Type: c.Type.String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var tenants map[string]tenantStatsJSON
	if len(s.tenants) > 0 {
		tenants = make(map[string]tenantStatsJSON, len(s.tenants))
		for name, ts := range s.tenants {
			tenants[name] = tenantStatsJSON{
				Weight:   ts.weight,
				Slots:    cap(ts.sem),
				InFlight: ts.inFlight.Load(),
				Served:   ts.served.Load(),
				Rejected: ts.rejected.Load(),
			}
		}
	}
	ingest := map[string]nodb.IngestStats{}
	for _, name := range s.db.Tables() {
		if st, err := s.db.TableStats(name); err == nil {
			ingest[name] = st.Ingest
		}
	}
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Policy:        s.db.Policy().String(),
		MemBytes:      s.db.MemSize(),
		Memory:        s.db.MemStats(),
		ResultCache:   s.db.ResultCacheStats(),
		Snapshot:      s.db.SnapStats(),
		Work:          s.db.Work(),
		Tenants:       tenants,
		Ingest:        ingest,
		Followed:      s.db.Followed(),
		Server: serverStatsJSON{
			InFlight:       s.inFlight.Load(),
			MaxInFlight:    cap(s.sem),
			Served:         s.served.Load(),
			Rejected:       s.rejected.Load(),
			Cancelled:      s.cancelled.Load(),
			Failed:         s.failed.Load(),
			SnapshotSaves:  s.snapSaves.Load(),
			SnapshotErrors: s.snapErrors.Load(),
			Refreshes:      s.refreshes.Load(),
			RefreshErrors:  s.refreshErrors.Load(),
			Grown:          s.grown.Load(),
			Panics:         s.panics.Load(),
			RefreshBackoff: s.followBackoffs(),
		},
	})
}

// handleHealthz is the liveness probe. It answers 200 as long as the
// process serves requests; when the snapshot tier has degraded to
// memory-only after an out-of-space write, the body says so — the node
// still serves correct results, it just cannot persist adaptive state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.db.SnapStats().Degraded {
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"reason": "snapshot tier disk full; running memory-only",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// MarkReady declares the server ready to serve queries: every configured
// table is linked. Distinct from liveness — /healthz answers ok from the
// moment the process is up, /readyz only after MarkReady.
func (s *Server) MarkReady() { s.ready.Store(true) }

// handleReadyz is the readiness probe coordinators use for shard
// admission: 503 while starting (tables still linking), 200 with the
// linked table set once MarkReady has been called.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
		return
	}
	tables := s.db.Tables()
	if tables == nil {
		tables = []string{}
	}
	writeJSON(w, http.StatusOK, struct {
		Status string   `json:"status"`
		Tables []string `json:"tables"`
	}{Status: "ok", Tables: tables})
}

// handleClusterSynopsis exports every linked table's scan synopsis (the
// per-portion zone maps), schema, and raw-file signature, for
// coordinator-side shard pruning. Tables whose synopsis is incomplete
// export with no portions — a coordinator can then bind names but not
// prune, which is always safe.
func (s *Server) handleClusterSynopsis(w http.ResponseWriter, r *http.Request) {
	out := cluster.SynopsisResponse{Tables: map[string]cluster.TableSynopsis{}}
	for _, name := range s.db.Tables() {
		exp, err := s.db.TableSynopsis(name)
		if err != nil {
			continue
		}
		sch, err := s.db.Schema(name)
		if err != nil {
			continue
		}
		out.Tables[name] = cluster.EncodeTableSynopsis(exp, sch)
	}
	writeJSON(w, http.StatusOK, out)
}

// encodeRows converts typed values to JSON-friendly scalars.
func encodeRows(rows [][]storage.Value) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		out[i] = encodeRow(row)
	}
	return out
}
