package csvgen

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func genString(t *testing.T, s Spec) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.String()
}

func TestWriteShape(t *testing.T) {
	out := genString(t, Spec{Rows: 10, Cols: 4, Seed: 1})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10", len(lines))
	}
	for i, l := range lines {
		if got := strings.Count(l, ","); got != 3 {
			t.Fatalf("line %d: %d commas, want 3: %q", i, got, l)
		}
	}
}

func TestUniqueIntsArePermutation(t *testing.T) {
	const rows = 500
	out := genString(t, Spec{Rows: rows, Cols: 2, Seed: 7})
	seen := make([]bool, rows)
	for _, l := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		f := strings.Split(l, ",")[0]
		v, err := strconv.Atoi(f)
		if err != nil {
			t.Fatalf("non-integer field %q: %v", f, err)
		}
		if v < 0 || v >= rows {
			t.Fatalf("value %d out of range [0,%d)", v, rows)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestDeterminism(t *testing.T) {
	a := genString(t, Spec{Rows: 100, Cols: 3, Seed: 42})
	b := genString(t, Spec{Rows: 100, Cols: 3, Seed: 42})
	if a != b {
		t.Error("same seed should generate identical data")
	}
	c := genString(t, Spec{Rows: 100, Cols: 3, Seed: 43})
	if a == c {
		t.Error("different seeds should generate different data")
	}
}

func TestColumnsDiffer(t *testing.T) {
	out := genString(t, Spec{Rows: 50, Cols: 2, Seed: 5})
	var c0, c1 []string
	for _, l := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		f := strings.Split(l, ",")
		c0 = append(c0, f[0])
		c1 = append(c1, f[1])
	}
	same := true
	for i := range c0 {
		if c0[i] != c1[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two UniqueInts columns should hold different permutations")
	}
}

func TestHeader(t *testing.T) {
	out := genString(t, Spec{Rows: 2, Cols: 3, Seed: 1, Header: true})
	first := strings.SplitN(out, "\n", 2)[0]
	if first != "a1,a2,a3" {
		t.Errorf("header = %q, want a1,a2,a3", first)
	}
}

func TestDelimiter(t *testing.T) {
	out := genString(t, Spec{Rows: 3, Cols: 2, Seed: 1, Delimiter: '|'})
	if !strings.Contains(out, "|") || strings.Contains(out, ",") {
		t.Errorf("custom delimiter not honored: %q", out)
	}
}

func TestMixedColSpecs(t *testing.T) {
	out := genString(t, Spec{
		Rows: 20, Cols: 4, Seed: 3,
		ColSpecs: []ColSpec{
			{Kind: SequentialInts},
			{Kind: Floats, Max: 100},
			{Kind: Strings},
			// 4th defaults to UniqueInts
		},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for i, l := range lines {
		f := strings.Split(l, ",")
		if f[0] != strconv.Itoa(i) {
			t.Errorf("row %d: sequential col = %q", i, f[0])
		}
		if _, err := strconv.ParseFloat(f[1], 64); err != nil {
			t.Errorf("row %d: float col = %q", i, f[1])
		}
		if !strings.Contains(f[1], ".") {
			t.Errorf("row %d: float col should have a decimal point: %q", i, f[1])
		}
		if _, err := strconv.Atoi(f[2]); err == nil {
			t.Errorf("row %d: string col parsed as int: %q", i, f[2])
		}
	}
}

func TestZipfSkew(t *testing.T) {
	out := genString(t, Spec{Rows: 2000, Cols: 1, Seed: 9, ColSpecs: []ColSpec{{Kind: ZipfInts, Max: 1000}}})
	counts := map[string]int{}
	for _, l := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		counts[l]++
	}
	if counts["0"] < 200 { // zipf s=1.2 concentrates mass at 0
		t.Errorf("zipf should be skewed toward 0, got count(0)=%d", counts["0"])
	}
}

func TestUniformIntsRange(t *testing.T) {
	out := genString(t, Spec{Rows: 300, Cols: 1, Seed: 2, ColSpecs: []ColSpec{{Kind: UniformInts, Max: 10}}})
	for _, l := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		v, err := strconv.Atoi(l)
		if err != nil || v < 0 || v >= 10 {
			t.Fatalf("uniform value out of range: %q", l)
		}
	}
}

func TestInvalidSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Spec{Rows: 10, Cols: 0}); err == nil {
		t.Error("zero columns should error")
	}
	if err := Write(&buf, Spec{Rows: -1, Cols: 1}); err == nil {
		t.Error("negative rows should error")
	}
}

func TestWriteAndEnsureFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "t.csv")
	spec := Spec{Rows: 10, Cols: 2, Seed: 1}
	if err := WriteFile(path, spec); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// EnsureFile must not rewrite an existing file.
	if err := EnsureFile(path, Spec{Rows: 99999, Cols: 2, Seed: 1}); err != nil {
		t.Fatalf("EnsureFile: %v", err)
	}
	st2, _ := os.Stat(path)
	if st1.Size() != st2.Size() {
		t.Error("EnsureFile rewrote an existing file")
	}
}

func BenchmarkWrite1Mx4(b *testing.B) {
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, Spec{Rows: 1_000_000, Cols: 4, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func TestShardsConcatenateToUnsharded(t *testing.T) {
	for _, format := range []Format{FormatCSV, FormatNDJSON} {
		full := genString(t, Spec{Rows: 103, Cols: 3, Seed: 9, Format: format,
			ColSpecs: []ColSpec{{Kind: UniqueInts}, {Kind: Floats}, {Kind: Strings}}})
		var cat strings.Builder
		total := 0
		for i := 1; i <= 3; i++ {
			part := genString(t, Spec{Rows: 103, Cols: 3, Seed: 9, Format: format,
				ColSpecs:   []ColSpec{{Kind: UniqueInts}, {Kind: Floats}, {Kind: Strings}},
				ShardIndex: i, ShardCount: 3})
			total += strings.Count(part, "\n")
			cat.WriteString(part)
		}
		if total != 103 {
			t.Fatalf("format %d: shards hold %d rows, want 103", format, total)
		}
		if cat.String() != full {
			t.Fatalf("format %d: concatenated shards differ from unsharded output", format)
		}
	}
}

func TestShardHeaderOnEveryShard(t *testing.T) {
	for i := 1; i <= 2; i++ {
		out := genString(t, Spec{Rows: 10, Cols: 2, Seed: 1, Header: true, ShardIndex: i, ShardCount: 2})
		if !strings.HasPrefix(out, "a1,a2\n") {
			t.Fatalf("shard %d missing header: %q", i, out[:20])
		}
	}
}

func TestShardRangeValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Spec{Rows: 10, Cols: 1, ShardIndex: 4, ShardCount: 3}); err == nil {
		t.Fatal("want error for shard index out of range")
	}
	if err := Write(&buf, Spec{Rows: 10, Cols: 1, ShardIndex: 0, ShardCount: 3}); err == nil {
		t.Fatal("want error for shard index 0")
	}
}
