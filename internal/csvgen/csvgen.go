// Package csvgen generates the synthetic flat files used throughout the
// reproduction.
//
// The paper's experiments use tables whose columns hold "unique integers
// randomly distributed in the columns" (§2), in CSV format. This package
// produces exactly that — a deterministic permutation of 0..n-1 per column —
// plus a few richer generators (skewed integers, floats, strings, mixed
// schemas) used by the examples and by schema-detection tests.
package csvgen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
)

// Format selects the output encoding.
type Format int

// Output encodings.
const (
	// FormatCSV emits delimiter-separated rows (the default).
	FormatCSV Format = iota
	// FormatNDJSON emits one JSON object per line with fields a1, a2, ...
	// Field names are self-describing, so Header is ignored.
	FormatNDJSON
)

// Spec describes one synthetic table.
type Spec struct {
	// Rows is the number of tuples.
	Rows int
	// Cols is the number of attributes.
	Cols int
	// Seed makes generation deterministic; different columns derive
	// distinct sub-seeds from it.
	Seed int64
	// Header, when true, emits a first line "a1,a2,...".
	Header bool
	// Delimiter defaults to ','.
	Delimiter byte
	// ColSpecs optionally overrides the per-column value generator; when
	// shorter than Cols the remaining columns use UniqueInts.
	ColSpecs []ColSpec
	// Format selects the output encoding (default FormatCSV).
	Format Format
	// ShardIndex/ShardCount emit only shard ShardIndex (1-based) of
	// ShardCount disjoint contiguous row ranges of the full table: rows
	// [(i-1)*Rows/n, i*Rows/n) of the same deterministic sequence the
	// unsharded spec produces. Concatenating the n shard files (headers
	// stripped) is byte-identical to the unsharded file, which is what
	// makes cluster results comparable to a single node. ShardCount 0 or
	// 1 emits the whole table.
	ShardIndex int
	ShardCount int
}

// shardRange returns the half-open row range [lo, hi) this spec emits.
func (s Spec) shardRange() (lo, hi int, err error) {
	if s.ShardCount <= 1 {
		return 0, s.Rows, nil
	}
	if s.ShardIndex < 1 || s.ShardIndex > s.ShardCount {
		return 0, 0, fmt.Errorf("csvgen: shard index %d out of range 1..%d", s.ShardIndex, s.ShardCount)
	}
	lo = (s.ShardIndex - 1) * s.Rows / s.ShardCount
	hi = s.ShardIndex * s.Rows / s.ShardCount
	return lo, hi, nil
}

// Kind selects a per-column value distribution.
type Kind int

// Column value distributions.
const (
	// UniqueInts is a random permutation of 0..Rows-1 (the paper's
	// distribution: selectivity of a range predicate equals its width
	// divided by Rows).
	UniqueInts Kind = iota
	// UniformInts draws uniform integers in [0, Max).
	UniformInts
	// ZipfInts draws skewed integers in [0, Max) (exponent S, v=1).
	ZipfInts
	// Floats draws uniform float64 in [0, Max).
	Floats
	// Strings draws words of 3..12 lowercase letters.
	Strings
	// SequentialInts emits 0,1,2,... (useful for 1:1 join keys).
	SequentialInts
)

// ColSpec configures one column's generator.
type ColSpec struct {
	Kind Kind
	Max  int64   // for UniformInts, ZipfInts, Floats
	S    float64 // zipf exponent, default 1.2
}

func (s Spec) delim() byte {
	if s.Delimiter == 0 {
		return ','
	}
	return s.Delimiter
}

func (s Spec) colSpec(i int) ColSpec {
	if i < len(s.ColSpecs) {
		return s.ColSpecs[i]
	}
	return ColSpec{Kind: UniqueInts}
}

// columnGen produces the value of one column for successive rows.
type columnGen interface {
	next(buf []byte) []byte // append the next value's text to buf
}

type permGen struct{ perm []int64 }

func (g *permGen) next(buf []byte) []byte {
	v := g.perm[0]
	g.perm = g.perm[1:]
	return strconv.AppendInt(buf, v, 10)
}

type uniformGen struct {
	rng *rand.Rand
	max int64
}

func (g *uniformGen) next(buf []byte) []byte {
	return strconv.AppendInt(buf, g.rng.Int63n(g.max), 10)
}

type zipfGen struct{ z *rand.Zipf }

func (g *zipfGen) next(buf []byte) []byte {
	return strconv.AppendUint(buf, g.z.Uint64(), 10)
}

type floatGen struct {
	rng *rand.Rand
	max float64
}

func (g *floatGen) next(buf []byte) []byte {
	return strconv.AppendFloat(buf, g.rng.Float64()*g.max, 'f', 4, 64)
}

type stringGen struct{ rng *rand.Rand }

func (g *stringGen) next(buf []byte) []byte {
	n := 3 + g.rng.Intn(10)
	for i := 0; i < n; i++ {
		buf = append(buf, byte('a'+g.rng.Intn(26)))
	}
	return buf
}

type seqGen struct{ next64 int64 }

func (g *seqGen) next(buf []byte) []byte {
	v := g.next64
	g.next64++
	return strconv.AppendInt(buf, v, 10)
}

func (s Spec) newGen(col int) columnGen {
	cs := s.colSpec(col)
	rng := rand.New(rand.NewSource(s.Seed*1315423911 + int64(col)*2654435761 + 12345))
	switch cs.Kind {
	case UniqueInts:
		perm := make([]int64, s.Rows)
		for i := range perm {
			perm[i] = int64(i)
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		return &permGen{perm: perm}
	case UniformInts:
		m := cs.Max
		if m <= 0 {
			m = int64(s.Rows)
		}
		return &uniformGen{rng: rng, max: m}
	case ZipfInts:
		sexp := cs.S
		if sexp <= 1 {
			sexp = 1.2
		}
		m := cs.Max
		if m <= 0 {
			m = int64(s.Rows)
		}
		return &zipfGen{z: rand.NewZipf(rng, sexp, 1, uint64(m-1))}
	case Floats:
		m := float64(cs.Max)
		if m <= 0 {
			m = float64(s.Rows)
		}
		return &floatGen{rng: rng, max: m}
	case Strings:
		return &stringGen{rng: rng}
	case SequentialInts:
		return &seqGen{}
	default:
		panic(fmt.Sprintf("csvgen: unknown column kind %d", cs.Kind))
	}
}

// Write generates the table described by s onto w.
func Write(w io.Writer, s Spec) error {
	if s.Rows < 0 || s.Cols <= 0 {
		return fmt.Errorf("csvgen: invalid spec rows=%d cols=%d", s.Rows, s.Cols)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if s.Format == FormatNDJSON {
		return writeNDJSON(bw, s)
	}
	d := s.delim()
	if s.Header {
		for c := 0; c < s.Cols; c++ {
			if c > 0 {
				if err := bw.WriteByte(d); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "a%d", c+1); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	lo, hi, err := s.shardRange()
	if err != nil {
		return err
	}
	gens := make([]columnGen, s.Cols)
	for c := range gens {
		gens[c] = s.newGen(c)
	}
	buf := make([]byte, 0, 256)
	for r := 0; r < s.Rows; r++ {
		// Rows outside the shard's range are still generated — the
		// column generators are sequential, so skipping them would shift
		// every later value — just not written.
		buf = buf[:0]
		for c := 0; c < s.Cols; c++ {
			if c > 0 {
				buf = append(buf, d)
			}
			buf = gens[c].next(buf)
		}
		if r < lo || r >= hi {
			continue
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeNDJSON emits one {"a1":v,...} object per line. Generated string
// values are lowercase letters, so quoting needs no escaping; numeric
// kinds emit their text unquoted (valid JSON numbers).
func writeNDJSON(bw *bufio.Writer, s Spec) error {
	lo, hi, err := s.shardRange()
	if err != nil {
		return err
	}
	gens := make([]columnGen, s.Cols)
	quoted := make([]bool, s.Cols)
	for c := range gens {
		gens[c] = s.newGen(c)
		quoted[c] = s.colSpec(c).Kind == Strings
	}
	buf := make([]byte, 0, 256)
	for r := 0; r < s.Rows; r++ {
		buf = append(buf[:0], '{')
		for c := 0; c < s.Cols; c++ {
			if c > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, '"', 'a')
			buf = strconv.AppendInt(buf, int64(c+1), 10)
			buf = append(buf, '"', ':')
			if quoted[c] {
				buf = append(buf, '"')
				buf = gens[c].next(buf)
				buf = append(buf, '"')
			} else {
				buf = gens[c].next(buf)
			}
		}
		if r < lo || r >= hi {
			continue
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile generates the table into path, creating parent directories.
func WriteFile(path string, s Spec) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EnsureFile generates the table into path only if it does not already
// exist with a non-zero size. The benchmark harness uses it to share data
// files between runs.
func EnsureFile(path string, s Spec) error {
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return nil
	}
	return WriteFile(path, s)
}
