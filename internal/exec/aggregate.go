package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// AggSpec is one bound aggregate: Kind over column Col (ignored for
// count(*), marked by Star).
type AggSpec struct {
	Kind sql.AggKind
	Col  ColKey
	Star bool
}

// aggState accumulates one aggregate.
type aggState struct {
	spec  AggSpec
	count int64
	sumI  int64
	sumF  float64
	min   storage.Value
	max   storage.Value
	isInt bool
	seen  bool
}

func newAggState(spec AggSpec, typ schema.Type) *aggState {
	return &aggState{spec: spec, isInt: typ == schema.Int64}
}

func (a *aggState) add(v storage.Value) {
	a.count++
	switch a.spec.Kind {
	case sql.AggSum, sql.AggAvg:
		if a.isInt {
			a.sumI += v.I
		} else {
			a.sumF += v.AsFloat()
		}
	case sql.AggMin:
		if !a.seen || v.Compare(a.min) < 0 {
			a.min = v
		}
	case sql.AggMax:
		if !a.seen || v.Compare(a.max) > 0 {
			a.max = v
		}
	}
	a.seen = true
}

func (a *aggState) result() storage.Value {
	switch a.spec.Kind {
	case sql.AggCount:
		return storage.IntValue(a.count)
	case sql.AggSum:
		if !a.seen {
			return storage.IntValue(0)
		}
		if a.isInt {
			return storage.IntValue(a.sumI)
		}
		return storage.FloatValue(a.sumF)
	case sql.AggAvg:
		if a.count == 0 {
			return storage.FloatValue(math.NaN())
		}
		if a.isInt {
			return storage.FloatValue(float64(a.sumI) / float64(a.count))
		}
		return storage.FloatValue(a.sumF / float64(a.count))
	case sql.AggMin:
		return a.min
	case sql.AggMax:
		return a.max
	default:
		return storage.Value{}
	}
}

// Aggregate computes the aggregates over every row of the view, returning
// one result row.
func Aggregate(v *View, specs []AggSpec) ([]storage.Value, error) {
	states := make([]*aggState, len(specs))
	for i, s := range specs {
		typ := schema.Int64
		if !s.Star {
			c := v.Col(s.Col)
			if c == nil {
				return nil, fmt.Errorf("exec: aggregate column %v not in view", s.Col)
			}
			typ = c.Typ
		}
		states[i] = newAggState(s, typ)
	}
	n := v.Len()
	for i := 0; i < n; i++ {
		for _, st := range states {
			if st.spec.Star {
				st.count++
				continue
			}
			st.add(v.Value(st.spec.Col, i))
		}
	}
	out := make([]storage.Value, len(states))
	for i, st := range states {
		out[i] = st.result()
	}
	return out, nil
}

// GroupBy groups the view by the key columns and computes the aggregates
// per group. The output rows hold the key values first (in keys order),
// then the aggregate results; groups come out in first-appearance order.
func GroupBy(v *View, keys []ColKey, specs []AggSpec) ([][]storage.Value, error) {
	for _, k := range keys {
		if v.Col(k) == nil {
			return nil, fmt.Errorf("exec: group key %v not in view", k)
		}
	}
	type group struct {
		keyVals []storage.Value
		states  []*aggState
	}
	groups := map[string]*group{}
	var order []string

	mkStates := func() ([]*aggState, error) {
		states := make([]*aggState, len(specs))
		for i, s := range specs {
			typ := schema.Int64
			if !s.Star {
				c := v.Col(s.Col)
				if c == nil {
					return nil, fmt.Errorf("exec: aggregate column %v not in view", s.Col)
				}
				typ = c.Typ
			}
			states[i] = newAggState(s, typ)
		}
		return states, nil
	}

	n := v.Len()
	var kb strings.Builder
	for i := 0; i < n; i++ {
		kb.Reset()
		keyVals := make([]storage.Value, len(keys))
		for j, k := range keys {
			keyVals[j] = v.Value(k, i)
			kb.WriteString(keyVals[j].String())
			kb.WriteByte('\x00')
		}
		gk := kb.String()
		g := groups[gk]
		if g == nil {
			states, err := mkStates()
			if err != nil {
				return nil, err
			}
			g = &group{keyVals: keyVals, states: states}
			groups[gk] = g
			order = append(order, gk)
		}
		for _, st := range g.states {
			if st.spec.Star {
				st.count++
				continue
			}
			st.add(v.Value(st.spec.Col, i))
		}
	}

	out := make([][]storage.Value, 0, len(order))
	for _, gk := range order {
		g := groups[gk]
		row := make([]storage.Value, 0, len(keys)+len(specs))
		row = append(row, g.keyVals...)
		for _, st := range g.states {
			row = append(row, st.result())
		}
		out = append(out, row)
	}
	return out, nil
}

// SortKey orders result rows by output column index.
type SortKey struct {
	Index int
	Desc  bool
}

// SortRows sorts result rows in place by the given keys.
func SortRows(rows [][]storage.Value, keys []SortKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			c := rows[i][k.Index].Compare(rows[j][k.Index])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// LimitRows truncates rows to at most n (n < 0 means no limit).
func LimitRows(rows [][]storage.Value, n int) [][]storage.Value {
	if n < 0 || n >= len(rows) {
		return rows
	}
	return rows[:n]
}

// ProjectRows converts a view into result rows for plain (non-aggregate)
// selects, one output column per key.
func ProjectRows(v *View, cols []ColKey) [][]storage.Value {
	n := v.Len()
	out := make([][]storage.Value, n)
	for i := 0; i < n; i++ {
		row := make([]storage.Value, len(cols))
		for j, k := range cols {
			row[j] = v.Value(k, i)
		}
		out[i] = row
	}
	return out
}
