package exec

import (
	"fmt"

	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// OutSlot maps one select-list position: an aggregate (Idx into the
// plan's aggregate list) or a projected column (Idx into the plan's
// projection list). The engine derives it from the planner's slots so
// exec stays free of a plan dependency.
type OutSlot struct {
	Agg bool
	Idx int
}

// DrainRows pulls op to exhaustion and flattens its output-keyed batches
// into result rows of the given arity. Each batch contributes one flat
// backing array that the rows subslice, so the amortized cost stays well
// under one allocation per row.
func DrainRows(op Operator, arity int) ([][]storage.Value, error) {
	var out [][]storage.Value
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		cols := make([]*storage.DenseColumn, arity)
		for j := 0; j < arity; j++ {
			if cols[j] = b.Cols[OutKey(j)]; cols[j] == nil {
				return nil, fmt.Errorf("exec: output column %d not in batch", j)
			}
		}
		rows := b.Rows()
		flat := make([]storage.Value, rows*arity)
		fill := func(r, i int) {
			row := flat[r*arity : (r+1)*arity : (r+1)*arity]
			for j, c := range cols {
				row[j] = c.Value(i)
			}
			out = append(out, row)
		}
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				fill(i, i)
			}
		} else {
			for r, i := range b.Sel {
				fill(r, int(i))
			}
		}
	}
}

// rowEmitter re-batches materialized result rows, output-keyed.
type rowEmitter struct {
	rows [][]storage.Value
	size int
	pos  int
}

func newRowEmitter(rows [][]storage.Value, size int) *rowEmitter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &rowEmitter{rows: rows, size: size}
}

func (e *rowEmitter) next() *Batch {
	if e.pos >= len(e.rows) {
		return nil
	}
	lo := e.pos
	hi := lo + e.size
	if hi > len(e.rows) {
		hi = len(e.rows)
	}
	e.pos = hi
	arity := len(e.rows[lo])
	b := &Batch{N: hi - lo, Cols: newColMap(arity)}
	for j := 0; j < arity; j++ {
		c := storage.NewDense(e.rows[lo][j].Typ, hi-lo)
		for i := lo; i < hi; i++ {
			c.Append(e.rows[i][j])
		}
		b.Cols[OutKey(j)] = c
	}
	return b
}

// AggOp folds its whole input into one output row of aggregate results.
// out maps select-list position to aggregate index. Accumulation runs
// typed loops over each batch's vectors; the scalar aggState supplies the
// exact result semantics of the row-at-a-time path (empty sum = int 0,
// avg of nothing = NaN, int sums stay int).
type AggOp struct {
	opBase
	child  Operator
	states []*aggState
	out    []int
	done   bool
}

func NewAggOp(child Operator, specs []AggSpec, out []int) *AggOp {
	states := make([]*aggState, len(specs))
	for i, s := range specs {
		states[i] = &aggState{spec: s}
	}
	return &AggOp{child: child, states: states, out: out}
}

func (a *AggOp) Name() string         { return fmt.Sprintf("Aggregate(%d)", len(a.states)) }
func (a *AggOp) Children() []Operator { return []Operator{a.child} }
func (a *AggOp) Close()               { a.child.Close() }

func (a *AggOp) Next() (*Batch, error) {
	if a.done {
		return nil, nil
	}
	for {
		b, err := a.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := a.accumulate(b); err != nil {
			return nil, err
		}
	}
	a.done = true
	out := &Batch{N: 1, Cols: newColMap(len(a.out))}
	for i, si := range a.out {
		v := a.states[si].result()
		c := storage.NewDense(v.Typ, 1)
		c.Append(v)
		out.Cols[OutKey(i)] = c
	}
	return a.observe(out), nil
}

func (a *AggOp) accumulate(b *Batch) error {
	rows := int64(b.Rows())
	for _, st := range a.states {
		if st.spec.Star {
			st.count += rows
			continue
		}
		col := b.Cols[st.spec.Col]
		if col == nil {
			return fmt.Errorf("exec: aggregate column %v not in batch", st.spec.Col)
		}
		st.isInt = col.Typ == schema.Int64
		accumulateColumn(st, col, b.N, b.Sel, rows)
	}
	return nil
}

// accumulateColumn is the vectorized equivalent of calling aggState.add
// for every live row, in row order (float sums accumulate in the same
// order as the row-at-a-time path, so results are bit-identical).
func accumulateColumn(st *aggState, col *storage.DenseColumn, n int, sel []int32, rows int64) {
	st.count += rows
	switch st.spec.Kind {
	case sql.AggSum, sql.AggAvg:
		switch col.Typ {
		case schema.Int64:
			v := col.Ints
			if sel == nil {
				for _, x := range v[:n] {
					st.sumI += x
				}
			} else {
				for _, i := range sel {
					st.sumI += v[i]
				}
			}
		case schema.Float64:
			v := col.Floats
			if sel == nil {
				for _, x := range v[:n] {
					st.sumF += x
				}
			} else {
				for _, i := range sel {
					st.sumF += v[i]
				}
			}
		default:
			// Strings widen to 0 under AsFloat; the sum is unchanged.
		}
	case sql.AggMin:
		if cand, ok := columnExtreme(col, n, sel, true); ok {
			if !st.seen || cand.Compare(st.min) < 0 {
				st.min = cand
			}
		}
	case sql.AggMax:
		if cand, ok := columnExtreme(col, n, sel, false); ok {
			if !st.seen || cand.Compare(st.max) > 0 {
				st.max = cand
			}
		}
	}
	if rows > 0 {
		st.seen = true
	}
}

// columnExtreme returns the batch-local min (or max) of the live rows,
// keeping the first occurrence on ties like sequential aggState.add.
func columnExtreme(col *storage.DenseColumn, n int, sel []int32, wantMin bool) (storage.Value, bool) {
	switch col.Typ {
	case schema.Int64:
		v := col.Ints
		var best int64
		first := true
		scan := func(x int64) {
			if first || (wantMin && x < best) || (!wantMin && x > best) {
				best, first = x, false
			}
		}
		if sel == nil {
			for _, x := range v[:n] {
				scan(x)
			}
		} else {
			for _, i := range sel {
				scan(v[i])
			}
		}
		if first {
			return storage.Value{}, false
		}
		return storage.IntValue(best), true
	case schema.Float64:
		v := col.Floats
		var best float64
		first := true
		scan := func(x float64) {
			if first || (wantMin && x < best) || (!wantMin && x > best) {
				best, first = x, false
			}
		}
		if sel == nil {
			for _, x := range v[:n] {
				scan(x)
			}
		} else {
			for _, i := range sel {
				scan(v[i])
			}
		}
		if first {
			return storage.Value{}, false
		}
		return storage.FloatValue(best), true
	default:
		v := col.Strs
		var best string
		first := true
		scan := func(x string) {
			if first || (wantMin && x < best) || (!wantMin && x > best) {
				best, first = x, false
			}
		}
		if sel == nil {
			for _, x := range v[:n] {
				scan(x)
			}
		} else {
			for _, i := range sel {
				scan(v[i])
			}
		}
		if first {
			return storage.Value{}, false
		}
		return storage.StringValue(best), true
	}
}

// GroupByOp materializes its input, groups by the key columns and emits
// one output row per group in first-appearance order, shaped by slots
// (proj[Idx] must be one of the group keys, as the planner guarantees).
type GroupByOp struct {
	opBase
	child Operator
	keys  []ColKey
	specs []AggSpec
	slots []OutSlot
	proj  []ColKey
	size  int
	emit  *rowEmitter
	done  bool
}

func NewGroupByOp(child Operator, keys []ColKey, specs []AggSpec, slots []OutSlot, proj []ColKey, batchSize int) *GroupByOp {
	return &GroupByOp{child: child, keys: keys, specs: specs, slots: slots, proj: proj, size: batchSize}
}

func (g *GroupByOp) Name() string {
	return fmt.Sprintf("GroupBy(%v aggs=%d)", g.keys, len(g.specs))
}
func (g *GroupByOp) Children() []Operator { return []Operator{g.child} }
func (g *GroupByOp) Close()               { g.child.Close() }

func (g *GroupByOp) Next() (*Batch, error) {
	if g.done {
		return nil, nil
	}
	if g.emit == nil {
		v, err := DrainView(g.child)
		if err != nil {
			return nil, err
		}
		if v.Len() == 0 {
			g.done = true
			return nil, nil
		}
		grouped, err := GroupBy(v, g.keys, g.specs)
		if err != nil {
			return nil, err
		}
		pos, err := g.slotPositions()
		if err != nil {
			return nil, err
		}
		rows := make([][]storage.Value, len(grouped))
		for i, gr := range grouped {
			row := make([]storage.Value, len(pos))
			for j, p := range pos {
				row[j] = gr[p]
			}
			rows[i] = row
		}
		g.emit = newRowEmitter(rows, g.size)
	}
	b := g.emit.next()
	if b == nil {
		g.done = true
		return nil, nil
	}
	return g.observe(b), nil
}

// slotPositions maps each output slot to its index in GroupBy's
// keys-then-aggregates row layout.
func (g *GroupByOp) slotPositions() ([]int, error) {
	pos := make([]int, len(g.slots))
	for i, s := range g.slots {
		if s.Agg {
			pos[i] = len(g.keys) + s.Idx
			continue
		}
		k := g.proj[s.Idx]
		found := -1
		for j, gk := range g.keys {
			if gk == k {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("exec: projected column %v is not a group key", k)
		}
		pos[i] = found
	}
	return pos, nil
}

// SortOp materializes its (output-keyed) input, sorts and re-emits.
type SortOp struct {
	opBase
	child Operator
	keys  []SortKey
	arity int
	size  int
	emit  *rowEmitter
}

func NewSortOp(child Operator, keys []SortKey, arity, batchSize int) *SortOp {
	return &SortOp{child: child, keys: keys, arity: arity, size: batchSize}
}

func (s *SortOp) Name() string         { return fmt.Sprintf("Sort(%v)", s.keys) }
func (s *SortOp) Children() []Operator { return []Operator{s.child} }
func (s *SortOp) Close()               { s.child.Close() }

func (s *SortOp) Next() (*Batch, error) {
	if s.emit == nil {
		rows, err := DrainRows(s.child, s.arity)
		if err != nil {
			return nil, err
		}
		SortRows(rows, s.keys)
		s.emit = newRowEmitter(rows, s.size)
	}
	b := s.emit.next()
	if b == nil {
		return nil, nil
	}
	return s.observe(b), nil
}
