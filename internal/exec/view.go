// Package exec implements the physical query operators: selections over
// dense or cracked columns, filtered views, aggregation, grouping, hash
// and merge joins, sorting and limits.
//
// The universal intermediate is the View: a typed, columnar batch holding
// the values of the qualifying rows only. Adaptive loading operators
// produce Views straight from the raw file (the paper's "intermediate
// results that are identical to what a selection operator over the
// complete column would create", §3.2); dense selections produce the same
// shape, so everything downstream is storage-agnostic.
package exec

import (
	"fmt"

	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// ColKey identifies a column within a (possibly joined) View: Tab is the
// table ordinal in the plan (0 = FROM table, 1 = first joined table, ...),
// Col the attribute index within that table.
type ColKey struct {
	Tab, Col int
}

func (k ColKey) String() string { return fmt.Sprintf("t%d.c%d", k.Tab, k.Col) }

// View is a columnar batch of qualifying rows. Rows holds the original row
// ids for single-table views (nil after a join). All columns have exactly
// Len() entries, aligned positionally.
type View struct {
	Rows []int64
	Cols map[ColKey]*storage.DenseColumn
}

// NewView returns an empty view.
func NewView() *View {
	return &View{Cols: make(map[ColKey]*storage.DenseColumn)}
}

// Len returns the number of qualifying rows.
func (v *View) Len() int {
	if v.Rows != nil {
		return len(v.Rows)
	}
	for _, c := range v.Cols {
		return c.Len()
	}
	return 0
}

// Col returns the column for key, or nil.
func (v *View) Col(k ColKey) *storage.DenseColumn { return v.Cols[k] }

// AddCol registers a column under key.
func (v *View) AddCol(k ColKey, c *storage.DenseColumn) { v.Cols[k] = c }

// Value returns the value of column k at position i.
func (v *View) Value(k ColKey, i int) storage.Value { return v.Cols[k].Value(i) }

// MemSize returns approximate heap bytes of the view.
func (v *View) MemSize() int64 {
	sz := int64(cap(v.Rows)) * 8
	for _, c := range v.Cols {
		sz += c.MemSize()
	}
	return sz
}

// DenseSource is the executor's handle on a fully loaded table: dense
// columns by attribute index plus the table's row count. The engine
// assembles it from the adaptive store.
type DenseSource struct {
	NumRows int64
	Columns map[int]*storage.DenseColumn
	// Counters, when non-nil, receives internal-read accounting for the
	// bytes selections touch (the cost model uses it to price cold runs
	// over the engine's binary store).
	Counters *metrics.Counters
}

// countScanBytes charges the bytes a predicate scan touches.
func (s DenseSource) countScanBytes(cols []int, rows int64) {
	if s.Counters == nil {
		return
	}
	var b int64
	for _, c := range cols {
		if d := s.Columns[c]; d != nil {
			if d.Typ == schema.String {
				b += rows * 24
			} else {
				b += rows * 8
			}
		}
	}
	s.Counters.AddInternalBytesRead(b)
}

// SelectDense scans the dense predicate columns, evaluates the conjunction
// and materializes needCols for qualifying rows into a View under table
// ordinal tab. Predicates must reference columns present in src.
func SelectDense(src DenseSource, conj expr.Conjunction, needCols []int, tab int) (*View, error) {
	for _, p := range conj.Preds {
		if src.Columns[p.Col] == nil {
			return nil, fmt.Errorf("exec: predicate column %d not loaded", p.Col)
		}
	}
	for _, c := range needCols {
		if src.Columns[c] == nil {
			return nil, fmt.Errorf("exec: needed column %d not loaded", c)
		}
	}

	n := int(src.NumRows)
	rowids := make([]int64, 0, n/8+1)
	src.countScanBytes(conj.Columns(), src.NumRows)

	if fast, ok := intOnlyPreds(conj, src); ok {
		for i := 0; i < n; i++ {
			if fast.eval(i) {
				rowids = append(rowids, int64(i))
			}
		}
	} else {
		get := func(i int) func(col int) storage.Value {
			return func(col int) storage.Value { return src.Columns[col].Value(i) }
		}
		for i := 0; i < n; i++ {
			if conj.EvalRow(get(i)) {
				rowids = append(rowids, int64(i))
			}
		}
	}
	return gatherDense(src, rowids, needCols, tab), nil
}

// intPredSet is the vectorizable fast path: every predicate is on an int64
// column with an int64 literal.
type intPredSet struct {
	cols  [][]int64
	preds []expr.Pred
}

func intOnlyPreds(conj expr.Conjunction, src DenseSource) (*intPredSet, bool) {
	s := &intPredSet{}
	for _, p := range conj.Preds {
		c := src.Columns[p.Col]
		if c.Typ != schema.Int64 || p.Val.Typ != schema.Int64 || (p.Between && p.Val2.Typ != schema.Int64) {
			return nil, false
		}
		s.cols = append(s.cols, c.Ints)
		s.preds = append(s.preds, p)
	}
	return s, true
}

func (s *intPredSet) eval(i int) bool {
	for k, p := range s.preds {
		if !p.EvalInt(s.cols[k][i]) {
			return false
		}
	}
	return true
}

// gatherDense materializes needCols of the given rows into a View.
func gatherDense(src DenseSource, rowids []int64, needCols []int, tab int) *View {
	src.countScanBytes(needCols, int64(len(rowids)))
	v := NewView()
	v.Rows = rowids
	for _, col := range needCols {
		base := src.Columns[col]
		out := storage.NewDense(base.Typ, len(rowids))
		switch base.Typ {
		case schema.Int64:
			for _, r := range rowids {
				out.Ints = append(out.Ints, base.Ints[r])
			}
		case schema.Float64:
			for _, r := range rowids {
				out.Floats = append(out.Floats, base.Floats[r])
			}
		default:
			for _, r := range rowids {
				out.Strs = append(out.Strs, base.Strs[r])
			}
		}
		v.AddCol(ColKey{Tab: tab, Col: col}, out)
	}
	return v
}

// FilterView re-evaluates a (usually narrower) conjunction over an
// existing view and returns the surviving rows. Serving a query from the
// adaptive store's cached region uses this: cached rows satisfy the old,
// wider region and must be re-filtered by the new predicates.
func FilterView(v *View, conj expr.Conjunction, tab int) *View {
	if conj.Empty() {
		return v
	}
	out := NewView()
	for k := range v.Cols {
		out.AddCol(k, storage.NewDense(v.Cols[k].Typ, 0))
	}
	keepRows := v.Rows != nil
	n := v.Len()
	for i := 0; i < n; i++ {
		ok := conj.EvalRow(func(col int) storage.Value {
			return v.Value(ColKey{Tab: tab, Col: col}, i)
		})
		if !ok {
			continue
		}
		if keepRows {
			out.Rows = append(out.Rows, v.Rows[i])
		}
		for k, c := range v.Cols {
			out.Cols[k].Append(c.Value(i))
		}
	}
	return out
}
