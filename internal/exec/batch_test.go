package exec

import (
	"math/rand"
	"strings"
	"testing"

	"nodb/internal/expr"
	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

func mustDenseScan(t testing.TB, src DenseSource, tab int, cols []int, size int) *DenseScan {
	t.Helper()
	s, err := NewDenseScan(src, tab, cols, size)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rowsEqual(t *testing.T, got, want [][]storage.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity = %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			g, w := got[i][j], want[i][j]
			// NaN-safe comparison via the rendered form.
			if g.Typ != w.Typ || g.String() != w.String() {
				t.Fatalf("row %d col %d = %v (%v), want %v (%v)", i, j, g.String(), g.Typ, w.String(), w.Typ)
			}
		}
	}
}

func TestDenseScanWindows(t *testing.T) {
	src := mkSource(map[int][]int64{0: {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}})
	s := mustDenseScan(t, src, 0, []int{0}, 3)
	var total, batches int
	for {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		batches++
		c := b.Col(ColKey{0, 0})
		if c == nil || c.Len() != b.N {
			t.Fatalf("batch %d: column len %d, N %d", batches, c.Len(), b.N)
		}
		// Zero-copy: the window aliases the source column.
		if &c.Ints[0] != &src.Columns[0].Ints[total] {
			t.Fatal("window is a copy, want alias into the source column")
		}
		total += b.Rows()
	}
	if batches != 4 || total != 10 {
		t.Fatalf("batches=%d rows=%d, want 4 batches of 10 rows", batches, total)
	}
	st := s.Stats()
	if st.Batches != 4 || st.Rows != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := NewDenseScan(src, 0, []int{7}, 0); err == nil {
		t.Fatal("scan of a missing column should error at construction")
	}
}

// TestPipelineMatchesSelectDense differentially pins Scan→Filter→Project
// against the row-at-a-time SelectDense + ProjectRows on random data,
// across batch sizes that do and don't divide the row count.
func TestPipelineMatchesSelectDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 1000
	a0 := make([]int64, n)
	a1 := make([]int64, n)
	for i := range a0 {
		a0[i] = rng.Int63n(100)
		a1[i] = rng.Int63n(1000)
	}
	src := mkSource(map[int][]int64{0: a0, 1: a1})
	conj := expr.Conjunction{Preds: []expr.Pred{
		intPred(0, expr.Ge, 20), intPred(0, expr.Lt, 80), intPred(1, expr.Ne, 500),
	}}
	proj := []ColKey{{0, 1}, {0, 0}}

	v, err := SelectDense(src, conj, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ProjectRows(v, proj)

	for _, size := range []int{1, 7, 256, 1024, 5000} {
		scan := mustDenseScan(t, src, 0, []int{0, 1}, size)
		p := NewProjectOp(NewFilterOp(scan, 0, conj), proj)
		got, err := DrainRows(p, len(proj))
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, got, want)
	}
}

func TestAggOpMatchesAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 777
	ints := make([]int64, n)
	for i := range ints {
		ints[i] = rng.Int63n(500) - 250
	}
	fc := storage.NewDense(schema.Float64, n)
	for i := 0; i < n; i++ {
		fc.Floats = append(fc.Floats, float64(rng.Int63n(1000))/8)
	}
	src := mkSource(map[int][]int64{0: ints})
	src.Columns[1] = fc

	specs := []AggSpec{
		{Kind: sql.AggCount, Star: true},
		{Kind: sql.AggSum, Col: ColKey{0, 0}},
		{Kind: sql.AggSum, Col: ColKey{0, 1}},
		{Kind: sql.AggAvg, Col: ColKey{0, 0}},
		{Kind: sql.AggAvg, Col: ColKey{0, 1}},
		{Kind: sql.AggMin, Col: ColKey{0, 0}},
		{Kind: sql.AggMax, Col: ColKey{0, 1}},
		{Kind: sql.AggCount, Col: ColKey{0, 0}},
	}
	out := make([]int, len(specs))
	for i := range out {
		out[i] = i
	}

	for _, conj := range []expr.Conjunction{
		{},
		{Preds: []expr.Pred{intPred(0, expr.Gt, 0)}},
		{Preds: []expr.Pred{intPred(0, expr.Gt, 10_000)}}, // empty result
	} {
		v, err := SelectDense(src, conj, []int{0, 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Aggregate(v, specs)
		if err != nil {
			t.Fatal(err)
		}
		scan := mustDenseScan(t, src, 0, []int{0, 1}, 128)
		agg := NewAggOp(NewFilterOp(scan, 0, conj), specs, out)
		got, err := DrainRows(agg, len(specs))
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, got, [][]storage.Value{want})
	}
}

func TestGroupByOpMatchesGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 600
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(12)
		vals[i] = rng.Int63n(100)
	}
	src := mkSource(map[int][]int64{0: keys, 1: vals})
	gkeys := []ColKey{{0, 0}}
	specs := []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 1}},
		{Kind: sql.AggCount, Star: true},
	}
	// Select list: sum(c1), c0, count(*) — exercises slot reordering.
	slots := []OutSlot{{Agg: true, Idx: 0}, {Agg: false, Idx: 0}, {Agg: true, Idx: 1}}
	proj := []ColKey{{0, 0}}

	v, err := SelectDense(src, expr.Conjunction{}, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := GroupBy(v, gkeys, specs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]storage.Value, len(legacy))
	for i, r := range legacy {
		want[i] = []storage.Value{r[1], r[0], r[2]}
	}

	scan := mustDenseScan(t, src, 0, []int{0, 1}, 64)
	g := NewGroupByOp(scan, gkeys, specs, slots, proj, 5)
	got, err := DrainRows(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, got, want)
}

func TestGroupByOpEmptyInput(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1, 2, 3}})
	scan := mustDenseScan(t, src, 0, []int{0}, 2)
	f := NewFilterOp(scan, 0, expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Gt, 99)}})
	g := NewGroupByOp(f, []ColKey{{0, 0}}, []AggSpec{{Kind: sql.AggCount, Star: true}},
		[]OutSlot{{Agg: false, Idx: 0}, {Agg: true, Idx: 0}}, []ColKey{{0, 0}}, 0)
	rows, err := DrainRows(g, 2)
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty group-by = %d rows (%v), want 0", len(rows), err)
	}
}

func TestHashJoinOpMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	mk := func(n int, mod int64) (DenseSource, *View) {
		ks := make([]int64, n)
		pay := make([]int64, n)
		for i := range ks {
			ks[i] = rng.Int63n(mod)
			pay[i] = int64(i) * 7
		}
		return mkSource(map[int][]int64{0: ks, 1: pay}), nil
	}
	// Both shapes: probe side larger and build side larger, so the
	// build-on-smaller-side choice is exercised in both directions.
	for _, sizes := range [][2]int{{300, 80}, {80, 300}, {100, 100}} {
		lsrc, _ := mk(sizes[0], 50)
		rsrc, _ := mk(sizes[1], 50)
		lv, err := SelectDense(lsrc, expr.Conjunction{}, []int{0, 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rv, err := SelectDense(rsrc, expr.Conjunction{}, []int{0, 1}, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := HashJoin(lv, rv, ColKey{0, 0}, ColKey{1, 0})
		if err != nil {
			t.Fatal(err)
		}
		proj := []ColKey{{0, 1}, {1, 1}, {0, 0}}
		wantRows := ProjectRows(want, proj)

		ls := mustDenseScan(t, lsrc, 0, []int{0, 1}, 97)
		rs := mustDenseScan(t, rsrc, 1, []int{0, 1}, 97)
		j := NewHashJoinOp(ls, rs, ColKey{0, 0}, ColKey{1, 0}, 128)
		got, err := DrainRows(NewProjectOp(j, proj), len(proj))
		if err != nil {
			t.Fatal(err)
		}
		rowsEqual(t, got, wantRows)
	}
}

func TestHashJoinOpEmptySide(t *testing.T) {
	lsrc := mkSource(map[int][]int64{0: {1, 2, 3}})
	rsrc := mkSource(map[int][]int64{0: {1, 2}})
	ls := mustDenseScan(t, lsrc, 0, []int{0}, 2)
	rf := NewFilterOp(mustDenseScan(t, rsrc, 1, []int{0}, 2), 1,
		expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Gt, 99)}})
	j := NewHashJoinOp(ls, rf, ColKey{0, 0}, ColKey{1, 0}, 0)
	b, err := j.Next()
	if err != nil || b != nil {
		t.Fatalf("join with empty build side = (%v, %v), want end of stream", b, err)
	}
}

func TestSortOpAndLimitOp(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 500
	a0 := make([]int64, n)
	a1 := make([]int64, n)
	for i := range a0 {
		a0[i] = rng.Int63n(40)
		a1[i] = int64(i)
	}
	src := mkSource(map[int][]int64{0: a0, 1: a1})
	proj := []ColKey{{0, 0}, {0, 1}}
	sortKeys := []SortKey{{Index: 0, Desc: true}}

	v, err := SelectDense(src, expr.Conjunction{}, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ProjectRows(v, proj)
	SortRows(want, sortKeys)
	want = LimitRows(want, 17)

	scan := mustDenseScan(t, src, 0, []int{0, 1}, 33)
	top := NewLimitOp(NewSortOp(NewProjectOp(scan, proj), sortKeys, 2, 9), 17)
	got, err := DrainRows(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, got, want)
}

// pullCounter wraps an operator, counting pulls and Close calls, to prove
// LimitOp stops its upstream early.
type pullCounter struct {
	opBase
	child  Operator
	pulls  int
	closed int
}

func (p *pullCounter) Name() string         { return "pullCounter" }
func (p *pullCounter) Children() []Operator { return []Operator{p.child} }
func (p *pullCounter) Close()               { p.closed++; p.child.Close() }
func (p *pullCounter) Next() (*Batch, error) {
	p.pulls++
	return p.child.Next()
}

func TestLimitStopsPullingAndClosesChild(t *testing.T) {
	vals := make([]int64, 100)
	src := mkSource(map[int][]int64{0: vals})
	pc := &pullCounter{child: mustDenseScan(t, src, 0, []int{0}, 10)}
	lim := NewLimitOp(pc, 25)
	rows := 0
	for {
		b, err := lim.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		rows += b.Rows()
	}
	if rows != 25 {
		t.Fatalf("limit emitted %d rows, want 25", rows)
	}
	if pc.pulls != 3 {
		t.Fatalf("limit pulled %d batches, want 3 (of 10 available)", pc.pulls)
	}
	if pc.closed == 0 {
		t.Fatal("limit did not close its child after satisfying the quota")
	}
}

func TestLimitZero(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1, 2, 3}})
	lim := NewLimitOp(mustDenseScan(t, src, 0, []int{0}, 2), 0)
	if b, err := lim.Next(); err != nil || b != nil {
		t.Fatalf("limit 0 emitted %v (%v)", b, err)
	}
}

func TestExplainTreeShape(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1, 2, 3, 4}})
	scan := mustDenseScan(t, src, 0, []int{0}, 2)
	f := NewFilterOp(scan, 0, expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Gt, 1)}})
	agg := NewAggOp(f, []AggSpec{{Kind: sql.AggCount, Star: true}}, []int{0})
	if _, err := DrainRows(agg, 1); err != nil {
		t.Fatal(err)
	}
	tree := ExplainTree(agg)
	lines := strings.Split(strings.TrimRight(tree, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree = %q", tree)
	}
	if !strings.HasPrefix(lines[0], "Aggregate") || !strings.Contains(lines[0], "rows=1") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  Filter") || !strings.Contains(lines[1], "rows=3") {
		t.Errorf("filter line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    DenseScan") || !strings.Contains(lines[2], "rows=4") {
		t.Errorf("scan line = %q", lines[2])
	}
}

func TestDrainRowsAllocs(t *testing.T) {
	const n = 4096
	vals := make([]int64, n)
	src := mkSource(map[int][]int64{0: vals, 1: vals})
	proj := []ColKey{{0, 0}, {0, 1}}
	allocs := testing.AllocsPerRun(10, func() {
		scan, err := NewDenseScan(src, 0, []int{0, 1}, 1024)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := DrainRows(NewProjectOp(scan, proj), 2)
		if err != nil || len(rows) != n {
			t.Fatalf("drain: %d rows, %v", len(rows), err)
		}
	})
	if perRow := allocs / n; perRow >= 1 {
		t.Fatalf("drain allocates %.2f per row (%.0f total), want < 1", perRow, allocs)
	}
}

// BenchmarkBatchPipeline measures the vectorized filter+aggregate chain
// that replaced the row-at-a-time SelectDense/Aggregate pair (compare
// with BenchmarkSelectDense1M).
func BenchmarkBatchPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1_000_000
	a1 := make([]int64, n)
	a2 := make([]int64, n)
	for i := range a1 {
		a1[i] = rng.Int63n(int64(n))
		a2[i] = rng.Int63n(int64(n))
	}
	src := mkSource(map[int][]int64{0: a1, 1: a2})
	conj := expr.Conjunction{Preds: []expr.Pred{
		intPred(0, expr.Gt, 100_000), intPred(0, expr.Lt, 200_000),
		intPred(1, expr.Gt, 0), intPred(1, expr.Lt, 900_000),
	}}
	specs := []AggSpec{{Kind: sql.AggSum, Col: ColKey{0, 0}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, err := NewDenseScan(src, 0, []int{0, 1}, DefaultBatchSize)
		if err != nil {
			b.Fatal(err)
		}
		agg := NewAggOp(NewFilterOp(scan, 0, conj), specs, []int{0})
		if _, err := DrainRows(agg, 1); err != nil {
			b.Fatal(err)
		}
	}
}
