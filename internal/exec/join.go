package exec

import (
	"fmt"
	"sort"

	"nodb/internal/schema"
	"nodb/internal/storage"
)

// HashJoin performs an inner equi-join of two views on left.Col(lkey) =
// right.Col(rkey), building a hash table on the smaller input. The output
// view carries every column of both inputs (their ColKeys are disjoint by
// construction: different Tab ordinals); Rows is nil.
func HashJoin(left, right *View, lkey, rkey ColKey) (*View, error) {
	lc, rc := left.Col(lkey), right.Col(rkey)
	if lc == nil || rc == nil {
		return nil, fmt.Errorf("exec: join keys %v/%v not in views", lkey, rkey)
	}
	// Build on the smaller side.
	if right.Len() < left.Len() {
		return hashJoin(right, left, rkey, lkey)
	}
	return hashJoin(left, right, lkey, rkey)
}

// hashJoin builds on `build` and probes with `probe`.
func hashJoin(build, probe *View, bkey, pkey ColKey) (*View, error) {
	bc, pc := build.Col(bkey), probe.Col(pkey)
	if bc.Typ != pc.Typ && (bc.Typ == schema.String) != (pc.Typ == schema.String) {
		return nil, fmt.Errorf("exec: join key type mismatch %v vs %v", bc.Typ, pc.Typ)
	}

	var bIdx, pIdx []int32
	if bc.Typ == schema.Int64 && pc.Typ == schema.Int64 {
		ht := make(map[int64][]int32, build.Len())
		for i, v := range bc.Ints {
			ht[v] = append(ht[v], int32(i))
		}
		for i, v := range pc.Ints {
			for _, bi := range ht[v] {
				bIdx = append(bIdx, bi)
				pIdx = append(pIdx, int32(i))
			}
		}
	} else {
		ht := make(map[string][]int32, build.Len())
		for i := 0; i < build.Len(); i++ {
			ht[bc.Value(i).String()] = append(ht[bc.Value(i).String()], int32(i))
		}
		for i := 0; i < probe.Len(); i++ {
			for _, bi := range ht[pc.Value(i).String()] {
				bIdx = append(bIdx, bi)
				pIdx = append(pIdx, int32(i))
			}
		}
	}
	return gatherJoin(build, probe, bIdx, pIdx), nil
}

// MergeJoin performs an inner equi-join by sorting both inputs on the key
// and merging — the paper's §2.2 "sort the data ... and then implement a
// merge join" comparator. Only int64 keys are supported (the experiment's
// keys are unique integers).
func MergeJoin(left, right *View, lkey, rkey ColKey) (*View, error) {
	lc, rc := left.Col(lkey), right.Col(rkey)
	if lc == nil || rc == nil {
		return nil, fmt.Errorf("exec: join keys %v/%v not in views", lkey, rkey)
	}
	if lc.Typ != schema.Int64 || rc.Typ != schema.Int64 {
		return nil, fmt.Errorf("exec: merge join requires int64 keys")
	}
	lperm := sortedPerm(lc.Ints)
	rperm := sortedPerm(rc.Ints)

	var lIdx, rIdx []int32
	i, j := 0, 0
	for i < len(lperm) && j < len(rperm) {
		lv, rv := lc.Ints[lperm[i]], rc.Ints[rperm[j]]
		switch {
		case lv < rv:
			i++
		case lv > rv:
			j++
		default:
			// Emit the cross product of the equal runs.
			i2 := i
			for i2 < len(lperm) && lc.Ints[lperm[i2]] == lv {
				i2++
			}
			j2 := j
			for j2 < len(rperm) && rc.Ints[rperm[j2]] == rv {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					lIdx = append(lIdx, lperm[a])
					rIdx = append(rIdx, rperm[b])
				}
			}
			i, j = i2, j2
		}
	}
	return gatherJoin(left, right, lIdx, rIdx), nil
}

func sortedPerm(vals []int64) []int32 {
	perm := make([]int32, len(vals))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool { return vals[perm[a]] < vals[perm[b]] })
	return perm
}

// gatherJoin materializes the matched index pairs into an output view.
func gatherJoin(a, b *View, aIdx, bIdx []int32) *View {
	out := NewView()
	copySide := func(src *View, idx []int32) {
		for k, c := range src.Cols {
			oc := storage.NewDense(c.Typ, len(idx))
			switch c.Typ {
			case schema.Int64:
				for _, i := range idx {
					oc.Ints = append(oc.Ints, c.Ints[i])
				}
			case schema.Float64:
				for _, i := range idx {
					oc.Floats = append(oc.Floats, c.Floats[i])
				}
			default:
				for _, i := range idx {
					oc.Strs = append(oc.Strs, c.Strs[i])
				}
			}
			out.AddCol(k, oc)
		}
	}
	copySide(a, aIdx)
	copySide(b, bIdx)
	return out
}
