package exec

import (
	"math/rand"
	"testing"

	"nodb/internal/expr"
	"nodb/internal/storage"
)

// TestSelectDenseRowsAllocs pins the streaming emit path's allocation
// behavior: rows subslice a shared flat chunk, so the per-row cost must
// stay (well) under one allocation per emitted row.
func TestSelectDenseRowsAllocs(t *testing.T) {
	n := 4096
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i)
	}
	src := mkSource(map[int][]int64{0: a, 1: a})
	conj := expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Ge, 0)}}
	sink := make([]storage.Value, 2)

	allocs := testing.AllocsPerRun(10, func() {
		rows := 0
		err := SelectDenseRows(src, conj, []int{0, 1}, func(rowID int64, vals []storage.Value) error {
			copy(sink, vals)
			rows++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if rows != n {
			t.Fatalf("emitted %d rows, want %d", rows, n)
		}
	})
	if perRow := allocs / float64(n); perRow >= 1 {
		t.Fatalf("SelectDenseRows allocates %.2f/row (%.0f for %d rows), want < 1",
			perRow, allocs, n)
	}
}

// TestSelectDenseRowsOwnership checks that emitted slices stay valid after
// further emits — each row must be a distinct sub-range, never reused.
func TestSelectDenseRowsOwnership(t *testing.T) {
	n := selectRowsChunk*2 + 17 // spans several backing chunks
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i)
	}
	src := mkSource(map[int][]int64{0: a})
	var held [][]storage.Value
	err := SelectDenseRows(src, expr.Conjunction{}, []int{0}, func(rowID int64, vals []storage.Value) error {
		held = append(held, vals)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, vals := range held {
		if got := vals[0].I; got != int64(i) {
			t.Fatalf("retained row %d = %d, want %d (backing array reused?)", i, got, i)
		}
	}
}

func BenchmarkSelectDenseRows1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1_000_000
	a1 := make([]int64, n)
	a2 := make([]int64, n)
	for i := range a1 {
		a1[i] = rng.Int63n(int64(n))
		a2[i] = rng.Int63n(int64(n))
	}
	src := mkSource(map[int][]int64{0: a1, 1: a2})
	conj := expr.Conjunction{Preds: []expr.Pred{
		intPred(0, expr.Gt, 100_000), intPred(0, expr.Lt, 200_000),
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		err := SelectDenseRows(src, conj, []int{0, 1}, func(rowID int64, vals []storage.Value) error {
			sum += vals[1].I
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
