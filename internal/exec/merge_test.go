package exec

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

func intRow(vals ...int64) []storage.Value {
	row := make([]storage.Value, len(vals))
	for i, v := range vals {
		row[i] = storage.IntValue(v)
	}
	return row
}

// errIter yields its rows, then fails.
type errIter struct {
	rows [][]storage.Value
	i    int
	err  error
}

func (e *errIter) Next() ([]storage.Value, bool, error) {
	if e.i < len(e.rows) {
		r := e.rows[e.i]
		e.i++
		return r, true, nil
	}
	return nil, false, e.err
}

func TestConcatOrderAndLimit(t *testing.T) {
	in := []RowIter{
		NewSliceIter([][]storage.Value{intRow(1), intRow(2)}),
		NewSliceIter(nil),
		NewSliceIter([][]storage.Value{intRow(3), intRow(4)}),
	}
	c := NewConcat(in, 3, nil)
	got, err := DrainRowIter(c)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(got) != 3 || got[0][0].I != 1 || got[1][0].I != 2 || got[2][0].I != 3 {
		t.Fatalf("wrong rows: %v", got)
	}
	if c.Emitted() != 3 {
		t.Fatalf("Emitted = %d, want 3", c.Emitted())
	}
}

func TestConcatStreamError(t *testing.T) {
	boom := errors.New("shard died")
	in := []RowIter{
		&errIter{rows: [][]storage.Value{intRow(1)}, err: boom},
		NewSliceIter([][]storage.Value{intRow(2)}),
	}
	// Abort mode: the error surfaces.
	if _, err := DrainRowIter(NewConcat(in, -1, nil)); !errors.Is(err, boom) {
		t.Fatalf("want stream error, got %v", err)
	}
	// Partial mode: the failed stream is dropped, later streams continue.
	in = []RowIter{
		&errIter{rows: [][]storage.Value{intRow(1)}, err: boom},
		NewSliceIter([][]storage.Value{intRow(2)}),
	}
	var dropped []int
	got, err := DrainRowIter(NewConcat(in, -1, func(i int, err error) bool {
		dropped = append(dropped, i)
		return true
	}))
	if err != nil {
		t.Fatalf("partial drain: %v", err)
	}
	if len(got) != 2 || len(dropped) != 1 || dropped[0] != 0 {
		t.Fatalf("partial results wrong: rows=%v dropped=%v", got, dropped)
	}
}

// TestMergeSortedMatchesSliceStable pins the byte-identity property: the
// k-way merge over sorted shard slices equals sort.SliceStable over their
// concatenation, ties and all.
func TestMergeSortedMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		nShards := 1 + rng.Intn(4)
		keys := []SortKey{{Index: 0, Desc: trial%2 == 1}}
		var all [][]storage.Value
		var inputs []RowIter
		for s := 0; s < nShards; s++ {
			var rows [][]storage.Value
			for r := 0; r < rng.Intn(30); r++ {
				// Small value domain forces cross-shard ties; the second
				// column records provenance so tie order is observable.
				rows = append(rows, intRow(int64(rng.Intn(5)), int64(s*1000+r)))
			}
			SortRows(rows, keys)
			all = append(all, rows...)
			inputs = append(inputs, NewSliceIter(rows))
		}
		want := append([][]storage.Value(nil), all...)
		sort.SliceStable(want, func(i, j int) bool { return lessRows(want[i], want[j], keys) })

		got, err := DrainRowIter(NewMergeSorted(inputs, keys, -1, nil))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d rows, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i][0].I != want[i][0].I || got[i][1].I != want[i][1].I {
				t.Fatalf("trial %d row %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeSortedLimitStopsPulling pins the deferred-advance contract: once
// the limit is satisfied, no input is touched again — so a stream that
// would error past that point never gets the chance to.
func TestMergeSortedLimitStopsPulling(t *testing.T) {
	in := []RowIter{
		&errIter{rows: [][]storage.Value{intRow(1), intRow(3)}, err: errors.New("cancelled upstream")},
		NewSliceIter([][]storage.Value{intRow(2)}),
	}
	got, err := DrainRowIter(NewMergeSorted(in, []SortKey{{Index: 0}}, 2, nil))
	if err != nil {
		t.Fatalf("limit-bounded merge hit upstream error: %v", err)
	}
	if len(got) != 2 || got[0][0].I != 1 || got[1][0].I != 2 {
		t.Fatalf("wrong rows: %v", got)
	}
}

func TestAggMergerMergesPartials(t *testing.T) {
	specs := []PartialAggSpec{
		{Kind: sql.AggCount, Col: 0},
		{Kind: sql.AggSum, Col: 1},
		{Kind: sql.AggMin, Col: 2},
		{Kind: sql.AggMax, Col: 3},
		{Kind: sql.AggAvg, Col: 4, CountCol: 5},
	}
	// Rows: count, sum, min, max, avg-sum, avg-count, sentinel count(*).
	m := NewAggMerger(specs, 6)
	m.Absorb(intRow(3, 30, 5, 9, 30, 3, 3))
	m.Absorb(intRow(0, 0, 0, 0, 0, 0, 0)) // empty shard: sentinel 0, placeholders skipped
	m.Absorb(intRow(2, 12, 2, 7, 12, 2, 2))
	got := m.Result()
	if got[0].I != 5 || got[1].I != 42 || got[2].I != 2 || got[3].I != 9 {
		t.Fatalf("count/sum/min/max wrong: %v", got)
	}
	if want := 42.0 / 5.0; got[4].F != want {
		t.Fatalf("avg = %v, want %v", got[4].F, want)
	}
}

func TestAggMergerEmptyMatchesSingleNode(t *testing.T) {
	// All shards empty: the merged answer must equal what aggState
	// produces over zero rows — count 0, integer sum 0, NaN avg.
	m := NewAggMerger([]PartialAggSpec{
		{Kind: sql.AggCount, Col: 0},
		{Kind: sql.AggSum, Col: 1},
		{Kind: sql.AggAvg, Col: 2, CountCol: 3},
		{Kind: sql.AggMin, Col: 4},
	}, 5)
	m.Absorb(intRow(0, 0, 0, 0, 0, 0))
	got := m.Result()
	if got[0].I != 0 || got[0].Typ != 0 {
		t.Fatalf("empty count = %v", got[0])
	}
	if got[1].I != 0 || got[1].Typ != 0 {
		t.Fatalf("empty sum = %v (want integer zero)", got[1])
	}
	if !math.IsNaN(got[2].F) {
		t.Fatalf("empty avg = %v, want NaN", got[2])
	}
	if got[3] != (storage.Value{}) {
		t.Fatalf("empty min = %v, want zero Value", got[3])
	}
}

func TestAggMergerFloatPromotion(t *testing.T) {
	m := NewAggMerger([]PartialAggSpec{{Kind: sql.AggSum, Col: 0}}, 1)
	m.Absorb(intRow(10, 1))
	m.Absorb([]storage.Value{storage.FloatValue(2.5), storage.IntValue(1)})
	m.Absorb(intRow(3, 1))
	got := m.Result()
	if got[0].F != 15.5 {
		t.Fatalf("mixed sum = %v, want 15.5", got[0])
	}
}

func TestGroupMergerFirstAppearanceOrder(t *testing.T) {
	specs := []PartialAggSpec{
		{Kind: sql.AggNone, Col: 0},
		{Kind: sql.AggSum, Col: 1},
		{Kind: sql.AggAvg, Col: 1, CountCol: 2},
	}
	m := NewGroupMerger([]int{0}, specs)
	// Shard 0 sees groups 7 then 3; shard 1 sees 3 then 9. Merged order
	// must be first-appearance across the absorption sequence: 7, 3, 9.
	m.Absorb(intRow(7, 10, 2))
	m.Absorb(intRow(3, 6, 3))
	m.Absorb(intRow(3, 4, 1))
	m.Absorb(intRow(9, 1, 1))
	rows := m.Rows()
	if len(rows) != 3 {
		t.Fatalf("%d groups, want 3", len(rows))
	}
	wantKeys := []int64{7, 3, 9}
	wantSums := []int64{10, 10, 1}
	wantAvgs := []float64{5, 2.5, 1}
	for i, r := range rows {
		if r[0].I != wantKeys[i] || r[1].I != wantSums[i] || r[2].F != wantAvgs[i] {
			t.Fatalf("group %d = %v, want key=%d sum=%d avg=%v", i, r, wantKeys[i], wantSums[i], wantAvgs[i])
		}
	}
}

func TestGroupMergerCompositeKey(t *testing.T) {
	specs := []PartialAggSpec{
		{Kind: sql.AggNone, Col: 0},
		{Kind: sql.AggNone, Col: 1},
		{Kind: sql.AggCount, Col: 2},
	}
	m := NewGroupMerger([]int{0, 1}, specs)
	m.Absorb(intRow(1, 2, 5))
	m.Absorb(intRow(1, 2, 3))
	m.Absorb(intRow(2, 1, 1)) // same digits, different key
	rows := m.Rows()
	if len(rows) != 2 || rows[0][2].I != 8 || rows[1][2].I != 1 {
		t.Fatalf("composite key merge wrong: %v", rows)
	}
}

// TestMergeRoundTripAgainstGroupBy runs the same data through the
// single-node GroupBy and through sharded partial aggregation + GroupMerger
// and requires identical output, row for row.
func TestMergeRoundTripAgainstGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var data [][]storage.Value
	for i := 0; i < 300; i++ {
		data = append(data, intRow(int64(rng.Intn(7)), int64(rng.Intn(100))))
	}
	keys := []ColKey{{Tab: 0, Col: 0}}
	aggs := []AggSpec{{Kind: sql.AggSum, Col: ColKey{Tab: 0, Col: 1}}, {Kind: sql.AggCount, Star: true}}
	single := runGroupBy(t, data, keys, aggs)

	// Shard the rows contiguously, aggregate each shard, merge partials.
	// Partial-row layout: key, sum, count(*).
	m := NewGroupMerger([]int{0}, []PartialAggSpec{
		{Kind: sql.AggNone, Col: 0},
		{Kind: sql.AggSum, Col: 1},
		{Kind: sql.AggCount, Col: 2},
	})
	for s := 0; s < 3; s++ {
		lo, hi := s*100, (s+1)*100
		for _, part := range runGroupBy(t, data[lo:hi], keys, aggs) {
			m.Absorb(part)
		}
	}
	merged := m.Rows()
	if len(merged) != len(single) {
		t.Fatalf("%d merged groups, want %d", len(merged), len(single))
	}
	for i := range merged {
		for j := range merged[i] {
			if merged[i][j] != single[i][j] {
				t.Fatalf("row %d differs: merged=%v single=%v", i, merged[i], single[i])
			}
		}
	}
}

// runGroupBy evaluates a group-by over materialized rows through the real
// single-node GroupBy operator.
func runGroupBy(t *testing.T, data [][]storage.Value, keys []ColKey, aggs []AggSpec) [][]storage.Value {
	t.Helper()
	v := NewView()
	nCols := 0
	if len(data) > 0 {
		nCols = len(data[0])
	} else {
		nCols = 2
	}
	for c := 0; c < nCols; c++ {
		col := storage.NewDense(schema.Int64, len(data))
		for _, row := range data {
			col.Append(row[c])
		}
		v.AddCol(ColKey{Tab: 0, Col: c}, col)
	}
	v.Rows = make([]int64, len(data))
	rows, err := GroupBy(v, keys, aggs)
	if err != nil {
		t.Fatalf("GroupBy: %v", err)
	}
	return rows
}

func ExampleConcat() {
	c := NewConcat([]RowIter{
		NewSliceIter([][]storage.Value{intRow(1)}),
		NewSliceIter([][]storage.Value{intRow(2)}),
	}, -1, nil)
	rows, _ := DrainRowIter(c)
	fmt.Println(len(rows), rows[0][0].I, rows[1][0].I)
	// Output: 2 1 2
}
