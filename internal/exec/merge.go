package exec

import (
	"math"
	"strings"

	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// This file is the cluster merge operator family: the operators a
// scatter-gather coordinator runs over the per-shard result streams it
// receives. They are deliberately row-oriented — shard results arrive as
// NDJSON rows, already reduced shard-local by the vectorized pipeline, so
// the coordinator's work is merging small streams, not scanning raw bytes.
//
// Every operator is built to reproduce the single-node answer exactly when
// the shards hold contiguous, disjoint ranges of one logical file:
// Concat preserves file order, MergeSorted reproduces sort.SliceStable's
// tie behavior, and GroupMerger reproduces first-appearance group order.

// RowIter is a pull-based stream of materialized result rows — the unit
// the merge operators consume. Implementations are not required to be safe
// for concurrent use; the merge operators pull single-threaded.
type RowIter interface {
	// Next returns the next row. ok is false at end of stream; a non-nil
	// err (which implies ok == false) is the stream's terminal error.
	Next() (row []storage.Value, ok bool, err error)
}

// StreamErrorFunc decides what a merge operator does when one of its input
// streams fails mid-merge: return true to drop that stream and keep
// merging the remainder (the coordinator's partial_results degraded mode),
// false to abort the whole merge with the error.
type StreamErrorFunc func(input int, err error) bool

// sliceIter adapts a materialized row slice to RowIter (tests, re-merging
// buffered partials).
type sliceIter struct {
	rows [][]storage.Value
	i    int
}

// NewSliceIter returns a RowIter over a materialized row slice.
func NewSliceIter(rows [][]storage.Value) RowIter { return &sliceIter{rows: rows} }

func (s *sliceIter) Next() ([]storage.Value, bool, error) {
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.i]
	s.i++
	return r, true, nil
}

// DrainRowIter materializes an iterator.
func DrainRowIter(it RowIter) ([][]storage.Value, error) {
	var out [][]storage.Value
	for {
		row, ok, err := it.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// Concat yields every row of its inputs in input order — input 0 drained
// fully before input 1 starts — with an optional global row limit
// (limit < 0 means unlimited). This is the coordinator's merge operator
// for unordered selects: with shards holding contiguous ranges of one
// logical file, concatenation in shard order reproduces the single-node
// scan order exactly.
type Concat struct {
	inputs  []RowIter
	onErr   StreamErrorFunc
	limit   int64
	emitted int64
	cur     int
	err     error
	done    bool
}

// NewConcat builds a concatenating merge over inputs.
func NewConcat(inputs []RowIter, limit int64, onErr StreamErrorFunc) *Concat {
	return &Concat{inputs: inputs, limit: limit, onErr: onErr}
}

// Next implements RowIter.
func (c *Concat) Next() ([]storage.Value, bool, error) {
	if c.done {
		return nil, false, c.err
	}
	for {
		if c.limit >= 0 && c.emitted >= c.limit {
			c.done = true
			return nil, false, nil
		}
		if c.cur >= len(c.inputs) {
			c.done = true
			return nil, false, nil
		}
		row, ok, err := c.inputs[c.cur].Next()
		if err != nil {
			if c.onErr != nil && c.onErr(c.cur, err) {
				c.cur++
				continue
			}
			c.done, c.err = true, err
			return nil, false, err
		}
		if !ok {
			c.cur++
			continue
		}
		c.emitted++
		return row, true, nil
	}
}

// Emitted reports how many rows the operator has yielded.
func (c *Concat) Emitted() int64 { return c.emitted }

// MergeSorted merges k individually sorted inputs into one sorted stream:
// each pull picks the smallest head under keys, breaking ties by lower
// input index. That is exactly the order sort.SliceStable produces over
// the concatenation of the inputs, so a coordinator merging per-shard
// ORDER BY streams is byte-identical to a single node sorting the whole
// file. limit < 0 means unlimited.
type MergeSorted struct {
	inputs  []RowIter
	keys    []SortKey
	onErr   StreamErrorFunc
	limit   int64
	emitted int64

	heads   [][]storage.Value // current head per input; nil = exhausted/dropped
	pending int               // input whose head was emitted and needs refreshing; -1 = none
	primed  bool
	err     error
	done    bool
}

// NewMergeSorted builds a k-way merge over sorted inputs.
func NewMergeSorted(inputs []RowIter, keys []SortKey, limit int64, onErr StreamErrorFunc) *MergeSorted {
	return &MergeSorted{inputs: inputs, keys: keys, limit: limit, onErr: onErr, pending: -1}
}

// advance refreshes input i's head; false means a fatal stream error
// (m.err is set and the merge is finished).
func (m *MergeSorted) advance(i int) bool {
	row, ok, err := m.inputs[i].Next()
	if err != nil {
		if m.onErr != nil && m.onErr(i, err) {
			m.heads[i] = nil
			return true
		}
		m.err, m.done = err, true
		return false
	}
	if !ok {
		m.heads[i] = nil
	} else {
		m.heads[i] = row
	}
	return true
}

// Next implements RowIter.
func (m *MergeSorted) Next() ([]storage.Value, bool, error) {
	if m.done {
		return nil, false, m.err
	}
	if !m.primed {
		m.heads = make([][]storage.Value, len(m.inputs))
		for i := range m.inputs {
			if !m.advance(i) {
				return nil, false, m.err
			}
		}
		m.primed = true
	}
	if m.limit >= 0 && m.emitted >= m.limit {
		m.done = true
		return nil, false, nil
	}
	// The winning input's refresh is deferred to the next pull: once the
	// limit is satisfied no input is touched again, so a coordinator can
	// cancel the still-running shards without the merge misreading the
	// cancellation as a stream failure.
	if m.pending >= 0 {
		i := m.pending
		m.pending = -1
		if !m.advance(i) {
			return nil, false, m.err
		}
	}
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		// Strict less only: the first (lowest-index) minimal head wins
		// ties, matching sort.SliceStable over the concatenation.
		if best < 0 || lessRows(h, m.heads[best], m.keys) {
			best = i
		}
	}
	if best < 0 {
		m.done = true
		return nil, false, nil
	}
	row := m.heads[best]
	m.pending = best
	m.emitted++
	return row, true, nil
}

// Emitted reports how many rows the operator has yielded.
func (m *MergeSorted) Emitted() int64 { return m.emitted }

func lessRows(a, b []storage.Value, keys []SortKey) bool {
	for _, k := range keys {
		c := a[k.Index].Compare(b[k.Index])
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// PartialAggSpec maps one final output column onto the columns of a
// shard's partial-aggregate row. The coordinator rewrites the pushed-down
// query so each shard returns mergeable partials — avg(x) becomes sum(x)
// plus an appended count(x) — and a spec records where each piece landed.
type PartialAggSpec struct {
	// Kind is the original aggregate; AggNone marks a group-key
	// passthrough column.
	Kind sql.AggKind
	// Col is the partial-row column carrying the value: the partial sum
	// for AggSum/AggAvg, the partial count for AggCount, the partial
	// extremum for AggMin/AggMax, the key value itself for AggNone.
	Col int
	// CountCol is the partial-row column carrying the row-count partial
	// AggAvg needs for its final division (unused otherwise).
	CountCol int
}

// mergeAggState folds one aggregate's per-shard partials. Its result
// semantics mirror aggState exactly (empty sum is integer zero, empty avg
// is NaN, empty min/max is the zero Value) so a coordinator answer over
// zero qualifying rows is byte-identical to the single-node answer.
type mergeAggState struct {
	spec     PartialAggSpec
	count    int64
	sumI     int64
	sumF     float64
	isInt    bool
	extremum storage.Value
	seen     bool
}

func newMergeAggState(spec PartialAggSpec) *mergeAggState {
	return &mergeAggState{spec: spec, isInt: true}
}

// addSum accumulates a partial sum, staying integer until the first float
// partial arrives. Integer sums therefore merge exactly; float sums add in
// absorption (shard) order.
func (s *mergeAggState) addSum(v storage.Value) {
	if v.Typ == schema.Float64 {
		if s.isInt {
			s.sumF = float64(s.sumI)
			s.isInt = false
		}
		s.sumF += v.F
		return
	}
	if s.isInt {
		s.sumI += v.I
	} else {
		s.sumF += float64(v.I)
	}
}

func (s *mergeAggState) absorb(row []storage.Value) {
	switch s.spec.Kind {
	case sql.AggCount:
		s.count += row[s.spec.Col].I
	case sql.AggSum:
		s.addSum(row[s.spec.Col])
	case sql.AggAvg:
		s.addSum(row[s.spec.Col])
		s.count += row[s.spec.CountCol].I
	case sql.AggMin:
		if v := row[s.spec.Col]; !s.seen || v.Compare(s.extremum) < 0 {
			s.extremum = v
		}
	case sql.AggMax:
		if v := row[s.spec.Col]; !s.seen || v.Compare(s.extremum) > 0 {
			s.extremum = v
		}
	}
	s.seen = true
}

func (s *mergeAggState) result() storage.Value {
	switch s.spec.Kind {
	case sql.AggCount:
		return storage.IntValue(s.count)
	case sql.AggSum:
		if s.isInt {
			return storage.IntValue(s.sumI)
		}
		return storage.FloatValue(s.sumF)
	case sql.AggAvg:
		if s.count == 0 {
			return storage.FloatValue(math.NaN())
		}
		if s.isInt {
			return storage.FloatValue(float64(s.sumI) / float64(s.count))
		}
		return storage.FloatValue(s.sumF / float64(s.count))
	case sql.AggMin, sql.AggMax:
		return s.extremum
	default:
		return storage.Value{}
	}
}

// AggMerger folds per-shard partial rows of a global (non-grouped)
// aggregate query into the single final result row. sentinelCol names the
// partial-row column carrying an appended count(*): a shard with zero
// qualifying rows still returns one partial row, but its min/max slots are
// zero-value placeholders (exactly what a single node returns over empty
// input), so rows whose sentinel is zero are skipped wholesale.
type AggMerger struct {
	states      []*mergeAggState
	sentinelCol int
}

// NewAggMerger builds a partial-aggregate merger. specs are in final
// output-column order.
func NewAggMerger(specs []PartialAggSpec, sentinelCol int) *AggMerger {
	m := &AggMerger{sentinelCol: sentinelCol, states: make([]*mergeAggState, len(specs))}
	for i, s := range specs {
		m.states[i] = newMergeAggState(s)
	}
	return m
}

// Absorb folds one shard's partial row in.
func (m *AggMerger) Absorb(row []storage.Value) {
	if m.sentinelCol >= 0 && m.sentinelCol < len(row) && row[m.sentinelCol].I == 0 {
		return
	}
	for _, st := range m.states {
		st.absorb(row)
	}
}

// Result returns the merged final row.
func (m *AggMerger) Result() []storage.Value {
	out := make([]storage.Value, len(m.states))
	for i, st := range m.states {
		out[i] = st.result()
	}
	return out
}

// GroupMerger folds per-shard group-by partial rows. Partial rows must be
// absorbed shard by shard in shard order: because shards hold contiguous
// ranges of one logical file, first appearance across the absorption
// sequence equals first appearance in the concatenated file, and Rows
// returns the merged groups in exactly the order a single-node GroupBy
// would emit them. Group-by partial rows always represent at least one
// source row, so no sentinel is needed.
type GroupMerger struct {
	keyCols []int
	specs   []PartialAggSpec
	groups  map[string]*mergeGroup
	order   []string
}

type mergeGroup struct {
	first  []storage.Value // the group's first-seen partial row (key passthrough)
	states []*mergeAggState
}

// NewGroupMerger builds a group-by partial merger. keyCols are the
// partial-row columns forming the group key; specs are in final
// output-column order (AggNone entries pass the key value through).
func NewGroupMerger(keyCols []int, specs []PartialAggSpec) *GroupMerger {
	return &GroupMerger{keyCols: keyCols, specs: specs, groups: map[string]*mergeGroup{}}
}

// Absorb folds one shard's partial group row in.
func (m *GroupMerger) Absorb(row []storage.Value) {
	var kb strings.Builder
	for _, c := range m.keyCols {
		kb.WriteString(row[c].String())
		kb.WriteByte('\x00')
	}
	gk := kb.String()
	g := m.groups[gk]
	if g == nil {
		g = &mergeGroup{first: row, states: make([]*mergeAggState, len(m.specs))}
		for i, s := range m.specs {
			g.states[i] = newMergeAggState(s)
		}
		m.groups[gk] = g
		m.order = append(m.order, gk)
	}
	for _, st := range g.states {
		if st.spec.Kind == sql.AggNone {
			continue
		}
		st.absorb(row)
	}
}

// Rows returns the merged groups in first-appearance order, one output
// row per group in spec order.
func (m *GroupMerger) Rows() [][]storage.Value {
	out := make([][]storage.Value, 0, len(m.order))
	for _, gk := range m.order {
		g := m.groups[gk]
		row := make([]storage.Value, len(g.states))
		for i, st := range g.states {
			if st.spec.Kind == sql.AggNone {
				row[i] = g.first[st.spec.Col]
			} else {
				row[i] = st.result()
			}
		}
		out = append(out, row)
	}
	return out
}
