package exec

import (
	"math"
	"math/rand"
	"testing"

	"nodb/internal/expr"
	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// fusedSpecs is Q1-shaped: four aggregates plus count(*).
func fusedSpecs() []AggSpec {
	return []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 0}},
		{Kind: sql.AggMin, Col: ColKey{0, 1}},
		{Kind: sql.AggMax, Col: ColKey{0, 1}},
		{Kind: sql.AggAvg, Col: ColKey{0, 0}},
		{Kind: sql.AggCount, Star: true},
	}
}

func valuesEqual(a, b storage.Value) bool {
	if a.Typ != b.Typ {
		return false
	}
	if a.Typ == schema.Float64 && math.IsNaN(a.F) && math.IsNaN(b.F) {
		return true
	}
	return a.Compare(b) == 0
}

// TestFusedMatchesTwoStep compares the hybrid operator against
// SelectDense + Aggregate across random data and predicates.
func TestFusedMatchesTwoStep(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		a1 := make([]int64, n)
		a2 := make([]int64, n)
		for i := range a1 {
			a1[i] = rng.Int63n(200)
			a2[i] = rng.Int63n(200)
		}
		src := mkSource(map[int][]int64{0: a1, 1: a2})
		var conj expr.Conjunction
		for p := 0; p < rng.Intn(3); p++ {
			conj.Preds = append(conj.Preds, expr.Pred{
				Col: rng.Intn(2), Op: expr.CmpOp(rng.Intn(4)),
				Val: storage.IntValue(rng.Int63n(200)),
			})
		}
		specs := fusedSpecs()

		fused, err := SelectAggregateDense(src, conj, specs)
		if err != nil {
			t.Fatal(err)
		}
		v, err := SelectDense(src, conj, []int{0, 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		twoStep, err := Aggregate(v, specs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specs {
			// Min/max over an empty selection are unset in both paths;
			// compare only when the two-step result is set.
			if !valuesEqual(fused[i], twoStep[i]) {
				t.Fatalf("trial %d spec %d: fused=%v twostep=%v (conj %s)",
					trial, i, fused[i], twoStep[i], conj.String())
			}
		}
	}
}

func TestFusedGenericPathFloats(t *testing.T) {
	src := DenseSource{NumRows: 4, Columns: map[int]*storage.DenseColumn{}}
	fc := storage.NewDense(schema.Float64, 4)
	fc.Floats = append(fc.Floats, 1.5, 2.5, 3.5, 4.5)
	ic := storage.NewDense(schema.Int64, 4)
	ic.Ints = append(ic.Ints, 1, 2, 3, 4)
	src.Columns[0] = fc
	src.Columns[1] = ic
	conj := expr.Conjunction{Preds: []expr.Pred{{Col: 1, Op: expr.Ge, Val: storage.IntValue(2)}}}
	specs := []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 0}},
		{Kind: sql.AggCount, Star: true},
	}
	out, err := SelectAggregateDense(src, conj, specs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].F != 10.5 || out[1].I != 3 {
		t.Errorf("float fused = %v", out)
	}
}

func TestFusedEmptySelection(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1, 2, 3}})
	conj := expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Gt, 100)}}
	out, err := SelectAggregateDense(src, conj, []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 0}},
		{Kind: sql.AggAvg, Col: ColKey{0, 0}},
		{Kind: sql.AggCount, Star: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != 0 || out[2].I != 0 {
		t.Errorf("empty fused = %v", out)
	}
	if !math.IsNaN(out[1].F) {
		t.Errorf("avg over empty = %v, want NaN", out[1])
	}
}

func TestFusedErrors(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1}})
	conj := expr.Conjunction{Preds: []expr.Pred{intPred(9, expr.Gt, 0)}}
	if _, err := SelectAggregateDense(src, conj, fusedSpecs()); err == nil {
		t.Error("missing predicate column should error")
	}
	if _, err := SelectAggregateDense(src, expr.Conjunction{}, []AggSpec{{Kind: sql.AggSum, Col: ColKey{0, 9}}}); err == nil {
		t.Error("missing aggregate column should error")
	}
}

func BenchmarkFusedAggregate1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1_000_000
	a1 := make([]int64, n)
	a2 := make([]int64, n)
	for i := range a1 {
		a1[i] = rng.Int63n(int64(n))
		a2[i] = rng.Int63n(int64(n))
	}
	src := mkSource(map[int][]int64{0: a1, 1: a2})
	conj := expr.Conjunction{Preds: []expr.Pred{
		intPred(0, expr.Gt, 100_000), intPred(0, expr.Lt, 200_000),
	}}
	specs := []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 0}},
		{Kind: sql.AggAvg, Col: ColKey{0, 1}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectAggregateDense(src, conj, specs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStepAggregate1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1_000_000
	a1 := make([]int64, n)
	a2 := make([]int64, n)
	for i := range a1 {
		a1[i] = rng.Int63n(int64(n))
		a2[i] = rng.Int63n(int64(n))
	}
	src := mkSource(map[int][]int64{0: a1, 1: a2})
	conj := expr.Conjunction{Preds: []expr.Pred{
		intPred(0, expr.Gt, 100_000), intPred(0, expr.Lt, 200_000),
	}}
	specs := []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 0}},
		{Kind: sql.AggAvg, Col: ColKey{0, 1}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := SelectDense(src, conj, []int{0, 1}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Aggregate(v, specs); err != nil {
			b.Fatal(err)
		}
	}
}
