package exec

import (
	"fmt"
)

// HashJoinOp joins two operator subtrees on lkey = rkey. Both sides are
// materialized and handed to the same HashJoin the row-at-a-time path
// uses — build-side choice (smaller input) and output order (probe order,
// matches in build-insertion order) are therefore identical, which the
// differential tests rely on. The joined view is re-emitted as zero-copy
// windows carrying every column of both inputs.
type HashJoinOp struct {
	opBase
	left, right Operator
	lkey, rkey  ColKey
	size        int
	joined      *ViewScan
	done        bool
}

func NewHashJoinOp(left, right Operator, lkey, rkey ColKey, batchSize int) *HashJoinOp {
	return &HashJoinOp{left: left, right: right, lkey: lkey, rkey: rkey, size: batchSize}
}

func (j *HashJoinOp) Name() string {
	return fmt.Sprintf("HashJoin(%v=%v)", j.lkey, j.rkey)
}
func (j *HashJoinOp) Children() []Operator { return []Operator{j.left, j.right} }
func (j *HashJoinOp) Close()               { j.left.Close(); j.right.Close() }

func (j *HashJoinOp) Next() (*Batch, error) {
	if j.done {
		return nil, nil
	}
	if j.joined == nil {
		lv, err := DrainView(j.left)
		if err != nil {
			return nil, err
		}
		rv, err := DrainView(j.right)
		if err != nil {
			return nil, err
		}
		// A side whose stream produced no batches has no columns at all
		// (filters absorb empty batches); the join output is empty.
		if len(lv.Cols) == 0 || len(rv.Cols) == 0 {
			j.done = true
			return nil, nil
		}
		out, err := HashJoin(lv, rv, j.lkey, j.rkey)
		if err != nil {
			return nil, err
		}
		j.joined = NewViewScan(out, j.size)
	}
	b, err := j.joined.Next()
	if err != nil || b == nil {
		j.done = b == nil && err == nil
		return nil, err
	}
	return j.observe(b), nil
}
