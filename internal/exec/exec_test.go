package exec

import (
	"math"
	"math/rand"
	"testing"

	"nodb/internal/cracking"
	"nodb/internal/expr"
	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// mkSource builds a dense source from int columns.
func mkSource(cols map[int][]int64) DenseSource {
	src := DenseSource{Columns: map[int]*storage.DenseColumn{}}
	for idx, vals := range cols {
		c := storage.NewDense(schema.Int64, len(vals))
		c.Ints = append(c.Ints, vals...)
		src.Columns[idx] = c
		src.NumRows = int64(len(vals))
	}
	return src
}

func intPred(col int, op expr.CmpOp, v int64) expr.Pred {
	return expr.Pred{Col: col, Op: op, Val: storage.IntValue(v)}
}

func TestSelectDense(t *testing.T) {
	src := mkSource(map[int][]int64{
		0: {5, 15, 25, 35, 45},
		1: {1, 2, 3, 4, 5},
	})
	conj := expr.Conjunction{Preds: []expr.Pred{
		intPred(0, expr.Gt, 10),
		intPred(0, expr.Lt, 40),
	}}
	v, err := SelectDense(src, conj, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	wantRows := []int64{1, 2, 3}
	for i, r := range wantRows {
		if v.Rows[i] != r {
			t.Errorf("row %d = %d, want %d", i, v.Rows[i], r)
		}
	}
	c1 := v.Col(ColKey{0, 1})
	if c1.Ints[0] != 2 || c1.Ints[2] != 4 {
		t.Errorf("col 1 values = %v", c1.Ints)
	}
}

func TestSelectDenseNoPredicates(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1, 2, 3}})
	v, err := SelectDense(src, expr.Conjunction{}, []int{0}, 0)
	if err != nil || v.Len() != 3 {
		t.Fatalf("full select: %v len=%d", err, v.Len())
	}
}

func TestSelectDenseMissingColumn(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1}})
	if _, err := SelectDense(src, expr.Conjunction{Preds: []expr.Pred{intPred(5, expr.Gt, 0)}}, []int{0}, 0); err == nil {
		t.Error("missing predicate column should error")
	}
	if _, err := SelectDense(src, expr.Conjunction{}, []int{9}, 0); err == nil {
		t.Error("missing needed column should error")
	}
}

func TestSelectDenseMixedTypesSlowPath(t *testing.T) {
	src := DenseSource{NumRows: 3, Columns: map[int]*storage.DenseColumn{}}
	fc := storage.NewDense(schema.Float64, 3)
	fc.Floats = append(fc.Floats, 1.5, 2.5, 3.5)
	src.Columns[0] = fc
	conj := expr.Conjunction{Preds: []expr.Pred{{Col: 0, Op: expr.Gt, Val: storage.FloatValue(2.0)}}}
	v, err := SelectDense(src, conj, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("float select Len = %d, want 2", v.Len())
	}
}

func TestFilterView(t *testing.T) {
	src := mkSource(map[int][]int64{0: {10, 20, 30}, 1: {1, 2, 3}})
	v, _ := SelectDense(src, expr.Conjunction{}, []int{0, 1}, 0)
	f := FilterView(v, expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Ge, 20)}}, 0)
	if f.Len() != 2 {
		t.Fatalf("filtered Len = %d, want 2", f.Len())
	}
	if f.Rows[0] != 1 || f.Col(ColKey{0, 1}).Ints[0] != 2 {
		t.Error("filter misaligned")
	}
	// Empty conjunction returns the view unchanged.
	if FilterView(v, expr.Conjunction{}, 0) != v {
		t.Error("empty filter should be identity")
	}
}

func TestAggregate(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1, 2, 3, 4}, 1: {10, 20, 30, 40}})
	v, _ := SelectDense(src, expr.Conjunction{}, []int{0, 1}, 0)
	specs := []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 0}},
		{Kind: sql.AggMin, Col: ColKey{0, 1}},
		{Kind: sql.AggMax, Col: ColKey{0, 1}},
		{Kind: sql.AggAvg, Col: ColKey{0, 0}},
		{Kind: sql.AggCount, Star: true},
	}
	got, err := Aggregate(v, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I != 10 {
		t.Errorf("sum = %v", got[0])
	}
	if got[1].I != 10 || got[2].I != 40 {
		t.Errorf("min/max = %v/%v", got[1], got[2])
	}
	if got[3].F != 2.5 {
		t.Errorf("avg = %v", got[3])
	}
	if got[4].I != 4 {
		t.Errorf("count = %v", got[4])
	}
}

func TestAggregateEmptyView(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1, 2}})
	v, _ := SelectDense(src, expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Gt, 100)}}, []int{0}, 0)
	got, err := Aggregate(v, []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 0}},
		{Kind: sql.AggCount, Star: true},
		{Kind: sql.AggAvg, Col: ColKey{0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I != 0 || got[1].I != 0 {
		t.Errorf("empty aggregates = %v", got)
	}
	if !math.IsNaN(got[2].F) {
		t.Errorf("avg over empty should be NaN, got %v", got[2])
	}
}

func TestAggregateFloatColumn(t *testing.T) {
	src := DenseSource{NumRows: 2, Columns: map[int]*storage.DenseColumn{}}
	fc := storage.NewDense(schema.Float64, 2)
	fc.Floats = append(fc.Floats, 1.5, 2.5)
	src.Columns[0] = fc
	v, _ := SelectDense(src, expr.Conjunction{}, []int{0}, 0)
	got, err := Aggregate(v, []AggSpec{{Kind: sql.AggSum, Col: ColKey{0, 0}}})
	if err != nil || got[0].F != 4.0 {
		t.Errorf("float sum = %v, %v", got, err)
	}
}

func TestGroupBy(t *testing.T) {
	src := mkSource(map[int][]int64{
		0: {1, 2, 1, 2, 1}, // key
		1: {10, 20, 30, 40, 50},
	})
	v, _ := SelectDense(src, expr.Conjunction{}, []int{0, 1}, 0)
	rows, err := GroupBy(v, []ColKey{{0, 0}}, []AggSpec{
		{Kind: sql.AggSum, Col: ColKey{0, 1}},
		{Kind: sql.AggCount, Star: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(rows))
	}
	// First-appearance order: key 1 first.
	if rows[0][0].I != 1 || rows[0][1].I != 90 || rows[0][2].I != 3 {
		t.Errorf("group 1 = %v", rows[0])
	}
	if rows[1][0].I != 2 || rows[1][1].I != 60 || rows[1][2].I != 2 {
		t.Errorf("group 2 = %v", rows[1])
	}
}

func TestSortAndLimit(t *testing.T) {
	rows := [][]storage.Value{
		{storage.IntValue(3), storage.IntValue(1)},
		{storage.IntValue(1), storage.IntValue(2)},
		{storage.IntValue(2), storage.IntValue(3)},
	}
	SortRows(rows, []SortKey{{Index: 0}})
	if rows[0][0].I != 1 || rows[2][0].I != 3 {
		t.Errorf("asc sort: %v", rows)
	}
	SortRows(rows, []SortKey{{Index: 0, Desc: true}})
	if rows[0][0].I != 3 {
		t.Errorf("desc sort: %v", rows)
	}
	lim := LimitRows(rows, 2)
	if len(lim) != 2 {
		t.Errorf("limit: %d", len(lim))
	}
	if len(LimitRows(rows, -1)) != 3 || len(LimitRows(rows, 10)) != 3 {
		t.Error("limit edge cases")
	}
}

func TestSortStableMultiKey(t *testing.T) {
	rows := [][]storage.Value{
		{storage.IntValue(1), storage.IntValue(9)},
		{storage.IntValue(1), storage.IntValue(3)},
		{storage.IntValue(0), storage.IntValue(5)},
	}
	SortRows(rows, []SortKey{{Index: 0}, {Index: 1}})
	if rows[0][1].I != 5 || rows[1][1].I != 3 || rows[2][1].I != 9 {
		t.Errorf("multi-key sort: %v", rows)
	}
}

func TestProjectRows(t *testing.T) {
	src := mkSource(map[int][]int64{0: {7, 8}, 1: {70, 80}})
	v, _ := SelectDense(src, expr.Conjunction{}, []int{0, 1}, 0)
	rows := ProjectRows(v, []ColKey{{0, 1}, {0, 0}})
	if len(rows) != 2 || rows[0][0].I != 70 || rows[0][1].I != 7 {
		t.Errorf("project = %v", rows)
	}
}

func mkView(tab int, cols map[int][]int64) *View {
	v := NewView()
	n := 0
	for idx, vals := range cols {
		c := storage.NewDense(schema.Int64, len(vals))
		c.Ints = append(c.Ints, vals...)
		v.AddCol(ColKey{tab, idx}, c)
		n = len(vals)
	}
	v.Rows = make([]int64, n)
	for i := range v.Rows {
		v.Rows[i] = int64(i)
	}
	return v
}

func TestHashJoin(t *testing.T) {
	left := mkView(0, map[int][]int64{0: {1, 2, 3}, 1: {10, 20, 30}})
	right := mkView(1, map[int][]int64{0: {2, 3, 4}, 1: {200, 300, 400}})
	out, err := HashJoin(left, right, ColKey{0, 0}, ColKey{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("join Len = %d, want 2", out.Len())
	}
	// Verify alignment: rows (2,20,2,200) and (3,30,3,300) in some order.
	seen := map[int64]int64{}
	for i := 0; i < out.Len(); i++ {
		k := out.Value(ColKey{0, 0}, i).I
		seen[k] = out.Value(ColKey{1, 1}, i).I
		if out.Value(ColKey{0, 1}, i).I != k*10 {
			t.Errorf("left payload misaligned at %d", i)
		}
	}
	if seen[2] != 200 || seen[3] != 300 {
		t.Errorf("join result = %v", seen)
	}
}

func TestHashJoinDuplicates(t *testing.T) {
	left := mkView(0, map[int][]int64{0: {1, 1, 2}})
	right := mkView(1, map[int][]int64{0: {1, 1}})
	out, err := HashJoin(left, right, ColKey{0, 0}, ColKey{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // 2x2 cross product of the 1-runs
		t.Errorf("dup join Len = %d, want 4", out.Len())
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	lvals := make([]int64, n)
	rvals := make([]int64, n)
	for i := range lvals {
		lvals[i] = rng.Int63n(200)
		rvals[i] = rng.Int63n(200)
	}
	left := mkView(0, map[int][]int64{0: lvals})
	right := mkView(1, map[int][]int64{0: rvals})

	h, err := HashJoin(left, right, ColKey{0, 0}, ColKey{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeJoin(left, right, ColKey{0, 0}, ColKey{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != m.Len() {
		t.Fatalf("hash=%d merge=%d", h.Len(), m.Len())
	}
	// Same multiset of key values.
	count := func(v *View) map[int64]int {
		c := map[int64]int{}
		col := v.Col(ColKey{0, 0})
		for _, x := range col.Ints {
			c[x]++
		}
		return c
	}
	hc, mc := count(h), count(m)
	for k, v := range hc {
		if mc[k] != v {
			t.Fatalf("key %d: hash=%d merge=%d", k, v, mc[k])
		}
	}
}

func TestJoinErrors(t *testing.T) {
	left := mkView(0, map[int][]int64{0: {1}})
	right := mkView(1, map[int][]int64{0: {1}})
	if _, err := HashJoin(left, right, ColKey{0, 9}, ColKey{1, 0}); err == nil {
		t.Error("bad left key should error")
	}
	if _, err := MergeJoin(left, right, ColKey{0, 0}, ColKey{1, 9}); err == nil {
		t.Error("bad right key should error")
	}
}

func TestSelectCracked(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 2000
	a1 := make([]int64, n)
	a2 := make([]int64, n)
	for i := range a1 {
		a1[i] = rng.Int63n(1000)
		a2[i] = rng.Int63n(1000)
	}
	src := mkSource(map[int][]int64{0: a1, 1: a2})
	crackers := map[int]*cracking.Cracker{0: cracking.New(a1)}
	conj := expr.Conjunction{Preds: []expr.Pred{
		intPred(0, expr.Ge, 100), intPred(0, expr.Lt, 300),
		intPred(1, expr.Ge, 200), intPred(1, expr.Lt, 800),
	}}
	want, err := SelectDense(src, conj, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectCracked(src, crackers, conj, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("cracked=%d dense=%d", got.Len(), want.Len())
	}
	for i := range got.Rows {
		if got.Rows[i] != want.Rows[i] {
			t.Fatalf("row %d: cracked=%d dense=%d", i, got.Rows[i], want.Rows[i])
		}
	}
	// Repeating the query must give identical results (cracker mutated).
	got2, err := SelectCracked(src, crackers, conj, []int{0, 1}, 0)
	if err != nil || got2.Len() != want.Len() {
		t.Fatalf("repeat cracked select: %v len=%d", err, got2.Len())
	}
}

func TestSelectCrackedNoCracker(t *testing.T) {
	src := mkSource(map[int][]int64{0: {1, 2}})
	conj := expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Gt, 0)}}
	if _, err := SelectCracked(src, nil, conj, []int{0}, 0); err == nil {
		t.Error("no cracker should error")
	}
	if _, err := SelectCracked(src, nil, expr.Conjunction{}, []int{0}, 0); err == nil {
		t.Error("empty conjunction should error")
	}
}

func TestViewMemSize(t *testing.T) {
	v := mkView(0, map[int][]int64{0: {1, 2, 3}})
	if v.MemSize() <= 0 {
		t.Error("MemSize should be positive")
	}
}

func BenchmarkSelectDense1M(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1_000_000
	a1 := make([]int64, n)
	a2 := make([]int64, n)
	for i := range a1 {
		a1[i] = rng.Int63n(int64(n))
		a2[i] = rng.Int63n(int64(n))
	}
	src := mkSource(map[int][]int64{0: a1, 1: a2})
	conj := expr.Conjunction{Preds: []expr.Pred{
		intPred(0, expr.Gt, 100_000), intPred(0, expr.Lt, 200_000),
		intPred(1, expr.Gt, 0), intPred(1, expr.Lt, 900_000),
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := SelectDense(src, conj, []int{0, 1}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Aggregate(v, []AggSpec{{Kind: sql.AggSum, Col: ColKey{0, 0}}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin100k(b *testing.B) {
	n := 100_000
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	left := mkView(0, map[int][]int64{0: keys})
	right := mkView(1, map[int][]int64{0: keys})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HashJoin(left, right, ColKey{0, 0}, ColKey{1, 0}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGroupByStringKeys(t *testing.T) {
	v := NewView()
	keys := storage.NewDense(schema.String, 0)
	vals := storage.NewDense(schema.Int64, 0)
	for _, r := range []struct {
		k string
		v int64
	}{{"red", 1}, {"blue", 2}, {"red", 3}, {"blue", 4}, {"green", 5}} {
		keys.Append(storage.StringValue(r.k))
		vals.Append(storage.IntValue(r.v))
	}
	v.AddCol(ColKey{0, 0}, keys)
	v.AddCol(ColKey{0, 1}, vals)
	v.Rows = []int64{0, 1, 2, 3, 4}

	rows, err := GroupBy(v, []ColKey{{0, 0}}, []AggSpec{{Kind: sql.AggSum, Col: ColKey{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range rows {
		got[r[0].S] = r[1].I
	}
	if got["red"] != 4 || got["blue"] != 6 || got["green"] != 5 {
		t.Errorf("string group by = %v", got)
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	src := mkSource(map[int][]int64{
		0: {1, 1, 2, 2, 1},
		1: {0, 0, 0, 1, 1},
		2: {10, 20, 30, 40, 50},
	})
	v, _ := SelectDense(src, expr.Conjunction{}, []int{0, 1, 2}, 0)
	rows, err := GroupBy(v, []ColKey{{0, 0}, {0, 1}}, []AggSpec{{Kind: sql.AggSum, Col: ColKey{0, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // (1,0) (2,0) (2,1) (1,1)
		t.Fatalf("groups = %d, want 4", len(rows))
	}
	// (1,0) → 10+20 = 30.
	if rows[0][0].I != 1 || rows[0][1].I != 0 || rows[0][2].I != 30 {
		t.Errorf("group (1,0) = %v", rows[0])
	}
}

func TestHashJoinStringKeys(t *testing.T) {
	mk := func(tab int, keys []string) *View {
		v := NewView()
		c := storage.NewDense(schema.String, 0)
		for _, k := range keys {
			c.Append(storage.StringValue(k))
		}
		v.AddCol(ColKey{tab, 0}, c)
		v.Rows = make([]int64, len(keys))
		return v
	}
	l := mk(0, []string{"a", "b", "c"})
	r := mk(1, []string{"b", "c", "d"})
	out, err := HashJoin(l, r, ColKey{0, 0}, ColKey{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("string join Len = %d, want 2", out.Len())
	}
}

func TestFilterViewNoRows(t *testing.T) {
	v := NewView()
	c := storage.NewDense(schema.Int64, 0)
	c.Ints = append(c.Ints, 1, 2, 3)
	v.AddCol(ColKey{0, 0}, c) // Rows nil (post-join shape)
	f := FilterView(v, expr.Conjunction{Preds: []expr.Pred{intPred(0, expr.Ge, 2)}}, 0)
	if f.Len() != 2 || f.Rows != nil {
		t.Errorf("rowless filter: len=%d rows=%v", f.Len(), f.Rows)
	}
}
