package exec

import (
	"fmt"

	"nodb/internal/expr"
	"nodb/internal/storage"
)

// DenseScan emits zero-copy windows over a fully loaded table's dense
// columns. Nothing is copied: each batch's vectors are subslices of the
// store's columns, so a full-table scan allocates one small Batch header
// per ~1024 rows.
type DenseScan struct {
	opBase
	src  DenseSource
	tab  int
	cols []int
	size int
	pos  int64
}

// NewDenseScan builds a scan of cols (attribute indices) from src under
// table ordinal tab.
func NewDenseScan(src DenseSource, tab int, cols []int, batchSize int) (*DenseScan, error) {
	for _, c := range cols {
		if src.Columns[c] == nil {
			return nil, fmt.Errorf("exec: scan column %d not loaded", c)
		}
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &DenseScan{src: src, tab: tab, cols: cols, size: batchSize}, nil
}

func (s *DenseScan) Name() string {
	return fmt.Sprintf("DenseScan(t%d cols=%v)", s.tab, s.cols)
}
func (s *DenseScan) Children() []Operator { return nil }
func (s *DenseScan) Close()               {}

func (s *DenseScan) Next() (*Batch, error) {
	if s.pos >= s.src.NumRows {
		return nil, nil
	}
	lo := s.pos
	hi := lo + int64(s.size)
	if hi > s.src.NumRows {
		hi = s.src.NumRows
	}
	s.pos = hi
	out := &Batch{N: int(hi - lo), Cols: newColMap(len(s.cols))}
	for _, c := range s.cols {
		out.Cols[ColKey{Tab: s.tab, Col: c}] = window(s.src.Columns[c], int(lo), int(hi))
	}
	s.src.countScanBytes(s.cols, hi-lo)
	return s.observe(out), nil
}

// ViewScan emits windows over an already-materialized View (partial loads,
// cached regions, adaptive-store results). Column keys pass through
// unchanged.
type ViewScan struct {
	opBase
	v    *View
	size int
	pos  int
}

func NewViewScan(v *View, batchSize int) *ViewScan {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &ViewScan{v: v, size: batchSize}
}

func (s *ViewScan) Name() string         { return fmt.Sprintf("ViewScan(rows=%d)", s.v.Len()) }
func (s *ViewScan) Children() []Operator { return nil }
func (s *ViewScan) Close()               {}

func (s *ViewScan) Next() (*Batch, error) {
	n := s.v.Len()
	if s.pos >= n {
		return nil, nil
	}
	lo := s.pos
	hi := lo + s.size
	if hi > n {
		hi = n
	}
	s.pos = hi
	b := &Batch{N: hi - lo, Cols: newColMap(len(s.v.Cols))}
	for k, c := range s.v.Cols {
		b.Cols[k] = window(c, lo, hi)
	}
	return s.observe(b), nil
}

// FilterOp refines each batch's selection vector by a conjunction over
// table tab's columns. Survivor positions are recorded in Sel — values
// never move. Batches left with zero survivors are absorbed, not emitted.
type FilterOp struct {
	opBase
	child Operator
	tab   int
	conj  expr.Conjunction
}

func NewFilterOp(child Operator, tab int, conj expr.Conjunction) *FilterOp {
	return &FilterOp{child: child, tab: tab, conj: conj}
}

func (f *FilterOp) Name() string {
	return fmt.Sprintf("Filter(t%d %d preds)", f.tab, len(f.conj.Preds))
}
func (f *FilterOp) Children() []Operator { return []Operator{f.child} }
func (f *FilterOp) Close()               { f.child.Close() }

func (f *FilterOp) Next() (*Batch, error) {
	for {
		b, err := f.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		for _, p := range f.conj.Preds {
			if b.Cols[ColKey{Tab: f.tab, Col: p.Col}] == nil {
				return nil, fmt.Errorf("exec: predicate column %d not in batch", p.Col)
			}
		}
		sel := b.Sel
		dense := sel == nil
		if dense {
			// A fresh selection vector per batch: downstream operators may
			// buffer batches (join build, sort), so scratch reuse would alias.
			sel = make([]int32, b.N)
			for i := range sel {
				sel[i] = int32(i)
			}
		}
		b.Sel = f.conj.FilterBatch(func(col int) *storage.DenseColumn {
			return b.Cols[ColKey{Tab: f.tab, Col: col}]
		}, sel)
		if len(b.Sel) == 0 {
			continue
		}
		if dense && len(b.Sel) == b.N {
			// Every row survived a dense batch: restore Sel = nil so
			// downstream loops run without the indirection.
			b.Sel = nil
		}
		return f.observe(b), nil
	}
}

// ProjectOp reshapes batches to the select list: output position i aliases
// the source column keys[i] under OutKey(i). Zero-copy — vectors and the
// selection vector pass through.
type ProjectOp struct {
	opBase
	child Operator
	keys  []ColKey
}

func NewProjectOp(child Operator, keys []ColKey) *ProjectOp {
	return &ProjectOp{child: child, keys: keys}
}

func (p *ProjectOp) Name() string         { return fmt.Sprintf("Project(%v)", p.keys) }
func (p *ProjectOp) Children() []Operator { return []Operator{p.child} }
func (p *ProjectOp) Close()               { p.child.Close() }

func (p *ProjectOp) Next() (*Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	out := &Batch{N: b.N, Sel: b.Sel, Cols: newColMap(len(p.keys))}
	for i, k := range p.keys {
		c := b.Cols[k]
		if c == nil {
			return nil, fmt.Errorf("exec: projected column %v not in batch", k)
		}
		out.Cols[OutKey(i)] = c
	}
	return p.observe(out), nil
}

// LimitOp truncates the stream after n live rows and closes its child so
// upstream producers (raw-file scans) stop early. n < 0 means no limit.
type LimitOp struct {
	opBase
	child     Operator
	remaining int
	unlimited bool
	done      bool
}

func NewLimitOp(child Operator, n int) *LimitOp {
	return &LimitOp{child: child, remaining: n, unlimited: n < 0}
}

func (l *LimitOp) Name() string {
	if l.unlimited {
		return "Limit(none)"
	}
	return fmt.Sprintf("Limit(%d)", l.remaining)
}
func (l *LimitOp) Children() []Operator { return []Operator{l.child} }
func (l *LimitOp) Close()               { l.child.Close() }

func (l *LimitOp) Next() (*Batch, error) {
	if l.done {
		return nil, nil
	}
	if !l.unlimited && l.remaining == 0 {
		l.done = true
		l.child.Close()
		return nil, nil
	}
	b, err := l.child.Next()
	if err != nil || b == nil {
		l.done = b == nil && err == nil
		return nil, err
	}
	if l.unlimited {
		return l.observe(b), nil
	}
	if r := b.Rows(); r >= l.remaining {
		if b.Sel != nil {
			b.Sel = b.Sel[:l.remaining]
		} else if b.N > l.remaining {
			// Truncating a dense batch needs an explicit selection: vectors
			// are shared windows and must not be re-sliced in place.
			sel := make([]int32, l.remaining)
			for i := range sel {
				sel[i] = int32(i)
			}
			b.Sel = sel
		}
		l.remaining = 0
		l.done = true
		l.child.Close()
		return l.observe(b), nil
	} else {
		l.remaining -= r
	}
	return l.observe(b), nil
}
