package exec

import (
	"fmt"
	"math"

	"nodb/internal/expr"
	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// SelectAggregateDense is a hybrid operator in the sense of the paper's
// §5.2.2: "when we need to compute an aggregation over three attributes, a
// new operator that in one go computes the total aggregation would provide
// the best result". It fuses selection and aggregation over dense columns
// into a single pass — no selection vector, no materialized view — and
// runs a fully unboxed loop when every predicate and aggregate column is
// int64.
//
// It computes exactly what SelectDense followed by Aggregate would.
func SelectAggregateDense(src DenseSource, conj expr.Conjunction, specs []AggSpec) ([]storage.Value, error) {
	for _, p := range conj.Preds {
		if src.Columns[p.Col] == nil {
			return nil, fmt.Errorf("exec: predicate column %d not loaded", p.Col)
		}
	}
	for _, s := range specs {
		if !s.Star && src.Columns[s.Col.Col] == nil {
			return nil, fmt.Errorf("exec: aggregate column %d not loaded", s.Col.Col)
		}
	}
	src.countScanBytes(conj.Columns(), src.NumRows)
	// Aggregate columns are touched only for qualifying rows; the paths
	// below charge them after the pass using the qualifying count.
	if out, ok, err := fusedIntPath(src, conj, specs); ok {
		return out, err
	}
	return fusedGenericPath(src, conj, specs)
}

// fusedIntPath runs the unboxed loop when everything involved is int64.
func fusedIntPath(src DenseSource, conj expr.Conjunction, specs []AggSpec) ([]storage.Value, bool, error) {
	fast, ok := intOnlyPreds(conj, src)
	if !ok {
		return nil, false, nil
	}
	type intAgg struct {
		kind sql.AggKind
		col  []int64 // nil for count(*)
		sum  int64
		min  int64
		max  int64
	}
	aggs := make([]intAgg, len(specs))
	for i, s := range specs {
		a := intAgg{kind: s.Kind, min: math.MaxInt64, max: math.MinInt64}
		if !s.Star {
			c := src.Columns[s.Col.Col]
			if c.Typ != schema.Int64 {
				return nil, false, nil
			}
			a.col = c.Ints
		} else if s.Kind != sql.AggCount {
			return nil, false, nil
		}
		aggs[i] = a
	}

	n := int(src.NumRows)
	var count int64
	for i := 0; i < n; i++ {
		if !fast.eval(i) {
			continue
		}
		count++
		for k := range aggs {
			a := &aggs[k]
			if a.col == nil {
				continue
			}
			v := a.col[i]
			switch a.kind {
			case sql.AggSum, sql.AggAvg:
				a.sum += v
			case sql.AggMin:
				if v < a.min {
					a.min = v
				}
			case sql.AggMax:
				if v > a.max {
					a.max = v
				}
			}
		}
	}
	if src.Counters != nil {
		src.Counters.AddInternalBytesRead(count * int64(len(aggs)) * 8)
	}

	out := make([]storage.Value, len(specs))
	for i := range aggs {
		a := &aggs[i]
		switch a.kind {
		case sql.AggCount:
			out[i] = storage.IntValue(count)
		case sql.AggSum:
			out[i] = storage.IntValue(a.sum)
		case sql.AggAvg:
			if count == 0 {
				out[i] = storage.FloatValue(math.NaN())
			} else {
				out[i] = storage.FloatValue(float64(a.sum) / float64(count))
			}
		case sql.AggMin:
			if count > 0 {
				out[i] = storage.IntValue(a.min)
			}
		case sql.AggMax:
			if count > 0 {
				out[i] = storage.IntValue(a.max)
			}
		default:
			return nil, false, fmt.Errorf("exec: unsupported aggregate %v", a.kind)
		}
	}
	return out, true, nil
}

// fusedGenericPath handles mixed types with boxed values, still in one
// pass without materialization.
func fusedGenericPath(src DenseSource, conj expr.Conjunction, specs []AggSpec) ([]storage.Value, error) {
	states := make([]*aggState, len(specs))
	for i, s := range specs {
		typ := schema.Int64
		if !s.Star {
			typ = src.Columns[s.Col.Col].Typ
		}
		states[i] = newAggState(s, typ)
	}
	n := int(src.NumRows)
	var count int64
	for i := 0; i < n; i++ {
		ok := conj.EvalRow(func(col int) storage.Value {
			return src.Columns[col].Value(i)
		})
		if !ok {
			continue
		}
		count++
		for _, st := range states {
			if st.spec.Star {
				st.count++
				continue
			}
			st.add(src.Columns[st.spec.Col.Col].Value(i))
		}
	}
	if src.Counters != nil {
		var aggCols int64
		for _, s := range specs {
			if !s.Star {
				aggCols++
			}
		}
		src.Counters.AddInternalBytesRead(count * aggCols * 8)
	}
	out := make([]storage.Value, len(states))
	for i, st := range states {
		out[i] = st.result()
	}
	return out, nil
}
