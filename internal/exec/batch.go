package exec

import (
	"fmt"
	"strings"

	"nodb/internal/schema"
	"nodb/internal/storage"
)

// This file defines the vectorized execution core: a pull-based pipeline
// of operators exchanging column-oriented Batches of ~1024 rows. Scans
// emit zero-copy windows into dense columns; filters refine a selection
// vector without moving values; only operators that must regroup rows
// (joins, sorts, group-bys) materialize. The row-at-a-time path the
// pipeline replaced survives behind Options.DisableVectorExec as the
// differential-testing oracle.

// DefaultBatchSize is the target rows per Batch. Large enough to amortize
// per-batch overhead (virtual calls, map lookups, allocation) over ~1k
// rows, small enough that a batch's working set stays cache-resident.
const DefaultBatchSize = 1024

// OutTab is the pseudo table ordinal of select-list output columns: once a
// projection/aggregation shapes the result, columns are keyed OutKey(i)
// for select-list position i, and downstream operators (sort, limit) plus
// the cursor drain are source-agnostic.
const OutTab = -1

// OutKey returns the ColKey of select-list output position i.
func OutKey(i int) ColKey { return ColKey{Tab: OutTab, Col: i} }

// Batch is a column-oriented packet of rows flowing between operators.
// The vectors hold N positions; Sel, when non-nil, lists the positions
// that are still alive (ascending). Filters shrink Sel instead of copying
// survivors — the batch's vectors are immutable windows shared with
// upstream operators and must never be written through.
type Batch struct {
	N    int
	Sel  []int32
	Cols map[ColKey]*storage.DenseColumn
}

// Rows returns the number of live rows.
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Col returns the column vector for key, or nil.
func (b *Batch) Col(k ColKey) *storage.DenseColumn { return b.Cols[k] }

// OpStats counts what one operator emitted.
type OpStats struct {
	Batches int64
	Rows    int64
}

// Operator is one node of the vectorized pipeline. Next returns the next
// batch, or (nil, nil) at end of stream; batches never have zero live
// rows. Close releases resources early (a limit cutting off a raw scan);
// it must be idempotent. Stats reports batches/rows emitted so far —
// Explain renders them per node after execution.
type Operator interface {
	Name() string
	Children() []Operator
	Next() (*Batch, error)
	Close()
	Stats() OpStats
}

// opBase carries emission counters for operators to embed.
type opBase struct {
	stats OpStats
}

func (o *opBase) Stats() OpStats { return o.stats }

func (o *opBase) observe(b *Batch) *Batch {
	if b != nil {
		o.stats.Batches++
		o.stats.Rows += int64(b.Rows())
	}
	return b
}

// ExplainTree renders the operator tree with per-operator batch/row
// counters, one node per line, children indented under parents.
func ExplainTree(root Operator) string {
	var sb strings.Builder
	var walk func(op Operator, depth int)
	walk = func(op Operator, depth int) {
		st := op.Stats()
		fmt.Fprintf(&sb, "%s%s  (batches=%d rows=%d)\n",
			strings.Repeat("  ", depth), op.Name(), st.Batches, st.Rows)
		for _, c := range op.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return sb.String()
}

func newColMap(n int) map[ColKey]*storage.DenseColumn {
	return make(map[ColKey]*storage.DenseColumn, n)
}

// window returns a zero-copy view of col's positions [lo, hi).
func window(col *storage.DenseColumn, lo, hi int) *storage.DenseColumn {
	w := &storage.DenseColumn{Typ: col.Typ}
	switch col.Typ {
	case schema.Int64:
		w.Ints = col.Ints[lo:hi]
	case schema.Float64:
		w.Floats = col.Floats[lo:hi]
	default:
		w.Strs = col.Strs[lo:hi]
	}
	return w
}

// appendSelected appends the live positions of src (per sel) to dst.
func appendSelected(dst, src *storage.DenseColumn, n int, sel []int32) {
	switch src.Typ {
	case schema.Int64:
		if sel == nil {
			dst.Ints = append(dst.Ints, src.Ints[:n]...)
			return
		}
		for _, i := range sel {
			dst.Ints = append(dst.Ints, src.Ints[i])
		}
	case schema.Float64:
		if sel == nil {
			dst.Floats = append(dst.Floats, src.Floats[:n]...)
			return
		}
		for _, i := range sel {
			dst.Floats = append(dst.Floats, src.Floats[i])
		}
	default:
		if sel == nil {
			dst.Strs = append(dst.Strs, src.Strs[:n]...)
			return
		}
		for _, i := range sel {
			dst.Strs = append(dst.Strs, src.Strs[i])
		}
	}
}

// DrainView pulls op to exhaustion and compacts every batch into a single
// View (selection vectors applied). Join builds and materializing
// operators use it.
func DrainView(op Operator) (*View, error) {
	v := NewView()
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return v, nil
		}
		for k, c := range b.Cols {
			dst := v.Cols[k]
			if dst == nil {
				dst = storage.NewDense(c.Typ, b.Rows())
				v.AddCol(k, dst)
			}
			appendSelected(dst, c, b.N, b.Sel)
		}
	}
}
