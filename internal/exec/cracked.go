package exec

import (
	"fmt"
	"sort"

	"nodb/internal/cracking"
	"nodb/internal/expr"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// SelectCracked evaluates the conjunction using a cracker column for the
// driving predicate column and dense lookups for the residual predicates
// (tuple reconstruction). This is the paper's "Index DB" execution path:
// selections physically reorganize the cracker as a side effect, so
// repeated range queries over the same region get faster.
//
// crackers maps attribute index → cracker; the driving column is the
// predicate column with a cracker whose implied range is narrowest. All
// predicate and needed columns must be dense in src.
func SelectCracked(src DenseSource, crackers map[int]*cracking.Cracker, conj expr.Conjunction, needCols []int, tab int) (*View, error) {
	if conj.Empty() {
		return nil, fmt.Errorf("exec: cracked select requires at least one predicate")
	}
	// Pick the driving column: a predicate column with a cracker and an
	// exact int range; prefer the narrowest range (most selective crack).
	drive := -1
	var driveRange int64
	for _, col := range conj.Columns() {
		cr := crackers[col]
		if cr == nil {
			continue
		}
		if c := src.Columns[col]; c == nil || c.Typ != schema.Int64 {
			continue
		}
		r, exact := conj.IntRange(col)
		if !exact || r.Empty() {
			continue
		}
		if drive < 0 || r.Len() < driveRange {
			drive = col
			driveRange = r.Len()
		}
	}
	if drive < 0 {
		return nil, fmt.Errorf("exec: no crackable predicate column")
	}
	for _, c := range needCols {
		if src.Columns[c] == nil {
			return nil, fmt.Errorf("exec: needed column %d not loaded", c)
		}
	}

	r, _ := conj.IntRange(drive)
	cr := crackers[drive]
	a, b := cr.Select(r.Lo, r.Hi)
	candidates := cr.RowIDs(a, b)
	if src.Counters != nil {
		// Reading the qualifying piece of the cracker column.
		src.Counters.AddInternalBytesRead(int64(len(candidates)) * 16)
	}

	// Residual predicates: everything not on the driving column (the
	// crack satisfied those exactly).
	var residual expr.Conjunction
	for _, p := range conj.Preds {
		if p.Col != drive {
			residual.Preds = append(residual.Preds, p)
		}
	}
	for _, p := range residual.Preds {
		if src.Columns[p.Col] == nil {
			return nil, fmt.Errorf("exec: residual predicate column %d not loaded", p.Col)
		}
	}
	src.countScanBytes(residual.Columns(), int64(len(candidates)))

	rowids := make([]int64, 0, len(candidates))
	for _, row := range candidates {
		if residual.Empty() || residual.EvalRow(func(col int) storage.Value {
			return src.Columns[col].Value(int(row))
		}) {
			rowids = append(rowids, row)
		}
	}
	sort.Slice(rowids, func(i, j int) bool { return rowids[i] < rowids[j] })
	return gatherDense(src, rowids, needCols, tab), nil
}
