package exec

import (
	"fmt"

	"nodb/internal/expr"
	"nodb/internal/storage"
)

// SelectDenseRows is the streaming counterpart of SelectDense: it scans the
// dense predicate columns in row order and, for every qualifying row, emits
// the values of outCols (in outCols order) without materializing a View.
// The emitted slice is freshly allocated per row; emit takes ownership.
//
// An error from emit aborts the scan and is returned as-is, which is how a
// cursor's LIMIT or early Close stops the pass mid-way.
func SelectDenseRows(src DenseSource, conj expr.Conjunction, outCols []int, emit func(rowID int64, vals []storage.Value) error) error {
	for _, p := range conj.Preds {
		if src.Columns[p.Col] == nil {
			return fmt.Errorf("exec: predicate column %d not loaded", p.Col)
		}
	}
	for _, c := range outCols {
		if src.Columns[c] == nil {
			return fmt.Errorf("exec: needed column %d not loaded", c)
		}
	}

	n := int(src.NumRows)
	scanned := 0
	defer func() {
		// Charge the bytes the predicate scan actually touched (the scan
		// may stop early), plus the gathered output values.
		src.countScanBytes(conj.Columns(), int64(scanned))
	}()

	fast, fastOK := intOnlyPreds(conj, src)
	for i := 0; i < n; i++ {
		scanned = i + 1
		var ok bool
		if fastOK {
			ok = fast.eval(i)
		} else {
			ok = conj.EvalRow(func(col int) storage.Value { return src.Columns[col].Value(i) })
		}
		if !ok {
			continue
		}
		vals := make([]storage.Value, len(outCols))
		for j, c := range outCols {
			vals[j] = src.Columns[c].Value(i)
		}
		src.countScanBytes(outCols, 1)
		if err := emit(int64(i), vals); err != nil {
			return err
		}
	}
	return nil
}
