package exec

import (
	"fmt"

	"nodb/internal/expr"
	"nodb/internal/storage"
)

// selectRowsChunk is how many emitted rows share one flat backing array in
// SelectDenseRows: the per-row slice header subslices the chunk, so the
// amortized allocation cost stays well under one allocation per row.
const selectRowsChunk = 256

// SelectDenseRows is the streaming counterpart of SelectDense: it scans the
// dense predicate columns in row order and, for every qualifying row, emits
// the values of outCols (in outCols order) without materializing a View.
// Each emitted slice is a distinct sub-range of a shared backing chunk —
// never reused — so emit takes ownership and may retain it indefinitely.
//
// An error from emit aborts the scan and is returned as-is, which is how a
// cursor's LIMIT or early Close stops the pass mid-way.
func SelectDenseRows(src DenseSource, conj expr.Conjunction, outCols []int, emit func(rowID int64, vals []storage.Value) error) error {
	for _, p := range conj.Preds {
		if src.Columns[p.Col] == nil {
			return fmt.Errorf("exec: predicate column %d not loaded", p.Col)
		}
	}
	for _, c := range outCols {
		if src.Columns[c] == nil {
			return fmt.Errorf("exec: needed column %d not loaded", c)
		}
	}

	n := int(src.NumRows)
	scanned := 0
	defer func() {
		// Charge the bytes the predicate scan actually touched (the scan
		// may stop early), plus the gathered output values.
		src.countScanBytes(conj.Columns(), int64(scanned))
	}()

	fast, fastOK := intOnlyPreds(conj, src)
	arity := len(outCols)
	var flat []storage.Value
	for i := 0; i < n; i++ {
		scanned = i + 1
		var ok bool
		if fastOK {
			ok = fast.eval(i)
		} else {
			ok = conj.EvalRow(func(col int) storage.Value { return src.Columns[col].Value(i) })
		}
		if !ok {
			continue
		}
		if len(flat) < arity {
			flat = make([]storage.Value, selectRowsChunk*arity)
		}
		vals := flat[:arity:arity]
		flat = flat[arity:]
		for j, c := range outCols {
			vals[j] = src.Columns[c].Value(i)
		}
		src.countScanBytes(outCols, 1)
		if err := emit(int64(i), vals); err != nil {
			return err
		}
	}
	return nil
}
