// Package govern implements the engine's memory governor: a global
// byte-accounting registry that every adaptive structure — fully loaded
// columns, retained partial-load (sparse) columns, positional maps, split
// files — registers with, plus the eviction machinery that keeps their
// total footprint under a configurable budget.
//
// The paper (§5.1.3) frames adaptive in-situ querying as viable only with
// this kind of life-time management: cached state is "auxiliary data we
// are not afraid to lose", and "the only cost is that of having to reload
// this data part if it is needed again in the future". The governor makes
// that cost explicit. Each registered structure carries an estimated
// rebuild cost alongside its byte footprint, and the default cost-aware
// policy evicts the structures with the most bytes held per second of
// rebuild work — a cached column (cheap to re-load, especially through the
// positional map) goes before a positional map (which took many query
// passes to accumulate and would need full re-tokenization to recover).
//
// Ownership model: structures register a Handle and keep its byte count
// current; the governor never mutates owner state directly. Eviction calls
// the owner-supplied callback, which drops the structure under the owner's
// own locks and then either releases the handle (one-shot structures such
// as columns) or zeroes its bytes (persistent containers such as a
// positional map, which survives empty and keeps accumulating). Queries
// pin the handles they are about to read; a pinned handle is never chosen
// as a victim, so an in-use structure is rebuilt later rather than freed
// mid-scan.
package govern

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"nodb/internal/metrics"
)

// Kind classifies a registered adaptive structure.
type Kind int

// Structure kinds.
const (
	// KindColumn is a fully loaded dense column (plus any cracker index
	// built over it, which is evicted with it).
	KindColumn Kind = iota
	// KindSparse is a retained partial-load column: the sparse values plus
	// the covered-region bookkeeping that makes them reusable.
	KindSparse
	// KindPosMap is the positional map of one raw file.
	KindPosMap
	// KindSplit is the split-file set of one raw file (on-disk bytes; the
	// budget governs the engine's total adaptive footprint, not only heap).
	KindSplit
	// KindSynopsis is the per-portion scan synopsis (zone maps) of one raw
	// file. It is rebuilt as a free byproduct of the next tokenizing pass,
	// so it is the cheapest structure to lose and an early eviction victim.
	KindSynopsis
	// KindResult is one cached query result. Results register with zero
	// rebuild cost — re-running the query over warm adaptive structures is
	// cheap by construction — so they are reclaimed before any structure
	// that took raw-file passes to learn.
	KindResult
)

func (k Kind) String() string {
	switch k {
	case KindColumn:
		return "column"
	case KindSparse:
		return "sparse"
	case KindPosMap:
		return "posmap"
	case KindSplit:
		return "split"
	case KindSynopsis:
		return "synopsis"
	case KindResult:
		return "result"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Handle is one registered structure's accounting record. Touches and
// pins are lock-free; byte updates and Release serialize on a per-handle
// mutex so a late update racing a Release can never leave phantom bytes
// in the global account.
type Handle struct {
	g     *Governor
	id    uint64
	kind  Kind
	label string
	evict func() bool

	mu      sync.Mutex    // serializes byte updates against Release
	bytes   atomic.Int64  // atomic so readers (Enforce, Stats) skip mu
	cost    atomic.Uint64 // float64 bits: estimated rebuild seconds
	lastUse atomic.Int64  // governor clock tick
	pins    atomic.Int32
	dead    atomic.Bool
	owner   atomic.Pointer[string] // tenant that last used the structure
}

// Kind returns the structure's kind.
func (h *Handle) Kind() Kind { return h.kind }

// Label returns the human-readable name ("table.col3", "table.posmap").
func (h *Handle) Label() string { return h.label }

// Bytes returns the currently accounted byte footprint.
func (h *Handle) Bytes() int64 { return h.bytes.Load() }

// SetBytes replaces the accounted footprint. No-op after Release.
func (h *Handle) SetBytes(n int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if !h.dead.Load() {
		old := h.bytes.Swap(n)
		h.g.used.Add(n - old)
	}
	h.mu.Unlock()
}

// AddBytes adjusts the accounted footprint by delta. No-op after Release.
func (h *Handle) AddBytes(delta int64) {
	if h == nil || delta == 0 {
		return
	}
	h.mu.Lock()
	if !h.dead.Load() {
		h.bytes.Add(delta)
		h.g.used.Add(delta)
	}
	h.mu.Unlock()
}

// SetCost records the estimated cost (modeled seconds) of rebuilding the
// structure from the raw file if it were evicted.
func (h *Handle) SetCost(sec float64) {
	if h == nil {
		return
	}
	h.cost.Store(math.Float64bits(sec))
}

// Cost returns the estimated rebuild cost in modeled seconds.
func (h *Handle) Cost() float64 { return math.Float64frombits(h.cost.Load()) }

// SetOwner attributes the structure to a tenant. Shared structures follow
// a last-user-wins rule: whichever tenant's query most recently touched
// the structure pays for it, matching how the LRU clock attributes
// recency. An empty name clears the attribution.
func (h *Handle) SetOwner(tenant string) {
	if h == nil {
		return
	}
	if tenant == "" {
		h.owner.Store(nil)
		return
	}
	h.owner.Store(&tenant)
}

// Owner returns the owning tenant ("" when unattributed).
func (h *Handle) Owner() string {
	if h == nil {
		return ""
	}
	if p := h.owner.Load(); p != nil {
		return *p
	}
	return ""
}

// Touch marks the structure recently used (LRU bookkeeping).
func (h *Handle) Touch() {
	if h == nil {
		return
	}
	h.lastUse.Store(h.g.clock.Add(1))
}

// Pin marks the structure in-use: a pinned handle is never selected for
// eviction. Pins nest; pair every Pin with an Unpin.
func (h *Handle) Pin() {
	if h == nil {
		return
	}
	h.pins.Add(1)
	h.Touch()
}

// Unpin releases one Pin.
func (h *Handle) Unpin() {
	if h == nil {
		return
	}
	h.pins.Add(-1)
}

// Pinned reports whether the structure is currently pinned by a query.
// Eviction callbacks re-check it under the owner's lock (which excludes
// the owner's Pin path) before dropping anything.
func (h *Handle) Pinned() bool { return h != nil && h.pins.Load() > 0 }

// Release unregisters the handle and removes its bytes from the global
// account. Owners call it when the structure is dropped outside eviction
// (file invalidation, unlink, supersession). Idempotent.
func (h *Handle) Release() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.dead.Swap(true) {
		h.mu.Unlock()
		return
	}
	h.g.used.Add(-h.bytes.Swap(0))
	h.mu.Unlock()
	h.g.mu.Lock()
	delete(h.g.entries, h.id)
	h.g.mu.Unlock()
}

// Candidate is the read-only view of an evictable entry that policies rank.
type Candidate struct {
	Kind    Kind
	Label   string
	Bytes   int64
	CostSec float64 // estimated rebuild cost, modeled seconds
	LastUse int64   // governor clock tick of last touch
}

// EvictionPolicy orders eviction candidates. Implementations must be
// stateless (the governor calls Less from multiple goroutines).
type EvictionPolicy interface {
	// Name identifies the policy ("lru", "cost").
	Name() string
	// Less reports whether a should be evicted before b.
	Less(a, b Candidate) bool
}

// Eviction describes one evicted structure.
type Eviction struct {
	Kind  Kind
	Label string
	Bytes int64
}

// Stats is a point-in-time snapshot of the governor's accounting.
type Stats struct {
	// Budget is the configured byte budget (0 = unlimited).
	Budget int64 `json:"budget"`
	// Used is the total bytes of registered adaptive state.
	Used int64 `json:"used"`
	// Pinned is the bytes currently pinned by in-flight queries.
	Pinned int64 `json:"pinned"`
	// Entries is the number of registered structures.
	Entries int `json:"entries"`
	// Evictions counts structures evicted since startup.
	Evictions int64 `json:"evictions"`
	// EvictedBytes totals the bytes reclaimed by eviction since startup.
	EvictedBytes int64 `json:"evicted_bytes"`
	// Policy is the active eviction policy name.
	Policy string `json:"policy"`
	// Tenants is the per-tenant accounting, present only when tenant
	// weights are configured via SetTenants.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's slice of the governor's accounting.
type TenantStats struct {
	// Weight is the tenant's configured share weight.
	Weight float64 `json:"weight"`
	// ShareBytes is the tenant's slice of the budget (budget × weight ÷
	// total weight; 0 when the budget is unlimited).
	ShareBytes int64 `json:"share_bytes"`
	// Used is the bytes of structures currently attributed to the tenant.
	Used int64 `json:"used"`
	// Evictions and EvictedBytes count eviction pressure scoped to the
	// tenant (victims chosen because the tenant exceeded its share).
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
}

// Governor is the global registry. Safe for concurrent use.
type Governor struct {
	budget   atomic.Int64
	policy   EvictionPolicy
	counters *metrics.Counters

	used  atomic.Int64
	clock atomic.Int64

	evictions    atomic.Int64
	evictedBytes atomic.Int64

	mu      sync.Mutex // guards entries
	entries map[uint64]*Handle
	nextID  uint64

	enforceMu sync.Mutex // serializes Enforce passes

	tenantMu        sync.Mutex // guards the tenant maps
	tenantWeights   map[string]float64
	tenantWeightSum float64
	tenantEvicts    map[string]int64
	tenantEvictedB  map[string]int64
}

// New creates a governor. budget is the global byte budget (0 or negative
// = unlimited: accounting still runs, eviction never does). policy nil
// means the default cost-aware policy. counters may be nil.
func New(budget int64, policy EvictionPolicy, counters *metrics.Counters) *Governor {
	if policy == nil {
		policy = CostAware{}
	}
	g := &Governor{policy: policy, counters: counters, entries: make(map[uint64]*Handle)}
	g.budget.Store(budget)
	return g
}

// Register adds a structure to the registry. evict is the owner callback
// that drops the structure when it is chosen as a victim; it runs without
// any governor lock held, must re-check the handle's pin state under the
// owner's own lock (returning false to veto the eviction), and on success
// must leave the handle released or at zero bytes. A nil evict registers
// an accounting-only entry that is never selected for eviction.
func (g *Governor) Register(kind Kind, label string, evict func() bool) *Handle {
	h := &Handle{g: g, kind: kind, label: label, evict: evict}
	h.Touch()
	g.mu.Lock()
	g.nextID++
	h.id = g.nextID
	g.entries[h.id] = h
	g.mu.Unlock()
	return h
}

// Budget returns the configured byte budget (0 = unlimited).
func (g *Governor) Budget() int64 { return g.budget.Load() }

// SetTenants configures per-tenant budget partitioning: each tenant's
// slice of the budget is budget × weight ÷ Σweights, and Enforce evicts a
// tenant's own structures first when the tenant exceeds its slice — one
// heavy tenant can no longer push another tenant's positional maps out.
// A nil or empty map turns tenant partitioning off.
func (g *Governor) SetTenants(weights map[string]float64) {
	g.tenantMu.Lock()
	defer g.tenantMu.Unlock()
	if len(weights) == 0 {
		g.tenantWeights, g.tenantWeightSum = nil, 0
		return
	}
	g.tenantWeights = make(map[string]float64, len(weights))
	g.tenantWeightSum = 0
	for name, w := range weights {
		if w <= 0 {
			w = 1
		}
		g.tenantWeights[name] = w
		g.tenantWeightSum += w
	}
	if g.tenantEvicts == nil {
		g.tenantEvicts = make(map[string]int64)
		g.tenantEvictedB = make(map[string]int64)
	}
}

// tenantShare returns the tenant's byte slice of the current budget, or
// (0, false) when the tenant is unknown or partitioning is off.
func (g *Governor) tenantShare(name string) (int64, bool) {
	g.tenantMu.Lock()
	defer g.tenantMu.Unlock()
	w, ok := g.tenantWeights[name]
	if !ok || g.tenantWeightSum <= 0 {
		return 0, false
	}
	budget := g.Budget()
	if budget <= 0 {
		return 0, false
	}
	return int64(float64(budget) * w / g.tenantWeightSum), true
}

func (g *Governor) recordTenantEviction(name string, bytes int64) {
	if name == "" {
		return
	}
	g.tenantMu.Lock()
	if g.tenantEvicts != nil {
		g.tenantEvicts[name]++
		g.tenantEvictedB[name] += bytes
	}
	g.tenantMu.Unlock()
}

// SetBudget changes the budget; the next Enforce applies it.
func (g *Governor) SetBudget(n int64) { g.budget.Store(n) }

// Used returns the total accounted bytes.
func (g *Governor) Used() int64 { return g.used.Load() }

// Policy returns the active eviction policy.
func (g *Governor) Policy() EvictionPolicy { return g.policy }

// Stats returns a snapshot of the governor's accounting.
func (g *Governor) Stats() Stats {
	var pinned int64
	entries := 0
	usedBy := map[string]int64{}
	g.mu.Lock()
	for _, h := range g.entries {
		entries++
		if h.pins.Load() > 0 {
			pinned += h.bytes.Load()
		}
		if owner := h.Owner(); owner != "" {
			usedBy[owner] += h.bytes.Load()
		}
	}
	g.mu.Unlock()
	st := Stats{
		Budget:       g.Budget(),
		Used:         g.Used(),
		Pinned:       pinned,
		Entries:      entries,
		Evictions:    g.evictions.Load(),
		EvictedBytes: g.evictedBytes.Load(),
		Policy:       g.policy.Name(),
	}
	g.tenantMu.Lock()
	if len(g.tenantWeights) > 0 {
		st.Tenants = make(map[string]TenantStats, len(g.tenantWeights))
		for name, w := range g.tenantWeights {
			var share int64
			if b := st.Budget; b > 0 && g.tenantWeightSum > 0 {
				share = int64(float64(b) * w / g.tenantWeightSum)
			}
			st.Tenants[name] = TenantStats{
				Weight:       w,
				ShareBytes:   share,
				Used:         usedBy[name],
				Evictions:    g.tenantEvicts[name],
				EvictedBytes: g.tenantEvictedB[name],
			}
		}
	}
	g.tenantMu.Unlock()
	return st
}

// Enforce evicts unpinned structures, worst-first per the policy, until
// the accounted bytes fit the budget (or no evictable candidates remain —
// pinned bytes can exceed the budget transiently; the next Enforce after
// the pins drop reclaims them). With tenant weights configured, a
// per-tenant pass runs first: any tenant over its share of the budget
// loses its *own* structures down to the share, so the global pass — when
// it still has to run — starts from a state where pressure was charged to
// whoever caused it. It returns what was evicted.
func (g *Governor) Enforce() []Eviction {
	budget := g.Budget()
	if budget <= 0 {
		return nil
	}
	g.enforceMu.Lock()
	defer g.enforceMu.Unlock()

	out := g.enforceTenants()

	// Victim selection is re-snapshotted after each round of callbacks:
	// callbacks change the candidate set (a dense-column eviction releases
	// its handle), and concurrent queries may have pinned or grown entries
	// in the meantime.
	for round := 0; round < 8; round++ {
		over := g.Used() - g.Budget()
		if over <= 0 {
			return out
		}
		victims := g.pickVictims(over, "")
		if len(victims) == 0 {
			return out
		}
		evicted := g.evictHandles(victims, "")
		out = append(out, evicted...)
	}
	return out
}

// enforceTenants runs the per-tenant pass: each tenant whose attributed
// bytes exceed its budget share loses its own structures first.
func (g *Governor) enforceTenants() []Eviction {
	g.tenantMu.Lock()
	names := make([]string, 0, len(g.tenantWeights))
	for name := range g.tenantWeights {
		names = append(names, name)
	}
	g.tenantMu.Unlock()
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names) // deterministic order across passes
	var out []Eviction
	for _, name := range names {
		share, ok := g.tenantShare(name)
		if !ok {
			continue
		}
		for round := 0; round < 8; round++ {
			over := g.tenantUsed(name) - share
			if over <= 0 {
				break
			}
			victims := g.pickVictims(over, name)
			if len(victims) == 0 {
				break
			}
			evicted := g.evictHandles(victims, name)
			out = append(out, evicted...)
			if len(evicted) == 0 {
				break
			}
		}
	}
	return out
}

// tenantUsed sums the bytes of live entries attributed to the tenant.
func (g *Governor) tenantUsed(name string) int64 {
	var used int64
	g.mu.Lock()
	for _, h := range g.entries {
		if h.Owner() == name {
			used += h.bytes.Load()
		}
	}
	g.mu.Unlock()
	return used
}

// evictHandles runs the owner callbacks with accounting. tenant is the
// tenant whose share overflow selected the victims ("" for the global
// pass).
func (g *Governor) evictHandles(victims []*Handle, tenant string) []Eviction {
	var out []Eviction
	for _, h := range victims {
		if h.Pinned() || h.dead.Load() {
			continue // pinned (or gone) since selection: skip, re-check next round
		}
		b := h.bytes.Load()
		if !h.evict() {
			continue // owner vetoed (pinned or already gone under its lock)
		}
		g.evictions.Add(1)
		g.evictedBytes.Add(b)
		g.recordTenantEviction(tenant, b)
		if g.counters != nil {
			g.counters.AddEviction(1)
			g.counters.AddEvictedBytes(b)
		}
		out = append(out, Eviction{Kind: h.kind, Label: h.label, Bytes: b})
	}
	return out
}

// pickVictims returns unpinned candidates, ordered worst-first by the
// policy, whose cumulative bytes cover the overshoot. A non-empty owner
// restricts candidates to that tenant's structures.
func (g *Governor) pickVictims(over int64, owner string) []*Handle {
	g.mu.Lock()
	cands := make([]*Handle, 0, len(g.entries))
	for _, h := range g.entries {
		if h.evict == nil || h.Pinned() || h.bytes.Load() <= 0 {
			continue
		}
		if owner != "" && h.Owner() != owner {
			continue
		}
		cands = append(cands, h)
	}
	g.mu.Unlock()

	sort.Slice(cands, func(i, j int) bool {
		return g.policy.Less(candidate(cands[i]), candidate(cands[j]))
	})
	var victims []*Handle
	var freed int64
	for _, h := range cands {
		if freed >= over {
			break
		}
		victims = append(victims, h)
		freed += h.bytes.Load()
	}
	return victims
}

func candidate(h *Handle) Candidate {
	return Candidate{
		Kind:    h.kind,
		Label:   h.label,
		Bytes:   h.bytes.Load(),
		CostSec: h.Cost(),
		LastUse: h.lastUse.Load(),
	}
}
