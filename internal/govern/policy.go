package govern

import "fmt"

// LRU evicts the least recently used structure first, regardless of what
// it would cost to rebuild. Kept as the experimental baseline the paper's
// §5.1.3 sketch implies; compare with CostAware via the budget ablation.
type LRU struct{}

// Name implements EvictionPolicy.
func (LRU) Name() string { return "lru" }

// Less implements EvictionPolicy: older last-use goes first.
func (LRU) Less(a, b Candidate) bool { return a.LastUse < b.LastUse }

// CostAware evicts the structure holding the most bytes per second of
// estimated rebuild cost: a big cached column that one cheap positional
// re-load recovers goes long before a positional map of similar size that
// only many full re-tokenization passes would restore. Last use breaks
// ties, least recent first.
type CostAware struct{}

// Name implements EvictionPolicy.
func (CostAware) Name() string { return "cost" }

// Less implements EvictionPolicy.
func (CostAware) Less(a, b Candidate) bool {
	sa, sb := score(a), score(b)
	if sa != sb {
		return sa > sb // more bytes per rebuild-second → evict first
	}
	return a.LastUse < b.LastUse
}

// score is bytes reclaimed per modeled second of rebuild work. A zero or
// unknown cost means the structure is free to rebuild: maximal score.
func score(c Candidate) float64 {
	if c.CostSec <= 0 {
		return float64(c.Bytes) * 1e12
	}
	return float64(c.Bytes) / c.CostSec
}

// PolicyByName maps a policy name to its implementation. The empty string
// selects the default (cost-aware).
func PolicyByName(name string) (EvictionPolicy, error) {
	switch name {
	case "", "cost", "cost-aware":
		return CostAware{}, nil
	case "lru":
		return LRU{}, nil
	default:
		return nil, fmt.Errorf("govern: unknown eviction policy %q (want lru or cost)", name)
	}
}
