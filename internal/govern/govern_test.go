package govern

import (
	"fmt"
	"sync"
	"testing"

	"nodb/internal/metrics"
)

// reg registers a handle holding n bytes whose eviction zeroes it and
// flips the given flag.
func reg(g *Governor, kind Kind, label string, n int64, evicted *bool) *Handle {
	var h *Handle
	h = g.Register(kind, label, func() bool {
		*evicted = true
		h.Release()
		return true
	})
	h.SetBytes(n)
	return h
}

func TestAccounting(t *testing.T) {
	g := New(0, nil, nil)
	h := g.Register(KindColumn, "t.c0", nil)
	h.SetBytes(100)
	if g.Used() != 100 {
		t.Fatalf("used = %d, want 100", g.Used())
	}
	h.AddBytes(50)
	if g.Used() != 150 {
		t.Fatalf("used = %d, want 150", g.Used())
	}
	h.SetBytes(10)
	if g.Used() != 10 {
		t.Fatalf("used = %d, want 10", g.Used())
	}
	h.Release()
	if g.Used() != 0 {
		t.Fatalf("used after release = %d, want 0", g.Used())
	}
	// Post-release updates must not resurrect the account.
	h.SetBytes(99)
	h.AddBytes(99)
	if g.Used() != 0 {
		t.Fatalf("used after dead update = %d, want 0", g.Used())
	}
	if ev := g.Enforce(); ev != nil {
		t.Fatalf("unlimited budget evicted %v", ev)
	}
}

func TestEnforceUnderBudget(t *testing.T) {
	g := New(1000, LRU{}, nil)
	var e1, e2 bool
	reg(g, KindColumn, "t.c0", 400, &e1)
	reg(g, KindColumn, "t.c1", 500, &e2)
	if ev := g.Enforce(); len(ev) != 0 {
		t.Fatalf("under budget evicted %v", ev)
	}
	if e1 || e2 {
		t.Fatal("eviction callback ran while under budget")
	}
}

func TestEnforceLRUOrder(t *testing.T) {
	var c metrics.Counters
	g := New(1000, LRU{}, &c)
	var e1, e2, e3 bool
	h1 := reg(g, KindColumn, "t.c0", 600, &e1)
	reg(g, KindColumn, "t.c1", 600, &e2)
	h3 := reg(g, KindColumn, "t.c2", 600, &e3)
	// Touch order: c1 (oldest), c0, c2.
	h1.Touch()
	h3.Touch()
	ev := g.Enforce()
	if !e2 || !e1 || e3 {
		t.Fatalf("LRU eviction order wrong: e1=%v e2=%v e3=%v (%v)", e1, e2, e3, ev)
	}
	if g.Used() > 1000 {
		t.Fatalf("used = %d after enforce, budget 1000", g.Used())
	}
	if s := c.Snapshot(); s.Evictions != 2 || s.EvictedBytes != 1200 {
		t.Fatalf("counters = %d evictions, %d bytes", s.Evictions, s.EvictedBytes)
	}
}

func TestEnforceCostAware(t *testing.T) {
	g := New(100, CostAware{}, nil)
	var cheap, dear bool
	// Same bytes; the cheap-to-rebuild structure must go first.
	hc := reg(g, KindColumn, "t.c0", 80, &cheap)
	hc.SetCost(0.1)
	hd := reg(g, KindPosMap, "t.posmap", 80, &dear)
	hd.SetCost(10)
	g.Enforce()
	if !cheap {
		t.Fatal("cheap-to-rebuild structure not evicted")
	}
	if dear {
		t.Fatal("expensive-to-rebuild structure evicted while the cheap one sufficed")
	}
}

func TestPinBlocksEviction(t *testing.T) {
	g := New(100, LRU{}, nil)
	var e1, e2 bool
	h1 := reg(g, KindColumn, "t.c0", 200, &e1)
	reg(g, KindColumn, "t.c1", 200, &e2)
	h1.Pin()
	g.Enforce()
	if e1 {
		t.Fatal("pinned structure was evicted")
	}
	if !e2 {
		t.Fatal("unpinned structure should have been evicted")
	}
	h1.Unpin()
	g.Enforce()
	if !e1 {
		t.Fatal("structure not evicted after unpin")
	}
	if g.Used() != 0 {
		t.Fatalf("used = %d, want 0", g.Used())
	}
}

func TestPersistentHandleZeroesInsteadOfRelease(t *testing.T) {
	g := New(100, LRU{}, nil)
	var h *Handle
	drops := 0
	h = g.Register(KindPosMap, "t.posmap", func() bool {
		drops++
		h.SetBytes(0) // posmap survives eviction empty
		return true
	})
	h.SetBytes(500)
	g.Enforce()
	if drops != 1 || g.Used() != 0 {
		t.Fatalf("drops=%d used=%d", drops, g.Used())
	}
	// The handle keeps accounting after eviction.
	h.AddBytes(40)
	if g.Used() != 40 {
		t.Fatalf("used = %d, want 40", g.Used())
	}
	if st := g.Stats(); st.Evictions != 1 || st.EvictedBytes != 500 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStats(t *testing.T) {
	g := New(1<<20, nil, nil)
	h := g.Register(KindColumn, "t.c0", nil)
	h.SetBytes(100)
	h.Pin()
	st := g.Stats()
	if st.Budget != 1<<20 || st.Used != 100 || st.Pinned != 100 || st.Entries != 1 || st.Policy != "cost" {
		t.Fatalf("stats = %+v", st)
	}
	h.Unpin()
	if st := g.Stats(); st.Pinned != 0 {
		t.Fatalf("pinned = %d after unpin", st.Pinned)
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{"": "cost", "cost": "cost", "cost-aware": "cost", "lru": "lru"} {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != want {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Error("bogus policy should fail")
	}
}

func TestConcurrentRegisterUpdateEnforce(t *testing.T) {
	g := New(10_000, CostAware{}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var h *Handle
				h = g.Register(KindColumn, fmt.Sprintf("t%d.c%d", w, i), func() bool { h.Release(); return true })
				h.SetBytes(int64(100 + i))
				h.Touch()
				h.Pin()
				h.AddBytes(8)
				h.Unpin()
				if i%10 == 0 {
					g.Enforce()
				}
				if i%3 == 0 {
					h.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	g.Enforce()
	if used := g.Used(); used > 10_000 {
		t.Fatalf("used = %d after final enforce, budget 10000", used)
	}
}

// BenchmarkHandleAccounting measures the per-update cost structures pay to
// keep the governor current (hot: loaders call it per chunk/merge).
func BenchmarkHandleAccounting(b *testing.B) {
	g := New(1<<40, CostAware{}, nil)
	h := g.Register(KindPosMap, "t.posmap", func() bool { return true })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AddBytes(16)
		h.Touch()
	}
}

// BenchmarkEnforce measures one full eviction pass over a populated
// registry (the post-query hot path when the budget is tight).
func BenchmarkEnforce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := New(1000, CostAware{}, nil)
		for j := 0; j < 256; j++ {
			var h *Handle
			h = g.Register(KindColumn, "t.c", func() bool { h.Release(); return true })
			h.SetBytes(int64(64 + j))
			h.SetCost(float64(j%7) + 0.5)
		}
		b.StartTimer()
		g.Enforce()
	}
}

// TestEvictVeto: a callback returning false (owner saw a pin or the
// structure already gone) must not count as an eviction.
func TestEvictVeto(t *testing.T) {
	g := New(100, LRU{}, nil)
	calls := 0
	h := g.Register(KindColumn, "t.c0", func() bool { calls++; return false })
	h.SetBytes(500)
	if ev := g.Enforce(); len(ev) != 0 {
		t.Fatalf("vetoed eviction reported: %v", ev)
	}
	if calls == 0 {
		t.Fatal("callback never ran")
	}
	if st := g.Stats(); st.Evictions != 0 || st.EvictedBytes != 0 {
		t.Fatalf("veto counted: %+v", st)
	}
}
