package baseline

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/storage"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "b.csv")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func conj(preds ...expr.Pred) expr.Conjunction { return expr.Conjunction{Preds: preds} }

func gt(col int, v int64) expr.Pred {
	return expr.Pred{Col: col, Op: expr.Gt, Val: storage.IntValue(v)}
}

func lt(col int, v int64) expr.Pred {
	return expr.Pred{Col: col, Op: expr.Lt, Val: storage.IntValue(v)}
}

const data = "10,100,7\n20,200,8\n30,300,9\n40,400,6\n"

func TestAwkScan(t *testing.T) {
	tb := Table{Path: writeCSV(t, data), NumCols: 3}
	var c metrics.Counters
	v, err := AwkScan(tb, []int{0, 2}, conj(gt(0, 15), lt(0, 35)), &c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := SumColumn(v, exec.ColKey{Tab: 0, Col: 2}); got != 17 {
		t.Errorf("sum col2 = %d, want 17", got)
	}
	if s := c.Snapshot(); s.RowsAbandoned != 2 {
		t.Errorf("abandoned = %d, want 2", s.RowsAbandoned)
	}
}

func TestPerlScanSameAnswerMoreWork(t *testing.T) {
	path := writeCSV(t, data)
	tb := Table{Path: path, NumCols: 3}
	q := conj(gt(0, 15), lt(0, 35))

	var ca, cp metrics.Counters
	va, err := AwkScan(tb, []int{0}, q, &ca, 0)
	if err != nil {
		t.Fatal(err)
	}
	vp, err := PerlScan(tb, []int{0}, q, &cp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if va.Len() != vp.Len() {
		t.Fatalf("awk=%d perl=%d", va.Len(), vp.Len())
	}
	sa, sp := ca.Snapshot(), cp.Snapshot()
	if sp.AttrsTokenized <= sa.AttrsTokenized {
		t.Errorf("perl should tokenize more: %d vs %d", sp.AttrsTokenized, sa.AttrsTokenized)
	}
	if sp.ValuesParsed <= sa.ValuesParsed {
		t.Errorf("perl should parse more: %d vs %d", sp.ValuesParsed, sa.ValuesParsed)
	}
}

func TestMySQLCSVScan(t *testing.T) {
	tb := Table{Path: writeCSV(t, data), NumCols: 3}
	var c metrics.Counters
	v, err := MySQLCSVScan(tb, []int{1}, conj(gt(1, 150)), &c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d, want 3", v.Len())
	}
}

func TestScansStateless(t *testing.T) {
	// Two identical scans must do identical work: no caching anywhere.
	tb := Table{Path: writeCSV(t, data), NumCols: 3}
	var c metrics.Counters
	if _, err := AwkScan(tb, []int{0}, conj(gt(0, 0)), &c, 0); err != nil {
		t.Fatal(err)
	}
	first := c.Snapshot()
	if _, err := AwkScan(tb, []int{0}, conj(gt(0, 0)), &c, 0); err != nil {
		t.Fatal(err)
	}
	second := c.Snapshot().Sub(first)
	if second.RawBytesRead != first.RawBytesRead {
		t.Errorf("second scan read %d, first %d — baselines must not cache", second.RawBytesRead, first.RawBytesRead)
	}
}

func joinFiles(t *testing.T, n int) (Table, Table) {
	t.Helper()
	var l, r strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&l, "%d,%d\n", i, i*2)
		fmt.Fprintf(&r, "%d,%d\n", n-1-i, i*3) // shuffled keys
	}
	dir := t.TempDir()
	lp := filepath.Join(dir, "l.csv")
	rp := filepath.Join(dir, "r.csv")
	os.WriteFile(lp, []byte(l.String()), 0o644)
	os.WriteFile(rp, []byte(r.String()), 0o644)
	return Table{Path: lp, NumCols: 2}, Table{Path: rp, NumCols: 2}
}

func TestHashJoinScript(t *testing.T) {
	l, r := joinFiles(t, 200)
	var c metrics.Counters
	v, err := HashJoinScript(l, r, 0, 0, []int{1}, []int{1}, &c)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 200 {
		t.Fatalf("join Len = %d, want 200 (1:1)", v.Len())
	}
}

func TestSortMergeJoinMatchesHashJoin(t *testing.T) {
	l, r := joinFiles(t, 300)
	var c1, c2 metrics.Counters
	hv, err := HashJoinScript(l, r, 0, 0, []int{1}, []int{1}, &c1)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := SortMergeJoinScript(l, r, 0, 0, []int{1}, []int{1}, t.TempDir(), &c2)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Len() != mv.Len() {
		t.Fatalf("hash=%d merge=%d", hv.Len(), mv.Len())
	}
	hsum := SumColumn(hv, exec.ColKey{Tab: 0, Col: 1}) + SumColumn(hv, exec.ColKey{Tab: 1, Col: 1})
	msum := SumColumn(mv, exec.ColKey{Tab: 0, Col: 1}) + SumColumn(mv, exec.ColKey{Tab: 1, Col: 1})
	if hsum != msum {
		t.Errorf("payload sums differ: %d vs %d", hsum, msum)
	}
	// The sort pipeline must have paid temp-file writes.
	if c2.Snapshot().InternalBytesWritten == 0 {
		t.Error("sort-merge should write sorted temp files")
	}
}

func TestSortMergeTempFilesRemoved(t *testing.T) {
	l, r := joinFiles(t, 10)
	tmp := t.TempDir()
	if _, err := SortMergeJoinScript(l, r, 0, 0, []int{1}, []int{1}, tmp, nil); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(tmp)
	if len(entries) != 0 {
		t.Errorf("temp files left behind: %v", entries)
	}
}

func TestScanMissingFile(t *testing.T) {
	tb := Table{Path: "/nonexistent.csv", NumCols: 1}
	if _, err := AwkScan(tb, []int{0}, expr.Conjunction{}, nil, 0); err == nil {
		t.Error("missing file should error")
	}
}

func TestTableDefaults(t *testing.T) {
	tb := Table{}
	if tb.delim() != ',' {
		t.Error("default delimiter should be comma")
	}
	if tb.colType(5) != 0 { // schema.Int64 == 0
		t.Error("default col type should be int64")
	}
}

// TestScriptScansStaySequential pins the baseline scans to one worker:
// their handlers append to shared state without locks, so inheriting the
// parallel-by-default scan would race (run under -race with several CPUs
// and a file large enough to split into portions).
func TestScriptScansStaySequential(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const rows = 40000
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,%d,%d\n", i, i*2, i%7)
	}
	tb := Table{Path: writeCSV(t, sb.String()), NumCols: 3}
	v, err := AwkScan(tb, []int{0}, conj(gt(0, -1)), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != rows {
		t.Fatalf("AwkScan saw %d rows, want %d", len(v.Rows), rows)
	}
	for i := 1; i < len(v.Rows); i++ {
		if v.Rows[i] <= v.Rows[i-1] {
			t.Fatalf("rows out of order at %d: scan went parallel", i)
		}
	}
	lv, err := SortMergeJoinScript(tb, tb, 0, 0, []int{0}, []int{1}, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := lv.Len(); got != rows {
		t.Fatalf("SortMergeJoinScript matched %d rows, want %d (1:1 self-join)", got, rows)
	}
}
