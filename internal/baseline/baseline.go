// Package baseline implements the external-tool comparators of the
// paper's §2 study: the Awk script (optimized: touches only the needed
// attributes, abandons a row on the first failing predicate), the Perl
// script (naive: splits every attribute of every row — the paper measured
// it 2× slower than Awk), and the MySQL CSV storage engine (a generic
// row engine: tokenizes and parses every attribute, then filters).
//
// None of them load, cache or learn anything: every query re-reads and
// re-parses the flat file. That constant per-query cost is the flat line
// the figures show.
package baseline

import (
	"fmt"
	"sort"

	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// Table describes a flat file a "script" runs over. Baselines do not use
// the catalog: like a real script, all they know is the file and the
// column types the user had in mind.
type Table struct {
	Path      string
	Delimiter byte
	NumCols   int
	Types     []schema.Type // column types; nil means all int64
}

func (t Table) colType(i int) schema.Type {
	if t.Types == nil {
		return schema.Int64
	}
	return t.Types[i]
}

func (t Table) delim() byte {
	if t.Delimiter == 0 {
		return ','
	}
	return t.Delimiter
}

// AwkScan emulates the optimized Awk script: tokenize only up to the last
// needed attribute, evaluate each predicate the moment its attribute is
// parsed, and skip the rest of the row on failure. It returns qualifying
// rows as a View under table ordinal tab. One interpreted script operation
// is charged per row — Awk's per-record overhead dominates its runtime on
// the paper's hardware.
func AwkScan(t Table, needCols []int, conj expr.Conjunction, counters *metrics.Counters, tab int) (*exec.View, error) {
	return scriptScan(t, needCols, conj, counters, tab, true, 1)
}

// PerlScan emulates the naive script: every attribute of every row is
// split out before anything is evaluated, and the per-record interpreter
// overhead is doubled — the paper measured Perl at 2× Awk.
func PerlScan(t Table, needCols []int, conj expr.Conjunction, counters *metrics.Counters, tab int) (*exec.View, error) {
	return scriptScan(t, needCols, conj, counters, tab, false, 2)
}

// scriptScan is the shared external-scan skeleton. opsPerRow is the
// interpreted-script overhead charged per row (0 for compiled engines).
func scriptScan(t Table, needCols []int, conj expr.Conjunction, counters *metrics.Counters, tab int, earlyAbandon bool, opsPerRow int64) (*exec.View, error) {
	loadCols := unionCols(needCols, conj.Columns())
	// Workers 1: scripts are sequential by nature, and the handlers below
	// append to shared state without locks — they must not inherit the
	// parallel-by-default scan.
	sc, err := scan.Open(t.Path, scan.Options{Delimiter: t.delim(), Workers: 1, Counters: counters})
	if err != nil {
		return nil, err
	}
	defer func() {
		if counters != nil && opsPerRow > 0 {
			counters.AddScriptOps(sc.RowsScanned() * opsPerRow)
		}
	}()

	view := exec.NewView()
	outCols := make([]*storage.DenseColumn, len(loadCols))
	for i, c := range loadCols {
		outCols[i] = storage.NewDense(t.colType(c), 0)
		view.AddCol(exec.ColKey{Tab: tab, Col: c}, outCols[i])
	}
	predsAt := make([][]expr.Pred, len(loadCols))
	for i, c := range loadCols {
		predsAt[i] = conj.OnColumn(c)
	}

	if earlyAbandon {
		abandon := func(idx int, f scan.FieldRef) bool {
			if len(predsAt[idx]) == 0 {
				return false
			}
			v, err := parse(f.Bytes, t.colType(loadCols[idx]))
			if err != nil {
				return true
			}
			for _, p := range predsAt[idx] {
				if !p.Eval(v) {
					return true
				}
			}
			return false
		}
		err = sc.ScanColumns(loadCols, func(rowID int64, fields []scan.FieldRef) error {
			for i, f := range fields {
				v, err := parse(f.Bytes, t.colType(loadCols[i]))
				if err != nil {
					return fmt.Errorf("baseline: row %d: %w", rowID, err)
				}
				outCols[i].Append(v)
			}
			if counters != nil {
				counters.AddValuesParsed(int64(len(fields)))
			}
			view.Rows = append(view.Rows, rowID)
			return nil
		}, abandon)
		return view, err
	}

	// Naive path: tokenize and parse every attribute, filter afterwards.
	err = sc.ScanColumns(nil, func(rowID int64, fields []scan.FieldRef) error {
		vals := make([]storage.Value, len(fields))
		for i, f := range fields {
			v, perr := parse(f.Bytes, t.colType(min(i, t.NumCols-1)))
			if perr != nil {
				v = storage.StringValue(string(f.Bytes)) // scripts coerce
			}
			vals[i] = v
		}
		if counters != nil {
			counters.AddValuesParsed(int64(len(fields)))
		}
		ok := conj.EvalRow(func(col int) storage.Value {
			if col < len(vals) {
				return vals[col]
			}
			return storage.Value{}
		})
		if !ok {
			return nil
		}
		for i, c := range loadCols {
			if c < len(vals) {
				outCols[i].Append(vals[c])
			}
		}
		view.Rows = append(view.Rows, rowID)
		return nil
	}, nil)
	return view, err
}

// MySQLCSVScan emulates the MySQL CSV storage engine: a generic row-store
// engine reading an external table. Every attribute of every row is
// tokenized and parsed into the engine's tuple format before the filter
// runs; nothing is retained between queries. Unlike the scripts it is
// compiled code, so no interpreter overhead is charged.
func MySQLCSVScan(t Table, needCols []int, conj expr.Conjunction, counters *metrics.Counters, tab int) (*exec.View, error) {
	return scriptScan(t, needCols, conj, counters, tab, false, 0)
}

func parse(b []byte, typ schema.Type) (storage.Value, error) {
	switch typ {
	case schema.Int64:
		v, err := scan.ParseInt64(b)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.IntValue(v), nil
	case schema.Float64:
		v, err := scan.ParseFloat64(b)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.FloatValue(v), nil
	default:
		return storage.StringValue(string(b)), nil
	}
}

func unionCols(a, b []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range a {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range b {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}
