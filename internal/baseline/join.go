package baseline

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/scan"
)

// HashJoinScript emulates the paper's "hash join implementation in Awk"
// (§2.2): scan the left file into an in-memory hash table keyed on its
// join attribute, then stream the right file probing it. Both files are
// re-read and re-parsed from scratch; nothing survives the query. The
// result view carries the requested columns of both sides (tab 0 = left,
// tab 1 = right).
func HashJoinScript(left, right Table, leftKey, rightKey int, leftCols, rightCols []int, counters *metrics.Counters) (*exec.View, error) {
	lv, err := AwkScan(left, unionCols(leftCols, []int{leftKey}), expr.Conjunction{}, counters, 0)
	if err != nil {
		return nil, err
	}
	rv, err := AwkScan(right, unionCols(rightCols, []int{rightKey}), expr.Conjunction{}, counters, 1)
	if err != nil {
		return nil, err
	}
	if counters != nil {
		// Awk associative-array insert per build row and lookup per probe
		// row — the interpreter overhead that makes the scripted hash
		// join the slowest variant in the paper's §2.2 experiment.
		counters.AddScriptOps(int64(lv.Len()) + int64(rv.Len()))
	}
	return exec.HashJoin(lv, rv, exec.ColKey{Tab: 0, Col: leftKey}, exec.ColKey{Tab: 1, Col: rightKey})
}

// SortMergeJoinScript emulates "sort the data (using the Unix sort tool)
// and then implement a merge join in Awk" (§2.2): each input is parsed,
// sorted on the join key, written back to disk as a sorted temp file (the
// Unix sort's output), re-read, and merge-joined. The temp-file round
// trip is the honest cost of the pipeline the paper describes.
func SortMergeJoinScript(left, right Table, leftKey, rightKey int, leftCols, rightCols []int, tmpDir string, counters *metrics.Counters) (*exec.View, error) {
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	lp, err := sortFile(left, leftKey, filepath.Join(tmpDir, "left.sorted"), counters)
	if err != nil {
		return nil, err
	}
	defer os.Remove(lp.Path)
	rp, err := sortFile(right, rightKey, filepath.Join(tmpDir, "right.sorted"), counters)
	if err != nil {
		return nil, err
	}
	defer os.Remove(rp.Path)

	lv, err := AwkScan(lp, unionCols(leftCols, []int{leftKey}), expr.Conjunction{}, counters, 0)
	if err != nil {
		return nil, err
	}
	rv, err := AwkScan(rp, unionCols(rightCols, []int{rightKey}), expr.Conjunction{}, counters, 1)
	if err != nil {
		return nil, err
	}
	return exec.MergeJoin(lv, rv, exec.ColKey{Tab: 0, Col: leftKey}, exec.ColKey{Tab: 1, Col: rightKey})
}

// sortFile reads a whole flat file, sorts its rows by the integer key
// column, and writes the sorted rows to outPath (emulating `sort -t, -k`).
func sortFile(t Table, key int, outPath string, counters *metrics.Counters) (Table, error) {
	// Workers 1: the handler appends to a shared slice without locks (it
	// emulates a sequential sort tool) and must not inherit the
	// parallel-by-default scan.
	sc, err := scan.Open(t.Path, scan.Options{Delimiter: t.delim(), Workers: 1, Counters: counters})
	if err != nil {
		return Table{}, err
	}
	type rec struct {
		key  int64
		line []byte
	}
	var recs []rec
	err = sc.ScanColumns(nil, func(rowID int64, fields []scan.FieldRef) error {
		k, err := scan.ParseInt64(fields[key].Bytes)
		if err != nil {
			return fmt.Errorf("baseline: sort key row %d: %w", rowID, err)
		}
		// Reassemble the row (the sort tool moves whole lines).
		var line []byte
		for i, f := range fields {
			if i > 0 {
				line = append(line, t.delim())
			}
			line = append(line, f.Bytes...)
		}
		recs = append(recs, rec{key: k, line: line})
		return nil
	}, nil)
	if err != nil {
		return Table{}, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })

	f, err := os.Create(outPath)
	if err != nil {
		return Table{}, fmt.Errorf("baseline: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var written int64
	for _, r := range recs {
		if _, err := bw.Write(r.line); err != nil {
			f.Close()
			return Table{}, err
		}
		if err := bw.WriteByte('\n'); err != nil {
			f.Close()
			return Table{}, err
		}
		written += int64(len(r.line)) + 1
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return Table{}, err
	}
	if err := f.Close(); err != nil {
		return Table{}, err
	}
	if counters != nil {
		counters.AddInternalBytesWritten(written)
	}
	return Table{Path: outPath, Delimiter: t.delim(), NumCols: t.NumCols, Types: t.Types}, nil
}

// SumColumn is a convenience for benchmark assertions: sum an int column
// of a view.
func SumColumn(v *exec.View, k exec.ColKey) int64 {
	c := v.Col(k)
	var s int64
	for _, x := range c.Ints {
		s += x
	}
	return s
}
