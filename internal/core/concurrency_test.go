package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"nodb/internal/csvgen"
	"nodb/internal/plan"
)

// TestConcurrentQueriesSameTable exercises the paper's §5.4 concurrency
// scenario: multiple queries racing to load (and reuse) the same columns
// of the same table must all see correct answers.
func TestConcurrentQueriesSameTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	const rows = 4000
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: rows, Cols: 4, Seed: 41}); err != nil {
		t.Fatal(err)
	}

	for _, pol := range []plan.Policy{plan.PolicyColumnLoads, plan.PolicyPartialV2, plan.PolicyAuto} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			e := newEngine(t, Options{Policy: pol})
			if err := e.Link("G", path); err != nil {
				t.Fatal(err)
			}
			// Columns hold permutations of 0..rows-1, so sum over the
			// full range is known in closed form.
			fullSum := int64(rows) * int64(rows-1) / 2

			var wg sync.WaitGroup
			errs := make(chan error, 16)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 5; i++ {
						res, err := e.Query("select sum(a1), count(*) from G where a1 >= 0")
						if err != nil {
							errs <- fmt.Errorf("worker %d: %w", w, err)
							return
						}
						if res.Rows[0][0].I != fullSum || res.Rows[0][1].I != rows {
							errs <- fmt.Errorf("worker %d: sum=%v count=%v", w, res.Rows[0][0], res.Rows[0][1])
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentQueriesDistinctTables runs parallel workloads on separate
// tables sharing one engine (and its counters).
func TestConcurrentQueriesDistinctTables(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	const n = 4
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, fmt.Sprintf("t%d.csv", i))
		if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 1000, Cols: 2, Seed: int64(50 + i)}); err != nil {
			t.Fatal(err)
		}
		if err := e.Link(fmt.Sprintf("t%d", i), path); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for q := 0; q < 10; q++ {
				res, err := e.Query(fmt.Sprintf("select count(*) from t%d", i))
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].I != 1000 {
					errs <- fmt.Errorf("t%d count = %v", i, res.Rows[0][0])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
