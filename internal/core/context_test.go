package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodb/internal/csvgen"
	"nodb/internal/plan"
)

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// trippingContext reports itself cancelled after `allow` Err checks. It
// gives tests a deterministic way to cancel mid-scan: the cooperative
// checkpoints (query entry, per-table, per-chunk) each call Err exactly
// once, so the trip point pins where in the pipeline the query dies.
type trippingContext struct {
	context.Context
	allow int64
	calls atomic.Int64
}

func (c *trippingContext) Err() error {
	if c.calls.Add(1) > c.allow {
		return context.Canceled
	}
	return nil
}

// TestQueryContextPreCancelled: a cancelled context aborts the query
// before it touches the raw file at all.
func TestQueryContextPreCancelled(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 1000, Cols: 4, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	if err := e.Link("T", path); err != nil {
		t.Fatal(err)
	}
	before := e.Counters().Snapshot()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryContext(ctx, "select sum(a1) from T")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext error = %v, want context.Canceled", err)
	}
	if delta := e.Counters().Snapshot().Sub(before).RawBytesRead; delta != 0 {
		t.Fatalf("pre-cancelled query read %d raw bytes, want 0", delta)
	}
}

// TestQueryContextCancelAbortsScanEarly: a context cancelled mid-scan
// stops the raw-file pass between chunks — the raw-bytes-read counter
// lands well short of the file size instead of covering the whole file.
func TestQueryContextCancelAbortsScanEarly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.csv")
	const rows = 50000
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: rows, Cols: 4, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	size := fileSize(t, path)

	for _, pol := range []plan.Policy{plan.PolicyColumnLoads, plan.PolicyPartialV2} {
		t.Run(pol.String(), func(t *testing.T) {
			// Small chunks give the scan many cancellation checkpoints.
			e := newEngine(t, Options{Policy: pol, ChunkSize: 4096})
			if err := e.Link("B", path); err != nil {
				t.Fatal(err)
			}
			before := e.Counters().Snapshot()

			// Let the entry checks and the first few chunks through, then
			// trip.
			ctx := &trippingContext{Context: context.Background(), allow: 8}
			_, err := e.QueryContext(ctx, "select sum(a1) from B where a1 >= 0")
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("QueryContext error = %v, want context.Canceled", err)
			}
			delta := e.Counters().Snapshot().Sub(before)
			if delta.RawBytesRead == 0 {
				t.Fatal("query never reached the raw file; cancellation not mid-scan")
			}
			if delta.RawBytesRead >= size/2 {
				t.Fatalf("cancelled scan read %d of %d raw bytes; want an early stop", delta.RawBytesRead, size)
			}

			// The aborted load must not have poisoned the store: the same
			// query under a live context answers correctly.
			res, err := e.Query("select sum(a1), count(*) from B where a1 >= 0")
			if err != nil {
				t.Fatal(err)
			}
			wantSum := int64(rows) * int64(rows-1) / 2
			if res.Rows[0][0].I != wantSum || res.Rows[0][1].I != rows {
				t.Fatalf("post-cancel query got sum=%v count=%v, want %d/%d",
					res.Rows[0][0], res.Rows[0][1], wantSum, rows)
			}
		})
	}
}

// TestQueryContextDeadlineExceeded: an expired deadline surfaces as
// context.DeadlineExceeded.
func TestQueryContextDeadlineExceeded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 1000, Cols: 4, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	if err := e.Link("T", path); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := e.QueryContext(ctx, "select sum(a1) from T")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("QueryContext error = %v, want context.DeadlineExceeded", err)
	}
}

// TestConcurrentQueryContextMixedPolicies fires parallel QueryContext
// calls at one engine while the loading policy is flipped underneath them
// and one large table is being auto-loaded as other workers query a second
// table. Run under -race this is the concurrency surface of the server:
// shared engine, concurrent loads, policy switches, and cancellations.
func TestConcurrentQueryContextMixedPolicies(t *testing.T) {
	dir := t.TempDir()
	bigPath := filepath.Join(dir, "big.csv")
	smallPath := filepath.Join(dir, "small.csv")
	const bigRows, smallRows = 8000, 2000
	if err := csvgen.WriteFile(bigPath, csvgen.Spec{Rows: bigRows, Cols: 4, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := csvgen.WriteFile(smallPath, csvgen.Spec{Rows: smallRows, Cols: 4, Seed: 5}); err != nil {
		t.Fatal(err)
	}

	e := newEngine(t, Options{Policy: plan.PolicyAuto})
	if err := e.Link("BIG", bigPath); err != nil {
		t.Fatal(err)
	}
	if err := e.Link("SMALL", smallPath); err != nil {
		t.Fatal(err)
	}
	bigSum := int64(bigRows) * int64(bigRows-1) / 2
	smallSum := int64(smallRows) * int64(smallRows-1) / 2

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	ctx := context.Background()

	// Repeated queries drive the auto policy's promotion of BIG's columns
	// to full loads while everything else is in flight.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				res, err := e.QueryContext(ctx, "select sum(a1), count(*) from BIG where a1 >= 0")
				if err != nil {
					errs <- fmt.Errorf("big worker %d: %w", w, err)
					return
				}
				if res.Rows[0][0].I != bigSum || res.Rows[0][1].I != bigRows {
					errs <- fmt.Errorf("big worker %d: sum=%v count=%v", w, res.Rows[0][0], res.Rows[0][1])
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				res, err := e.QueryContext(ctx, "select sum(a2) from SMALL where a2 >= 0")
				if err != nil {
					errs <- fmt.Errorf("small worker %d: %w", w, err)
					return
				}
				if res.Rows[0][0].I != smallSum {
					errs <- fmt.Errorf("small worker %d: sum=%v", w, res.Rows[0][0])
					return
				}
			}
		}(w)
	}
	// Policy flipper: queries in flight must stay correct whichever policy
	// each one observed at plan time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []plan.Policy{plan.PolicyColumnLoads, plan.PolicyPartialV2, plan.PolicyAuto}
		for i := 0; i < 24; i++ {
			e.SetPolicy(policies[i%len(policies)])
		}
		e.SetPolicy(plan.PolicyAuto)
	}()
	// Cancellation worker: cancelled queries must fail with the context
	// error and leave the shared store consistent for everyone else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			if _, err := e.QueryContext(cctx, "select sum(a3) from BIG"); !errors.Is(err, context.Canceled) {
				errs <- fmt.Errorf("cancel worker: error = %v, want context.Canceled", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
