package core

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"nodb/internal/plan"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// stmtCacheSize bounds the engine's statement cache. Each entry is a
// parsed AST (a few hundred bytes), so the bound is about predictability,
// not memory pressure.
const stmtCacheSize = 256

// stmtCache is a bounded LRU of parsed statements keyed by normalized SQL.
// Cached templates are shared and must be treated as immutable; Bind
// copies before substituting placeholders.
//
// Only parsing is cacheable: the physical plan is deliberately rebuilt per
// execution, because the adaptive-load rewrite depends on what the store
// holds *now* (a column loaded by the previous query changes this query's
// load operator).
type stmtCache struct {
	mu     sync.Mutex
	max    int
	order  *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   atomic.Int64
	misses atomic.Int64
}

type stmtCacheEntry struct {
	key  string
	stmt *sql.SelectStmt
}

func newStmtCache(max int) *stmtCache {
	return &stmtCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *stmtCache) get(key string) (*sql.SelectStmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*stmtCacheEntry).stmt, true
}

func (c *stmtCache) put(key string, stmt *sql.SelectStmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*stmtCacheEntry).stmt = stmt
		return
	}
	c.byKey[key] = c.order.PushFront(&stmtCacheEntry{key: key, stmt: stmt})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*stmtCacheEntry).key)
	}
}

func (c *stmtCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// parseCached parses a query through the bounded statement cache.
func (e *Engine) parseCached(query string) (*sql.SelectStmt, error) {
	key := sql.Normalize(query)
	if stmt, ok := e.stmts.get(key); ok {
		return stmt, nil
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	e.stmts.put(key, stmt)
	return stmt, nil
}

// PlanCacheStats reports the statement cache's hits, misses and current
// size (for tests and introspection).
func (e *Engine) PlanCacheStats() (hits, misses int64, size int) {
	return e.stmts.hits.Load(), e.stmts.misses.Load(), e.stmts.len()
}

// Stmt is a prepared statement: parsed and name-checked once, executed
// many times with different `?` arguments. It is safe for concurrent use;
// each execution binds its arguments into a private copy of the template.
type Stmt struct {
	e      *Engine
	query  string
	stmt   *sql.SelectStmt // immutable template, possibly with placeholders
	closed atomic.Bool
}

// Prepare parses and validates one SELECT statement with optional `?`
// placeholders. Validation binds the referenced tables and columns against
// the catalog, so unknown names fail here rather than at execution; the
// physical plan is still chosen per execution (it adapts to the store).
func (e *Engine) Prepare(query string) (*Stmt, error) {
	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	stmt, err := e.parseCached(query)
	if err != nil {
		return nil, err
	}
	// Validate names and shapes by building a throw-away plan with dummy
	// arguments. Placeholder values do not influence name binding.
	dummy := make([]any, stmt.NumParams)
	for i := range dummy {
		dummy[i] = storage.IntValue(0)
	}
	bound, err := stmt.Bind(dummy...)
	if err != nil {
		return nil, err
	}
	if _, err := plan.Build(bound, e, e.Policy()); err != nil {
		return nil, err
	}
	return &Stmt{e: e, query: query, stmt: stmt}, nil
}

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.stmt.NumParams }

// Query executes the statement with the given arguments, fully buffered.
func (s *Stmt) Query(args ...any) (*Result, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext executes the statement with the given arguments under ctx,
// fully buffered.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Result, error) {
	rows, err := s.QueryRows(ctx, args...)
	if err != nil {
		return nil, err
	}
	return rows.Result()
}

// QueryRows executes the statement with the given arguments and returns a
// streaming cursor. The cursor must be closed.
func (s *Stmt) QueryRows(ctx context.Context, args ...any) (*Rows, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	bound, err := s.stmt.Bind(args...)
	if err != nil {
		return nil, err
	}
	return s.e.QueryRowsStmt(ctx, bound)
}

// Close marks the statement unusable. The underlying cache entry stays
// shared, so Close is cheap and idempotent.
func (s *Stmt) Close() error {
	s.closed.Store(true)
	return nil
}
