package core

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nodb/internal/csvgen"
	"nodb/internal/plan"
)

// snapFiles returns the snapshot/spill files currently in dir.
func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		out = append(out, filepath.Join(dir, e.Name()))
	}
	return out
}

const warmQuery = "select sum(a1), avg(a2) from R where a1 > 15 and a1 < 45"

// TestWarmRestartRoundTrip is the tentpole path: learn, close, reopen,
// and answer from the snapshot without touching the raw file.
func TestWarmRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := writeFile(t, dir, "r.csv", basicCSV)

	e1 := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cache})
	if err := e1.Link("R", path); err != nil {
		t.Fatal(err)
	}
	want, err := e1.Query(warmQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatalf("close (snapshot write): %v", err)
	}
	if len(snapFiles(t, cache)) == 0 {
		t.Fatal("close left no snapshot files")
	}

	e2 := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cache})
	defer e2.Close()
	if err := e2.Link("R", path); err != nil {
		t.Fatal(err)
	}
	got, err := e2.Query(warmQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].I != want.Rows[0][0].I || got.Rows[0][1].F != want.Rows[0][1].F {
		t.Fatalf("warm result %v, want %v", got.Rows[0], want.Rows[0])
	}
	w := got.Stats.Work
	if w.RawBytesRead != 0 {
		t.Errorf("warm first query read %d raw bytes, want 0 (served from snapshot)", w.RawBytesRead)
	}
	if w.SnapshotBytesRead == 0 {
		t.Error("warm first query read no snapshot bytes")
	}
	if st := e2.SnapStats(); st.Hits == 0 {
		t.Errorf("snapshot stats show no hit: %+v", st)
	}
}

// TestWarmRestartPartialV2 covers sparse columns and coverage regions: a
// retained partial load must survive the restart and keep answering
// repeat queries without touching the raw file.
func TestWarmRestartPartialV2(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := writeFile(t, dir, "r.csv", basicCSV)
	q := "select sum(a2) from R where a1 > 15 and a1 < 45"

	e1 := newEngine(t, Options{Policy: plan.PolicyPartialV2, CacheDir: cache})
	if err := e1.Link("R", path); err != nil {
		t.Fatal(err)
	}
	want, err := e1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Second run is served from the store (covered region).
	if res, err := e1.Query(q); err != nil || res.Stats.Work.RawBytesRead != 0 {
		t.Fatalf("pre-restart repeat not covered: err=%v raw=%d", err, res.Stats.Work.RawBytesRead)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := newEngine(t, Options{Policy: plan.PolicyPartialV2, CacheDir: cache})
	defer e2.Close()
	if err := e2.Link("R", path); err != nil {
		t.Fatal(err)
	}
	got, err := e2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].I != want.Rows[0][0].I {
		t.Fatalf("warm result %v, want %v", got.Rows[0], want.Rows[0])
	}
	if got.Stats.Work.RawBytesRead != 0 {
		t.Errorf("restored coverage did not serve the query: %d raw bytes read", got.Stats.Work.RawBytesRead)
	}
}

// TestWarmRestartSplitFiles: split files must survive a close (detach, not
// delete) and be adopted by the next process via the snapshot manifest.
func TestWarmRestartSplitFiles(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	splits := filepath.Join(dir, "splits")
	path := writeFile(t, dir, "r.csv", basicCSV)

	e1 := NewEngine(Options{Policy: plan.PolicySplitFiles, SplitDir: splits, CacheDir: cache})
	if err := e1.Link("R", path); err != nil {
		t.Fatal(err)
	}
	want, err := e1.Query(warmQuery)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := e1.TableStats("R")
	if err != nil || st1.SplitBytes == 0 {
		t.Fatalf("no split files created: %+v err=%v", st1, err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine(Options{Policy: plan.PolicySplitFiles, SplitDir: splits, CacheDir: cache})
	defer e2.Close()
	if err := e2.Link("R", path); err != nil {
		t.Fatal(err)
	}
	got, err := e2.Query(warmQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].I != want.Rows[0][0].I {
		t.Fatalf("result changed across restart: %v vs %v", got.Rows[0], want.Rows[0])
	}
	st2, err := e2.TableStats("R")
	if err != nil {
		t.Fatal(err)
	}
	if st2.SplitBytes == 0 {
		t.Error("split files were not adopted after restart")
	}
}

// TestCorruptSnapshotFallsBackCold is the crash-safety contract: a
// snapshot damaged mid-section (torn write, bit rot, truncation) must
// yield a logged, counted invalidation and a cold start — never a query
// error, never a wrong result.
func TestCorruptSnapshotFallsBackCold(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := writeFile(t, dir, "r.csv", basicCSV)

	e1 := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cache})
	if err := e1.Link("R", path); err != nil {
		t.Fatal(err)
	}
	want, err := e1.Query(warmQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	files := snapFiles(t, cache)
	if len(files) == 0 {
		t.Fatal("no snapshot written")
	}
	for i, mode := range []string{"corrupt", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			// Re-damage from a clean copy each time: rewrite the snapshot.
			e := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cache})
			if err := e.Link("R", path); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Query(warmQuery); err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			snap := snapFiles(t, cache)[0]
			data, err := os.ReadFile(snap)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "corrupt":
				// Flip every byte from mid-file on: whatever sections the
				// query reads are guaranteed damaged.
				for off := len(data) / 3; off < len(data); off++ {
					data[off] ^= 0xff
				}
			case "truncate":
				data = data[:len(data)/3+i]
			}
			if err := os.WriteFile(snap, data, 0o644); err != nil {
				t.Fatal(err)
			}

			var logBuf bytes.Buffer
			log.SetOutput(&logBuf)
			defer log.SetOutput(os.Stderr)

			e2 := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cache})
			defer e2.Close()
			if err := e2.Link("R", path); err != nil {
				t.Fatal(err)
			}
			got, err := e2.Query(warmQuery)
			if err != nil {
				t.Fatalf("damaged snapshot surfaced an error to the query path: %v", err)
			}
			if got.Rows[0][0].I != want.Rows[0][0].I || got.Rows[0][1].F != want.Rows[0][1].F {
				t.Fatalf("damaged snapshot produced wrong result %v, want %v", got.Rows[0], want.Rows[0])
			}
			if got.Stats.Work.RawBytesRead == 0 {
				// Damage may have landed in a section this query does not
				// read; the result check above is the hard guarantee. But if
				// the dense sections died, the query must have re-read raw.
				t.Log("query served without raw reads: damage fell outside its sections")
			}
			if st := e2.SnapStats(); st.Invalidations == 0 {
				t.Errorf("damage was not counted as an invalidation: %+v", st)
			} else if logBuf.Len() == 0 {
				t.Error("invalidation was not logged")
			}
		})
	}
}

// TestStaleSnapshotInvalidatedOnEdit: editing the raw file between
// processes must discard the old snapshot and answer from the new data.
func TestStaleSnapshotInvalidatedOnEdit(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := writeFile(t, dir, "r.csv", basicCSV)

	e1 := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cache})
	if err := e1.Link("R", path); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Query("select sum(a1) from R"); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Edit the file: same shape, different values.
	if err := os.WriteFile(path, []byte("11,1,1,1\n21,1,1,1\n31,1,1,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cache})
	defer e2.Close()
	if err := e2.Link("R", path); err != nil {
		t.Fatal(err)
	}
	res, err := e2.Query("select sum(a1) from R")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 63 {
		t.Fatalf("sum over edited file = %v, want 63 (stale snapshot served?)", res.Rows[0][0])
	}
	if st := e2.SnapStats(); st.Invalidations == 0 {
		t.Errorf("stale snapshot was not invalidated: %+v", st)
	}
}

// TestEvictionSpillsAndReadmits: under a tight budget with a cache dir,
// evicting the positional map spills it to disk, and the next load
// re-admits it instead of re-learning.
func TestEvictionSpillsAndReadmits(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := filepath.Join(dir, "big.csv")
	if err := csvgen.EnsureFile(path, csvgen.Spec{Rows: 4000, Cols: 8, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	e := newEngine(t, Options{
		Policy:              plan.PolicyColumnLoads,
		CacheDir:            cache,
		MemoryBudget:        100 << 10, // far below the 8-column working set
		DisableRevalidation: true,
	})
	defer e.Close()
	if err := e.Link("R", path); err != nil {
		t.Fatal(err)
	}
	// Cycle every attribute so the governor must keep evicting.
	var want [8]int64
	for pass := 0; pass < 2; pass++ {
		for a := 1; a <= 8; a++ {
			res, err := e.Query(fmt.Sprintf("select sum(a%d) from R", a))
			if err != nil {
				t.Fatalf("pass %d a%d: %v", pass, a, err)
			}
			got := res.Rows[0][0].I
			if pass == 0 {
				want[a-1] = got
			} else if got != want[a-1] {
				t.Fatalf("a%d changed across eviction/spill cycles: %d vs %d", a, got, want[a-1])
			}
			if used := e.Governor().Used(); used > 100<<10 {
				t.Fatalf("governed bytes %d exceed budget after query", used)
			}
		}
	}
	st := e.SnapStats()
	if st.Spills == 0 {
		t.Errorf("tight budget with a cache dir produced no spills: %+v", st)
	}
	if st.Hits == 0 {
		t.Errorf("spilled structures were never re-admitted: %+v", st)
	}
}

// TestExplainShowsSnapshotCounters: Explain surfaces the cache activity.
func TestExplainShowsSnapshotCounters(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "r.csv", basicCSV)
	e := newEngine(t, Options{CacheDir: filepath.Join(dir, "cache")})
	defer e.Close()
	if err := e.Link("R", path); err != nil {
		t.Fatal(err)
	}
	out, err := e.Explain("select sum(a1) from R")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "snapshot: hits=") {
		t.Fatalf("Explain output lacks snapshot counters:\n%s", out)
	}
	// Without a cache dir the line must be absent.
	e2 := newEngine(t, Options{})
	defer e2.Close()
	if err := e2.Link("R", path); err != nil {
		t.Fatal(err)
	}
	out2, err := e2.Explain("select sum(a1) from R")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "snapshot:") {
		t.Fatalf("Explain shows snapshot counters without a cache dir:\n%s", out2)
	}
}

// TestSaveSnapshotsPeriodic: SaveSnapshots persists without closing, and
// a snapshot taken mid-life restores in a fresh engine.
func TestSaveSnapshotsPeriodic(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := writeFile(t, dir, "r.csv", basicCSV)

	e1 := newEngine(t, Options{CacheDir: cache})
	if err := e1.Link("R", path); err != nil {
		t.Fatal(err)
	}
	want, err := e1.Query(warmQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.SaveSnapshots(); err != nil {
		t.Fatal(err)
	}
	if len(snapFiles(t, cache)) == 0 {
		t.Fatal("SaveSnapshots wrote nothing")
	}
	// Simulate a crash: no Close-time snapshot.
	e1.cat.DropAll()

	e2 := newEngine(t, Options{CacheDir: cache})
	defer e2.Close()
	if err := e2.Link("R", path); err != nil {
		t.Fatal(err)
	}
	got, err := e2.Query(warmQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].I != want.Rows[0][0].I {
		t.Fatalf("post-crash restore result %v, want %v", got.Rows[0], want.Rows[0])
	}
	if got.Stats.Work.RawBytesRead != 0 {
		t.Errorf("flushed snapshot not used: %d raw bytes read", got.Stats.Work.RawBytesRead)
	}
}

// TestConcurrentQueriesUnderSpill races many clients against a tight
// budget with the disk tier on: restores, spills and re-admissions
// interleave, and every answer must stay correct (run under -race).
func TestConcurrentQueriesUnderSpill(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	path := filepath.Join(dir, "big.csv")
	if err := csvgen.EnsureFile(path, csvgen.Spec{Rows: 2000, Cols: 6, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{
		Policy:              plan.PolicyColumnLoads,
		CacheDir:            cache,
		MemoryBudget:        64 << 10,
		DisableRevalidation: true,
	})
	defer e.Close()
	if err := e.Link("R", path); err != nil {
		t.Fatal(err)
	}
	// Ground truth per column, computed single-threaded first.
	want := make([]int64, 6)
	for a := 1; a <= 6; a++ {
		res, err := e.Query(fmt.Sprintf("select sum(a%d) from R", a))
		if err != nil {
			t.Fatal(err)
		}
		want[a-1] = res.Rows[0][0].I
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				a := (g+i)%6 + 1
				res, err := e.Query(fmt.Sprintf("select sum(a%d) from R", a))
				if err != nil {
					errs <- err
					return
				}
				if got := res.Rows[0][0].I; got != want[a-1] {
					errs <- fmt.Errorf("a%d = %d, want %d", a, got, want[a-1])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
