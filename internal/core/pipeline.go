package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"nodb/internal/catalog"
	"nodb/internal/exec"
	"nodb/internal/loader"
	"nodb/internal/plan"
	"nodb/internal/storage"
)

// This file wires the vectorized operator pipeline (internal/exec's Batch
// operators) into the engine: plans compile into Scan → Filter → Project →
// Aggregate/Join → Sort → Limit trees, and the cursor drains the root.
// The row-at-a-time paths survive behind Options.DisableVectorExec as the
// differential-testing oracle.

// batchSize returns the configured rows-per-batch (DefaultBatchSize when
// unset).
func (e *Engine) batchSize() int {
	if e.opts.BatchSize > 0 {
		return e.opts.BatchSize
	}
	return exec.DefaultBatchSize
}

// batchStream bridges a push-style batch scan (loader.ScanBatchesContext)
// into the pull-based Operator interface. The scan runs in its own
// goroutine under a cancellable child context; Close cancels it, which is
// how a LIMIT cuts a raw-file pass short mid-stream.
type batchStream struct {
	stats  exec.OpStats
	name   string
	ch     chan *exec.Batch
	errc   chan error
	cancel context.CancelFunc
	once   sync.Once
	closed bool
	done   bool
	err    error
}

func newBatchStream(ctx context.Context, name string, run func(context.Context, func(*exec.Batch) error) error) *batchStream {
	sctx, cancel := context.WithCancel(ctx)
	s := &batchStream{
		name:   name,
		ch:     make(chan *exec.Batch, 2),
		errc:   make(chan error, 1),
		cancel: cancel,
	}
	go func() {
		err := run(sctx, func(b *exec.Batch) error {
			select {
			case s.ch <- b:
				return nil
			case <-sctx.Done():
				return sctx.Err()
			}
		})
		s.errc <- err // buffered: never blocks, so Close cannot leak the goroutine
		close(s.ch)
	}()
	return s
}

func (s *batchStream) Name() string              { return s.name }
func (s *batchStream) Children() []exec.Operator { return nil }
func (s *batchStream) Stats() exec.OpStats       { return s.stats }

func (s *batchStream) Next() (*exec.Batch, error) {
	if s.done {
		return nil, s.err
	}
	b, ok := <-s.ch
	if !ok {
		s.done = true
		err := <-s.errc
		if s.closed && errors.Is(err, context.Canceled) {
			err = nil // the cancellation Close itself caused, not a failure
		}
		s.err = err
		return nil, err
	}
	s.stats.Batches++
	s.stats.Rows += int64(b.Rows())
	return b, nil
}

func (s *batchStream) Close() {
	s.once.Do(func() {
		s.closed = true
		s.cancel()
		for range s.ch { // discard until the producer exits
		}
	})
}

// buildPipeline compiles the plan into an operator tree. The returned
// cleanup releases pins taken while building (it is safe to call exactly
// once, after the tree is closed); on error the partially built tree is
// already closed.
func (e *Engine) buildPipeline(ctx context.Context, p *plan.Plan) (exec.Operator, func(), error) {
	size := e.batchSize()
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}

	// Streaming scans keep raw-file row order only with one worker; the
	// buffered loaders always deliver rowID order. Plans that fold rows
	// into order-sensitive results (float sums accumulate in input order)
	// take the buffered source so both execution modes agree bit-for-bit.
	streamOK := len(p.Tables) == 1 && len(p.Joins) == 0 && !p.HasAggregates() &&
		len(p.GroupBy) == 0 && len(p.OrderBy) == 0

	srcs := make([]exec.Operator, 0, len(p.Tables))
	fail := func(err error) (exec.Operator, func(), error) {
		for _, s := range srcs {
			s.Close()
		}
		cleanup()
		return nil, func() {}, err
	}
	for i := range p.Tables {
		op, cl, err := e.tableSource(ctx, &p.Tables[i], size, streamOK)
		if cl != nil {
			cleanups = append(cleanups, cl)
		}
		if err != nil {
			return fail(err)
		}
		srcs = append(srcs, op)
	}

	root := srcs[0]
	for i, edge := range p.Joins {
		root = exec.NewHashJoinOp(root, srcs[i+1], edge.Left, edge.Right, size)
	}

	switch {
	case p.HasAggregates() && len(p.GroupBy) == 0:
		out := make([]int, len(p.Slots))
		for i, s := range p.Slots {
			out[i] = s.Idx
		}
		root = exec.NewAggOp(root, p.Aggs, out)
	case len(p.GroupBy) > 0:
		slots := make([]exec.OutSlot, len(p.Slots))
		for i, s := range p.Slots {
			slots[i] = exec.OutSlot{Agg: s.Agg, Idx: s.Idx}
		}
		root = exec.NewGroupByOp(root, p.GroupBy, p.Aggs, slots, p.Project, size)
	default:
		root = exec.NewProjectOp(root, p.Project)
	}
	if len(p.OrderBy) > 0 {
		root = exec.NewSortOp(root, p.OrderBy, len(p.Output), size)
	}
	root = exec.NewLimitOp(root, p.Limit)
	return root, cleanup, nil
}

// tableSource builds one table's scan subtree: its adaptive load operator
// runs (or streams) exactly as on the row-at-a-time paths, and the result
// enters the pipeline as batches keyed under the table's ordinal.
func (e *Engine) tableSource(ctx context.Context, tp *plan.TablePlan, size int, streamOK bool) (exec.Operator, func(), error) {
	t, err := e.cat.Get(tp.Name)
	if err != nil {
		return nil, nil, err
	}
	t.Prepare(prepareCols(t, tp)) // lazy snapshot restore before the load operator runs

	viewSrc := func(v *exec.View, err error) (exec.Operator, func(), error) {
		if err != nil {
			return nil, nil, err
		}
		return exec.NewViewScan(v, size), nil, nil
	}

	switch tp.LoadOp {
	case plan.LoadNone, plan.LoadFull, plan.LoadColumns, plan.LoadSplit:
		if err := e.runLoad(ctx, t, tp); err != nil {
			return nil, nil, err
		}
		if e.opts.Cracking && !tp.Conj.Empty() {
			// Cracking reorganizes columns as a selection side effect; the
			// cracked select stays row-at-a-time and its (already filtered)
			// view re-enters the pipeline as batches.
			return viewSrc(e.denseSelect(ctx, t, tp))
		}
		src, unpin, err := e.ensureDensePinned(ctx, t, tp.Pins)
		if err != nil {
			return nil, nil, err
		}
		scan, err := exec.NewDenseScan(src, tp.Ordinal, tp.Pins, size)
		if err != nil {
			unpin()
			return nil, nil, err
		}
		var op exec.Operator = scan
		if !tp.Conj.Empty() {
			op = exec.NewFilterOp(op, tp.Ordinal, tp.Conj)
		}
		return op, unpin, nil
	case plan.LoadPartialEphemeral:
		if streamOK {
			return e.streamSource(ctx, e.ld, t, tp, size), nil, nil
		}
		return viewSrc(e.ld.PartialScanContext(ctx, t, tp.NeedCols, tp.Conj, tp.Ordinal))
	case plan.LoadExternal:
		if streamOK {
			return e.streamSource(ctx, e.extLd, t, tp, size), nil, nil
		}
		return viewSrc(e.extLd.PartialScanContext(ctx, t, tp.NeedCols, tp.Conj, tp.Ordinal))
	case plan.LoadPartialRetained:
		return viewSrc(e.ld.PartialLoadV2Context(ctx, t, tp.NeedCols, tp.Conj, tp.Ordinal))
	case plan.LoadAuto:
		return viewSrc(e.autoLoad(ctx, t, tp))
	default:
		return nil, nil, fmt.Errorf("core: unknown load op %v", tp.LoadOp)
	}
}

// streamSource wraps a predicate-pushing raw-file scan as a pipeline
// source. Batches arrive post-filter, so no FilterOp follows.
func (e *Engine) streamSource(ctx context.Context, ld *loader.Loader, t *catalog.Table, tp *plan.TablePlan, size int) exec.Operator {
	name := fmt.Sprintf("StreamScan(%s t%d cols=%v)", tp.Name, tp.Ordinal, tp.NeedCols)
	return newBatchStream(ctx, name, func(sctx context.Context, emit func(*exec.Batch) error) error {
		return ld.ScanBatchesContext(sctx, t, tp.NeedCols, tp.Conj, tp.Ordinal, size, emit)
	})
}

// executeVector compiles and drains the vectorized pipeline, and returns
// the executed operator tree (with per-operator batch/row counters) as the
// plan note.
func (e *Engine) executeVector(ctx context.Context, p *plan.Plan, w *rowWriter) (string, error) {
	root, cleanup, err := e.buildPipeline(ctx, p)
	if err != nil {
		cleanup()
		return "", err
	}
	defer cleanup()
	defer root.Close()

	err = drainPipeline(ctx, root, len(p.Output), w)
	note := "vectorized pipeline:\n" + indentTree(exec.ExplainTree(root))
	return note, err
}

// drainPipeline pulls the root to exhaustion, flattening each batch's
// output-keyed vectors into result rows for the cursor. Each batch backs
// its rows with one flat value array, keeping the drain under one
// allocation per row.
func drainPipeline(ctx context.Context, root exec.Operator, arity int, w *rowWriter) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := root.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		cols := make([]*storage.DenseColumn, arity)
		for j := 0; j < arity; j++ {
			if cols[j] = b.Col(exec.OutKey(j)); cols[j] == nil {
				return fmt.Errorf("core: output column %d not in batch", j)
			}
		}
		rows := make([][]storage.Value, 0, b.Rows())
		flat := make([]storage.Value, b.Rows()*arity)
		fill := func(r, i int) {
			row := flat[r*arity : (r+1)*arity : (r+1)*arity]
			for j, c := range cols {
				row[j] = c.Value(i)
			}
			rows = append(rows, row)
		}
		if b.Sel == nil {
			for i := 0; i < b.N; i++ {
				fill(i, i)
			}
		} else {
			for r, i := range b.Sel {
				fill(r, int(i))
			}
		}
		if err := w.emitAll(rows); err != nil {
			return err
		}
	}
}

// describePipeline renders the operator tree a plan would compile to,
// without executing anything — ExplainContext shows it alongside the
// logical plan. The shapes mirror buildPipeline exactly.
func describePipeline(p *plan.Plan, batchSize int) string {
	streamOK := len(p.Tables) == 1 && len(p.Joins) == 0 && !p.HasAggregates() &&
		len(p.GroupBy) == 0 && len(p.OrderBy) == 0

	src := func(tp *plan.TablePlan) string {
		switch tp.LoadOp {
		case plan.LoadNone, plan.LoadFull, plan.LoadColumns, plan.LoadSplit:
			s := fmt.Sprintf("DenseScan(t%d cols=%v)", tp.Ordinal, tp.Pins)
			if !tp.Conj.Empty() {
				s = fmt.Sprintf("Filter(t%d %d preds)\n  %s", tp.Ordinal, len(tp.Conj.Preds), s)
			}
			return s
		case plan.LoadPartialEphemeral, plan.LoadExternal:
			if streamOK {
				return fmt.Sprintf("StreamScan(%s t%d cols=%v)", tp.Name, tp.Ordinal, tp.NeedCols)
			}
			return fmt.Sprintf("ViewScan(%s t%d)", tp.Name, tp.Ordinal)
		default:
			return fmt.Sprintf("ViewScan(%s t%d)", tp.Name, tp.Ordinal)
		}
	}

	tree := src(&p.Tables[0])
	for i, edge := range p.Joins {
		tree = fmt.Sprintf("HashJoin(%v=%v)\n%s\n%s",
			edge.Left, edge.Right, indent(tree), indent(src(&p.Tables[i+1])))
	}
	switch {
	case p.HasAggregates() && len(p.GroupBy) == 0:
		tree = fmt.Sprintf("Aggregate(%d)\n%s", len(p.Aggs), indent(tree))
	case len(p.GroupBy) > 0:
		tree = fmt.Sprintf("GroupBy(%v aggs=%d)\n%s", p.GroupBy, len(p.Aggs), indent(tree))
	default:
		tree = fmt.Sprintf("Project(%v)\n%s", p.Project, indent(tree))
	}
	if len(p.OrderBy) > 0 {
		tree = fmt.Sprintf("Sort(%v)\n%s", p.OrderBy, indent(tree))
	}
	if p.Limit < 0 {
		tree = "Limit(none)\n" + indent(tree)
	} else {
		tree = fmt.Sprintf("Limit(%d)\n%s", p.Limit, indent(tree))
	}
	return fmt.Sprintf("pipeline (batch=%d):\n%s\n", batchSize, indent(tree))
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}

func indentTree(s string) string {
	return indent(strings.TrimRight(s, "\n")) + "\n"
}
