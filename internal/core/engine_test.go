package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nodb/internal/csvgen"
	"nodb/internal/plan"
	"nodb/internal/schema"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	if opts.SplitDir == "" {
		opts.SplitDir = filepath.Join(t.TempDir(), "splits")
	}
	return NewEngine(opts)
}

// allPolicies are every loading strategy; results must be identical under
// all of them.
var allPolicies = []plan.Policy{
	plan.PolicyFullLoad, plan.PolicyColumnLoads, plan.PolicyPartialV1,
	plan.PolicyPartialV2, plan.PolicySplitFiles, plan.PolicyExternal,
}

const basicCSV = "10,100,1000,5\n20,200,2000,6\n30,300,3000,7\n40,400,4000,8\n"

func TestQueryAggregatesAllPolicies(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "r.csv", basicCSV)
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			e := newEngine(t, Options{Policy: pol})
			if err := e.Link("R", path); err != nil {
				t.Fatal(err)
			}
			res, err := e.Query("select sum(a1), min(a4), max(a3), avg(a2) from R where a1 > 15 and a1 < 45 and a2 > 150 and a2 < 450")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 {
				t.Fatalf("rows = %d", len(res.Rows))
			}
			row := res.Rows[0]
			// Qualifying rows: (20,...), (30,...), (40,...).
			if row[0].I != 90 {
				t.Errorf("sum(a1) = %v, want 90", row[0])
			}
			if row[1].I != 6 {
				t.Errorf("min(a4) = %v, want 6", row[1])
			}
			if row[2].I != 4000 {
				t.Errorf("max(a3) = %v, want 4000", row[2])
			}
			if row[3].F != 300 {
				t.Errorf("avg(a2) = %v, want 300", row[3])
			}
		})
	}
}

func TestQuerySequenceConsistencyAcrossPolicies(t *testing.T) {
	// A workload of shifting, overlapping queries must give identical
	// answers under every policy (the adaptive store must never change
	// semantics).
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 5000, Cols: 4, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"select sum(a1), avg(a2) from G where a1 > 500 and a1 < 1500 and a2 > 100 and a2 < 4000",
		"select sum(a1), avg(a2) from G where a1 > 600 and a1 < 1400 and a2 > 200 and a2 < 3900", // narrower
		"select sum(a1), avg(a2) from G where a1 > 100 and a1 < 4000 and a2 > 50 and a2 < 4500",  // wider
		"select sum(a3), max(a4) from G where a3 > 1000 and a3 < 2000",                           // different columns
		"select count(*) from G where a1 between 1000 and 2000",
		"select sum(a1), avg(a2) from G where a1 > 600 and a1 < 1400 and a2 > 200 and a2 < 3900", // repeat
	}
	var want [][]string
	for pi, pol := range allPolicies {
		e := newEngine(t, Options{Policy: pol})
		if err := e.Link("G", path); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			res, err := e.Query(q)
			if err != nil {
				t.Fatalf("policy %v query %d: %v", pol, qi, err)
			}
			var got []string
			for _, v := range res.Rows[0] {
				got = append(got, v.String())
			}
			if pi == 0 {
				want = append(want, got)
				continue
			}
			for ci := range got {
				if got[ci] != want[qi][ci] {
					t.Errorf("policy %v query %d col %d: %s != %s (reference %v)",
						pol, qi, ci, got[ci], want[qi][ci], allPolicies[0])
				}
			}
		}
	}
}

func TestCrackingMatchesPlain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 5000, Cols: 4, Seed: 23}); err != nil {
		t.Fatal(err)
	}
	plainE := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	crackE := newEngine(t, Options{Policy: plan.PolicyColumnLoads, Cracking: true})
	plainE.Link("G", path)
	crackE.Link("G", path)
	for i := 0; i < 10; i++ {
		lo := int64(i * 400)
		q := fmt.Sprintf("select sum(a1), count(*) from G where a1 > %d and a1 < %d and a2 > 100 and a2 < 4500", lo, lo+700)
		a, err := plainE.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := crackE.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows[0][0].I != b.Rows[0][0].I || a.Rows[0][1].I != b.Rows[0][1].I {
			t.Fatalf("query %d: plain=%v cracked=%v", i, a.Rows[0], b.Rows[0])
		}
	}
}

func TestJoinQueryAllPolicies(t *testing.T) {
	dir := t.TempDir()
	// R: key + value; S: key + value. 1:1 join on key.
	var r, s strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&r, "%d,%d\n", i, i*10)
		fmt.Fprintf(&s, "%d,%d\n", i, i*100)
	}
	rp := writeFile(t, dir, "r.csv", r.String())
	sp := writeFile(t, dir, "s.csv", s.String())
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			e := newEngine(t, Options{Policy: pol})
			e.Link("R", rp)
			e.Link("S", sp)
			res, err := e.Query("select count(*), sum(r.a2), sum(s.a2) from R r join S s on r.a1 = s.a1 where r.a1 >= 10 and r.a1 < 20")
			if err != nil {
				t.Fatal(err)
			}
			row := res.Rows[0]
			if row[0].I != 10 {
				t.Errorf("count = %v", row[0])
			}
			if row[1].I != 1450 { // sum of 10i for i=10..19 = 10*145
				t.Errorf("sum(r.a2) = %v, want 1450", row[1])
			}
			if row[2].I != 14500 {
				t.Errorf("sum(s.a2) = %v, want 14500", row[2])
			}
		})
	}
}

func TestGroupByOrderByLimit(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", "1,10\n2,20\n1,30\n2,40\n3,50\n")
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	e.Link("T", path)
	res, err := e.Query("select count(*), a1, sum(a2) from T group by a1 order by a1 desc limit 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Desc: a1=3 first (count 1, sum 50), then a1=2 (count 2, sum 60).
	if res.Rows[0][1].I != 3 || res.Rows[0][0].I != 1 || res.Rows[0][2].I != 50 {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
	if res.Rows[1][1].I != 2 || res.Rows[1][0].I != 2 || res.Rows[1][2].I != 60 {
		t.Errorf("row 1 = %v", res.Rows[1])
	}
}

func TestPlainProjection(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", "1,10\n2,20\n3,30\n")
	e := newEngine(t, Options{Policy: plan.PolicyPartialV2})
	e.Link("T", path)
	res, err := e.Query("select a2, a1 from T where a1 >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 20 || res.Rows[0][1].I != 2 {
		t.Errorf("row 0 = %v", res.Rows[0])
	}
	if res.Columns[0] != "a2" || res.Columns[1] != "a1" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", "1,2\n3,4\n")
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	e.Link("T", path)
	res, err := e.Query("select * from T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Rows[0]) != 2 {
		t.Fatalf("star result shape: %v", res.Rows)
	}
}

func TestFileEditInvalidates(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", "1\n2\n3\n")
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	e.Link("T", path)
	res, _ := e.Query("select sum(a1) from T")
	if res.Rows[0][0].I != 6 {
		t.Fatalf("initial sum = %v", res.Rows[0][0])
	}
	// The user edits the file with a text editor (paper §2.1: "we can
	// actually edit the data with a text editor directly at any time and
	// fire a query again").
	time.Sleep(10 * time.Millisecond)
	writeFile(t, dir, "t.csv", "10\n20\n")
	res2, err := e.Query("select sum(a1) from T")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].I != 30 {
		t.Errorf("post-edit sum = %v, want 30", res2.Rows[0][0])
	}
}

func TestMemoryBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 10000, Cols: 4, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads, MemoryBudget: 1000})
	e.Link("G", path)
	res, err := e.Query("select sum(a1) from G where a1 < 100")
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Budget is far below one column (80KB): state must be evicted.
	if got := e.Catalog().MemSize(); got > 1000 {
		t.Errorf("MemSize = %d after eviction, budget 1000", got)
	}
	// Queries still work (reload).
	res2, err := e.Query("select count(*) from G")
	if err != nil || res2.Rows[0][0].I != 10000 {
		t.Errorf("post-eviction query: %v, %v", res2, err)
	}
}

func TestQueryStatsAndCounters(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", basicCSV)
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	e.Link("T", path)
	res, err := e.Query("select sum(a1) from T")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Work.RawBytesRead == 0 {
		t.Error("first query should read raw bytes")
	}
	if res.Stats.Wall <= 0 {
		t.Error("wall time should be positive")
	}
	if !strings.Contains(res.Stats.Plan, "scan T") {
		t.Errorf("plan = %q", res.Stats.Plan)
	}
	res2, _ := e.Query("select sum(a1) from T")
	if res2.Stats.Work.RawBytesRead != 0 {
		t.Error("second query should be served from the store")
	}
}

func TestExternalPolicyNeverCaches(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", basicCSV)
	e := newEngine(t, Options{Policy: plan.PolicyExternal})
	e.Link("T", path)
	e.Query("select sum(a1) from T")
	r2, _ := e.Query("select sum(a1) from T")
	if r2.Stats.Work.RawBytesRead == 0 {
		t.Error("external policy must re-read the file every query")
	}
}

func TestColumnLoadsLoadOnlyNeeded(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", basicCSV)
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	e.Link("T", path)
	e.Query("select sum(a1) from T")
	tab, _ := e.Catalog().Get("T")
	if tab.Dense(0) == nil {
		t.Error("a1 should be loaded")
	}
	if tab.Dense(2) != nil || tab.Dense(3) != nil {
		t.Error("untouched columns must stay unloaded (that is the point)")
	}
}

func TestExplain(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", basicCSV)
	e := newEngine(t, Options{Policy: plan.PolicyPartialV2})
	e.Link("T", path)
	s, err := e.Explain("select sum(a1) from T where a1 > 5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "partial-load-v2") {
		t.Errorf("explain = %q", s)
	}
}

func TestSetPolicyMidSession(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", basicCSV)
	e := newEngine(t, Options{Policy: plan.PolicyPartialV1})
	e.Link("T", path)
	r1, _ := e.Query("select sum(a1) from T")
	e.SetPolicy(plan.PolicyColumnLoads)
	r2, err := e.Query("select sum(a1) from T")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0].I != r2.Rows[0][0].I {
		t.Error("policy switch changed semantics")
	}
	if e.Policy() != plan.PolicyColumnLoads {
		t.Error("SetPolicy not applied")
	}
}

func TestQueryErrors(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", basicCSV)
	e := newEngine(t, Options{})
	e.Link("T", path)
	for _, q := range []string{
		"select sum(a1) from Missing",
		"select nope from T",
		"not sql at all",
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestUnlinkAndTables(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", basicCSV)
	e := newEngine(t, Options{})
	e.Link("T", path)
	if tables := e.Tables(); len(tables) != 1 || tables[0] != "T" {
		t.Errorf("Tables = %v", tables)
	}
	if err := e.Unlink("T"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("select * from T"); err == nil {
		t.Error("query after unlink should fail")
	}
}

func TestResultString(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", "1,2\n")
	e := newEngine(t, Options{})
	e.Link("T", path)
	res, _ := e.Query("select a1, a2 from T")
	s := res.String()
	if !strings.Contains(s, "a1") || !strings.Contains(s, "1") {
		t.Errorf("Result.String = %q", s)
	}
}

func TestHeaderedFileQueryByName(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", "price,qty\n10,2\n20,3\n")
	e := newEngine(t, Options{Policy: plan.PolicyPartialV2})
	e.Link("Sales", path)
	res, err := e.Query("select sum(price), sum(qty) from Sales where price > 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 30 || res.Rows[0][1].I != 5 {
		t.Errorf("named columns: %v", res.Rows[0])
	}
}

func TestFloatAndStringColumns(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", "a,1.5,x\nb,2.5,y\nc,3.5,x\n")
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	e.Link("T", path)
	res, err := e.Query("select count(*), sum(a2) from T where a3 = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 2 || res.Rows[0][1].F != 5.0 {
		t.Errorf("mixed types: %v", res.Rows[0])
	}
}

func TestMergeJoinEquivalence(t *testing.T) {
	// The engine uses hash joins; verify against merge join through exec
	// indirectly by checking a 1:1 join count.
	dir := t.TempDir()
	var r, s strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&r, "%d\n", i)
		fmt.Fprintf(&s, "%d\n", 499-i)
	}
	rp := writeFile(t, dir, "r.csv", r.String())
	sp := writeFile(t, dir, "s.csv", s.String())
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	e.Link("R", rp)
	e.Link("S", sp)
	res, err := e.Query("select count(*) from R r join S s on r.a1 = s.a1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 500 {
		t.Errorf("1:1 join count = %v", res.Rows[0][0])
	}
}

func TestSchemaTypesExposed(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", "1,2.5,abc\n")
	e := newEngine(t, Options{})
	e.Link("T", path)
	sch, err := e.TableSchema("T")
	if err != nil {
		t.Fatal(err)
	}
	want := []schema.Type{schema.Int64, schema.Float64, schema.String}
	for i, w := range want {
		if sch.Columns[i].Type != w {
			t.Errorf("col %d type = %v, want %v", i, sch.Columns[i].Type, w)
		}
	}
}
