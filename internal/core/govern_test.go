package core

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nodb/internal/csvgen"
	"nodb/internal/plan"
)

// TestBudgetWorkloadCorrectness is the acceptance scenario: a workload
// that touches more columns than fit in the budget completes with correct
// results, the governed adaptive state returns under the budget after
// every query, and a re-query of an evicted column transparently rebuilds
// it from the raw file.
func TestBudgetWorkloadCorrectness(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.csv")
	const rows, cols = 20_000, 6
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: rows, Cols: cols, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// One dense int64 column is rows*8 = 160 KB; budget fits ~2.5 columns
	// (plus the positional map), far less than the 6-column working set.
	const budget = 400_000
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads, MemoryBudget: budget})
	defer e.Close()
	if err := e.Link("W", path); err != nil {
		t.Fatal(err)
	}

	// Reference sums from an unbudgeted engine.
	ref := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	defer ref.Close()
	if err := ref.Link("W", path); err != nil {
		t.Fatal(err)
	}
	want := make([]int64, cols)
	for c := 0; c < cols; c++ {
		res, err := ref.Query(fmt.Sprintf("select sum(a%d) from W", c+1))
		if err != nil {
			t.Fatal(err)
		}
		want[c] = res.Rows[0][0].I
	}

	// Two passes over every column: the second pass re-touches columns the
	// first pass's evictions removed.
	for pass := 0; pass < 2; pass++ {
		for c := 0; c < cols; c++ {
			res, err := e.Query(fmt.Sprintf("select sum(a%d) from W", c+1))
			if err != nil {
				t.Fatalf("pass %d col %d: %v", pass, c, err)
			}
			if got := res.Rows[0][0].I; got != want[c] {
				t.Fatalf("pass %d sum(a%d) = %d, want %d", pass, c+1, got, want[c])
			}
			if used := e.Governor().Used(); used > budget {
				t.Fatalf("pass %d col %d: governed bytes %d exceed budget %d after query", pass, c, used, budget)
			}
		}
	}
	st := e.MemStats()
	if st.Evictions == 0 {
		t.Fatal("workload over budget should have evicted something")
	}
	if st.Budget != budget {
		t.Fatalf("budget = %d, want %d", st.Budget, budget)
	}
	if s := e.Counters().Snapshot(); s.Evictions != st.Evictions || s.EvictedBytes != st.EvictedBytes {
		t.Fatalf("metrics (%d, %d) disagree with governor (%d, %d)",
			s.Evictions, s.EvictedBytes, st.Evictions, st.EvictedBytes)
	}
}

// TestBudgetRetainedPartialLoads runs the same over-budget scenario under
// the retaining partial-load policy: sparse columns and their coverage
// regions must be evicted coherently (a region never outlives its data).
func TestBudgetRetainedPartialLoads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.csv")
	const rows, cols = 20_000, 6
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: rows, Cols: cols, Seed: 10}); err != nil {
		t.Fatal(err)
	}
	const budget = 300_000
	e := newEngine(t, Options{Policy: plan.PolicyPartialV2, MemoryBudget: budget})
	defer e.Close()
	if err := e.Link("P", path); err != nil {
		t.Fatal(err)
	}
	// Wide predicates retain most of each touched column.
	for pass := 0; pass < 2; pass++ {
		for c := 0; c < cols; c++ {
			q := fmt.Sprintf("select sum(a%d) from P where a%d >= 0", c+1, c+1)
			res, err := e.Query(q)
			if err != nil {
				t.Fatalf("pass %d col %d: %v", pass, c, err)
			}
			if len(res.Rows) != 1 {
				t.Fatalf("pass %d col %d: rows = %d", pass, c, len(res.Rows))
			}
			if used := e.Governor().Used(); used > budget {
				t.Fatalf("pass %d col %d: governed bytes %d exceed budget %d", pass, c, used, budget)
			}
		}
	}
	if e.MemStats().Evictions == 0 {
		t.Fatal("retained partial loads over budget should have evicted")
	}
}

// TestEvictionDuringConcurrentCursor streams a cursor over a pinned dense
// column while a second workload drives the governor into eviction. The
// pinned column must never be chosen as a victim while the cursor is
// open, and every streamed row must be correct. Run under -race in CI.
func TestEvictionDuringConcurrentCursor(t *testing.T) {
	dir := t.TempDir()
	apath := filepath.Join(dir, "a.csv")
	bpath := filepath.Join(dir, "b.csv")
	const rows = 10_000
	if err := csvgen.WriteFile(apath, csvgen.Spec{Rows: rows, Cols: 2, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := csvgen.WriteFile(bpath, csvgen.Spec{Rows: rows, Cols: 6, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	// Budget holds A's two columns plus roughly one of B's: every B query
	// forces evictions while A streams.
	const budget = 260_000
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads, MemoryBudget: budget})
	defer e.Close()
	if err := e.Link("A", apath); err != nil {
		t.Fatal(err)
	}
	if err := e.Link("B", bpath); err != nil {
		t.Fatal(err)
	}

	// Load A's column and learn the expected values.
	res, err := e.Query("select a1 from A")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 0, rows)
	for _, r := range res.Rows {
		want = append(want, r[0].I)
	}

	const readers = 4
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	// Readers: stream full cursors over A's pinned column while evictions
	// happen; every value must match.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				rows, err := e.QueryRows(context.Background(), "select a1 from A")
				if err != nil {
					errs <- err
					return
				}
				i := 0
				for rows.Next() {
					var v int64
					if err := rows.Scan(&v); err != nil {
						rows.Close()
						errs <- err
						return
					}
					if i < len(want) && v != want[i] {
						rows.Close()
						errs <- fmt.Errorf("row %d = %d, want %d", i, v, want[i])
						return
					}
					i++
				}
				if err := rows.Close(); err != nil {
					errs <- err
					return
				}
				if i != len(want) {
					errs <- fmt.Errorf("streamed %d rows, want %d", i, len(want))
					return
				}
			}
		}()
	}

	// Pressure: cycle B's columns, each query exceeding the budget and
	// forcing the governor to evict.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 3; iter++ {
			for c := 1; c <= 6; c++ {
				if _, err := e.Query(fmt.Sprintf("select sum(a%d) from B", c)); err != nil {
					errs <- fmt.Errorf("pressure a%d: %w", c, err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if e.MemStats().Evictions == 0 {
		t.Fatal("pressure workload should have evicted under budget")
	}
}

// TestExplainShowsPins verifies EXPLAIN surfaces what the plan would pin.
func TestExplainShowsPins(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "t.csv", basicCSV)
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	defer e.Close()
	if err := e.Link("T", path); err != nil {
		t.Fatal(err)
	}
	p, err := e.Explain("select sum(a1) from T where a2 > 100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p, "pin=[0 1]") {
		t.Fatalf("explain should show pinned columns: %q", p)
	}
}
