package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nodb/internal/exec"
	"nodb/internal/metrics"
	"nodb/internal/plan"
	"nodb/internal/qos"
	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// rowBatchSize is how many rows the producer accumulates before handing a
// batch to the cursor — large enough that channel synchronization is off
// the per-row path of a fast scan. rowFlushInterval bounds how long a
// partial batch may sit: a background ticker flushes it, so a highly
// selective scan over a large file delivers each found row within the
// interval even when no further rows qualify for a long time.
const (
	rowBatchSize     = 256
	rowFlushInterval = 25 * time.Millisecond
)

// cursorContext is the context a cursor's producer runs under: cancellable
// by Close (and by Engine.Close), while delegating Err to the caller's
// context *dynamically*. The engine's cooperative checkpoints poll Err
// between chunks, so a parent context that reports cancellation through
// Err alone (without a Done channel) still stops the scan — plain
// context.WithCancel would hide the parent's Err method.
type cursorContext struct {
	parent context.Context
	done   chan struct{}
	mu     sync.Mutex
	err    error
}

func newCursorContext(parent context.Context) (*cursorContext, context.CancelFunc) {
	c := &cursorContext{parent: parent, done: make(chan struct{})}
	cancel := func() { c.cancel(context.Canceled) }
	stop := context.AfterFunc(parent, func() { c.cancel(parent.Err()) })
	return c, func() { stop(); cancel() }
}

func (c *cursorContext) cancel(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.err = err
	close(c.done)
}

func (c *cursorContext) Done() <-chan struct{} { return c.done }

func (c *cursorContext) Err() error {
	c.mu.Lock()
	err := c.err
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return c.parent.Err()
}

func (c *cursorContext) Deadline() (deadline time.Time, ok bool) { return c.parent.Deadline() }

func (c *cursorContext) Value(key any) any { return c.parent.Value(key) }

// errLimitReached aborts a streaming scan once LIMIT rows were emitted. It
// is internal: the cursor reports it as clean end-of-rows.
var errLimitReached = errors.New("core: row limit reached")

// Rows is a streaming query cursor. Rows are produced by a pull-based
// pipeline with early termination: for streamable plans (see the
// streamable method) a LIMIT — or closing the cursor — stops a raw-file
// scan mid-pass (between chunks, via the per-chunk cancellation hooks)
// instead of letting it finish; non-streamable plans materialize first,
// and closing their cursor cancels whatever scan is still running.
//
// The iteration protocol matches database/sql: Next advances and reports
// whether a row is available, Scan copies the current row into Go values,
// Err reports the error that ended iteration, and Close releases the
// cursor (stopping any in-flight scan). A Rows must be closed; Close is
// idempotent and a fully drained cursor closes cheaply.
//
// Rows is not safe for concurrent use by multiple goroutines.
type Rows struct {
	cols []string

	cancel context.CancelFunc
	unhook func() // releases the engine-close hook
	ch     chan [][]storage.Value

	// Written by the producer before it closes ch; the channel close is
	// the synchronization point making them visible to the consumer.
	finalErr   error
	finalStats QueryStats

	// Consumer-side state.
	cur         [][]storage.Value
	idx         int
	row         []storage.Value
	done        bool
	closed      bool
	closedEarly bool
	err         error
	stats       QueryStats
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row, blocking until one is available or the
// query ends. It returns false at end-of-rows or on error; consult Err to
// tell the two apart.
func (r *Rows) Next() bool {
	if r.closed || r.done {
		return false
	}
	if r.idx < len(r.cur) {
		r.row = r.cur[r.idx]
		r.idx++
		return true
	}
	batch, ok := <-r.ch
	if !ok {
		r.finish()
		return false
	}
	r.cur, r.idx = batch, 1
	r.row = batch[0]
	return true
}

// finish records the producer's final error and stats (visible once the
// channel is closed) and releases the cursor's contexts.
func (r *Rows) finish() {
	r.done = true
	r.err = r.finalErr
	r.stats = r.finalStats
	r.release()
}

func (r *Rows) release() {
	if r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
	if r.unhook != nil {
		r.unhook()
		r.unhook = nil
	}
}

// Row returns the current row's values. The slice is owned by the caller
// and remains valid after further Next calls.
func (r *Rows) Row() []storage.Value {
	return r.row
}

// Scan copies the current row into dest. Supported destinations: *int64,
// *int, *float64, *string, *bool, *any and *storage.Value. Numeric values
// widen (int64 → float64); *string accepts any value via its text
// rendering.
func (r *Rows) Scan(dest ...any) error {
	if r.row == nil || r.done || r.closed {
		return errors.New("core: Scan called without a row; call Next first")
	}
	if len(dest) != len(r.row) {
		return fmt.Errorf("core: Scan expected %d destinations, got %d", len(r.row), len(dest))
	}
	for i, d := range dest {
		if err := scanValue(r.row[i], d); err != nil {
			return fmt.Errorf("core: Scan column %d (%s): %w", i, r.cols[i], err)
		}
	}
	return nil
}

func scanValue(v storage.Value, dest any) error {
	switch d := dest.(type) {
	case *int64:
		if v.Typ != schema.Int64 {
			return fmt.Errorf("cannot scan %s into *int64", v.Typ)
		}
		*d = v.I
	case *int:
		if v.Typ != schema.Int64 {
			return fmt.Errorf("cannot scan %s into *int", v.Typ)
		}
		if int64(int(v.I)) != v.I {
			return fmt.Errorf("value %d overflows *int", v.I)
		}
		*d = int(v.I)
	case *float64:
		switch v.Typ {
		case schema.Int64:
			*d = float64(v.I)
		case schema.Float64:
			*d = v.F
		default:
			return fmt.Errorf("cannot scan %s into *float64", v.Typ)
		}
	case *bool:
		if v.Typ != schema.Int64 {
			return fmt.Errorf("cannot scan %s into *bool", v.Typ)
		}
		*d = v.I != 0
	case *string:
		*d = v.String()
	case *any:
		switch v.Typ {
		case schema.Int64:
			*d = v.I
		case schema.Float64:
			*d = v.F
		default:
			*d = v.S
		}
	case *storage.Value:
		*d = v
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return nil
}

// Err returns the error that ended iteration, if any. It is nil while rows
// are still flowing, after a clean end-of-rows, and after an early Close
// (stopping early is not an error).
func (r *Rows) Err() error { return r.err }

// Stats returns the query's work accounting. It is complete once Next has
// returned false or Close was called; before that it is zero. After an
// early termination it covers the work actually done, not a full pass.
func (r *Rows) Stats() QueryStats { return r.stats }

// Close releases the cursor. Closing mid-iteration cancels the producer,
// which stops a raw-file scan between chunks; the partial work is still
// accounted in Stats. Close is idempotent and returns any genuine query
// error (cancellation caused by Close itself is not reported).
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	if !r.done {
		r.closedEarly = true
		if r.cancel != nil {
			r.cancel()
		}
		for range r.ch { // discard; producer exits promptly once cancelled
		}
		r.finish()
		if r.closedEarly && errors.Is(r.err, context.Canceled) {
			// The cancellation we just caused, not a query failure.
			r.err = nil
		}
	}
	r.release()
	return r.err
}

// Result drains the cursor into a fully buffered Result and closes it.
// The buffered Query API is this convenience over the streaming one.
func (r *Rows) Result() (*Result, error) {
	defer r.Close()
	var rows [][]storage.Value
	for r.Next() {
		rows = append(rows, r.Row())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &Result{Columns: r.Columns(), Rows: rows, Stats: r.Stats()}, nil
}

// rowWriter batches produced rows onto the cursor channel, enforcing LIMIT.
// Streaming scans may emit from multiple tokenizer goroutines, so emission
// is serialized here.
type rowWriter struct {
	ctx   context.Context
	ch    chan<- [][]storage.Value
	limit int // -1 = unlimited

	mu    sync.Mutex
	count int
	batch [][]storage.Value
	sink  *resultSink // optional tee of emitted rows for the result cache
}

// emit appends one row, taking ownership of it. It returns errLimitReached
// once LIMIT rows have been emitted (aborting the producing scan) and the
// context's error when the cursor was closed or cancelled.
func (w *rowWriter) emit(row []storage.Value) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.limit >= 0 && w.count >= w.limit {
		return errLimitReached
	}
	w.sink.add(row)
	w.batch = append(w.batch, row)
	w.count++
	if w.limit >= 0 && w.count >= w.limit {
		if err := w.flushLocked(); err != nil {
			return err
		}
		return errLimitReached
	}
	if len(w.batch) >= rowBatchSize {
		return w.flushLocked()
	}
	return nil
}

// emitAll streams pre-materialized rows (already limited by the caller)
// through the batching path under one lock acquisition.
func (w *rowWriter) emitAll(rows [][]storage.Value) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, row := range rows {
		if w.limit >= 0 && w.count >= w.limit {
			return errLimitReached
		}
		w.sink.add(row)
		w.batch = append(w.batch, row)
		w.count++
		if len(w.batch) >= rowBatchSize {
			if err := w.flushLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *rowWriter) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *rowWriter) flushLocked() error {
	if len(w.batch) == 0 {
		return nil
	}
	batch := w.batch
	w.batch = nil
	select {
	case w.ch <- batch:
		return nil
	case <-w.ctx.Done():
		return w.ctx.Err()
	}
}

// QueryRows opens a streaming cursor for one SELECT statement with
// optional `?` placeholder arguments. Planning errors surface here;
// execution errors surface through the cursor's Err.
func (e *Engine) QueryRows(ctx context.Context, query string, args ...any) (*Rows, error) {
	stmt, err := e.parseCached(query)
	if err != nil {
		return nil, err
	}
	bound, err := stmt.Bind(args...)
	if err != nil {
		return nil, err
	}
	return e.QueryRowsStmt(ctx, bound)
}

// QueryRowsStmt opens a streaming cursor over a parsed (and fully bound)
// statement. The returned cursor must be closed.
//
// With a result cache configured, a fully bound statement first consults
// the cache (keyed on normalized SQL + table signatures; see resultKey)
// and joins the singleflight group: the first of N identical concurrent
// queries executes, the rest wait and replay its result.
func (e *Engine) QueryRowsStmt(ctx context.Context, stmt *sql.SelectStmt) (*Rows, error) {
	timer := metrics.StartTimer()
	before := e.counters.Snapshot()

	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.revalidate(stmt); err != nil {
		return nil, err
	}

	// qkey is non-empty exactly when this call leads a singleflight for a
	// cacheable statement; produce finishes the flight on every path.
	var qkey string
	if e.qcache != nil {
		if key := e.resultKey(stmt); key != "" {
			// Bounded so leader churn (every leader failing or overflowing
			// the cache bound) degrades to executing uncached rather than
			// looping; real workloads resolve in one or two iterations.
			for attempt := 0; attempt < 64 && qkey == ""; attempt++ {
				if res, ok := e.qcache.Get(key); ok {
					e.counters.AddResultCacheHit(1)
					return e.cachedRows(ctx, res, before, timer, "result cache hit\n"), nil
				}
				c, leader := e.qflight.Join(key)
				if leader {
					qkey = key
					break
				}
				select {
				case <-c.Done():
					if res, err := c.Result(); err == nil && res != nil {
						e.counters.AddQueryCollapsed(1)
						return e.cachedRows(ctx, res, before, timer, "singleflight collapse\n"), nil
					}
					// The leader failed (possibly its own cancellation) or
					// its result was uncacheable: retry — become the leader
					// or find a newer one.
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			if qkey != "" {
				e.counters.AddResultCacheMiss(1)
			}
		}
	}

	p, err := plan.Build(stmt, e, e.Policy())
	if err != nil {
		if qkey != "" {
			e.qflight.Finish(qkey, nil, err)
		}
		return nil, err
	}

	cctx, cancel := newCursorContext(ctx)
	// Engine.Close aborts in-flight cursors: closing the engine cancels
	// closeCtx, which cancels this cursor's context.
	unhook := context.AfterFunc(e.closeCtx, cancel)

	r := &Rows{
		cols:   p.Output,
		cancel: cancel,
		unhook: func() { unhook() },
		ch:     make(chan [][]storage.Value, 4),
	}
	go e.produce(cctx, p, r, before, timer, qkey)
	return r, nil
}

// produce runs the query and feeds the cursor. It always closes the
// channel last, after recording the final error and stats. A non-empty
// qkey means this execution leads a singleflight: the emitted rows are
// teed into a private copy that, on success, is admitted to the result
// cache and handed to the waiting followers.
func (e *Engine) produce(ctx context.Context, p *plan.Plan, r *Rows, before metrics.Snapshot, timer metrics.Timer, qkey string) {
	defer close(r.ch)
	w := &rowWriter{ctx: ctx, ch: r.ch, limit: p.Limit}
	if qkey != "" {
		w.sink = &resultSink{max: e.qcache.MaxEntryBytes()}
	}

	// Pin the adaptive structures this plan reads (the plan's Pins per
	// table, plus each table's positional map and split files) so the
	// governor cannot evict them while the scan streams over them. Columns
	// loaded *by* this query register most-recently-used and are naturally
	// poor victims. Pins drop before budget enforcement below.
	unpin := e.pinPlan(p)

	// Background flusher: bounds how long a partial batch sits when the
	// scan finds rows rarely. It must stop before the channel closes.
	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		tick := time.NewTicker(rowFlushInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				_ = w.flush() // a cancelled cursor surfaces through execute
			case <-stopFlush:
				return
			}
		}
	}()

	note, err := e.execute(ctx, p, w)
	close(stopFlush)
	<-flushDone
	if err == nil {
		err = w.flush()
	}
	if errors.Is(err, errLimitReached) {
		err = nil // LIMIT satisfied: a clean early stop, not a failure
	}
	unpin()
	// Attribute the structures this query read (and any it built) to the
	// calling tenant before enforcement, so the per-tenant pass charges
	// the bytes to whoever actually caused them.
	if tenant := qos.TenantFrom(ctx); tenant != "" {
		e.ownPlan(p, tenant)
	}
	e.gov.Enforce()
	r.finalErr = err
	planText := p.String() + note
	r.finalStats = QueryStats{
		Work: e.counters.Snapshot().Sub(before),
		Wall: timer.Elapsed(),
		Plan: planText,
	}
	if qkey != "" {
		// Publish to the cache first, then wake the followers: a follower
		// that misses the Finish window still finds the cache entry.
		if err == nil && w.sink != nil && !w.sink.overflow {
			res := &qos.CachedResult{
				Columns: append([]string(nil), r.cols...),
				Rows:    w.sink.rows,
				Plan:    planText,
			}
			e.qcache.Put(qkey, res)
			e.qflight.Finish(qkey, res, nil)
		} else {
			e.qflight.Finish(qkey, nil, err)
		}
	}
}

// pinPlan pins every table's planned structures and returns a function
// releasing all pins (idempotent per table via Table.Pin's own once).
func (e *Engine) pinPlan(p *plan.Plan) func() {
	unpins := make([]func(), 0, len(p.Tables))
	for i := range p.Tables {
		t, err := e.cat.Get(p.Tables[i].Name)
		if err != nil {
			continue // table vanished; execution will surface the error
		}
		unpins = append(unpins, t.Pin(p.Tables[i].Pins))
	}
	return func() {
		for _, u := range unpins {
			u()
		}
	}
}

// execute dispatches the plan to its execution path. The default is the
// vectorized batch-operator pipeline; with DisableVectorExec the plan
// routes through the pre-pipeline row-at-a-time paths (the fused
// select+aggregate operator, the streaming row pipeline, or the general
// materializing path), kept as the differential-testing oracle. It
// returns an EXPLAIN note for the stats plan.
func (e *Engine) execute(ctx context.Context, p *plan.Plan, w *rowWriter) (string, error) {
	if p.Limit == 0 {
		return "", nil
	}
	if !e.opts.DisableVectorExec {
		return e.executeVector(ctx, p, w)
	}
	if row, ok, err := e.tryFusedAggregate(ctx, p); err != nil {
		return "", err
	} else if ok {
		return "fused select+aggregate\n", w.emit(row)
	}
	if e.streamable(p) {
		return "streaming cursor\n", e.executeStream(ctx, p, w)
	}
	rows, err := e.executeMaterialized(ctx, p)
	if err != nil {
		return "", err
	}
	return "", w.emitAll(rows)
}

// streamable reports whether the plan can produce rows incrementally with
// early termination: a single-table plain selection whose load operator
// either scans the raw file row-by-row or reads already-dense columns.
// Aggregation, grouping, ordering and joins need the full input before the
// first output row; the retaining partial loaders merge scan results into
// the adaptive store post-pass, so they keep the materializing path.
func (e *Engine) streamable(p *plan.Plan) bool {
	if len(p.Tables) != 1 || len(p.Joins) != 0 || p.HasAggregates() ||
		len(p.GroupBy) != 0 || len(p.OrderBy) != 0 || e.opts.Cracking {
		return false
	}
	switch p.Tables[0].LoadOp {
	case plan.LoadNone, plan.LoadFull, plan.LoadColumns, plan.LoadSplit,
		plan.LoadPartialEphemeral, plan.LoadExternal:
		return true
	default: // LoadPartialRetained, LoadAuto
		return false
	}
}

// executeStream runs the streaming row pipeline for a qualifying plan.
func (e *Engine) executeStream(ctx context.Context, p *plan.Plan, w *rowWriter) error {
	tp := &p.Tables[0]
	t, err := e.cat.Get(tp.Name)
	if err != nil {
		return err
	}
	t.Prepare(prepareCols(t, tp)) // lazy snapshot restore before the load operator runs
	outCols := make([]int, len(p.Project))
	for i, k := range p.Project {
		outCols[i] = k.Col
	}
	emit := func(rowID int64, vals []storage.Value) error { return w.emit(vals) }

	switch tp.LoadOp {
	case plan.LoadPartialEphemeral:
		return e.ld.ScanRowsContext(ctx, t, outCols, tp.Conj, emit)
	case plan.LoadExternal:
		return e.extLd.ScanRowsContext(ctx, t, outCols, tp.Conj, emit)
	default:
		// Column-granularity policies load first (a full pass by design),
		// then stream the selection over the dense columns. NeedCols
		// already includes every predicate column (plan.Build marks them).
		// ensureDensePinned re-loads columns a governor eviction removed
		// after planning, and pins them for the duration of the stream.
		if err := e.runLoad(ctx, t, tp); err != nil {
			return err
		}
		src, unpin, err := e.ensureDensePinned(ctx, t, tp.Pins)
		if err != nil {
			return err
		}
		defer unpin()
		return exec.SelectDenseRows(src, tp.Conj, outCols, emit)
	}
}

// executeMaterialized is the general path: per-table views, joins,
// aggregation/grouping, sort and limit — fully materialized.
func (e *Engine) executeMaterialized(ctx context.Context, p *plan.Plan) ([][]storage.Value, error) {
	views := make([]*exec.View, len(p.Tables))
	for i := range p.Tables {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		v, err := e.tableView(ctx, &p.Tables[i])
		if err != nil {
			return nil, err
		}
		views[i] = v
	}

	combined := views[0]
	var err error
	for i, edge := range p.Joins {
		combined, err = exec.HashJoin(combined, views[i+1], edge.Left, edge.Right)
		if err != nil {
			return nil, err
		}
	}

	rows, err := e.assemble(p, combined)
	if err != nil {
		return nil, err
	}
	exec.SortRows(rows, p.OrderBy)
	return exec.LimitRows(rows, p.Limit), nil
}
