// Package core implements the NoDB engine: the component that makes "here
// are my data files, here are my queries" work. It owns the catalog of
// linked raw files, chooses and executes adaptive loading operators
// according to the configured policy, runs the relational operators, and
// manages the adaptive store's life-time (memory budget, eviction,
// invalidation on file edits).
//
// The engine is the paper's Figure 2 in code: queries arrive, the adaptive
// loading component decides what to fetch from the flat files, the
// adaptive store keeps what the workload needs, and the kernel evaluates
// the query over whatever mix of freshly loaded and cached data exists.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nodb/internal/catalog"
	"nodb/internal/cracking"
	"nodb/internal/exec"
	"nodb/internal/govern"
	"nodb/internal/loader"
	"nodb/internal/metrics"
	"nodb/internal/plan"
	"nodb/internal/qos"
	"nodb/internal/schema"
	"nodb/internal/snapshot"
	"nodb/internal/sql"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
	"nodb/internal/vfs"
)

// Options configures an Engine.
type Options struct {
	// Policy selects the adaptive loading strategy (default ColumnLoads).
	Policy plan.Policy
	// Cracking enables adaptive indexing (database cracking) on dense
	// int64 predicate columns — the "Index DB" behavior.
	Cracking bool
	// SplitDir is where split files are written; required for
	// PolicySplitFiles.
	SplitDir string
	// MemoryBudget caps the bytes of adaptive state (0 = unlimited):
	// cached columns, retained partial loads, positional maps and split
	// files all count against it, and the memory governor evicts
	// structures — never mid-scan; in-use structures are pinned — until
	// the total fits again.
	MemoryBudget int64
	// EvictionPolicy selects how the governor picks victims: "cost" (the
	// default) evicts the structure holding the most bytes per second of
	// estimated rebuild work, "lru" evicts the least recently used.
	EvictionPolicy string
	// PosMapBudget caps each table's positional map bytes (0 = default).
	PosMapBudget int64
	// CacheDir enables the persistent auxiliary-structure cache: adaptive
	// structures (positional maps, cached columns, sparse coverage, split
	// manifests) are snapshotted there on Close (and by SaveSnapshots),
	// restored lazily on the first query that wants them after a restart,
	// and spilled there by eviction instead of being discarded. Empty
	// disables the disk tier. Snapshot files are keyed by the raw file's
	// path, size and mtime, so editing a file invalidates its snapshots.
	CacheDir string
	// Workers is the tokenization parallelism; 0 (the default) means one
	// worker per CPU, 1 (or negative) pins a sequential scan.
	Workers int
	// ChunkSize overrides the raw-file streaming read size (default
	// scan.DefaultChunkSize). Smaller chunks tighten the cancellation
	// granularity of QueryContext at the cost of more read calls.
	ChunkSize int
	// DisablePositionalMap turns off both recording and use of the
	// positional map (for ablations).
	DisablePositionalMap bool
	// DisableSynopsis turns off the per-portion scan synopsis: no zone-map
	// collection, no portion skipping, no layout reuse (for ablations and
	// the selectivity-sweep baseline).
	DisableSynopsis bool
	// DisableRevalidation skips the per-query file-change check (for
	// benchmarks that fix the data).
	DisableRevalidation bool
	// BatchSize is the rows-per-batch of the vectorized pipeline (0 =
	// exec.DefaultBatchSize). Small sizes tighten LIMIT/cancellation
	// granularity at the cost of per-batch overhead.
	BatchSize int
	// DisableVectorExec routes queries through the row-at-a-time
	// execution paths instead of the vectorized operator pipeline (for
	// ablations and differential testing).
	DisableVectorExec bool
	// ResultCacheBytes bounds the query result cache (0 disables it).
	// Results are keyed by normalized bound SQL plus the signature of
	// every table the statement touches, so editing a raw file implicitly
	// invalidates its results; identical in-flight queries collapse onto
	// one execution (singleflight).
	ResultCacheBytes int64
	// Tenants configures per-tenant budget partitioning in the memory
	// governor (weights; see qos.Tenant). Empty disables tenancy.
	Tenants []qos.Tenant
	// FS is the filesystem every disk access goes through — raw-file
	// scans, schema detection, snapshots, spills and split files. Nil
	// means the real disk; tests inject a fault-scheduling FS here.
	FS vfs.FS
}

// ErrClosed is returned by every query or preparation attempt after the
// engine was closed.
var ErrClosed = errors.New("nodb: database is closed")

// Engine is a NoDB instance. It is safe for concurrent queries against
// distinct tables; concurrent queries on the same table serialize on the
// table's internal locks.
type Engine struct {
	opts     Options
	policy   atomic.Int32 // current plan.Policy; atomic so SetPolicy races with queries safely
	cat      *catalog.Catalog
	gov      *govern.Governor
	snap     *snapshot.Store // nil when no CacheDir is configured
	counters metrics.Counters
	ld       *loader.Loader
	extLd    *loader.Loader // external baseline: never learns anything
	qcache   *qos.Cache     // nil when ResultCacheBytes is 0
	qflight  qos.Group      // collapses identical in-flight queries

	closed      atomic.Bool
	closeCtx    context.Context // cancelled by Close; aborts in-flight cursors
	closeCancel context.CancelFunc
	stmts       *stmtCache

	followMu sync.Mutex
	followed map[string]bool // lower-cased names attached with TableSpec.Follow
}

// NewEngine creates an engine with the given options. An unknown
// EvictionPolicy falls back to the default (cost-aware); ParseDSN and the
// command-line front ends validate the name earlier.
func NewEngine(opts Options) *Engine {
	e := &Engine{opts: opts, stmts: newStmtCache(stmtCacheSize), followed: map[string]bool{}}
	e.closeCtx, e.closeCancel = context.WithCancel(context.Background())
	e.policy.Store(int32(opts.Policy))
	evict, err := govern.PolicyByName(opts.EvictionPolicy)
	if err != nil {
		evict = govern.CostAware{}
	}
	e.gov = govern.New(opts.MemoryBudget, evict, &e.counters)
	if len(opts.Tenants) > 0 {
		weights := make(map[string]float64, len(opts.Tenants))
		for _, t := range opts.Tenants {
			w := t.Weight
			if w <= 0 {
				w = 1
			}
			weights[t.Name] = w
		}
		e.gov.SetTenants(weights)
	}
	if opts.ResultCacheBytes > 0 {
		e.qcache = qos.NewCache(opts.ResultCacheBytes, e.gov)
	}
	if opts.CacheDir != "" {
		e.snap = snapshot.NewStore(opts.CacheDir, &e.counters)
		e.snap.FS = opts.FS
	}
	e.cat = catalog.New(catalog.Options{
		SplitDir:     opts.SplitDir,
		PosMapBudget: opts.PosMapBudget,
		Governor:     e.gov,
		Snapshots:    e.snap,
		Counters:     &e.counters,
		FS:           opts.FS,
	})
	e.ld = &loader.Loader{
		Counters:        &e.counters,
		Workers:         opts.Workers,
		ChunkSize:       opts.ChunkSize,
		RecordPositions: !opts.DisablePositionalMap,
		UsePositions:    !opts.DisablePositionalMap,
		UseSynopsis:     !opts.DisableSynopsis,
		FS:              opts.FS,
	}
	// The external baseline never learns anything — no positional map and
	// no synopsis; it re-pays the full scan every query by design.
	e.extLd = &loader.Loader{Counters: &e.counters, Workers: opts.Workers, ChunkSize: opts.ChunkSize, FS: opts.FS}
	return e
}

// checkOpen fails with ErrClosed after Close.
func (e *Engine) checkOpen() error {
	if e.closed.Load() {
		return ErrClosed
	}
	return nil
}

// Close shuts the engine down: subsequent queries, preparations and links
// return ErrClosed, in-flight cursors are cancelled (their scans stop
// between chunks), and the catalog's derived state is released. Without a
// CacheDir nothing needs flushing — loaded state is in-memory and split
// files are disposable. With one, every table's auxiliary structures are
// snapshotted first and split files are left on disk, so the next process
// restarts warm instead of re-paying the adaptive learning curve. Close
// is idempotent.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.closeCancel()
	var err error
	if e.snap != nil {
		err = e.cat.SaveSnapshots()
		e.cat.DetachSplits()
	}
	e.cat.DropAll()
	return err
}

// SaveSnapshots serializes every table's auxiliary structures to the
// cache directory now (the server's periodic flusher calls this). No-op
// without a CacheDir.
func (e *Engine) SaveSnapshots() error {
	if e.snap == nil {
		return nil
	}
	if err := e.checkOpen(); err != nil {
		return err
	}
	return e.cat.SaveSnapshots()
}

// SnapStats reports the snapshot cache's activity (zero-valued with
// Enabled=false when no CacheDir is configured).
func (e *Engine) SnapStats() snapshot.Stats {
	if e.snap == nil {
		return snapshot.Stats{}
	}
	return e.snap.Stats()
}

// Ping reports whether the engine is usable (ErrClosed after Close).
func (e *Engine) Ping() error { return e.checkOpen() }

// Counters exposes the engine's work accounting.
func (e *Engine) Counters() *metrics.Counters { return &e.counters }

// Catalog exposes the table catalog (read-mostly; used by shells and
// benchmarks for stats).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Governor exposes the memory governor (accounting, budget, eviction).
func (e *Engine) Governor() *govern.Governor { return e.gov }

// MemStats returns the memory governor's accounting snapshot: budget,
// bytes held and pinned, registered structures, and eviction totals.
func (e *Engine) MemStats() govern.Stats { return e.gov.Stats() }

// Policy returns the current loading policy.
func (e *Engine) Policy() plan.Policy { return plan.Policy(e.policy.Load()) }

// SetPolicy changes the loading policy for subsequent queries. Already
// loaded state stays usable. Safe to call while queries are in flight;
// each query reads the policy once, at plan time.
func (e *Engine) SetPolicy(p plan.Policy) { e.policy.Store(int32(p)) }

// TableSpec describes a raw file to attach as a table.
type TableSpec struct {
	// Path is the raw flat file to serve queries from.
	Path string
	// Format forces the file format: "csv" or "ndjson". Empty sniffs the
	// prefix; anything else fails the attach.
	Format string
	// Delimiter forces the CSV delimiter instead of sniffing (0 sniffs).
	Delimiter byte
	// Follow marks the table for tail-follow polling: serving layers
	// (nodbd's -follow mode) periodically Refresh the tables reported by
	// Followed. The engine itself never polls.
	Follow bool
}

// Attach registers the raw file described by spec under a table name,
// replacing any previous table of that name (and dropping its derived
// state). This is the only initialization step NoDB requires.
func (e *Engine) Attach(name string, spec TableSpec) error {
	if err := e.checkOpen(); err != nil {
		return err
	}
	if name == "" || spec.Path == "" {
		return fmt.Errorf("core: attach needs a table name and a file path")
	}
	_, err := e.cat.LinkOpts(name, spec.Path, schema.DetectOptions{
		Format:    spec.Format,
		Delimiter: spec.Delimiter,
	})
	if err != nil {
		return err
	}
	e.followMu.Lock()
	if spec.Follow {
		e.followed[strings.ToLower(name)] = true
	} else {
		delete(e.followed, strings.ToLower(name))
	}
	e.followMu.Unlock()
	return nil
}

// Detach removes a table, its derived state, and its follow mark.
func (e *Engine) Detach(name string) error {
	e.followMu.Lock()
	delete(e.followed, strings.ToLower(name))
	e.followMu.Unlock()
	return e.cat.Unlink(name)
}

// Followed returns the names of currently attached tables whose spec set
// Follow, sorted. Serving layers poll Refresh over this set.
func (e *Engine) Followed() []string {
	e.followMu.Lock()
	marks := make([]string, 0, len(e.followed))
	for n := range e.followed {
		marks = append(marks, n)
	}
	e.followMu.Unlock()
	var names []string
	for _, n := range marks {
		if _, err := e.cat.Get(n); err == nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// RefreshResult describes what a Refresh found.
type RefreshResult struct {
	// Changed reports whether the raw file's signature moved at all.
	Changed bool `json:"changed"`
	// Grown reports whether the change was a prefix-stable growth folded
	// in incrementally (learned structures kept). Changed && !Grown means
	// the file was edited in place and everything derived was invalidated.
	Grown bool `json:"grown"`
	// RowsAdded and TailBytes are the rows/bytes ingested by this refresh
	// when Grown.
	RowsAdded int64 `json:"rows_added"`
	TailBytes int64 `json:"tail_bytes"`
	// Rows is the table's row count after the refresh (-1 when unknown).
	Rows int64 `json:"rows"`
}

// Refresh re-stats a table's raw file now and folds in any change: a
// prefix-stable growth (rows appended) extends the learned structures
// incrementally, anything else invalidates them. Queries under
// revalidation do this implicitly per statement; Refresh is the explicit
// entry point for follow loops and the HTTP refresh endpoint, and works
// even when revalidation is disabled.
func (e *Engine) Refresh(name string) (RefreshResult, error) {
	if err := e.checkOpen(); err != nil {
		return RefreshResult{}, err
	}
	t, err := e.cat.Get(name)
	if err != nil {
		return RefreshResult{}, err
	}
	before := t.Ingest()
	changed, err := t.Revalidate()
	if err != nil {
		return RefreshResult{}, err
	}
	after := t.Ingest()
	return RefreshResult{
		Changed:   changed,
		Grown:     after.Refreshes > before.Refreshes,
		RowsAdded: after.AppendedRows - before.AppendedRows,
		TailBytes: after.AppendedBytes - before.AppendedBytes,
		Rows:      t.NumRows(),
	}, nil
}

// Link registers a raw file under a table name with full auto-detection.
//
// Deprecated: Link is Attach(name, TableSpec{Path: path}); new code should
// use Attach, which can also force the format and request tail-following.
func (e *Engine) Link(name, path string) error {
	return e.Attach(name, TableSpec{Path: path})
}

// Unlink removes a table and its derived state.
//
// Deprecated: Unlink is the old name of Detach.
func (e *Engine) Unlink(name string) error { return e.Detach(name) }

// Tables returns the linked table names.
func (e *Engine) Tables() []string { return e.cat.Tables() }

// QueryStats describes what one query cost.
type QueryStats struct {
	// Work is the counter delta attributable to this query.
	Work metrics.Snapshot
	// Wall is the wall-clock execution time.
	Wall time.Duration
	// Plan is the physical plan rendering.
	Plan string
}

// Result is a query result.
type Result struct {
	Columns []string
	Rows    [][]storage.Value
	Stats   QueryStats
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var sb strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for ri := range cells {
		for ci := range cells[ri] {
			if ci > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[ci], cells[ri][ci])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TableSchema implements plan.CatalogInfo.
func (e *Engine) TableSchema(name string) (*schema.Schema, error) {
	t, err := e.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// DenseAll implements plan.CatalogInfo.
func (e *Engine) DenseAll(name string, cols []int) bool {
	t, err := e.cat.Get(name)
	if err != nil {
		return false
	}
	return t.DenseAll(cols)
}

// Query parses and executes one SELECT statement.
func (e *Engine) Query(query string) (*Result, error) {
	return e.QueryContext(context.Background(), query)
}

// QueryContext parses and executes one SELECT statement under ctx. When
// ctx is cancelled or times out, execution stops cooperatively — a scan in
// progress aborts between chunks rather than finishing the raw-file pass —
// and the context's error is returned. Optional args bind the statement's
// `?` placeholders.
func (e *Engine) QueryContext(ctx context.Context, query string, args ...any) (*Result, error) {
	rows, err := e.QueryRows(ctx, query, args...)
	if err != nil {
		return nil, err
	}
	return rows.Result()
}

// Explain returns the physical plan for a query without executing it.
func (e *Engine) Explain(query string) (string, error) {
	return e.ExplainContext(context.Background(), query)
}

// ExplainContext is Explain under a context (revalidation may touch the
// filesystem, so even planning honors cancellation).
func (e *Engine) ExplainContext(ctx context.Context, query string) (string, error) {
	if err := e.checkOpen(); err != nil {
		return "", err
	}
	stmt, err := e.parseCached(query)
	if err != nil {
		return "", err
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	if err := e.revalidate(stmt); err != nil {
		return "", err
	}
	p, err := plan.Build(stmt, e, e.Policy())
	if err != nil {
		return "", err
	}
	out := p.String()
	if !e.opts.DisableVectorExec {
		out += describePipeline(p, e.batchSize())
	}
	if !e.opts.DisableSynopsis {
		for i := range p.Tables {
			tp := &p.Tables[i]
			t, err := e.cat.Get(tp.Name)
			if err != nil || t.Syn == nil {
				continue
			}
			portions, skipped := t.Syn.EstimateSkips(tp.Conj)
			if portions > 0 {
				out += fmt.Sprintf("synopsis %s: portions=%d skipped=%d\n", tp.Name, portions, skipped)
			}
		}
	}
	if e.snap != nil {
		st := e.snap.Stats()
		out += fmt.Sprintf("snapshot: hits=%d misses=%d saves=%d spills=%d invalidations=%d\n",
			st.Hits, st.Misses, st.Saves, st.Spills, st.Invalidations)
	}
	if e.qcache != nil {
		st := e.qcache.Stats()
		cached := ""
		if stmt.NumParams == 0 {
			if _, ok := e.qcache.Get(e.resultKey(stmt)); ok {
				cached = " this-query=cached"
			}
		}
		out += fmt.Sprintf("result cache: hits=%d misses=%d entries=%d bytes=%d/%d%s\n",
			st.Hits, st.Misses, st.Entries, st.Bytes, st.MaxBytes, cached)
	}
	if gst := e.gov.Stats(); len(gst.Tenants) > 0 {
		names := make([]string, 0, len(gst.Tenants))
		for name := range gst.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ts := gst.Tenants[name]
			out += fmt.Sprintf("tenant %s: weight=%g share=%dB used=%dB evictions=%d\n",
				name, ts.Weight, ts.ShareBytes, ts.Used, ts.Evictions)
		}
	}
	return out, nil
}

// ResultCacheStats reports the result cache's accounting (zero-valued
// with Enabled=false when ResultCacheBytes is 0).
func (e *Engine) ResultCacheStats() qos.CacheStats {
	if e.qcache == nil {
		return qos.CacheStats{}
	}
	return e.qcache.Stats()
}

func (e *Engine) revalidate(stmt *sql.SelectStmt) error {
	if e.opts.DisableRevalidation {
		return nil
	}
	check := func(name string) error {
		t, err := e.cat.Get(name)
		if err != nil {
			return err
		}
		_, err = t.Revalidate()
		return err
	}
	if err := check(stmt.From.Name); err != nil {
		return err
	}
	for _, j := range stmt.Joins {
		if err := check(j.Table.Name); err != nil {
			return err
		}
	}
	return nil
}

// QueryStmt executes a parsed statement.
func (e *Engine) QueryStmt(stmt *sql.SelectStmt) (*Result, error) {
	return e.QueryStmtContext(context.Background(), stmt)
}

// QueryStmtContext executes a parsed statement under ctx by draining a
// streaming cursor into a buffered Result. Cancellation is cooperative: it
// is checked before planning, before each table's load operator runs, and
// inside the scan/load chunk loops.
func (e *Engine) QueryStmtContext(ctx context.Context, stmt *sql.SelectStmt) (*Result, error) {
	rows, err := e.QueryRowsStmt(ctx, stmt)
	if err != nil {
		return nil, err
	}
	return rows.Result()
}

// tryFusedAggregate applies the fused select+aggregate operator when the
// plan is a single-table aggregation (no joins, no grouping) whose load
// operator yields dense columns and cracking is off. Returns ok=false when
// the plan does not qualify; the caller then takes the general path.
func (e *Engine) tryFusedAggregate(ctx context.Context, p *plan.Plan) ([]storage.Value, bool, error) {
	if len(p.Tables) != 1 || len(p.Joins) != 0 || len(p.Aggs) == 0 ||
		len(p.GroupBy) != 0 || len(p.Project) != 0 || e.opts.Cracking {
		return nil, false, nil
	}
	tp := &p.Tables[0]
	switch tp.LoadOp {
	case plan.LoadNone, plan.LoadFull, plan.LoadColumns, plan.LoadSplit:
		// Run the load operator first, then fuse the scan. Prepare gives
		// the snapshot cache a chance to restore the needed columns (or
		// the positional map that makes the load cheap) beforehand.
		t, err := e.cat.Get(tp.Name)
		if err != nil {
			return nil, false, err
		}
		t.Prepare(prepareCols(t, tp))
		if err := e.runLoad(ctx, t, tp); err != nil {
			return nil, false, err
		}
	default:
		return nil, false, nil // partial/external paths produce views
	}
	t, err := e.cat.Get(tp.Name)
	if err != nil {
		return nil, false, err
	}
	src, unpin, err := e.ensureDensePinned(ctx, t, tp.Pins)
	if err != nil {
		return nil, false, err
	}
	defer unpin()
	row, err := exec.SelectAggregateDense(src, tp.Conj, p.Aggs)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// ensureDensePinned delivers a pinned dense source over cols, reloading
// as needed: a plan may carry a stale LoadNone (the columns were evicted
// between planning and execution), and a concurrent query's post-query
// budget enforcement may evict a column in the window between its load
// and its pin. Both degrade to a reload here — never to a query error.
// Once pinned, the columns cannot be evicted, so each retry needs a
// freshly lost race; the generous cap exists only to turn a logic bug
// into an error instead of a spin. The returned unpin must be called
// when the scan over src is done.
func (e *Engine) ensureDensePinned(ctx context.Context, t *catalog.Table, cols []int) (exec.DenseSource, func(), error) {
	var lastErr error
	for attempt := 0; attempt < 64; attempt++ {
		if err := ctx.Err(); err != nil {
			return exec.DenseSource{}, nil, err
		}
		t.Prepare(cols) // an evicted-but-snapshotted column re-admits by deserializing
		if len(t.MissingDense(cols)) > 0 {
			if err := e.ld.ColumnLoadContext(ctx, t, cols); err != nil {
				return exec.DenseSource{}, nil, err
			}
		}
		unpin := t.Pin(cols)
		src, err := loader.DenseSourceFor(t, cols, &e.counters)
		if err == nil {
			return src, unpin, nil
		}
		unpin()
		lastErr = err // evicted between load and pin: go again
	}
	return exec.DenseSource{}, nil, lastErr
}

// prepareCols returns the columns Table.Prepare should try to restore
// from the snapshot cache for a table plan: a full-load operator needs
// every column dense, everything else needs the plan's pin set.
func prepareCols(t *catalog.Table, tp *plan.TablePlan) []int {
	if tp.LoadOp != plan.LoadFull {
		return tp.Pins
	}
	all := make([]int, t.Schema().NumCols())
	for i := range all {
		all[i] = i
	}
	return all
}

// runLoad executes a column-granularity load operator (a full pass over
// the raw file by design), leaving the needed columns dense. LoadNone is a
// no-op.
func (e *Engine) runLoad(ctx context.Context, t *catalog.Table, tp *plan.TablePlan) error {
	switch tp.LoadOp {
	case plan.LoadNone:
		return nil
	case plan.LoadFull:
		return e.ld.FullLoadContext(ctx, t)
	case plan.LoadColumns:
		return e.ld.ColumnLoadContext(ctx, t, tp.NeedCols)
	case plan.LoadSplit:
		return e.ld.SplitColumnLoadContext(ctx, t, tp.NeedCols)
	default:
		return fmt.Errorf("core: load op %v is not column-granularity", tp.LoadOp)
	}
}

// tableView runs the table's load operator and selection, yielding the
// qualifying rows with all needed columns.
func (e *Engine) tableView(ctx context.Context, tp *plan.TablePlan) (*exec.View, error) {
	t, err := e.cat.Get(tp.Name)
	if err != nil {
		return nil, err
	}
	t.Prepare(prepareCols(t, tp)) // lazy snapshot restore before the load operator runs
	switch tp.LoadOp {
	case plan.LoadNone, plan.LoadFull, plan.LoadColumns, plan.LoadSplit:
		if err := e.runLoad(ctx, t, tp); err != nil {
			return nil, err
		}
		return e.denseSelect(ctx, t, tp)
	case plan.LoadPartialEphemeral:
		return e.ld.PartialScanContext(ctx, t, tp.NeedCols, tp.Conj, tp.Ordinal)
	case plan.LoadPartialRetained:
		return e.ld.PartialLoadV2Context(ctx, t, tp.NeedCols, tp.Conj, tp.Ordinal)
	case plan.LoadExternal:
		return e.extLd.PartialScanContext(ctx, t, tp.NeedCols, tp.Conj, tp.Ordinal)
	case plan.LoadAuto:
		return e.autoLoad(ctx, t, tp)
	default:
		return nil, fmt.Errorf("core: unknown load op %v", tp.LoadOp)
	}
}

// Auto-policy promotion thresholds: a column touched this many times, or
// whose sparse store holds this fraction of the table, gets loaded fully.
const (
	autoTouchThreshold    = 3
	autoSparseFracPromote = 0.25
)

// autoLoad is the self-tuning load operator (paper §5.5): cold columns are
// partially loaded with retention; columns the workload keeps coming back
// for are promoted to full column loads, bounding the number of trips back
// to the raw file.
func (e *Engine) autoLoad(ctx context.Context, t *catalog.Table, tp *plan.TablePlan) (*exec.View, error) {
	needAll := tp.Pins
	touches := t.Touch(needAll)

	var promote []int
	for i, c := range needAll {
		if t.Dense(c) != nil {
			continue
		}
		if touches[i] >= autoTouchThreshold || t.SparseFraction(c) >= autoSparseFracPromote {
			promote = append(promote, c)
		}
	}
	if len(promote) > 0 {
		if err := e.ld.ColumnLoadContext(ctx, t, promote); err != nil {
			return nil, err
		}
	}
	if t.DenseAll(needAll) {
		return e.denseSelect(ctx, t, tp)
	}
	return e.ld.PartialLoadV2Context(ctx, t, tp.NeedCols, tp.Conj, tp.Ordinal)
}

// denseSelect evaluates the selection over dense columns, via the cracker
// when adaptive indexing is on.
func (e *Engine) denseSelect(ctx context.Context, t *catalog.Table, tp *plan.TablePlan) (*exec.View, error) {
	// tp.Pins is exactly the set this path reads: NeedCols plus the
	// predicate columns (plan.Build computes and Explain displays it).
	src, unpin, err := e.ensureDensePinned(ctx, t, tp.Pins)
	if err != nil {
		return nil, err
	}
	defer unpin()
	if e.opts.Cracking && !tp.Conj.Empty() {
		if v, err := e.crackedSelect(t, src, tp); err == nil {
			return v, nil
		}
		// Fall back to a plain scan when no predicate column is
		// crackable (non-int, inexact range, ...).
	}
	return exec.SelectDense(src, tp.Conj, tp.NeedCols, tp.Ordinal)
}

func (e *Engine) crackedSelect(t *catalog.Table, src exec.DenseSource, tp *plan.TablePlan) (*exec.View, error) {
	// Cracking physically reorganizes shared cracker columns; serialize
	// with other loads on the table.
	t.LockLoads()
	defer t.UnlockLoads()
	crackers := map[int]*cracking.Cracker{}
	for _, c := range tp.Conj.Columns() {
		if cr := t.Cracker(c, true); cr != nil {
			crackers[c] = cr
		}
	}
	if len(crackers) == 0 {
		return nil, fmt.Errorf("core: no crackable predicate column")
	}
	return exec.SelectCracked(src, crackers, tp.Conj, tp.NeedCols, tp.Ordinal)
}

// TableStats describes the adaptive-store state of one linked table.
type TableStats struct {
	// Path is the raw file the table serves.
	Path string
	// Rows is the discovered row count (-1 when no scan has run yet).
	Rows int64
	// DenseCols lists fully loaded attribute indices.
	DenseCols []int
	// SparseCols maps partially loaded attribute index → entries held.
	SparseCols map[int]int
	// Regions is the number of covered regions recorded for reuse.
	Regions int
	// PosMapEntries is the number of recorded attribute positions.
	PosMapEntries int
	// SynopsisPortions is the number of portions in the learned scan
	// synopsis layout; SynopsisBounds the number of (portion, column)
	// zone-map bounds held.
	SynopsisPortions int
	SynopsisBounds   int
	// SplitBytes is the on-disk size of this table's split files.
	SplitBytes int64
	// MemBytes is the in-memory size of all loaded state.
	MemBytes int64
	// Signature identifies the raw file version the state describes.
	Signature catalog.Signature
	// Ingest is the append-ingestion accounting: rows/bytes folded in by
	// incremental tail extensions and when the last one ran.
	Ingest catalog.IngestStats
}

// TableStats reports what the engine has adaptively built for a table.
func (e *Engine) TableStats(name string) (TableStats, error) {
	t, err := e.cat.Get(name)
	if err != nil {
		return TableStats{}, err
	}
	st := TableStats{
		Path:       t.Path(),
		Rows:       t.NumRows(),
		SparseCols: map[int]int{},
		Regions:    len(t.Regions()),
		MemBytes:   t.MemSize(),
		Signature:  t.Signature(),
		Ingest:     t.Ingest(),
	}
	for c := 0; c < t.Schema().NumCols(); c++ {
		if t.Dense(c) != nil {
			st.DenseCols = append(st.DenseCols, c)
		} else if sp := t.Sparse(c, false); sp != nil {
			st.SparseCols[c] = sp.Len()
		}
	}
	if t.PosMap != nil {
		st.PosMapEntries = t.PosMap.Entries()
	}
	st.SynopsisPortions, st.SynopsisBounds = t.Syn.Stats()
	if t.Splits != nil {
		st.SplitBytes = t.Splits.DiskSize()
	}
	return st, nil
}

// TableSynopsis exports a table's scan synopsis — the learned portion
// layout plus per-portion zone maps — together with the raw file's
// signature. The export is nil until a complete layout exists (no scan has
// finished yet, or the synopsis was dropped). Cluster coordinators consume
// this through /cluster/synopsis to prune whole shards without a round
// trip per query.
func (e *Engine) TableSynopsis(name string) ([]synopsis.PortionState, catalog.Signature, error) {
	t, err := e.cat.Get(name)
	if err != nil {
		return nil, catalog.Signature{}, err
	}
	return t.Syn.Export(), t.Signature(), nil
}

// assemble turns the final view into output rows in select-list order.
func (e *Engine) assemble(p *plan.Plan, v *exec.View) ([][]storage.Value, error) {
	switch {
	case !p.HasAggregates():
		return exec.ProjectRows(v, p.Project), nil
	case len(p.GroupBy) == 0:
		row, err := exec.Aggregate(v, p.Aggs)
		if err != nil {
			return nil, err
		}
		return [][]storage.Value{row}, nil
	default:
		grows, err := exec.GroupBy(v, p.GroupBy, p.Aggs)
		if err != nil {
			return nil, err
		}
		out := make([][]storage.Value, len(grows))
		for ri, grow := range grows {
			row := make([]storage.Value, len(p.Slots))
			for si, slot := range p.Slots {
				if slot.Agg {
					row[si] = grow[len(p.GroupBy)+slot.Idx]
					continue
				}
				key := p.Project[slot.Idx]
				pos := -1
				for j, g := range p.GroupBy {
					if g == key {
						pos = j
						break
					}
				}
				if pos < 0 {
					return nil, fmt.Errorf("core: projected column %v not a group key", key)
				}
				row[si] = grow[pos]
			}
			out[ri] = row
		}
		return out, nil
	}
}
