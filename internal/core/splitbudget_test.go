package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"nodb/internal/csvgen"
	"nodb/internal/plan"
)

func TestBudgetSplitFilesPolicy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 20000, Cols: 6, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{Policy: plan.PolicySplitFiles, MemoryBudget: 400_000})
	defer e.Close()
	if err := e.Link("S", path); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		for c := 0; c < 6; c++ {
			res, err := e.Query(fmt.Sprintf("select count(*) from S where a%d >= 0", c+1))
			if err != nil {
				t.Fatalf("pass %d a%d: %v", pass, c+1, err)
			}
			if res.Rows[0][0].I != 20000 {
				t.Fatalf("pass %d a%d: count=%v", pass, c+1, res.Rows[0][0])
			}
			if used := e.Governor().Used(); used > 400_000 {
				t.Fatalf("used %d > budget", used)
			}
		}
	}
	if e.MemStats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
}
