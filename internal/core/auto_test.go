package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"nodb/internal/csvgen"
	"nodb/internal/plan"
)

func TestAutoPolicyPromotesHotColumns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 5000, Cols: 4, Seed: 31}); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{Policy: plan.PolicyAuto})
	if err := e.Link("G", path); err != nil {
		t.Fatal(err)
	}

	// First two queries: partial loads (no dense columns yet).
	for i := 0; i < 2; i++ {
		q := fmt.Sprintf("select sum(a1) from G where a1 > %d and a1 < %d", i*100, i*100+500)
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	tab, _ := e.Catalog().Get("G")
	if tab.Dense(0) != nil {
		t.Fatal("column should not be promoted after 2 touches")
	}
	if tab.Sparse(0, false) == nil {
		t.Fatal("partial loads should retain sparse data")
	}

	// Third touch promotes column 0 (and any other needed column at the
	// threshold).
	if _, err := e.Query("select sum(a1) from G where a1 > 900 and a1 < 1200"); err != nil {
		t.Fatal(err)
	}
	if tab.Dense(0) == nil {
		t.Fatal("column 0 should be promoted to dense after 3 touches")
	}
	// Untouched columns stay unloaded.
	if tab.Dense(3) != nil {
		t.Error("untouched column should stay unloaded")
	}

	// After promotion, repeated queries read nothing from the file.
	before := e.Counters().Snapshot()
	if _, err := e.Query("select sum(a1) from G where a1 > 10 and a1 < 4000"); err != nil {
		t.Fatal(err)
	}
	if d := e.Counters().Snapshot().Sub(before); d.RawBytesRead != 0 {
		t.Errorf("promoted column query read %d raw bytes", d.RawBytesRead)
	}
}

func TestAutoPolicyPromotesOnSparseGrowth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 4000, Cols: 2, Seed: 32}); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, Options{Policy: plan.PolicyAuto})
	if err := e.Link("G", path); err != nil {
		t.Fatal(err)
	}
	// One very unselective query fills >25% of the column's rows; the
	// second query should promote even though touches < threshold.
	if _, err := e.Query("select sum(a1) from G where a1 < 3000"); err != nil {
		t.Fatal(err)
	}
	tab, _ := e.Catalog().Get("G")
	if tab.Dense(0) != nil {
		t.Fatal("first query should stay partial")
	}
	if _, err := e.Query("select sum(a1) from G where a1 > 3500"); err != nil {
		t.Fatal(err)
	}
	if tab.Dense(0) == nil {
		t.Error("column with large sparse footprint should be promoted")
	}
}

func TestAutoPolicyCorrectness(t *testing.T) {
	// Auto must agree with ColumnLoads on a shifting workload.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 3000, Cols: 4, Seed: 33}); err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	auto := newEngine(t, Options{Policy: plan.PolicyAuto})
	ref.Link("G", path)
	auto.Link("G", path)
	for i := 0; i < 8; i++ {
		lo := i * 300
		q := fmt.Sprintf("select sum(a1), avg(a2), count(*) from G where a1 > %d and a1 < %d", lo, lo+900)
		if i%3 == 2 {
			q = fmt.Sprintf("select sum(a3), max(a4) from G where a3 > %d and a3 < %d", lo, lo+900)
		}
		a, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := auto.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range a.Rows[0] {
			if a.Rows[0][ci].String() != b.Rows[0][ci].String() {
				t.Fatalf("query %d col %d: ref=%v auto=%v", i, ci, a.Rows[0][ci], b.Rows[0][ci])
			}
		}
	}
}

func TestFusedPathTaken(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: 1000, Cols: 2, Seed: 61}); err != nil {
		t.Fatal(err)
	}
	// Default mode: the vectorized pipeline handles dense aggregates (its
	// columnar loops outrun the fused single-pass operator).
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	e.Link("G", path)
	res, err := e.Query("select sum(a1), count(*) from G where a1 < 500")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stats.Plan, "vectorized pipeline") || strings.Contains(res.Stats.Plan, "fused") {
		t.Errorf("default mode should aggregate through the pipeline: %q", res.Stats.Plan)
	}
	if res.Rows[0][1].I != 500 {
		t.Errorf("count = %v", res.Rows[0][1])
	}
	// Row-at-a-time mode keeps the fused operator as its fast path.
	el := newEngine(t, Options{Policy: plan.PolicyColumnLoads, DisableVectorExec: true})
	el.Link("G", path)
	resl, err := el.Query("select sum(a1), count(*) from G where a1 < 500")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resl.Stats.Plan, "fused") {
		t.Errorf("legacy mode should use the fused operator: %q", resl.Stats.Plan)
	}
	if resl.Rows[0][1].I != 500 {
		t.Errorf("legacy count = %v", resl.Rows[0][1])
	}
	// Group-by queries must not take the fused path.
	res2, err := el.Query("select a2, count(*) from G group by a2 limit 1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res2.Stats.Plan, "fused") {
		t.Error("group-by should not fuse")
	}
}
