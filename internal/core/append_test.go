package core

// Append-growth tests: appending rows to a raw file must extend the
// learned structures over the tail instead of invalidating them, and a
// grown table must answer every query exactly like a cold engine that
// opened the grown file from scratch — the differential contract of the
// append-aware refresh path.

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"nodb/internal/plan"
)

// writeGrowableTable writes rows of cols int64 attributes in [0, maxVal)
// in the given format and returns the path plus the byte offset that cuts
// the file after prefixRows complete rows.
func writeGrowableTable(t *testing.T, path, format string, rows, prefixRows, cols int, maxVal, seed int64) (string, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	cut := -1
	for i := 0; i < rows; i++ {
		if i == prefixRows {
			cut = sb.Len()
		}
		if format == "ndjson" {
			sb.WriteByte('{')
			for c := 0; c < cols; c++ {
				if c > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, `"a%d":%d`, c+1, rng.Int63n(maxVal))
			}
			sb.WriteString("}\n")
		} else {
			for c := 0; c < cols; c++ {
				if c > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%d", rng.Int63n(maxVal))
			}
			sb.WriteByte('\n')
		}
	}
	if cut < 0 {
		t.Fatalf("prefixRows %d out of range", prefixRows)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return sb.String(), cut
}

func appendTail(t *testing.T, path, tail string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(tail); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// appendQueries exercises full-column aggregates (dense state), selective
// ranges (positional map, partial loads, coverage regions), an
// out-of-range predicate (synopsis pruning must skip the tail portion
// only when its zone maps allow it) and grouping.
func appendQueries(maxVal int64) []string {
	return []string{
		"select count(*) from T",
		"select sum(a1), min(a2), max(a3) from T",
		fmt.Sprintf("select sum(a2), count(*) from T where a1 between %d and %d", maxVal/4, maxVal/2),
		fmt.Sprintf("select count(*), sum(a2) from T where a1 > %d", maxVal*10),
		"select a1, count(*) from T where a2 > 100 and a1 < 25 group by a1 order by a1 limit 10",
	}
}

func resultStrings(t *testing.T, e *Engine, queries []string) []string {
	t.Helper()
	var out []string
	for _, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var rows []string
		for _, r := range res.Rows {
			var vals []string
			for _, v := range r {
				vals = append(vals, v.String())
			}
			rows = append(rows, strings.Join(vals, ","))
		}
		out = append(out, strings.Join(rows, ";"))
	}
	return out
}

func TestAppendGrowthDifferential(t *testing.T) {
	const rows, prefixRows, cols = 3000, 2700, 4
	const maxVal, seed = 1000, 42
	cases := []struct {
		format string
		policy plan.Policy
	}{
		{"csv", plan.PolicyColumnLoads},
		{"csv", plan.PolicyPartialV2},
		{"csv", plan.PolicySplitFiles},
		{"ndjson", plan.PolicyColumnLoads},
		{"ndjson", plan.PolicyPartialV2},
	}
	for _, tc := range cases {
		t.Run(tc.format+"/"+tc.policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			work := dir + "/grow." + tc.format
			data, cut := writeGrowableTable(t, work, tc.format, rows, prefixRows, cols, maxVal, seed)
			if err := os.WriteFile(work, []byte(data[:cut]), 0o644); err != nil {
				t.Fatal(err)
			}
			queries := appendQueries(maxVal)

			e := newEngine(t, Options{Policy: tc.policy, DisableRevalidation: true})
			defer e.Close()
			if err := e.Attach("T", TableSpec{Path: work, Format: tc.format}); err != nil {
				t.Fatal(err)
			}
			// Warm up twice: the second pass runs over learned structures.
			resultStrings(t, e, queries)
			resultStrings(t, e, queries)
			preStats, err := e.TableStats("T")
			if err != nil {
				t.Fatal(err)
			}

			appendTail(t, work, data[cut:])
			tailBytes := int64(len(data) - cut)

			before := e.Counters().Snapshot()
			ref, err := e.Refresh("T")
			if err != nil {
				t.Fatal(err)
			}
			refreshWork := e.Counters().Snapshot().Sub(before)
			if !ref.Changed || !ref.Grown {
				t.Fatalf("refresh = %+v, want a grown change", ref)
			}
			if ref.RowsAdded != rows-prefixRows {
				t.Errorf("rows added = %d, want %d", ref.RowsAdded, rows-prefixRows)
			}
			if ref.TailBytes != tailBytes {
				t.Errorf("tail bytes = %d, want %d", ref.TailBytes, tailBytes)
			}
			if ref.Rows != rows {
				t.Errorf("rows after refresh = %d, want %d", ref.Rows, rows)
			}
			// The whole point: re-adaptation reads the appended tail, not
			// the file. (Slack for the chunked reader's final partial read.)
			if got := refreshWork.RawBytesRead; got > tailBytes+8192 {
				t.Errorf("refresh read %d raw bytes, want ~tail (%d)", got, tailBytes)
			}

			postStats, err := e.TableStats("T")
			if err != nil {
				t.Fatal(err)
			}
			// Prefix-scoped structures survive and extend.
			if preStats.PosMapEntries > 0 && postStats.PosMapEntries <= preStats.PosMapEntries {
				t.Errorf("posmap entries %d -> %d, want growth", preStats.PosMapEntries, postStats.PosMapEntries)
			}
			if len(postStats.DenseCols) < len(preStats.DenseCols) {
				t.Errorf("dense cols %v -> %v, want no loss", preStats.DenseCols, postStats.DenseCols)
			}
			if preStats.SynopsisPortions > 0 && postStats.SynopsisPortions != preStats.SynopsisPortions+1 {
				t.Errorf("synopsis portions %d -> %d, want one appended tail portion",
					preStats.SynopsisPortions, postStats.SynopsisPortions)
			}
			if postStats.Signature.Size != int64(len(data)) {
				t.Errorf("signature size = %d, want %d", postStats.Signature.Size, len(data))
			}

			warm := resultStrings(t, e, queries)

			cold := newEngine(t, Options{Policy: tc.policy})
			defer cold.Close()
			if err := cold.Attach("T", TableSpec{Path: work, Format: tc.format}); err != nil {
				t.Fatal(err)
			}
			want := resultStrings(t, cold, queries)
			for i := range queries {
				if warm[i] != want[i] {
					t.Errorf("query %q: grown-table answer %q != cold answer %q", queries[i], warm[i], want[i])
				}
			}

			// Full-column aggregates over extended dense state must not
			// touch the raw file again.
			if tc.policy == plan.PolicyColumnLoads {
				res, err := e.Query(queries[1])
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Work.RawBytesRead != 0 {
					t.Errorf("post-growth dense aggregate read %d raw bytes, want 0", res.Stats.Work.RawBytesRead)
				}
			}
		})
	}
}

// TestAppendPickedUpByQuery pins the default-revalidation path: with
// revalidation on, a plain query after an append folds the tail in on its
// own — no explicit Refresh — and still pays only the tail.
func TestAppendPickedUpByQuery(t *testing.T) {
	const rows, prefixRows, cols = 2000, 1800, 3
	dir := t.TempDir()
	work := dir + "/grow.csv"
	data, cut := writeGrowableTable(t, work, "csv", rows, prefixRows, cols, 500, 7)
	if err := os.WriteFile(work, []byte(data[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}

	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	defer e.Close()
	if err := e.Attach("T", TableSpec{Path: work}); err != nil {
		t.Fatal(err)
	}
	if res, err := e.Query("select count(*) from T"); err != nil || res.Rows[0][0].I != prefixRows {
		t.Fatalf("prefix count: %v, %v", res, err)
	}

	appendTail(t, work, data[cut:])
	res, err := e.Query("select count(*) from T")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != rows {
		t.Fatalf("post-append count = %v, want %d", res.Rows[0][0], rows)
	}
	tailBytes := int64(len(data) - cut)
	if got := res.Stats.Work.RawBytesRead; got > tailBytes+8192 {
		t.Errorf("query after append read %d raw bytes, want ~tail (%d)", got, tailBytes)
	}
	ing, err := e.TableStats("T")
	if err != nil {
		t.Fatal(err)
	}
	if ing.Ingest.AppendedRows != int64(rows-prefixRows) || ing.Ingest.Refreshes != 1 {
		t.Errorf("ingest = %+v, want %d appended rows in 1 refresh", ing.Ingest, rows-prefixRows)
	}
}

// TestAppendAcrossSnapshotRestart pins the warm-restart contract for
// grown files: a snapshot taken before the append restores the prefix
// state, and only the tail is re-read on top of it.
func TestAppendAcrossSnapshotRestart(t *testing.T) {
	const rows, prefixRows, cols = 3000, 2700, 4
	dir := t.TempDir()
	work := dir + "/grow.csv"
	cacheDir := dir + "/cache"
	data, cut := writeGrowableTable(t, work, "csv", rows, prefixRows, cols, 1000, 99)
	if err := os.WriteFile(work, []byte(data[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}
	queries := appendQueries(1000)

	e1 := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cacheDir, DisableRevalidation: true})
	if err := e1.Attach("T", TableSpec{Path: work}); err != nil {
		t.Fatal(err)
	}
	resultStrings(t, e1, queries)
	if err := e1.Close(); err != nil { // snapshot flushes here
		t.Fatal(err)
	}

	appendTail(t, work, data[cut:])
	tailBytes := int64(len(data) - cut)

	e2 := newEngine(t, Options{Policy: plan.PolicyColumnLoads, CacheDir: cacheDir})
	defer e2.Close()
	if err := e2.Attach("T", TableSpec{Path: work}); err != nil {
		t.Fatal(err)
	}
	before := e2.Counters().Snapshot()
	warm := resultStrings(t, e2, queries)
	work2 := e2.Counters().Snapshot().Sub(before)
	// The restart restores the prefix from the snapshot and scans only
	// the appended tail — far less than the full file.
	if work2.RawBytesRead > tailBytes+8192 {
		t.Errorf("warm restart of grown file read %d raw bytes, want ~tail (%d of %d total)",
			work2.RawBytesRead, tailBytes, len(data))
	}

	cold := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	defer cold.Close()
	if err := cold.Attach("T", TableSpec{Path: work}); err != nil {
		t.Fatal(err)
	}
	want := resultStrings(t, cold, queries)
	for i := range queries {
		if warm[i] != want[i] {
			t.Errorf("query %q: restored+grown answer %q != cold answer %q", queries[i], warm[i], want[i])
		}
	}
}

func TestAttachRefreshDetachLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "r.csv", basicCSV)
	e := newEngine(t, Options{DisableRevalidation: true})
	defer e.Close()

	if err := e.Attach("", TableSpec{Path: path}); err == nil {
		t.Error("attach without a name should fail")
	}
	if err := e.Attach("R", TableSpec{}); err == nil {
		t.Error("attach without a path should fail")
	}
	if err := e.Attach("R", TableSpec{Path: path, Format: "parquet"}); err == nil {
		t.Error("attach with an unknown format should fail")
	}

	if err := e.Attach("Events", TableSpec{Path: path, Format: "csv", Follow: true}); err != nil {
		t.Fatal(err)
	}
	if got := e.Followed(); len(got) != 1 || got[0] != "events" {
		t.Errorf("Followed = %v, want [events]", got)
	}

	// Unchanged file: a refresh is a no-op.
	ref, err := e.Refresh("events")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Changed || ref.Grown || ref.RowsAdded != 0 {
		t.Errorf("no-op refresh = %+v", ref)
	}
	if _, err := e.Refresh("nope"); err == nil {
		t.Error("refresh of unknown table should fail")
	}

	// Re-attach without Follow clears the mark.
	if err := e.Attach("events", TableSpec{Path: path}); err != nil {
		t.Fatal(err)
	}
	if got := e.Followed(); len(got) != 0 {
		t.Errorf("Followed after re-attach = %v, want none", got)
	}

	if err := e.Detach("events"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("select count(*) from events"); err == nil {
		t.Error("detached table still queryable")
	}
	if err := e.Detach("events"); err == nil {
		t.Error("double detach should fail")
	}

	// The deprecated wrappers stay functional.
	if err := e.Link("L", path); err != nil {
		t.Fatal(err)
	}
	if err := e.Unlink("L"); err != nil {
		t.Fatal(err)
	}
}
