package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nodb/internal/csvgen"
	"nodb/internal/plan"
)

func linkTable(t *testing.T, e *Engine, name string, rows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".csv")
	if err := csvgen.WriteFile(path, csvgen.Spec{Rows: rows, Cols: 4, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	if err := e.Link(name, path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRowsIterationMatchesBufferedResult: the cursor and the buffered path
// agree, under every policy.
func TestRowsIterationMatchesBufferedResult(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			e := newEngine(t, Options{Policy: pol})
			linkTable(t, e, "T", 500)
			const q = "select a1, a3 from T where a1 >= 100 and a1 < 120 order by a1"

			res, err := e.Query(q)
			if err != nil {
				t.Fatal(err)
			}

			rows, err := e.QueryRows(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			defer rows.Close()
			i := 0
			for rows.Next() {
				var a1, a3 int64
				if err := rows.Scan(&a1, &a3); err != nil {
					t.Fatal(err)
				}
				if a1 != res.Rows[i][0].I || a3 != res.Rows[i][1].I {
					t.Fatalf("row %d: cursor (%d,%d) != buffered (%v,%v)", i, a1, a3, res.Rows[i][0], res.Rows[i][1])
				}
				i++
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			if i != len(res.Rows) || i != 20 {
				t.Fatalf("cursor yielded %d rows, buffered %d, want 20", i, len(res.Rows))
			}
			if rows.Stats().Plan == "" {
				t.Error("cursor stats missing plan")
			}
		})
	}
}

// TestRowsLimitStopsScanEarly: under a scanning policy, LIMIT n terminates
// the raw-file pass after the first chunks instead of finishing it.
func TestRowsLimitStopsScanEarly(t *testing.T) {
	for _, pol := range []plan.Policy{plan.PolicyPartialV1, plan.PolicyExternal} {
		t.Run(pol.String(), func(t *testing.T) {
			e := newEngine(t, Options{Policy: pol, ChunkSize: 4096})
			path := linkTable(t, e, "big", 40000)
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}

			run := func(q string) int64 {
				before := e.Counters().Snapshot().RawBytesRead
				res, err := e.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				_ = res
				return e.Counters().Snapshot().RawBytesRead - before
			}
			full := run("select a1, a2 from big where a1 >= 0")
			limited := run("select a1, a2 from big where a1 >= 0 limit 5")

			if full < st.Size() {
				t.Fatalf("full pass read %d of %d bytes", full, st.Size())
			}
			if limited == 0 {
				t.Fatal("limited query read nothing")
			}
			if limited*4 >= full {
				t.Fatalf("LIMIT 5 read %d raw bytes vs %d for the full pass; want early termination", limited, full)
			}
		})
	}
}

// TestRowsCloseStopsScanMidIteration: closing a cursor after a few rows
// cancels the producer; the scan stops between chunks.
func TestRowsCloseStopsScanMidIteration(t *testing.T) {
	e := newEngine(t, Options{Policy: plan.PolicyPartialV1, ChunkSize: 4096})
	path := linkTable(t, e, "big", 40000)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the portion layout (one full pass) so the measured scan below
	// is a steady-state pass with no one-time row-count pre-pass.
	if _, err := e.Query("select count(*) from big"); err != nil {
		t.Fatal(err)
	}

	before := e.Counters().Snapshot().RawBytesRead
	rows, err := e.QueryRows(context.Background(), "select a1 from big where a1 >= 0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && rows.Next(); i++ {
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close after early stop: %v", err)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err after early Close = %v, want nil", err)
	}
	read := e.Counters().Snapshot().RawBytesRead - before
	if read == 0 {
		t.Fatal("cursor never touched the raw file")
	}
	if read >= st.Size() {
		t.Fatalf("closed cursor read %d of %d raw bytes; want a mid-pass stop", read, st.Size())
	}
}

// TestRowsLimitZero yields no rows but no error.
func TestRowsLimitZero(t *testing.T) {
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	linkTable(t, e, "T", 100)
	rows, err := e.QueryRows(context.Background(), "select a1 from T limit 0")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if rows.Next() {
		t.Fatal("LIMIT 0 yielded a row")
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedStatements: placeholders bind as typed values and execute
// repeatedly; arity and validity are checked.
func TestPreparedStatements(t *testing.T) {
	e := newEngine(t, Options{Policy: plan.PolicyPartialV2})
	linkTable(t, e, "T", 1000)

	stmt, err := e.Prepare("select sum(a1), count(*) from T where a1 >= ? and a1 < ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	if stmt.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", stmt.NumParams())
	}

	for lo := int64(0); lo < 500; lo += 100 {
		res, err := stmt.Query(lo, lo+100)
		if err != nil {
			t.Fatal(err)
		}
		wantSum := (lo + lo + 99) * 100 / 2
		if res.Rows[0][0].I != wantSum || res.Rows[0][1].I != 100 {
			t.Fatalf("[%d,%d): sum=%v count=%v, want %d/100", lo, lo+100, res.Rows[0][0], res.Rows[0][1], wantSum)
		}
	}

	if _, err := stmt.Query(1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := stmt.Query(1, struct{}{}); err == nil {
		t.Fatal("unsupported argument type accepted")
	}
	if _, err := e.Prepare("select nope from T"); err == nil {
		t.Fatal("Prepare accepted an unknown column")
	}
	if _, err := e.Prepare("select a1 from missing where a1 = ?"); err == nil {
		t.Fatal("Prepare accepted an unknown table")
	}
}

// TestPreparedStatementInjectionSafe: an argument is always a value, never
// SQL text — a malicious string matches literally (and matches nothing).
func TestPreparedStatementInjectionSafe(t *testing.T) {
	e := newEngine(t, Options{})
	path := filepath.Join(t.TempDir(), "s.csv")
	spec := csvgen.Spec{
		Rows: 50, Cols: 2, Seed: 3,
		ColSpecs: []csvgen.ColSpec{{Kind: csvgen.SequentialInts}, {Kind: csvgen.Strings}},
	}
	if err := csvgen.WriteFile(path, spec); err != nil {
		t.Fatal(err)
	}
	if err := e.Link("S", path); err != nil {
		t.Fatal(err)
	}
	stmt, err := e.Prepare("select count(*) from S where a2 = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query("x' or '1'='1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I; got != 0 {
		t.Fatalf("injection-shaped argument matched %d rows, want 0", got)
	}
}

// TestPlanCache: repeated preparations and ad-hoc queries of one statement
// parse once; differently-spelled equivalents share the entry.
func TestPlanCache(t *testing.T) {
	e := newEngine(t, Options{})
	linkTable(t, e, "T", 50)

	q := "select a1 from T where a1 < ?"
	if _, err := e.Prepare(q); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare("SELECT  a1  FROM T   WHERE a1 < ?"); err != nil {
		t.Fatal(err)
	}
	hits, _, size := e.PlanCacheStats()
	if size != 1 {
		t.Fatalf("cache size = %d, want 1 (normalization failed)", size)
	}
	if hits == 0 {
		t.Fatal("second preparation missed the cache")
	}
	// String literals must stay case-sensitive in the key.
	if _, err := e.Query("select count(*) from T where a1 = 1"); err != nil {
		t.Fatal(err)
	}
	_, _, size = e.PlanCacheStats()
	if size != 2 {
		t.Fatalf("cache size = %d, want 2", size)
	}
}

// TestEngineClose: Close is idempotent, fails new work with ErrClosed,
// releases loaded state, and aborts in-flight cursors.
func TestEngineClose(t *testing.T) {
	e := newEngine(t, Options{Policy: plan.PolicyColumnLoads})
	linkTable(t, e, "T", 1000)
	if _, err := e.Query("select sum(a1) from T"); err != nil {
		t.Fatal(err)
	}
	if e.Catalog().MemSize() == 0 {
		t.Fatal("expected loaded state before Close")
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if got := e.Catalog().MemSize(); got != 0 {
		t.Fatalf("MemSize after Close = %d, want 0", got)
	}

	if _, err := e.Query("select sum(a1) from T"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := e.Prepare("select a1 from T"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Prepare after Close = %v, want ErrClosed", err)
	}
	if _, err := e.Explain("select a1 from T"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Explain after Close = %v, want ErrClosed", err)
	}
	if err := e.Link("U", "/nonexistent.csv"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Link after Close = %v, want ErrClosed", err)
	}
	if err := e.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ping after Close = %v, want ErrClosed", err)
	}
}

// TestEngineCloseAbortsInFlightCursor: Close cancels a cursor mid-stream;
// the consumer sees an error end, not a hang.
func TestEngineCloseAbortsInFlightCursor(t *testing.T) {
	e := newEngine(t, Options{Policy: plan.PolicyPartialV1, ChunkSize: 4096})
	linkTable(t, e, "big", 40000)

	rows, err := e.QueryRows(context.Background(), "select a1 from big where a1 >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for rows.Next() {
		}
	}()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after engine Close = %v, want context.Canceled", err)
	}
	rows.Close()
}

// TestConcurrentCursorsAndPreparedStatements drives the new surface the
// way the server does — many goroutines, one engine — for the -race job.
func TestConcurrentCursorsAndPreparedStatements(t *testing.T) {
	e := newEngine(t, Options{Policy: plan.PolicyPartialV2})
	linkTable(t, e, "T", 4000)

	stmt, err := e.Prepare("select a1 from T where a1 >= ? and a1 < ?")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				lo := int64((w + i) * 100 % 3000)
				rows, err := stmt.QueryRows(context.Background(), lo, lo+100)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				n := 0
				for rows.Next() {
					n++
					if n == 3 && i%2 == 0 {
						break // exercise early Close under concurrency
					}
				}
				if err := rows.Close(); err != nil {
					errs <- fmt.Errorf("worker %d close: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
