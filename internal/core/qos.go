package core

import (
	"context"
	"fmt"
	"strings"

	"nodb/internal/metrics"
	"nodb/internal/plan"
	"nodb/internal/qos"
	"nodb/internal/sql"
	"nodb/internal/storage"
)

// resultKey derives the statement's result-cache key: the normalized
// rendering of the fully bound statement plus, per touched table, the raw
// file's identity and signature. Signatures change when a file is edited,
// so a stale result is simply never looked up again — invalidation needs
// no bookkeeping. Returns "" (uncacheable) when the statement still has
// unbound parameters or references an unknown table (execution will
// surface that error).
func (e *Engine) resultKey(stmt *sql.SelectStmt) string {
	if stmt.NumParams != 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(sql.Normalize(stmt.String()))
	appendTable := func(name string) bool {
		t, err := e.cat.Get(name)
		if err != nil {
			return false
		}
		sig := t.Signature()
		fmt.Fprintf(&sb, "\x00%s=%s:%d:%d:%d:%d", name, t.Path(), sig.Size, sig.ModTime, sig.Prefix, sig.Tail)
		return true
	}
	if !appendTable(stmt.From.Name) {
		return ""
	}
	for _, j := range stmt.Joins {
		if !appendTable(j.Table.Name) {
			return ""
		}
	}
	return sb.String()
}

// cachedRows serves a cached (or singleflight-shared) result through a
// regular streaming cursor, so callers cannot tell a replay from an
// execution. Each row is copied out: cursor consumers own the rows they
// receive, and the cache's copy must stay immutable.
func (e *Engine) cachedRows(ctx context.Context, res *qos.CachedResult, before metrics.Snapshot, timer metrics.Timer, note string) *Rows {
	cctx, cancel := newCursorContext(ctx)
	unhook := context.AfterFunc(e.closeCtx, cancel)
	r := &Rows{
		cols:   append([]string(nil), res.Columns...),
		cancel: cancel,
		unhook: func() { unhook() },
		ch:     make(chan [][]storage.Value, 4),
	}
	go func() {
		defer close(r.ch)
		w := &rowWriter{ctx: cctx, ch: r.ch, limit: -1}
		var err error
		for _, row := range res.Rows {
			if err = w.emit(append([]storage.Value(nil), row...)); err != nil {
				break
			}
		}
		if err == nil {
			err = w.flush()
		}
		r.finalErr = err
		r.finalStats = QueryStats{
			Work: e.counters.Snapshot().Sub(before),
			Wall: timer.Elapsed(),
			Plan: res.Plan + note,
		}
	}()
	return r
}

// ownPlan attributes the adaptive structures the plan read to the tenant,
// so the governor's per-tenant pass charges them to whoever used them
// last.
func (e *Engine) ownPlan(p *plan.Plan, tenant string) {
	for i := range p.Tables {
		t, err := e.cat.Get(p.Tables[i].Name)
		if err != nil {
			continue
		}
		t.Own(p.Tables[i].Pins, tenant)
	}
}

// resultSink accumulates a private copy of the rows a producer emits, for
// admission to the result cache. It stops copying — and poisons itself —
// once the copy exceeds the cache's per-entry bound, so an unexpectedly
// huge result costs at most the bound in transient memory. Mutated only
// under the owning rowWriter's lock.
type resultSink struct {
	rows     [][]storage.Value
	bytes    int64
	max      int64
	overflow bool
}

func (s *resultSink) add(row []storage.Value) {
	if s == nil || s.overflow {
		return
	}
	s.bytes += qos.RowBytes(row)
	if s.max > 0 && s.bytes > s.max {
		s.overflow = true
		s.rows = nil
		return
	}
	s.rows = append(s.rows, append([]storage.Value(nil), row...))
}
