package catalog

import (
	"fmt"
	"sort"
	"time"

	"nodb/internal/errs"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/splitfile"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
	"nodb/internal/vfs"
)

// IngestStats reports a table's append-ingestion accounting: how much of
// the raw file arrived through incremental tail extensions rather than
// being present at link time.
type IngestStats struct {
	// AppendedRows and AppendedBytes are the rows/bytes folded in by
	// incremental extensions since the table was linked.
	AppendedRows  int64 `json:"appended_rows"`
	AppendedBytes int64 `json:"appended_bytes"`
	// Refreshes counts completed incremental extensions.
	Refreshes int64 `json:"refreshes"`
	// LastRefresh is when the last extension finished (unix nanos, 0 when
	// none ran).
	LastRefresh int64 `json:"last_refresh,omitempty"`
}

// Ingest returns the table's append-ingestion counters.
func (t *Table) Ingest() IngestStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return IngestStats{
		AppendedRows:  t.appendedRows,
		AppendedBytes: t.appendedBytes,
		Refreshes:     t.refreshes,
		LastRefresh:   t.lastRefresh,
	}
}

// growLocked handles a prefix-stable growth detected mid-session: drain
// whatever the snapshot tier still holds for the old prefix (its sections
// could not be validated once the signature moves on), then extend the
// in-memory state over the appended tail. Caller holds snapMu.
func (t *Table) growLocked(old, cur Signature) error {
	if t.snap != nil {
		t.initSnapLocked()
		if pe := t.pendingExtend; pe != nil {
			// The snapshot described an even older prefix (saved before a
			// growth this process never observed). The grown restore already
			// drained it, so extend straight from that prefix.
			t.pendingExtend = nil
			old = *pe
		} else {
			all := make([]int, len(t.schema.Columns))
			for i := range all {
				all[i] = i
			}
			t.restoreDenseLocked(all)
			t.restorePosMapLocked()
			t.unspillAs(old)
		}
	}
	return t.extendForGrowth(old, cur)
}

// extendForGrowth folds the appended tail [old.Size, cur.Size) of the raw
// file into every learned structure in one sequential pass: dense columns
// gain the parsed tail values, the positional map gains the tail rows'
// field offsets, coverage regions absorb qualifying tail rows (so their
// claims stay exact over the grown table), the synopsis gains one tail
// portion with fresh zone-map bounds, and registered split files are
// appended to in place. Prefix-scoped state — everything learned before
// the append — is reused verbatim; that is the point.
//
// On error the caller must fall back to full invalidation, which also
// discards anything a partial pass touched (positional-map tail entries,
// half-appended split files). Caller holds snapMu; loadMu is taken here
// and held for the whole pass, so loads, merges and region bookkeeping
// cannot interleave.
func (t *Table) extendForGrowth(old, cur Signature) error {
	t.loadMu.Lock()
	defer t.loadMu.Unlock()

	// The appended range must end on a row boundary; otherwise a torn or
	// still-in-progress append would be folded in as half a row.
	f, err := vfs.Default(t.fs).Open(t.path)
	if err != nil {
		return errs.Wrap(errs.ErrRawIO, "catalog extend", t.path, err)
	}
	var last [1]byte
	_, rerr := f.ReadAt(last[:], cur.Size-1)
	f.Close()
	if rerr != nil || last[0] != '\n' {
		return fmt.Errorf("catalog: appended tail of %s does not end in a newline", t.path)
	}

	sch := t.schema
	ncols := len(sch.Columns)
	allCols := make([]int, ncols)
	for i := range allCols {
		allCols[i] = i
	}
	// Pin everything for the duration: the governor must not evict (and
	// thereby prune regions) while the pass relies on positional stability
	// of t.regions and on the dense arrays it is copying.
	unpin := t.Pin(allCols)
	defer unpin()

	type denseCopy struct {
		col    int
		typ    schema.Type
		ints   []int64
		floats []float64
		strs   []string
	}
	t.mu.RLock()
	oldRows := t.rows
	regions := append([]Region(nil), t.regions...)
	var dense []denseCopy
	var anySparse bool
	for c := range t.cols {
		if d := t.cols[c].Dense; d != nil {
			dense = append(dense, denseCopy{col: c, typ: d.Typ, ints: d.Ints, floats: d.Floats, strs: d.Strs})
		}
		if t.cols[c].Sparse != nil {
			anySparse = true
		}
	}
	t.mu.RUnlock()
	var splitsLive bool
	if t.Splits != nil {
		m := t.Splits.Manifest()
		splitsLive = len(m.Sidecars) > 0 || len(m.Rests) > 0
	}

	if oldRows < 0 {
		if len(dense) > 0 || anySparse || len(regions) > 0 || splitsLive {
			return fmt.Errorf("catalog: row-indexed state without a discovered row count")
		}
		// Nothing row-indexed was learned. The positional map's entries
		// (prefix offsets) stay valid as-is; a synopsis layout sized to the
		// old file cannot be extended without a row base and is dropped.
		t.Syn.Drop()
		t.finishGrowth(old, cur, 0, oldRows)
		return nil
	}

	// Dense columns extend copy-on-write: readers of the old arrays are
	// unaffected, and the extended copy is installed atomically afterwards.
	for i := range dense {
		d := &dense[i]
		switch d.typ {
		case schema.Int64:
			d.ints = append(make([]int64, 0, len(d.ints)+16), d.ints...)
		case schema.Float64:
			d.floats = append(make([]float64, 0, len(d.floats)+16), d.floats...)
		default:
			d.strs = append(make([]string, 0, len(d.strs)+16), d.strs...)
		}
	}

	// Split files are extended in place through appending writers. A
	// failure here only loses the split files (always safe), not the
	// extension.
	var ext *splitfile.Extender
	if t.Splits != nil {
		var xerr error
		ext, xerr = t.Splits.NewExtender()
		if xerr != nil {
			t.Splits.Drop()
			ext = nil
		}
	}
	defer func() {
		if ext != nil {
			ext.Close() // error path; invalidation will drop the registry
		}
	}()

	// The pass tokenizes only what the learned structures need — unless
	// split files are registered, which re-serialize whole rows.
	needCols := make(map[int]bool)
	if ext != nil {
		for c := 0; c < ncols; c++ {
			needCols[c] = true
		}
	} else {
		for _, d := range dense {
			needCols[d.col] = true
		}
		for _, r := range regions {
			for _, c := range r.Cols {
				needCols[c] = true
			}
			for c := range r.Ranges {
				needCols[c] = true
			}
		}
		if t.PosMap != nil {
			for _, c := range t.PosMap.CoveredCols() {
				needCols[c] = true
			}
		}
		for _, ps := range t.Syn.Export() {
			for _, b := range ps.Cols {
				needCols[b.Col] = true
			}
		}
	}
	scanCols := make([]int, 0, len(needCols))
	for c := range needCols {
		if c >= 0 && c < ncols {
			scanCols = append(scanCols, c)
		}
	}
	sort.Ints(scanCols)
	colPos := make(map[int]int, len(scanCols))
	types := make([]schema.Type, len(scanCols))
	for i, c := range scanCols {
		colPos[c] = i
		types[i] = sch.Columns[c].Type
	}

	// Region tail evaluation state: qualifying rows and their values per
	// materialized column. A region whose predicate cannot be evaluated on
	// the tail (non-int64 range column, unparsable value) is dropped —
	// over-claiming coverage would serve incomplete results.
	type regTail struct {
		drop bool
		rows []int64
		vals map[int][]storage.Value
	}
	regTails := make([]regTail, len(regions))
	for i, r := range regions {
		regTails[i].vals = make(map[int][]storage.Value)
		for c := range r.Ranges {
			if sch.Columns[c].Type != schema.Int64 {
				regTails[i].drop = true
			}
		}
	}

	var acc *synopsis.PortionAcc
	if t.Syn.Layout() != nil {
		acc = synopsis.NewPortionAcc(scan.PortionInfo{Off: old.Size, End: cur.Size, FirstRow: oldRows}, scanCols, types)
	}

	sc, err := scan.Open(t.path, scan.Options{
		Delimiter:   sch.Delimiter,
		Format:      sch.Format,
		FieldNames:  sch.FieldNames(),
		Workers:     -1, // sequential: rows must arrive in order, and the tail is small
		Counters:    t.counters,
		StartOffset: old.Size,
		MaxOffset:   cur.Size,
		FS:          t.fs,
	})
	if err != nil {
		return err
	}

	var tailRows int64
	rowVals := make([]storage.Value, len(scanCols))
	rowState := make([]int8, len(scanCols)) // 0 unparsed, 1 parsed, 2 failed
	raw := make([][]byte, ncols)
	handler := func(rowID int64, fields []scan.FieldRef) error {
		if len(fields) != len(scanCols) {
			return fmt.Errorf("catalog: tail row %d: got %d fields, want %d", rowID, len(fields), len(scanCols))
		}
		tailRows++
		grow := oldRows + rowID
		for i := range rowState {
			rowState[i] = 0
		}
		parse := func(i int) (storage.Value, bool) {
			if rowState[i] == 0 {
				v, perr := parseTailField(fields[i].Bytes, types[i], sch.Format)
				if perr != nil {
					rowState[i] = 2
				} else {
					rowState[i], rowVals[i] = 1, v
				}
			}
			return rowVals[i], rowState[i] == 1
		}

		if ext != nil {
			for i := range fields {
				raw[i] = fields[i].Bytes
			}
			if aerr := ext.AppendRow(raw); aerr != nil {
				ext.Close()
				ext = nil
				t.Splits.Drop()
			}
		}
		// Positional map: field offsets come free with the tokenization.
		for i, c := range scanCols {
			t.PosMap.Record(c, grow, fields[i].Offset)
		}
		// Dense columns: a parse failure aborts the extension — a cold load
		// of the grown file would fail on the same value.
		for di := range dense {
			d := &dense[di]
			v, ok := parse(colPos[d.col])
			if !ok {
				return fmt.Errorf("catalog: tail row %d: unparsable value for column %d", rowID, d.col)
			}
			switch d.typ {
			case schema.Int64:
				d.ints = append(d.ints, v.I)
			case schema.Float64:
				d.floats = append(d.floats, v.F)
			default:
				d.strs = append(d.strs, v.S)
			}
		}
		// Coverage regions: collect qualifying tail rows for the merge.
		for ri := range regions {
			rt := &regTails[ri]
			if rt.drop {
				continue
			}
			qual := true
			for c, iv := range regions[ri].Ranges {
				v, ok := parse(colPos[c])
				if !ok {
					rt.drop = true
					qual = false
					break
				}
				if !iv.Contains(v.I) {
					qual = false
					break
				}
			}
			if !qual || rt.drop {
				continue
			}
			for _, c := range regions[ri].Cols {
				v, ok := parse(colPos[c])
				if !ok {
					rt.drop = true
					break
				}
				rt.vals[c] = append(rt.vals[c], v)
			}
			if !rt.drop {
				rt.rows = append(rt.rows, grow)
			}
		}
		// Zone-map bounds for the tail portion.
		if acc != nil {
			for i := range scanCols {
				if v, ok := parse(i); ok {
					acc.Observe(i, v)
				}
			}
		}
		return nil
	}
	scanErr := sc.ScanColumns(scanCols, handler, nil)
	if ext != nil {
		cerr := ext.Close()
		ext = nil
		if cerr != nil {
			t.Splits.Drop()
		}
	}
	if scanErr != nil {
		return scanErr
	}
	if tailRows <= 0 {
		return fmt.Errorf("catalog: appended tail of %s tokenized no rows", t.path)
	}

	// Install. Order matters for concurrent dense readers (which do not
	// hold loadMu): regions that became unevaluable are withdrawn and
	// qualifying tail values merged before the row count moves, and dense
	// columns are swapped for their extended copies before tail rows
	// become addressable.
	t.mu.Lock()
	var dropAny bool
	for ri := range regTails {
		if regTails[ri].drop {
			dropAny = true
		}
	}
	if dropAny {
		// t.regions is positionally unchanged since the capture: AddRegion
		// callers hold loadMu (held here) and the pins veto evictions, so
		// the captured indices still line up.
		kept := t.regions[:0]
		for ri := range t.regions {
			if ri < len(regTails) && regTails[ri].drop {
				continue
			}
			kept = append(kept, t.regions[ri])
		}
		t.regions = kept
	}
	for _, d := range dense {
		// The cracker indexed the old dense array; it rebuilds on demand.
		delete(t.crack, d.col)
	}
	t.mu.Unlock()

	for ri := range regions {
		rt := &regTails[ri]
		if rt.drop || len(rt.rows) == 0 {
			continue
		}
		for _, c := range regions[ri].Cols {
			vs := rt.vals[c]
			if len(vs) != len(rt.rows) {
				continue
			}
			t.MergeSparse(c, rt.rows, func(i int) storage.Value { return vs[i] })
		}
	}
	for _, d := range dense {
		t.SetDense(d.col, &storage.DenseColumn{Typ: d.typ, Ints: d.ints, Floats: d.floats, Strs: d.strs})
	}
	if acc != nil {
		ps := synopsis.PortionState{
			Info: scan.PortionInfo{Off: old.Size, End: cur.Size, FirstRow: oldRows, Rows: tailRows},
			Cols: acc.Bounds(tailRows),
		}
		if !t.Syn.ExtendTail([]synopsis.PortionState{ps}) {
			// A synopsis that cannot absorb the tail must not survive it:
			// its portions would be matched by index+offset against layouts
			// built over the grown file and could mis-prune.
			t.Syn.Drop()
		}
	} else {
		t.Syn.Drop()
	}
	t.finishGrowth(old, cur, tailRows, oldRows)
	return nil
}

// finishGrowth installs the new signature and ingest accounting, then
// resets the snapshot tier's restore state: every on-disk section was
// either drained into memory or superseded, and the next save rewrites
// the snapshot under the new signature. The old snapshot file stays on
// disk deliberately — if the process dies before the next save, a restart
// restores it as a grown prefix and replays this extension. Caller holds
// snapMu and loadMu.
func (t *Table) finishGrowth(old, cur Signature, tailRows, oldRows int64) {
	t.mu.Lock()
	if oldRows >= 0 {
		t.rows = oldRows + tailRows
	}
	t.sig = cur
	t.appendedRows += tailRows
	t.appendedBytes += cur.Size - old.Size
	t.refreshes++
	t.lastRefresh = time.Now().UnixNano()
	if t.gov != nil && !t.released {
		t.refreshCostsLocked()
	}
	t.mu.Unlock()
	if t.counters != nil {
		t.counters.AddTailExtension(1)
		t.counters.AddTailRowsAppended(tailRows)
	}
	if t.snap == nil {
		return
	}
	if t.snapReader != nil {
		t.snapReader.Close()
		t.snapReader = nil
	}
	t.posMapRestored = false
	t.lastSaveFP = "" // state changed: the next flush must rewrite
	t.mu.Lock()
	t.snapDenseBytes = nil
	t.spillPM, t.spillSplits = false, false
	t.snapPending.Store(false)
	t.mu.Unlock()
}

// parseTailField converts one raw field to a typed value, mirroring the
// loader's parsing exactly so extension-built values are byte-identical
// to cold-load values. (The loader cannot be imported from here — it
// depends on the catalog.)
func parseTailField(b []byte, typ schema.Type, format scan.Format) (storage.Value, error) {
	if format == scan.FormatNDJSON {
		switch typ {
		case schema.Int64:
			v, err := scan.ParseJSONInt64(b)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.IntValue(v), nil
		case schema.Float64:
			v, err := scan.ParseJSONFloat64(b)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.FloatValue(v), nil
		default:
			s, err := scan.ParseJSONString(b)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.StringValue(s), nil
		}
	}
	switch typ {
	case schema.Int64:
		v, err := scan.ParseInt64(b)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.IntValue(v), nil
	case schema.Float64:
		v, err := scan.ParseFloat64(b)
		if err != nil {
			return storage.Value{}, err
		}
		return storage.FloatValue(v), nil
	default:
		return storage.StringValue(string(b)), nil
	}
}
