package catalog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"nodb/internal/govern"
	"nodb/internal/schema"
	"nodb/internal/snapshot"
	"nodb/internal/storage"
)

func quietStore(t *testing.T, dir string) *snapshot.Store {
	t.Helper()
	s := snapshot.NewStore(dir, nil)
	s.Logf = func(string, ...any) {}
	return s
}

// TestSaveAndPrepareRoundTrip: a table's learned state survives through a
// fresh catalog pointed at the same cache dir.
func TestSaveAndPrepareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,10\n2,20\n3,30\n")
	store := quietStore(t, filepath.Join(dir, "cache"))

	c1 := New(Options{Snapshots: store})
	tab1, err := c1.Link("R", path)
	if err != nil {
		t.Fatal(err)
	}
	tab1.SetNumRows(3)
	d := storage.NewDense(tab1.Schema().Columns[0].Type, 3)
	for _, v := range []int64{1, 2, 3} {
		d.Append(storage.IntValue(v))
	}
	tab1.SetDense(0, d)
	tab1.PosMap.Record(1, 0, 2)
	tab1.PosMap.Record(1, 1, 7)
	if err := tab1.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	c1.DropAll()

	c2 := New(Options{Snapshots: store})
	tab2, err := c2.Link("R", path)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Dense(0) != nil {
		t.Fatal("dense column present before Prepare (restore must be lazy)")
	}
	tab2.Prepare([]int{0, 1})
	if tab2.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", tab2.NumRows())
	}
	got := tab2.Dense(0)
	if got == nil || got.Len() != 3 || got.Ints[2] != 3 {
		t.Fatalf("dense column not restored: %+v", got)
	}
	// The positional map restores only when a load is still needed —
	// here col 1 is missing, so Prepare re-admitted it.
	if off, ok := tab2.PosMap.Lookup(1, 1); !ok || off != 7 {
		t.Errorf("posmap not restored: off=%d ok=%v", off, ok)
	}
}

// TestPreparePosMapLazy: when every needed column restores dense, the
// positional map stays on disk.
func TestPreparePosMapLazy(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,10\n2,20\n")
	store := quietStore(t, filepath.Join(dir, "cache"))

	c1 := New(Options{Snapshots: store})
	tab1, _ := c1.Link("R", path)
	tab1.SetNumRows(2)
	d := storage.NewDense(tab1.Schema().Columns[0].Type, 2)
	d.Append(storage.IntValue(1))
	d.Append(storage.IntValue(2))
	tab1.SetDense(0, d)
	tab1.PosMap.Record(0, 0, 0)
	if err := tab1.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	c1.DropAll()

	c2 := New(Options{Snapshots: store})
	tab2, _ := c2.Link("R", path)
	tab2.Prepare([]int{0})
	if tab2.Dense(0) == nil {
		t.Fatal("dense not restored")
	}
	if tab2.PosMap.Entries() != 0 {
		t.Error("posmap restored although no load was pending")
	}
}

// TestEvictionSpillKeepsGovernedBytesDown: spilling must zero the
// governed footprint exactly like a plain drop, and re-admission must
// re-register the bytes.
func TestEvictionSpillKeepsGovernedBytesDown(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,10\n2,20\n3,30\n")
	store := quietStore(t, filepath.Join(dir, "cache"))
	gov := govern.New(1, nil, nil) // 1-byte budget: evict everything unpinned

	c := New(Options{Snapshots: store, Governor: gov})
	tab, err := c.Link("R", path)
	if err != nil {
		t.Fatal(err)
	}
	tab.SetNumRows(3)
	for i := int64(0); i < 3; i++ {
		tab.PosMap.Record(0, i, i*10)
	}
	before := gov.Used()
	if before == 0 {
		t.Fatal("posmap not governed")
	}
	evicted := gov.Enforce()
	if len(evicted) == 0 {
		t.Fatal("nothing evicted")
	}
	if gov.Used() != 0 {
		t.Fatalf("governed bytes after spill-eviction = %d, want 0", gov.Used())
	}
	if st := store.Stats(); st.Spills == 0 {
		t.Fatalf("eviction did not spill: %+v", st)
	}
	if tab.PosMap.Entries() != 0 {
		t.Fatal("posmap not dropped after spill")
	}
	// Re-admission on demand: col 0 has no dense data → load pending.
	tab.Prepare([]int{0})
	if tab.PosMap.Entries() != 3 {
		t.Fatalf("posmap entries after unspill = %d, want 3", tab.PosMap.Entries())
	}
	if off, ok := tab.PosMap.Lookup(0, 2); !ok || off != 20 {
		t.Errorf("restored posmap wrong: off=%d ok=%v", off, ok)
	}
	if gov.Used() != before {
		t.Errorf("re-admitted bytes %d, want %d", gov.Used(), before)
	}
}

// TestRevalidateRemovesSnapshotFiles: an edited raw file must take its
// snapshot and spill files with it.
func TestRevalidateRemovesSnapshotFiles(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	path := writeCSV(t, dir, "r.csv", "1,10\n2,20\n")
	store := quietStore(t, cacheDir)

	c := New(Options{Snapshots: store})
	tab, _ := c.Link("R", path)
	tab.SetNumRows(2)
	tab.PosMap.Record(0, 0, 0)
	if err := tab.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	key := snapshot.Key("R", path)
	if _, err := os.Stat(store.SnapPath(key)); err != nil {
		t.Fatalf("snapshot missing before edit: %v", err)
	}

	if err := os.WriteFile(path, []byte("9,90\n8,80\n7,70\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err := tab.Revalidate()
	if err != nil || !changed {
		t.Fatalf("Revalidate = %v, %v", changed, err)
	}
	if _, err := os.Stat(store.SnapPath(key)); !os.IsNotExist(err) {
		t.Fatal("stale snapshot file survived the file edit")
	}
	// Prepare after invalidation must be a clean miss, not a crash.
	tab.Prepare([]int{0})
	if tab.Dense(0) != nil {
		t.Fatal("state restored from a removed snapshot")
	}
}

// TestRegionNeverOutlivesFailedSparseRestore pins the crash-safety
// invariant the reviewers probed: if a sparse column's section is
// corrupt, the region that references it must NOT be installed — a
// restored coverage claim without its backing data would later serve
// incomplete results. AddRegion's backing re-check is the guard.
func TestRegionNeverOutlivesFailedSparseRestore(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	path := writeCSV(t, dir, "r.csv", "1,10\n2,20\n3,30\n")
	store := quietStore(t, cacheDir)

	// Hand-craft a snapshot: one sparse column (col 1) and a region
	// claiming coverage over it, then corrupt the sparse payload only.
	sig, err := SignFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl := &snapshot.Table{
		Rows: 3,
		Sparse: []snapshot.SparseCol{{
			Col: 1, Typ: schema.Int64,
			Rows: []int64{0, 1}, Ints: []int64{10, 20},
		}},
		Regions: []snapshot.Region{{
			Cols: []int{1}, RangeCols: []int{0}, Los: []int64{0}, His: []int64{100},
		}},
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}
	key := snapshot.Key("R", path)
	f, err := os.Create(store.SnapPath(key))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Encode(f, snapshot.Sig(sig), tbl); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Locate and corrupt the sparse payload: it holds the value 20,
	// which appears nowhere else in the file.
	data, err := os.ReadFile(store.SnapPath(key))
	if err != nil {
		t.Fatal(err)
	}
	needle := []byte{20, 0, 0, 0, 0, 0, 0, 0}
	off := bytes.Index(data, needle)
	if off < 0 {
		t.Fatal("could not locate sparse payload")
	}
	data[off] ^= 0xff
	if err := os.WriteFile(store.SnapPath(key), data, 0o644); err != nil {
		t.Fatal(err)
	}

	c := New(Options{Snapshots: store})
	tab, err := c.Link("R", path)
	if err != nil {
		t.Fatal(err)
	}
	tab.Prepare([]int{0, 1})
	if sp := tab.Sparse(1, false); sp != nil {
		t.Fatalf("corrupt sparse column was installed: %d rows", sp.Len())
	}
	if regs := tab.Regions(); len(regs) != 0 {
		t.Fatalf("region survived its corrupt backing data: %+v", regs)
	}
	if _, ok := tab.CoveredBy(Region{Cols: []int{1}}); ok {
		t.Fatal("stale coverage claim served")
	}
	if st := store.Stats(); st.Invalidations == 0 {
		t.Errorf("corrupt sparse section not counted: %+v", st)
	}
}
