package catalog

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"nodb/internal/govern"
	"nodb/internal/intervals"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLinkAndGet(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,2\n3,4\n")
	c := New(Options{})
	tab, err := c.Link("R", path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Schema().NumCols() != 2 {
		t.Errorf("schema cols = %d", tab.Schema().NumCols())
	}
	got, err := c.Get("r") // case-insensitive
	if err != nil || got != tab {
		t.Errorf("Get: %v, %v", got, err)
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("unknown table should error")
	}
	if names := c.Tables(); len(names) != 1 || names[0] != "R" {
		t.Errorf("Tables = %v", names)
	}
}

func TestLinkMissingFile(t *testing.T) {
	c := New(Options{})
	if _, err := c.Link("X", "/nonexistent/file.csv"); err == nil {
		t.Error("linking missing file should error")
	}
}

func TestUnlink(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1\n")
	c := New(Options{})
	if _, err := c.Link("R", path); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("R"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("R"); err == nil {
		t.Error("unlinked table should be gone")
	}
	if err := c.Unlink("R"); err == nil {
		t.Error("double unlink should error")
	}
}

func TestDenseSparseState(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,2\n3,4\n")
	c := New(Options{})
	tab, _ := c.Link("R", path)

	if tab.Dense(0) != nil {
		t.Error("fresh table should have no dense columns")
	}
	if tab.DenseAll([]int{0}) {
		t.Error("DenseAll on empty state")
	}
	if m := tab.MissingDense([]int{0, 1}); len(m) != 2 {
		t.Errorf("MissingDense = %v", m)
	}

	d := storage.NewDense(schema.Int64, 2)
	d.Ints = append(d.Ints, 1, 3)
	tab.SetDense(0, d)
	if tab.Dense(0) != d || !tab.DenseAll([]int{0}) {
		t.Error("SetDense broken")
	}
	if m := tab.MissingDense([]int{0, 1}); len(m) != 1 || m[0] != 1 {
		t.Errorf("MissingDense = %v", m)
	}

	sp := tab.Sparse(1, true)
	if sp == nil || tab.Sparse(1, false) != sp {
		t.Error("Sparse create/get broken")
	}
	sp.Add(0, storage.IntValue(2))
	if tab.MemSize() <= 0 {
		t.Error("MemSize should count loaded state")
	}

	// Dense supersedes sparse.
	tab.SetDense(1, d)
	if tab.Sparse(1, false) != nil {
		t.Error("SetDense should clear sparse state")
	}
}

func TestRegionCovers(t *testing.T) {
	iv := func(lo, hi int64) intervals.Interval { return intervals.Interval{Lo: lo, Hi: hi} }
	r := Region{
		Ranges: map[int]intervals.Interval{0: iv(10, 20), 1: iv(0, 100)},
		Cols:   []int{0, 1},
	}
	cases := []struct {
		q    Region
		want bool
	}{
		// Narrower on both columns.
		{Region{Ranges: map[int]intervals.Interval{0: iv(12, 18), 1: iv(5, 50)}, Cols: []int{0, 1}}, true},
		// Exact match.
		{Region{Ranges: map[int]intervals.Interval{0: iv(10, 20), 1: iv(0, 100)}, Cols: []int{0, 1}}, true},
		// Wider on column 0.
		{Region{Ranges: map[int]intervals.Interval{0: iv(5, 18), 1: iv(5, 50)}, Cols: []int{0, 1}}, false},
		// Needs a column that was not materialized.
		{Region{Ranges: map[int]intervals.Interval{0: iv(12, 18), 1: iv(5, 50)}, Cols: []int{0, 1, 2}}, false},
		// Does not constrain column 1 at all → needs full range there.
		{Region{Ranges: map[int]intervals.Interval{0: iv(12, 18)}, Cols: []int{0}}, false},
		// Constrains an extra column the region did not: fine (subset rows).
		{Region{Ranges: map[int]intervals.Interval{0: iv(12, 18), 1: iv(5, 50), 2: iv(0, 1)}, Cols: []int{0, 1}}, true},
	}
	for i, c := range cases {
		if got := r.Covers(c.q); got != c.want {
			t.Errorf("case %d: Covers = %v, want %v", i, got, c.want)
		}
	}
}

func TestTableRegions(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,2\n")
	c := New(Options{})
	tab, _ := c.Link("R", path)
	iv := intervals.Interval{Lo: 0, Hi: 50}
	r := Region{Ranges: map[int]intervals.Interval{0: iv}, Cols: []int{0, 1}}
	// A region without backing data is refused (coverage must never
	// outlive — or predate — the values it promises).
	tab.AddRegion(r)
	if len(tab.Regions()) != 0 {
		t.Fatal("unbacked region was recorded")
	}
	for _, col := range []int{0, 1} {
		tab.MergeSparse(col, []int64{0}, func(int) storage.Value { return storage.IntValue(int64(col + 1)) })
	}
	tab.AddRegion(r)
	q := Region{Ranges: map[int]intervals.Interval{0: {Lo: 10, Hi: 20}}, Cols: []int{0}}
	if _, ok := tab.CoveredBy(q); !ok {
		t.Error("recorded region should cover narrower query")
	}
	q2 := Region{Ranges: map[int]intervals.Interval{0: {Lo: 10, Hi: 90}}, Cols: []int{0}}
	if _, ok := tab.CoveredBy(q2); ok {
		t.Error("wider query should not be covered")
	}
	if len(tab.Regions()) != 1 {
		t.Error("Regions copy broken")
	}
}

func TestRevalidateDropsState(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,2\n3,4\n")
	c := New(Options{})
	tab, _ := c.Link("R", path)

	d := storage.NewDense(schema.Int64, 2)
	d.Ints = append(d.Ints, 1, 3)
	tab.SetDense(0, d)
	tab.SetNumRows(2)
	tab.PosMap.Record(0, 0, 0)

	// Unchanged file: no invalidation.
	inv, err := tab.Revalidate()
	if err != nil || inv {
		t.Fatalf("unchanged file invalidated: %v, %v", inv, err)
	}
	if tab.Dense(0) == nil {
		t.Fatal("state dropped without invalidation")
	}

	// Edit the file (the user's text editor, per the paper).
	time.Sleep(10 * time.Millisecond) // ensure mtime moves
	if err := os.WriteFile(path, []byte("9,8\n7,6\n5,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	inv, err = tab.Revalidate()
	if err != nil || !inv {
		t.Fatalf("edited file not invalidated: %v, %v", inv, err)
	}
	if tab.Dense(0) != nil {
		t.Error("dense column survived invalidation")
	}
	if tab.NumRows() != -1 {
		t.Error("row count survived invalidation")
	}
	if tab.PosMap.Entries() != 0 {
		t.Error("positional map survived invalidation")
	}
}

func TestRevalidateSchemaChange(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,2\n")
	c := New(Options{})
	tab, _ := c.Link("R", path)
	time.Sleep(10 * time.Millisecond)
	writeCSV(t, dir, "r.csv", "1,2,3\n4,5,6\n")
	if _, err := tab.Revalidate(); err != nil {
		t.Fatal(err)
	}
	if tab.Schema().NumCols() != 3 {
		t.Errorf("schema not refreshed: %d cols", tab.Schema().NumCols())
	}
	// Column state resized.
	if tab.Dense(2) != nil {
		t.Error("new column should be unloaded")
	}
}

func TestCracker(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1\n2\n3\n")
	c := New(Options{})
	tab, _ := c.Link("R", path)
	if tab.Cracker(0, true) != nil {
		t.Error("cracker without dense column should be nil")
	}
	d := storage.NewDense(schema.Int64, 3)
	d.Ints = append(d.Ints, 3, 1, 2)
	tab.SetDense(0, d)
	cr := tab.Cracker(0, true)
	if cr == nil || cr.Len() != 3 {
		t.Fatal("cracker not built from dense column")
	}
	if tab.Cracker(0, false) != cr {
		t.Error("cracker should be cached")
	}
}

func TestGovernedEviction(t *testing.T) {
	dir := t.TempDir()
	p1 := writeCSV(t, dir, "a.csv", "1\n2\n")
	p2 := writeCSV(t, dir, "b.csv", "1\n2\n")
	gov := govern.New(100, govern.LRU{}, nil)
	c := New(Options{Governor: gov})
	ta, _ := c.Link("A", p1)
	tb, _ := c.Link("B", p2)

	load := func(tab *Table) {
		d := storage.NewDense(schema.Int64, 16)
		for i := 0; i < 16; i++ {
			d.Ints = append(d.Ints, int64(i))
		}
		tab.SetDense(0, d) // 128 bytes each
	}
	load(ta)
	load(tb) // B registered after A → A is the LRU victim
	if gov.Used() < 256 {
		t.Fatalf("governed bytes = %d, want >= 256 after two loads", gov.Used())
	}
	evicted := gov.Enforce()
	if len(evicted) == 0 {
		t.Fatal("budget exceeded but nothing evicted")
	}
	if evicted[0].Label != "A.c0" {
		t.Errorf("evicted %v, want A.c0 first (LRU)", evicted)
	}
	if ta.Dense(0) != nil {
		t.Error("evicted column still in the catalog")
	}
	if gov.Used() > 100 {
		t.Errorf("used = %d after enforce, budget 100", gov.Used())
	}
	_ = tb
}

func TestGovernedPinVetoesEviction(t *testing.T) {
	dir := t.TempDir()
	p := writeCSV(t, dir, "a.csv", "1\n2\n")
	gov := govern.New(50, govern.CostAware{}, nil)
	c := New(Options{Governor: gov})
	ta, _ := c.Link("A", p)
	d := storage.NewDense(schema.Int64, 16)
	for i := 0; i < 16; i++ {
		d.Ints = append(d.Ints, int64(i))
	}
	ta.SetDense(0, d)
	unpin := ta.Pin([]int{0})
	if ev := gov.Enforce(); len(ev) != 0 {
		t.Fatalf("pinned column evicted: %v", ev)
	}
	if ta.Dense(0) == nil {
		t.Fatal("pinned column dropped from catalog")
	}
	unpin()
	if ev := gov.Enforce(); len(ev) == 0 {
		t.Fatal("unpinned column should be evictable")
	}
}

func TestGovernedReleaseOnDropDerived(t *testing.T) {
	dir := t.TempDir()
	p := writeCSV(t, dir, "a.csv", "1\n2\n")
	gov := govern.New(0, nil, nil)
	c := New(Options{Governor: gov})
	ta, _ := c.Link("A", p)
	d := storage.NewDense(schema.Int64, 16)
	for i := 0; i < 16; i++ {
		d.Ints = append(d.Ints, int64(i))
	}
	ta.SetDense(0, d)
	if gov.Used() == 0 {
		t.Fatal("load not accounted")
	}
	ta.DropDerived()
	if gov.Used() != 0 {
		t.Fatalf("used = %d after DropDerived, want 0", gov.Used())
	}
	if err := c.Unlink("A"); err != nil {
		t.Fatal(err)
	}
	if st := gov.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after unlink, want 0", st.Entries)
	}
}

func TestRelinkDropsOldState(t *testing.T) {
	dir := t.TempDir()
	p1 := writeCSV(t, dir, "a.csv", "1,2\n")
	c := New(Options{})
	t1, _ := c.Link("T", p1)
	d := storage.NewDense(schema.Int64, 1)
	d.Ints = append(d.Ints, 1)
	t1.SetDense(0, d)

	p2 := writeCSV(t, dir, "b.csv", "5,6\n")
	t2, err := c.Link("T", p2)
	if err != nil {
		t.Fatal(err)
	}
	if t2 == t1 {
		t.Error("relink should produce a fresh table")
	}
	if t1.Dense(0) != nil {
		t.Error("old table state should be dropped on relink")
	}
	got, _ := c.Get("T")
	if got.Path() != p2 {
		t.Errorf("Get after relink = %s", got.Path())
	}
}

func TestSignFile(t *testing.T) {
	dir := t.TempDir()
	p := writeCSV(t, dir, "x.csv", "hello\n")
	s1, err := SignFile(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := SignFile(p)
	if s1 != s2 {
		t.Error("signature not deterministic")
	}
	time.Sleep(10 * time.Millisecond)
	writeCSV(t, dir, "x.csv", "world\n")
	s3, _ := SignFile(p)
	if s1 == s3 {
		t.Error("changed content should change signature")
	}
	if _, err := SignFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func TestSplitRegistryCreatedWithSplitDir(t *testing.T) {
	dir := t.TempDir()
	p := writeCSV(t, dir, "r.csv", "1,2\n")
	c := New(Options{SplitDir: filepath.Join(dir, "splits")})
	tab, _ := c.Link("R", p)
	if tab.Splits == nil {
		t.Error("SplitDir set but no registry")
	}
	c2 := New(Options{})
	tab2, _ := c2.Link("R", p)
	if tab2.Splits != nil {
		t.Error("registry created without SplitDir")
	}
}
