// Package catalog tracks the raw files linked into the engine and all
// state derived from them: which columns are loaded (fully or partially),
// which value regions the adaptive store covers, positional maps, split
// files, crackers, and the file signatures used to detect edits.
//
// The paper's update policy (§5.4, "one easy solution") is implemented
// verbatim: derived state is auxiliary data "we are not afraid to lose";
// when the raw file changes, everything derived from it is dropped and
// rebuilt on demand. Life-time management (§5.1.3) is a memory budget
// with least-recently-used eviction of whole tables' loaded state — "the
// only cost is that of having to reload this data part if it is needed
// again in the future."
package catalog

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nodb/internal/cracking"
	"nodb/internal/intervals"
	"nodb/internal/metrics"
	"nodb/internal/posmap"
	"nodb/internal/schema"
	"nodb/internal/splitfile"
	"nodb/internal/storage"
)

// Signature fingerprints a raw file cheaply: size, mtime and a CRC of the
// first 4 KiB. Any user edit that changes content near the top, length or
// timestamp invalidates derived state.
type Signature struct {
	Size    int64
	ModTime int64
	Prefix  uint32
}

// SignFile computes the signature of the file at path.
func SignFile(path string) (Signature, error) {
	st, err := os.Stat(path)
	if err != nil {
		return Signature{}, fmt.Errorf("catalog: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return Signature{}, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return Signature{}, fmt.Errorf("catalog: %w", err)
	}
	return Signature{
		Size:    st.Size(),
		ModTime: st.ModTime().UnixNano(),
		Prefix:  crc32.ChecksumIEEE(buf[:n]),
	}, nil
}

// Region records one covered area of the adaptive store for a table: the
// per-column value ranges a past partial load qualified on, and the
// columns whose qualifying values were materialized.
type Region struct {
	// Ranges maps column index → the half-open int64 value range the
	// load's predicates allowed on that column. A column absent from the
	// map was unconstrained (full range).
	Ranges map[int]intervals.Interval
	// Cols are the columns whose values were materialized for qualifying
	// rows, ascending.
	Cols []int
}

// Covers reports whether r fully covers the query region q: every column q
// needs was materialized, and q's allowed ranges are contained in r's on
// every column r constrained. (Conservative: containment is tested against
// single regions, not unions; see DESIGN.md §5.)
func (r Region) Covers(q Region) bool {
	for _, c := range q.Cols {
		if !containsInt(r.Cols, c) {
			return false
		}
	}
	for col, rr := range r.Ranges {
		qr, ok := q.Ranges[col]
		if !ok {
			// q does not constrain col → q needs the full range there.
			return false
		}
		if !rr.ContainsInterval(qr) {
			return false
		}
	}
	return true
}

func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

// ColState is the adaptive-store state of one attribute.
type ColState struct {
	// Dense is non-nil when the column is fully loaded.
	Dense *storage.DenseColumn
	// Sparse holds partially loaded values (Partial Loads V2).
	Sparse *storage.SparseColumn
}

// Table is one linked raw file and everything derived from it.
type Table struct {
	mu sync.RWMutex

	// loadMu serializes loading operations that read-modify-write shared
	// store state (partial-load merges, column loads, cracking). This is
	// the paper's §5.4 scenario — "multiple queries might be asking for
	// the same column at the same time ... have to touch and update the
	// same loaded table" — resolved with a plain per-table lock.
	loadMu sync.Mutex

	name   string
	path   string
	schema *schema.Schema
	sig    Signature

	rows    int64 // -1 until discovered by a scan
	cols    []ColState
	regions []Region
	crack   map[int]*cracking.Cracker
	touches map[int]int // per-column query touch counts (auto policy)

	// PosMap is the positional map for the raw file; Splits the split-file
	// registry. Both survive column eviction but not file invalidation.
	PosMap *posmap.Map
	Splits *splitfile.Registry

	lastUse  atomic.Int64 // catalog clock tick of last touch
	counters *metrics.Counters
}

// LockLoads serializes a loading operation against the table; pair with
// UnlockLoads. Queries that only read immutable dense columns do not need
// it.
func (t *Table) LockLoads() { t.loadMu.Lock() }

// UnlockLoads releases LockLoads.
func (t *Table) UnlockLoads() { t.loadMu.Unlock() }

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Path returns the linked raw file path.
func (t *Table) Path() string { return t.path }

// Schema returns the detected schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// NumRows returns the row count, or -1 when not yet discovered.
func (t *Table) NumRows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// SetNumRows records the row count discovered by a scan.
func (t *Table) SetNumRows(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = n
}

// Dense returns the dense column for col, or nil.
func (t *Table) Dense(col int) *storage.DenseColumn {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[col].Dense
}

// SetDense installs a fully loaded column.
func (t *Table) SetDense(col int, c *storage.DenseColumn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cols[col].Dense = c
	t.cols[col].Sparse = nil // dense supersedes partial state
}

// Sparse returns the sparse column for col, creating it when create is
// true.
func (t *Table) Sparse(col int, create bool) *storage.SparseColumn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols[col].Sparse == nil && create {
		t.cols[col].Sparse = storage.NewSparse(t.schema.Columns[col].Type)
	}
	return t.cols[col].Sparse
}

// DenseAll reports whether every listed column is fully loaded.
func (t *Table) DenseAll(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range cols {
		if t.cols[c].Dense == nil {
			return false
		}
	}
	return true
}

// MissingDense returns the listed columns that are not fully loaded.
func (t *Table) MissingDense(cols []int) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for _, c := range cols {
		if t.cols[c].Dense == nil {
			out = append(out, c)
		}
	}
	return out
}

// Touch records that a query needed the listed columns and returns the
// new touch count of each (aligned with cols). The auto policy uses touch
// counts to decide when a column is hot enough to load fully.
func (t *Table) Touch(cols []int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.touches == nil {
		t.touches = make(map[int]int)
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		t.touches[c]++
		out[i] = t.touches[c]
	}
	return out
}

// TouchCount returns how many queries have needed the column.
func (t *Table) TouchCount(col int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.touches[col]
}

// SparseFraction returns the fraction of the table's rows present in the
// column's sparse store (0 when rows are unknown or the column has no
// sparse data).
func (t *Table) SparseFraction(col int) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sp := t.cols[col].Sparse
	if sp == nil || t.rows <= 0 {
		return 0
	}
	return float64(sp.Len()) / float64(t.rows)
}

// AddRegion records a covered region of the adaptive store.
func (t *Table) AddRegion(r Region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.regions = append(t.regions, r)
}

// CoveredBy returns a recorded region covering q, if any.
func (t *Table) CoveredBy(q Region) (Region, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.regions {
		if r.Covers(q) {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns a copy of the recorded regions.
func (t *Table) Regions() []Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]Region(nil), t.regions...)
}

// Cracker returns the cracker for col, building it from the dense column
// when create is true and the column is loaded (int64 only).
func (t *Table) Cracker(col int, create bool) *cracking.Cracker {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cr, ok := t.crack[col]; ok {
		return cr
	}
	if !create {
		return nil
	}
	d := t.cols[col].Dense
	if d == nil || d.Typ != schema.Int64 {
		return nil
	}
	cr := cracking.New(d.Ints)
	cr.Counters = t.counters
	t.crack[col] = cr
	return cr
}

// MemSize returns approximate heap bytes of all loaded state.
func (t *Table) MemSize() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var sz int64
	for _, cs := range t.cols {
		if cs.Dense != nil {
			sz += cs.Dense.MemSize()
		}
		if cs.Sparse != nil {
			sz += cs.Sparse.MemSize()
		}
	}
	for _, cr := range t.crack {
		sz += cr.MemSize()
	}
	if t.PosMap != nil {
		sz += t.PosMap.MemSize()
	}
	return sz
}

// DropDerived discards all derived state: columns, regions, crackers,
// positional map and split files. The table remains linked.
func (t *Table) DropDerived() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropDerivedLocked()
}

func (t *Table) dropDerivedLocked() {
	for i := range t.cols {
		t.cols[i] = ColState{}
	}
	t.regions = nil
	t.crack = make(map[int]*cracking.Cracker)
	t.touches = nil
	t.rows = -1
	if t.PosMap != nil {
		t.PosMap.Drop()
	}
	if t.Splits != nil {
		t.Splits.Drop()
	}
}

// Revalidate re-checks the raw file's signature; when it changed, all
// derived state is dropped and the schema re-detected. Returns true when
// invalidation happened.
func (t *Table) Revalidate() (bool, error) {
	sig, err := SignFile(t.path)
	if err != nil {
		return false, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sig == t.sig {
		return false, nil
	}
	sch, err := schema.Detect(t.path, schema.DetectOptions{})
	if err != nil {
		return false, fmt.Errorf("catalog: re-detecting schema of %s: %w", t.path, err)
	}
	t.sig = sig
	oldCols := len(t.schema.Columns)
	t.schema = sch
	if len(sch.Columns) != oldCols {
		t.cols = make([]ColState, len(sch.Columns))
	}
	t.dropDerivedLocked()
	return true, nil
}

// Options configures a Catalog.
type Options struct {
	// SplitDir is where split files are written; empty disables split-file
	// creation (Lookup always returns the raw file).
	SplitDir string
	// MemoryBudget caps the bytes of loaded state across all tables; 0
	// means unlimited. Exceeding it triggers LRU eviction of whole
	// tables' derived state on EnforceBudget.
	MemoryBudget int64
	// PosMapBudget caps each table's positional map (0 = default).
	PosMapBudget int64
	// Counters receives work accounting; may be nil.
	Counters *metrics.Counters
}

// Catalog is the set of linked tables. Safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	opts   Options
	clock  atomic.Int64
}

// New returns an empty catalog.
func New(opts Options) *Catalog {
	return &Catalog{tables: make(map[string]*Table), opts: opts}
}

// Link registers a raw file under a table name, detecting its schema. The
// file must exist. Linking an already linked name relinks it (dropping
// derived state).
func (c *Catalog) Link(name, path string) (*Table, error) {
	sch, err := schema.Detect(path, schema.DetectOptions{})
	if err != nil {
		return nil, fmt.Errorf("catalog: linking %s: %w", path, err)
	}
	sig, err := SignFile(path)
	if err != nil {
		return nil, err
	}
	t := &Table{
		name:     name,
		path:     path,
		schema:   sch,
		sig:      sig,
		rows:     -1,
		cols:     make([]ColState, len(sch.Columns)),
		crack:    make(map[int]*cracking.Cracker),
		counters: c.opts.Counters,
		PosMap:   posmap.New(c.opts.PosMapBudget, c.opts.Counters),
	}
	if c.opts.SplitDir != "" {
		dir := filepath.Join(c.opts.SplitDir, sanitizeName(name))
		t.Splits = splitfile.NewRegistry(dir, path, len(sch.Columns), sch.Delimiter, c.opts.Counters)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.tables[lower(name)]; ok {
		old.DropDerived()
	}
	c.tables[lower(name)] = t
	return t, nil
}

// Get returns the linked table by name (case-insensitive).
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[lower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q is not linked", name)
	}
	t.lastUse.Store(c.clock.Add(1))
	return t, nil
}

// Unlink removes a table and drops its derived state.
func (c *Catalog) Unlink(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[lower(name)]
	if !ok {
		return fmt.Errorf("catalog: table %q is not linked", name)
	}
	t.DropDerived()
	delete(c.tables, lower(name))
	return nil
}

// Tables returns the linked table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// DropAll unlinks every table and drops all derived state. Engine close
// uses it to release the adaptive store in one step.
func (c *Catalog) DropAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, t := range c.tables {
		t.DropDerived()
		delete(c.tables, name)
	}
}

// MemSize returns the total bytes of loaded state.
func (c *Catalog) MemSize() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sz int64
	for _, t := range c.tables {
		sz += t.MemSize()
	}
	return sz
}

// EnforceBudget evicts least-recently-used tables' derived state until
// loaded bytes fit the memory budget. It returns the names evicted.
func (c *Catalog) EnforceBudget() []string {
	if c.opts.MemoryBudget <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	var list []*Table
	for _, t := range c.tables {
		total += t.MemSize()
		list = append(list, t)
	}
	if total <= c.opts.MemoryBudget {
		return nil
	}
	sort.Slice(list, func(i, j int) bool { return list[i].lastUse.Load() < list[j].lastUse.Load() })
	var evicted []string
	for _, t := range list {
		if total <= c.opts.MemoryBudget {
			break
		}
		sz := t.MemSize()
		if sz == 0 {
			continue
		}
		t.DropDerived()
		total -= sz
		evicted = append(evicted, t.name)
	}
	return evicted
}

func lower(s string) string { return strings.ToLower(s) }

func sanitizeName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9', ch == '-', ch == '_':
			out = append(out, ch)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
