// Package catalog tracks the raw files linked into the engine and all
// state derived from them: which columns are loaded (fully or partially),
// which value regions the adaptive store covers, positional maps, split
// files, crackers, and the file signatures used to detect edits.
//
// The paper's update policy (§5.4, "one easy solution") is implemented
// verbatim: derived state is auxiliary data "we are not afraid to lose";
// when the raw file changes, everything derived from it is dropped and
// rebuilt on demand. Life-time management (§5.1.3) is delegated to the
// memory governor (internal/govern) when one is configured: every dense
// column, sparse column, positional map and split-file set registers its
// byte footprint and rebuild-cost estimate, and the governor evicts at
// structure granularity — "the only cost is that of having to reload this
// data part if it is needed again in the future." A governor-less catalog
// (ablations, baselines) simply grows unbounded.
package catalog

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nodb/internal/cracking"
	"nodb/internal/govern"
	"nodb/internal/intervals"
	"nodb/internal/metrics"
	"nodb/internal/posmap"
	"nodb/internal/schema"
	"nodb/internal/splitfile"
	"nodb/internal/storage"
)

// Signature fingerprints a raw file cheaply: size, mtime and a CRC of the
// first 4 KiB. Any user edit that changes content near the top, length or
// timestamp invalidates derived state.
type Signature struct {
	Size    int64
	ModTime int64
	Prefix  uint32
}

// SignFile computes the signature of the file at path.
func SignFile(path string) (Signature, error) {
	st, err := os.Stat(path)
	if err != nil {
		return Signature{}, fmt.Errorf("catalog: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return Signature{}, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return Signature{}, fmt.Errorf("catalog: %w", err)
	}
	return Signature{
		Size:    st.Size(),
		ModTime: st.ModTime().UnixNano(),
		Prefix:  crc32.ChecksumIEEE(buf[:n]),
	}, nil
}

// Region records one covered area of the adaptive store for a table: the
// per-column value ranges a past partial load qualified on, and the
// columns whose qualifying values were materialized.
type Region struct {
	// Ranges maps column index → the half-open int64 value range the
	// load's predicates allowed on that column. A column absent from the
	// map was unconstrained (full range).
	Ranges map[int]intervals.Interval
	// Cols are the columns whose values were materialized for qualifying
	// rows, ascending.
	Cols []int
}

// Covers reports whether r fully covers the query region q: every column q
// needs was materialized, and q's allowed ranges are contained in r's on
// every column r constrained. (Conservative: containment is tested against
// single regions, not unions; see DESIGN.md §5.)
func (r Region) Covers(q Region) bool {
	for _, c := range q.Cols {
		if !containsInt(r.Cols, c) {
			return false
		}
	}
	for col, rr := range r.Ranges {
		qr, ok := q.Ranges[col]
		if !ok {
			// q does not constrain col → q needs the full range there.
			return false
		}
		if !rr.ContainsInterval(qr) {
			return false
		}
	}
	return true
}

func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

// ColState is the adaptive-store state of one attribute.
type ColState struct {
	// Dense is non-nil when the column is fully loaded.
	Dense *storage.DenseColumn
	// Sparse holds partially loaded values (Partial Loads V2).
	Sparse *storage.SparseColumn
}

// Table is one linked raw file and everything derived from it.
type Table struct {
	mu sync.RWMutex

	// loadMu serializes loading operations that read-modify-write shared
	// store state (partial-load merges, column loads, cracking). This is
	// the paper's §5.4 scenario — "multiple queries might be asking for
	// the same column at the same time ... have to touch and update the
	// same loaded table" — resolved with a plain per-table lock.
	loadMu sync.Mutex

	name   string
	path   string
	schema *schema.Schema
	sig    Signature

	rows    int64 // -1 until discovered by a scan
	cols    []ColState
	regions []Region
	crack   map[int]*cracking.Cracker
	touches map[int]int // per-column query touch counts (auto policy)

	// PosMap is the positional map for the raw file; Splits the split-file
	// registry. Both survive column eviction but not file invalidation.
	PosMap *posmap.Map
	Splits *splitfile.Registry

	// Memory-governor accounting: one handle per registered adaptive
	// structure. denseH/sparseH are aligned with cols; posmapH and splitsH
	// are persistent (their structures survive eviction, emptied).
	gov      *govern.Governor
	denseH   []*govern.Handle
	sparseH  []*govern.Handle
	posmapH  *govern.Handle
	splitsH  *govern.Handle
	released bool // releaseGoverned ran (table replaced/unlinked): no re-registration

	counters *metrics.Counters
}

// LockLoads serializes a loading operation against the table; pair with
// UnlockLoads. Queries that only read immutable dense columns do not need
// it.
func (t *Table) LockLoads() { t.loadMu.Lock() }

// UnlockLoads releases LockLoads.
func (t *Table) UnlockLoads() { t.loadMu.Unlock() }

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Path returns the linked raw file path.
func (t *Table) Path() string { return t.path }

// Schema returns the detected schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// NumRows returns the row count, or -1 when not yet discovered.
func (t *Table) NumRows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// SetNumRows records the row count discovered by a scan and refreshes the
// rebuild-cost estimates that depend on it.
func (t *Table) SetNumRows(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	known := t.rows > 0
	t.rows = n
	if t.gov != nil && !known && n > 0 {
		t.refreshCostsLocked()
	}
}

// fullPassSecLocked estimates the modeled seconds of one full tokenizing
// pass over the raw file — the unit every rebuild-cost estimate is built
// from. Row count falls back to a bytes-per-row guess before the first
// scan discovers it.
func (t *Table) fullPassSecLocked() float64 {
	m := metrics.DefaultCostModel()
	rows := t.rows
	if rows <= 0 {
		rows = t.sig.Size / 32
		if rows < 1 {
			rows = 1
		}
	}
	ncols := float64(len(t.schema.Columns))
	return float64(t.sig.Size)/m.RawReadBps +
		float64(rows)*(m.TokenizeRowSec+ncols*m.TokenizeAttrSec+m.ParseValueSec)
}

// denseRebuildCostLocked estimates re-loading one evicted dense column: a
// full tokenizing pass normally, an order of magnitude cheaper when the
// positional map knows where every value lives (the paper's point — cached
// columns are cheap to lose precisely because the map survives them).
func (t *Table) denseRebuildCostLocked(col int) float64 {
	full := t.fullPassSecLocked()
	if t.PosMap != nil && t.rows > 0 && t.PosMap.Covers(col, 0, t.rows) {
		return full / 8
	}
	return full
}

// refreshCostsLocked re-estimates every registered structure's rebuild
// cost after the row count (or coverage) changed. The positional map is
// the expensive one: it accumulated over many query passes, and recovering
// it means re-tokenizing everything those passes touched.
func (t *Table) refreshCostsLocked() {
	full := t.fullPassSecLocked()
	for c, h := range t.denseH {
		if h != nil {
			h.SetCost(t.denseRebuildCostLocked(c))
		}
	}
	for _, h := range t.sparseH {
		if h != nil {
			h.SetCost(full)
		}
	}
	if t.posmapH != nil {
		t.posmapH.SetCost(4 * full)
	}
	if t.splitsH != nil {
		// Rebuilding split files is one pass plus writing the data back out.
		t.splitsH.SetCost(2 * full)
	}
}

// Dense returns the dense column for col, or nil.
func (t *Table) Dense(col int) *storage.DenseColumn {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[col].Dense
}

// SetDense installs a fully loaded column.
func (t *Table) SetDense(col int, c *storage.DenseColumn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cols[col].Dense = c
	t.cols[col].Sparse = nil // dense supersedes partial state
	if t.gov == nil || t.released {
		// A released table (replaced or unlinked mid-query) must not
		// re-enter the governor registry: the orphan and its data are
		// garbage once the in-flight query finishes.
		return
	}
	t.sparseH[col].Release()
	t.sparseH[col] = nil
	t.denseH[col].Release() // re-load replaces the old registration
	var h *govern.Handle
	h = t.gov.Register(govern.KindColumn, fmt.Sprintf("%s.c%d", t.name, col), func() bool { return t.evictDense(col, h) })
	h.SetBytes(c.MemSize())
	h.SetCost(t.denseRebuildCostLocked(col))
	t.denseH[col] = h
}

// evictDense is the governor's victim callback for a dense column: drop
// the column (and any cracker built over it) and release its handle. The
// next query that needs the column re-loads it from the raw file. The
// pin re-check happens under t.mu, which excludes Table.Pin, so a pinned
// column is vetoed rather than freed mid-scan. h is the handle the
// eviction was chosen for: the identity check vetoes a stale eviction
// racing a Revalidate that replaced (or shrank) the handle arrays.
func (t *Table) evictDense(col int, h *govern.Handle) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if col >= len(t.denseH) || t.denseH[col] != h || h.Pinned() || t.cols[col].Dense == nil {
		return false
	}
	t.cols[col].Dense = nil
	delete(t.crack, col)
	// Dense may have been backing coverage regions (it supersedes sparse
	// state); a region whose column lost its data must not survive it.
	if t.cols[col].Sparse == nil {
		kept := t.regions[:0]
		for _, r := range t.regions {
			if !containsInt(r.Cols, col) {
				kept = append(kept, r)
			}
		}
		t.regions = kept
	}
	t.denseH[col].Release()
	t.denseH[col] = nil
	return true
}

// evictSparse is the victim callback for a retained partial-load column:
// drop the sparse values and every covered region that promised them, so
// coverage never outlives its backing data.
func (t *Table) evictSparse(col int, h *govern.Handle) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if col >= len(t.sparseH) || t.sparseH[col] != h || h.Pinned() || t.cols[col].Sparse == nil {
		return false
	}
	t.cols[col].Sparse = nil
	kept := t.regions[:0]
	for _, r := range t.regions {
		if !containsInt(r.Cols, col) {
			kept = append(kept, r)
		}
	}
	t.regions = kept
	t.sparseH[col].Release()
	t.sparseH[col] = nil
	return true
}

// evictPosMap and evictSplits drop the persistent containers' contents
// (the containers themselves survive, empty, and keep accounting). Both
// run entirely under t.mu: releasing it between the pin check and the
// drop would let a just-pinned query lose its split files from under it.
// Table.Pin takes t.mu too, so pin-then-read is ordered against this.
func (t *Table) evictPosMap(h *govern.Handle) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.posmapH != h || h.Pinned() {
		return false
	}
	t.PosMap.Drop()
	return true
}

func (t *Table) evictSplits(h *govern.Handle) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.splitsH != h || h.Pinned() {
		return false
	}
	t.Splits.Drop()
	return true
}

// MergeSparse folds qualifying (row, value) pairs of one scanned column
// into the sparse store and refreshes the governor accounting, all under
// the table lock — concurrent readers (SparseFraction, MemSize,
// TableStats) never observe a half-grown column. val(i) returns the value
// for rowIDs[i]. Returns the bytes stored (0 when dense supersedes). The
// caller holds the table's load lock, which serializes merges.
func (t *Table) MergeSparse(col int, rowIDs []int64, val func(i int) storage.Value) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols[col].Dense != nil {
		return 0
	}
	sp := t.cols[col].Sparse
	if sp == nil {
		sp = storage.NewSparse(t.schema.Columns[col].Type)
		t.cols[col].Sparse = sp
	}
	var stored int64
	for i, row := range rowIDs {
		v := val(i)
		sp.Add(row, v)
		stored += v.MemBytes() + 8
	}
	if t.gov == nil || t.released {
		return stored
	}
	if t.sparseH[col] == nil {
		var h *govern.Handle
		h = t.gov.Register(govern.KindSparse, fmt.Sprintf("%s.s%d", t.name, col), func() bool { return t.evictSparse(col, h) })
		t.sparseH[col] = h
	}
	t.sparseH[col].SetBytes(sp.MemSize())
	t.sparseH[col].SetCost(t.fullPassSecLocked())
	t.sparseH[col].Touch()
	return stored
}

// StoreBacked reports whether every listed column still has data in the
// adaptive store (dense or sparse). Coverage regions can transiently
// outlive an eviction that raced a concurrent load; callers treat an
// unbacked coverage claim as a cache miss.
func (t *Table) StoreBacked(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range cols {
		if t.cols[c].Dense == nil && t.cols[c].Sparse == nil {
			return false
		}
	}
	return true
}

// Pin marks the adaptive structures a query is about to read — the listed
// columns' dense/sparse state plus the positional map and split files — as
// in-use, so the governor does not evict them mid-scan. The returned
// function releases the pins; it must be called exactly once.
func (t *Table) Pin(cols []int) (unpin func()) {
	if t.gov == nil {
		return func() {}
	}
	t.mu.RLock()
	var hs []*govern.Handle
	add := func(h *govern.Handle) {
		if h != nil {
			h.Pin()
			hs = append(hs, h)
		}
	}
	for _, c := range cols {
		if c >= 0 && c < len(t.denseH) {
			add(t.denseH[c])
			add(t.sparseH[c])
		}
	}
	add(t.posmapH)
	add(t.splitsH)
	t.mu.RUnlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, h := range hs {
				h.Unpin()
			}
		})
	}
}

// Sparse returns the sparse column for col, creating it when create is
// true.
func (t *Table) Sparse(col int, create bool) *storage.SparseColumn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols[col].Sparse == nil && create {
		t.cols[col].Sparse = storage.NewSparse(t.schema.Columns[col].Type)
	}
	return t.cols[col].Sparse
}

// DenseAll reports whether every listed column is fully loaded.
func (t *Table) DenseAll(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range cols {
		if t.cols[c].Dense == nil {
			return false
		}
	}
	return true
}

// MissingDense returns the listed columns that are not fully loaded.
func (t *Table) MissingDense(cols []int) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for _, c := range cols {
		if t.cols[c].Dense == nil {
			out = append(out, c)
		}
	}
	return out
}

// Touch records that a query needed the listed columns and returns the
// new touch count of each (aligned with cols). The auto policy uses touch
// counts to decide when a column is hot enough to load fully.
func (t *Table) Touch(cols []int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.touches == nil {
		t.touches = make(map[int]int)
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		t.touches[c]++
		out[i] = t.touches[c]
	}
	return out
}

// TouchCount returns how many queries have needed the column.
func (t *Table) TouchCount(col int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.touches[col]
}

// SparseFraction returns the fraction of the table's rows present in the
// column's sparse store (0 when rows are unknown or the column has no
// sparse data).
func (t *Table) SparseFraction(col int) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sp := t.cols[col].Sparse
	if sp == nil || t.rows <= 0 {
		return 0
	}
	return float64(sp.Len()) / float64(t.rows)
}

// AddRegion records a covered region of the adaptive store.
func (t *Table) AddRegion(r Region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Record coverage only while every covered column still has backing
	// data. A governor eviction can land between the loader's merge and
	// this call; without the check the region would outlive its data, and
	// a later partial re-merge would make the stale claim look backed —
	// serving incomplete results. (Evictions prune regions under this
	// same lock, so region-exists ⟹ backing-exists is an invariant.)
	for _, c := range r.Cols {
		if t.cols[c].Dense == nil && t.cols[c].Sparse == nil {
			return
		}
	}
	t.regions = append(t.regions, r)
}

// CoveredBy returns a recorded region covering q, if any.
func (t *Table) CoveredBy(q Region) (Region, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.regions {
		if r.Covers(q) {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns a copy of the recorded regions.
func (t *Table) Regions() []Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]Region(nil), t.regions...)
}

// Cracker returns the cracker for col, building it from the dense column
// when create is true and the column is loaded (int64 only).
func (t *Table) Cracker(col int, create bool) *cracking.Cracker {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cr, ok := t.crack[col]; ok {
		return cr
	}
	if !create {
		return nil
	}
	d := t.cols[col].Dense
	if d == nil || d.Typ != schema.Int64 {
		return nil
	}
	cr := cracking.New(d.Ints)
	cr.Counters = t.counters
	t.crack[col] = cr
	if t.gov != nil && t.denseH[col] != nil {
		// The cracker rides on the dense column's registration: evicting
		// the column drops both.
		t.denseH[col].AddBytes(cr.MemSize())
	}
	return cr
}

// MemSize returns approximate heap bytes of all loaded state.
func (t *Table) MemSize() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var sz int64
	for _, cs := range t.cols {
		if cs.Dense != nil {
			sz += cs.Dense.MemSize()
		}
		if cs.Sparse != nil {
			sz += cs.Sparse.MemSize()
		}
	}
	for _, cr := range t.crack {
		sz += cr.MemSize()
	}
	if t.PosMap != nil {
		sz += t.PosMap.MemSize()
	}
	return sz
}

// DropDerived discards all derived state: columns, regions, crackers,
// positional map and split files. The table remains linked.
func (t *Table) DropDerived() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropDerivedLocked()
}

func (t *Table) dropDerivedLocked() {
	for i := range t.cols {
		t.cols[i] = ColState{}
	}
	t.regions = nil
	t.crack = make(map[int]*cracking.Cracker)
	t.touches = nil
	t.rows = -1
	for i := range t.denseH {
		t.denseH[i].Release()
		t.denseH[i] = nil
	}
	for i := range t.sparseH {
		t.sparseH[i].Release()
		t.sparseH[i] = nil
	}
	if t.PosMap != nil {
		t.PosMap.Drop() // zeroes its governor handle via the accountant
	}
	if t.Splits != nil {
		t.Splits.Drop()
	}
}

// releaseGoverned unregisters every governor handle, including the
// persistent positional-map and split-file ones. Used when the table
// itself goes away (unlink, engine close).
func (t *Table) releaseGoverned() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.released = true
	for i := range t.denseH {
		t.denseH[i].Release()
		t.denseH[i] = nil
	}
	for i := range t.sparseH {
		t.sparseH[i].Release()
		t.sparseH[i] = nil
	}
	t.posmapH.Release()
	t.splitsH.Release()
	t.posmapH, t.splitsH = nil, nil
	if t.PosMap != nil {
		t.PosMap.SetAccountant(nil)
	}
	if t.Splits != nil {
		t.Splits.SetAccountant(nil)
	}
}

// Revalidate re-checks the raw file's signature; when it changed, all
// derived state is dropped and the schema re-detected. Returns true when
// invalidation happened.
func (t *Table) Revalidate() (bool, error) {
	sig, err := SignFile(t.path)
	if err != nil {
		return false, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sig == t.sig {
		return false, nil
	}
	sch, err := schema.Detect(t.path, schema.DetectOptions{})
	if err != nil {
		return false, fmt.Errorf("catalog: re-detecting schema of %s: %w", t.path, err)
	}
	t.sig = sig
	oldCols := len(t.schema.Columns)
	t.schema = sch
	t.dropDerivedLocked()
	if len(sch.Columns) != oldCols {
		t.cols = make([]ColState, len(sch.Columns))
		if t.gov != nil {
			t.denseH = make([]*govern.Handle, len(sch.Columns))
			t.sparseH = make([]*govern.Handle, len(sch.Columns))
		}
	}
	if t.gov != nil {
		t.refreshCostsLocked()
	}
	return true, nil
}

// Options configures a Catalog.
type Options struct {
	// SplitDir is where split files are written; empty disables split-file
	// creation (Lookup always returns the raw file).
	SplitDir string
	// PosMapBudget caps each table's positional map (0 = default).
	PosMapBudget int64
	// Governor, when non-nil, receives a registration for every adaptive
	// structure (dense columns, sparse columns, positional maps, split
	// files) so a global byte budget can be enforced with structure-level
	// cost-aware eviction.
	Governor *govern.Governor
	// Counters receives work accounting; may be nil.
	Counters *metrics.Counters
}

// Catalog is the set of linked tables. Safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	opts   Options
}

// New returns an empty catalog.
func New(opts Options) *Catalog {
	return &Catalog{tables: make(map[string]*Table), opts: opts}
}

// Link registers a raw file under a table name, detecting its schema. The
// file must exist. Linking an already linked name relinks it (dropping
// derived state).
func (c *Catalog) Link(name, path string) (*Table, error) {
	sch, err := schema.Detect(path, schema.DetectOptions{})
	if err != nil {
		return nil, fmt.Errorf("catalog: linking %s: %w", path, err)
	}
	sig, err := SignFile(path)
	if err != nil {
		return nil, err
	}
	t := &Table{
		name:     name,
		path:     path,
		schema:   sch,
		sig:      sig,
		rows:     -1,
		cols:     make([]ColState, len(sch.Columns)),
		crack:    make(map[int]*cracking.Cracker),
		counters: c.opts.Counters,
		gov:      c.opts.Governor,
		PosMap:   posmap.New(c.opts.PosMapBudget, c.opts.Counters),
	}
	if c.opts.SplitDir != "" {
		dir := filepath.Join(c.opts.SplitDir, sanitizeName(name))
		t.Splits = splitfile.NewRegistry(dir, path, len(sch.Columns), sch.Delimiter, c.opts.Counters)
	}
	t.initGoverned()
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.tables[lower(name)]; ok {
		old.DropDerived()
		old.releaseGoverned()
	}
	c.tables[lower(name)] = t
	return t, nil
}

// initGoverned registers the table's persistent structures with the
// governor and sizes the handle arrays for the current schema.
func (t *Table) initGoverned() {
	if t.gov == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.initGovernedLocked()
}

func (t *Table) initGovernedLocked() {
	t.denseH = make([]*govern.Handle, len(t.schema.Columns))
	t.sparseH = make([]*govern.Handle, len(t.schema.Columns))
	var pmH *govern.Handle
	pmH = t.gov.Register(govern.KindPosMap, t.name+".posmap", func() bool { return t.evictPosMap(pmH) })
	t.posmapH = pmH
	t.PosMap.SetAccountant(t.posmapH)
	if t.Splits != nil {
		var spH *govern.Handle
		spH = t.gov.Register(govern.KindSplit, t.name+".splits", func() bool { return t.evictSplits(spH) })
		t.splitsH = spH
		t.Splits.SetAccountant(t.splitsH)
	}
	t.refreshCostsLocked()
}

// Get returns the linked table by name (case-insensitive).
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[lower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q is not linked", name)
	}
	return t, nil
}

// Unlink removes a table and drops its derived state.
func (c *Catalog) Unlink(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[lower(name)]
	if !ok {
		return fmt.Errorf("catalog: table %q is not linked", name)
	}
	t.DropDerived()
	t.releaseGoverned()
	delete(c.tables, lower(name))
	return nil
}

// Tables returns the linked table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// DropAll unlinks every table and drops all derived state. Engine close
// uses it to release the adaptive store in one step.
func (c *Catalog) DropAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, t := range c.tables {
		t.DropDerived()
		t.releaseGoverned()
		delete(c.tables, name)
	}
}

// MemSize returns the total bytes of loaded state.
func (c *Catalog) MemSize() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sz int64
	for _, t := range c.tables {
		sz += t.MemSize()
	}
	return sz
}

func lower(s string) string { return strings.ToLower(s) }

func sanitizeName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9', ch == '-', ch == '_':
			out = append(out, ch)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
