// Package catalog tracks the raw files linked into the engine and all
// state derived from them: which columns are loaded (fully or partially),
// which value regions the adaptive store covers, positional maps, split
// files, crackers, and the file signatures used to detect edits.
//
// The paper's update policy (§5.4, "one easy solution") is implemented
// verbatim: derived state is auxiliary data "we are not afraid to lose";
// when the raw file changes, everything derived from it is dropped and
// rebuilt on demand. Life-time management (§5.1.3) is delegated to the
// memory governor (internal/govern) when one is configured: every dense
// column, sparse column, positional map and split-file set registers its
// byte footprint and rebuild-cost estimate, and the governor evicts at
// structure granularity — "the only cost is that of having to reload this
// data part if it is needed again in the future." A governor-less catalog
// (ablations, baselines) simply grows unbounded.
//
// With a snapshot store configured (internal/snapshot), the catalog also
// manages the disk tier: each table serializes its auxiliary structures
// on SaveSnapshot, restores them lazily via Prepare on the first query
// that wants them, and the governor's evictions spill the expensive
// structures (positional maps, split files) to disk instead of
// discarding them outright — reload cost becomes a deserialize.
package catalog

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nodb/internal/cracking"
	"nodb/internal/errs"
	"nodb/internal/govern"
	"nodb/internal/intervals"
	"nodb/internal/metrics"
	"nodb/internal/posmap"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/snapshot"
	"nodb/internal/splitfile"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
	"nodb/internal/vfs"
)

// Signature fingerprints a raw file cheaply: size, mtime, a CRC of the
// first 4 KiB and a CRC of the last 4 KiB. Any user edit that changes
// content near the top or the bottom, length or timestamp invalidates
// derived state. The tail CRC additionally closes the hole where a
// same-size rewrite past the prefix went unnoticed until the next mtime
// check, and — re-read at the old length — certifies prefix-stable
// growth (appends), which extends derived state instead of dropping it.
type Signature struct {
	Size    int64
	ModTime int64
	Prefix  uint32
	// Tail is the CRC of the last min(4 KiB, Size) bytes.
	Tail uint32
}

// sigProbeLen is how many bytes each signature CRC covers.
const sigProbeLen = 4096

// SignFile computes the signature of the file at path.
func SignFile(path string) (Signature, error) {
	return SignFileFS(nil, path)
}

// SignFileFS is SignFile through an explicit filesystem.
func SignFileFS(fsys vfs.FS, path string) (Signature, error) {
	st, err := vfs.Default(fsys).Stat(path)
	if err != nil {
		return Signature{}, errs.Wrap(errs.ErrRawIO, "catalog sign", path, err)
	}
	f, err := vfs.Default(fsys).Open(path)
	if err != nil {
		return Signature{}, errs.Wrap(errs.ErrRawIO, "catalog sign", path, err)
	}
	defer f.Close()
	size := st.Size()
	pEnd := int64(sigProbeLen)
	if size < pEnd {
		pEnd = size
	}
	prefix, err := crcRange(f, 0, pEnd)
	if err != nil {
		return Signature{}, errs.Wrap(errs.ErrRawIO, "catalog sign", path, err)
	}
	tStart := size - sigProbeLen
	if tStart < 0 {
		tStart = 0
	}
	tail, err := crcRange(f, tStart, size)
	if err != nil {
		return Signature{}, errs.Wrap(errs.ErrRawIO, "catalog sign", path, err)
	}
	return Signature{
		Size:    size,
		ModTime: st.ModTime().UnixNano(),
		Prefix:  prefix,
		Tail:    tail,
	}, nil
}

// crcRange CRCs the bytes [off, end) of f. A file shrunk concurrently
// yields a CRC over the shorter read — a signature that matches nothing,
// which is the right failure mode.
func crcRange(f vfs.File, off, end int64) (uint32, error) {
	if end <= off {
		return crc32.ChecksumIEEE(nil), nil
	}
	buf := make([]byte, end-off)
	n, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return 0, err
	}
	return crc32.ChecksumIEEE(buf[:n]), nil
}

// GrownFrom reports whether the file at path is a prefix-stable growth of
// the version old describes: strictly larger, byte-identical over old's
// signed prefix and tail ranges, and with old's content ending in a
// newline, so the appended bytes start on a fresh row boundary. ModTime
// is deliberately ignored — an append always bumps it.
func GrownFrom(path string, old Signature) (bool, error) {
	return GrownFromFS(nil, path, old)
}

// GrownFromFS is GrownFrom through an explicit filesystem.
func GrownFromFS(fsys vfs.FS, path string, old Signature) (bool, error) {
	if old.Size <= 0 {
		return false, nil
	}
	st, err := vfs.Default(fsys).Stat(path)
	if err != nil {
		return false, errs.Wrap(errs.ErrRawIO, "catalog grown", path, err)
	}
	if st.Size() <= old.Size {
		return false, nil
	}
	f, err := vfs.Default(fsys).Open(path)
	if err != nil {
		return false, errs.Wrap(errs.ErrRawIO, "catalog grown", path, err)
	}
	defer f.Close()
	pEnd := int64(sigProbeLen)
	if old.Size < pEnd {
		pEnd = old.Size
	}
	if crc, err := crcRange(f, 0, pEnd); err != nil || crc != old.Prefix {
		return false, errs.Wrap(errs.ErrRawIO, "catalog grown", path, err)
	}
	tStart := old.Size - sigProbeLen
	if tStart < 0 {
		tStart = 0
	}
	if crc, err := crcRange(f, tStart, old.Size); err != nil || crc != old.Tail {
		return false, errs.Wrap(errs.ErrRawIO, "catalog grown", path, err)
	}
	var last [1]byte
	if _, err := f.ReadAt(last[:], old.Size-1); err != nil {
		return false, nil
	}
	return last[0] == '\n', nil
}

// Region records one covered area of the adaptive store for a table: the
// per-column value ranges a past partial load qualified on, and the
// columns whose qualifying values were materialized.
type Region struct {
	// Ranges maps column index → the half-open int64 value range the
	// load's predicates allowed on that column. A column absent from the
	// map was unconstrained (full range).
	Ranges map[int]intervals.Interval
	// Cols are the columns whose values were materialized for qualifying
	// rows, ascending.
	Cols []int
}

// Covers reports whether r fully covers the query region q: every column q
// needs was materialized, and q's allowed ranges are contained in r's on
// every column r constrained. (Conservative: containment is tested against
// single regions, not unions; see DESIGN.md §5.)
func (r Region) Covers(q Region) bool {
	for _, c := range q.Cols {
		if !containsInt(r.Cols, c) {
			return false
		}
	}
	for col, rr := range r.Ranges {
		qr, ok := q.Ranges[col]
		if !ok {
			// q does not constrain col → q needs the full range there.
			return false
		}
		if !rr.ContainsInterval(qr) {
			return false
		}
	}
	return true
}

func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

// ColState is the adaptive-store state of one attribute.
type ColState struct {
	// Dense is non-nil when the column is fully loaded.
	Dense *storage.DenseColumn
	// Sparse holds partially loaded values (Partial Loads V2).
	Sparse *storage.SparseColumn
}

// Table is one linked raw file and everything derived from it.
type Table struct {
	mu sync.RWMutex

	// loadMu serializes loading operations that read-modify-write shared
	// store state (partial-load merges, column loads, cracking). This is
	// the paper's §5.4 scenario — "multiple queries might be asking for
	// the same column at the same time ... have to touch and update the
	// same loaded table" — resolved with a plain per-table lock.
	loadMu sync.Mutex

	name   string
	path   string
	schema *schema.Schema
	sig    Signature
	detect schema.DetectOptions // options the schema was detected with (Refresh re-uses them)
	fs     vfs.FS               // filesystem for raw-file access; nil = real disk

	// Ingest counters (guarded by mu): appended rows/bytes folded in by
	// incremental tail extensions, how many extensions ran, and when the
	// last one finished (unix nanos).
	appendedRows  int64
	appendedBytes int64
	refreshes     int64
	lastRefresh   int64

	rows    int64 // -1 until discovered by a scan
	cols    []ColState
	regions []Region
	crack   map[int]*cracking.Cracker
	touches map[int]int // per-column query touch counts (auto policy)

	// PosMap is the positional map for the raw file; Splits the split-file
	// registry; Syn the per-portion scan synopsis (zone maps + learned
	// portion layout). All survive column eviction but not file
	// invalidation.
	PosMap *posmap.Map
	Splits *splitfile.Registry
	Syn    *synopsis.Synopsis

	// Memory-governor accounting: one handle per registered adaptive
	// structure. denseH/sparseH are aligned with cols; posmapH, splitsH
	// and synH are persistent (their structures survive eviction, emptied).
	gov      *govern.Governor
	denseH   []*govern.Handle
	sparseH  []*govern.Handle
	posmapH  *govern.Handle
	splitsH  *govern.Handle
	synH     *govern.Handle
	released bool // releaseGoverned ran (table replaced/unlinked): no re-registration

	counters *metrics.Counters

	// Disk cache tier (nil when no cache dir is configured). snapMu
	// serializes snapshot I/O (restore, save) and is always acquired
	// BEFORE mu; eviction callbacks, which hold mu, only touch the spill
	// flags and write spill files — never the reader.
	snap    *snapshot.Store
	snapKey string

	snapMu         sync.Mutex
	snapInit       bool             // first Prepare ran (guarded by snapMu)
	snapReader     *snapshot.Reader // guarded by snapMu
	posMapRestored bool             // guarded by snapMu
	lastSaveFP     string           // fingerprint of the last saved state (guarded by snapMu)
	pendingExtend  *Signature       // snapshot restored from this older prefix; tail extension due (guarded by snapMu)

	// snapPending is the lock-free fast path: false means Prepare has
	// nothing to do (no snapshot sections left, no spills outstanding).
	snapPending atomic.Bool

	// snapDenseBytes maps column → on-disk payload size of its restorable
	// dense section; the cost model prices re-admission with it. Guarded
	// by mu. spillPM/spillSplits flag spill files written by eviction.
	snapDenseBytes map[int]int64
	spillPM        bool
	spillSplits    bool
}

// LockLoads serializes a loading operation against the table; pair with
// UnlockLoads. Queries that only read immutable dense columns do not need
// it.
func (t *Table) LockLoads() { t.loadMu.Lock() }

// UnlockLoads releases LockLoads.
func (t *Table) UnlockLoads() { t.loadMu.Unlock() }

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Path returns the linked raw file path.
func (t *Table) Path() string { return t.path }

// Schema returns the detected schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// Signature returns the raw file's signature as of the last
// (re)validation. Cluster synopsis exports carry it so a coordinator can
// tell stale cached state from live state.
func (t *Table) Signature() Signature {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sig
}

// NumRows returns the row count, or -1 when not yet discovered.
func (t *Table) NumRows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// SetNumRows records the row count discovered by a scan and refreshes the
// rebuild-cost estimates that depend on it.
func (t *Table) SetNumRows(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	known := t.rows > 0
	t.rows = n
	if t.gov != nil && !known && n > 0 {
		t.refreshCostsLocked()
	}
}

// fullPassSecLocked estimates the modeled seconds of one full tokenizing
// pass over the raw file — the unit every rebuild-cost estimate is built
// from. Row count falls back to a bytes-per-row guess before the first
// scan discovers it.
func (t *Table) fullPassSecLocked() float64 {
	m := metrics.DefaultCostModel()
	rows := t.rows
	if rows <= 0 {
		rows = t.sig.Size / 32
		if rows < 1 {
			rows = 1
		}
	}
	ncols := float64(len(t.schema.Columns))
	return float64(t.sig.Size)/m.RawReadBps +
		float64(rows)*(m.TokenizeRowSec+ncols*m.TokenizeAttrSec+m.ParseValueSec)
}

// denseRebuildCostLocked estimates re-loading one evicted dense column: a
// full tokenizing pass normally, an order of magnitude cheaper when the
// positional map knows where every value lives (the paper's point — cached
// columns are cheap to lose precisely because the map survives them), and
// cheaper still — a straight deserialize — when the snapshot cache holds a
// valid copy of the column on disk.
func (t *Table) denseRebuildCostLocked(col int) float64 {
	if b, ok := t.snapDenseBytes[col]; ok && b > 0 {
		m := metrics.DefaultCostModel()
		return float64(b) / m.SnapshotReadBps
	}
	full := t.fullPassSecLocked()
	if t.PosMap != nil && t.rows > 0 && t.PosMap.Covers(col, 0, t.rows) {
		return full / 8
	}
	return full
}

// spillRoundTripSec prices evicting a structure through the disk cache
// tier: one sequential write now plus one sequential read at re-admission.
func spillRoundTripSec(bytes int64) float64 {
	m := metrics.DefaultCostModel()
	return float64(bytes)/m.SnapshotWriteBps + float64(bytes)/m.SnapshotReadBps
}

// refreshCostsLocked re-estimates every registered structure's rebuild
// cost after the row count (or coverage) changed. Without a disk tier the
// positional map is the expensive one: it accumulated over many query
// passes, and recovering it means re-tokenizing everything those passes
// touched. With a cache dir configured, eviction *spills* instead of
// discarding, so the same structures are priced at a serialize/deserialize
// round trip — the governor then happily trades them out under pressure.
func (t *Table) refreshCostsLocked() {
	full := t.fullPassSecLocked()
	for c, h := range t.denseH {
		if h != nil {
			h.SetCost(t.denseRebuildCostLocked(c))
		}
	}
	for _, h := range t.sparseH {
		if h != nil {
			h.SetCost(full)
		}
	}
	if t.posmapH != nil {
		if t.snap != nil {
			t.posmapH.SetCost(spillRoundTripSec(t.PosMap.MemSize()))
		} else {
			t.posmapH.SetCost(4 * full)
		}
	}
	if t.splitsH != nil {
		if t.snap != nil {
			// Spilling split files is a handful of renames.
			t.splitsH.SetCost(0.002 * float64(1+len(t.Splits.Paths())))
		} else {
			// Rebuilding split files is one pass plus writing the data
			// back out.
			t.splitsH.SetCost(2 * full)
		}
	}
	if t.synH != nil {
		// The synopsis rebuilds itself as a free byproduct of the next
		// tokenizing pass; it is priced far below everything else so the
		// governor reclaims it first under pressure.
		t.synH.SetCost(full / 64)
	}
}

// Dense returns the dense column for col, or nil.
func (t *Table) Dense(col int) *storage.DenseColumn {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[col].Dense
}

// SetDense installs a fully loaded column.
func (t *Table) SetDense(col int, c *storage.DenseColumn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cols[col].Dense = c
	t.cols[col].Sparse = nil // dense supersedes partial state
	if t.gov == nil || t.released {
		// A released table (replaced or unlinked mid-query) must not
		// re-enter the governor registry: the orphan and its data are
		// garbage once the in-flight query finishes.
		return
	}
	t.sparseH[col].Release()
	t.sparseH[col] = nil
	t.denseH[col].Release() // re-load replaces the old registration
	var h *govern.Handle
	h = t.gov.Register(govern.KindColumn, fmt.Sprintf("%s.c%d", t.name, col), func() bool { return t.evictDense(col, h) })
	h.SetBytes(c.MemSize())
	h.SetCost(t.denseRebuildCostLocked(col))
	t.denseH[col] = h
}

// evictDense is the governor's victim callback for a dense column: drop
// the column (and any cracker built over it) and release its handle. The
// next query that needs the column re-loads it from the raw file. The
// pin re-check happens under t.mu, which excludes Table.Pin, so a pinned
// column is vetoed rather than freed mid-scan. h is the handle the
// eviction was chosen for: the identity check vetoes a stale eviction
// racing a Revalidate that replaced (or shrank) the handle arrays.
func (t *Table) evictDense(col int, h *govern.Handle) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if col >= len(t.denseH) || t.denseH[col] != h || h.Pinned() || t.cols[col].Dense == nil {
		return false
	}
	t.cols[col].Dense = nil
	delete(t.crack, col)
	// Dense may have been backing coverage regions (it supersedes sparse
	// state); a region whose column lost its data must not survive it.
	if t.cols[col].Sparse == nil {
		kept := t.regions[:0]
		for _, r := range t.regions {
			if !containsInt(r.Cols, col) {
				kept = append(kept, r)
			}
		}
		t.regions = kept
	}
	t.denseH[col].Release()
	t.denseH[col] = nil
	return true
}

// evictSparse is the victim callback for a retained partial-load column:
// drop the sparse values and every covered region that promised them, so
// coverage never outlives its backing data.
func (t *Table) evictSparse(col int, h *govern.Handle) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if col >= len(t.sparseH) || t.sparseH[col] != h || h.Pinned() || t.cols[col].Sparse == nil {
		return false
	}
	t.cols[col].Sparse = nil
	kept := t.regions[:0]
	for _, r := range t.regions {
		if !containsInt(r.Cols, col) {
			kept = append(kept, r)
		}
	}
	t.regions = kept
	t.sparseH[col].Release()
	t.sparseH[col] = nil
	return true
}

// evictPosMap and evictSplits drop the persistent containers' contents
// (the containers themselves survive, empty, and keep accounting). Both
// run entirely under t.mu: releasing it between the pin check and the
// drop would let a just-pinned query lose its split files from under it.
// Table.Pin takes t.mu too, so pin-then-read is ordered against this.
//
// With a snapshot store configured, eviction spills instead of
// discarding: the positional map is serialized to a spill file (it took
// many query passes to learn; re-admitting it is a deserialize, not a
// re-learn) and split files are moved into the cache directory. The next
// query that would profit re-admits them via Prepare. A failed spill
// degrades to the plain drop — losing auxiliary state is always safe.
func (t *Table) evictPosMap(h *govern.Handle) bool {
	t.mu.Lock()
	if t.posmapH != h || h.Pinned() {
		t.mu.Unlock()
		return false
	}
	// Capture the sections (a copy) and drop under the lock; the spill
	// file is written after release so a large map's serialization never
	// stalls queries on the table. A failed write degrades to the plain
	// eviction that already happened — losing auxiliary state is safe.
	var tbl *snapshot.Table
	var sig Signature
	if t.snap != nil && t.PosMap.MemSize() > 0 {
		tbl = &snapshot.Table{Rows: t.rows, PosMap: posmapSections(t.PosMap)}
		sig = t.sig
	}
	t.PosMap.Drop()
	t.mu.Unlock()
	if tbl != nil {
		if err := t.snap.SaveSpill(t.snapKey, "posmap", snapSig(sig), tbl); err == nil {
			t.mu.Lock()
			t.spillPM = true
			t.snapPending.Store(true)
			t.mu.Unlock()
		}
	}
	return true
}

// evictSynopsis drops the synopsis' contents (the container survives,
// empty, like the positional map). No spill tier: the synopsis is tiny and
// rebuilds for free on the next pass, so serializing it out of band is not
// worth a file.
func (t *Table) evictSynopsis(h *govern.Handle) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.synH != h || h.Pinned() {
		return false
	}
	t.Syn.Drop()
	return true
}

func (t *Table) evictSplits(h *govern.Handle) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.splitsH != h || h.Pinned() {
		return false
	}
	if t.snap != nil {
		m, moved, err := t.Splits.SpillTo(t.snap.SplitSpillDir(t.snapKey))
		if err == nil && moved > 0 {
			tbl := &snapshot.Table{Rows: t.rows, Splits: manifestToSnapshot(m)}
			if err := t.snap.SaveSpill(t.snapKey, "splits", snapSig(t.sig), tbl); err == nil {
				t.spillSplits = true
				t.snapPending.Store(true)
				return true
			}
			// The files moved but the manifest didn't stick: they are
			// unreachable, so reclaim the space (plain-evict semantics).
			os.RemoveAll(t.snap.SplitSpillDir(t.snapKey))
			return true
		}
		// Nothing registered, or the move failed part-way (SpillTo already
		// degraded those files to deletion); fall through to the drop.
	}
	t.Splits.Drop()
	return true
}

// snapSig and catSig convert between the catalog's file signature and the
// snapshot format's.
func snapSig(s Signature) snapshot.Sig {
	return snapshot.Sig{Size: s.Size, ModTime: s.ModTime, Prefix: s.Prefix, Tail: s.Tail}
}

func catSig(s snapshot.Sig) Signature {
	return Signature{Size: s.Size, ModTime: s.ModTime, Prefix: s.Prefix, Tail: s.Tail}
}

// posmapSections serializes a positional map's columns.
func posmapSections(m *posmap.Map) []snapshot.PosMapCol {
	cols := m.Columns()
	out := make([]snapshot.PosMapCol, 0, len(cols))
	for col, pair := range cols {
		out = append(out, snapshot.PosMapCol{Col: col, Rows: pair[0], Offs: pair[1]})
	}
	return out
}

// manifestToSnapshot and manifestFromSnapshot convert between the
// split-file registry's manifest and its serialized form.
func manifestToSnapshot(m splitfile.Manifest) *snapshot.Splits {
	s := &snapshot.Splits{Seq: m.Seq, Sidecars: m.Sidecars}
	for _, r := range m.Rests {
		s.Rests = append(s.Rests, snapshot.RestFile{Path: r.Path, Cols: r.Cols})
	}
	return s
}

// synopsisToSnapshot and synopsisFromSnapshot convert between the scan
// synopsis' exported state and its serialized form.
func synopsisToSnapshot(ps []synopsis.PortionState) []snapshot.SynPortion {
	out := make([]snapshot.SynPortion, 0, len(ps))
	for _, p := range ps {
		sp := snapshot.SynPortion{Off: p.Info.Off, End: p.Info.End, FirstRow: p.Info.FirstRow, Rows: p.Info.Rows}
		for _, c := range p.Cols {
			sp.Cols = append(sp.Cols, snapshot.SynCol{
				Col: c.Col, Typ: c.Typ,
				MinI: c.MinI, MaxI: c.MaxI, MinF: c.MinF, MaxF: c.MaxF,
				MinS: c.MinS, MaxS: c.MaxS, MinExact: c.MinExact, MaxExact: c.MaxExact,
			})
		}
		out = append(out, sp)
	}
	return out
}

func synopsisFromSnapshot(ps []snapshot.SynPortion) []synopsis.PortionState {
	out := make([]synopsis.PortionState, 0, len(ps))
	for i, p := range ps {
		st := synopsis.PortionState{Info: scan.PortionInfo{Index: i, Off: p.Off, End: p.End, FirstRow: p.FirstRow, Rows: p.Rows}}
		for _, c := range p.Cols {
			st.Cols = append(st.Cols, synopsis.ColBounds{
				Col: c.Col, Typ: c.Typ,
				MinI: c.MinI, MaxI: c.MaxI, MinF: c.MinF, MaxF: c.MaxF,
				MinS: c.MinS, MaxS: c.MaxS, MinExact: c.MinExact, MaxExact: c.MaxExact,
			})
		}
		out = append(out, st)
	}
	return out
}

func manifestFromSnapshot(s *snapshot.Splits) splitfile.Manifest {
	m := splitfile.Manifest{Seq: s.Seq, Sidecars: s.Sidecars}
	if m.Sidecars == nil {
		m.Sidecars = map[int]string{}
	}
	for _, r := range s.Rests {
		m.Rests = append(m.Rests, splitfile.ManifestRest{Path: r.Path, Cols: r.Cols})
	}
	return m
}

// MergeSparse folds qualifying (row, value) pairs of one scanned column
// into the sparse store and refreshes the governor accounting, all under
// the table lock — concurrent readers (SparseFraction, MemSize,
// TableStats) never observe a half-grown column. val(i) returns the value
// for rowIDs[i]. Returns the bytes stored (0 when dense supersedes). The
// caller holds the table's load lock, which serializes merges.
func (t *Table) MergeSparse(col int, rowIDs []int64, val func(i int) storage.Value) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols[col].Dense != nil {
		return 0
	}
	sp := t.cols[col].Sparse
	if sp == nil {
		sp = storage.NewSparse(t.schema.Columns[col].Type)
		t.cols[col].Sparse = sp
	}
	// One merge pass over the sorted row ids — per-row sorted inserts
	// would go quadratic when a wide load interleaves with retained rows.
	stored := sp.AddRun(rowIDs, val)
	if t.gov == nil || t.released {
		return stored
	}
	if t.sparseH[col] == nil {
		var h *govern.Handle
		h = t.gov.Register(govern.KindSparse, fmt.Sprintf("%s.s%d", t.name, col), func() bool { return t.evictSparse(col, h) })
		t.sparseH[col] = h
	}
	t.sparseH[col].SetBytes(sp.MemSize())
	t.sparseH[col].SetCost(t.fullPassSecLocked())
	t.sparseH[col].Touch()
	return stored
}

// StoreBacked reports whether every listed column still has data in the
// adaptive store (dense or sparse). Coverage regions can transiently
// outlive an eviction that raced a concurrent load; callers treat an
// unbacked coverage claim as a cache miss.
func (t *Table) StoreBacked(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range cols {
		if t.cols[c].Dense == nil && t.cols[c].Sparse == nil {
			return false
		}
	}
	return true
}

// Pin marks the adaptive structures a query is about to read — the listed
// columns' dense/sparse state plus the positional map and split files — as
// in-use, so the governor does not evict them mid-scan. The returned
// function releases the pins; it must be called exactly once.
func (t *Table) Pin(cols []int) (unpin func()) {
	if t.gov == nil {
		return func() {}
	}
	t.mu.RLock()
	var hs []*govern.Handle
	add := func(h *govern.Handle) {
		if h != nil {
			h.Pin()
			hs = append(hs, h)
		}
	}
	for _, c := range cols {
		if c >= 0 && c < len(t.denseH) {
			add(t.denseH[c])
			add(t.sparseH[c])
		}
	}
	add(t.posmapH)
	add(t.splitsH)
	add(t.synH)
	t.mu.RUnlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, h := range hs {
				h.Unpin()
			}
		})
	}
}

// Own attributes the adaptive structures a query read — the listed
// columns' dense/sparse state plus the table-wide positional map, split
// files and synopsis — to a tenant, for the governor's per-tenant budget
// partitioning. Last user wins, matching the LRU clock's view of recency.
func (t *Table) Own(cols []int, tenant string) {
	if t.gov == nil || tenant == "" {
		return
	}
	t.mu.RLock()
	set := func(h *govern.Handle) {
		if h != nil {
			h.SetOwner(tenant)
		}
	}
	for _, c := range cols {
		if c >= 0 && c < len(t.denseH) {
			set(t.denseH[c])
			set(t.sparseH[c])
		}
	}
	set(t.posmapH)
	set(t.splitsH)
	set(t.synH)
	t.mu.RUnlock()
}

// Prepare gives the disk cache tier a chance to warm the table before a
// query runs: on the first call it opens the table's snapshot (written by
// a previous process) and restores the small structures — row count,
// sparse columns, coverage regions, split-file manifest; on every call it
// restores any of the listed columns that have a valid dense section on
// disk, and, when a raw-file load is still unavoidable, re-admits the
// positional map and split files (from the snapshot or from spill files
// written by eviction). Everything is best-effort: a stale, truncated or
// corrupt snapshot degrades to a cold start for the affected structures,
// never to a query error. Cheap when there is nothing to do.
func (t *Table) Prepare(cols []int) {
	if t.snap == nil || !t.snapPending.Load() {
		return
	}
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if !t.snapPending.Load() {
		return
	}
	t.initSnapLocked()
	if old := t.pendingExtend; old != nil {
		// The snapshot described a prefix-stable ancestor of the current
		// file; its state was restored eagerly and now extends over the
		// appended tail. Failure degrades to a cold start.
		t.pendingExtend = nil
		if err := t.extendForGrowth(*old, t.Signature()); err != nil {
			t.DropDerived()
			t.dropSnapStateLocked()
		}
		t.updatePendingLocked()
		return
	}
	t.restoreDenseLocked(cols)
	if len(t.MissingDense(t.validCols(cols))) > 0 {
		// A load operator is about to touch the raw file: bring back the
		// structures that make loads cheap.
		t.restorePosMapLocked()
		t.unspillLocked()
	}
	t.updatePendingLocked()
}

// validCols filters cols to the current schema's range (a snapshot from a
// same-signature file always agrees, but plans are untrusted input here).
func (t *Table) validCols(cols []int) []int {
	t.mu.RLock()
	n := len(t.cols)
	t.mu.RUnlock()
	out := cols[:0:0]
	for _, c := range cols {
		if c >= 0 && c < n {
			out = append(out, c)
		}
	}
	return out
}

// initSnapLocked runs once per table (and again after invalidation): open
// the snapshot file, restore the eagerly-wanted sections, and detect
// spill files left by a previous process. Caller holds snapMu.
func (t *Table) initSnapLocked() {
	if t.snapInit {
		return
	}
	t.snapInit = true
	t.mu.RLock()
	sig := t.sig
	t.mu.RUnlock()

	want := snapSig(sig)
	r := t.snap.OpenVerify(t.snapKey, func(stored snapshot.Sig) bool {
		if stored == want {
			return true
		}
		// A smaller stored signature may describe a prefix-stable ancestor
		// of the current file — the table grew by appends after the save.
		// Accept it: the restore drains it eagerly and the tail extension
		// re-adapts only the appended portion, keeping a warm restart warm
		// across growth.
		if stored.Size <= 0 || stored.Size >= sig.Size {
			return false
		}
		ok, err := GrownFromFS(t.fs, t.path, catSig(stored))
		return err == nil && ok
	})
	if r != nil && r.Sig() != want {
		t.restoreGrownLocked(r)
		return
	}
	t.snapReader = r
	if r != nil {
		if rows := r.Rows(); rows > 0 && t.NumRows() <= 0 {
			t.SetNumRows(rows)
		}
		t.mu.Lock()
		t.snapDenseBytes = make(map[int]int64)
		for _, c := range r.DenseCols() {
			t.snapDenseBytes[c] = r.DenseBytes(c)
		}
		if t.gov != nil && !t.released {
			t.refreshCostsLocked()
		}
		t.mu.Unlock()

		sparse, err := r.Sparse()
		if err != nil {
			t.snap.CountCorrupt(t.snapKey, err)
		}
		for _, sc := range sparse {
			t.installRestoredSparse(sc)
		}
		regs, err := r.Regions()
		if err != nil {
			t.snap.CountCorrupt(t.snapKey, err)
		}
		for _, reg := range regs {
			t.AddRegion(regionFromSnapshot(reg))
		}
		if sy, err := r.Synopsis(); err != nil {
			t.snap.CountCorrupt(t.snapKey, err)
		} else if len(sy) > 0 {
			// Import validates layout contiguity and column types; invalid
			// or stale-shaped data degrades to a cold (re-learned) synopsis.
			t.Syn.Import(synopsisFromSnapshot(sy), t.schema)
		}
		if t.Splits != nil {
			if m, err := r.SplitsManifest(); err != nil {
				t.snap.CountCorrupt(t.snapKey, err)
			} else if m != nil {
				t.Splits.Adopt(manifestFromSnapshot(m))
			}
		}
	}
	// Spill files written by a previous process's evictions.
	t.mu.Lock()
	if t.snap.HasSpill(t.snapKey, "posmap") {
		t.spillPM = true
	}
	if t.snap.HasSpill(t.snapKey, "splits") {
		t.spillSplits = true
	}
	t.mu.Unlock()
}

// restoreGrownLocked eagerly restores every section of a snapshot taken
// before the raw file grew by appends — as the state of the still-valid
// old prefix — and schedules the tail extension (Prepare runs it next).
// Everything is drained now, not lazily: once the extension updates the
// row count, the on-disk sections (sized to the old prefix) could no
// longer be validated against the table. Caller holds snapMu.
func (t *Table) restoreGrownLocked(r *snapshot.Reader) {
	old := catSig(r.Sig())
	if rows := t.NumRows(); rows > 0 && rows != r.Rows() {
		// The table already discovered the grown file's row count; the
		// snapshot's prefix-sized structures cannot be reconciled with it.
		r.Close()
		t.snap.Remove(t.snapKey)
		return
	}
	t.snapReader = r
	if rows := r.Rows(); rows > 0 && t.NumRows() <= 0 {
		t.SetNumRows(rows)
	}
	t.mu.Lock()
	t.snapDenseBytes = make(map[int]int64)
	for _, c := range r.DenseCols() {
		t.snapDenseBytes[c] = r.DenseBytes(c)
	}
	if t.gov != nil && !t.released {
		t.refreshCostsLocked()
	}
	t.mu.Unlock()

	all := make([]int, len(t.schema.Columns))
	for i := range all {
		all[i] = i
	}
	t.restoreDenseLocked(all)
	sparse, err := r.Sparse()
	if err != nil {
		t.snap.CountCorrupt(t.snapKey, err)
	}
	for _, sc := range sparse {
		t.installRestoredSparse(sc)
	}
	regs, err := r.Regions()
	if err != nil {
		t.snap.CountCorrupt(t.snapKey, err)
	}
	for _, reg := range regs {
		t.AddRegion(regionFromSnapshot(reg))
	}
	if sy, err := r.Synopsis(); err != nil {
		t.snap.CountCorrupt(t.snapKey, err)
	} else if len(sy) > 0 {
		t.Syn.Import(synopsisFromSnapshot(sy), t.schema)
	}
	if t.Splits != nil {
		if m, err := r.SplitsManifest(); err != nil {
			t.snap.CountCorrupt(t.snapKey, err)
		} else if m != nil {
			t.Splits.Adopt(manifestFromSnapshot(m))
		}
	}
	t.restorePosMapLocked()
	t.mu.Lock()
	if t.snap.HasSpill(t.snapKey, "posmap") {
		t.spillPM = true
	}
	if t.snap.HasSpill(t.snapKey, "splits") {
		t.spillSplits = true
	}
	t.mu.Unlock()
	t.unspillAs(old) // spill files are keyed by the old prefix's signature
	t.pendingExtend = &old
}

// dropSnapStateLocked discards the snapshot files and resets the restore
// state after a failed extension, leaving the table cold but consistent.
// Caller holds snapMu.
func (t *Table) dropSnapStateLocked() {
	if t.snap == nil {
		return
	}
	if t.snapReader != nil {
		t.snapReader.Close()
		t.snapReader = nil
	}
	t.snap.Remove(t.snapKey)
	t.posMapRestored = false
	t.lastSaveFP = ""
	t.mu.Lock()
	t.snapDenseBytes = nil
	t.spillPM, t.spillSplits = false, false
	t.snapPending.Store(false)
	t.mu.Unlock()
}

// restoreDenseLocked re-admits any of cols that are missing in memory but
// have a valid dense section on disk. Caller holds snapMu.
func (t *Table) restoreDenseLocked(cols []int) {
	if t.snapReader == nil {
		return
	}
	for _, c := range t.restorableMissing(cols) {
		d, err := t.snapReader.Dense(c)
		if err != nil {
			t.forgetDenseSection(c, err)
			continue
		}
		t.installRestoredDense(c, d)
	}
}

// restorableMissing returns the listed columns that are not dense in
// memory but have an indexed dense section on disk.
func (t *Table) restorableMissing(cols []int) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for _, c := range cols {
		if c < 0 || c >= len(t.cols) || t.cols[c].Dense != nil {
			continue
		}
		if _, ok := t.snapDenseBytes[c]; ok {
			out = append(out, c)
		}
	}
	return out
}

// forgetDenseSection drops a corrupt dense section from the restore index
// so it is neither retried nor priced as a cheap rebuild.
func (t *Table) forgetDenseSection(col int, err error) {
	if t.snapReader != nil {
		t.snapReader.ForgetDense(col)
	}
	t.mu.Lock()
	delete(t.snapDenseBytes, col)
	if t.gov != nil && !t.released {
		t.refreshCostsLocked()
	}
	t.mu.Unlock()
	t.snap.CountCorrupt(t.snapKey, err)
}

// installRestoredDense validates and installs one decoded dense column.
func (t *Table) installRestoredDense(col int, d snapshot.DenseCol) {
	if d.Typ != t.schema.Columns[col].Type {
		t.forgetDenseSection(col, fmt.Errorf("%w: dense col %d type mismatch", snapshot.ErrCorrupt, col))
		return
	}
	dense := &storage.DenseColumn{Typ: d.Typ, Ints: d.Ints, Floats: d.Floats, Strs: d.Strs}
	n := int64(dense.Len())
	rows := t.NumRows()
	if n == 0 || (rows > 0 && n != rows) {
		t.forgetDenseSection(col, fmt.Errorf("%w: dense col %d has %d values, want %d", snapshot.ErrCorrupt, col, n, rows))
		return
	}
	if rows <= 0 {
		t.SetNumRows(n)
	}
	t.SetDense(col, dense)
}

// installRestoredSparse validates and installs one decoded sparse column
// with its governor registration.
func (t *Table) installRestoredSparse(sc snapshot.SparseCol) {
	t.mu.RLock()
	inRange := sc.Col >= 0 && sc.Col < len(t.cols)
	t.mu.RUnlock()
	if !inRange || sc.Typ != t.schema.Columns[sc.Col].Type {
		return
	}
	n := len(sc.Rows)
	var vals int
	switch sc.Typ {
	case schema.Int64:
		vals = len(sc.Ints)
	case schema.Float64:
		vals = len(sc.Floats)
	default:
		vals = len(sc.Strs)
	}
	if n == 0 || vals != n {
		return
	}
	sp := storage.NewSparse(sc.Typ)
	for i, row := range sc.Rows {
		switch sc.Typ {
		case schema.Int64:
			sp.Add(row, storage.IntValue(sc.Ints[i]))
		case schema.Float64:
			sp.Add(row, storage.FloatValue(sc.Floats[i]))
		default:
			sp.Add(row, storage.StringValue(sc.Strs[i]))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols[sc.Col].Dense != nil || t.cols[sc.Col].Sparse != nil {
		return
	}
	t.cols[sc.Col].Sparse = sp
	if t.gov == nil || t.released {
		return
	}
	if t.sparseH[sc.Col] == nil {
		col := sc.Col
		var h *govern.Handle
		h = t.gov.Register(govern.KindSparse, fmt.Sprintf("%s.s%d", t.name, col), func() bool { return t.evictSparse(col, h) })
		t.sparseH[col] = h
	}
	t.sparseH[sc.Col].SetBytes(sp.MemSize())
	t.sparseH[sc.Col].SetCost(t.fullPassSecLocked())
	t.sparseH[sc.Col].Touch()
}

// regionFromSnapshot converts a serialized region back.
func regionFromSnapshot(r snapshot.Region) Region {
	out := Region{Cols: append([]int(nil), r.Cols...), Ranges: map[int]intervals.Interval{}}
	sort.Ints(out.Cols)
	for i, c := range r.RangeCols {
		out.Ranges[c] = intervals.Interval{Lo: r.Los[i], Hi: r.His[i]}
	}
	return out
}

// restorePosMapLocked re-admits the positional map from the snapshot
// (once). Caller holds snapMu.
func (t *Table) restorePosMapLocked() {
	if t.posMapRestored || t.snapReader == nil || !t.snapReader.HasPosMap() {
		return
	}
	t.posMapRestored = true
	cols, err := t.snapReader.PosMap()
	if err != nil {
		t.snap.CountCorrupt(t.snapKey, err)
	}
	for _, pc := range cols {
		t.PosMap.LoadColumn(pc.Col, pc.Rows, pc.Offs)
	}
	t.mu.Lock()
	if t.gov != nil && !t.released {
		t.refreshCostsLocked()
	}
	t.mu.Unlock()
}

// unspillLocked re-admits structures spilled by eviction. Caller holds
// snapMu.
func (t *Table) unspillLocked() {
	t.mu.RLock()
	sig := t.sig
	t.mu.RUnlock()
	t.unspillAs(sig)
}

// unspillAs re-admits spilled structures whose files were written under
// sig — the current signature normally, the old prefix's during a grown
// restore. Caller holds snapMu.
func (t *Table) unspillAs(sig Signature) {
	t.mu.RLock()
	pm, sf := t.spillPM, t.spillSplits
	t.mu.RUnlock()
	if pm {
		t.mu.Lock()
		t.spillPM = false
		t.mu.Unlock()
		if tbl := t.snap.LoadSpill(t.snapKey, "posmap", snapSig(sig)); tbl != nil {
			for _, pc := range tbl.PosMap {
				t.PosMap.LoadColumn(pc.Col, pc.Rows, pc.Offs)
			}
		}
	}
	if sf && t.Splits != nil {
		t.mu.Lock()
		t.spillSplits = false
		t.mu.Unlock()
		if tbl := t.snap.LoadSpill(t.snapKey, "splits", snapSig(sig)); tbl != nil && tbl.Splits != nil {
			t.Splits.Adopt(manifestFromSnapshot(tbl.Splits))
		}
	}
	if pm || sf {
		t.mu.Lock()
		if t.gov != nil && !t.released {
			t.refreshCostsLocked()
		}
		t.mu.Unlock()
	}
}

// updatePendingLocked recomputes the Prepare fast-path flag. The reader
// stays open while it still holds restorable sections (an evicted column
// is then re-admitted by deserializing, not re-learning). Caller holds
// snapMu. The store happens under t.mu (write lock) so it cannot race a
// concurrent eviction's spill-flag-set-plus-Store(true) and erase it.
func (t *Table) updatePendingLocked() {
	if t.snapReader != nil &&
		len(t.snapReader.DenseCols()) == 0 &&
		(t.posMapRestored || !t.snapReader.HasPosMap()) {
		t.snapReader.Close()
		t.snapReader = nil
	}
	t.mu.Lock()
	t.snapPending.Store(t.snapReader != nil || t.spillPM || t.spillSplits)
	t.mu.Unlock()
}

// SaveSnapshot serializes the table's auxiliary structures to the cache
// directory (write-temp-then-rename, CRC per section). Structures that
// were never restored from the previous snapshot are carried forward, so
// a short-lived process does not shrink the cache. No-op without a store;
// a table with nothing learned and nothing carried leaves no file.
func (t *Table) SaveSnapshot() error {
	if t.snap == nil {
		return nil
	}
	t.snapMu.Lock()
	defer t.snapMu.Unlock()

	t.mu.RLock()
	tbl := &snapshot.Table{Rows: t.rows}
	if t.PosMap != nil && t.PosMap.MemSize() > 0 {
		tbl.PosMap = posmapSections(t.PosMap)
	}
	for c := range t.cols {
		if d := t.cols[c].Dense; d != nil {
			tbl.Dense = append(tbl.Dense, snapshot.DenseCol{Col: c, Typ: d.Typ, Ints: d.Ints, Floats: d.Floats, Strs: d.Strs})
		}
		if sp := t.cols[c].Sparse; sp != nil && sp.Len() > 0 {
			sc := snapshot.SparseCol{Col: c, Typ: sp.Typ}
			for i := 0; i < sp.Len(); i++ {
				row, v := sp.At(i)
				sc.Rows = append(sc.Rows, row)
				switch sp.Typ {
				case schema.Int64:
					sc.Ints = append(sc.Ints, v.I)
				case schema.Float64:
					sc.Floats = append(sc.Floats, v.F)
				default:
					sc.Strs = append(sc.Strs, v.S)
				}
			}
			tbl.Sparse = append(tbl.Sparse, sc)
		}
	}
	for _, r := range t.regions {
		reg := snapshot.Region{Cols: append([]int(nil), r.Cols...)}
		for col, iv := range r.Ranges {
			reg.RangeCols = append(reg.RangeCols, col)
			reg.Los = append(reg.Los, iv.Lo)
			reg.His = append(reg.His, iv.Hi)
		}
		tbl.Regions = append(tbl.Regions, reg)
	}
	if t.Splits != nil {
		if m := t.Splits.Manifest(); len(m.Sidecars) > 0 || len(m.Rests) > 0 {
			tbl.Splits = manifestToSnapshot(m)
		}
	}
	tbl.Synopsis = synopsisToSnapshot(t.Syn.Export())
	sig, key := t.sig, t.snapKey

	// Fingerprint the state so the periodic flusher skips the rewrite
	// (including the carry-forward decode below) when nothing changed
	// since the last save. Dense columns are immutable once set and the
	// positional map's byte count moves with its content, so structural
	// counts plus byte totals identify the state well enough; a missed
	// nuance only costs one redundant save, never a lost one.
	fp := fmt.Sprintf("r%d pm%d d%v s%d rg%d sy%d", t.rows, t.PosMap.MemSize(), denseColsOf(t.cols), sparseBytesOf(t.cols), len(t.regions), t.Syn.MemSize())
	if tbl.Splits != nil {
		fp += fmt.Sprintf(" sp%d/%d/%d", tbl.Splits.Seq, len(tbl.Splits.Sidecars), len(tbl.Splits.Rests))
	}
	t.mu.RUnlock()
	if fp == t.lastSaveFP {
		return nil
	}

	// Carry forward still-valid sections this process never restored.
	if t.snapReader != nil {
		have := map[int]bool{}
		for _, d := range tbl.Dense {
			have[d.Col] = true
		}
		for _, c := range t.snapReader.DenseCols() {
			if have[c] {
				continue
			}
			if d, err := t.snapReader.Dense(c); err == nil {
				tbl.Dense = append(tbl.Dense, d)
			}
		}
		if !t.posMapRestored && t.snapReader.HasPosMap() {
			if cols, err := t.snapReader.PosMap(); err == nil || len(cols) > 0 {
				havePM := map[int]bool{}
				for _, pc := range tbl.PosMap {
					havePM[pc.Col] = true
				}
				for _, pc := range cols {
					if !havePM[pc.Col] {
						tbl.PosMap = append(tbl.PosMap, pc)
					}
				}
			}
		}
	}

	if tbl.Rows <= 0 && len(tbl.PosMap) == 0 && len(tbl.Dense) == 0 &&
		len(tbl.Sparse) == 0 && len(tbl.Regions) == 0 && tbl.Splits == nil &&
		len(tbl.Synopsis) == 0 {
		return nil // nothing learned; don't clobber whatever is on disk
	}
	if err := t.snap.Save(key, snapSig(sig), tbl); err != nil {
		return err
	}
	t.lastSaveFP = fp
	return nil
}

// denseColsOf and sparseBytesOf feed the save fingerprint.
func denseColsOf(cols []ColState) []int {
	var out []int
	for c := range cols {
		if cols[c].Dense != nil {
			out = append(out, c)
		}
	}
	return out
}

func sparseBytesOf(cols []ColState) int64 {
	var n int64
	for c := range cols {
		if sp := cols[c].Sparse; sp != nil {
			n += sp.MemSize()
		}
	}
	return n
}

// closeSnap releases the snapshot reader and disables Prepare. Called
// when the table goes away (unlink, relink, engine close).
func (t *Table) closeSnap() {
	if t.snap == nil {
		return
	}
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if t.snapReader != nil {
		t.snapReader.Close()
		t.snapReader = nil
	}
	t.snapPending.Store(false)
}

// Sparse returns the sparse column for col, creating it when create is
// true.
func (t *Table) Sparse(col int, create bool) *storage.SparseColumn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols[col].Sparse == nil && create {
		t.cols[col].Sparse = storage.NewSparse(t.schema.Columns[col].Type)
	}
	return t.cols[col].Sparse
}

// DenseAll reports whether every listed column is fully loaded.
func (t *Table) DenseAll(cols []int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range cols {
		if t.cols[c].Dense == nil {
			return false
		}
	}
	return true
}

// MissingDense returns the listed columns that are not fully loaded.
func (t *Table) MissingDense(cols []int) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for _, c := range cols {
		if t.cols[c].Dense == nil {
			out = append(out, c)
		}
	}
	return out
}

// Touch records that a query needed the listed columns and returns the
// new touch count of each (aligned with cols). The auto policy uses touch
// counts to decide when a column is hot enough to load fully.
func (t *Table) Touch(cols []int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.touches == nil {
		t.touches = make(map[int]int)
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		t.touches[c]++
		out[i] = t.touches[c]
	}
	return out
}

// TouchCount returns how many queries have needed the column.
func (t *Table) TouchCount(col int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.touches[col]
}

// SparseFraction returns the fraction of the table's rows present in the
// column's sparse store (0 when rows are unknown or the column has no
// sparse data).
func (t *Table) SparseFraction(col int) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sp := t.cols[col].Sparse
	if sp == nil || t.rows <= 0 {
		return 0
	}
	return float64(sp.Len()) / float64(t.rows)
}

// AddRegion records a covered region of the adaptive store.
func (t *Table) AddRegion(r Region) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Record coverage only while every covered column still has backing
	// data. A governor eviction can land between the loader's merge and
	// this call; without the check the region would outlive its data, and
	// a later partial re-merge would make the stale claim look backed —
	// serving incomplete results. (Evictions prune regions under this
	// same lock, so region-exists ⟹ backing-exists is an invariant.)
	for _, c := range r.Cols {
		if t.cols[c].Dense == nil && t.cols[c].Sparse == nil {
			return
		}
	}
	t.regions = addRegionCoalesced(t.regions, r)
}

// addRegionCoalesced inserts r into regions with exact coalescing:
// regions subsumed by the newcomer are dropped, a newcomer subsumed by an
// existing region is discarded, and regions differing only in one
// column's range — where the two intervals overlap or touch — merge into
// their exact union. Merging loops to a fixpoint, so a newcomer that
// bridges two fragments collapses all three. Coverage is never
// over-stated: every merge is an exact set union, which keeps a sequence
// of interleaved partial loads from fragmenting into one region per load.
func addRegionCoalesced(regions []Region, r Region) []Region {
	for {
		merged := false
		kept := make([]Region, 0, len(regions))
		for _, ex := range regions {
			if merged {
				kept = append(kept, ex)
				continue
			}
			if ex.Covers(r) {
				return regions // nothing new: an existing region subsumes r
			}
			if r.Covers(ex) {
				continue // r subsumes ex: drop the fragment
			}
			if m, ok := mergeRegions(ex, r); ok {
				r = m
				merged = true
				continue
			}
			kept = append(kept, ex)
		}
		regions = kept
		if !merged {
			return append(regions, r)
		}
		// r grew; it may now subsume or merge with further fragments.
	}
}

// mergeRegions attempts an exact merge of a and b: identical materialized
// columns and identical range constraints except on at most one column,
// where the two intervals must overlap or be adjacent — their union is
// then a single interval and the merged region covers exactly the rows
// the two inputs covered together.
func mergeRegions(a, b Region) (Region, bool) {
	if len(a.Cols) != len(b.Cols) || len(a.Ranges) != len(b.Ranges) {
		return Region{}, false
	}
	for i, c := range a.Cols {
		if b.Cols[i] != c {
			return Region{}, false
		}
	}
	diff := -1
	for col, ar := range a.Ranges {
		br, ok := b.Ranges[col]
		if !ok {
			return Region{}, false
		}
		if ar == br {
			continue
		}
		if ar.Lo > br.Hi || br.Lo > ar.Hi {
			return Region{}, false // disjoint with a gap: union is not one interval
		}
		if diff >= 0 {
			return Region{}, false // exact union needs a single differing axis
		}
		diff = col
	}
	if diff < 0 {
		return a, true // identical constraints
	}
	out := Region{Cols: append([]int(nil), a.Cols...), Ranges: make(map[int]intervals.Interval, len(a.Ranges))}
	for col, ar := range a.Ranges {
		out.Ranges[col] = ar
	}
	ar, br := a.Ranges[diff], b.Ranges[diff]
	lo, hi := ar.Lo, ar.Hi
	if br.Lo < lo {
		lo = br.Lo
	}
	if br.Hi > hi {
		hi = br.Hi
	}
	out.Ranges[diff] = intervals.Interval{Lo: lo, Hi: hi}
	return out, true
}

// CoveredBy returns a recorded region covering q, if any.
func (t *Table) CoveredBy(q Region) (Region, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.regions {
		if r.Covers(q) {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns a copy of the recorded regions.
func (t *Table) Regions() []Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]Region(nil), t.regions...)
}

// Cracker returns the cracker for col, building it from the dense column
// when create is true and the column is loaded (int64 only).
func (t *Table) Cracker(col int, create bool) *cracking.Cracker {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cr, ok := t.crack[col]; ok {
		return cr
	}
	if !create {
		return nil
	}
	d := t.cols[col].Dense
	if d == nil || d.Typ != schema.Int64 {
		return nil
	}
	cr := cracking.New(d.Ints)
	cr.Counters = t.counters
	t.crack[col] = cr
	if t.gov != nil && t.denseH[col] != nil {
		// The cracker rides on the dense column's registration: evicting
		// the column drops both.
		t.denseH[col].AddBytes(cr.MemSize())
	}
	return cr
}

// MemSize returns approximate heap bytes of all loaded state.
func (t *Table) MemSize() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var sz int64
	for _, cs := range t.cols {
		if cs.Dense != nil {
			sz += cs.Dense.MemSize()
		}
		if cs.Sparse != nil {
			sz += cs.Sparse.MemSize()
		}
	}
	for _, cr := range t.crack {
		sz += cr.MemSize()
	}
	if t.PosMap != nil {
		sz += t.PosMap.MemSize()
	}
	sz += t.Syn.MemSize()
	return sz
}

// DropDerived discards all derived state: columns, regions, crackers,
// positional map and split files. The table remains linked.
func (t *Table) DropDerived() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropDerivedLocked()
}

func (t *Table) dropDerivedLocked() {
	for i := range t.cols {
		t.cols[i] = ColState{}
	}
	t.regions = nil
	t.crack = make(map[int]*cracking.Cracker)
	t.touches = nil
	t.rows = -1
	for i := range t.denseH {
		t.denseH[i].Release()
		t.denseH[i] = nil
	}
	for i := range t.sparseH {
		t.sparseH[i].Release()
		t.sparseH[i] = nil
	}
	if t.PosMap != nil {
		t.PosMap.Drop() // zeroes its governor handle via the accountant
	}
	if t.Splits != nil {
		t.Splits.Drop()
	}
	if t.Syn != nil {
		t.Syn.Drop()
	}
}

// releaseGoverned unregisters every governor handle, including the
// persistent positional-map and split-file ones. Used when the table
// itself goes away (unlink, engine close).
func (t *Table) releaseGoverned() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.released = true
	for i := range t.denseH {
		t.denseH[i].Release()
		t.denseH[i] = nil
	}
	for i := range t.sparseH {
		t.sparseH[i].Release()
		t.sparseH[i] = nil
	}
	t.posmapH.Release()
	t.splitsH.Release()
	t.synH.Release()
	t.posmapH, t.splitsH, t.synH = nil, nil, nil
	if t.PosMap != nil {
		t.PosMap.SetAccountant(nil)
	}
	if t.Splits != nil {
		t.Splits.SetAccountant(nil)
	}
	if t.Syn != nil {
		t.Syn.SetAccountant(nil)
	}
}

// Revalidate re-checks the raw file's signature. A prefix-stable growth
// (appended rows; the old content, ending in a newline, is untouched)
// extends the derived state incrementally over the tail. Any other change
// drops everything — including the disk cache tier's files, which are
// keyed by the old signature and would only self-invalidate later — and
// re-detects the schema. Returns true when either happened.
func (t *Table) Revalidate() (bool, error) {
	sig, err := SignFileFS(t.fs, t.path)
	if err != nil {
		return false, err
	}
	t.mu.RLock()
	same := sig == t.sig
	t.mu.RUnlock()
	if same {
		return false, nil
	}
	// The file changed: serialize against snapshot I/O (snapMu before mu,
	// the global lock order) so a concurrent restore cannot install state
	// from the superseded file version.
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	t.mu.RLock()
	old := t.sig
	t.mu.RUnlock()
	if sig == old {
		return false, nil // raced with another Revalidate
	}
	if sig.Size > old.Size {
		if ok, gerr := GrownFromFS(t.fs, t.path, old); gerr == nil && ok {
			// The prefix (and therefore the header and schema) is intact:
			// extend positional map, synopsis, coverage regions, dense
			// columns and split files over the appended tail instead of
			// relearning the whole file. Failure falls through to the
			// full invalidation below, which discards every structure the
			// aborted extension may have partially touched.
			if t.growLocked(old, sig) == nil {
				return true, nil
			}
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sig == t.sig {
		return false, nil
	}
	sch, err := schema.Detect(t.path, t.detect)
	if err != nil {
		return false, fmt.Errorf("catalog: re-detecting schema of %s: %w", t.path, err)
	}
	t.sig = sig
	oldCols := len(t.schema.Columns)
	t.schema = sch
	t.dropDerivedLocked()
	if t.snap != nil {
		if t.snapReader != nil {
			t.snapReader.Close()
			t.snapReader = nil
		}
		t.snap.Remove(t.snapKey)
		t.snapInit = false
		t.posMapRestored = false
		t.snapDenseBytes = nil
		t.lastSaveFP = ""
		t.spillPM, t.spillSplits = false, false
		t.snapPending.Store(false)
	}
	if len(sch.Columns) != oldCols {
		t.cols = make([]ColState, len(sch.Columns))
		if t.gov != nil {
			t.denseH = make([]*govern.Handle, len(sch.Columns))
			t.sparseH = make([]*govern.Handle, len(sch.Columns))
		}
	}
	if t.gov != nil {
		t.refreshCostsLocked()
	}
	return true, nil
}

// Options configures a Catalog.
type Options struct {
	// SplitDir is where split files are written; empty disables split-file
	// creation (Lookup always returns the raw file).
	SplitDir string
	// PosMapBudget caps each table's positional map (0 = default).
	PosMapBudget int64
	// Governor, when non-nil, receives a registration for every adaptive
	// structure (dense columns, sparse columns, positional maps, split
	// files) so a global byte budget can be enforced with structure-level
	// cost-aware eviction.
	Governor *govern.Governor
	// Snapshots, when non-nil, is the disk cache tier: tables serialize
	// their auxiliary structures there (SaveSnapshots / engine close),
	// restore them lazily on first query (Prepare), and eviction spills
	// expensive structures there instead of discarding them.
	Snapshots *snapshot.Store
	// Counters receives work accounting; may be nil.
	Counters *metrics.Counters
	// FS is the filesystem raw files are read through (schema
	// detection, signatures, revalidation, tail extension); nil means
	// the real disk.
	FS vfs.FS
}

// Catalog is the set of linked tables. Safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	opts   Options
}

// New returns an empty catalog.
func New(opts Options) *Catalog {
	return &Catalog{tables: make(map[string]*Table), opts: opts}
}

// Link registers a raw file under a table name, detecting its schema. The
// file must exist. Linking an already linked name relinks it (dropping
// derived state).
func (c *Catalog) Link(name, path string) (*Table, error) {
	return c.LinkOpts(name, path, schema.DetectOptions{})
}

// LinkOpts is Link with explicit schema-detection options (forced format
// or delimiter). The options are remembered: revalidation after a file
// edit re-detects the schema under the same constraints.
func (c *Catalog) LinkOpts(name, path string, dopts schema.DetectOptions) (*Table, error) {
	if dopts.FS == nil {
		dopts.FS = c.opts.FS
	}
	sch, err := schema.Detect(path, dopts)
	if err != nil {
		return nil, fmt.Errorf("catalog: linking %s: %w", path, err)
	}
	sig, err := SignFileFS(c.opts.FS, path)
	if err != nil {
		return nil, err
	}
	t := &Table{
		name:     name,
		path:     path,
		schema:   sch,
		sig:      sig,
		detect:   dopts,
		fs:       c.opts.FS,
		rows:     -1,
		cols:     make([]ColState, len(sch.Columns)),
		crack:    make(map[int]*cracking.Cracker),
		counters: c.opts.Counters,
		gov:      c.opts.Governor,
		PosMap:   posmap.New(c.opts.PosMapBudget, c.opts.Counters),
		Syn:      synopsis.New(),
	}
	// Vertical split files re-serialize rows as delimiter-separated column
	// groups — a CSV-only layout. NDJSON tables skip the registry and rely
	// on positional maps + the adaptive store instead.
	if c.opts.SplitDir != "" && sch.Format == scan.FormatCSV {
		dir := filepath.Join(c.opts.SplitDir, sanitizeName(name))
		t.Splits = splitfile.NewRegistry(dir, path, len(sch.Columns), sch.Delimiter, c.opts.Counters)
		t.Splits.FS = c.opts.FS
	}
	if c.opts.Snapshots != nil {
		t.snap = c.opts.Snapshots
		t.snapKey = snapshot.Key(name, path)
		t.snapPending.Store(true) // first Prepare probes the cache dir
	}
	t.initGoverned()
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.tables[lower(name)]; ok {
		old.DropDerived()
		old.releaseGoverned()
		old.closeSnap()
	}
	c.tables[lower(name)] = t
	return t, nil
}

// initGoverned registers the table's persistent structures with the
// governor and sizes the handle arrays for the current schema.
func (t *Table) initGoverned() {
	if t.gov == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.initGovernedLocked()
}

func (t *Table) initGovernedLocked() {
	t.denseH = make([]*govern.Handle, len(t.schema.Columns))
	t.sparseH = make([]*govern.Handle, len(t.schema.Columns))
	var pmH *govern.Handle
	pmH = t.gov.Register(govern.KindPosMap, t.name+".posmap", func() bool { return t.evictPosMap(pmH) })
	t.posmapH = pmH
	t.PosMap.SetAccountant(t.posmapH)
	if t.Splits != nil {
		var spH *govern.Handle
		spH = t.gov.Register(govern.KindSplit, t.name+".splits", func() bool { return t.evictSplits(spH) })
		t.splitsH = spH
		t.Splits.SetAccountant(t.splitsH)
	}
	var syH *govern.Handle
	syH = t.gov.Register(govern.KindSynopsis, t.name+".synopsis", func() bool { return t.evictSynopsis(syH) })
	t.synH = syH
	t.Syn.SetAccountant(t.synH)
	t.refreshCostsLocked()
}

// Get returns the linked table by name (case-insensitive).
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[lower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q is not linked", name)
	}
	return t, nil
}

// Unlink removes a table and drops its derived state.
func (c *Catalog) Unlink(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[lower(name)]
	if !ok {
		return fmt.Errorf("catalog: table %q is not linked", name)
	}
	t.DropDerived()
	t.releaseGoverned()
	t.closeSnap()
	delete(c.tables, lower(name))
	return nil
}

// Tables returns the linked table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.name)
	}
	sort.Strings(out)
	return out
}

// DropAll unlinks every table and drops all derived state. Engine close
// uses it to release the adaptive store in one step.
func (c *Catalog) DropAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, t := range c.tables {
		t.DropDerived()
		t.releaseGoverned()
		t.closeSnap()
		delete(c.tables, name)
	}
}

// SaveSnapshots serializes every table's auxiliary structures to the
// cache directory (no-op without one). Errors are collected — the first
// is returned — but every table is attempted; the engine's periodic
// flusher and Close both use this.
func (c *Catalog) SaveSnapshots() error {
	c.mu.RLock()
	tables := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		tables = append(tables, t)
	}
	c.mu.RUnlock()
	var firstErr error
	for _, t := range tables {
		if err := t.SaveSnapshot(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// DetachSplits forgets every table's split files without deleting them.
// Engine close calls it after SaveSnapshots so the files the freshly
// written manifests point at survive for the next process to adopt.
func (c *Catalog) DetachSplits() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, t := range c.tables {
		if t.Splits != nil {
			t.Splits.Detach()
		}
	}
}

// MemSize returns the total bytes of loaded state.
func (c *Catalog) MemSize() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sz int64
	for _, t := range c.tables {
		sz += t.MemSize()
	}
	return sz
}

func lower(s string) string { return strings.ToLower(s) }

func sanitizeName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9', ch == '-', ch == '_':
			out = append(out, ch)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
