package catalog

import (
	"os"
	"strings"
	"testing"
	"time"

	"nodb/internal/intervals"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

func appendFile(t *testing.T, path, content string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGrownFrom(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "g.csv", "1,2\n3,4\n")
	old, err := SignFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Unchanged: not grown (not strictly larger).
	if ok, _ := GrownFrom(path, old); ok {
		t.Error("unchanged file reported grown")
	}

	// A pure append is growth.
	appendFile(t, path, "5,6\n")
	if ok, err := GrownFrom(path, old); err != nil || !ok {
		t.Errorf("append not recognized as growth: %v, %v", ok, err)
	}

	// Same length, edited tail: not growth (and the caller's sig
	// comparison must invalidate — see TestRevalidateTailEdit).
	if err := os.WriteFile(path, []byte("1,2\n9,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, "5,6\n")
	if ok, _ := GrownFrom(path, old); ok {
		t.Error("tail edit + append reported as prefix-stable growth")
	}

	// Edited prefix plus growth: not growth.
	if err := os.WriteFile(path, []byte("7,2\n3,4\n5,6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, _ := GrownFrom(path, old); ok {
		t.Error("prefix edit reported as prefix-stable growth")
	}

	// Old content not ending in a newline: the "append" glues onto the
	// last row, so the old row boundary assignment is wrong — not growth.
	path2 := writeCSV(t, dir, "g2.csv", "1,2\n3,4")
	old2, err := SignFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	appendFile(t, path2, "\n5,6\n")
	if ok, _ := GrownFrom(path2, old2); ok {
		t.Error("growth from a file without trailing newline accepted")
	}
}

// TestRevalidateGrowthExtendsState pins the tentpole at the catalog
// layer: appending rows extends the loaded state over the tail instead of
// dropping it.
func TestRevalidateGrowthExtendsState(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,2\n3,4\n")
	c := New(Options{})
	tab, err := c.Link("R", path)
	if err != nil {
		t.Fatal(err)
	}

	d := storage.NewDense(schema.Int64, 2)
	d.Ints = append(d.Ints, 1, 3)
	tab.SetDense(0, d)
	tab.SetNumRows(2)
	tab.PosMap.Record(0, 0, 0)
	tab.PosMap.Record(0, 1, 4)
	baseEntries := tab.PosMap.Entries()

	appendFile(t, path, "5,6\n7,8\n")
	changed, err := tab.Revalidate()
	if err != nil || !changed {
		t.Fatalf("growth revalidate: changed=%v err=%v", changed, err)
	}

	if got := tab.NumRows(); got != 4 {
		t.Errorf("rows after growth = %d, want 4", got)
	}
	ext := tab.Dense(0)
	if ext == nil {
		t.Fatal("dense column dropped by growth")
	}
	if len(ext.Ints) != 4 || ext.Ints[2] != 5 || ext.Ints[3] != 7 {
		t.Errorf("dense after growth = %v, want [1 3 5 7]", ext.Ints)
	}
	if tab.Dense(1) != nil {
		t.Error("unloaded column materialized by growth")
	}
	if got := tab.PosMap.Entries(); got <= baseEntries {
		t.Errorf("posmap entries = %d, want > %d (appended rows recorded)", got, baseEntries)
	}
	ing := tab.Ingest()
	if ing.AppendedRows != 2 || ing.Refreshes != 1 || ing.AppendedBytes != 8 {
		t.Errorf("ingest stats = %+v, want 2 rows / 8 bytes / 1 refresh", ing)
	}

	// The recorded signature must now describe the grown file, so an
	// immediate re-check is a no-op.
	if changed, err := tab.Revalidate(); err != nil || changed {
		t.Errorf("second revalidate after growth: changed=%v err=%v", changed, err)
	}
}

// TestRevalidateTailEdit pins the satellite: a same-size edit past the
// 4 KiB prefix probe — invisible to size, prefix CRC, and (with a
// restored timestamp) mtime — must still invalidate via the tail CRC.
func TestRevalidateTailEdit(t *testing.T) {
	dir := t.TempDir()
	// Push the edit beyond the prefix probe so only the tail CRC can see
	// it: > 4 KiB of rows, edit in the last line.
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString("11,22\n")
	}
	sb.WriteString("33,44\n")
	path := writeCSV(t, dir, "r.csv", sb.String())
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	c := New(Options{})
	tab, err := c.Link("R", path)
	if err != nil {
		t.Fatal(err)
	}
	d := storage.NewDense(schema.Int64, 1)
	d.Ints = append(d.Ints, 11)
	tab.SetDense(0, d)
	tab.SetNumRows(2001)

	// Rewrite the last row in place (same byte length) and restore the
	// original mtime — the stale-mtime text-editor scenario.
	edited := sb.String()[:sb.Len()-6] + "99,44\n"
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, time.Now(), st.ModTime()); err != nil {
		t.Fatal(err)
	}

	changed, err := tab.Revalidate()
	if err != nil || !changed {
		t.Fatalf("tail edit not detected: changed=%v err=%v", changed, err)
	}
	if tab.Dense(0) != nil || tab.NumRows() != -1 {
		t.Error("derived state survived a tail edit")
	}
}

// TestAddRegionCoalescing pins the satellite: interleaved partial loads
// whose ranges touch or overlap collapse into one region instead of
// fragmenting the coverage list.
func TestAddRegionCoalescing(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "r.csv", "1,2\n")
	c := New(Options{})
	tab, err := c.Link("R", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []int{0, 1} {
		tab.MergeSparse(col, []int64{0}, func(int) storage.Value { return storage.IntValue(int64(col + 1)) })
	}
	reg := func(lo, hi int64) Region {
		return Region{Ranges: map[int]intervals.Interval{0: {Lo: lo, Hi: hi}}, Cols: []int{0, 1}}
	}

	// Adjacent and overlapping fragments merge to their exact union.
	tab.AddRegion(reg(0, 10))
	tab.AddRegion(reg(10, 20)) // touches
	tab.AddRegion(reg(15, 30)) // overlaps
	if got := tab.Regions(); len(got) != 1 {
		t.Fatalf("regions = %d (%v), want 1 coalesced region", len(got), got)
	} else if iv := got[0].Ranges[0]; iv.Lo != 0 || iv.Hi != 30 {
		t.Errorf("coalesced range = %+v, want [0,30]", iv)
	}

	// A disjoint range stays separate...
	tab.AddRegion(reg(50, 60))
	if got := tab.Regions(); len(got) != 2 {
		t.Fatalf("regions = %d, want 2 (disjoint ranges must not union)", len(got))
	}
	// ...until a bridging load arrives, which collapses all fragments.
	tab.AddRegion(reg(25, 55))
	got := tab.Regions()
	if len(got) != 1 {
		t.Fatalf("regions = %d (%v), want 1 after bridging load", len(got), got)
	}
	if iv := got[0].Ranges[0]; iv.Lo != 0 || iv.Hi != 60 {
		t.Errorf("bridged range = %+v, want [0,60]", iv)
	}

	// A subsumed newcomer is a no-op; a wider newcomer replaces fragments.
	tab.AddRegion(reg(5, 7))
	if got := tab.Regions(); len(got) != 1 {
		t.Errorf("subsumed region fragmented the list: %v", got)
	}

	// A newcomer additionally constrained on another column is covered by
	// the existing region (which is unconstrained there) — still one.
	r2 := Region{Ranges: map[int]intervals.Interval{0: {Lo: 0, Hi: 60}, 1: {Lo: 0, Hi: 5}}, Cols: []int{0, 1}}
	tab.AddRegion(r2)
	if got := tab.Regions(); len(got) != 1 {
		t.Errorf("regions = %v, want the covered newcomer discarded", got)
	}
}
