package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"nodb/internal/schema"
)

// FuzzSnapshotReader throws arbitrary bytes at the snapshot reader. The
// contract under attack: whatever is on disk, the reader must never
// panic, and anything that fails validation must surface as an error —
// a header that parses but lies about section offsets, a truncated
// frame, a flipped byte inside a checksummed payload. (Wrong data that
// *passes* the CRCs is indistinguishable by construction; the corpus
// seeds mutated real snapshots so coverage reaches the validation
// branches rather than dying at the magic check.)
func FuzzSnapshotReader(f *testing.F) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, testSig(), fuzzTable(32)); err != nil {
		f.Fatal(err)
	}
	real := buf.Bytes()
	f.Add(append([]byte(nil), real...))
	f.Add(append([]byte(nil), real[:len(real)/2]...)) // truncated mid-section
	f.Add(append([]byte(nil), real[:16]...))          // truncated header
	f.Add([]byte{})
	f.Add([]byte("not a snapshot at all"))
	flip := append([]byte(nil), real...)
	flip[len(flip)/3] ^= 0xff // payload bit flip: index parses, CRC must catch it
	f.Add(flip)
	hdr := append([]byte(nil), real...)
	hdr[9] ^= 0x01 // header/section-table damage
	f.Add(hdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReaderAny(path, nil)
		if err != nil {
			return // rejected up front — the only other acceptable outcome
		}
		defer r.Close()
		// Walk every accessor; errors are fine, panics and hangs are not.
		r.Sig()
		r.Rows()
		r.Truncated()
		for _, col := range r.DenseCols() {
			_, _ = r.Dense(col)
		}
		_, _ = r.PosMap()
		_, _ = r.Sparse()
		_, _ = r.Regions()
		_, _ = r.Synopsis()
		_, _ = r.SplitsManifest()
	})
}

// fuzzTable mirrors the round-trip test table: every section kind
// populated so the seed corpus exercises every decoder.
func fuzzTable(rows int) *Table {
	t := &Table{Rows: int64(rows)}
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	strs := make([]string, rows)
	offs := make([]int64, rows)
	rowIDs := make([]int64, rows)
	for i := 0; i < rows; i++ {
		ints[i] = int64(i * 3)
		floats[i] = float64(i) / 2
		strs[i] = string(rune('a' + i%26))
		offs[i] = int64(i * 17)
		rowIDs[i] = int64(i)
	}
	t.Dense = append(t.Dense,
		DenseCol{Col: 0, Typ: schema.Int64, Ints: ints},
		DenseCol{Col: 1, Typ: schema.Float64, Floats: floats},
		DenseCol{Col: 2, Typ: schema.String, Strs: strs},
	)
	t.PosMap = append(t.PosMap, PosMapCol{Col: 0, Rows: rowIDs, Offs: offs})
	t.Sparse = append(t.Sparse, SparseCol{Col: 3, Typ: schema.Int64, Rows: []int64{1, 5, 9}, Ints: []int64{10, 50, 90}})
	t.Regions = append(t.Regions, Region{Cols: []int{3}, RangeCols: []int{3}, Los: []int64{0}, His: []int64{100}})
	t.Splits = &Splits{Seq: 2, Sidecars: map[int]string{0: "/tmp/x.c0.col"}}
	return t
}
