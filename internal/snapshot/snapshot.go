// Package snapshot implements the disk tier of the adaptive store: a
// versioned, checksummed on-disk cache of the auxiliary structures the
// engine learns from queries — positional maps, cached (dense) columns,
// retained partial loads with their coverage regions, and split-file
// manifests.
//
// The paper treats all of this state as "auxiliary data we are not afraid
// to lose", and the engine honors that: everything here is disposable and
// rebuilt from the raw file on demand. But rebuilding is not free — a
// positional map accumulates over many query passes, and a restarted
// server re-pays the whole adaptive learning curve under live traffic.
// Snapshots make the learning curve durable: a table's structures are
// serialized on close (and periodically by the server), and lazily
// restored on the first query after a restart, so a warm restart starts
// where the previous process left off. The same machinery backs
// spill-instead-of-discard eviction: when the memory governor reclaims an
// expensive structure, it is written here first and re-admitted on demand,
// turning the rebuild cost into a deserialize.
//
// # File format
//
// A snapshot file is a magic header followed by self-describing sections:
//
//	magic "NODBSNAP" | version u16
//	section: kind u8 | col i32 | payload-len u64 | payload | crc32 u32
//
// The first section is always the header: the raw file's signature (size,
// mtime, prefix CRC — the catalog's invalidation key) plus the discovered
// row count. A snapshot whose signature does not match the current raw
// file is stale and self-invalidates; nothing from it is used. Every
// section carries its own CRC32 over the payload, so a torn or corrupted
// write degrades to a cold start for the affected structures — never a
// wrong answer. Sections after the header can be read lazily and in any
// order: the Reader indexes section framing without touching payloads,
// and a query that only needs one cached column decodes only that
// section's bytes.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"nodb/internal/errs"
	"nodb/internal/schema"
	"nodb/internal/vfs"
)

// Magic and version identify the file format. Bump version on any layout
// change: old files then fail the header check and count as stale.
const (
	magic   = "NODBSNAP"
	version = 2 // v2: Sig gained the tail CRC (append-aware invalidation)
)

// Section kinds.
const (
	kindHeader   = 1 // raw-file signature + row count
	kindPosMap   = 2 // positional map, one section per attribute
	kindDense    = 3 // fully loaded column, one section per attribute
	kindSparse   = 4 // retained partial-load column, one section per attribute
	kindRegions  = 5 // covered regions of the adaptive store
	kindSplits   = 6 // split-file manifest (paths only; data stays in place)
	kindSynopsis = 7 // per-portion scan synopsis (layout + zone maps)
)

// ErrStale reports a snapshot written for a different version of the raw
// file (the signature in its header does not match). Stale snapshots are
// discarded wholesale.
var ErrStale = errors.New("snapshot: stale (raw file changed)")

// ErrCorrupt reports a snapshot section whose framing or checksum is
// invalid (torn write, truncation, bit rot). Corruption never surfaces to
// the query path: the affected structure is simply not restored. It
// matches errs.ErrSnapshotCorrupt, so callers outside this package can
// classify through the engine-wide taxonomy.
var ErrCorrupt = fmt.Errorf("snapshot: %w", errs.ErrSnapshotCorrupt)

// Sig is the raw file's identity: any edit to the file changes it, which
// invalidates every snapshot keyed by the old value. It mirrors the
// catalog's file signature.
type Sig struct {
	Size    int64
	ModTime int64
	Prefix  uint32
	// Tail is the CRC of the file's last bytes (up to 4 KiB). Together
	// with Prefix it lets a reopened snapshot distinguish "file grew by
	// appending" (prefix still verifies against the stored size) from
	// "file rewritten" — even when the rewrite kept the size.
	Tail uint32
}

// PosMapCol is the serialized positional map of one attribute: parallel
// (row, byte-offset) slices sorted by row.
type PosMapCol struct {
	Col  int
	Rows []int64
	Offs []int64
}

// DenseCol is a serialized fully-loaded column.
type DenseCol struct {
	Col    int
	Typ    schema.Type
	Ints   []int64
	Floats []float64
	Strs   []string
}

// SparseCol is a serialized partially-loaded column: the present row ids
// plus their values.
type SparseCol struct {
	Col    int
	Typ    schema.Type
	Rows   []int64
	Ints   []int64
	Floats []float64
	Strs   []string
}

// Region is a serialized covered region: the columns whose qualifying
// values were materialized, and the per-column value ranges the load
// qualified on (parallel RangeCols/Los/His slices).
type Region struct {
	Cols      []int
	RangeCols []int
	Los       []int64
	His       []int64
}

// RestFile is one residual split file: a contiguous suffix of the
// original attributes.
type RestFile struct {
	Path string
	Cols []int
}

// Splits is a split-file manifest: where each attribute's sidecar and the
// residual files live on disk. Only paths are recorded — the split data
// itself already lives in files.
type Splits struct {
	Seq      int
	Sidecars map[int]string
	Rests    []RestFile
}

// SynCol is one column's serialized zone-map bounds within one portion.
type SynCol struct {
	Col                int
	Typ                schema.Type
	MinI, MaxI         int64
	MinF, MaxF         float64
	MinS, MaxS         string
	MinExact, MaxExact bool
}

// SynPortion is one portion of the serialized scan synopsis: its byte
// range, row ids, and the fully-covered column bounds.
type SynPortion struct {
	Off, End, FirstRow, Rows int64
	Cols                     []SynCol
}

// Table is the full serializable state of one table's auxiliary
// structures. Any field may be empty; a snapshot holds whatever the
// engine had learned.
type Table struct {
	Rows     int64
	PosMap   []PosMapCol
	Dense    []DenseCol
	Sparse   []SparseCol
	Regions  []Region
	Splits   *Splits
	Synopsis []SynPortion
}

// sectionWriter buffers one section's payload so the frame (length + CRC)
// can be written around it.
type sectionWriter struct {
	buf []byte
}

func (w *sectionWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *sectionWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *sectionWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *sectionWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *sectionWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}

func (w *sectionWriter) i64s(vs []int64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.i64(v)
	}
}

func (w *sectionWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Encode writes sig and t as a snapshot stream. It returns the total
// bytes written.
func Encode(w io.Writer, sig Sig, t *Table) (int64, error) {
	var n int64
	write := func(b []byte) error {
		m, err := w.Write(b)
		n += int64(m)
		return err
	}
	hdr := make([]byte, 0, len(magic)+2)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, version)
	if err := write(hdr); err != nil {
		return n, err
	}

	section := func(kind uint8, col int, payload []byte) error {
		frame := make([]byte, 0, 13)
		frame = append(frame, kind)
		frame = binary.LittleEndian.AppendUint32(frame, uint32(int32(col)))
		frame = binary.LittleEndian.AppendUint64(frame, uint64(len(payload)))
		if err := write(frame); err != nil {
			return err
		}
		if err := write(payload); err != nil {
			return err
		}
		crc := make([]byte, 4)
		binary.LittleEndian.PutUint32(crc, crc32.ChecksumIEEE(payload))
		return write(crc)
	}

	var sw sectionWriter
	sw.i64(sig.Size)
	sw.i64(sig.ModTime)
	sw.u32(sig.Prefix)
	sw.u32(sig.Tail)
	sw.i64(t.Rows)
	if err := section(kindHeader, -1, sw.buf); err != nil {
		return n, err
	}

	for _, pm := range t.PosMap {
		sw = sectionWriter{}
		sw.i64s(pm.Rows)
		sw.i64s(pm.Offs)
		if err := section(kindPosMap, pm.Col, sw.buf); err != nil {
			return n, err
		}
	}
	for _, d := range t.Dense {
		sw = sectionWriter{}
		encodeValues(&sw, d.Typ, d.Ints, d.Floats, d.Strs)
		if err := section(kindDense, d.Col, sw.buf); err != nil {
			return n, err
		}
	}
	for _, s := range t.Sparse {
		sw = sectionWriter{}
		sw.i64s(s.Rows)
		encodeValues(&sw, s.Typ, s.Ints, s.Floats, s.Strs)
		if err := section(kindSparse, s.Col, sw.buf); err != nil {
			return n, err
		}
	}
	if len(t.Regions) > 0 {
		sw = sectionWriter{}
		sw.u32(uint32(len(t.Regions)))
		for _, r := range t.Regions {
			sw.u32(uint32(len(r.Cols)))
			for _, c := range r.Cols {
				sw.u32(uint32(int32(c)))
			}
			sw.u32(uint32(len(r.RangeCols)))
			for i, c := range r.RangeCols {
				sw.u32(uint32(int32(c)))
				sw.i64(r.Los[i])
				sw.i64(r.His[i])
			}
		}
		if err := section(kindRegions, -1, sw.buf); err != nil {
			return n, err
		}
	}
	if t.Splits != nil && (len(t.Splits.Sidecars) > 0 || len(t.Splits.Rests) > 0) {
		sw = sectionWriter{}
		sw.u32(uint32(t.Splits.Seq))
		sw.u32(uint32(len(t.Splits.Sidecars)))
		for _, c := range sortedKeys(t.Splits.Sidecars) {
			sw.u32(uint32(int32(c)))
			sw.str(t.Splits.Sidecars[c])
		}
		sw.u32(uint32(len(t.Splits.Rests)))
		for _, rf := range t.Splits.Rests {
			sw.str(rf.Path)
			sw.u32(uint32(len(rf.Cols)))
			for _, c := range rf.Cols {
				sw.u32(uint32(int32(c)))
			}
		}
		if err := section(kindSplits, -1, sw.buf); err != nil {
			return n, err
		}
	}
	if len(t.Synopsis) > 0 {
		sw = sectionWriter{}
		sw.u32(uint32(len(t.Synopsis)))
		for _, p := range t.Synopsis {
			sw.i64(p.Off)
			sw.i64(p.End)
			sw.i64(p.FirstRow)
			sw.i64(p.Rows)
			sw.u32(uint32(len(p.Cols)))
			for _, c := range p.Cols {
				sw.u32(uint32(int32(c.Col)))
				sw.u8(uint8(c.Typ))
				sw.u8(boolBits(c.MinExact, c.MaxExact))
				sw.i64(c.MinI)
				sw.i64(c.MaxI)
				sw.f64(c.MinF)
				sw.f64(c.MaxF)
				sw.str(c.MinS)
				sw.str(c.MaxS)
			}
		}
		if err := section(kindSynopsis, -1, sw.buf); err != nil {
			return n, err
		}
	}
	return n, nil
}

func boolBits(a, b bool) uint8 {
	var v uint8
	if a {
		v |= 1
	}
	if b {
		v |= 2
	}
	return v
}

func encodeValues(sw *sectionWriter, typ schema.Type, ints []int64, floats []float64, strs []string) {
	sw.u8(uint8(typ))
	switch typ {
	case schema.Int64:
		sw.i64s(ints)
	case schema.Float64:
		sw.u64(uint64(len(floats)))
		for _, v := range floats {
			sw.f64(v)
		}
	default:
		sw.u64(uint64(len(strs)))
		for _, s := range strs {
			sw.str(s)
		}
	}
}

func sortedKeys(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// payloadReader decodes one section's payload; every read is
// bounds-checked so a corrupt length degrades to ErrCorrupt, never a
// panic.
type payloadReader struct {
	buf []byte
	off int
	err error
}

func (r *payloadReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) || r.off+n < r.off {
		r.err = ErrCorrupt
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *payloadReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *payloadReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *payloadReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *payloadReader) i64() int64 { return int64(r.u64()) }

// count validates a declared element count against the bytes that remain,
// so hostile lengths cannot drive huge allocations.
func (r *payloadReader) count(elemBytes int) int {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if elemBytes > 0 && n > uint64(len(r.buf)-r.off)/uint64(elemBytes) {
		r.err = ErrCorrupt
		return 0
	}
	return int(n)
}

func (r *payloadReader) i64s() []int64 {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	return out
}

func (r *payloadReader) str() string {
	n := r.u32()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

func decodeValues(r *payloadReader) (typ schema.Type, ints []int64, floats []float64, strs []string) {
	typ = schema.Type(r.u8())
	switch typ {
	case schema.Int64:
		ints = r.i64s()
	case schema.Float64:
		n := r.count(8)
		if r.err == nil && n > 0 {
			floats = make([]float64, n)
			for i := range floats {
				floats[i] = math.Float64frombits(r.u64())
			}
		}
	case schema.String:
		n := r.count(4)
		if r.err == nil && n > 0 {
			strs = make([]string, n)
			for i := range strs {
				strs[i] = r.str()
			}
		}
	default:
		r.err = ErrCorrupt
	}
	return
}

// sectionInfo locates one section inside the file.
type sectionInfo struct {
	kind uint8
	col  int
	off  int64 // payload offset
	len  int64 // payload length
}

// Reader provides lazy, section-granular access to a snapshot file. The
// index pass reads only section frames (13 bytes each) and seeks past
// payloads, so opening a large snapshot is cheap; payload bytes are read
// and CRC-checked only when a structure is actually restored. Reader is
// not safe for concurrent use; the catalog serializes access.
type Reader struct {
	f        vfs.File
	sig      Sig
	rows     int64
	sections []sectionInfo
	// truncated reports that the index pass hit a bad frame or early EOF:
	// sections indexed before that point remain usable.
	truncated bool
	// onRead observes payload bytes actually read (cost accounting).
	onRead func(int64)
}

// OpenReader opens a snapshot file and verifies its header against want.
// A missing file returns (nil, fs.ErrNotExist-wrapped error); a header
// that fails to parse returns ErrCorrupt; a signature mismatch returns
// ErrStale. onRead (may be nil) observes every payload byte read.
func OpenReader(path string, want Sig, onRead func(int64)) (*Reader, error) {
	return openReader(nil, path, &want, onRead)
}

// OpenReaderFS is OpenReader through an explicit filesystem.
func OpenReaderFS(fsys vfs.FS, path string, want Sig, onRead func(int64)) (*Reader, error) {
	return openReader(fsys, path, &want, onRead)
}

// OpenReaderAny opens a snapshot without a signature check: the stored
// signature is exposed via Sig() and the caller decides whether the
// snapshot is usable (e.g. whether the raw file is a prefix-stable growth
// of the snapshotted version). Everything else matches OpenReader.
func OpenReaderAny(path string, onRead func(int64)) (*Reader, error) {
	return openReader(nil, path, nil, onRead)
}

// OpenReaderAnyFS is OpenReaderAny through an explicit filesystem.
func OpenReaderAnyFS(fsys vfs.FS, path string, onRead func(int64)) (*Reader, error) {
	return openReader(fsys, path, nil, onRead)
}

func openReader(fsys vfs.FS, path string, want *Sig, onRead func(int64)) (*Reader, error) {
	f, err := vfs.Default(fsys).Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, onRead: onRead}
	if err := r.index(want); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) index(want *Sig) error {
	hdr := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(r.f, hdr); err != nil {
		return ErrCorrupt
	}
	if string(hdr[:len(magic)]) != magic || binary.LittleEndian.Uint16(hdr[len(magic):]) != version {
		return ErrCorrupt
	}
	off := int64(len(hdr))
	frame := make([]byte, 13)
	first := true
	for {
		if _, err := io.ReadFull(r.f, frame); err != nil {
			if err == io.EOF && !first {
				return nil // clean end of file
			}
			if first {
				return ErrCorrupt
			}
			r.truncated = true
			return nil
		}
		info := sectionInfo{
			kind: frame[0],
			col:  int(int32(binary.LittleEndian.Uint32(frame[1:5]))),
			off:  off + 13,
			len:  int64(binary.LittleEndian.Uint64(frame[5:13])),
		}
		if info.len < 0 {
			r.truncated = !first
			if first {
				return ErrCorrupt
			}
			return nil
		}
		end := info.off + info.len + 4 // payload + crc
		if first {
			// The header section is always decoded eagerly: it carries the
			// staleness check everything else depends on.
			if info.kind != kindHeader {
				return ErrCorrupt
			}
			payload, err := r.payloadAt(info)
			if err != nil {
				return ErrCorrupt
			}
			pr := payloadReader{buf: payload}
			r.sig = Sig{Size: pr.i64(), ModTime: pr.i64(), Prefix: pr.u32(), Tail: pr.u32()}
			r.rows = pr.i64()
			if pr.err != nil {
				return ErrCorrupt
			}
			if want != nil && r.sig != *want {
				return ErrStale
			}
			first = false
		} else {
			// Probe that the section is fully present before indexing it;
			// a truncated tail is dropped here rather than discovered (and
			// re-discovered) at read time.
			st, err := r.f.Stat()
			if err != nil || end > st.Size() {
				r.truncated = true
				return nil
			}
			r.sections = append(r.sections, info)
		}
		if _, err := r.f.Seek(end, io.SeekStart); err != nil {
			r.truncated = true
			return nil
		}
		off = end
	}
}

// payloadAt reads and CRC-checks one section's payload. The declared
// length is validated against the file's actual size first, so a
// corrupted length field cannot drive an outsized allocation.
func (r *Reader) payloadAt(info sectionInfo) ([]byte, error) {
	st, err := r.f.Stat()
	if err != nil || info.len < 0 || info.off+info.len+4 > st.Size() || info.off+info.len < info.off {
		return nil, ErrCorrupt
	}
	buf := make([]byte, info.len+4)
	if _, err := r.f.ReadAt(buf, info.off); err != nil {
		return nil, ErrCorrupt
	}
	payload := buf[:info.len]
	want := binary.LittleEndian.Uint32(buf[info.len:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrCorrupt
	}
	if r.onRead != nil {
		r.onRead(info.len + 17) // payload + frame + crc
	}
	return payload, nil
}

// Sig returns the signature the snapshot was written for.
func (r *Reader) Sig() Sig { return r.sig }

// Rows returns the row count recorded in the header (0 if unknown).
func (r *Reader) Rows() int64 { return r.rows }

// Truncated reports whether the index pass stopped at a damaged frame;
// sections indexed before the damage remain readable.
func (r *Reader) Truncated() bool { return r.truncated }

func (r *Reader) find(kind uint8, col int) (sectionInfo, bool) {
	for _, s := range r.sections {
		if s.kind == kind && s.col == col {
			return s, true
		}
	}
	return sectionInfo{}, false
}

// HasDense reports whether a dense section for col is present.
func (r *Reader) HasDense(col int) bool {
	_, ok := r.find(kindDense, col)
	return ok
}

// DenseCols returns the columns with an indexed dense section, ascending.
func (r *Reader) DenseCols() []int {
	var out []int
	for _, s := range r.sections {
		if s.kind == kindDense {
			out = append(out, s.col)
		}
	}
	sort.Ints(out)
	return out
}

// ForgetDense removes col's dense section from the index (it failed
// validation; retrying would fail the same way).
func (r *Reader) ForgetDense(col int) {
	kept := r.sections[:0]
	for _, s := range r.sections {
		if !(s.kind == kindDense && s.col == col) {
			kept = append(kept, s)
		}
	}
	r.sections = kept
}

// DenseBytes returns the on-disk payload size of col's dense section, or
// 0 when absent. The governor prices re-admission of a snapshotted column
// with it.
func (r *Reader) DenseBytes(col int) int64 {
	s, ok := r.find(kindDense, col)
	if !ok {
		return 0
	}
	return s.len
}

// Dense decodes the dense column section for col.
func (r *Reader) Dense(col int) (DenseCol, error) {
	s, ok := r.find(kindDense, col)
	if !ok {
		return DenseCol{}, fmt.Errorf("%w: no dense section for col %d", ErrCorrupt, col)
	}
	payload, err := r.payloadAt(s)
	if err != nil {
		return DenseCol{}, err
	}
	pr := payloadReader{buf: payload}
	typ, ints, floats, strs := decodeValues(&pr)
	if pr.err != nil {
		return DenseCol{}, pr.err
	}
	return DenseCol{Col: col, Typ: typ, Ints: ints, Floats: floats, Strs: strs}, nil
}

// HasPosMap reports whether any positional-map sections are present.
func (r *Reader) HasPosMap() bool {
	for _, s := range r.sections {
		if s.kind == kindPosMap {
			return true
		}
	}
	return false
}

// PosMap decodes every positional-map section. Corrupt columns are
// skipped (the map is an opportunistic cache); err reports the first
// corruption seen so the caller can count the invalidation.
func (r *Reader) PosMap() ([]PosMapCol, error) {
	var out []PosMapCol
	var firstErr error
	for _, s := range r.sections {
		if s.kind != kindPosMap {
			continue
		}
		payload, err := r.payloadAt(s)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pr := payloadReader{buf: payload}
		rows := pr.i64s()
		offs := pr.i64s()
		if pr.err != nil || len(rows) != len(offs) {
			if firstErr == nil {
				firstErr = ErrCorrupt
			}
			continue
		}
		out = append(out, PosMapCol{Col: s.col, Rows: rows, Offs: offs})
	}
	return out, firstErr
}

// Sparse decodes every sparse column section, skipping corrupt ones.
func (r *Reader) Sparse() ([]SparseCol, error) {
	var out []SparseCol
	var firstErr error
	for _, s := range r.sections {
		if s.kind != kindSparse {
			continue
		}
		payload, err := r.payloadAt(s)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pr := payloadReader{buf: payload}
		rows := pr.i64s()
		typ, ints, floats, strs := decodeValues(&pr)
		if pr.err != nil {
			if firstErr == nil {
				firstErr = pr.err
			}
			continue
		}
		out = append(out, SparseCol{Col: s.col, Typ: typ, Rows: rows, Ints: ints, Floats: floats, Strs: strs})
	}
	return out, firstErr
}

// Regions decodes the covered-region section (nil when absent).
func (r *Reader) Regions() ([]Region, error) {
	s, ok := r.find(kindRegions, -1)
	if !ok {
		return nil, nil
	}
	payload, err := r.payloadAt(s)
	if err != nil {
		return nil, err
	}
	pr := payloadReader{buf: payload}
	n := int(pr.u32())
	if n < 0 || n > len(payload) {
		return nil, ErrCorrupt
	}
	out := make([]Region, 0, n)
	for i := 0; i < n && pr.err == nil; i++ {
		var reg Region
		nc := int(pr.u32())
		if pr.err != nil || nc > len(payload) {
			return nil, ErrCorrupt
		}
		for j := 0; j < nc; j++ {
			reg.Cols = append(reg.Cols, int(int32(pr.u32())))
		}
		nr := int(pr.u32())
		if pr.err != nil || nr > len(payload) {
			return nil, ErrCorrupt
		}
		for j := 0; j < nr; j++ {
			reg.RangeCols = append(reg.RangeCols, int(int32(pr.u32())))
			reg.Los = append(reg.Los, pr.i64())
			reg.His = append(reg.His, pr.i64())
		}
		out = append(out, reg)
	}
	if pr.err != nil {
		return nil, pr.err
	}
	return out, nil
}

// Synopsis decodes the scan-synopsis section (nil when absent).
func (r *Reader) Synopsis() ([]SynPortion, error) {
	s, ok := r.find(kindSynopsis, -1)
	if !ok {
		return nil, nil
	}
	payload, err := r.payloadAt(s)
	if err != nil {
		return nil, err
	}
	pr := payloadReader{buf: payload}
	n := int(pr.u32())
	if pr.err != nil || n < 0 || n > len(payload) {
		return nil, ErrCorrupt
	}
	out := make([]SynPortion, 0, n)
	for i := 0; i < n && pr.err == nil; i++ {
		p := SynPortion{Off: pr.i64(), End: pr.i64(), FirstRow: pr.i64(), Rows: pr.i64()}
		nc := int(pr.u32())
		if pr.err != nil || nc < 0 || nc > len(payload) {
			return nil, ErrCorrupt
		}
		for j := 0; j < nc; j++ {
			c := SynCol{Col: int(int32(pr.u32())), Typ: schema.Type(pr.u8())}
			bits := pr.u8()
			c.MinExact, c.MaxExact = bits&1 != 0, bits&2 != 0
			c.MinI = pr.i64()
			c.MaxI = pr.i64()
			c.MinF = math.Float64frombits(pr.u64())
			c.MaxF = math.Float64frombits(pr.u64())
			c.MinS = pr.str()
			c.MaxS = pr.str()
			p.Cols = append(p.Cols, c)
		}
		out = append(out, p)
	}
	if pr.err != nil {
		return nil, pr.err
	}
	return out, nil
}

// SplitsManifest decodes the split-file manifest (nil when absent).
func (r *Reader) SplitsManifest() (*Splits, error) {
	s, ok := r.find(kindSplits, -1)
	if !ok {
		return nil, nil
	}
	payload, err := r.payloadAt(s)
	if err != nil {
		return nil, err
	}
	return decodeSplits(&payloadReader{buf: payload})
}

func decodeSplits(pr *payloadReader) (*Splits, error) {
	out := &Splits{Seq: int(pr.u32()), Sidecars: map[int]string{}}
	n := int(pr.u32())
	if pr.err != nil || n > len(pr.buf) {
		return nil, ErrCorrupt
	}
	for i := 0; i < n; i++ {
		c := int(int32(pr.u32()))
		out.Sidecars[c] = pr.str()
	}
	n = int(pr.u32())
	if pr.err != nil || n > len(pr.buf) {
		return nil, ErrCorrupt
	}
	for i := 0; i < n; i++ {
		rf := RestFile{Path: pr.str()}
		nc := int(pr.u32())
		if pr.err != nil || nc > len(pr.buf) {
			return nil, ErrCorrupt
		}
		for j := 0; j < nc; j++ {
			rf.Cols = append(rf.Cols, int(int32(pr.u32())))
		}
		out.Rests = append(out.Rests, rf)
	}
	if pr.err != nil {
		return nil, pr.err
	}
	return out, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// DecodeAll eagerly decodes a whole snapshot file (spill files are small
// and always wanted whole). Semantics match OpenReader for staleness and
// corruption; a truncated tail yields ErrCorrupt.
func DecodeAll(path string, want Sig, onRead func(int64)) (*Table, error) {
	return DecodeAllFS(nil, path, want, onRead)
}

// DecodeAllFS is DecodeAll through an explicit filesystem.
func DecodeAllFS(fsys vfs.FS, path string, want Sig, onRead func(int64)) (*Table, error) {
	r, err := openReader(fsys, path, &want, onRead)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	t := &Table{Rows: r.Rows()}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if r.Truncated() {
		keep(ErrCorrupt)
	}
	pm, err := r.PosMap()
	keep(err)
	t.PosMap = pm
	for _, s := range r.sections {
		if s.kind != kindDense {
			continue
		}
		d, err := r.Dense(s.col)
		if err != nil {
			keep(err)
			continue
		}
		t.Dense = append(t.Dense, d)
	}
	sp, err := r.Sparse()
	keep(err)
	t.Sparse = sp
	regs, err := r.Regions()
	keep(err)
	t.Regions = regs
	spl, err := r.SplitsManifest()
	keep(err)
	t.Splits = spl
	sy, err := r.Synopsis()
	keep(err)
	t.Synopsis = sy
	if firstErr != nil {
		return nil, firstErr
	}
	return t, nil
}
