package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nodb/internal/metrics"
	"nodb/internal/schema"
)

func testSig() Sig { return Sig{Size: 12345, ModTime: 987654321, Prefix: 0xdeadbeef} }

func testTable(rows int) *Table {
	t := &Table{Rows: int64(rows)}
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	strs := make([]string, rows)
	offs := make([]int64, rows)
	for i := range ints {
		ints[i] = int64(i * 3)
		floats[i] = float64(i) / 2
		strs[i] = fmt.Sprintf("v%d", i)
		offs[i] = int64(i * 17)
	}
	rowIDs := make([]int64, rows)
	for i := range rowIDs {
		rowIDs[i] = int64(i)
	}
	t.Dense = append(t.Dense,
		DenseCol{Col: 0, Typ: schema.Int64, Ints: ints},
		DenseCol{Col: 1, Typ: schema.Float64, Floats: floats},
		DenseCol{Col: 2, Typ: schema.String, Strs: strs},
	)
	t.PosMap = append(t.PosMap, PosMapCol{Col: 0, Rows: rowIDs, Offs: offs})
	t.Sparse = append(t.Sparse, SparseCol{
		Col: 3, Typ: schema.Int64,
		Rows: []int64{1, 5, 9}, Ints: []int64{10, 50, 90},
	})
	t.Regions = append(t.Regions, Region{
		Cols: []int{3}, RangeCols: []int{3}, Los: []int64{0}, His: []int64{100},
	})
	t.Splits = &Splits{
		Seq:      2,
		Sidecars: map[int]string{0: "/tmp/x.c0.col"},
		Rests:    []RestFile{{Path: "/tmp/x.rest1.csv", Cols: []int{1, 2, 3}}},
	}
	return t
}

func writeSnap(t *testing.T, tbl *Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(f, testSig(), tbl); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	want := testTable(100)
	path := writeSnap(t, want)

	got, err := DecodeAll(path, testSig(), nil)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if got.Rows != want.Rows {
		t.Errorf("rows = %d, want %d", got.Rows, want.Rows)
	}
	if len(got.Dense) != 3 || len(got.PosMap) != 1 || len(got.Sparse) != 1 || len(got.Regions) != 1 {
		t.Fatalf("section counts: dense=%d posmap=%d sparse=%d regions=%d",
			len(got.Dense), len(got.PosMap), len(got.Sparse), len(got.Regions))
	}
	for i := range want.Dense[0].Ints {
		if got.Dense[0].Ints[i] != want.Dense[0].Ints[i] {
			t.Fatalf("dense int %d = %d, want %d", i, got.Dense[0].Ints[i], want.Dense[0].Ints[i])
		}
	}
	if got.Dense[1].Floats[7] != want.Dense[1].Floats[7] {
		t.Error("float column mismatch")
	}
	if got.Dense[2].Strs[13] != "v13" {
		t.Errorf("string column mismatch: %q", got.Dense[2].Strs[13])
	}
	if got.PosMap[0].Offs[50] != 50*17 {
		t.Error("posmap mismatch")
	}
	if got.Sparse[0].Rows[2] != 9 || got.Sparse[0].Ints[2] != 90 {
		t.Error("sparse mismatch")
	}
	r := got.Regions[0]
	if len(r.Cols) != 1 || r.Cols[0] != 3 || r.Los[0] != 0 || r.His[0] != 100 {
		t.Errorf("region mismatch: %+v", r)
	}
	if got.Splits == nil || got.Splits.Sidecars[0] != "/tmp/x.c0.col" || got.Splits.Seq != 2 {
		t.Errorf("splits mismatch: %+v", got.Splits)
	}
	if len(got.Splits.Rests) != 1 || got.Splits.Rests[0].Cols[2] != 3 {
		t.Errorf("rests mismatch: %+v", got.Splits)
	}
}

func TestStaleSignature(t *testing.T) {
	path := writeSnap(t, testTable(10))
	other := testSig()
	other.ModTime++
	if _, err := DecodeAll(path, other, nil); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
}

func TestLazyReaderSelective(t *testing.T) {
	path := writeSnap(t, testTable(200))
	var read int64
	r, err := OpenReader(path, testSig(), func(n int64) { read += n })
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	openCost := read
	if r.Rows() != 200 {
		t.Fatalf("rows = %d", r.Rows())
	}
	if !r.HasDense(1) || r.HasDense(9) {
		t.Fatal("dense index wrong")
	}
	if got := r.DenseCols(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("DenseCols = %v", got)
	}
	if b := r.DenseBytes(0); b != int64(1+8+200*8) {
		t.Fatalf("DenseBytes(0) = %d", b)
	}
	d, err := r.Dense(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Floats) != 200 {
		t.Fatalf("decoded %d floats", len(d.Floats))
	}
	// Opening reads only the header; decoding one column must not have
	// paid for the string column or the positional map.
	st, _ := os.Stat(path)
	if read >= st.Size() {
		t.Fatalf("lazy read consumed %d of %d file bytes", read, st.Size())
	}
	if openCost > 64 {
		t.Fatalf("open alone read %d payload bytes", openCost)
	}
}

// corruptAt flips one byte at off.
func corruptAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptSectionIsIsolated(t *testing.T) {
	path := writeSnap(t, testTable(100))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte ~2/3 into the file: lands in a later section's payload.
	corruptAt(t, path, st.Size()*2/3)

	r, err := OpenReader(path, testSig(), nil)
	if err != nil {
		t.Fatalf("OpenReader after payload corruption: %v", err)
	}
	defer r.Close()
	bad := 0
	for _, c := range r.DenseCols() {
		if _, err := r.Dense(c); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			bad++
		}
	}
	if _, err := r.PosMap(); err != nil && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("posmap: %v", err)
	}
	if _, err := r.Sparse(); err != nil && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sparse: %v", err)
	}
	if bad == 0 {
		// The flip landed outside dense payloads; it must then surface in
		// posmap/sparse/regions/splits instead — either way DecodeAll sees it.
		if _, err := DecodeAll(path, testSig(), nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corruption vanished: DecodeAll err = %v", err)
		}
	}
}

func TestTruncationMidSection(t *testing.T) {
	path := writeSnap(t, testTable(100))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int64{2, 3, 10} {
		trunc := filepath.Join(t.TempDir(), "trunc.snap")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(trunc, data[:st.Size()/frac], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(trunc, testSig(), nil)
		if err != nil {
			// Truncated before the header completes: whole file rejected.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("1/%d: err = %v, want ErrCorrupt", frac, err)
			}
			continue
		}
		if !r.Truncated() && frac > 1 {
			// Only acceptable if truncation fell exactly on a section edge.
			t.Logf("1/%d: truncation on a section boundary", frac)
		}
		// Every indexed section must still decode cleanly (the index pass
		// excluded anything reaching past EOF).
		for _, c := range r.DenseCols() {
			if _, err := r.Dense(c); err != nil {
				t.Fatalf("1/%d: indexed section corrupt: %v", frac, err)
			}
		}
		r.Close()
	}
}

func TestTruncatedHeader(t *testing.T) {
	path := writeSnap(t, testTable(5))
	data, _ := os.ReadFile(path)
	for _, n := range []int{0, 4, 9, 12, 20} {
		p := filepath.Join(t.TempDir(), "h.snap")
		if err := os.WriteFile(p, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenReader(p, testSig(), nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("len %d: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestGarbageFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "g.snap")
	if err := os.WriteFile(p, bytes.Repeat([]byte{0x5a}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(p, testSig(), nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestStoreSaveLoadInvalidate(t *testing.T) {
	var c metrics.Counters
	s := NewStore(t.TempDir(), &c)
	var logged []string
	s.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }

	key := Key("events", "/data/events.csv")
	if r := s.Open(key, testSig()); r != nil {
		t.Fatal("open of absent snapshot returned a reader")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if err := s.Save(key, testSig(), testTable(50)); err != nil {
		t.Fatal(err)
	}
	r := s.Open(key, testSig())
	if r == nil {
		t.Fatal("open after save failed")
	}
	r.Close()
	if st := s.Stats(); st.Hits != 1 || st.Saves != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A stale snapshot (file "edited") is removed, counted, and logged.
	newer := testSig()
	newer.Size++
	if r := s.Open(key, newer); r != nil {
		t.Fatal("stale snapshot served")
	}
	if st := s.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	if len(logged) == 0 {
		t.Fatal("invalidation was not logged")
	}
	if _, err := os.Stat(s.SnapPath(key)); !os.IsNotExist(err) {
		t.Fatal("stale snapshot file not removed")
	}
	if c.Snapshot().SnapshotInvalid != 1 {
		t.Fatal("metrics counter not fed")
	}
}

func TestStoreSpillRoundTrip(t *testing.T) {
	s := NewStore(t.TempDir(), nil)
	s.Logf = func(string, ...any) {}
	key := Key("t", "/x.csv")
	want := &Table{Rows: 10, PosMap: []PosMapCol{{Col: 2, Rows: []int64{0, 1}, Offs: []int64{5, 11}}}}
	if err := s.SaveSpill(key, "posmap", testSig(), want); err != nil {
		t.Fatal(err)
	}
	if !s.HasSpill(key, "posmap") {
		t.Fatal("spill not detected")
	}
	got := s.LoadSpill(key, "posmap", testSig())
	if got == nil || len(got.PosMap) != 1 || got.PosMap[0].Offs[1] != 11 {
		t.Fatalf("spill round trip: %+v", got)
	}
	// One-shot: the file is consumed by a successful load.
	if s.HasSpill(key, "posmap") {
		t.Fatal("spill file survived its restore")
	}
	if got := s.LoadSpill(key, "posmap", testSig()); got != nil {
		t.Fatal("second load served data")
	}
	if st := s.Stats(); st.Spills != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKeyDistinguishesPaths(t *testing.T) {
	if Key("t", "/a/data.csv") == Key("t", "/b/data.csv") {
		t.Fatal("keys collide across paths")
	}
	if Key("a b/c", "/x") == Key("a_b_c", "/x") {
		t.Log("sanitized names may collide; the path hash still separates real tables")
	}
}

func BenchmarkSnapshotEncode(b *testing.B) {
	tbl := testTable(100_000)
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		n, err := Encode(&buf, testSig(), tbl)
		if err != nil {
			b.Fatal(err)
		}
		total = n
	}
	b.SetBytes(total)
}

func BenchmarkSnapshotDecode(b *testing.B) {
	tbl := testTable(100_000)
	dir := b.TempDir()
	path := filepath.Join(dir, "b.snap")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	n, err := Encode(f, testSig(), tbl)
	if err != nil {
		b.Fatal(err)
	}
	f.Close()
	b.SetBytes(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DecodeAll(path, testSig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if got.Rows != tbl.Rows {
			b.Fatal("bad decode")
		}
	}
}

// TestOpenVerifyGrownAccept pins the append-aware open path: the caller's
// verifier sees the stored signature and can accept a snapshot of a
// prefix-stable ancestor of the raw file, which Open's exact match would
// discard as stale.
func TestOpenVerifyGrownAccept(t *testing.T) {
	s := NewStore(t.TempDir(), nil)
	s.Logf = func(string, ...any) {}
	key := Key("t", "/data/t.csv")
	old := testSig()
	if err := s.Save(key, old, testTable(10)); err != nil {
		t.Fatal(err)
	}

	// The raw file has grown since the save; the verifier recognizes the
	// stored signature as the validated prefix and accepts.
	grown := old
	grown.Size += 4096
	r := s.OpenVerify(key, func(sig Sig) bool { return sig == old })
	if r == nil {
		t.Fatal("verifier accepted but OpenVerify returned nil")
	}
	if r.Sig() != old {
		t.Errorf("stored sig = %+v, want %+v", r.Sig(), old)
	}
	if r.Sig() == grown {
		t.Error("reader must expose the snapshot's signature, not the file's")
	}
	r.Close()

	// A rejecting verifier invalidates the file on disk.
	before := s.Stats().Invalidations
	if r := s.OpenVerify(key, func(Sig) bool { return false }); r != nil {
		r.Close()
		t.Fatal("rejected snapshot still returned a reader")
	}
	if got := s.Stats().Invalidations; got != before+1 {
		t.Errorf("invalidations = %d, want %d", got, before+1)
	}
	if r := s.OpenVerify(key, func(Sig) bool { return true }); r != nil {
		r.Close()
		t.Fatal("invalidated snapshot file should be gone")
	}
}
