package snapshot

import (
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"

	"nodb/internal/errs"
	"nodb/internal/metrics"
	"nodb/internal/vfs"
)

// Store manages one cache directory of snapshot and spill files. All
// operations are best-effort: a failed save is logged and counted, a
// stale or corrupt file is invalidated (removed) and counted, and the
// caller always degrades to a cold start — the store never surfaces an
// error to the query path.
//
// Layout, one file set per (table, raw-file-path) key:
//
//	<key>.snap           full snapshot (written on DB.Close / periodic flush)
//	<key>.<what>.spill   one spilled structure (eviction's disk tier)
//	<key>.splits/        split files moved out of the governed hot tier
//
// One process per cache directory is assumed; concurrent engines sharing
// a directory race benignly (rename is atomic, losers overwrite) but
// waste work.
type Store struct {
	dir      string
	counters *metrics.Counters

	// Logf receives invalidation and save-failure notices (default:
	// log.Printf). Replaceable for tests.
	Logf func(format string, args ...any)

	// FS is the filesystem the store reads and writes through; nil
	// means the real disk. Set before first use.
	FS vfs.FS

	hits          atomic.Int64
	misses        atomic.Int64
	saves         atomic.Int64
	spills        atomic.Int64
	invalidations atomic.Int64

	// degraded marks the store as memory-only: a save or spill hit an
	// out-of-space condition, so the disk tier is sacrificed and the
	// engine keeps serving from memory. The next successful save
	// clears it (space was freed).
	degraded    atomic.Bool
	writeErrors atomic.Int64
}

func (s *Store) fs() vfs.FS { return vfs.Default(s.FS) }

// Stats is a point-in-time snapshot of the store's activity.
type Stats struct {
	// Enabled reports whether a cache directory is configured.
	Enabled bool `json:"enabled"`
	// Dir is the cache directory.
	Dir string `json:"dir,omitempty"`
	// Hits counts snapshot or spill files successfully opened for restore.
	Hits int64 `json:"hits"`
	// Misses counts restore attempts that found no usable file.
	Misses int64 `json:"misses"`
	// Saves counts snapshot files written.
	Saves int64 `json:"saves"`
	// Spills counts structures written to disk by eviction instead of
	// being discarded.
	Spills int64 `json:"spills"`
	// Invalidations counts stale or corrupt files discarded (raw file
	// edits, torn writes, truncation).
	Invalidations int64 `json:"invalidations"`
	// Degraded reports that the store is running memory-only after an
	// out-of-space write failure; it self-heals on the next save that
	// succeeds.
	Degraded bool `json:"degraded"`
	// WriteErrors counts failed snapshot/spill writes.
	WriteErrors int64 `json:"write_errors"`
}

// NewStore creates a store over dir. The directory is created lazily on
// first write, so construction cannot fail. counters may be nil.
func NewStore(dir string, counters *metrics.Counters) *Store {
	return &Store{dir: dir, counters: counters, Logf: log.Printf}
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the store's activity counters.
func (s *Store) Stats() Stats {
	return Stats{
		Enabled:       true,
		Dir:           s.dir,
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Saves:         s.saves.Load(),
		Spills:        s.spills.Load(),
		Invalidations: s.invalidations.Load(),
		Degraded:      s.degraded.Load(),
		WriteErrors:   s.writeErrors.Load(),
	}
}

// Degraded reports whether the store is running memory-only after an
// out-of-space write failure.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Key derives the file-name key for a table: the sanitized table name
// plus a hash of the raw file's absolute path, so two tables (or the same
// name relinked to a different file) never collide.
func Key(table, path string) string {
	if abs, err := filepath.Abs(path); err == nil {
		path = abs
	}
	return fmt.Sprintf("%s-%08x", sanitize(table), crc32.ChecksumIEEE([]byte(path)))
}

func sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// SnapPath returns the full-snapshot path for key.
func (s *Store) SnapPath(key string) string { return filepath.Join(s.dir, key+".snap") }

// SpillPath returns the spill-file path for one structure of key.
func (s *Store) SpillPath(key, what string) string {
	return filepath.Join(s.dir, key+"."+what+".spill")
}

// SplitSpillDir returns the directory spilled split files are moved to.
func (s *Store) SplitSpillDir(key string) string { return filepath.Join(s.dir, key+".splits") }

// save writes a snapshot stream atomically: temp file in the same
// directory, fsync-free write, rename into place. A torn write therefore
// leaves either the old file or a temp file the next open ignores; the
// per-section CRCs catch everything else.
func (s *Store) save(path string, sig Sig, t *Table) error {
	fsys := s.fs()
	if err := fsys.MkdirAll(s.dir, 0o755); err != nil {
		return errs.ClassifyWrite("snapshot mkdir", s.dir, err)
	}
	tmp, err := fsys.CreateTemp(s.dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return errs.ClassifyWrite("snapshot create", path, err)
	}
	n, err := Encode(tmp, sig, t)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp.Name(), path)
	}
	if err != nil {
		fsys.Remove(tmp.Name())
		return errs.ClassifyWrite("snapshot write", path, err)
	}
	if s.counters != nil {
		s.counters.AddSnapshotBytesWritten(n)
	}
	return nil
}

// noteSaveResult maintains the degraded flag: out-of-space failures
// enter degraded (memory-only) mode, any successful save leaves it.
func (s *Store) noteSaveResult(err error) {
	if err == nil {
		if s.degraded.CompareAndSwap(true, false) {
			s.Logf("nodb/snapshot: disk tier recovered; leaving memory-only mode")
		}
		return
	}
	s.writeErrors.Add(1)
	if errs.IsDiskFull(err) && s.degraded.CompareAndSwap(false, true) {
		s.Logf("nodb/snapshot: disk full; degrading to memory-only operation")
	}
}

// Save writes the full snapshot for key. Failures are logged and counted
// but not returned to the query path; the error is for callers that want
// to surface it (DB.Snapshot).
func (s *Store) Save(key string, sig Sig, t *Table) error {
	err := s.save(s.SnapPath(key), sig, t)
	s.noteSaveResult(err)
	if err != nil {
		s.Logf("nodb/snapshot: saving %s: %v", s.SnapPath(key), err)
		return err
	}
	s.saves.Add(1)
	if s.counters != nil {
		s.counters.AddSnapshotSave(1)
	}
	return nil
}

// SaveSpill writes one evicted structure for key. Counted as a spill.
func (s *Store) SaveSpill(key, what string, sig Sig, t *Table) error {
	err := s.save(s.SpillPath(key, what), sig, t)
	s.noteSaveResult(err)
	if err != nil {
		s.Logf("nodb/snapshot: spilling %s: %v", s.SpillPath(key, what), err)
		return err
	}
	s.spills.Add(1)
	if s.counters != nil {
		s.counters.AddSnapshotSpill(1)
	}
	return nil
}

// invalidate removes a stale or corrupt file and counts it.
func (s *Store) invalidate(path string, err error) {
	s.fs().Remove(path)
	s.invalidations.Add(1)
	if s.counters != nil {
		s.counters.AddSnapshotInvalidation(1)
	}
	s.Logf("nodb/snapshot: invalidated %s: %v (cold start for its structures)", path, err)
}

// onRead returns the byte observer wired into readers.
func (s *Store) onRead() func(int64) {
	if s.counters == nil {
		return nil
	}
	return s.counters.AddSnapshotBytesRead
}

// Open opens the full snapshot for key as a lazy reader, verifying its
// header against sig. It returns nil when no usable snapshot exists: a
// missing file counts as a miss; a stale or corrupt one is invalidated.
// A reader with a truncated tail is still returned — its intact prefix
// is usable — with the damage counted once here.
func (s *Store) Open(key string, sig Sig) *Reader {
	path := s.SnapPath(key)
	r, err := OpenReaderFS(s.FS, path, sig, s.onRead())
	switch {
	case err == nil:
		s.hits.Add(1)
		if s.counters != nil {
			s.counters.AddSnapshotHit(1)
		}
		if r.Truncated() {
			s.invalidations.Add(1)
			if s.counters != nil {
				s.counters.AddSnapshotInvalidation(1)
			}
			s.Logf("nodb/snapshot: %s is truncated; restoring its intact prefix only", path)
		}
		return r
	case os.IsNotExist(err):
		s.misses.Add(1)
		if s.counters != nil {
			s.counters.AddSnapshotMiss(1)
		}
		return nil
	default:
		s.invalidate(path, err)
		return nil
	}
}

// OpenVerify opens the full snapshot for key like Open, but delegates the
// staleness decision to ok, which receives the stored signature and
// reports whether the snapshot is usable for the current raw file. The
// append-aware catalog uses it to accept snapshots of a prefix-stable
// ancestor of the file (grown since the save) that Open's exact-match
// check would discard. Files ok rejects are invalidated.
func (s *Store) OpenVerify(key string, ok func(Sig) bool) *Reader {
	path := s.SnapPath(key)
	r, err := OpenReaderAnyFS(s.FS, path, s.onRead())
	if err == nil && !ok(r.Sig()) {
		r.Close()
		r, err = nil, ErrStale
	}
	switch {
	case err == nil:
		s.hits.Add(1)
		if s.counters != nil {
			s.counters.AddSnapshotHit(1)
		}
		if r.Truncated() {
			s.invalidations.Add(1)
			if s.counters != nil {
				s.counters.AddSnapshotInvalidation(1)
			}
			s.Logf("nodb/snapshot: %s is truncated; restoring its intact prefix only", path)
		}
		return r
	case os.IsNotExist(err):
		s.misses.Add(1)
		if s.counters != nil {
			s.counters.AddSnapshotMiss(1)
		}
		return nil
	default:
		s.invalidate(path, err)
		return nil
	}
}

// CountCorrupt records a corrupt section discovered during a lazy read
// (the file stays: other sections may be fine).
func (s *Store) CountCorrupt(key string, err error) {
	s.invalidations.Add(1)
	if s.counters != nil {
		s.counters.AddSnapshotInvalidation(1)
	}
	s.Logf("nodb/snapshot: corrupt section in %s: %v (cold start for that structure)", s.SnapPath(key), err)
}

// LoadSpill decodes and removes one spilled structure. A missing file
// returns nil silently (no spill outstanding is the common case); stale
// or corrupt files are invalidated.
func (s *Store) LoadSpill(key, what string, sig Sig) *Table {
	path := s.SpillPath(key, what)
	t, err := DecodeAllFS(s.FS, path, sig, s.onRead())
	switch {
	case err == nil:
		s.fs().Remove(path) // one-shot: re-eviction re-spills current state
		s.hits.Add(1)
		if s.counters != nil {
			s.counters.AddSnapshotHit(1)
		}
		return t
	case os.IsNotExist(err):
		return nil
	default:
		s.invalidate(path, err)
		return nil
	}
}

// HasSpill reports whether a spill file exists for (key, what).
func (s *Store) HasSpill(key, what string) bool {
	_, err := s.fs().Stat(s.SpillPath(key, what))
	return err == nil
}

// Remove deletes every file of key: the snapshot, all spills, and the
// spilled split directory. Used when the raw file changed (the files
// would self-invalidate anyway; removing them reclaims the space now).
func (s *Store) Remove(key string) {
	fsys := s.fs()
	fsys.Remove(s.SnapPath(key))
	matches, _ := fsys.Glob(filepath.Join(s.dir, key+".*.spill"))
	for _, m := range matches {
		fsys.Remove(m)
	}
	os.RemoveAll(s.SplitSpillDir(key))
}
