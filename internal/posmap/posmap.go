// Package posmap implements the positional map: a partial index of
// (attribute, row) → absolute byte offset in the raw file.
//
// The paper (§4.1.5) observes that "every time we touch a file, we learn a
// bit more about its structure, e.g., the physical position of certain rows
// and attributes. ... Identifying and exploiting this knowledge in the
// future can bring significant benefits." The positional map is that
// knowledge, collected as a free side effect of tokenization: when a later
// query needs attribute k of a row whose attribute j (j ≤ k) position is
// known, the loader jumps directly to j and tokenizes only j..k, skipping
// the attributes before j entirely.
//
// The map is partial by design: it covers only rows and attributes that
// past queries touched, and it stops growing at a configurable memory
// budget (unbounded maps would defeat the "minimum possible investment"
// goal).
package posmap

import (
	"sort"
	"sync"

	"nodb/internal/intervals"
	"nodb/internal/metrics"
)

// Accountant receives the map's byte footprint and usage signals; the
// memory governor's handles satisfy it. All methods must be safe for
// concurrent use.
type Accountant interface {
	AddBytes(delta int64)
	SetBytes(n int64)
	Touch()
}

// Map records known byte positions of attributes in one raw file. It is
// safe for concurrent use; parallel scan workers record runs while queries
// look positions up.
type Map struct {
	mu       sync.RWMutex
	cols     map[int]*colMap
	maxBytes int64
	bytes    int64
	counters *metrics.Counters
	acct     Accountant
}

// SetAccountant attaches the byte-footprint sink (the memory governor's
// handle for this map). Call before the map is shared.
func (m *Map) SetAccountant(a Accountant) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acct = a
	if a != nil {
		a.SetBytes(m.bytes)
	}
}

// colMap holds positions for one attribute as parallel (row, offset)
// slices sorted by row. Out-of-order arrivals are buffered in pendRows/
// pendOffs (arrival order) and folded in by one batched merge — a sorted
// insert per record would memmove the tail each time, turning interleaved
// recording (a wide scan after a selective one, or parallel portions)
// quadratic.
type colMap struct {
	rows []int64
	offs []int64
	cov  intervals.Set // covered row ranges

	pendRows []int64
	pendOffs []int64
}

// flushLimit bounds the pending buffer: merging costs O(n + p log p), so
// letting pending grow with the column keeps the total amortized
// near-linear.
func (c *colMap) flushLimit() int {
	n := len(c.rows) / 4
	if n < 1024 {
		n = 1024
	}
	return n
}

// New returns an empty positional map. maxBytes caps the map's memory; 0
// means a default of 64 MiB. counters may be nil.
func New(maxBytes int64, counters *metrics.Counters) *Map {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Map{cols: make(map[int]*colMap), maxBytes: maxBytes, counters: counters}
}

// Record stores the byte offset of (col, row). Records arriving in
// ascending row order per column append in O(1); out-of-order records go
// to a pending buffer folded in by batched merges. Recording is dropped
// silently once the memory budget is reached (the map is an opportunistic
// cache, losing an entry is always safe).
func (m *Map) Record(col int, row, off int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bytes >= m.maxBytes {
		return
	}
	c := m.cols[col]
	if c == nil {
		c = &colMap{}
		m.cols[col] = c
	}
	n := len(c.rows)
	if len(c.pendRows) == 0 {
		if n > 0 && c.rows[n-1] == row {
			c.offs[n-1] = off
			return
		}
		if n == 0 || row > c.rows[n-1] {
			c.rows = append(c.rows, row)
			c.offs = append(c.offs, off)
			c.cov.Add(intervals.Interval{Lo: row, Hi: row + 1})
			m.bytes += 16
			if m.acct != nil {
				m.acct.AddBytes(16)
			}
			return
		}
	}
	m.pendLocked(c, row, off)
}

// pendLocked buffers one out-of-order record and merges the backlog once
// it crosses the flush limit. Caller holds m.mu.
func (m *Map) pendLocked(c *colMap, row, off int64) {
	c.pendRows = append(c.pendRows, row)
	c.pendOffs = append(c.pendOffs, off)
	m.bytes += 16
	if m.acct != nil {
		m.acct.AddBytes(16)
	}
	if len(c.pendRows) >= c.flushLimit() {
		m.mergeLocked(c)
	}
}

// mergeLocked folds the pending buffer into the sorted slices in one
// pass: O(n + p log p) for p pending entries, with later arrivals winning
// duplicate rows. Caller holds m.mu.
func (m *Map) mergeLocked(c *colMap) {
	p := len(c.pendRows)
	if p == 0 {
		return
	}
	// Sort pending by row, stably by arrival, so the last arrival for a
	// row ends up last in its run and wins below.
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return c.pendRows[order[a]] < c.pendRows[order[b]] })

	rows := make([]int64, 0, len(c.rows)+p)
	offs := make([]int64, 0, len(c.rows)+p)
	i, j := 0, 0
	push := func(row, off int64) {
		if n := len(rows); n > 0 && rows[n-1] == row {
			offs[n-1] = off // newer record for the same row wins
			return
		}
		rows = append(rows, row)
		offs = append(offs, off)
	}
	for i < len(c.rows) || j < p {
		switch {
		case j >= p:
			push(c.rows[i], c.offs[i])
			i++
		case i >= len(c.rows) || c.pendRows[order[j]] <= c.rows[i]:
			r := c.pendRows[order[j]]
			push(r, c.pendOffs[order[j]])
			c.cov.Add(intervals.Interval{Lo: r, Hi: r + 1})
			if r == c.rowsAt(i) {
				i++ // pending supersedes the existing entry for this row
			}
			j++
		default:
			push(c.rows[i], c.offs[i])
			i++
		}
	}
	// Duplicates collapsed; release their accounted bytes.
	delta := int64(len(rows)-len(c.rows)-p) * 16
	c.rows, c.offs = rows, offs
	c.pendRows, c.pendOffs = nil, nil
	if delta != 0 {
		m.bytes += delta
		if m.acct != nil {
			m.acct.AddBytes(delta)
		}
	}
}

// rowsAt returns c.rows[i], or a sentinel when i is out of range.
func (c *colMap) rowsAt(i int) int64 {
	if i < len(c.rows) {
		return c.rows[i]
	}
	return -1 << 62
}

// flush folds every column's pending backlog in, so readers see the
// sorted view. Cheap when nothing is pending.
func (m *Map) flush() {
	m.mu.RLock()
	dirty := false
	for _, c := range m.cols {
		if len(c.pendRows) > 0 {
			dirty = true
			break
		}
	}
	m.mu.RUnlock()
	if !dirty {
		return
	}
	m.mu.Lock()
	for _, c := range m.cols {
		m.mergeLocked(c)
	}
	m.mu.Unlock()
}

// RecordRun stores offsets for rows startRow, startRow+1, ... in one lock
// acquisition. Scan portions call it once per chunk.
func (m *Map) RecordRun(col int, startRow int64, offs []int64) {
	if len(offs) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bytes >= m.maxBytes {
		return
	}
	c := m.cols[col]
	if c == nil {
		c = &colMap{}
		m.cols[col] = c
	}
	n := len(c.rows)
	if len(c.pendRows) == 0 && (n == 0 || startRow > c.rows[n-1]) {
		for i, off := range offs {
			c.rows = append(c.rows, startRow+int64(i))
			c.offs = append(c.offs, off)
		}
		c.cov.Add(intervals.Interval{Lo: startRow, Hi: startRow + int64(len(offs))})
		m.bytes += int64(len(offs)) * 16
		if m.acct != nil {
			m.acct.AddBytes(int64(len(offs)) * 16)
		}
		return
	}
	for i, off := range offs {
		m.pendLocked(c, startRow+int64(i), off)
	}
}

// LoadColumn bulk-installs a column's positions from a snapshot: rows
// must be ascending and unique, offs parallel to it. A column that
// already has entries is left alone (live recording since the snapshot
// was written supersedes it), and the memory budget is honored the same
// way Record honors it. The slices are adopted, not copied.
func (m *Map) LoadColumn(col int, rows, offs []int64) {
	if len(rows) == 0 || len(rows) != len(offs) {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cols[col] != nil || m.bytes >= m.maxBytes {
		return
	}
	c := &colMap{rows: rows, offs: offs}
	// Coverage is exactly the recorded rows; rebuild it run by run.
	runStart := rows[0]
	prev := rows[0]
	for _, r := range rows[1:] {
		if r != prev+1 {
			c.cov.Add(intervals.Interval{Lo: runStart, Hi: prev + 1})
			runStart = r
		}
		prev = r
	}
	c.cov.Add(intervals.Interval{Lo: runStart, Hi: prev + 1})
	m.cols[col] = c
	added := int64(len(rows)) * 16
	m.bytes += added
	if m.acct != nil {
		m.acct.AddBytes(added)
	}
}

// Columns returns every column's recorded (rows, offsets) pairs, for
// serialization. The slices are copies.
func (m *Map) Columns() map[int][2][]int64 {
	m.flush()
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[int][2][]int64, len(m.cols))
	for col, c := range m.cols {
		out[col] = [2][]int64{
			append([]int64(nil), c.rows...),
			append([]int64(nil), c.offs...),
		}
	}
	return out
}

// Lookup returns the byte offset of (col, row) if known.
func (m *Map) Lookup(col int, row int64) (int64, bool) {
	m.flush()
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.cols[col]
	if c == nil {
		m.miss()
		return 0, false
	}
	i := sort.Search(len(c.rows), func(i int) bool { return c.rows[i] >= row })
	if i < len(c.rows) && c.rows[i] == row {
		m.hit()
		return c.offs[i], true
	}
	m.miss()
	return 0, false
}

// BestAnchor returns, among the columns ≤ target whose position for row is
// known, the largest such column and its offset. A loader tokenizes from
// the anchor forward, paying only (target - anchor) attribute
// tokenizations instead of (target - 0).
func (m *Map) BestAnchor(target int, row int64) (col int, off int64, ok bool) {
	m.flush()
	m.mu.RLock()
	defer m.mu.RUnlock()
	for c := target; c >= 0; c-- {
		cm := m.cols[c]
		if cm == nil {
			continue
		}
		i := sort.Search(len(cm.rows), func(i int) bool { return cm.rows[i] >= row })
		if i < len(cm.rows) && cm.rows[i] == row {
			m.hit()
			return c, cm.offs[i], true
		}
	}
	m.miss()
	return 0, 0, false
}

// CoveredCols returns the attribute indices with at least one recorded
// position, ascending.
func (m *Map) CoveredCols() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]int, 0, len(m.cols))
	for c := range m.cols {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Covers reports whether every row of [lo, hi) has a recorded position for
// col.
func (m *Map) Covers(col int, lo, hi int64) bool {
	m.flush()
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.cols[col]
	if c == nil {
		return false
	}
	return c.cov.Covers(intervals.Interval{Lo: lo, Hi: hi})
}

// Pairs returns copies of the (rows, offsets) slices for col, sorted by
// row. Loaders iterate them to drive sequential positional access.
func (m *Map) Pairs(col int) (rows, offs []int64) {
	m.flush()
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := m.cols[col]
	if c == nil {
		return nil, nil
	}
	rows = append([]int64(nil), c.rows...)
	offs = append([]int64(nil), c.offs...)
	return rows, offs
}

// Entries returns the total number of recorded positions.
func (m *Map) Entries() int {
	m.flush()
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, c := range m.cols {
		n += len(c.rows)
	}
	return n
}

// MemSize returns the approximate heap bytes held by the map.
func (m *Map) MemSize() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// Full reports whether the memory budget is exhausted (recording stopped).
func (m *Map) Full() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes >= m.maxBytes
}

// Drop discards all recorded positions (used when the raw file changed, or
// when the memory governor reclaims the map's footprint).
func (m *Map) Drop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cols = make(map[int]*colMap)
	m.bytes = 0
	if m.acct != nil {
		m.acct.SetBytes(0)
	}
}

func (m *Map) hit() {
	if m.counters != nil {
		m.counters.AddPosMapHit(1)
	}
	if m.acct != nil {
		m.acct.Touch()
	}
}

func (m *Map) miss() {
	if m.counters != nil {
		m.counters.AddPosMapMiss(1)
	}
}
