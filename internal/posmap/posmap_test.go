package posmap

import (
	"sync"
	"testing"

	"nodb/internal/metrics"
)

func TestRecordLookup(t *testing.T) {
	m := New(0, nil)
	m.Record(2, 10, 123)
	m.Record(2, 11, 456)
	if off, ok := m.Lookup(2, 10); !ok || off != 123 {
		t.Errorf("Lookup = %d, %v", off, ok)
	}
	if _, ok := m.Lookup(2, 12); ok {
		t.Error("absent row should miss")
	}
	if _, ok := m.Lookup(3, 10); ok {
		t.Error("absent col should miss")
	}
}

func TestRecordOverwrite(t *testing.T) {
	m := New(0, nil)
	m.Record(0, 5, 100)
	m.Record(0, 5, 200)
	if off, _ := m.Lookup(0, 5); off != 200 {
		t.Errorf("overwrite failed: %d", off)
	}
	if m.Entries() != 1 {
		t.Errorf("Entries = %d, want 1", m.Entries())
	}
}

func TestRecordOutOfOrder(t *testing.T) {
	m := New(0, nil)
	m.Record(1, 30, 300)
	m.Record(1, 10, 100)
	m.Record(1, 20, 200)
	rows, offs := m.Pairs(1)
	if len(rows) != 3 || rows[0] != 10 || rows[1] != 20 || rows[2] != 30 {
		t.Fatalf("rows = %v", rows)
	}
	if offs[0] != 100 || offs[1] != 200 || offs[2] != 300 {
		t.Errorf("offs = %v", offs)
	}
}

func TestRecordRun(t *testing.T) {
	m := New(0, nil)
	m.RecordRun(0, 100, []int64{10, 20, 30})
	if off, ok := m.Lookup(0, 101); !ok || off != 20 {
		t.Errorf("run lookup = %d, %v", off, ok)
	}
	if !m.Covers(0, 100, 103) {
		t.Error("run should cover [100,103)")
	}
	if m.Covers(0, 100, 104) {
		t.Error("should not cover beyond run")
	}
	// Appending a second adjacent run extends coverage.
	m.RecordRun(0, 103, []int64{40})
	if !m.Covers(0, 100, 104) {
		t.Error("adjacent run should extend coverage")
	}
}

func TestRecordRunOutOfOrderFallback(t *testing.T) {
	m := New(0, nil)
	m.RecordRun(0, 100, []int64{1, 2})
	m.RecordRun(0, 50, []int64{3, 4}) // before existing → fallback path
	if off, ok := m.Lookup(0, 50); !ok || off != 3 {
		t.Errorf("fallback lookup = %d, %v", off, ok)
	}
	if off, ok := m.Lookup(0, 101); !ok || off != 2 {
		t.Errorf("original entries damaged: %d, %v", off, ok)
	}
	if m.Entries() != 4 {
		t.Errorf("Entries = %d, want 4", m.Entries())
	}
}

func TestBestAnchor(t *testing.T) {
	m := New(0, nil)
	m.Record(0, 7, 70)  // row start
	m.Record(3, 7, 85)  // attribute 3
	m.Record(5, 8, 120) // different row
	col, off, ok := m.BestAnchor(4, 7)
	if !ok || col != 3 || off != 85 {
		t.Errorf("BestAnchor(4,7) = %d, %d, %v; want 3, 85", col, off, ok)
	}
	col, off, ok = m.BestAnchor(2, 7)
	if !ok || col != 0 || off != 70 {
		t.Errorf("BestAnchor(2,7) = %d, %d, %v; want 0, 70", col, off, ok)
	}
	if _, _, ok := m.BestAnchor(4, 9); ok {
		t.Error("unknown row should have no anchor")
	}
	// Anchor at exactly the target column.
	col, off, ok = m.BestAnchor(3, 7)
	if !ok || col != 3 || off != 85 {
		t.Errorf("BestAnchor(3,7) = %d, %d, %v", col, off, ok)
	}
}

func TestBudget(t *testing.T) {
	m := New(32, nil) // room for 2 entries of 16 bytes
	m.Record(0, 1, 10)
	m.Record(0, 2, 20)
	if !m.Full() {
		t.Fatal("map should be full after 2 entries at 32-byte budget")
	}
	m.Record(0, 3, 30) // dropped
	if _, ok := m.Lookup(0, 3); ok {
		t.Error("record past budget should be dropped")
	}
	if m.Entries() != 2 {
		t.Errorf("Entries = %d, want 2", m.Entries())
	}
}

func TestDrop(t *testing.T) {
	m := New(0, nil)
	m.Record(1, 1, 1)
	m.Drop()
	if m.Entries() != 0 || m.MemSize() != 0 {
		t.Error("Drop should clear everything")
	}
	if _, ok := m.Lookup(1, 1); ok {
		t.Error("lookup after drop should miss")
	}
}

func TestCoveredCols(t *testing.T) {
	m := New(0, nil)
	m.Record(5, 0, 1)
	m.Record(2, 0, 1)
	got := m.CoveredCols()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("CoveredCols = %v", got)
	}
}

func TestCounters(t *testing.T) {
	var c metrics.Counters
	m := New(0, &c)
	m.Record(0, 1, 1)
	m.Lookup(0, 1)
	m.Lookup(0, 2)
	s := c.Snapshot()
	if s.PosMapHits != 1 || s.PosMapMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", s.PosMapHits, s.PosMapMisses)
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New(0, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * 1000)
			for i := int64(0); i < 500; i++ {
				m.Record(w, base+i, base+i*8)
				m.Lookup(w, base+i)
				m.BestAnchor(w, base+i)
			}
		}(w)
	}
	wg.Wait()
	if m.Entries() != 2000 {
		t.Errorf("Entries = %d, want 2000", m.Entries())
	}
}

func TestPairsCopies(t *testing.T) {
	m := New(0, nil)
	m.Record(0, 1, 11)
	rows, _ := m.Pairs(0)
	rows[0] = 999 // mutate the copy
	if off, ok := m.Lookup(0, 1); !ok || off != 11 {
		t.Error("Pairs must return copies")
	}
	r, o := m.Pairs(7)
	if r != nil || o != nil {
		t.Error("Pairs of unknown col should be nil")
	}
}

func BenchmarkRecordAscending(b *testing.B) {
	m := New(1<<30, nil)
	for i := 0; i < b.N; i++ {
		m.Record(0, int64(i), int64(i*8))
	}
}

func BenchmarkLookup(b *testing.B) {
	m := New(1<<30, nil)
	for i := int64(0); i < 1e6; i++ {
		m.Record(0, i, i*8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(0, int64(i)%1e6)
	}
}

// TestRecordInterleavedBulk drives the pending-merge path hard: a
// selective pass records scattered rows, a wide pass then records every
// row (the sequence that used to trigger an O(n) memmove per record).
// Lookups, coverage and serialization must match a reference map.
func TestRecordInterleavedBulk(t *testing.T) {
	m := New(64<<20, nil)
	ref := map[int64]int64{}
	const n = 120_000
	for r := int64(0); r < n; r += 3 { // selective pass, in order
		m.Record(0, r, r*10)
		ref[r] = r * 10
	}
	for r := int64(0); r < n; r++ { // wide pass, in order from row 0
		m.Record(0, r, r*10+1)
		ref[r] = r*10 + 1
	}
	if got := m.Entries(); got != n {
		t.Fatalf("Entries = %d, want %d", got, n)
	}
	for _, r := range []int64{0, 1, 2, 3, n / 2, n - 1} {
		off, ok := m.Lookup(0, r)
		if !ok || off != ref[r] {
			t.Fatalf("Lookup(%d) = %d,%v want %d", r, off, ok, ref[r])
		}
	}
	if !m.Covers(0, 0, n) {
		t.Fatal("full range should be covered after the wide pass")
	}
	rows, offs := m.Pairs(0)
	if int64(len(rows)) != n {
		t.Fatalf("Pairs len = %d, want %d", len(rows), n)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] <= rows[i-1] {
			t.Fatalf("rows not ascending at %d", i)
		}
	}
	for i, r := range rows {
		if offs[i] != ref[r] {
			t.Fatalf("row %d offset %d, want %d", r, offs[i], ref[r])
		}
	}
	// Byte accounting settles to exactly 16 per unique entry.
	if got := m.MemSize(); got != n*16 {
		t.Fatalf("MemSize = %d, want %d", got, n*16)
	}
}

// TestRecordPendingVisibleToReaders: a handful of out-of-order records
// below the flush threshold must still be visible through every reader.
func TestRecordPendingVisibleToReaders(t *testing.T) {
	m := New(0, nil)
	m.Record(2, 100, 1000)
	m.Record(2, 5, 50)   // out of order -> pending
	m.Record(2, 40, 400) // still pending
	if off, ok := m.Lookup(2, 5); !ok || off != 50 {
		t.Fatalf("Lookup(5) = %d,%v", off, ok)
	}
	if !m.Covers(2, 40, 41) {
		t.Fatal("pending row 40 not covered")
	}
	if got := m.Entries(); got != 3 {
		t.Fatalf("Entries = %d, want 3", got)
	}
	cols := m.Columns()
	if pair, ok := cols[2]; !ok || len(pair[0]) != 3 || pair[0][0] != 5 {
		t.Fatalf("Columns() = %+v, want merged view", cols)
	}
	// Duplicate of an existing row via the pending path: newest wins and
	// the duplicate's bytes are released on merge.
	m.Record(2, 100, 1001)
	m.Record(2, 5, 51)
	if off, _ := m.Lookup(2, 100); off != 1001 {
		t.Fatalf("overwrite via pending lost: %d", off)
	}
	if off, _ := m.Lookup(2, 5); off != 51 {
		t.Fatalf("overwrite via pending lost: %d", off)
	}
	if got := m.MemSize(); got != 3*16 {
		t.Fatalf("MemSize = %d, want %d", got, 3*16)
	}
}
