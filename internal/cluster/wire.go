// Package cluster implements scatter-gather distributed querying for
// nodbd: a coordinator fans a parsed query out to shard nodbd instances —
// each owning a disjoint set of raw files — and merges their NDJSON
// partial streams back into one result.
//
// The design lifts the paper's in-situ ideas to the network layer:
//
//   - Filter and partial-aggregate pushdown: the coordinator rewrites the
//     query so each shard computes sum/count/min/max and group-by partials
//     locally with its vectorized operators, and only reduced rows cross
//     the network (avg(x) travels as sum(x) plus count(x) and is divided
//     at the coordinator, exactly once, so integer aggregates merge with
//     no precision loss).
//   - Synopsis-aware shard pruning: shards export their per-portion zone
//     maps via /cluster/synopsis; the coordinator caches them and skips a
//     shard entirely when every portion is provably unsatisfiable — the
//     PR 5 portion-pruning idea applied before any round trip happens.
//   - Degraded mode as a first-class state: per-shard timeouts and bounded
//     retry with backoff, and when a shard stays dead the query completes
//     with partial_results reported in the stats trailer — never silently
//     dropped, never an all-or-nothing error (unless partial results are
//     disabled, or every shard failed).
//
// When the shards hold contiguous, disjoint row ranges of one logical
// dataset (cmd/nodbgen -shard i/n generates exactly that), the merged
// result is byte-identical to a single node scanning the concatenated
// files: concatenation preserves scan order, the k-way merge reproduces
// sort.SliceStable's tie behavior, and group merging reproduces
// first-appearance order. The differential test suite pins this.
package cluster

import (
	"nodb"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/synopsis"
)

// SynopsisResponse is the /cluster/synopsis body: every linked table's
// exported scan synopsis.
type SynopsisResponse struct {
	Tables map[string]TableSynopsis `json:"tables"`
}

// TableSynopsis is one table's wire-form synopsis export: the raw file's
// signature (so consumers can tell versions apart), the detected schema
// (so a coordinator can bind predicate names to column ordinals), and the
// per-portion zone maps. Portions is empty until the shard has learned a
// complete layout — pruning is an opportunistic optimization, never a
// requirement.
type TableSynopsis struct {
	Signature SignatureJSON `json:"signature"`
	Columns   []ColumnJSON  `json:"columns"`
	Portions  []PortionJSON `json:"portions,omitempty"`
}

// SignatureJSON mirrors catalog.Signature.
type SignatureJSON struct {
	Size    int64  `json:"size"`
	ModTime int64  `json:"mod_time"`
	Prefix  uint32 `json:"prefix"`
}

// ColumnJSON is one schema column.
type ColumnJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// PortionJSON is one portion's layout slot and zone-map bounds.
type PortionJSON struct {
	Off      int64        `json:"off"`
	End      int64        `json:"end"`
	FirstRow int64        `json:"first_row"`
	Rows     int64        `json:"rows"`
	Cols     []BoundsJSON `json:"cols,omitempty"`
}

// BoundsJSON is one column's bounds within one portion. Numeric bounds
// round-trip exactly (encoding/json renders float64 shortest-round-trip);
// string bounds carry the prefix-exactness flags the pruning rules need.
type BoundsJSON struct {
	Col      int     `json:"col"`
	Type     string  `json:"type"`
	MinI     int64   `json:"min_i"`
	MaxI     int64   `json:"max_i"`
	MinF     float64 `json:"min_f"`
	MaxF     float64 `json:"max_f"`
	MinS     string  `json:"min_s"`
	MaxS     string  `json:"max_s"`
	MinExact bool    `json:"min_exact"`
	MaxExact bool    `json:"max_exact"`
}

// EncodeTableSynopsis converts a DB synopsis export plus the table's
// schema into wire form. Shard-side: the server's /cluster/synopsis
// handler calls this per linked table.
func EncodeTableSynopsis(exp nodb.SynopsisExport, sch *schema.Schema) TableSynopsis {
	out := TableSynopsis{
		Signature: SignatureJSON{
			Size:    exp.Signature.Size,
			ModTime: exp.Signature.ModTime,
			Prefix:  exp.Signature.Prefix,
		},
	}
	for _, c := range sch.Columns {
		out.Columns = append(out.Columns, ColumnJSON{Name: c.Name, Type: c.Type.String()})
	}
	for _, p := range exp.Portions {
		pj := PortionJSON{
			Off:      p.Info.Off,
			End:      p.Info.End,
			FirstRow: p.Info.FirstRow,
			Rows:     p.Info.Rows,
		}
		for _, b := range p.Cols {
			pj.Cols = append(pj.Cols, BoundsJSON{
				Col: b.Col, Type: b.Typ.String(),
				MinI: b.MinI, MaxI: b.MaxI,
				MinF: b.MinF, MaxF: b.MaxF,
				MinS: b.MinS, MaxS: b.MaxS,
				MinExact: b.MinExact, MaxExact: b.MaxExact,
			})
		}
		out.Portions = append(out.Portions, pj)
	}
	return out
}

// parseType inverts schema.Type.String.
func parseType(s string) (schema.Type, bool) {
	switch s {
	case "int64":
		return schema.Int64, true
	case "float64":
		return schema.Float64, true
	case "string":
		return schema.String, true
	default:
		return 0, false
	}
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t TableSynopsis) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// PortionStates reconstructs the synopsis export for pruning decisions.
// Unknown type strings (a newer shard?) void the reconstruction — nil
// means "cannot prune", which is always safe.
func (t TableSynopsis) PortionStates() []synopsis.PortionState {
	out := make([]synopsis.PortionState, 0, len(t.Portions))
	for i, p := range t.Portions {
		ps := synopsis.PortionState{Info: scan.PortionInfo{
			Index: i, Off: p.Off, End: p.End, FirstRow: p.FirstRow, Rows: p.Rows,
		}}
		for _, b := range p.Cols {
			typ, ok := parseType(b.Type)
			if !ok {
				return nil
			}
			ps.Cols = append(ps.Cols, synopsis.ColBounds{
				Col: b.Col, Typ: typ,
				MinI: b.MinI, MaxI: b.MaxI,
				MinF: b.MinF, MaxF: b.MaxF,
				MinS: b.MinS, MaxS: b.MaxS,
				MinExact: b.MinExact, MaxExact: b.MaxExact,
			})
		}
		out = append(out, ps)
	}
	return out
}
