package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nodb/internal/exec"
	"nodb/internal/metrics"
	"nodb/internal/qos"
	"nodb/internal/schema"
	"nodb/internal/storage"
	"nodb/internal/synopsis"
)

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Shards are the shard nodbd addresses (host:port or full URLs).
	// Required, at least one.
	Shards []string
	// HTTPClient is shared by all shard clients (nil: http.DefaultClient).
	HTTPClient *http.Client
	// ShardTimeout bounds each attempt against one shard (0 = none).
	ShardTimeout time.Duration
	// Retries is how many times a failed shard interaction is retried
	// (total attempts = Retries+1). Default 2.
	Retries int
	// RetryBackoff is the first retry's wait, doubling per retry
	// (default 100ms; negative = none).
	RetryBackoff time.Duration
	// SynopsisTTL bounds how long a cached shard synopsis is trusted for
	// pruning (default 5s).
	SynopsisTTL time.Duration
	// HealthInterval is the /readyz polling period (0 disables the
	// background poller; shards are then assumed ready and failures
	// surface through the query path).
	HealthInterval time.Duration
	// AllowPartial completes queries with partial results when a shard
	// stays dead, reporting the failed shards in the stats trailer.
	// When false a dead shard fails the whole query.
	AllowPartial bool
	// BreakerThreshold is how many consecutive failures open a shard's
	// circuit breaker (0 = default 3; breakers cannot be disabled, only
	// tuned — an open breaker costs nothing when shards are healthy).
	BreakerThreshold int
	// BreakerBackoff is the breaker's first open interval, doubling per
	// consecutive re-open up to a 30s cap (0 = default 500ms).
	BreakerBackoff time.Duration
	// MaxInFlight caps concurrently executing queries (default 64).
	MaxInFlight int
	// DefaultTimeout bounds each query when the request does not set its
	// own; MaxTimeout caps what a request may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes caps request body size (default 1 MiB).
	MaxBodyBytes int64
	// Tenants maps API keys to tenants at the cluster's front door:
	// unknown keys are rejected or defaulted per the registry's policy,
	// MaxInFlight is split into per-tenant admission slots by weight, and
	// the caller's key is forwarded to shards so their own accounting
	// agrees. nil serves everyone as one anonymous tenant.
	Tenants *qos.Registry
}

func (c CoordinatorConfig) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 64
	}
	return c.MaxInFlight
}

func (c CoordinatorConfig) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return 1 << 20
	}
	return c.MaxBodyBytes
}

func (c CoordinatorConfig) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 2
	}
	return c.Retries
}

func (c CoordinatorConfig) retryBackoff() time.Duration {
	if c.RetryBackoff == 0 {
		return 100 * time.Millisecond
	}
	if c.RetryBackoff < 0 {
		return 0
	}
	return c.RetryBackoff
}

func (c CoordinatorConfig) synopsisTTL() time.Duration {
	if c.SynopsisTTL <= 0 {
		return 5 * time.Second
	}
	return c.SynopsisTTL
}

// Shard readiness as seen by the background poller.
const (
	shardUnknown int32 = iota // never probed: assume ready, let retry sort it out
	shardReady
	shardUnready
)

// synEntry is one shard's cached synopsis.
type synEntry struct {
	resp *SynopsisResponse
	at   time.Time
}

// coordTenant is one tenant's slice of the coordinator's admission
// controller, mirroring the single-node server's tenantState.
type coordTenant struct {
	weight float64
	sem    chan struct{}

	inFlight atomic.Int64
	served   atomic.Int64
	rejected atomic.Int64
}

// Coordinator fans queries out to shard nodbd instances and merges their
// partial streams into one result. It serves the same HTTP surface as a
// single-node server (/query, /query/stream, /explain, /tables, /schema,
// /stats, /healthz, /readyz), so clients cannot tell a coordinator from a
// node — except for the extra "cluster" block in stats trailers.
type Coordinator struct {
	cfg     CoordinatorConfig
	shards  []*ShardClient
	mux     *http.ServeMux
	sem     chan struct{}
	tenants map[string]*coordTenant // by tenant name; nil without a registry

	started time.Time
	work    metrics.Counters // cluster-wide work counters across queries

	ready []atomic.Int32 // per-shard readiness (shardUnknown/Ready/Unready)

	// breakers is the per-shard circuit-breaker array, aligned with
	// shards. Breakers persist across queries: consecutive failures
	// accumulate no matter which query observed them.
	breakers []*Breaker

	synMu    sync.Mutex
	synCache map[int]synEntry

	healthStop chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once

	inFlight  atomic.Int64
	served    atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
	failed    atomic.Int64
}

// NewCoordinator builds a coordinator over cfg.Shards.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	c := &Coordinator{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		started:  time.Now(),
		ready:    make([]atomic.Int32, len(cfg.Shards)),
		breakers: make([]*Breaker, len(cfg.Shards)),
		synCache: map[int]synEntry{},
	}
	for i := range c.breakers {
		c.breakers[i] = NewBreaker(cfg.BreakerThreshold, cfg.BreakerBackoff, 0)
	}
	globalSlots := cfg.maxInFlight()
	if cfg.Tenants != nil {
		// Same split as the single-node server: proportional to weight,
		// at least one slot each, and the global pool grown to the
		// per-tenant sum so no tenant's floor is blocked by rounding.
		weights := cfg.Tenants.Weights()
		var sum float64
		for _, w := range weights {
			sum += w
		}
		c.tenants = make(map[string]*coordTenant, len(weights))
		total := 0
		for name, w := range weights {
			slots := int(float64(cfg.maxInFlight())*w/sum + 0.5)
			if slots < 1 {
				slots = 1
			}
			total += slots
			c.tenants[name] = &coordTenant{weight: w, sem: make(chan struct{}, slots)}
		}
		if total > globalSlots {
			globalSlots = total
		}
	}
	c.sem = make(chan struct{}, globalSlots)
	for _, addr := range cfg.Shards {
		c.shards = append(c.shards, NewShardClient(addr, cfg.HTTPClient))
	}
	c.route("/query", c.handleQuery)
	c.route("/query/stream", c.handleQueryStream)
	c.route("/explain", c.handleExplain)
	c.route("/tables", c.handleTables)
	c.route("/schema", c.handleSchema)
	c.route("/stats", c.handleStats)
	c.mux.Handle("/healthz", wrapHandler(c.handleHealthz, ""))
	c.mux.Handle("/readyz", wrapHandler(c.handleReadyz, ""))
	if cfg.HealthInterval > 0 {
		c.healthStop = make(chan struct{})
		c.healthDone = make(chan struct{})
		go c.healthLoop(cfg.HealthInterval)
	}
	return c, nil
}

// route mounts a handler at its canonical /v1 path and the deprecated
// legacy path, mirroring the single-node server so clients cannot tell a
// coordinator from a node.
func (c *Coordinator) route(path string, h http.HandlerFunc) {
	c.mux.Handle("/v1"+path, wrapHandler(h, ""))
	c.mux.Handle(path, wrapHandler(h, "/v1"+path))
}

// wrapHandler applies the shared response contract: an X-Request-Id on
// every response and Deprecation/Link headers on legacy aliases.
func wrapHandler(h http.HandlerFunc, successor string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		if successor != "" {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		}
		h(w, r)
	})
}

// newRequestID generates a fresh 16-hex-digit request id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Close stops the health poller. Idempotent.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		if c.healthStop != nil {
			close(c.healthStop)
			<-c.healthDone
		}
	})
	return nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Work returns the coordinator's cumulative cluster work counters.
func (c *Coordinator) Work() metrics.Snapshot { return c.work.Snapshot() }

// healthLoop marks shard readiness in the background so queries admit
// only shards believed alive, without paying a probe per query.
func (c *Coordinator) healthLoop(interval time.Duration) {
	defer close(c.healthDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	probe := func() {
		var wg sync.WaitGroup
		for i := range c.shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout())
				defer cancel()
				if err := c.shards[i].Ready(ctx); err != nil {
					c.ready[i].Store(shardUnready)
				} else {
					c.ready[i].Store(shardReady)
				}
			}(i)
		}
		wg.Wait()
	}
	probe()
	for {
		select {
		case <-tick.C:
			probe()
		case <-c.healthStop:
			return
		}
	}
}

func (c *Coordinator) probeTimeout() time.Duration {
	if c.cfg.ShardTimeout > 0 && c.cfg.ShardTimeout < 2*time.Second {
		return c.cfg.ShardTimeout
	}
	return 2 * time.Second
}

// shardSynopsis returns shard i's synopsis, from cache when fresh. A
// fetch failure returns nil — pruning is opportunistic, never a query
// failure.
func (c *Coordinator) shardSynopsis(ctx context.Context, i int) *SynopsisResponse {
	c.synMu.Lock()
	e, ok := c.synCache[i]
	c.synMu.Unlock()
	if ok && time.Since(e.at) < c.cfg.synopsisTTL() {
		return e.resp
	}
	fctx, cancel := context.WithTimeout(ctx, c.probeTimeout())
	defer cancel()
	resp, err := c.shards[i].Synopsis(fctx)
	if err != nil {
		return nil
	}
	c.synMu.Lock()
	c.synCache[i] = synEntry{resp: resp, at: time.Now()}
	c.synMu.Unlock()
	return resp
}

// queryClusterStats accumulates one query's cluster-level outcomes;
// retries and bytes arrive from per-shard goroutines.
type queryClusterStats struct {
	shardsTotal int
	pruned      int
	retries     atomic.Int64
	bytes       atomic.Int64
	rows        atomic.Int64

	mu     sync.Mutex
	failed []string
}

func (st *queryClusterStats) fail(shard string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, f := range st.failed {
		if f == shard {
			return
		}
	}
	st.failed = append(st.failed, shard)
}

func (st *queryClusterStats) failedShards() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.failed...)
}

// clusterStatsJSON is the "cluster" block of coordinator responses.
type clusterStatsJSON struct {
	ShardsTotal    int      `json:"shards_total"`
	ShardsPruned   int      `json:"shards_pruned"`
	ShardRetries   int64    `json:"shard_retries"`
	PartialResults bool     `json:"partial_results"`
	FailedShards   []string `json:"failed_shards,omitempty"`
	BytesMerged    int64    `json:"bytes_merged"`
	RowsMerged     int64    `json:"rows_merged"`
}

func (st *queryClusterStats) json() clusterStatsJSON {
	failed := st.failedShards()
	return clusterStatsJSON{
		ShardsTotal:    st.shardsTotal,
		ShardsPruned:   st.pruned,
		ShardRetries:   st.retries.Load(),
		PartialResults: len(failed) > 0,
		FailedShards:   failed,
		BytesMerged:    st.bytes.Load(),
		RowsMerged:     st.rows.Load(),
	}
}

// fold accumulates the query's outcomes into the coordinator-wide work
// counters.
func (c *Coordinator) fold(st *queryClusterStats) {
	c.work.AddShardsPruned(int64(st.pruned))
	c.work.AddShardRetries(st.retries.Load())
	c.work.AddShardBytesMerged(st.bytes.Load())
	if len(st.failedShards()) > 0 {
		c.work.AddPartialResults(1)
	}
}

// coordStatsJSON is the coordinator's query stats trailer.
type coordStatsJSON struct {
	WallMicros int64            `json:"wall_us"`
	Plan       string           `json:"plan"`
	Cluster    clusterStatsJSON `json:"cluster"`
}

// scatterResult is one executed query: the final columns and either a
// streaming iterator (ModeConcat/ModeSortMerge) or materialized rows
// (ModeAgg/ModeGroupAgg; iter is a slice iterator over them). cleanup
// must be called when consumption ends, successful or not.
type scatterResult struct {
	columns []string
	iter    exec.RowIter
	cleanup func()
	stats   *queryClusterStats
	plan    *ScatterPlan
}

// scatterError wraps a fatal scatter failure with its HTTP status.
type scatterError struct {
	status int
	err    error
}

func (e *scatterError) Error() string { return e.err.Error() }
func (e *scatterError) Unwrap() error { return e.err }

func scatterErrf(status int, format string, args ...any) *scatterError {
	return &scatterError{status: status, err: fmt.Errorf(format, args...)}
}

// shardFatal converts a terminal shard error into the scatter error the
// client sees: a shard's own 4xx (it rejected the query) passes through,
// anything else is a bad-gateway-style upstream failure.
func shardFatal(err error) *scatterError {
	var se *ShardError
	if errors.As(err, &se) && se.Status >= 400 && se.Status < 500 && se.Status != http.StatusTooManyRequests {
		return &scatterError{status: se.Status, err: err}
	}
	return &scatterError{status: http.StatusBadGateway, err: err}
}

// candidates applies health admission and synopsis pruning, returning the
// shard indices to query. Shards marked unready by the poller get one
// on-demand probe — a shard that recovered between polls is re-admitted
// immediately; one still dead is declared failed without burning the
// query's retry budget on it.
func (c *Coordinator) candidates(ctx context.Context, plan *ScatterPlan, st *queryClusterStats) []int {
	var alive []int
	for i := range c.shards {
		if c.ready[i].Load() == shardUnready {
			pctx, cancel := context.WithTimeout(ctx, c.probeTimeout())
			err := c.shards[i].Ready(pctx)
			cancel()
			if err != nil {
				st.fail(c.shards[i].Name)
				continue
			}
			c.ready[i].Store(shardReady)
		}
		alive = append(alive, i)
	}
	if len(plan.Where) == 0 || len(alive) == 0 {
		return alive
	}
	// Synopsis pruning: drop shards whose zone maps prove zero qualifying
	// rows. Keep at least one alive shard so the query retains a stream
	// to source the header from — the kept shard's own portion pruning
	// skips the raw I/O anyway.
	var kept []int
	for _, i := range alive {
		syn := c.shardSynopsis(ctx, i)
		if syn == nil {
			kept = append(kept, i)
			continue
		}
		ts, ok := syn.Tables[plan.Table]
		if !ok || len(ts.Portions) == 0 {
			kept = append(kept, i)
			continue
		}
		conj, ok := bindConjunction(plan.Where, ts)
		if !ok {
			kept = append(kept, i)
			continue
		}
		if synopsis.SkippableAll(ts.PortionStates(), conj) && !(len(kept) == 0 && i == alive[len(alive)-1]) {
			st.pruned++
			continue
		}
		kept = append(kept, i)
	}
	return kept
}

// executeScatter runs one query across the cluster.
func (c *Coordinator) executeScatter(ctx context.Context, query string) (*scatterResult, *scatterError) {
	plan, err := BuildScatterPlan(query)
	if err != nil {
		return nil, &scatterError{status: http.StatusBadRequest, err: err}
	}
	st := &queryClusterStats{shardsTotal: len(c.shards)}
	cand := c.candidates(ctx, plan, st)
	if len(cand) == 0 {
		if failed := st.failedShards(); len(failed) > 0 {
			return nil, scatterErrf(http.StatusBadGateway, "cluster: all shards unavailable: %v", failed)
		}
		return nil, scatterErrf(http.StatusBadGateway, "cluster: no shards available")
	}
	switch plan.Mode {
	case ModeConcat, ModeSortMerge:
		return c.runStreaming(ctx, plan, cand, st)
	default:
		return c.runAggregate(ctx, plan, cand, st)
	}
}

// runStreaming executes ModeConcat/ModeSortMerge: open every candidate's
// stream concurrently, then merge them in shard order through buffered
// prefetchers so all shards stay busy while the merge pulls
// single-threaded.
func (c *Coordinator) runStreaming(ctx context.Context, plan *ScatterPlan, cand []int, st *queryClusterStats) (*scatterResult, *scatterError) {
	sctx, cancel := context.WithCancel(ctx)
	iters := make([]*shardIter, len(cand))
	primeErrs := make([]error, len(cand))
	var wg sync.WaitGroup
	for j, i := range cand {
		iters[j] = newShardIter(sctx, c.shards[i], plan.PushedSQL,
			c.cfg.retries(), c.cfg.retryBackoff(), c.cfg.ShardTimeout,
			func() { st.retries.Add(1) }, c.breakers[i])
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			primeErrs[j] = iters[j].Prime()
		}(j)
	}
	wg.Wait()

	var inputs []exec.RowIter
	var buffers []*bufferedIter
	names := map[int]string{} // merge-input index -> shard name
	var columns []string
	var firstErr error
	for j := range cand {
		if primeErrs[j] != nil {
			if firstErr == nil {
				firstErr = primeErrs[j]
			}
			st.fail(c.shards[cand[j]].Name)
			continue
		}
		if columns == nil {
			columns = iters[j].Columns()
		}
		names[len(inputs)] = c.shards[cand[j]].Name
		b := newBufferedIter(iters[j])
		buffers = append(buffers, b)
		inputs = append(inputs, b)
	}
	cleanup := func() {
		cancel()
		for _, b := range buffers {
			st.bytes.Add(b.StopWait())
		}
	}
	if len(inputs) == 0 {
		cleanup()
		return nil, shardFatal(firstErr)
	}
	if firstErr != nil && !c.cfg.AllowPartial {
		cleanup()
		return nil, shardFatal(firstErr)
	}

	onErr := func(input int, err error) bool {
		if !c.cfg.AllowPartial {
			return false
		}
		st.fail(names[input])
		return true
	}
	var merged exec.RowIter
	if plan.Mode == ModeSortMerge {
		keys, err := resolveOrder(plan.Order, columns)
		if err != nil {
			cleanup()
			return nil, &scatterError{status: http.StatusBadRequest, err: err}
		}
		merged = exec.NewMergeSorted(inputs, keys, plan.Limit, onErr)
	} else {
		merged = exec.NewConcat(inputs, plan.Limit, onErr)
	}
	return &scatterResult{columns: columns, iter: merged, cleanup: cleanup, stats: st, plan: plan}, nil
}

// runAggregate executes ModeAgg/ModeGroupAgg: drain every candidate's
// partial rows concurrently, then re-aggregate in shard order. A shard
// that fails mid-drain is discarded whole — partials are all-or-nothing
// per shard, so a survivor set still merges to the exact answer over the
// shards it covers.
func (c *Coordinator) runAggregate(ctx context.Context, plan *ScatterPlan, cand []int, st *queryClusterStats) (*scatterResult, *scatterError) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type drainResult struct {
		rows [][]storage.Value
		err  error
	}
	results := make([]drainResult, len(cand))
	var wg sync.WaitGroup
	for j, i := range cand {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			it := newShardIter(sctx, c.shards[i], plan.PushedSQL,
				c.cfg.retries(), c.cfg.retryBackoff(), c.cfg.ShardTimeout,
				func() { st.retries.Add(1) }, c.breakers[i])
			defer func() { st.bytes.Add(it.Bytes()); it.Close() }()
			rows, err := exec.DrainRowIter(it)
			results[j] = drainResult{rows: rows, err: err}
		}(j, i)
	}
	wg.Wait()

	var survivors [][][]storage.Value
	var firstErr error
	for j := range cand {
		if results[j].err != nil {
			if firstErr == nil {
				firstErr = results[j].err
			}
			st.fail(c.shards[cand[j]].Name)
			continue
		}
		survivors = append(survivors, results[j].rows)
	}
	if len(survivors) == 0 {
		return nil, shardFatal(firstErr)
	}
	if firstErr != nil && !c.cfg.AllowPartial {
		return nil, shardFatal(firstErr)
	}

	var rows [][]storage.Value
	if plan.Mode == ModeAgg {
		m := exec.NewAggMerger(plan.Specs, plan.SentinelCol)
		for _, shardRows := range survivors {
			for _, r := range shardRows {
				m.Absorb(r)
			}
		}
		rows = [][]storage.Value{m.Result()}
	} else {
		m := exec.NewGroupMerger(plan.KeyCols, plan.Specs)
		for _, shardRows := range survivors {
			for _, r := range shardRows {
				m.Absorb(r)
			}
		}
		rows = m.Rows()
		if len(plan.Order) > 0 {
			keys, err := resolveOrder(plan.Order, plan.Columns)
			if err != nil {
				return nil, &scatterError{status: http.StatusBadRequest, err: err}
			}
			exec.SortRows(rows, keys)
		}
		rows = exec.LimitRows(rows, int(plan.Limit))
	}
	return &scatterResult{
		columns: plan.Columns,
		iter:    exec.NewSliceIter(rows),
		cleanup: func() {},
		stats:   st,
		plan:    plan,
	}, nil
}

// resolveOrder binds ORDER BY names to output column indices.
func resolveOrder(order []OrderKey, columns []string) ([]exec.SortKey, error) {
	keys := make([]exec.SortKey, 0, len(order))
	for _, o := range order {
		idx := -1
		for i, name := range columns {
			if name == o.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("cluster: ORDER BY column %q must appear in the select list", o.Name)
		}
		keys = append(keys, exec.SortKey{Index: idx, Desc: o.Desc})
	}
	return keys, nil
}

// planString renders the scatter plan for stats trailers and /explain.
func planString(plan *ScatterPlan, st *queryClusterStats) string {
	return fmt.Sprintf("scatter(%s) shards=%d pruned=%d push=%q",
		plan.Mode, st.shardsTotal, st.pruned, plan.PushedSQL)
}

// ---- HTTP surface ----

type queryRequest struct {
	Query     string `json:"query"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// errorResponse is the NDJSON in-band stream trailer for a query that
// dies mid-stream; the shard-side merge path parses this flat shape.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError emits the v1 error envelope {"error":{"code","message"}},
// matching the single-node server byte for byte.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	code := "internal"
	switch status {
	case http.StatusBadRequest:
		code = "invalid_request"
	case http.StatusUnauthorized:
		code = "unauthorized"
	case http.StatusNotFound:
		code = "not_found"
	case http.StatusMethodNotAllowed:
		code = "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		code = "payload_too_large"
	case http.StatusTooManyRequests:
		code = "rate_limited"
	case http.StatusBadGateway:
		code = "upstream_failed"
	case http.StatusServiceUnavailable:
		code = "unavailable"
	case http.StatusGatewayTimeout:
		code = "timeout"
	}
	writeJSON(w, status, errorEnvelope{Error: errorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (c *Coordinator) readQueryRequest(w http.ResponseWriter, r *http.Request) (queryRequest, bool) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
		if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
			v, err := strconv.ParseInt(ms, 10, 64)
			if err != nil || v < 0 {
				writeError(w, http.StatusBadRequest, "invalid timeout_ms %q", ms)
				return queryRequest{}, false
			}
			req.TimeoutMS = v
		}
	case http.MethodPost:
		body := http.MaxBytesReader(w, r.Body, c.cfg.maxBodyBytes())
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"request body exceeds %d bytes", tooBig.Limit)
				return queryRequest{}, false
			}
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return queryRequest{}, false
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return queryRequest{}, false
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "missing query")
		return queryRequest{}, false
	}
	return req, true
}

// resolveTenant maps the request's X-API-Key through the registry.
// Without a registry every caller is the anonymous tenant ("", ok).
func (c *Coordinator) resolveTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	if c.cfg.Tenants == nil {
		return "", true
	}
	t, err := c.cfg.Tenants.Resolve(r.Header.Get("X-API-Key"))
	if err != nil {
		writeJSON(w, http.StatusUnauthorized, errorEnvelope{Error: errorBody{
			Code:    "unknown_api_key",
			Message: "unknown API key (set X-API-Key to a configured tenant key)",
		}})
		return "", false
	}
	return t.Name, true
}

func (c *Coordinator) admit(w http.ResponseWriter, tenant string) (release func(), ok bool) {
	ts := c.tenants[tenant]
	if ts != nil {
		select {
		case ts.sem <- struct{}{}:
		default:
			ts.rejected.Add(1)
			c.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				"tenant %q at capacity (%d queries in flight)", tenant, cap(ts.sem))
			return nil, false
		}
	}
	select {
	case c.sem <- struct{}{}:
		c.inFlight.Add(1)
		if ts != nil {
			ts.inFlight.Add(1)
		}
		return func() {
			c.inFlight.Add(-1)
			<-c.sem
			if ts != nil {
				ts.inFlight.Add(-1)
				<-ts.sem
			}
		}, true
	default:
		if ts != nil {
			<-ts.sem
			ts.rejected.Add(1)
		}
		c.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"coordinator at capacity (%d queries in flight)", cap(c.sem))
		return nil, false
	}
}

func (c *Coordinator) queryContext(r *http.Request, req queryRequest, tenant string) (context.Context, context.CancelFunc) {
	timeout := c.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if c.cfg.MaxTimeout > 0 && (timeout == 0 || timeout > c.cfg.MaxTimeout) {
		timeout = c.cfg.MaxTimeout
	}
	ctx := qos.WithTenant(r.Context(), tenant)
	if key := r.Header.Get("X-API-Key"); key != "" {
		// Carry the caller's identity so shard requests run as the caller's
		// tenant, not as the coordinator.
		ctx = qos.WithAPIKey(ctx, key)
	}
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

func (c *Coordinator) countOutcome(code int) {
	if code == http.StatusGatewayTimeout || code == http.StatusServiceUnavailable {
		c.cancelled.Add(1)
	} else {
		c.failed.Add(1)
	}
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	tenant, ok := c.resolveTenant(w, r)
	if !ok {
		return
	}
	req, ok := c.readQueryRequest(w, r)
	if !ok {
		return
	}
	release, ok := c.admit(w, tenant)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := c.queryContext(r, req, tenant)
	defer cancel()

	start := time.Now()
	res, serr := c.executeScatter(ctx, req.Query)
	c.served.Add(1)
	if ts := c.tenants[tenant]; ts != nil {
		ts.served.Add(1)
	}
	if serr != nil {
		c.countOutcome(serr.status)
		writeError(w, serr.status, "%v", serr.err)
		return
	}
	rows, err := exec.DrainRowIter(res.iter)
	res.cleanup()
	res.stats.rows.Add(int64(len(rows)))
	c.fold(res.stats)
	if err != nil {
		c.failed.Add(1)
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	out := make([][]any, len(rows))
	for i, row := range rows {
		out[i] = encodeRow(row)
	}
	writeJSON(w, http.StatusOK, struct {
		Columns []string       `json:"columns"`
		Rows    [][]any        `json:"rows"`
		Stats   coordStatsJSON `json:"stats"`
	}{
		Columns: res.columns,
		Rows:    out,
		Stats: coordStatsJSON{
			WallMicros: time.Since(start).Microseconds(),
			Plan:       planString(res.plan, res.stats),
			Cluster:    res.stats.json(),
		},
	})
}

const (
	streamFlushEvery    = 64
	streamFlushInterval = 50 * time.Millisecond
)

// handleQueryStream streams the merged result as NDJSON with the same
// framing as a single node: a {"columns": [...]} header, one JSON array
// per row, and a {"stats": {...}} trailer — carrying the cluster block
// with partial_results and the failed shards when degraded.
func (c *Coordinator) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	tenant, ok := c.resolveTenant(w, r)
	if !ok {
		return
	}
	req, ok := c.readQueryRequest(w, r)
	if !ok {
		return
	}
	release, ok := c.admit(w, tenant)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := c.queryContext(r, req, tenant)
	defer cancel()

	start := time.Now()
	res, serr := c.executeScatter(ctx, req.Query)
	c.served.Add(1)
	if ts := c.tenants[tenant]; ts != nil {
		ts.served.Add(1)
	}
	if serr != nil {
		c.countOutcome(serr.status)
		writeError(w, serr.status, "%v", serr.err)
		return
	}
	defer func() {
		res.cleanup()
		c.fold(res.stats)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	var wmu sync.Mutex
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	defer func() { close(stopFlush); <-flushDone }()
	go func() {
		defer close(flushDone)
		tick := time.NewTicker(streamFlushInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				wmu.Lock()
				flush()
				wmu.Unlock()
			case <-stopFlush:
				return
			}
		}
	}()

	wmu.Lock()
	err := enc.Encode(map[string][]string{"columns": res.columns})
	flush()
	wmu.Unlock()
	if err != nil {
		c.cancelled.Add(1)
		return
	}

	n := 0
	for {
		row, ok, rerr := res.iter.Next()
		if rerr != nil {
			c.failed.Add(1)
			wmu.Lock()
			_ = enc.Encode(errorResponse{Error: rerr.Error()})
			flush()
			wmu.Unlock()
			return
		}
		if !ok {
			break
		}
		res.stats.rows.Add(1)
		wmu.Lock()
		werr := enc.Encode(encodeRow(row))
		if werr == nil && n%streamFlushEvery == 0 {
			flush()
		}
		wmu.Unlock()
		n++
		if werr != nil {
			var uve *json.UnsupportedValueError
			if errors.As(werr, &uve) {
				c.failed.Add(1)
				wmu.Lock()
				_ = enc.Encode(errorResponse{Error: werr.Error()})
				flush()
				wmu.Unlock()
				return
			}
			c.cancelled.Add(1)
			return
		}
	}
	wmu.Lock()
	defer wmu.Unlock()
	_ = enc.Encode(map[string]coordStatsJSON{"stats": {
		WallMicros: time.Since(start).Microseconds(),
		Plan:       planString(res.plan, res.stats),
		Cluster:    res.stats.json(),
	}})
	flush()
}

// encodeRow converts one typed row to JSON-friendly scalars, mirroring
// the single-node server's encoding so coordinator output is
// byte-identical.
func encodeRow(row []storage.Value) []any {
	out := make([]any, len(row))
	for j, v := range row {
		switch v.Typ {
		case schema.Int64:
			out[j] = v.I
		case schema.Float64:
			out[j] = v.F
		default:
			out[j] = v.S
		}
	}
	return out
}

// handleExplain compiles the scatter plan without executing it.
func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	if _, ok := c.resolveTenant(w, r); !ok {
		return
	}
	req, ok := c.readQueryRequest(w, r)
	if !ok {
		return
	}
	plan, err := BuildScatterPlan(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": fmt.Sprintf(
		"scatter(%s) shards=%d push=%q", plan.Mode, len(c.shards), plan.PushedSQL)})
}

// handleTables returns the union of shard table sets.
func (c *Coordinator) handleTables(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), c.probeTimeout())
	defer cancel()
	seen := map[string]bool{}
	var any bool
	for _, sc := range c.shards {
		names, err := sc.Tables(ctx)
		if err != nil {
			continue
		}
		any = true
		for _, n := range names {
			seen[n] = true
		}
	}
	if !any {
		writeError(w, http.StatusBadGateway, "cluster: no shard answered /tables")
		return
	}
	tables := make([]string, 0, len(seen))
	for n := range seen {
		tables = append(tables, n)
	}
	sort.Strings(tables)
	writeJSON(w, http.StatusOK, map[string][]string{"tables": tables})
}

// handleSchema proxies the first shard that answers; shards of one
// logical dataset share a schema by construction.
func (c *Coordinator) handleSchema(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing table parameter")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.probeTimeout())
	defer cancel()
	var lastErr error
	for _, sc := range c.shards {
		var out json.RawMessage
		if err := sc.getJSON(ctx, "/v1/schema?table="+name, &out); err != nil {
			lastErr = err
			continue
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(out)
		_, _ = w.Write([]byte("\n"))
		return
	}
	status := http.StatusBadGateway
	var se *ShardError
	if errors.As(lastErr, &se) && se.Status == http.StatusNotFound {
		status = http.StatusNotFound
	}
	writeError(w, status, "%v", lastErr)
}

type shardStatusJSON struct {
	Shard string `json:"shard"`
	State string `json:"state"`
	// Breaker is the shard's circuit-breaker state ("closed", "open",
	// "half-open"); BreakerOpened counts how often it has opened.
	Breaker       string `json:"breaker"`
	BreakerOpened int64  `json:"breaker_opened,omitempty"`
}

func (c *Coordinator) shardStates() []shardStatusJSON {
	out := make([]shardStatusJSON, len(c.shards))
	for i, sc := range c.shards {
		state := "unknown"
		switch c.ready[i].Load() {
		case shardReady:
			state = "ready"
		case shardUnready:
			state = "unready"
		}
		out[i] = shardStatusJSON{
			Shard:         sc.Name,
			State:         state,
			Breaker:       c.breakers[i].State(),
			BreakerOpened: c.breakers[i].Opened(),
		}
	}
	return out
}

// coordTenantStatsJSON mirrors the single-node server's per-tenant
// admission accounting so /stats reads the same either side of a
// coordinator.
type coordTenantStatsJSON struct {
	Weight   float64 `json:"weight"`
	Slots    int     `json:"slots"`
	InFlight int64   `json:"in_flight"`
	Served   int64   `json:"served"`
	Rejected int64   `json:"rejected"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	var tenants map[string]coordTenantStatsJSON
	if len(c.tenants) > 0 {
		tenants = make(map[string]coordTenantStatsJSON, len(c.tenants))
		for name, ts := range c.tenants {
			tenants[name] = coordTenantStatsJSON{
				Weight:   ts.weight,
				Slots:    cap(ts.sem),
				InFlight: ts.inFlight.Load(),
				Served:   ts.served.Load(),
				Rejected: ts.rejected.Load(),
			}
		}
	}
	writeJSON(w, http.StatusOK, struct {
		UptimeSeconds float64           `json:"uptime_seconds"`
		Mode          string            `json:"mode"`
		Shards        []shardStatusJSON `json:"shards"`
		Work          metrics.Snapshot  `json:"work"`
		Server        struct {
			InFlight    int64 `json:"in_flight"`
			MaxInFlight int   `json:"max_in_flight"`
			Served      int64 `json:"served"`
			Rejected    int64 `json:"rejected"`
			Cancelled   int64 `json:"cancelled"`
			Failed      int64 `json:"failed"`
		} `json:"server"`
		Tenants map[string]coordTenantStatsJSON `json:"tenants,omitempty"`
	}{
		UptimeSeconds: time.Since(c.started).Seconds(),
		Mode:          "coordinator",
		Shards:        c.shardStates(),
		Work:          c.work.Snapshot(),
		Server: struct {
			InFlight    int64 `json:"in_flight"`
			MaxInFlight int   `json:"max_in_flight"`
			Served      int64 `json:"served"`
			Rejected    int64 `json:"rejected"`
			Cancelled   int64 `json:"cancelled"`
			Failed      int64 `json:"failed"`
		}{
			InFlight:    c.inFlight.Load(),
			MaxInFlight: cap(c.sem),
			Served:      c.served.Load(),
			Rejected:    c.rejected.Load(),
			Cancelled:   c.cancelled.Load(),
			Failed:      c.failed.Load(),
		},
		Tenants: tenants,
	})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports the coordinator ready when every shard admits
// queries. Without a background poller the shards are probed on demand.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.cfg.HealthInterval <= 0 {
		ctx, cancel := context.WithTimeout(r.Context(), c.probeTimeout())
		defer cancel()
		var wg sync.WaitGroup
		for i := range c.shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := c.shards[i].Ready(ctx); err != nil {
					c.ready[i].Store(shardUnready)
				} else {
					c.ready[i].Store(shardReady)
				}
			}(i)
		}
		wg.Wait()
	}
	states := c.shardStates()
	allReady := true
	for _, s := range states {
		if s.State != "ready" {
			allReady = false
		}
	}
	if !allReady {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "degraded", "shards": states,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": states})
}
