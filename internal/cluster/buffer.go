package cluster

import (
	"nodb/internal/storage"
)

// bufferedIter decouples one shard's network stream from the merge loop:
// a goroutine pulls rows from the underlying iterator into a bounded
// channel, so all shards make progress concurrently while the merge
// consumes single-threaded. Stop unblocks and retires the goroutine when
// the merge abandons the stream early (global LIMIT satisfied, fatal
// error) — paired with cancelling the shard's request context, that is
// the coordinator's upstream cancellation.
type bufferedIter struct {
	src    *shardIter
	ch     chan bufferedRow
	quit   chan struct{}
	exited chan struct{}
	err    error
	done   bool
}

type bufferedRow struct {
	row []storage.Value
	err error
}

const bufferedRows = 256

func newBufferedIter(src *shardIter) *bufferedIter {
	b := &bufferedIter{
		src:    src,
		ch:     make(chan bufferedRow, bufferedRows),
		quit:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	go func() {
		defer close(b.exited)
		defer src.Close()
		for {
			row, ok, err := src.Next()
			if err != nil {
				select {
				case b.ch <- bufferedRow{err: err}:
				case <-b.quit:
				}
				return
			}
			if !ok {
				close(b.ch)
				return
			}
			select {
			case b.ch <- bufferedRow{row: row}:
			case <-b.quit:
				return
			}
		}
	}()
	return b
}

// Next implements exec.RowIter.
func (b *bufferedIter) Next() ([]storage.Value, bool, error) {
	if b.done {
		return nil, false, b.err
	}
	r, ok := <-b.ch
	if !ok {
		b.done = true
		return nil, false, nil
	}
	if r.err != nil {
		b.done, b.err = true, r.err
		return nil, false, r.err
	}
	return r.row, true, nil
}

// StopWait retires the producer goroutine and waits for it, then returns
// the shard iterator's total byte count — safe to read only after the
// producer has exited. The caller must cancel the shard's request context
// first if the producer may be blocked on a network read.
func (b *bufferedIter) StopWait() int64 {
	select {
	case <-b.quit:
	default:
		close(b.quit)
	}
	<-b.exited
	return b.src.Bytes()
}
