package cluster

import (
	"fmt"

	"nodb/internal/exec"
	"nodb/internal/expr"
	"nodb/internal/sql"
)

// Mode selects how shard partial streams merge into the final answer.
type Mode int

// Merge modes.
const (
	// ModeConcat drains shard streams in shard order (plain selects).
	ModeConcat Mode = iota
	// ModeSortMerge k-way merges individually ordered shard streams.
	ModeSortMerge
	// ModeAgg re-aggregates one partial row per shard into one final row.
	ModeAgg
	// ModeGroupAgg merges per-shard group partials, then applies any
	// ORDER BY / LIMIT at the coordinator.
	ModeGroupAgg
)

func (m Mode) String() string {
	switch m {
	case ModeConcat:
		return "concat"
	case ModeSortMerge:
		return "sortmerge"
	case ModeAgg:
		return "agg"
	case ModeGroupAgg:
		return "groupagg"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// OrderKey is one ORDER BY entry by output-column name; the coordinator
// resolves it to a column index at merge time (against the shard stream
// header in ModeSortMerge, against the final columns in ModeGroupAgg).
type OrderKey struct {
	Name string
	Desc bool
}

// ScatterPlan is the coordinator's compiled form of one query: the SQL
// pushed to every shard plus everything needed to merge the partials back
// into the exact single-node answer.
type ScatterPlan struct {
	// Table is the FROM table (shard pruning keys on it).
	Table string
	// Mode picks the merge operator family.
	Mode Mode
	// PushedSQL is the rewritten statement sent to every shard.
	PushedSQL string
	// Limit is the global row limit applied at the coordinator (-1 none).
	Limit int64
	// Order holds ORDER BY keys for ModeSortMerge and ModeGroupAgg.
	Order []OrderKey
	// Specs map final output columns onto partial-row columns
	// (ModeAgg/ModeGroupAgg), in final column order.
	Specs []exec.PartialAggSpec
	// KeyCols are the partial-row columns forming the group key
	// (ModeGroupAgg).
	KeyCols []int
	// SentinelCol is the appended count(*) column that flags empty-shard
	// partial rows (ModeAgg); -1 otherwise.
	SentinelCol int
	// Columns are the final output column names for ModeAgg/ModeGroupAgg;
	// nil in the streaming modes, where the shard header is authoritative.
	Columns []string
	// Where keeps the original predicates for synopsis-based shard pruning.
	Where []sql.Predicate
}

// BuildScatterPlan parses a query and compiles it into a scatter plan.
// The rewrite mirrors the single-node planner's validation rules so a
// query the cluster rejects would have been rejected on one node too —
// with one extra restriction: joins stay single-node.
func BuildScatterPlan(query string) (*ScatterPlan, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if stmt.NumParams > 0 {
		return nil, fmt.Errorf("cluster: statement has %d unbound parameters; bind arguments first", stmt.NumParams)
	}
	if len(stmt.Joins) > 0 {
		return nil, fmt.Errorf("cluster: joins are not supported in cluster mode")
	}

	p := &ScatterPlan{
		Table:       stmt.From.Name,
		Limit:       int64(stmt.Limit),
		SentinelCol: -1,
		Where:       stmt.Where,
	}
	for _, o := range stmt.OrderBy {
		p.Order = append(p.Order, OrderKey{Name: o.Col.Column, Desc: o.Desc})
	}

	switch {
	case !stmt.HasAggregates():
		if len(stmt.GroupBy) > 0 {
			return nil, fmt.Errorf("cluster: GROUP BY without aggregates is not supported")
		}
		if len(stmt.OrderBy) > 0 {
			p.Mode = ModeSortMerge
		} else {
			p.Mode = ModeConcat
		}
		// Plain selects push through untouched: each shard applies the
		// filter — and the LIMIT, a safe upper bound per shard — and the
		// coordinator enforces order and the global limit.
		p.PushedSQL = stmt.String()
		return p, nil
	case len(stmt.GroupBy) == 0:
		return buildAggPlan(p, stmt)
	default:
		return buildGroupAggPlan(p, stmt)
	}
}

// aggName reproduces the single-node planner's output column naming.
func aggName(it sql.SelectItem) string {
	if it.Star {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", it.Agg, it.Col.Column)
}

// buildAggPlan compiles a global (non-grouped) aggregate query. Each
// aggregate pushes down as a mergeable partial — avg(x) becomes sum(x)
// plus an appended count(x) — and an appended count(*) sentinel lets the
// merger skip shards with zero qualifying rows, whose min/max slots are
// zero-value placeholders.
func buildAggPlan(p *ScatterPlan, stmt *sql.SelectStmt) (*ScatterPlan, error) {
	p.Mode = ModeAgg
	if len(stmt.OrderBy) > 0 {
		// A pure-aggregate query has no plain output column to order by;
		// the single-node planner rejects this too.
		return nil, fmt.Errorf("cluster: ORDER BY column %q must appear in the select list", stmt.OrderBy[0].Col.Column)
	}
	pushed := &sql.SelectStmt{From: stmt.From, Where: stmt.Where, Limit: -1}
	var tail []sql.SelectItem // appended avg-count columns, then the sentinel
	for _, it := range stmt.Items {
		if it.Agg == sql.AggNone {
			return nil, fmt.Errorf("cluster: mixing plain columns and aggregates requires GROUP BY")
		}
		p.Columns = append(p.Columns, aggName(it))
		spec := exec.PartialAggSpec{Kind: it.Agg, Col: len(pushed.Items)}
		switch it.Agg {
		case sql.AggAvg:
			// Shards return the partial sum here; the matching count is
			// appended after the user-visible columns.
			pushed.Items = append(pushed.Items, sql.SelectItem{Agg: sql.AggSum, Col: it.Col})
			spec.CountCol = len(stmt.Items) + len(tail)
			tail = append(tail, sql.SelectItem{Agg: sql.AggCount, Col: it.Col})
		default:
			pushed.Items = append(pushed.Items, it)
		}
		p.Specs = append(p.Specs, spec)
	}
	pushed.Items = append(pushed.Items, tail...)
	p.SentinelCol = len(pushed.Items)
	pushed.Items = append(pushed.Items, sql.SelectItem{Agg: sql.AggCount, Star: true})
	p.PushedSQL = pushed.String()
	return p, nil
}

// buildGroupAggPlan compiles a GROUP BY query. Aggregates push down as
// partials like the global case; group keys missing from the select list
// are appended so the coordinator can re-group; ORDER BY and LIMIT are
// held back and applied over the merged groups. No sentinel is needed —
// a shard emits group rows only for groups it actually saw.
func buildGroupAggPlan(p *ScatterPlan, stmt *sql.SelectStmt) (*ScatterPlan, error) {
	p.Mode = ModeGroupAgg
	pushed := &sql.SelectStmt{From: stmt.From, Where: stmt.Where, GroupBy: stmt.GroupBy, Limit: -1}
	var tail []sql.SelectItem
	for _, it := range stmt.Items {
		if it.Star && it.Agg == sql.AggNone {
			return nil, fmt.Errorf("cluster: * is not supported with GROUP BY in cluster mode")
		}
		spec := exec.PartialAggSpec{Kind: it.Agg, Col: len(pushed.Items)}
		switch it.Agg {
		case sql.AggNone:
			if !inGroupBy(stmt.GroupBy, it.Col) {
				return nil, fmt.Errorf("cluster: selected column %q is not in GROUP BY", it.Col.Column)
			}
			p.Columns = append(p.Columns, it.Col.Column)
			pushed.Items = append(pushed.Items, it)
		case sql.AggAvg:
			p.Columns = append(p.Columns, aggName(it))
			pushed.Items = append(pushed.Items, sql.SelectItem{Agg: sql.AggSum, Col: it.Col})
			spec.CountCol = len(stmt.Items) + len(tail)
			tail = append(tail, sql.SelectItem{Agg: sql.AggCount, Col: it.Col})
		default:
			p.Columns = append(p.Columns, aggName(it))
			pushed.Items = append(pushed.Items, it)
		}
		p.Specs = append(p.Specs, spec)
	}
	pushed.Items = append(pushed.Items, tail...)
	// Append group keys the select list doesn't carry, so every key
	// participates in the coordinator's re-grouping.
	for _, g := range stmt.GroupBy {
		idx := -1
		for i, it := range pushed.Items {
			if it.Agg == sql.AggNone && !it.Star && it.Col.Column == g.Column {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = len(pushed.Items)
			pushed.Items = append(pushed.Items, sql.SelectItem{Col: g})
		}
		p.KeyCols = append(p.KeyCols, idx)
	}
	// ORDER BY must name a plain select-list column — same rule as the
	// single-node planner — and resolves against the final columns.
	for _, o := range stmt.OrderBy {
		found := false
		for _, it := range stmt.Items {
			if it.Agg == sql.AggNone && it.Col.Column == o.Col.Column {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: ORDER BY column %q must appear in the select list", o.Col.Column)
		}
	}
	p.PushedSQL = pushed.String()
	return p, nil
}

func inGroupBy(keys []sql.ColRef, c sql.ColRef) bool {
	for _, g := range keys {
		if g.Column == c.Column {
			return true
		}
	}
	return false
}

// bindConjunction converts the plan's WHERE predicates into a bound
// conjunction over the shard synopsis's column ordinals, for whole-shard
// pruning. ok is false — prune nothing — when any predicate references a
// column the synopsis doesn't know or uses an unmappable operator.
func bindConjunction(where []sql.Predicate, syn TableSynopsis) (expr.Conjunction, bool) {
	var conj expr.Conjunction
	for _, pred := range where {
		col := syn.ColumnIndex(pred.Col.Column)
		if col < 0 {
			return expr.Conjunction{}, false
		}
		bp := expr.Pred{Col: col, Between: pred.Between}
		if pred.Between {
			bp.Val, bp.Val2 = pred.Lo, pred.Hi
		} else {
			op, ok := bindCmpOp(pred.Op)
			if !ok {
				return expr.Conjunction{}, false
			}
			bp.Op = op
			bp.Val = pred.Val
		}
		conj.Preds = append(conj.Preds, bp)
	}
	return conj, true
}

func bindCmpOp(op string) (expr.CmpOp, bool) {
	switch op {
	case "<":
		return expr.Lt, true
	case "<=":
		return expr.Le, true
	case ">":
		return expr.Gt, true
	case ">=":
		return expr.Ge, true
	case "=":
		return expr.Eq, true
	case "<>":
		return expr.Ne, true
	default:
		return 0, false
	}
}
