package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(3, time.Hour, 0)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	if b.Opened() != 1 {
		t.Fatalf("opened = %d, want 1", b.Opened())
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(3, time.Hour, 0)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("success must reset the consecutive-failure streak")
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	b := NewBreaker(1, time.Nanosecond, time.Nanosecond)
	b.Failure()
	time.Sleep(time.Millisecond) // let the open interval expire
	if !b.Allow() {
		t.Fatal("expired open interval must admit a probe")
	}
	if b.Allow() {
		t.Fatal("half-open must admit exactly one probe at a time")
	}
	b.Success()
	if !b.Allow() {
		t.Fatal("probe success must close the breaker")
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state = %q, want closed", got)
	}
}

func TestBreakerFailedProbeReopensWithLongerDelay(t *testing.T) {
	b := NewBreaker(1, 10*time.Millisecond, time.Hour)
	b.Failure() // opens with base delay
	d1 := b.delay
	time.Sleep(50 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("expired open interval must admit a probe")
	}
	b.Failure() // failed probe: reopen with doubled delay
	if b.delay != 2*d1 {
		t.Fatalf("delay after failed probe = %v, want %v", b.delay, 2*d1)
	}
	if b.Opened() != 2 {
		t.Fatalf("opened = %d, want 2", b.Opened())
	}
}

func TestBreakerDelayCapped(t *testing.T) {
	b := NewBreaker(1, 10*time.Millisecond, 25*time.Millisecond)
	b.Failure()
	for i := 0; i < 5; i++ {
		b.mu.Lock()
		b.state = breakerHalfOpen // force probe state without sleeping
		b.mu.Unlock()
		b.Failure()
	}
	if b.delay > 25*time.Millisecond {
		t.Fatalf("delay %v exceeds cap", b.delay)
	}
}
