package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodb"
	"nodb/internal/cluster"
	"nodb/internal/csvgen"
	"nodb/internal/qos"
	"nodb/internal/server"
)

const testRows = 1200

// testSpec is the differential suite's table: a1 a random permutation of
// 0..rows-1 (selective predicates), a2 uniform over a small domain
// (group-by keys and ORDER BY ties), a3 sequential (contiguous per-shard
// ranges, so synopsis pruning has something to prune on).
func testSpec(rows int) csvgen.Spec {
	return csvgen.Spec{
		Rows: rows,
		Cols: 3,
		Seed: 21,
		ColSpecs: []csvgen.ColSpec{
			{Kind: csvgen.UniqueInts},
			{Kind: csvgen.UniformInts, Max: 7},
			{Kind: csvgen.SequentialInts},
		},
	}
}

// startNode links path as table "t" on a fresh DB and serves it.
func startNode(t *testing.T, path string) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	db := nodb.Open(nodb.Options{Policy: nodb.PartialLoadsV2, SplitDir: filepath.Join(dir, "splits")})
	t.Cleanup(func() { db.Close() })
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{DB: db})
	srv.MarkReady()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// buildCluster generates n shard files plus the unsharded file, serves
// each shard on its own node, and returns the shard URLs and a single
// node over the whole table.
func buildCluster(t *testing.T, rows, n int) (shardURLs []string, single *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	full := filepath.Join(dir, "full.csv")
	if err := csvgen.WriteFile(full, testSpec(rows)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		spec := testSpec(rows)
		spec.ShardIndex, spec.ShardCount = i, n
		path := filepath.Join(dir, fmt.Sprintf("shard%d.csv", i))
		if err := csvgen.WriteFile(path, spec); err != nil {
			t.Fatal(err)
		}
		shardURLs = append(shardURLs, startNode(t, path).URL)
	}
	return shardURLs, startNode(t, full)
}

func startCoordinator(t *testing.T, cfg cluster.CoordinatorConfig) *httptest.Server {
	t.Helper()
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	coord, err := cluster.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)
	return ts
}

// streamResult is one /query/stream response, split into its NDJSON
// frames.
type streamResult struct {
	header  string
	rows    []string
	trailer string // the {"stats": ...} line, empty if the stream errored
	errLine string // the {"error": ...} line, if any
}

func stream(t *testing.T, base, query string) streamResult {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"query": query})
	resp, err := http.Post(base+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream %q: http %d: %s", query, resp.StatusCode, b)
	}
	var out streamResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case out.header == "":
			out.header = line
		case strings.HasPrefix(line, "["):
			out.rows = append(out.rows, line)
		case strings.HasPrefix(line, `{"stats"`):
			out.trailer = line
		case strings.HasPrefix(line, `{"error"`):
			out.errLine = line
		default:
			t.Fatalf("unexpected stream line: %s", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// clusterTrailer extracts the coordinator trailer's cluster block.
func clusterTrailer(t *testing.T, sr streamResult) map[string]any {
	t.Helper()
	if sr.trailer == "" {
		t.Fatalf("stream has no stats trailer (error line: %s)", sr.errLine)
	}
	var tr struct {
		Stats struct {
			Cluster map[string]any `json:"cluster"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(sr.trailer), &tr); err != nil {
		t.Fatalf("bad trailer %q: %v", sr.trailer, err)
	}
	return tr.Stats.Cluster
}

// differentialQueries is the pinned suite: every shape the scatter plan
// distinguishes, each required byte-identical to the single node.
var differentialQueries = []string{
	"select a1, a2 from t",
	"select * from t where a1 > 700",
	"select a1 from t where a1 between 100 and 300",
	"select a1, a2 from t limit 13",
	"select a1, a2 from t order by a2, a1 limit 37",
	"select a1 from t order by a1 desc limit 10",
	"select a2, a1 from t where a2 = 3 order by a2 desc, a1",
	"select count(*) from t",
	"select count(*), sum(a1), min(a1), max(a1), avg(a1) from t",
	"select count(*), sum(a1), min(a1), max(a1) from t where a1 < 0",
	"select sum(a1), avg(a3) from t where a2 <> 2",
	"select a2, sum(a1), count(*), avg(a1) from t group by a2",
	"select a2, sum(a1) from t group by a2 order by a2",
	"select a2, count(*) from t group by a2 order by a2 desc limit 3",
	"select sum(a1), count(*) from t group by a2",
}

// TestDifferentialByteIdentity pins the core acceptance property: a
// 3-shard coordinator's stream (header + rows) is byte-identical to a
// single node scanning the concatenated file, across plain selects,
// filters, limits, ORDER BY with cross-shard ties, global aggregates
// (including empty input) and group-bys.
func TestDifferentialByteIdentity(t *testing.T) {
	shards, single := buildCluster(t, testRows, 3)
	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: shards})

	for _, q := range differentialQueries {
		want := stream(t, single.URL, q)
		got := stream(t, coord.URL, q)
		if got.header != want.header {
			t.Errorf("%q: header differs:\n  coord:  %s\n  single: %s", q, got.header, want.header)
			continue
		}
		if len(got.rows) != len(want.rows) {
			t.Errorf("%q: %d rows from coordinator, %d from single node", q, len(got.rows), len(want.rows))
			continue
		}
		for i := range got.rows {
			if got.rows[i] != want.rows[i] {
				t.Errorf("%q: row %d differs:\n  coord:  %s\n  single: %s", q, i, got.rows[i], want.rows[i])
				break
			}
		}
		if got.trailer == "" {
			t.Errorf("%q: coordinator stream missing stats trailer", q)
		}
	}
}

// TestDifferentialBufferedQuery pins /query (the buffered endpoint)
// against the single node for a representative subset.
func TestDifferentialBufferedQuery(t *testing.T) {
	shards, single := buildCluster(t, testRows, 3)
	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: shards})

	type queryOut struct {
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	post := func(base, q string) queryOut {
		body, _ := json.Marshal(map[string]string{"query": q})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("query %q: http %d: %s", q, resp.StatusCode, b)
		}
		var out queryOut
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, q := range []string{
		"select count(*), sum(a1), avg(a1) from t where a1 >= 600",
		"select a2, sum(a1) from t group by a2 order by a2",
		"select a1 from t order by a1 limit 5",
	} {
		want := post(single.URL, q)
		got := post(coord.URL, q)
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("%q:\n  coord:  %s\n  single: %s", q, gotJSON, wantJSON)
		}
	}
}

// TestSynopsisPruningSkipsShards warms the shards' scan synopses, then
// runs a query whose predicate lands entirely inside one shard's a3
// range: the coordinator must prune at least one shard and still return
// exactly the single node's answer.
func TestSynopsisPruningSkipsShards(t *testing.T) {
	shards, single := buildCluster(t, testRows, 3)
	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: shards})

	// Warm: a full scan over a3 teaches every shard its portion layout
	// and zone maps, which /cluster/synopsis then exports.
	_ = stream(t, coord.URL, "select sum(a3) from t")

	// a3 is sequential 0..N-1, so shard 1 holds [0, N/3): this predicate
	// is provably empty on shards 2 and 3.
	q := "select a1, a3 from t where a3 between 10 and 50"
	want := stream(t, single.URL, q)
	got := stream(t, coord.URL, q)
	if got.header != want.header || len(got.rows) != len(want.rows) {
		t.Fatalf("pruned query differs: %d rows vs %d", len(got.rows), len(want.rows))
	}
	for i := range got.rows {
		if got.rows[i] != want.rows[i] {
			t.Fatalf("pruned query row %d differs:\n  coord:  %s\n  single: %s", i, got.rows[i], want.rows[i])
		}
	}
	cl := clusterTrailer(t, got)
	if pruned, _ := cl["shards_pruned"].(float64); pruned < 1 {
		t.Fatalf("expected at least one pruned shard, got cluster stats %v", cl)
	}
	if partial, _ := cl["partial_results"].(bool); partial {
		t.Fatalf("pruning must not be reported as partial results: %v", cl)
	}

	// An aggregate over a pruned range must also match (the kept shard's
	// sentinel row carries the whole answer).
	qa := "select count(*), sum(a1) from t where a3 between 10 and 50"
	wantA := stream(t, single.URL, qa)
	gotA := stream(t, coord.URL, qa)
	if len(gotA.rows) != 1 || gotA.rows[0] != wantA.rows[0] {
		t.Fatalf("pruned aggregate differs: %v vs %v", gotA.rows, wantA.rows)
	}
}

// fakeShard is a scriptable shard: it serves /readyz and /cluster/synopsis
// like a real node, and streams canned rows on /query/stream with
// programmable failures — fail the first N opens with 500, or truncate
// the stream (no trailer) after K rows for the first M attempts.
type fakeShard struct {
	columns   []string
	rows      [][]any
	failOpens atomic.Int32 // remaining opens to fail with 500
	truncAt   int          // rows before truncating; 0 = never
	truncFor  atomic.Int32 // remaining attempts that truncate

	attempts atomic.Int32
	lastKey  atomic.Value // last X-API-Key seen on /query/stream
}

func (f *fakeShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Real shards serve both /v1 and legacy paths; accept either.
	switch strings.TrimPrefix(r.URL.Path, "/v1") {
	case "/readyz", "/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	case "/cluster/synopsis":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"tables":{}}`)
	case "/query/stream":
		f.attempts.Add(1)
		f.lastKey.Store(r.Header.Get("X-API-Key"))
		if f.failOpens.Add(-1) >= 0 {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"injected open failure"}`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		_ = enc.Encode(map[string][]string{"columns": f.columns})
		truncate := f.truncAt > 0 && f.truncFor.Add(-1) >= 0
		for i, row := range f.rows {
			if truncate && i == f.truncAt {
				// Die mid-stream: no trailer, connection just ends.
				return
			}
			_ = enc.Encode(row)
		}
		_ = enc.Encode(map[string]any{"stats": map[string]any{}})
	default:
		http.NotFound(w, r)
	}
}

func fakeRows(vals ...int64) [][]any {
	out := make([][]any, len(vals))
	for i, v := range vals {
		out[i] = []any{v}
	}
	return out
}

// TestShardKillMidStreamPartialResults kills one shard mid-stream (it
// truncates on every attempt, exhausting the retry budget) and requires
// the coordinator to complete with partial_results and the failed shard
// named in the trailer — not an error, and not a silent truncation.
func TestShardKillMidStreamPartialResults(t *testing.T) {
	healthy := httptest.NewServer(&fakeShard{columns: []string{"a1"}, rows: fakeRows(1, 2, 3)})
	t.Cleanup(healthy.Close)
	dying := &fakeShard{columns: []string{"a1"}, rows: fakeRows(10, 20, 30), truncAt: 1}
	dying.truncFor.Store(100) // truncate every attempt
	dyingSrv := httptest.NewServer(dying)
	t.Cleanup(dyingSrv.Close)

	coord := startCoordinator(t, cluster.CoordinatorConfig{
		Shards:       []string{healthy.URL, dyingSrv.URL},
		AllowPartial: true,
		Retries:      -1, // single attempt: the kill is terminal
	})
	got := stream(t, coord.URL, "select a1 from t")
	// The healthy shard's rows must all be present; the dying shard may
	// contribute the prefix it delivered before the kill, but its loss is
	// flagged below — never silent.
	want := []string{"[1]", "[2]", "[3]"}
	if len(got.rows) < 3 {
		t.Fatalf("expected at least the healthy shard's 3 rows, got %v", got.rows)
	}
	for i, w := range want {
		if got.rows[i] != w {
			t.Fatalf("row %d = %s, want %s (healthy shard rows must survive)", i, got.rows[i], w)
		}
	}
	cl := clusterTrailer(t, got)
	if partial, _ := cl["partial_results"].(bool); !partial {
		t.Fatalf("expected partial_results=true, got %v", cl)
	}
	failed, _ := cl["failed_shards"].([]any)
	if len(failed) != 1 || failed[0] != dyingSrv.URL {
		t.Fatalf("expected failed_shards=[%s], got %v", dyingSrv.URL, cl)
	}
}

// TestShardKillWithoutPartialFails pins the strict mode: the same dead
// shard fails the whole query when partial results are disabled.
func TestShardKillWithoutPartialFails(t *testing.T) {
	healthy := httptest.NewServer(&fakeShard{columns: []string{"a1"}, rows: fakeRows(1)})
	t.Cleanup(healthy.Close)
	dying := &fakeShard{columns: []string{"a1"}, rows: fakeRows(10, 20), truncAt: 1}
	dying.truncFor.Store(100)
	dyingSrv := httptest.NewServer(dying)
	t.Cleanup(dyingSrv.Close)

	coord := startCoordinator(t, cluster.CoordinatorConfig{
		Shards:  []string{healthy.URL, dyingSrv.URL},
		Retries: -1,
	})
	got := stream(t, coord.URL, "select a1 from t")
	if got.errLine == "" {
		t.Fatalf("expected an in-band error, got rows=%v trailer=%s", got.rows, got.trailer)
	}
}

// TestRetryRecoversFlakyOpen pins the retry path: a shard that 500s its
// first open succeeds on the retry, the query completes clean (no
// partial), and the trailer records the retry.
func TestRetryRecoversFlakyOpen(t *testing.T) {
	flaky := &fakeShard{columns: []string{"a1"}, rows: fakeRows(1, 2)}
	flaky.failOpens.Store(1)
	flakySrv := httptest.NewServer(flaky)
	t.Cleanup(flakySrv.Close)

	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: []string{flakySrv.URL}})
	got := stream(t, coord.URL, "select a1 from t")
	if len(got.rows) != 2 {
		t.Fatalf("expected 2 rows after retry, got %v (err %s)", got.rows, got.errLine)
	}
	cl := clusterTrailer(t, got)
	if retries, _ := cl["shard_retries"].(float64); retries < 1 {
		t.Fatalf("expected shard_retries >= 1, got %v", cl)
	}
	if partial, _ := cl["partial_results"].(bool); partial {
		t.Fatalf("recovered retry must not be partial: %v", cl)
	}
}

// TestSkipAheadRetryDeliversExactlyOnce pins resumption: a shard that
// truncates its first attempt after 1 row must, after the retry re-opens
// and skips past the delivered prefix, yield each row exactly once.
func TestSkipAheadRetryDeliversExactlyOnce(t *testing.T) {
	sh := &fakeShard{columns: []string{"a1"}, rows: fakeRows(10, 20, 30), truncAt: 1}
	sh.truncFor.Store(1) // only the first attempt truncates
	srv := httptest.NewServer(sh)
	t.Cleanup(srv.Close)

	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: []string{srv.URL}})
	got := stream(t, coord.URL, "select a1 from t")
	want := []string{"[10]", "[20]", "[30]"}
	if len(got.rows) != len(want) {
		t.Fatalf("got %v, want %v", got.rows, want)
	}
	for i := range want {
		if got.rows[i] != want[i] {
			t.Fatalf("row %d = %s, want %s (skip-ahead must not duplicate or drop)", i, got.rows[i], want[i])
		}
	}
	if sh.attempts.Load() < 2 {
		t.Fatalf("expected a second attempt, saw %d", sh.attempts.Load())
	}
}

// TestAllShardsDeadFails requires a hard error — not an empty success —
// when every shard is unreachable, even in partial mode.
func TestAllShardsDeadFails(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on

	coord := startCoordinator(t, cluster.CoordinatorConfig{
		Shards:       []string{dead.URL},
		AllowPartial: true,
		Retries:      -1,
	})
	body, _ := json.Marshal(map[string]string{"query": "select a1 from t"})
	resp, err := http.Post(coord.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("expected an error status with all shards dead, got 200")
	}
}

// TestCoordinatorRejectsJoinsAndParams pins coordinator-side validation.
func TestCoordinatorRejectsJoinsAndParams(t *testing.T) {
	sh := httptest.NewServer(&fakeShard{columns: []string{"a1"}, rows: fakeRows(1)})
	t.Cleanup(sh.Close)
	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: []string{sh.URL}})
	for _, q := range []string{
		"select a.a1 from t a join u b on a.a1 = b.a1",
		"select a1 from t where a1 > ?",
		"select a1, count(*) from t",
	} {
		body, _ := json.Marshal(map[string]string{"query": q})
		resp, err := http.Post(coord.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestReadyzGatesAdmission pins the readiness protocol: a shard that has
// not called MarkReady reports 503, and the coordinator's own /readyz
// reflects the degraded shard set.
func TestReadyzGatesAdmission(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := csvgen.WriteFile(path, testSpec(50)); err != nil {
		t.Fatal(err)
	}
	db := nodb.Open(nodb.Options{SplitDir: filepath.Join(dir, "splits")})
	t.Cleanup(func() { db.Close() })
	if err := db.Link("t", path); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{DB: db})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	get := func(url string) int {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(ts.URL + "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before MarkReady = %d, want 503", code)
	}
	if code := get(ts.URL + "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz must be live before readiness, got %d", code)
	}

	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: []string{ts.URL}})
	if code := get(coord.URL + "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("coordinator /readyz with unready shard = %d, want 503", code)
	}

	srv.MarkReady()
	if code := get(ts.URL + "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after MarkReady = %d, want 200", code)
	}
	if code := get(coord.URL + "/readyz"); code != http.StatusOK {
		t.Fatalf("coordinator /readyz with ready shard = %d, want 200", code)
	}
}

// TestConcurrentScatter hammers the coordinator from many goroutines —
// mixed streaming and aggregate shapes plus a mid-stream client
// disconnect — primarily for the race detector.
func TestConcurrentScatter(t *testing.T) {
	shards, _ := buildCluster(t, 600, 3)
	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: shards, AllowPartial: true})

	queries := []string{
		"select a1, a2 from t",
		"select a1 from t order by a1 limit 20",
		"select count(*), sum(a1) from t",
		"select a2, count(*) from t group by a2",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				q := queries[(g+i)%len(queries)]
				sr := stream(t, coord.URL, q)
				if sr.errLine != "" {
					t.Errorf("%q: %s", q, sr.errLine)
				}
			}
		}(g)
	}
	// Client disconnects mid-stream: the coordinator must cancel
	// upstream without disturbing the concurrent queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			body, _ := json.Marshal(map[string]string{"query": "select a1, a2 from t"})
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				coord.URL+"/query/stream", bytes.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				cancel()
				continue
			}
			buf := make([]byte, 256)
			_, _ = resp.Body.Read(buf)
			cancel()
			resp.Body.Close()
		}
	}()
	wg.Wait()
}

// TestMergeSortLimitCancelsUpstream pins upstream cancellation end to
// end: an ORDER BY + small LIMIT over large shards must finish promptly,
// well before the shards could stream all their rows.
func TestMergeSortLimitCancelsUpstream(t *testing.T) {
	shards, single := buildCluster(t, 3000, 3)
	coord := startCoordinator(t, cluster.CoordinatorConfig{Shards: shards})
	q := "select a1 from t order by a1 limit 3"
	want := stream(t, single.URL, q)
	got := stream(t, coord.URL, q)
	if len(got.rows) != 3 {
		t.Fatalf("got %v", got.rows)
	}
	for i := range got.rows {
		if got.rows[i] != want.rows[i] {
			t.Fatalf("row %d: %s vs %s", i, got.rows[i], want.rows[i])
		}
	}
}

// TestCoordinatorTenantAuth pins the coordinator's tenant surface: with a
// reject-unknown registry a keyless or wrong-key request gets the 401
// envelope on every query-shaped endpoint, a keyed request succeeds with
// the caller's key forwarded to the shards, and /stats exposes per-tenant
// admission accounting that advances as the tenant is served.
func TestCoordinatorTenantAuth(t *testing.T) {
	sh := &fakeShard{columns: []string{"a1"}, rows: fakeRows(1, 2, 3)}
	shSrv := httptest.NewServer(sh)
	t.Cleanup(shSrv.Close)

	reg, err := qos.NewRegistry([]qos.Tenant{
		{Name: "analytics", Key: "secret", Weight: 3},
		{Name: "reporting", Key: "rkey", Weight: 1},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	coord := startCoordinator(t, cluster.CoordinatorConfig{
		Shards:  []string{shSrv.URL},
		Tenants: reg,
	})

	post := func(path, key string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"query": "select a1 from t"})
		req, _ := http.NewRequest(http.MethodPost, coord.URL+path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for _, path := range []string{"/v1/query", "/v1/query/stream", "/v1/explain", "/query"} {
		for _, key := range []string{"", "wrong"} {
			resp := post(path, key)
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("%s with key %q: status %d, want 401", path, key, resp.StatusCode)
			}
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("%s: decoding 401 body: %v", path, err)
			}
			resp.Body.Close()
			if env.Error.Code != "unknown_api_key" {
				t.Fatalf("%s: error code %q, want unknown_api_key", path, env.Error.Code)
			}
		}
	}

	resp := post("/v1/query", "secret")
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("keyed query: status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Rows [][]int64 `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Rows) != 3 {
		t.Fatalf("keyed query rows = %v, want 3", out.Rows)
	}
	if got, _ := sh.lastKey.Load().(string); got != "secret" {
		t.Fatalf("shard saw X-API-Key %q, want the caller's key forwarded", got)
	}

	sresp := post("/v1/stats", "")
	var stats struct {
		Tenants map[string]struct {
			Weight float64 `json:"weight"`
			Slots  int     `json:"slots"`
			Served int64   `json:"served"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	an, ok := stats.Tenants["analytics"]
	if !ok {
		t.Fatalf("stats missing analytics tenant: %+v", stats.Tenants)
	}
	if an.Weight != 3 || an.Slots < 1 || an.Served != 1 {
		t.Fatalf("analytics tenant stats = %+v, want weight 3, slots >= 1, served 1", an)
	}
	if _, ok := stats.Tenants["reporting"]; !ok {
		t.Fatalf("stats missing reporting tenant: %+v", stats.Tenants)
	}
}

// hangShard answers health and synopsis probes instantly but never
// responds to a query until the request is cancelled — the worst-case
// dead shard: reachable, just infinitely slow.
type hangShard struct {
	queries atomic.Int32
}

func (h *hangShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch strings.TrimPrefix(r.URL.Path, "/v1") {
	case "/readyz", "/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	case "/cluster/synopsis":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"tables":{}}`)
	case "/query/stream":
		h.queries.Add(1)
		// Drain the body so the server arms close-detection and cancels
		// the request context when the coordinator gives up.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	default:
		http.NotFound(w, r)
	}
}

// TestCircuitBreakerSkipsOpenShard pins the breaker's latency win: after
// a hung shard burns one query's ShardTimeout and opens its breaker, the
// next query must skip that shard instantly — completing in a fraction
// of the timeout it would otherwise burn again — while still reporting
// the shard failed in the partial-results trailer, and without a second
// dial ever reaching the shard.
func TestCircuitBreakerSkipsOpenShard(t *testing.T) {
	healthy := httptest.NewServer(&fakeShard{columns: []string{"a1"}, rows: fakeRows(1, 2, 3)})
	t.Cleanup(healthy.Close)
	hung := &hangShard{}
	hungSrv := httptest.NewServer(hung)
	t.Cleanup(hungSrv.Close)

	const shardTimeout = 800 * time.Millisecond
	coord := startCoordinator(t, cluster.CoordinatorConfig{
		Shards:           []string{healthy.URL, hungSrv.URL},
		AllowPartial:     true,
		Retries:          -1, // single attempt per query
		ShardTimeout:     shardTimeout,
		BreakerThreshold: 1,
		BreakerBackoff:   time.Minute, // stays open for the whole test
	})

	check := func(stage string, sr streamResult) {
		t.Helper()
		want := []string{"[1]", "[2]", "[3]"}
		if len(sr.rows) != len(want) {
			t.Fatalf("%s: rows = %v, want %v", stage, sr.rows, want)
		}
		for i := range want {
			if sr.rows[i] != want[i] {
				t.Fatalf("%s: row %d = %s, want %s", stage, i, sr.rows[i], want[i])
			}
		}
		cl := clusterTrailer(t, sr)
		if partial, _ := cl["partial_results"].(bool); !partial {
			t.Fatalf("%s: expected partial_results=true, got %v", stage, cl)
		}
		failed, _ := cl["failed_shards"].([]any)
		if len(failed) != 1 || failed[0] != hungSrv.URL {
			t.Fatalf("%s: expected failed_shards=[%s], got %v", stage, hungSrv.URL, cl)
		}
	}

	start := time.Now()
	first := stream(t, coord.URL, "select a1 from t")
	if d := time.Since(start); d < shardTimeout {
		t.Fatalf("first query finished in %v; expected it to burn the %v shard timeout", d, shardTimeout)
	}
	check("first", first)

	start = time.Now()
	second := stream(t, coord.URL, "select a1 from t")
	if d := time.Since(start); d >= shardTimeout/2 {
		t.Fatalf("second query took %v; an open breaker must skip the shard without consuming its %v timeout", d, shardTimeout)
	}
	check("second", second)

	if n := hung.queries.Load(); n != 1 {
		t.Fatalf("hung shard saw %d query attempts, want 1 (the breaker must prevent the second dial)", n)
	}
}
