package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"nodb/internal/errs"
	"nodb/internal/storage"
)

// shardIter streams one shard's rows with bounded retry. A transient
// failure — connection refused, 5xx, overload, a truncated stream from a
// shard dying mid-query — re-opens the stream and skips the rows already
// delivered; shard results are deterministic for a fixed raw file, so
// skip-ahead resumption yields exactly the suffix the first attempt never
// produced. The retry budget is shared across open failures and
// mid-stream failures: retries n means at most n+1 attempts total.
type shardIter struct {
	parent  context.Context
	client  *ShardClient
	query   string
	budget  int           // attempts remaining
	backoff time.Duration // next retry's wait, doubles per retry
	timeout time.Duration // per-attempt limit, 0 = none

	// onRetry is notified once per re-attempt (stats counter).
	onRetry func()
	// breaker is the shard's circuit breaker; nil disables breaking.
	breaker *Breaker

	stream    *ShardStream
	cancel    context.CancelFunc
	delivered int64
	bytes     int64 // bytes of closed attempts
	err       error
}

func newShardIter(ctx context.Context, c *ShardClient, query string, retries int, backoff, timeout time.Duration, onRetry func(), breaker *Breaker) *shardIter {
	if retries < 0 {
		retries = 0
	}
	return &shardIter{
		parent:  ctx,
		client:  c,
		query:   query,
		budget:  retries + 1,
		backoff: backoff,
		timeout: timeout,
		onRetry: onRetry,
		breaker: breaker,
	}
}

// open starts one attempt (consuming budget) and resumes past the rows
// already delivered. An open circuit refuses the attempt locally — no
// dial, no per-attempt timeout consumed — with a non-retryable error.
func (s *shardIter) open() error {
	if s.breaker != nil && !s.breaker.Allow() {
		return &ShardError{Shard: s.client.Name, Msg: "circuit open", cause: errs.ErrCircuitOpen}
	}
	s.budget--
	actx := s.parent
	var cancel context.CancelFunc = func() {}
	if s.timeout > 0 {
		actx, cancel = context.WithTimeout(s.parent, s.timeout)
	}
	st, err := s.client.Stream(actx, s.query)
	if err != nil {
		cancel()
		s.noteOutcome(err)
		return err
	}
	s.noteOutcome(nil)
	for skip := s.delivered; skip > 0; skip-- {
		_, ok, err := st.Next()
		if err != nil {
			s.bytes += st.Bytes()
			st.Close()
			cancel()
			return err
		}
		if !ok {
			s.bytes += st.Bytes()
			st.Close()
			cancel()
			return &ShardError{Shard: s.client.Name, Msg: fmt.Sprintf(
				"stream ended at row %d while resuming past row %d", s.delivered-skip, s.delivered)}
		}
	}
	s.stream, s.cancel = st, cancel
	return nil
}

// noteOutcome feeds the circuit breaker. Parent-context cancellation is
// the caller giving up, not a shard fault, and does not count against
// the shard; everything else does (including per-attempt timeouts).
func (s *shardIter) noteOutcome(err error) {
	if s.breaker == nil {
		return
	}
	if err == nil {
		s.breaker.Success()
		return
	}
	if s.parent.Err() != nil || errors.Is(err, context.Canceled) {
		return
	}
	s.breaker.Failure()
}

// retryWait sleeps the current backoff (doubling it) unless the parent
// context ends first.
func (s *shardIter) retryWait() error {
	if s.onRetry != nil {
		s.onRetry()
	}
	if s.backoff <= 0 {
		return s.parent.Err()
	}
	t := time.NewTimer(s.backoff)
	defer t.Stop()
	s.backoff *= 2
	select {
	case <-t.C:
		return nil
	case <-s.parent.Done():
		return s.parent.Err()
	}
}

// Prime opens the stream (retrying) so Columns is available before the
// merge starts. Next calls Prime implicitly.
func (s *shardIter) Prime() error {
	if s.err != nil {
		return s.err
	}
	for s.stream == nil {
		err := s.open()
		if err == nil {
			return nil
		}
		if s.budget <= 0 || !retryable(err) || s.parent.Err() != nil {
			s.err = err
			return err
		}
		if werr := s.retryWait(); werr != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// Columns returns the stream header; valid after a successful Prime.
func (s *shardIter) Columns() []string {
	if s.stream == nil {
		return nil
	}
	return s.stream.Columns
}

// Next implements exec.RowIter.
func (s *shardIter) Next() ([]storage.Value, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	for {
		if s.stream == nil {
			if err := s.Prime(); err != nil {
				return nil, false, err
			}
		}
		row, ok, err := s.stream.Next()
		if err == nil {
			if ok {
				s.delivered++
			}
			return row, ok, nil
		}
		s.closeAttempt()
		s.noteOutcome(err)
		if s.budget <= 0 || !retryable(err) || s.parent.Err() != nil {
			s.err = err
			return nil, false, err
		}
		if werr := s.retryWait(); werr != nil {
			s.err = err
			return nil, false, err
		}
	}
}

func (s *shardIter) closeAttempt() {
	if s.stream != nil {
		s.bytes += s.stream.Bytes()
		s.stream.Close()
		s.stream = nil
	}
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

// Bytes reports payload bytes consumed across all attempts.
func (s *shardIter) Bytes() int64 {
	b := s.bytes
	if s.stream != nil {
		b += s.stream.Bytes()
	}
	return b
}

// Rows reports rows delivered downstream.
func (s *shardIter) Rows() int64 { return s.delivered }

// Close releases the current attempt.
func (s *shardIter) Close() { s.closeAttempt() }
