package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"nodb/internal/errs"
	"nodb/internal/qos"
	"nodb/internal/storage"
)

// ShardError is the failure of one shard interaction. Status carries the
// HTTP status when the shard answered with an error response; 0 marks
// transport-level failures (connection refused, reset mid-stream,
// truncated stream) and in-band trailer errors.
type ShardError struct {
	Shard  string
	Status int
	Msg    string
	cause  error
}

func (e *ShardError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("cluster: shard %s: http %d: %s", e.Shard, e.Status, e.Msg)
	}
	return fmt.Sprintf("cluster: shard %s: %s", e.Shard, e.Msg)
}

func (e *ShardError) Unwrap() error { return e.cause }

// retryable reports whether a failed shard interaction is worth re-trying:
// transport errors, per-attempt timeouts, truncated streams, overload
// (429) and server-side errors (5xx) are transient; any other 4xx is a
// permanent rejection of the request itself (e.g. a bad query), where a
// retry would burn the budget for nothing.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, errs.ErrCircuitOpen) {
		// The breaker already knows the shard is down; retrying inside
		// the same query would just spin until the budget is gone.
		return false
	}
	var se *ShardError
	if errors.As(err, &se) {
		if se.Status == 0 {
			return true
		}
		return se.Status == http.StatusTooManyRequests || se.Status >= 500
	}
	return true
}

// ShardClient talks to one shard nodbd over its HTTP API.
type ShardClient struct {
	// Name is the shard's configured address, used in errors and stats.
	Name string
	// Base is the normalized base URL (scheme://host:port).
	Base string
	// HTTP is the shared client; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewShardClient builds a client for one shard address. A bare host:port
// gets the http scheme.
func NewShardClient(addr string, hc *http.Client) *ShardClient {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &ShardClient{Name: addr, Base: strings.TrimRight(base, "/"), HTTP: hc}
}

func (c *ShardClient) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// getJSON fetches path and decodes the 200 body into out.
func (c *ShardClient) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return &ShardError{Shard: c.Name, Msg: err.Error(), cause: err}
	}
	forwardIdentity(ctx, req)
	resp, err := c.http().Do(req)
	if err != nil {
		return &ShardError{Shard: c.Name, Msg: err.Error(), cause: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &ShardError{Shard: c.Name, Status: resp.StatusCode, Msg: readErrorBody(resp.Body)}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &ShardError{Shard: c.Name, Msg: fmt.Sprintf("decoding %s: %v", path, err), cause: err}
	}
	return nil
}

// forwardIdentity propagates the caller's API key to the shard, so a
// query admitted as tenant X at the coordinator also runs as tenant X on
// every shard (instead of as the coordinator's own identity).
func forwardIdentity(ctx context.Context, req *http.Request) {
	if key := qos.APIKeyFrom(ctx); key != "" {
		req.Header.Set("X-API-Key", key)
	}
}

// readErrorBody extracts the error message of a non-200 body. It accepts
// both the v1 envelope {"error":{"code","message"}} and the legacy flat
// {"error":"..."} shape, so mixed-version clusters keep reporting real
// messages during upgrades.
func readErrorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	var env struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(b, &env) == nil && env.Error.Message != "" {
		return env.Error.Message
	}
	var er struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &er) == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(b))
}

// Ready probes /readyz; nil means the shard has its tables attached and
// admits queries.
func (c *ShardClient) Ready(ctx context.Context) error {
	var out struct {
		Status string `json:"status"`
	}
	return c.getJSON(ctx, "/readyz", &out)
}

// Synopsis fetches /v1/cluster/synopsis.
func (c *ShardClient) Synopsis(ctx context.Context) (*SynopsisResponse, error) {
	var out SynopsisResponse
	if err := c.getJSON(ctx, "/v1/cluster/synopsis", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tables fetches /v1/tables and returns the table names. The endpoint
// answers with enriched per-table objects; only the names matter here.
func (c *ShardClient) Tables(ctx context.Context) ([]string, error) {
	var out struct {
		Tables []struct {
			Name string `json:"name"`
		} `json:"tables"`
	}
	if err := c.getJSON(ctx, "/v1/tables", &out); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(out.Tables))
	for _, t := range out.Tables {
		names = append(names, t.Name)
	}
	return names, nil
}

// Stream opens /v1/query/stream for a pushed-down query and consumes the
// header line, so Columns is populated on return. The caller must Close
// the stream.
func (c *ShardClient) Stream(ctx context.Context, query string) (*ShardStream, error) {
	body, err := json.Marshal(map[string]string{"query": query})
	if err != nil {
		return nil, &ShardError{Shard: c.Name, Msg: err.Error(), cause: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/query/stream", bytes.NewReader(body))
	if err != nil {
		return nil, &ShardError{Shard: c.Name, Msg: err.Error(), cause: err}
	}
	req.Header.Set("Content-Type", "application/json")
	forwardIdentity(ctx, req)
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, &ShardError{Shard: c.Name, Msg: err.Error(), cause: err}
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, &ShardError{Shard: c.Name, Status: resp.StatusCode, Msg: readErrorBody(resp.Body)}
	}
	cr := &countingReader{r: resp.Body}
	dec := json.NewDecoder(cr)
	dec.UseNumber()
	st := &ShardStream{shard: c.Name, body: resp.Body, counter: cr, dec: dec}
	var hdr struct {
		Columns []string `json:"columns"`
		Error   string   `json:"error"`
	}
	if err := dec.Decode(&hdr); err != nil {
		st.Close()
		return nil, &ShardError{Shard: c.Name, Msg: fmt.Sprintf("reading stream header: %v", err), cause: err}
	}
	if hdr.Error != "" {
		st.Close()
		return nil, &ShardError{Shard: c.Name, Msg: hdr.Error}
	}
	st.Columns = hdr.Columns
	return st, nil
}

// countingReader counts payload bytes for the bytes-merged stat.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// ShardStream is one shard's NDJSON result stream. Next is single-
// threaded; values round-trip through json.Number so int64 results stay
// exact.
type ShardStream struct {
	// Columns is the shard's output header.
	Columns []string

	shard   string
	body    io.ReadCloser
	counter *countingReader
	dec     *json.Decoder
	rows    int64
	done    bool
	err     error
}

// Next returns the next row; ok=false with nil err marks a clean end of
// stream (the stats trailer was seen). A stream that ends without a
// trailer is truncated — the shard died mid-query — and reports an error.
func (s *ShardStream) Next() ([]storage.Value, bool, error) {
	if s.done || s.err != nil {
		return nil, false, s.err
	}
	var v any
	if err := s.dec.Decode(&v); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			s.err = &ShardError{Shard: s.shard, Msg: "stream truncated before trailer", cause: err}
		} else {
			s.err = &ShardError{Shard: s.shard, Msg: fmt.Sprintf("reading stream: %v", err), cause: err}
		}
		return nil, false, s.err
	}
	switch t := v.(type) {
	case []any:
		row, err := decodeWireRow(t)
		if err != nil {
			s.err = &ShardError{Shard: s.shard, Msg: err.Error(), cause: err}
			return nil, false, s.err
		}
		s.rows++
		return row, true, nil
	case map[string]any:
		if msg, ok := t["error"].(string); ok {
			s.err = &ShardError{Shard: s.shard, Msg: msg}
			return nil, false, s.err
		}
		if _, ok := t["stats"]; ok {
			s.done = true
			return nil, false, nil
		}
	}
	s.err = &ShardError{Shard: s.shard, Msg: "unexpected stream line"}
	return nil, false, s.err
}

// Rows reports rows decoded so far.
func (s *ShardStream) Rows() int64 { return s.rows }

// Bytes reports payload bytes consumed so far.
func (s *ShardStream) Bytes() int64 { return s.counter.n.Load() }

// Close releases the underlying response body; safe after errors.
func (s *ShardStream) Close() { _ = s.body.Close() }

// decodeWireRow converts one NDJSON row (decoded with UseNumber) to typed
// values: integral numbers become Int64 (exact), the rest Float64,
// strings stay strings. A float that happens to be integral arrives as an
// int value — harmless, because coordinator output renders through the
// same JSON encoding that made it integral in the first place.
func decodeWireRow(vals []any) ([]storage.Value, error) {
	row := make([]storage.Value, len(vals))
	for i, v := range vals {
		switch t := v.(type) {
		case json.Number:
			if n, err := strconv.ParseInt(t.String(), 10, 64); err == nil {
				row[i] = storage.IntValue(n)
				continue
			}
			f, err := t.Float64()
			if err != nil {
				return nil, fmt.Errorf("unparseable number %q in row", t.String())
			}
			row[i] = storage.FloatValue(f)
		case string:
			row[i] = storage.StringValue(t)
		default:
			return nil, fmt.Errorf("unsupported value %T in row", v)
		}
	}
	return row, nil
}
