package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// Breaker is one shard's circuit breaker. It sits under the retry budget:
// the retrier decides how often one query re-attempts a shard, the
// breaker decides whether anyone should be dialing the shard at all. A
// shard that fails breakerThreshold consecutive interactions opens its
// breaker, and every query until the open interval expires skips the
// shard instantly — no dial, no per-attempt timeout burned — instead of
// each independently rediscovering that it is dead. When the interval
// expires one probe attempt is let through (half-open): success closes
// the breaker, failure re-opens it with a doubled, jittered interval.
type Breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures to open
	baseDelay time.Duration // first open interval
	maxDelay  time.Duration // cap for the doubling interval

	failures int // consecutive failures seen
	state    breakerState
	until    time.Time     // open: next probe not before this
	delay    time.Duration // current open interval (doubles per re-open)
	probing  bool          // half-open: one probe already admitted

	opened int64 // times the breaker opened (stats)
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker defaults: open after 3 consecutive failures, first open
// interval 500ms doubling to a 30s cap, each interval jittered ±50%.
const (
	breakerThreshold = 3
	breakerBaseDelay = 500 * time.Millisecond
	breakerMaxDelay  = 30 * time.Second
)

// NewBreaker builds a breaker; zero arguments select the defaults.
func NewBreaker(threshold int, baseDelay, maxDelay time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = breakerThreshold
	}
	if baseDelay <= 0 {
		baseDelay = breakerBaseDelay
	}
	if maxDelay <= 0 {
		maxDelay = breakerMaxDelay
	}
	return &Breaker{threshold: threshold, baseDelay: baseDelay, maxDelay: maxDelay}
}

// Allow reports whether an attempt may proceed now. In the open state it
// returns false until the interval expires, then admits exactly one
// half-open probe; concurrent callers keep being refused until that
// probe's Success or Failure settles the state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful interaction, closing the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = breakerClosed
	b.probing = false
	b.delay = 0
}

// Failure records a failed interaction: threshold consecutive failures
// open the breaker; a failed half-open probe re-opens it with a doubled
// interval. Each open interval is jittered ±50% so a fleet of
// coordinators does not re-probe a recovering shard in lockstep.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch {
	case b.state == breakerHalfOpen:
		b.reopenLocked()
	case b.state == breakerClosed && b.failures >= b.threshold:
		b.delay = 0
		b.reopenLocked()
	}
}

func (b *Breaker) reopenLocked() {
	if b.delay <= 0 {
		b.delay = b.baseDelay
	} else {
		b.delay *= 2
		if b.delay > b.maxDelay {
			b.delay = b.maxDelay
		}
	}
	jittered := b.delay/2 + time.Duration(rand.Int63n(int64(b.delay)))
	b.state = breakerOpen
	b.probing = false
	b.until = time.Now().Add(jittered)
	b.opened++
}

// State returns the state name for stats ("closed", "open", "half-open").
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if !time.Now().Before(b.until) {
			return "half-open" // next Allow admits a probe
		}
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Opened reports how many times the breaker has opened.
func (b *Breaker) Opened() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opened
}
