package synopsis

import (
	"sync"

	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// Collector accumulates per-portion bounds during one tokenizing pass.
// Each portion's accumulator is created by Begin and used from a single
// worker goroutine; only Begin/Commit touch shared state. A nil *Collector
// is valid and inert, so callers wire it unconditionally.
type Collector struct {
	syn   *Synopsis
	gen   uint64
	cols  []int
	types []schema.Type

	mu  sync.Mutex
	acc map[int]*PortionAcc
}

// NewCollector prepares collection of bounds for cols (with matching
// types) into syn. Returns nil when syn is nil.
func NewCollector(syn *Synopsis, cols []int, types []schema.Type) *Collector {
	if syn == nil {
		return nil
	}
	syn.mu.RLock()
	gen := syn.gen
	syn.mu.RUnlock()
	return &Collector{syn: syn, gen: gen, cols: cols, types: types, acc: make(map[int]*PortionAcc)}
}

// colAcc accumulates one column's observations within one portion.
type colAcc struct {
	n          int64
	bad        bool // a non-comparable value (NaN) was seen; no bounds
	minI, maxI int64
	minF, maxF float64
	minS, maxS string
}

// PortionAcc accumulates one portion's observations. Nil-safe: a nil
// accumulator ignores observations. Usually created through a Collector's
// Begin; NewPortionAcc builds a standalone one for bounded passes (tail
// extension) that commit through Synopsis.ExtendTail instead.
type PortionAcc struct {
	info  scan.PortionInfo
	cols  []int
	types []schema.Type
	b     []colAcc
}

// NewPortionAcc prepares standalone accumulation of bounds for cols (with
// matching types) over one portion.
func NewPortionAcc(info scan.PortionInfo, cols []int, types []schema.Type) *PortionAcc {
	return &PortionAcc{info: info, cols: cols, types: types, b: make([]colAcc, len(cols))}
}

// Layout returns the synopsis' learned layout, pinned to the generation
// the collector captured: after a Drop (file edited mid-pass) it returns
// nil rather than a stale layout.
func (c *Collector) Layout() []scan.PortionInfo {
	if c == nil {
		return nil
	}
	return c.syn.layoutAt(&c.gen)
}

// AdoptLayout installs the scanner's portion layout at the collector's
// generation, so a layout built from a superseded file version is
// discarded instead of adopted.
func (c *Collector) AdoptLayout(ps []scan.PortionInfo) {
	if c == nil {
		return
	}
	c.syn.adoptLayout(c.gen, ps)
}

// Begin starts accumulation for one portion.
func (c *Collector) Begin(p scan.PortionInfo) *PortionAcc {
	if c == nil {
		return nil
	}
	a := NewPortionAcc(p, c.cols, c.types)
	c.mu.Lock()
	c.acc[p.Index] = a
	c.mu.Unlock()
	return a
}

// Observe records one parsed value for column position idx (an index into
// the collector's cols). Each (row, column) pair must be observed at most
// once — coverage is judged by comparing observation counts to the
// portion's row count.
func (a *PortionAcc) Observe(idx int, v storage.Value) {
	if a == nil {
		return
	}
	ca := &a.b[idx]
	switch a.types[idx] {
	case schema.Int64:
		if ca.n == 0 {
			ca.minI, ca.maxI = v.I, v.I
		} else {
			if v.I < ca.minI {
				ca.minI = v.I
			}
			if v.I > ca.maxI {
				ca.maxI = v.I
			}
		}
	case schema.Float64:
		if v.F != v.F { // NaN poisons ordering; drop the column's bounds
			ca.bad = true
		} else if ca.n == 0 {
			ca.minF, ca.maxF = v.F, v.F
		} else {
			if v.F < ca.minF {
				ca.minF = v.F
			}
			if v.F > ca.maxF {
				ca.maxF = v.F
			}
		}
	default:
		if ca.n == 0 {
			ca.minS, ca.maxS = v.S, v.S
		} else {
			if v.S < ca.minS {
				ca.minS = v.S
			}
			if v.S > ca.maxS {
				ca.maxS = v.S
			}
		}
	}
	ca.n++
}

// Commit finishes one portion scanned to completion with rows tokenized
// rows: columns observed in every row contribute bounds; the rest stay
// uncovered. Portions that failed or were skipped must not be committed.
func (c *Collector) Commit(p scan.PortionInfo, rows int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	a := c.acc[p.Index]
	delete(c.acc, p.Index)
	c.mu.Unlock()
	if a == nil || rows <= 0 {
		return
	}
	// Even a bound-less commit matters: it supplies the portion's row
	// count, completing a lazily-counted layout.
	c.syn.commit(c.gen, p.Index, p, rows, a.Bounds(rows))
}

// Bounds extracts the accumulated bounds: columns observed in every one
// of rows rows contribute; the rest stay uncovered. Nil-safe.
func (a *PortionAcc) Bounds(rows int64) []ColBounds {
	if a == nil || rows <= 0 {
		return nil
	}
	var bounds []ColBounds
	for j := range a.b {
		ca := &a.b[j]
		if ca.n != rows || ca.bad {
			continue
		}
		b := ColBounds{Col: a.cols[j], Typ: a.types[j], MinExact: true, MaxExact: true}
		switch a.types[j] {
		case schema.Int64:
			b.MinI, b.MaxI = ca.minI, ca.maxI
		case schema.Float64:
			b.MinF, b.MaxF = ca.minF, ca.maxF
		default:
			b.MinS, b.MinExact = prefix(ca.minS)
			b.MaxS, b.MaxExact = prefix(ca.maxS)
		}
		bounds = append(bounds, b)
	}
	return bounds
}

// prefix truncates a string bound to StringPrefixLen; exact reports
// whether the stored bound is the full value.
func prefix(s string) (string, bool) {
	if len(s) <= StringPrefixLen {
		return s, true
	}
	return s[:StringPrefixLen], false
}
