package synopsis

import (
	"fmt"
	"testing"

	"nodb/internal/expr"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// layout2 builds a two-portion layout: rows [0,100) in bytes [0,1000),
// rows [100,250) in bytes [1000,2500).
func layout2() []scan.PortionInfo {
	return []scan.PortionInfo{
		{Index: 0, Off: 0, End: 1000, FirstRow: 0, Rows: 100},
		{Index: 1, Off: 1000, End: 2500, FirstRow: 100, Rows: 150},
	}
}

// observeInts feeds n int values v(i) for column position idx.
func observeInts(pc *PortionAcc, idx, n int, v func(i int) int64) {
	for i := 0; i < n; i++ {
		pc.Observe(idx, storage.IntValue(v(i)))
	}
}

func intConj(col int, op expr.CmpOp, val int64) expr.Conjunction {
	return expr.Conjunction{Preds: []expr.Pred{{Col: col, Op: op, Val: storage.IntValue(val)}}}
}

func TestLayoutAdoptionAndCompleteness(t *testing.T) {
	s := New()
	if got := s.Layout(); got != nil {
		t.Fatalf("empty synopsis Layout = %v, want nil", got)
	}
	// A lazily-counted single portion is incomplete until a commit
	// supplies its row count.
	s.AdoptLayout([]scan.PortionInfo{{Index: 0, Off: 0, End: 500, FirstRow: 0, Rows: -1}})
	if got := s.Layout(); got != nil {
		t.Fatalf("incomplete Layout = %v, want nil", got)
	}
	c := NewCollector(s, []int{0}, []schema.Type{schema.Int64})
	pc := c.Begin(scan.PortionInfo{Index: 0, Off: 0, End: 500, FirstRow: 0, Rows: -1})
	observeInts(pc, 0, 10, func(i int) int64 { return int64(i) })
	c.Commit(scan.PortionInfo{Index: 0, Off: 0, End: 500, FirstRow: 0, Rows: -1}, 10)
	l := s.Layout()
	if len(l) != 1 || l[0].Rows != 10 {
		t.Fatalf("Layout after commit = %+v, want one portion of 10 rows", l)
	}
	if n, ok := s.TotalRows(); !ok || n != 10 {
		t.Fatalf("TotalRows = %d,%v want 10,true", n, ok)
	}
}

func TestPrunerSkipsOnlyExcludedPortions(t *testing.T) {
	s := New()
	s.AdoptLayout(layout2())
	c := NewCollector(s, []int{2}, []schema.Type{schema.Int64})

	p0, p1 := layout2()[0], layout2()[1]
	a0 := c.Begin(p0)
	observeInts(a0, 0, 100, func(i int) int64 { return int64(i) }) // [0,99]
	c.Commit(p0, 100)
	a1 := c.Begin(p1)
	observeInts(a1, 0, 150, func(i int) int64 { return int64(100 + i) }) // [100,249]
	c.Commit(p1, 150)

	cases := []struct {
		conj         expr.Conjunction
		skip0, skip1 bool
	}{
		{intConj(2, expr.Gt, 99), true, false},
		{intConj(2, expr.Ge, 99), false, false},
		{intConj(2, expr.Lt, 100), false, true},
		{intConj(2, expr.Le, 99), false, true},
		{intConj(2, expr.Eq, 300), true, true},
		{intConj(2, expr.Eq, 150), true, false},
		{intConj(2, expr.Ne, 5), false, false},
		{expr.Conjunction{Preds: []expr.Pred{{Col: 2, Between: true, Val: storage.IntValue(40), Val2: storage.IntValue(60)}}}, false, true},
		// A float literal against int bounds still prunes.
		{intConj(2, expr.Gt, 0), false, false},
		{expr.Conjunction{Preds: []expr.Pred{{Col: 2, Op: expr.Gt, Val: storage.FloatValue(99.5)}}}, true, false},
		// Predicates on an unbounded column never prune.
		{intConj(7, expr.Eq, -1), false, false},
	}
	for i, tc := range cases {
		pr := s.Pruner(tc.conj)
		if pr == nil {
			t.Fatalf("case %d: nil pruner", i)
		}
		if got := pr.Skip(p0); got != tc.skip0 {
			t.Errorf("case %d (%s): Skip(p0) = %v, want %v", i, tc.conj, got, tc.skip0)
		}
		if got := pr.Skip(p1); got != tc.skip1 {
			t.Errorf("case %d (%s): Skip(p1) = %v, want %v", i, tc.conj, got, tc.skip1)
		}
	}
}

func TestPartialCoverageEarnsNoBounds(t *testing.T) {
	s := New()
	s.AdoptLayout(layout2())
	c := NewCollector(s, []int{0}, []schema.Type{schema.Int64})
	p0 := layout2()[0]
	a := c.Begin(p0)
	observeInts(a, 0, 99, func(i int) int64 { return int64(i) }) // one row short
	c.Commit(p0, 100)
	if pr := s.Pruner(intConj(0, expr.Eq, -1)); pr.Skip(p0) {
		t.Fatal("partially observed column must not prune")
	}
	if _, bounds := s.Stats(); bounds != 0 {
		t.Fatalf("bounds = %d, want 0 for partial coverage", bounds)
	}
}

func TestNaNFloatPoisonsBounds(t *testing.T) {
	s := New()
	s.AdoptLayout(layout2())
	c := NewCollector(s, []int{0}, []schema.Type{schema.Float64})
	p0 := layout2()[0]
	a := c.Begin(p0)
	nan := storage.FloatValue(0)
	nan.F = nan.F / nan.F // NaN without tripping vet
	for i := 0; i < 100; i++ {
		if i == 50 {
			a.Observe(0, nan)
			continue
		}
		a.Observe(0, storage.FloatValue(float64(i)))
	}
	c.Commit(p0, 100)
	conj := expr.Conjunction{Preds: []expr.Pred{{Col: 0, Op: expr.Gt, Val: storage.FloatValue(1e9)}}}
	if pr := s.Pruner(conj); pr.Skip(p0) {
		t.Fatal("NaN-containing column must not contribute bounds")
	}
}

func TestStringPrefixPruning(t *testing.T) {
	long := func(c byte) string {
		b := make([]byte, StringPrefixLen+4)
		for i := range b {
			b[i] = c
		}
		return string(b)
	}
	cases := []struct {
		name     string
		min, max string
		pred     expr.Pred
		skip     bool
	}{
		{"eq-below-min", "bbb", "ddd", expr.Pred{Op: expr.Eq, Val: storage.StringValue("aaa")}, true},
		{"eq-above-max", "bbb", "ddd", expr.Pred{Op: expr.Eq, Val: storage.StringValue("eee")}, true},
		{"eq-inside", "bbb", "ddd", expr.Pred{Op: expr.Eq, Val: storage.StringValue("ccc")}, false},
		{"lt-at-min", "bbb", "ddd", expr.Pred{Op: expr.Lt, Val: storage.StringValue("bbb")}, true},
		{"gt-at-max", "bbb", "ddd", expr.Pred{Op: expr.Gt, Val: storage.StringValue("ddd")}, true},
		{"between-disjoint", "bbb", "ddd", expr.Pred{Between: true, Val: storage.StringValue("x"), Val2: storage.StringValue("z")}, true},
		{"between-overlap", "bbb", "ddd", expr.Pred{Between: true, Val: storage.StringValue("c"), Val2: storage.StringValue("z")}, false},
		// Truncated max: values share the stored prefix but extend past
		// it, so only predicates beyond the prefix successor may skip.
		{"trunc-eq-just-above-prefix", "aaa", long('m'), expr.Pred{Op: expr.Eq, Val: storage.StringValue(long('m') + "zzz")}, false},
		{"trunc-eq-far-above", "aaa", long('m'), expr.Pred{Op: expr.Eq, Val: storage.StringValue("zzz")}, true},
	}
	p0 := layout2()[0]
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New()
			s.AdoptLayout(layout2())
			c := NewCollector(s, []int{0}, []schema.Type{schema.String})
			a := c.Begin(p0)
			a.Observe(0, storage.StringValue(tc.min))
			for i := 0; i < 98; i++ {
				a.Observe(0, storage.StringValue(tc.min))
			}
			a.Observe(0, storage.StringValue(tc.max))
			c.Commit(p0, 100)
			tc.pred.Col = 0
			pr := s.Pruner(expr.Conjunction{Preds: []expr.Pred{tc.pred}})
			if got := pr.Skip(p0); got != tc.skip {
				t.Errorf("Skip = %v, want %v", got, tc.skip)
			}
		})
	}
}

func TestDropInvalidatesInFlightCollector(t *testing.T) {
	s := New()
	s.AdoptLayout(layout2())
	c := NewCollector(s, []int{0}, []schema.Type{schema.Int64})
	p0 := layout2()[0]
	a := c.Begin(p0)
	observeInts(a, 0, 100, func(i int) int64 { return int64(i) })
	s.Drop() // file edited mid-scan
	s.AdoptLayout(layout2())
	c.Commit(p0, 100) // stale generation: must be discarded
	if _, bounds := s.Stats(); bounds != 0 {
		t.Fatalf("stale commit landed: %d bounds", bounds)
	}
	if s.MemSize() == 0 {
		t.Fatal("re-adopted layout should account bytes")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	sch := &schema.Schema{Columns: []schema.Column{{Name: "a1", Type: schema.Int64}, {Name: "a2", Type: schema.String}}}
	s := New()
	s.AdoptLayout(layout2())
	c := NewCollector(s, []int{0, 1}, []schema.Type{schema.Int64, schema.String})
	for pi, p := range layout2() {
		a := c.Begin(p)
		for i := int64(0); i < p.Rows; i++ {
			a.Observe(0, storage.IntValue(p.FirstRow+i))
			a.Observe(1, storage.StringValue(fmt.Sprintf("s%06d", p.FirstRow+i)))
		}
		c.Commit(p, p.Rows)
		_ = pi
	}
	exported := s.Export()
	if len(exported) != 2 {
		t.Fatalf("Export = %d portions, want 2", len(exported))
	}

	restored := New()
	restored.Import(exported, sch)
	p2, b2 := restored.Stats()
	if p2 != 2 || b2 != 4 {
		t.Fatalf("restored Stats = %d portions %d bounds, want 2 and 4", p2, b2)
	}
	// The restored synopsis prunes identically.
	pr := restored.Pruner(intConj(0, expr.Gt, 240))
	if !pr.Skip(layout2()[0]) || pr.Skip(layout2()[1]) {
		t.Fatal("restored pruner decisions differ")
	}

	// Corrupt shapes are rejected wholesale.
	bad := New()
	mangled := append([]PortionState(nil), exported...)
	mangled[1].Info.FirstRow = 7
	bad.Import(mangled, sch)
	if p, _ := bad.Stats(); p != 0 {
		t.Fatal("inconsistent import accepted")
	}
	badType := New()
	mangled2 := append([]PortionState(nil), exported...)
	mangled2[0].Cols = append([]ColBounds(nil), mangled2[0].Cols...)
	mangled2[0].Cols[0].Col = 99
	badType.Import(mangled2, sch)
	if p, _ := badType.Stats(); p != 0 {
		t.Fatal("out-of-range column import accepted")
	}
}

func TestPrunerNilAndEmptyCases(t *testing.T) {
	var nilSyn *Synopsis
	if pr := nilSyn.Pruner(intConj(0, expr.Eq, 1)); pr != nil {
		t.Fatal("nil synopsis should yield nil pruner")
	}
	s := New()
	if pr := s.Pruner(expr.Conjunction{}); pr != nil {
		t.Fatal("empty conjunction should yield nil pruner")
	}
	var pr *Pruner
	if pr.Skip(scan.PortionInfo{}) || pr.Skipped() != 0 {
		t.Fatal("nil pruner must be inert")
	}
	var pc *PortionAcc
	pc.Observe(0, storage.IntValue(1)) // must not panic
	var nc *Collector
	nc.Begin(scan.PortionInfo{})
	nc.Commit(scan.PortionInfo{}, 1)
	nilSyn.Drop()
	nilSyn.AdoptLayout(layout2())
	if n, ok := nilSyn.TotalRows(); ok || n != 0 {
		t.Fatal("nil synopsis TotalRows should be unknown")
	}
}

// TestAdoptLayoutGenerationGuard: a collector created before a Drop must
// not install its (stale) layout afterwards — neither directly nor by
// re-reading Layout.
func TestAdoptLayoutGenerationGuard(t *testing.T) {
	s := New()
	c := NewCollector(s, []int{0}, []schema.Type{schema.Int64})
	s.Drop() // file edited between opening the scan and adopting
	c.AdoptLayout(layout2())
	if p, _ := s.Stats(); p != 0 {
		t.Fatalf("stale layout adopted: %d portions", p)
	}
	s.AdoptLayout(layout2()) // a fresh adoption at the current gen works
	if c.Layout() != nil {
		t.Fatal("stale collector read the new generation's layout")
	}
	c2 := NewCollector(s, []int{0}, []schema.Type{schema.Int64})
	if got := c2.Layout(); len(got) != 2 {
		t.Fatalf("fresh collector Layout = %v, want 2 portions", got)
	}
}
