// Package synopsis implements per-portion scan synopses: zone maps over
// the horizontal portions of a raw file, learned as a free byproduct of
// any tokenizing pass.
//
// The paper's thesis is that every touch of the raw file should leave
// behind a structure that makes the next touch cheaper. The positional map
// (internal/posmap) remembers *where* attributes live; the synopsis
// remembers *what values* each portion can contain — per-portion, per-
// column min/max for numeric attributes and prefix bounds for strings,
// collected while the tokenizer is looking at the bytes anyway. A later
// query whose WHERE clause excludes a portion's whole value range skips
// the portion outright: zero bytes read, zero rows tokenized. Bounds are
// conservative by construction, so skipping never changes results — a
// skipped portion provably holds no qualifying row.
//
// Coverage is tracked per portion and per column: a column only gets
// bounds for a portion when the pass observed it in *every* row of that
// portion (early tuple elimination stops tokenizing a row at the first
// failed predicate, so trailing columns of a selective pass stay
// uncovered). A column touched in only some portions simply has a partial
// synopsis — pruning uses whatever bounds exist and scans the rest.
//
// The synopsis also owns the file's learned portion layout (boundaries,
// row counts, first-row ids), which later scans adopt via
// scan.Options.Layout to skip the boundary-discovery pre-pass and to seek
// straight to surviving portions.
package synopsis

import (
	"sync"

	"nodb/internal/scan"
	"nodb/internal/schema"
)

// StringPrefixLen caps the stored string bounds: longer observed values
// are truncated to this many bytes and flagged inexact, which the pruning
// rules account for.
const StringPrefixLen = 16

// Accountant receives the synopsis' byte footprint and usage signals; the
// memory governor's handles satisfy it. Methods must be safe for
// concurrent use.
type Accountant interface {
	AddBytes(delta int64)
	SetBytes(n int64)
	Touch()
}

// ColBounds are one column's value bounds within one portion. For string
// columns MinS is always a prefix of the true minimum (hence a valid lower
// bound); MaxS is a prefix of the true maximum and only an upper bound
// when MaxExact is true — otherwise the true maximum lies below the
// prefix's successor.
type ColBounds struct {
	Col                int
	Typ                schema.Type
	MinI, MaxI         int64
	MinF, MaxF         float64
	MinS, MaxS         string
	MinExact, MaxExact bool
}

// memSize approximates the bounds' heap footprint.
func (b ColBounds) memSize() int64 {
	return 64 + int64(len(b.MinS)+len(b.MaxS))
}

// PortionState is the exported state of one portion: its layout slot plus
// the fully-covered column bounds. Used for snapshot serialization.
type PortionState struct {
	Info scan.PortionInfo
	Cols []ColBounds
}

// portionSyn is one portion's live state.
type portionSyn struct {
	info scan.PortionInfo
	cols map[int]ColBounds
}

// Synopsis holds the learned portion layout and zone maps of one raw
// file. It is safe for concurrent use: scans commit bounds while other
// queries build pruners. Lifecycle follows the other auxiliary structures
// — dropped wholesale when the raw file's signature changes, evictable by
// the memory governor, serialized into snapshots.
type Synopsis struct {
	mu       sync.RWMutex
	gen      uint64 // bumped by Drop; stale collectors discard their commits
	portions []portionSyn
	complete bool // every portion's row count is known
	bytes    int64
	acct     Accountant
}

// New returns an empty synopsis.
func New() *Synopsis { return &Synopsis{} }

// SetAccountant attaches the byte-footprint sink (the governor's handle).
func (s *Synopsis) SetAccountant(a Accountant) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acct = a
	if a != nil {
		a.SetBytes(s.bytes)
	}
}

// AdoptLayout installs a portion layout (typically the one a scanner just
// built) at the current generation. The first adopted layout wins; later
// calls with a different boundary set are ignored — the layout is
// deterministic for a given file version, so a mismatch means a stale
// caller. Portions with unknown row counts (-1) are completed later by
// Commit. In-flight passes adopt through their Collector instead, which
// pins the generation it captured at creation so a Drop (file edited)
// between opening the scan and adopting discards the stale layout.
func (s *Synopsis) AdoptLayout(ps []scan.PortionInfo) {
	if s == nil {
		return
	}
	s.mu.RLock()
	gen := s.gen
	s.mu.RUnlock()
	s.adoptLayout(gen, ps)
}

func (s *Synopsis) adoptLayout(gen uint64, ps []scan.PortionInfo) {
	if s == nil || len(ps) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen || s.portions != nil {
		return
	}
	s.portions = make([]portionSyn, len(ps))
	add := int64(0)
	for i, p := range ps {
		s.portions[i] = portionSyn{info: p}
		add += 48
	}
	s.bytes += add
	if s.acct != nil {
		s.acct.AddBytes(add)
	}
	s.recomputeCompleteLocked()
}

func (s *Synopsis) recomputeCompleteLocked() {
	s.complete = len(s.portions) > 0
	for i := range s.portions {
		if s.portions[i].info.Rows < 0 {
			s.complete = false
			return
		}
	}
}

// Layout returns the learned portion layout for scan.Options.Layout, or
// nil until every portion's row count is known. The slice is a copy.
func (s *Synopsis) Layout() []scan.PortionInfo {
	return s.layoutAt(nil)
}

// layoutAt is Layout with an optional generation pin: with gen non-nil
// the layout is returned only while the synopsis is still that
// generation.
func (s *Synopsis) layoutAt(gen *uint64) []scan.PortionInfo {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.complete || (gen != nil && *gen != s.gen) {
		return nil
	}
	out := make([]scan.PortionInfo, len(s.portions))
	for i := range s.portions {
		out[i] = s.portions[i].info
	}
	if s.acct != nil {
		s.acct.Touch()
	}
	return out
}

// TotalRows returns the file's row count per the layout, when complete.
func (s *Synopsis) TotalRows() (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.complete {
		return 0, false
	}
	var n int64
	for i := range s.portions {
		n += s.portions[i].info.Rows
	}
	return n, true
}

// Stats reports the synopsis' shape: portion count and the number of
// (portion, column) bounds held.
func (s *Synopsis) Stats() (portions, bounds int) {
	if s == nil {
		return 0, 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := range s.portions {
		bounds += len(s.portions[i].cols)
	}
	return len(s.portions), bounds
}

// MemSize returns the approximate heap bytes held.
func (s *Synopsis) MemSize() int64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Drop discards everything (file edited, or the governor reclaimed the
// footprint). In-flight collectors notice via the generation counter and
// discard their commits.
func (s *Synopsis) Drop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	s.portions = nil
	s.complete = false
	s.bytes = 0
	if s.acct != nil {
		s.acct.SetBytes(0)
	}
}

// Export serializes the synopsis state for snapshotting. Only portions
// with known row counts are exported (an incomplete layout is not worth
// persisting).
func (s *Synopsis) Export() []PortionState {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.complete {
		return nil
	}
	out := make([]PortionState, len(s.portions))
	for i := range s.portions {
		out[i] = PortionState{Info: s.portions[i].info}
		for _, b := range s.portions[i].cols {
			out[i].Cols = append(out[i].Cols, b)
		}
	}
	return out
}

// Import installs previously exported state (snapshot restore) after
// validating it: the layout must be contiguous with consistent prefix
// sums, and bounds must reference columns below ncols with matching
// types per the detector. Invalid input is ignored wholesale — the
// synopsis is an opportunistic cache and a cold start is always safe.
// No-op when a layout is already present (live learning supersedes).
func (s *Synopsis) Import(ps []PortionState, sch *schema.Schema) {
	if s == nil || len(ps) == 0 {
		return
	}
	var firstRow int64
	for i, p := range ps {
		if p.Info.End <= p.Info.Off || p.Info.Rows < 0 || p.Info.FirstRow != firstRow {
			return
		}
		if i > 0 && p.Info.Off != ps[i-1].Info.End {
			return
		}
		firstRow += p.Info.Rows
		for _, b := range p.Cols {
			if b.Col < 0 || b.Col >= sch.NumCols() || sch.Columns[b.Col].Type != b.Typ {
				return
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.portions != nil {
		return
	}
	s.portions = make([]portionSyn, len(ps))
	add := int64(0)
	for i, p := range ps {
		info := p.Info
		info.Index = i
		s.portions[i] = portionSyn{info: info}
		add += 48
		for _, b := range p.Cols {
			if s.portions[i].cols == nil {
				s.portions[i].cols = make(map[int]ColBounds, len(p.Cols))
			}
			s.portions[i].cols[b.Col] = b
			add += b.memSize()
		}
	}
	s.bytes += add
	if s.acct != nil {
		s.acct.AddBytes(add)
	}
	s.recomputeCompleteLocked()
}

// ExtendTail appends tail portions — learned by a bounded scan of the
// bytes a prefix-stable growth appended — to a complete layout that ends
// exactly at the first new portion's Off. The new portions must be
// contiguous with non-negative row counts and FirstRow ids continuing the
// existing total. Reports whether the extension was applied; on any
// mismatch the synopsis is left untouched so the caller can Drop it and
// relearn from scratch.
func (s *Synopsis) ExtendTail(ps []PortionState) bool {
	if s == nil || len(ps) == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.complete || len(s.portions) == 0 {
		return false
	}
	last := s.portions[len(s.portions)-1].info
	var total int64
	for i := range s.portions {
		total += s.portions[i].info.Rows
	}
	end, firstRow := last.End, total
	for _, p := range ps {
		if p.Info.Off != end || p.Info.End <= p.Info.Off || p.Info.Rows < 0 || p.Info.FirstRow != firstRow {
			return false
		}
		end = p.Info.End
		firstRow += p.Info.Rows
	}
	add := int64(0)
	for _, p := range ps {
		info := p.Info
		info.Index = len(s.portions)
		ns := portionSyn{info: info}
		add += 48
		for _, b := range p.Cols {
			if ns.cols == nil {
				ns.cols = make(map[int]ColBounds, len(p.Cols))
			}
			ns.cols[b.Col] = b
			add += b.memSize()
		}
		s.portions = append(s.portions, ns)
	}
	s.bytes += add
	if s.acct != nil {
		s.acct.AddBytes(add)
		s.acct.Touch()
	}
	return true
}

// commit installs one portion's bounds, learned by a completed portion
// scan. Stale commits (generation mismatch, unknown portion) are
// discarded.
func (s *Synopsis) commit(gen uint64, idx int, info scan.PortionInfo, rows int64, bounds []ColBounds) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen || idx < 0 || idx >= len(s.portions) || s.portions[idx].info.Off != info.Off {
		return
	}
	p := &s.portions[idx]
	if p.info.Rows < 0 {
		p.info.Rows = rows
		s.recomputeCompleteLocked()
	}
	if p.info.Rows != rows {
		// A layout/count disagreement means something is off (e.g. the
		// file changed under DisableRevalidation); keep nothing.
		return
	}
	var delta int64
	for _, b := range bounds {
		if old, ok := p.cols[b.Col]; ok {
			delta -= old.memSize()
		}
		if p.cols == nil {
			p.cols = make(map[int]ColBounds, len(bounds))
		}
		p.cols[b.Col] = b
		delta += b.memSize()
	}
	s.bytes += delta
	if s.acct != nil {
		s.acct.AddBytes(delta)
		s.acct.Touch()
	}
}
