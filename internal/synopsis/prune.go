package synopsis

import (
	"nodb/internal/expr"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// Pruner holds precomputed skip decisions for one conjunction over one
// synopsis. Decisions are taken once, under the synopsis lock, at
// construction — Skip itself is a slice lookup, safe for concurrent use
// from scan workers and immune to concurrent synopsis mutation.
type Pruner struct {
	skip  []bool
	offs  []int64 // portion offsets the decisions were made for
	skips int
}

// Pruner builds skip decisions for conj. It returns nil when there is
// nothing to prune with: no predicates, or no complete layout. A portion
// is skippable when some predicate is provably unsatisfiable over the
// portion's recorded bounds for that column — bounds are conservative, so
// a skipped portion holds no qualifying row.
func (s *Synopsis) Pruner(conj expr.Conjunction) *Pruner {
	if s == nil || conj.Empty() {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.complete || len(s.portions) == 0 {
		return nil
	}
	cols := conj.Columns()
	pr := &Pruner{skip: make([]bool, len(s.portions)), offs: make([]int64, len(s.portions))}
	for i := range s.portions {
		p := &s.portions[i]
		pr.offs[i] = p.info.Off
		for _, col := range cols {
			b, ok := p.cols[col]
			if !ok {
				continue
			}
			if !satisfiable(conj.OnColumn(col), b) {
				pr.skip[i] = true
				pr.skips++
				break
			}
		}
	}
	if s.acct != nil {
		s.acct.Touch()
	}
	return pr
}

// Skip reports whether portion p was pruned. Nil-safe.
func (p *Pruner) Skip(pi scan.PortionInfo) bool {
	if p == nil || pi.Index < 0 || pi.Index >= len(p.skip) || p.offs[pi.Index] != pi.Off {
		return false
	}
	return p.skip[pi.Index]
}

// Skipped returns how many portions the pruner decided to skip.
func (p *Pruner) Skipped() int {
	if p == nil {
		return 0
	}
	return p.skips
}

// EstimateSkips reports, for Explain, how many of the synopsis' portions a
// query with conj would skip right now.
func (s *Synopsis) EstimateSkips(conj expr.Conjunction) (portions, skipped int) {
	if s == nil {
		return 0, 0
	}
	portions, _ = s.Stats()
	if pr := s.Pruner(conj); pr != nil {
		skipped = pr.skips
	}
	return portions, skipped
}

// SkippableAll reports whether every exported portion is provably
// unsatisfiable under conj — i.e. the whole file holds no qualifying row.
// This is the shard-pruning decision a cluster coordinator takes against a
// cached synopsis export: true means the shard need not be contacted at
// all. Conservative like Skip: an empty export, an empty conjunction, or a
// portion lacking bounds for every predicate column all answer false.
func SkippableAll(ps []PortionState, conj expr.Conjunction) bool {
	if len(ps) == 0 || conj.Empty() {
		return false
	}
	cols := conj.Columns()
	for _, p := range ps {
		skippable := false
		for _, col := range cols {
			var b ColBounds
			found := false
			for _, c := range p.Cols {
				if c.Col == col {
					b, found = c, true
					break
				}
			}
			if !found {
				continue
			}
			if !satisfiable(conj.OnColumn(col), b) {
				skippable = true
				break
			}
		}
		if !skippable {
			return false
		}
	}
	return true
}

// satisfiable reports whether some value within b could satisfy every
// predicate in preds. It tests each predicate independently (a joint
// violation merely misses a skip, never causes one) and answers true
// whenever it cannot be certain.
func satisfiable(preds []expr.Pred, b ColBounds) bool {
	for _, p := range preds {
		if !possible(p, b) {
			return false
		}
	}
	return true
}

func possible(p expr.Pred, b ColBounds) bool {
	if b.Typ == schema.String {
		return possibleString(p, b)
	}
	return possibleNumeric(p, b)
}

// possibleNumeric evaluates a predicate against inclusive numeric bounds.
// storage.Value.Compare orders int64 and float64 literals across types, so
// a float literal against an int column prunes correctly.
func possibleNumeric(p expr.Pred, b ColBounds) bool {
	if p.Val.Typ == schema.String || (p.Between && p.Val2.Typ == schema.String) {
		return true // untyped mismatch; cannot reason
	}
	min, max := b.MinI, b.MaxI
	minV := storage.IntValue(min)
	maxV := storage.IntValue(max)
	if b.Typ == schema.Float64 {
		minV = storage.FloatValue(b.MinF)
		maxV = storage.FloatValue(b.MaxF)
	}
	if p.Between {
		return maxV.Compare(p.Val) >= 0 && minV.Compare(p.Val2) <= 0
	}
	switch p.Op {
	case expr.Lt:
		return minV.Compare(p.Val) < 0
	case expr.Le:
		return minV.Compare(p.Val) <= 0
	case expr.Gt:
		return maxV.Compare(p.Val) > 0
	case expr.Ge:
		return maxV.Compare(p.Val) >= 0
	case expr.Eq:
		return minV.Compare(p.Val) <= 0 && maxV.Compare(p.Val) >= 0
	case expr.Ne:
		return !(minV.Compare(p.Val) == 0 && maxV.Compare(p.Val) == 0)
	default:
		return true
	}
}

// possibleString evaluates a predicate against prefix bounds. MinS is
// always a valid lower bound on every value (a prefix never exceeds the
// string it prefixes). The upper side depends on MaxExact: an exact MaxS
// is the true maximum; a truncated one only bounds values below its
// prefix successor.
func possibleString(p expr.Pred, b ColBounds) bool {
	if p.Val.Typ != schema.String || (p.Between && p.Val2.Typ != schema.String) {
		return true
	}
	lo := b.MinS
	// aboveMax(x) reports certainty that every value is < x.
	aboveMax := func(x string) bool {
		if b.MaxExact {
			return b.MaxS < x
		}
		succ, ok := prefixSuccessor(b.MaxS)
		return ok && succ <= x
	}
	// atMost(x) reports certainty that every value is <= x.
	atMost := func(x string) bool {
		if b.MaxExact {
			return b.MaxS <= x
		}
		succ, ok := prefixSuccessor(b.MaxS)
		return ok && succ <= x
	}
	if p.Between {
		// Impossible iff every value < lo-bound or every value > hi-bound.
		return !(aboveMax(p.Val.S) || lo > p.Val2.S)
	}
	switch p.Op {
	case expr.Lt:
		return lo < p.Val.S
	case expr.Le:
		return lo <= p.Val.S
	case expr.Gt:
		return !atMost(p.Val.S)
	case expr.Ge:
		return !aboveMax(p.Val.S)
	case expr.Eq:
		return !(p.Val.S < lo || aboveMax(p.Val.S))
	case expr.Ne:
		return !(b.MinExact && b.MaxExact && b.MinS == p.Val.S && b.MaxS == p.Val.S)
	default:
		return true
	}
}

// prefixSuccessor returns the smallest string greater than every string
// with the given prefix; ok is false when none exists (all 0xff).
func prefixSuccessor(s string) (string, bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] != 0xff {
			return s[:i] + string([]byte{s[i] + 1}), true
		}
	}
	return "", false
}
