package synopsis

import (
	"testing"

	"nodb/internal/expr"
	"nodb/internal/scan"
	"nodb/internal/schema"
	"nodb/internal/storage"
)

// benchLayout builds a 64-portion layout of 10k rows each.
func benchLayout() []scan.PortionInfo {
	ports := make([]scan.PortionInfo, 64)
	for i := range ports {
		ports[i] = scan.PortionInfo{
			Index: i, Off: int64(i) * 1 << 20, End: int64(i+1) * 1 << 20,
			FirstRow: int64(i) * 10_000, Rows: 10_000,
		}
	}
	return ports
}

// BenchmarkSynopsisBuild measures the collection hot path: the per-value
// Observe cost (paid once per parsed field during a tokenizing pass) plus
// the per-portion commit, over a full 64-portion, 2-column pass.
func BenchmarkSynopsisBuild(b *testing.B) {
	ports := benchLayout()
	var rowsTotal int64
	for _, p := range ports {
		rowsTotal += p.Rows
	}
	b.SetBytes(rowsTotal * 2 * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		s.AdoptLayout(ports)
		c := NewCollector(s, []int{0, 3}, []schema.Type{schema.Int64, schema.Int64})
		for _, p := range ports {
			a := c.Begin(p)
			base := p.FirstRow
			for r := int64(0); r < p.Rows; r++ {
				a.Observe(0, storage.IntValue(base+r))
				a.Observe(1, storage.IntValue((base+r)*7%991))
			}
			c.Commit(p, p.Rows)
		}
		if _, bounds := s.Stats(); bounds != 2*len(ports) {
			b.Fatalf("bounds = %d", bounds)
		}
	}
}

// BenchmarkSynopsisPrune measures building a Pruner (the per-query cost
// of consulting the synopsis) over 64 portions with a selective range.
func BenchmarkSynopsisPrune(b *testing.B) {
	ports := benchLayout()
	s := New()
	s.AdoptLayout(ports)
	c := NewCollector(s, []int{0}, []schema.Type{schema.Int64})
	for _, p := range ports {
		a := c.Begin(p)
		for r := int64(0); r < p.Rows; r++ {
			a.Observe(0, storage.IntValue(p.FirstRow+r))
		}
		c.Commit(p, p.Rows)
	}
	conj := expr.Conjunction{Preds: []expr.Pred{
		{Col: 0, Op: expr.Ge, Val: storage.IntValue(300_000)},
		{Col: 0, Op: expr.Lt, Val: storage.IntValue(306_400)},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := s.Pruner(conj)
		if pr.Skipped() != 63 { // the range sits inside one 10k-row portion
			b.Fatalf("skipped %d portions, want 63", pr.Skipped())
		}
	}
}
