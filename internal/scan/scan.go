// Package scan implements tokenization of raw flat files (CSV and NDJSON).
//
// It follows the design of the paper's adaptive loading operators (§3.2):
// the file is split into horizontal portions; tokenization happens in two
// steps per portion — first row boundaries are identified, then the
// relevant attributes are located within each row. Tokenization of a row
// stops as soon as all attributes a query needs have been found, and a
// pushed-down predicate can abandon the rest of a row the moment it fails
// ("early tuple elimination").
//
// Both supported formats are newline-delimited, so portioning, row
// counting, parallel scheduling and positional maps are shared; only the
// per-row attribute locator differs (the rowTokenizer interface). The
// NDJSON locator practices *delayed parsing*: it finds the byte ranges of
// just the requested fields and skips every other value structurally,
// without decoding it.
//
// Field bytes handed to callbacks alias the scanner's internal buffer and
// are only valid for the duration of the callback; parse or copy them
// before returning.
package scan

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"nodb/internal/errs"
	"nodb/internal/metrics"
	"nodb/internal/vfs"
)

// DefaultChunkSize is the streaming read granularity. It doubles as the
// target portion size: portions are the unit of parallel scheduling and of
// synopsis-based skipping, so megabyte-granularity keeps both effective.
const DefaultChunkSize = 1 << 20

// maxPortions bounds the portion count so layouts stay small even for very
// large files. minPortionBytes bounds how finely a mid-size file is split
// when the worker count calls for more portions than chunk-sized ones.
const (
	maxPortions     = 4096
	minPortionBytes = 64 << 10
)

// Format identifies the on-disk layout of a raw file. Every format the
// engine queries in situ is newline-delimited, so the scanner's portioning
// and row-boundary machinery applies to all of them; the Format selects
// the per-row attribute locator.
type Format int

const (
	// FormatCSV is delimiter-separated fields, one row per line.
	FormatCSV Format = iota
	// FormatNDJSON is one JSON object per line. Attribute indices map to
	// Options.FieldNames; values are located by key and handed to callbacks
	// as raw JSON tokens (strings keep their quotes) for delayed parsing.
	FormatNDJSON
)

func (f Format) String() string {
	switch f {
	case FormatNDJSON:
		return "ndjson"
	default:
		return "csv"
	}
}

// Options configures a Scanner.
type Options struct {
	// Format selects the per-row attribute locator; defaults to FormatCSV.
	Format Format
	// FieldNames maps attribute indices to JSON object keys. Required for
	// FormatNDJSON (the schema supplies it); ignored for CSV.
	FieldNames []string
	// Delimiter separates attributes; defaults to ','.
	Delimiter byte
	// Workers is the number of parallel tokenization workers; 0 (the
	// default) means runtime.GOMAXPROCS(0) — scans are parallel by
	// default. Portions are scheduled onto workers from a queue, so the
	// portion count is independent of the worker count.
	Workers int
	// ChunkSize is the streaming read size; defaults to DefaultChunkSize.
	// It is also the target portion size for parallel scheduling.
	ChunkSize int
	// SkipHeader skips the first line of the file.
	SkipHeader bool
	// Counters, when non-nil, receives work accounting.
	Counters *metrics.Counters
	// Context, when non-nil, cancels a scan cooperatively: the chunk
	// loops check it between reads, so a cancelled scan stops after at
	// most one chunk instead of finishing a multi-MB file pass.
	Context context.Context
	// Layout supplies pre-learned portion boundaries (typically from a
	// table's scan synopsis), skipping the boundary-discovery and
	// row-counting pre-pass entirely. The layout must describe this exact
	// file version: contiguous newline-aligned ranges whose last portion
	// ends at the file size. An inconsistent layout is ignored and the
	// scanner rebuilds its own.
	Layout []PortionInfo
	// Portioned forces a multi-portion layout (with its row-count
	// pre-pass) even for a sequential scan. Loaders set it when a synopsis
	// will remember the layout: the pre-pass then runs once per file
	// version, and every later scan both skips it and gains
	// portion-granular pruning. Without it, a sequential scan keeps the
	// classic single-portion stream that reads the file exactly once.
	Portioned bool
	// StartOffset begins the scan at this byte offset instead of the top
	// of the file. It must be newline-aligned (the first byte of a row);
	// the caller vouches for that — typically it is a previously validated
	// file size, so the bytes before it are known to end in '\n'. Row ids
	// are numbered from 0 at StartOffset. SkipHeader still applies first;
	// the larger of the two wins. Used by incremental tail extension to
	// scan only the bytes appended after a prefix-stable growth.
	StartOffset int64
	// MaxOffset, when > 0, caps the scan at this byte offset: the scanner
	// treats the file as MaxOffset bytes long even if it has since grown.
	// It must be newline-aligned (just past a '\n'). Tail extension sets
	// it to the end of the last complete appended row, so a half-written
	// append is never half-tokenized.
	MaxOffset int64
	// FS is the filesystem the scanner reads through; nil means the
	// real disk. Tests substitute a fault-injecting FS here.
	FS vfs.FS
}

func (o Options) fs() vfs.FS { return vfs.Default(o.FS) }

// canceled reports the context's error, if any. Checked once per chunk —
// cheap relative to a ChunkSize read.
func (o Options) canceled() error {
	if o.Context == nil {
		return nil
	}
	if err := o.Context.Err(); err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	return nil
}

func (o Options) delim() byte {
	if o.Delimiter == 0 {
		return ','
	}
	return o.Delimiter
}

func (o Options) workers() int { return EffectiveWorkers(o.Workers) }

// EffectiveWorkers resolves a Workers setting to the actual parallelism: 0
// (unset) means one worker per CPU, negative means sequential, anything
// else is taken literally. Callers that must know whether a scan will run
// sequentially (e.g. to choose append-in-order versus scatter-by-row-id
// materialization) resolve through this same function.
func EffectiveWorkers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 0 {
		return 1
	}
	return n
}

func (o Options) chunkSize() int {
	if o.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return o.ChunkSize
}

// FieldRef is one located attribute within a row. Bytes aliases the scan
// buffer; Offset is the absolute byte offset of the field's first character
// in the file (used to build positional maps).
type FieldRef struct {
	Bytes  []byte
	Offset int64
}

// RowHandler receives one tokenized row. fields[i] corresponds to cols[i]
// of the ScanColumns call (or to attribute i when scanning all columns).
// Handlers run concurrently when Workers > 1, but each is called from a
// single goroutine per portion with rowIDs from a contiguous range.
type RowHandler func(rowID int64, fields []FieldRef) error

// AbandonFunc is consulted after each requested column of a row is
// tokenized, in file order; idx is the index into cols. Returning true
// abandons the row: no further attributes are tokenized and the handler is
// not called. This is the paper's predicate push-down into loading.
type AbandonFunc func(idx int, field FieldRef) bool

// PortionInfo describes one horizontal portion of the file: a
// newline-aligned byte range plus the global row ids it holds. Rows is -1
// when the portion has not been counted (single-portion lazy scans).
type PortionInfo struct {
	Index    int
	Off, End int64 // byte range [Off, End)
	FirstRow int64 // global row id of the portion's first row
	Rows     int64 // data rows in the portion, or -1 when uncounted
}

// PortionFuncs are the per-portion callbacks of ScanColumnsPortioned. All
// fields are optional. With Workers > 1 they are invoked concurrently from
// the worker goroutines, but each portion's Begin/rows/End sequence runs on
// a single goroutine.
type PortionFuncs struct {
	// Skip is consulted once per portion, before any of its bytes are
	// read; returning true prunes the portion outright. It is only
	// consulted for portions whose row count is known (so skipped rows
	// stay accounted). Skipping never changes results when the decision is
	// based on conservative value bounds — see internal/synopsis.
	Skip func(p PortionInfo) bool
	// Begin returns the row handler and abandon hook for one portion,
	// letting callers accumulate per-portion state (synopsis bounds)
	// without locks.
	Begin func(p PortionInfo) (RowHandler, AbandonFunc)
	// End observes a portion completing cleanly, with the number of rows
	// it tokenized. It is not called for skipped or failed portions.
	End func(p PortionInfo, rows int64) error
}

// RowTailHandler receives one tokenized row plus the un-tokenized remainder
// of the line after the last requested column (without the delimiter that
// preceded it). tail.Bytes is empty when the row ends at the last requested
// column. Split-file writing uses the tail to emit the "non tokenized
// columns" file without tokenizing them.
type RowTailHandler func(rowID int64, fields []FieldRef, tail FieldRef) error

// ErrStop can be returned by a RowHandler to stop the scan early without
// reporting an error.
var ErrStop = errors.New("scan: stop")

// Scanner tokenizes one raw file. It is created by Open and may be used for
// multiple scans; each scan re-reads the file (that is the point: the cost
// of going back to the raw file is what the adaptive store avoids).
type Scanner struct {
	path string
	opts Options
	size int64

	portionsOnce sync.Once
	portionsErr  error
	portions     []portion
	rows         int64 // -1 until counted (single-portion scans skip counting)
	countOnce    sync.Once
	countErr     error
	dataStart    int64 // after optional header

	scannedRows     atomic.Int64 // rows tokenized by the most recent scan
	skippedRows     atomic.Int64 // rows in portions pruned by the most recent scan
	skippedPortions atomic.Int64 // portions pruned by the most recent scan
}

// portion is a horizontal slice of the file aligned on row boundaries.
type portion struct {
	off, end int64 // byte range [off, end)
	firstRow int64 // global row id of first row
	rows     int64
}

// Open prepares a Scanner for path. The file must exist; its size is
// captured now and a scan reads at most that many bytes, so a file being
// appended to mid-scan yields the prefix.
func Open(path string, opts Options) (*Scanner, error) {
	st, err := opts.fs().Stat(path)
	if err != nil {
		return nil, errs.Wrap(errs.ErrRawIO, "scan stat", path, err)
	}
	size := st.Size()
	if opts.MaxOffset > 0 && opts.MaxOffset < size {
		size = opts.MaxOffset
	}
	return &Scanner{path: path, opts: opts, size: size}, nil
}

// Path returns the scanned file's path.
func (s *Scanner) Path() string { return s.path }

// Size returns the file size in bytes at Open time.
func (s *Scanner) Size() int64 { return s.size }

// NumRows returns the number of data rows, running phase-1 tokenization
// (row boundary identification) if it has not run yet. Single-portion
// scanners defer the counting pass until someone actually asks.
func (s *Scanner) NumRows() (int64, error) {
	if err := s.ensurePortions(); err != nil {
		return 0, err
	}
	if s.rows >= 0 {
		return s.rows, nil
	}
	s.countOnce.Do(func() {
		f, err := s.opts.fs().Open(s.path)
		if err != nil {
			s.countErr = errs.Wrap(errs.ErrRawIO, "scan open", s.path, err)
			return
		}
		defer f.Close()
		var total int64
		for i := range s.portions {
			n, err := countRows(f, s.portions[i].off, s.portions[i].end, s.opts)
			if err != nil {
				s.countErr = err
				return
			}
			s.portions[i].rows = n
			total += n
		}
		s.rows = total
	})
	if s.countErr != nil {
		return 0, s.countErr
	}
	return s.rows, nil
}

// RowsScanned returns the number of rows tokenized by the most recent
// ScanColumns/ScanColumnsTail call. For a scan that ran to completion,
// RowsScanned()+RowsSkipped() is the file's total row count.
func (s *Scanner) RowsScanned() int64 { return s.scannedRows.Load() }

// RowsSkipped returns the number of rows inside portions the most recent
// scan pruned via PortionFuncs.Skip (their bytes were never read).
func (s *Scanner) RowsSkipped() int64 { return s.skippedRows.Load() }

// PortionsSkipped returns the number of portions the most recent scan
// pruned.
func (s *Scanner) PortionsSkipped() int64 { return s.skippedPortions.Load() }

// Portions returns the scan's portion layout, building it (including the
// row-count pre-pass for multi-portion layouts) if needed. Single-portion
// layouts report Rows == -1 until a full scan discovers the count. The
// returned slice is a copy.
func (s *Scanner) Portions() ([]PortionInfo, error) {
	if err := s.ensurePortions(); err != nil {
		return nil, err
	}
	out := make([]PortionInfo, len(s.portions))
	for i, p := range s.portions {
		out[i] = PortionInfo{Index: i, Off: p.off, End: p.end, FirstRow: p.firstRow, Rows: p.rows}
	}
	return out, nil
}

// ensurePortions runs phase 1: find the header end, split the file into
// worker portions aligned to newlines, and count rows per portion so every
// portion knows the global row id of its first row.
func (s *Scanner) ensurePortions() error {
	s.portionsOnce.Do(func() { s.portionsErr = s.buildPortions() })
	return s.portionsErr
}

func (s *Scanner) buildPortions() error {
	if s.adoptLayout() {
		return nil
	}
	f, err := s.opts.fs().Open(s.path)
	if err != nil {
		return errs.Wrap(errs.ErrRawIO, "scan open", s.path, err)
	}
	defer f.Close()

	s.dataStart = 0
	if s.opts.SkipHeader {
		off, err := findLineEnd(f, 0, s.size, boundaryProbeSize)
		if err != nil {
			return err
		}
		s.dataStart = off
	}
	if s.opts.StartOffset > s.dataStart {
		s.dataStart = s.opts.StartOffset
	}
	if s.dataStart >= s.size {
		s.portions = nil
		s.rows = 0
		return nil
	}

	// Portion count is decoupled from the worker count: portions are the
	// unit of synopsis skipping and of work scheduling, so they target the
	// chunk size, refined downward (to a floor) only when the worker count
	// calls for more portions than chunk-sized ones. A sequential scan
	// without Portioned keeps the classic single-portion streaming pass
	// with no counting pre-pass; multi-portion layouts for it arrive
	// pre-learned via Options.Layout or are forced by Options.Portioned.
	span := s.size - s.dataStart
	w := int64(s.opts.workers())
	n := int64(1)
	if w > 1 || s.opts.Portioned {
		target := int64(s.opts.chunkSize())
		if per := span / w; per < target {
			target = per
			if target < minPortionBytes {
				target = minPortionBytes
			}
		}
		n = (span + target - 1) / target
		if n > maxPortions {
			n = maxPortions
		}
	}
	if n <= 1 {
		// A single-portion scan needs no counting pre-pass: rows are
		// numbered as they stream. NumRows stays lazy.
		s.portions = []portion{{off: s.dataStart, end: s.size, firstRow: 0, rows: -1}}
		s.rows = -1
		return nil
	}

	per := span / n
	bounds := make([]int64, 0, n+1)
	bounds = append(bounds, s.dataStart)
	for i := int64(1); i < n; i++ {
		nominal := s.dataStart + i*per
		aligned, err := findLineEnd(f, nominal, s.size, boundaryProbeSize)
		if err != nil {
			return err
		}
		if aligned > bounds[len(bounds)-1] && aligned < s.size {
			bounds = append(bounds, aligned)
		}
	}
	bounds = append(bounds, s.size)

	// Count rows per portion in parallel (ReadAt on one *os.File is safe
	// for concurrent use); global row ids fall out of a prefix sum. This
	// pre-pass runs once per layout: scans that receive the learned layout
	// via Options.Layout skip it entirely.
	parts := make([]portion, len(bounds)-1)
	counts := make([]int64, len(parts))
	errs := make([]error, len(parts))
	sem := make(chan struct{}, int(w))
	var wg sync.WaitGroup
	for i := range parts {
		parts[i] = portion{off: bounds[i], end: bounds[i+1]}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			counts[i], errs[i] = countRows(f, parts[i].off, parts[i].end, s.opts)
			<-sem
		}(i)
	}
	wg.Wait()
	var firstRow int64
	for i := range parts {
		if errs[i] != nil {
			return errs[i]
		}
		parts[i].firstRow = firstRow
		parts[i].rows = counts[i]
		firstRow += counts[i]
	}
	s.portions = parts
	s.rows = firstRow
	return nil
}

// boundaryProbeSize is the read size used to locate a single newline when
// aligning portion boundaries; rows are almost always far shorter, and
// findLineEnd keeps reading forward when one is not.
const boundaryProbeSize = 4096

// adoptLayout installs Options.Layout as the portion set when it passes
// validation: contiguous ascending ranges with known row counts and
// consistent first-row prefix sums, ending exactly at the file size.
// Newline alignment is trusted — the layout came from a scan of the same
// file version (the raw-file signature check lives in the catalog).
func (s *Scanner) adoptLayout() bool {
	l := s.opts.Layout
	if len(l) == 0 {
		return false
	}
	if l[0].Off < 0 || l[len(l)-1].End != s.size {
		return false
	}
	var firstRow int64
	for i, p := range l {
		if p.End <= p.Off || p.Rows < 0 || p.FirstRow != firstRow {
			return false
		}
		if i > 0 && p.Off != l[i-1].End {
			return false
		}
		firstRow += p.Rows
	}
	s.dataStart = l[0].Off
	s.portions = make([]portion, len(l))
	for i, p := range l {
		s.portions[i] = portion{off: p.Off, end: p.End, firstRow: p.FirstRow, rows: p.Rows}
	}
	s.rows = firstRow
	return true
}

// findLineEnd returns the offset just past the first '\n' at or after off,
// or end if none.
func findLineEnd(f vfs.File, off, end int64, chunk int) (int64, error) {
	buf := make([]byte, chunk)
	for off < end {
		n := int64(len(buf))
		if off+n > end {
			n = end - off
		}
		m, err := f.ReadAt(buf[:n], off)
		if m > 0 {
			if i := bytes.IndexByte(buf[:m], '\n'); i >= 0 {
				return off + int64(i) + 1, nil
			}
			off += int64(m)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, errs.Wrap(errs.ErrRawIO, "scan read", f.Name(), err)
		}
	}
	return end, nil
}

// countRows counts data rows in [off, end). A final line without a
// trailing newline counts as a row.
func countRows(f vfs.File, off, end int64, o Options) (int64, error) {
	c := o.Counters
	bufSize := int64(o.chunkSize())
	if span := end - off; span < bufSize {
		bufSize = span // portions can be far smaller than a chunk
	}
	buf := make([]byte, bufSize)
	var rows int64
	lastByte := byte('\n')
	pos := off
	for pos < end {
		if err := o.canceled(); err != nil {
			return 0, err
		}
		n := int64(len(buf))
		if pos+n > end {
			n = end - pos
		}
		m, err := f.ReadAt(buf[:n], pos)
		if m > 0 {
			rows += int64(bytes.Count(buf[:m], []byte{'\n'}))
			lastByte = buf[m-1]
			pos += int64(m)
			if c != nil {
				c.AddRawBytesRead(int64(m))
			}
		}
		if err == io.EOF {
			if pos < end {
				// The size captured at Open promised bytes up to end;
				// the file got shorter underneath us. Counting the
				// prefix as the whole file would silently drop rows.
				return 0, errs.New(errs.ErrFileShrunk, "scan count", f.Name())
			}
			break
		}
		if err != nil {
			return 0, errs.Wrap(errs.ErrRawIO, "scan read", f.Name(), err)
		}
	}
	if lastByte != '\n' && pos > off {
		rows++
	}
	return rows, nil
}

// ScanColumns tokenizes the file and emits, for every surviving row, the
// requested columns (0-based attribute indices, which need not be sorted).
// A nil cols requests every attribute of every row; in that mode the number
// of fields per row is determined by the row itself.
//
// abandon, when non-nil, is consulted after each requested column is
// located (in file order); returning true drops the row. The handler
// receives fields ordered like cols.
func (s *Scanner) ScanColumns(cols []int, handler RowHandler, abandon AbandonFunc) error {
	return s.scan(cols, handler, nil, abandon, PortionFuncs{})
}

// ScanColumnsTail is ScanColumns with tail capture: the handler also
// receives the un-tokenized remainder of each row after the last requested
// column. Abandoned rows do not reach the handler.
func (s *Scanner) ScanColumnsTail(cols []int, handler RowTailHandler, abandon AbandonFunc) error {
	return s.scan(cols, nil, handler, abandon, PortionFuncs{})
}

// ScanColumnsPortioned is ScanColumns with per-portion scheduling hooks:
// Skip prunes whole portions before a byte of them is read (synopsis zone
// maps), Begin supplies per-portion handler state, End commits it.
func (s *Scanner) ScanColumnsPortioned(cols []int, pf PortionFuncs) error {
	return s.scan(cols, nil, nil, nil, pf)
}

// info exports one portion's metadata.
func (s *Scanner) info(i int) PortionInfo {
	p := s.portions[i]
	return PortionInfo{Index: i, Off: p.off, End: p.end, FirstRow: p.firstRow, Rows: p.rows}
}

// runPortion scans one portion through the per-portion hooks.
func (s *Scanner) runPortion(i int, cols []int, handler RowHandler, tailH RowTailHandler, abandon AbandonFunc, pf PortionFuncs) error {
	pi := s.info(i)
	if pf.Begin != nil {
		handler, abandon = pf.Begin(pi)
	}
	n, err := s.scanPortion(s.portions[i], cols, handler, tailH, abandon)
	if err != nil {
		return err
	}
	if pf.End != nil {
		return pf.End(pi, n)
	}
	return nil
}

func (s *Scanner) scan(cols []int, handler RowHandler, tailH RowTailHandler, abandon AbandonFunc, pf PortionFuncs) error {
	if err := s.opts.canceled(); err != nil {
		return err
	}
	if err := s.ensurePortions(); err != nil {
		return err
	}
	s.scannedRows.Store(0)
	s.skippedRows.Store(0)
	s.skippedPortions.Store(0)
	if len(s.portions) == 0 {
		return nil
	}

	// The scheduler consults Skip up front, so only surviving portions are
	// ever assigned to workers; a pruned portion consumes no worker time
	// and no I/O. Skip is consulted only for counted portions, keeping the
	// skipped rows accounted.
	survivors := make([]int, 0, len(s.portions))
	for i := range s.portions {
		if pf.Skip != nil && s.portions[i].rows >= 0 && pf.Skip(s.info(i)) {
			s.skippedRows.Add(s.portions[i].rows)
			s.skippedPortions.Add(1)
			if c := s.opts.Counters; c != nil {
				c.AddPortionsSkipped(1)
			}
			continue
		}
		survivors = append(survivors, i)
	}
	if len(survivors) == 0 {
		return nil
	}

	w := s.opts.workers()
	if w > len(survivors) {
		w = len(survivors)
	}
	if w == 1 {
		for _, i := range survivors {
			if err := s.runPortion(i, cols, handler, tailH, abandon, pf); err != nil {
				if errors.Is(err, ErrStop) {
					return nil
				}
				return err
			}
		}
		return nil
	}

	work := make(chan int)
	errCh := make(chan error, w)
	quit := make(chan struct{})
	var quitOnce sync.Once
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				if err := s.runPortion(idx, cols, handler, tailH, abandon, pf); err != nil {
					errCh <- err
					quitOnce.Do(func() { close(quit) })
					return
				}
			}
		}()
	}
dispatch:
	for _, idx := range survivors {
		// A failed (or early-stopped) worker closes quit so dispatch ends
		// promptly instead of feeding portions to a shrinking pool — or
		// deadlocking when every worker has exited.
		select {
		case work <- idx:
		case <-quit:
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil && !errors.Is(err, ErrStop) {
			return err
		}
	}
	return nil
}

// scanPortion streams one portion and tokenizes its rows, returning how
// many it tokenized.
func (s *Scanner) scanPortion(p portion, cols []int, handler RowHandler, tailH RowTailHandler, abandon AbandonFunc) (int64, error) {
	f, err := s.opts.fs().Open(s.path)
	if err != nil {
		return 0, errs.Wrap(errs.ErrRawIO, "scan open", s.path, err)
	}
	defer f.Close()
	var portionRows int64

	c := s.opts.Counters
	chunk := s.opts.chunkSize()
	buf := make([]byte, chunk+4096)
	carry := 0 // bytes of an incomplete row carried from the previous chunk
	pos := p.off
	rowID := p.firstRow

	tok, err := s.opts.newRowTokenizer(cols)
	if err != nil {
		return 0, err
	}

	for pos < p.end || carry > 0 {
		if err := s.opts.canceled(); err != nil {
			return portionRows, err
		}
		n := 0
		if pos < p.end {
			want := chunk
			if int64(want) > p.end-pos {
				want = int(p.end - pos)
			}
			if carry+want > len(buf) {
				nb := make([]byte, carry+want+4096)
				copy(nb, buf[:carry])
				buf = nb
			}
			m, err := f.ReadAt(buf[carry:carry+want], pos)
			if m > 0 {
				pos += int64(m)
				if c != nil {
					c.AddRawBytesRead(int64(m))
				}
			}
			if err != nil && err != io.EOF {
				return portionRows, errs.Wrap(errs.ErrRawIO, "scan read", s.path, err)
			}
			n = carry + m
			if m == 0 && err == io.EOF {
				// EOF before the portion's end: the file shrank after
				// its size was captured. Tokenizing the prefix as if it
				// were the whole portion would return wrong results.
				return portionRows, errs.New(errs.ErrFileShrunk, "scan read", s.path)
			}
		} else {
			n = carry
		}
		if n == 0 {
			break
		}

		data := buf[:n]
		base := pos - int64(n) // file offset of data[0]
		consumed := 0
		for {
			nl := bytes.IndexByte(data[consumed:], '\n')
			var line []byte
			lineStart := consumed
			if nl < 0 {
				if pos < p.end {
					break // incomplete row; wait for more data
				}
				// Final row without trailing newline.
				line = data[consumed:]
				consumed = len(data)
				if len(line) == 0 {
					break
				}
			} else {
				line = data[consumed : consumed+nl]
				consumed += nl + 1
			}
			if len(line) > 0 && line[len(line)-1] == '\r' {
				line = line[:len(line)-1]
			}
			if c != nil {
				c.AddRowsTokenized(1)
			}
			s.scannedRows.Add(1)
			portionRows++
			err := tok.row(line, base+int64(lineStart), rowID, handler, tailH, abandon, c)
			rowID++
			if err != nil {
				return portionRows, err
			}
			if consumed >= len(data) {
				break
			}
		}
		// Carry the incomplete tail to the front of the buffer.
		carry = len(data) - consumed
		if carry > 0 {
			copy(buf, data[consumed:])
		}
		if pos >= p.end && consumed == len(data) {
			carry = 0
		}
		if pos >= p.end && carry > 0 && consumed == 0 {
			return portionRows, fmt.Errorf("scan: row longer than buffer at offset %d", base)
		}
	}
	return portionRows, nil
}

// rowTokenizer locates requested attributes within one line. The CSV
// tokenizer and the NDJSON tokenizer both satisfy it; everything above a
// single row — chunked reads, portion scheduling, row ids, carry buffers —
// is format-agnostic and shared.
type rowTokenizer interface {
	row(line []byte, lineOff, rowID int64, handler RowHandler, tailH RowTailHandler, abandon AbandonFunc, c *metrics.Counters) error
}

// newRowTokenizer builds the per-row attribute locator for the configured
// format.
func (o Options) newRowTokenizer(cols []int) (rowTokenizer, error) {
	switch o.Format {
	case FormatNDJSON:
		return newJSONTokenizer(o.FieldNames, cols)
	default:
		return newTokenizer(o.delim(), cols), nil
	}
}

// tokenizer locates requested columns within rows.
type tokenizer struct {
	delim   byte
	cols    []int // requested columns in caller order, or nil for all
	sorted  []int // unique requested columns in ascending order
	sortPos []int // sortPos[i]: index in cols of sorted[i]
	dup     [][]int
	fields  []FieldRef
	all     bool
}

func newTokenizer(delim byte, cols []int) *tokenizer {
	t := &tokenizer{delim: delim, cols: cols, all: cols == nil}
	if t.all {
		return t
	}
	// Build the ascending visit order once; duplicate column requests are
	// supported (each position in cols gets the field).
	type pair struct{ col, idx int }
	pairs := make([]pair, len(cols))
	for i, col := range cols {
		pairs[i] = pair{col, i}
	}
	for i := 1; i < len(pairs); i++ { // insertion sort; cols is tiny
		for j := i; j > 0 && pairs[j].col < pairs[j-1].col; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	for i := 0; i < len(pairs); {
		j := i
		var idxs []int
		for j < len(pairs) && pairs[j].col == pairs[i].col {
			idxs = append(idxs, pairs[j].idx)
			j++
		}
		t.sorted = append(t.sorted, pairs[i].col)
		t.dup = append(t.dup, idxs)
		i = j
	}
	t.fields = make([]FieldRef, len(cols))
	return t
}

// row tokenizes one line. lineOff is the absolute file offset of line[0].
func (t *tokenizer) row(line []byte, lineOff, rowID int64, handler RowHandler, tailH RowTailHandler, abandon AbandonFunc, c *metrics.Counters) error {
	if t.all {
		return t.rowAll(line, lineOff, rowID, handler, tailH, c)
	}
	fieldIdx := 0 // current attribute index in the row
	off := 0
	attrs := int64(0)
	lastEnd := 0 // index just past the last requested field
	for si, want := range t.sorted {
		// Advance to attribute `want`, tokenizing (skipping) intermediate
		// attributes. This is the cost the paper's §4.1.2 complains
		// about: locating attribute k requires tokenizing the k-1 before
		// it.
		for fieldIdx < want {
			i := bytes.IndexByte(line[off:], t.delim)
			if i < 0 {
				return fmt.Errorf("scan: row %d has %d attributes, need index %d", rowID, fieldIdx+1, want)
			}
			off += i + 1
			fieldIdx++
			attrs++
		}
		end := bytes.IndexByte(line[off:], t.delim)
		var fb []byte
		if end < 0 {
			fb = line[off:]
			lastEnd = len(line)
		} else {
			fb = line[off : off+end]
			lastEnd = off + end
		}
		attrs++
		fr := FieldRef{Bytes: fb, Offset: lineOff + int64(off)}
		for _, ci := range t.dup[si] {
			t.fields[ci] = fr
		}
		if abandon != nil {
			for _, ci := range t.dup[si] {
				if abandon(ci, fr) {
					if c != nil {
						c.AddAttrsTokenized(attrs)
						c.AddRowsAbandoned(1)
					}
					return nil
				}
			}
		}
		// Position after this field for the next sorted column.
		if end >= 0 && si+1 < len(t.sorted) {
			off += end + 1
			fieldIdx++
		} else if end < 0 && si+1 < len(t.sorted) {
			return fmt.Errorf("scan: row %d ended before attribute %d", rowID, t.sorted[si+1])
		}
	}
	if c != nil {
		c.AddAttrsTokenized(attrs)
	}
	if tailH != nil {
		tail := FieldRef{Bytes: nil, Offset: lineOff + int64(len(line))}
		if lastEnd < len(line) { // line[lastEnd] is the delimiter
			tail = FieldRef{Bytes: line[lastEnd+1:], Offset: lineOff + int64(lastEnd) + 1}
		}
		return tailH(rowID, t.fields, tail)
	}
	return handler(rowID, t.fields)
}

// rowAll tokenizes every attribute of the line.
func (t *tokenizer) rowAll(line []byte, lineOff, rowID int64, handler RowHandler, tailH RowTailHandler, c *metrics.Counters) error {
	t.fields = t.fields[:0]
	off := 0
	for {
		i := bytes.IndexByte(line[off:], t.delim)
		if i < 0 {
			t.fields = append(t.fields, FieldRef{Bytes: line[off:], Offset: lineOff + int64(off)})
			break
		}
		t.fields = append(t.fields, FieldRef{Bytes: line[off : off+i], Offset: lineOff + int64(off)})
		off += i + 1
	}
	if c != nil {
		c.AddAttrsTokenized(int64(len(t.fields)))
	}
	if tailH != nil {
		return tailH(rowID, t.fields, FieldRef{Offset: lineOff + int64(len(line))})
	}
	return handler(rowID, t.fields)
}

// ReadRowAt tokenizes the single row that starts at byte offset rowOff.
// It is used by positional-map guided access: when the map knows where a
// row (or attribute) begins, the engine can jump straight to it instead of
// scanning from the start of the file. cols follows ScanColumns semantics.
func (s *Scanner) ReadRowAt(rowOff int64, rowID int64, cols []int, handler RowHandler) error {
	if err := s.opts.canceled(); err != nil {
		return err
	}
	f, err := s.opts.fs().Open(s.path)
	if err != nil {
		return errs.Wrap(errs.ErrRawIO, "scan open", s.path, err)
	}
	defer f.Close()
	// Read forward until a full line is available.
	bufSize := 4096
	var line []byte
	for {
		buf := make([]byte, bufSize)
		m, err := f.ReadAt(buf, rowOff)
		if m == 0 && err != nil {
			if err == io.EOF {
				break
			}
			return errs.Wrap(errs.ErrRawIO, "scan read", s.path, err)
		}
		if s.opts.Counters != nil {
			s.opts.Counters.AddRawBytesRead(int64(m))
		}
		if i := bytes.IndexByte(buf[:m], '\n'); i >= 0 {
			line = buf[:i]
			break
		}
		if err == io.EOF {
			line = buf[:m]
			break
		}
		bufSize *= 2
	}
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	if s.opts.Counters != nil {
		s.opts.Counters.AddRowsTokenized(1)
	}
	tok, err := s.opts.newRowTokenizer(cols)
	if err != nil {
		return err
	}
	return tok.row(line, rowOff, rowID, handler, nil, nil, s.opts.Counters)
}
